// CoronaCheck example: ambiguity-aware statistical fact checking.
//
// Verifies user-style COVID claims against the Covid table. The original
// system always picks a single interpretation (first attribute candidate,
// latest date), so ambiguous claims get a single — often wrong — verdict.
// The improved system is trained on PYTHIA examples to recognize the
// ambiguity structure and then enumerates every interpretation.
//
// Run with: go run ./examples/coronacheck
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/coronacheck"
	"repro/internal/data"
)

func main() {
	original := coronacheck.NewOriginal()
	improved, err := coronacheck.TrainImproved(coronacheck.TrainOptions{Epochs: 6, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}

	// Build claims from actual cells of the Covid table so their truth
	// values are known.
	covid := data.MustLoad("Covid").Table
	cell := func(country, attr string, week int) string {
		cc := covid.Schema.Index("country")
		for r, row := range covid.Rows {
			if row[cc].AsString() == country {
				return covid.Rows[r+week][covid.Schema.Index(attr)].Format()
			}
		}
		return ""
	}
	date := func(country string, week int) string {
		cc := covid.Schema.Index("country")
		for r, row := range covid.Rows {
			if row[cc].AsString() == country {
				return covid.Rows[r+week][covid.Schema.Index("date")].Format()
			}
		}
		return ""
	}

	claims := []string{
		// Fully specified: both systems verify it the same way.
		fmt.Sprintf("On %s, France had %s new deaths.", date("France", 0), cell("France", "new_deaths", 0)),
		// Attribute ambiguity: "death rate" maps to two columns; the value
		// matches the fatality rate but not the mortality rate.
		fmt.Sprintf("On %s, Italy had %s death rate.", date("Italy", 1), cell("Italy", "total_fatality_rate", 1)),
		// Row ambiguity: no date given; true for week 3, false elsewhere.
		fmt.Sprintf("In Spain, %s new deaths have been reported.", cell("Spain", "new_deaths", 3)),
		// Full ambiguity: "covid cases" x missing date.
		fmt.Sprintf("In Lebanon, %s covid cases.", cell("Lebanon", "active_cases", 2)),
	}
	for _, claim := range claims {
		fmt.Printf("claim: %s\n", claim)
		vo := original.Verify(claim)
		vi := improved.Verify(claim)
		fmt.Printf("  original: %s\n", vo.Kind)
		fmt.Printf("  improved: %s\n", vi.Kind)
		if vi.Kind == coronacheck.Ambiguous {
			keys := make([]string, 0, len(vi.PerInterpretation))
			for k := range vi.PerInterpretation {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			shown := 0
			for _, k := range keys {
				if vi.PerInterpretation[k] {
					fmt.Printf("    true under  %s\n", k)
					shown++
				}
				if shown == 3 {
					break
				}
			}
		}
		fmt.Println()
	}
}
