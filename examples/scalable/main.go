// Scalable-generation example: the template path of Section IV-B.
//
// Builds a large Covid-style table and mass-generates row- and
// full-ambiguity examples through SQL templates whose SELECT clause
// produces the sentence directly — no text-generation model in the loop —
// then compares the throughput against the data-to-text path.
//
// Run with: go run ./examples/scalable
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/model"
	"repro/internal/pythia"
	"repro/internal/relation"
)

func main() {
	table := buildTable(2000)
	fmt.Printf("table: %d rows x %d columns\n", table.NumRows(), table.NumCols())

	md, err := pythia.WithPairs(table, []model.Pair{
		{AttrA: "total_cases", AttrB: "new_cases", Label: "cases", Score: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("composite key: %v\n", md.Profile.PrimaryKey)
	g := pythia.NewGenerator(table, md)

	start := time.Now()
	templated, err := g.Generate(pythia.Options{
		Mode:       pythia.Templates,
		Structures: []pythia.Structure{pythia.AttributeAmb, pythia.RowAmb},
		Ops:        []string{">"},
		Matches:    []pythia.Match{pythia.Uniform},
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}
	el := time.Since(start)
	fmt.Printf("\ntemplates:       %8d examples in %8s  (%.0f/s)\n",
		len(templated), el.Round(time.Millisecond), float64(len(templated))/el.Seconds())

	start = time.Now()
	generated, err := g.Generate(pythia.Options{
		Structures:  []pythia.Structure{pythia.AttributeAmb, pythia.RowAmb},
		Ops:         []string{">"},
		Matches:     []pythia.Match{pythia.Uniform},
		MaxPerQuery: 500,
		Seed:        1,
	})
	if err != nil {
		log.Fatal(err)
	}
	el = time.Since(start)
	fmt.Printf("text generation: %8d examples in %8s  (%.0f/s)\n",
		len(generated), el.Round(time.Millisecond), float64(len(generated))/el.Seconds())

	fmt.Println("\nsample template output:")
	for i := 0; i < 3 && i < len(templated); i++ {
		fmt.Printf("  %s\n", templated[i].Text)
	}
}

// buildTable makes a country x day table with two "cases" measures.
func buildTable(rows int) *relation.Table {
	t := relation.NewTable("covid_large", relation.Schema{
		{Name: "country", Kind: relation.KindString},
		{Name: "day", Kind: relation.KindInt},
		{Name: "total_cases", Kind: relation.KindInt},
		{Name: "new_cases", Kind: relation.KindInt},
	})
	countries := 50
	days := (rows + countries - 1) / countries
	n := 0
	for c := 0; c < countries && n < rows; c++ {
		total := int64(500 + c*91)
		for d := 0; d < days && n < rows; d++ {
			nc := int64(c*1_000_000 + d*13) // distinct across the table
			total += nc
			t.MustAppend(relation.Row{
				relation.String(fmt.Sprintf("Country%02d", c)),
				relation.Int(int64(d)),
				relation.Int(total),
				relation.Int(nc),
			})
			n++
		}
	}
	return t
}
