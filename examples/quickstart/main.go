// Quickstart: the paper's running example end to end.
//
// Takes the Table I basketball relation, profiles it, discovers the
// ambiguity metadata ({FG%, 3FG%} -> "shooting"-like label), and generates
// data-ambiguous examples with both the data-to-text generator and the
// scalable SQL templates.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/kb"
	"repro/internal/model"
	"repro/internal/pythia"
	"repro/internal/relation"
)

func main() {
	// Table I of the paper.
	table, err := relation.ReadCSVString("D", `Player,Team,FieldGoalPct,ThreePointPct,fouls,apps
Carter,LA,56,47,4,5
Smith,SF,55,30,4,7
Carter,SF,50,51,3,3
`)
	if err != nil {
		log.Fatal(err)
	}

	// Discover keys and ambiguity metadata. ULabel needs no training; swap
	// in a trained model.MetadataModel for the full pipeline.
	predictor := model.NewULabel(kb.BuildDefault())
	md, err := pythia.Discover(table, predictor)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("primary key: %v\n", md.Profile.PrimaryKey)
	for _, p := range md.Pairs {
		fmt.Printf("ambiguous pair: (%s, %s) -> %q\n", p.AttrA, p.AttrB, p.Label)
	}

	// Generate examples with the data-to-text path.
	g := pythia.NewGenerator(table, md)
	examples, err := g.Generate(pythia.Options{Seed: 1, Questions: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d examples via text generation:\n", len(examples))
	for _, ex := range examples {
		fmt.Printf("  [%s/%s] %s\n", ex.Structure, ex.Match, ex.Text)
	}

	// And with the scalable template path.
	templated, err := g.Generate(pythia.Options{Seed: 1, Mode: pythia.Templates})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d examples via templates, e.g.:\n", len(templated))
	for i, ex := range templated {
		if i == 3 {
			break
		}
		fmt.Printf("  %s\n", ex.Text)
		fmt.Printf("    a-query: %s\n", ex.Query)
	}
}
