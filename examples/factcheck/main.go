// Fact-checking example: train a Feverous-style claim classifier with and
// without PYTHIA's generated ambiguous examples and compare their handling
// of data-ambiguous claims (the Table V mechanism in miniature).
//
// Run with: go run ./examples/factcheck
package main

import (
	"fmt"
	"log"

	"repro/internal/factcheck"
)

func main() {
	// Base training data contains NO ambiguous NEI claims (the situation
	// of every existing corpus); the test set has them.
	train, err := factcheck.GenerateCorpus(factcheck.CorpusOptions{
		NEI: 150, Supports: 200, Refutes: 200, AmbiguousNEIFraction: 0, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	test, err := factcheck.GenerateCorpus(factcheck.CorpusOptions{
		NEI: 60, Supports: 60, Refutes: 60, AmbiguousNEIFraction: 0.5, Seed: 99,
	})
	if err != nil {
		log.Fatal(err)
	}
	pt, err := factcheck.GenerateCorpus(factcheck.CorpusOptions{
		NEI: 300, AmbiguousNEIFraction: 1.0, Seed: 55,
	})
	if err != nil {
		log.Fatal(err)
	}

	baseline, err := factcheck.Train(train, factcheck.TrainOptions{Epochs: 5, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	augmented, err := factcheck.Train(append(append([]factcheck.Claim{}, train...), pt...),
		factcheck.TrainOptions{Epochs: 5, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	score := func(c *factcheck.Checker) (plain, ambiguous float64) {
		var pOK, pN, aOK, aN int
		for _, cl := range test {
			got := c.Classify(cl)
			if cl.Ambiguous {
				aN++
				if got == cl.Label {
					aOK++
				}
			} else {
				pN++
				if got == cl.Label {
					pOK++
				}
			}
		}
		return float64(pOK) / float64(pN), float64(aOK) / float64(aN)
	}

	bp, ba := score(baseline)
	ap, aa := score(augmented)
	fmt.Println("accuracy on claims WITHOUT data ambiguity:")
	fmt.Printf("  baseline       %.2f\n  with PYTHIA    %.2f\n", bp, ap)
	fmt.Println("accuracy on data-ambiguous claims (gold = NEI):")
	fmt.Printf("  baseline       %.2f\n  with PYTHIA    %.2f\n", ba, aa)

	// Show one ambiguous claim and both verdicts.
	for _, cl := range test {
		if cl.Ambiguous {
			fmt.Printf("\nexample claim: %q\n", cl.Text)
			fmt.Printf("  baseline says    %s\n", baseline.Classify(cl))
			fmt.Printf("  with PYTHIA says %s (gold %s)\n", augmented.Classify(cl), cl.Label)
			break
		}
	}
}
