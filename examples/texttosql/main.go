// Text-to-SQL example: an ambiguity-aware semantic parser.
//
// A WikiSQL-style baseline always answers with a query — even for
// questions like "Did Carter have 3 fouls?" that no single query captures.
// Fine-tuning on PYTHIA-generated examples teaches the system to abstain
// ("none") on data-ambiguous questions while still parsing clean ones.
//
// Run with: go run ./examples/texttosql
package main

import (
	"fmt"
	"log"

	"repro/internal/data"
	"repro/internal/detrand"
	"repro/internal/relation"
	"repro/internal/texttosql"
)

func main() {
	trainNames := []string{"Adults", "Soccer", "Laptop", "HeartDiseases"}
	var tables []*relation.Table
	for _, n := range append(trainNames, "Basket") {
		tables = append(tables, data.MustLoad(n).Table)
	}

	// Generate the PYTHIA training corpus over the training tables.
	raw, err := texttosql.GenerateCorpus(trainNames, 11)
	if err != nil {
		log.Fatal(err)
	}
	train := texttosql.Balance(raw, 1.0, detrand.New(11))
	fmt.Printf("training corpus: %d examples\n", len(train))

	baseline := texttosql.Baseline(tables...)
	ft, err := texttosql.FineTune(train, tables, texttosql.FineTuneOptions{Epochs: 5, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// Probe both systems on unseen questions about the Basket table.
	questions := []string{
		"Does Carter LA have a Points of 20?",                // parseable
		"Did Carter have 4 Fouls?",                           // row ambiguous (which team?)
		"Does Carter LA have higher shooting than Smith SF?", // attribute ambiguous
	}
	for _, q := range questions {
		fmt.Printf("\nQ: %s\n", q)
		fmt.Printf("  baseline:   %s\n", baseline.Predict(q, "Basket"))
		fmt.Printf("  fine-tuned: %s\n", ft.Predict(q, "Basket"))
	}
}
