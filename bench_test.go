// Package repro's root benchmark harness: one testing.B benchmark per
// table and figure of the paper (running the corresponding experiment at a
// reduced scale per iteration), plus micro-benchmarks of the substrates
// the end-to-end numbers depend on (a-query execution, weak supervision,
// model inference, template generation).
//
// Run with: go test -bench=. -benchmem
// Full-scale reproductions are the domain of cmd/pythia-bench.
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/annotate"
	"repro/internal/corpus"
	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/kb"
	"repro/internal/model"
	"repro/internal/pythia"
	"repro/internal/relation"
	"repro/internal/sqlengine"
)

// benchConfig is the per-iteration experiment scale for benchmarks.
func benchConfig() experiments.Config {
	return experiments.Config{Scale: 0.08, Seed: 7}
}

func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableIII(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableIV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableIV(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableV(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableVI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableVI(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableVII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableVII(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableVIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableVIII(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FigScalability(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnnotatorAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.AnnotatorAblation(benchConfig())
	}
}

// --- substrate micro-benchmarks -------------------------------------------

// benchTable builds an n-row composite-key table for query benchmarks.
func benchTable(n int) *relation.Table {
	t := relation.NewTable("bench", relation.Schema{
		{Name: "country", Kind: relation.KindString},
		{Name: "day", Kind: relation.KindInt},
		{Name: "total_cases", Kind: relation.KindInt},
		{Name: "new_cases", Kind: relation.KindInt},
	})
	countries := 40
	for i := 0; i < n; i++ {
		c := i % countries
		t.MustAppend(relation.Row{
			relation.String(fmt.Sprintf("Country%02d", c)),
			relation.Int(int64(i / countries)),
			relation.Int(int64(1000 + i*3)),
			relation.Int(int64(i*7 + 13)), // distinct values
		})
	}
	return t
}

// BenchmarkHashJoinAQuery measures the equality-join a-query path (the
// scalable template backbone).
func BenchmarkHashJoinAQuery(b *testing.B) {
	t := benchTable(5000)
	e := sqlengine.NewEngine()
	e.Register(t)
	q := `SELECT b1.country, b1.new_cases, b2.new_cases FROM bench b1, bench b2
	      WHERE b1.country = b2.country AND b1.new_cases <> b2.new_cases`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Query(q)
		if err != nil {
			b.Fatal(err)
		}
		if res.NumRows() == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkNestedLoopAQuery measures the inequality self-join (attribute
// ambiguity template) — the ablation partner of the hash join.
func BenchmarkNestedLoopAQuery(b *testing.B) {
	t := benchTable(700)
	e := sqlengine.NewEngine()
	e.Register(t)
	q := `SELECT b1.country, b2.country FROM bench b1, bench b2
	      WHERE b1.country <> b2.country AND b1.total_cases > b2.total_cases AND b1.new_cases < b2.new_cases`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTemplateGeneration measures end-to-end template-mode example
// generation (the "millions of examples in seconds" path).
func BenchmarkTemplateGeneration(b *testing.B) {
	t := benchTable(1500)
	md, err := pythia.WithPairs(t, []model.Pair{{AttrA: "total_cases", AttrB: "new_cases", Label: "cases"}})
	if err != nil {
		b.Fatal(err)
	}
	g := pythia.NewGenerator(t, md)
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		exs, err := g.Generate(pythia.Options{
			Mode:       pythia.Templates,
			Structures: []pythia.Structure{pythia.RowAmb, pythia.FullAmb},
			Ops:        []string{"="},
			Seed:       1,
		})
		if err != nil {
			b.Fatal(err)
		}
		total += len(exs)
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "examples/s")
}

// BenchmarkTextGeneration measures the data-to-text path on the same table.
func BenchmarkTextGeneration(b *testing.B) {
	t := benchTable(1500)
	md, err := pythia.WithPairs(t, []model.Pair{{AttrA: "total_cases", AttrB: "new_cases", Label: "cases"}})
	if err != nil {
		b.Fatal(err)
	}
	g := pythia.NewGenerator(t, md)
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		exs, err := g.Generate(pythia.Options{
			Structures:  []pythia.Structure{pythia.RowAmb, pythia.FullAmb},
			Ops:         []string{"="},
			MaxPerQuery: 100,
			Seed:        1,
		})
		if err != nil {
			b.Fatal(err)
		}
		total += len(exs)
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "examples/s")
}

// BenchmarkWeakSupervision measures annotator labeling throughput over the
// synthetic corpus (the paper's 500k-table pass).
func BenchmarkWeakSupervision(b *testing.B) {
	gen := corpus.NewDefaultGenerator()
	annotators := annotate.All(kb.BuildDefault())
	b.ResetTimer()
	pairs := 0
	for i := 0; i < b.N; i++ {
		t := gen.Table(i)
		pairs += len(annotate.LabelTable(annotators, t.Name, t.Header, t.Rows))
	}
	b.ReportMetric(float64(pairs)/b.Elapsed().Seconds(), "pairs/s")
}

// BenchmarkMetadataInference measures trained-model prediction latency per
// attribute pair.
func BenchmarkMetadataInference(b *testing.B) {
	gen := corpus.NewDefaultGenerator()
	knowledge := kb.BuildDefault()
	cfg := model.DefaultSchemaConfig()
	cfg.Tables = 400
	cfg.Epochs = 2
	m, err := model.Train("Schema", gen, annotate.All(knowledge), cfg)
	if err != nil {
		b.Fatal(err)
	}
	d := data.MustLoad("Basket")
	header := d.Table.Schema.Names()
	rows := d.StringRows()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictPair(header, rows, "FieldGoalPct", "ThreePointPct")
	}
}

// BenchmarkProfiling measures key discovery on a mid-size table.
func BenchmarkProfiling(b *testing.B) {
	d := data.MustLoad("Adults")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pythia.WithPairs(d.Table, nil); err != nil {
			b.Fatal(err)
		}
	}
}
