package experiments

import (
	"fmt"
	"strings"

	"repro/internal/annotate"
	"repro/internal/corpus"
	"repro/internal/kb"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/relation"
	"repro/internal/userstudy"
)

// MethodScores is one row of Table III: a method's quality on the binary
// Ambiguity task and the Labeling task.
type MethodScores struct {
	Method    string
	Ambiguity metrics.PRF
	Labeling  metrics.PRF
}

// TableIIIResult holds all four method rows.
type TableIIIResult struct {
	Rows []MethodScores
	// CorpusStats summarizes the annotated test corpus.
	CorpusStats userstudy.Stats
}

// String renders the paper's Table III.
func (r TableIIIResult) String() string {
	header := []string{"Method", "Amb-P", "Amb-R", "Amb-F1", "Lab-P", "Lab-R", "Lab-F1"}
	var rows [][]string
	for _, m := range r.Rows {
		rows = append(rows, []string{
			m.Method,
			pct(m.Ambiguity.Precision), pct(m.Ambiguity.Recall), pct(m.Ambiguity.F1),
			pct(m.Labeling.Precision), pct(m.Labeling.Recall), pct(m.Labeling.F1),
		})
	}
	return "Table III — ambiguity metadata quality\n" + renderTable(header, rows)
}

// Get returns the row for a method name.
func (r TableIIIResult) Get(method string) (MethodScores, bool) {
	for _, m := range r.Rows {
		if m.Method == method {
			return m, true
		}
	}
	return MethodScores{}, false
}

// TableIII trains the four methods and evaluates them on the Section V
// annotated corpus.
func TableIII(cfg Config) (TableIIIResult, error) {
	defer stage("tableiii")()
	gen := corpus.NewDefaultGenerator()
	knowledge := kb.BuildDefault()
	annotators := annotate.All(knowledge)
	tables := cfg.scaled(20000, 1500)

	cfg.logf("TableIII: training Schema model on %d tables", tables)
	bags := knowledge.DefinitionBags()
	schemaCfg := model.DefaultSchemaConfig()
	schemaCfg.Tables = tables
	schemaCfg.Seed = cfg.Seed
	schemaCfg.Workers = cfg.Workers
	schemaCfg.Pretrain = bags
	schema, err := model.Train("Schema", gen, annotators, schemaCfg)
	if err != nil {
		return TableIIIResult{}, fmt.Errorf("experiments: table III: %w", err)
	}

	cfg.logf("TableIII: training Data model on %d tables", tables)
	dataCfg := model.DefaultDataConfig()
	dataCfg.Tables = tables
	dataCfg.Seed = cfg.Seed
	dataCfg.Workers = cfg.Workers
	dataCfg.Pretrain = bags
	dataModel, err := model.Train("Data", gen, annotators, dataCfg)
	if err != nil {
		return TableIIIResult{}, fmt.Errorf("experiments: table III: %w", err)
	}

	cfg.logf("TableIII: training SLabel baseline")
	sCfg := model.DefaultSLabelConfig()
	sCfg.Tables = tables
	sCfg.Seed = cfg.Seed
	slabel, err := model.NewSLabel(gen, knowledge, sCfg)
	if err != nil {
		return TableIIIResult{}, fmt.Errorf("experiments: table III: %w", err)
	}

	ulabel := model.NewULabel(knowledge)

	testCorpus := userstudy.AnnotatedCorpus()
	res := TableIIIResult{CorpusStats: userstudy.CorpusStats(testCorpus)}
	for _, p := range []model.Predictor{ulabel, slabel, schema, dataModel} {
		res.Rows = append(res.Rows, EvaluatePredictor(p, testCorpus))
		cfg.logf("TableIII: %s done", p.Name())
	}
	return res, nil
}

// EvaluatePredictor scores one predictor against the annotated corpus on
// both tasks. The evaluation walks every same-type-class attribute pair of
// every table (the candidate set Algorithm 1 would consider).
func EvaluatePredictor(p model.Predictor, testCorpus []userstudy.CorpusEntry) MethodScores {
	out := MethodScores{Method: p.Name()}
	var ambTP, ambFP, ambFN int
	var labTP, labFP, labFN int
	for _, entry := range testCorpus {
		gt := map[string][]string{}
		for _, pair := range entry.Pairs {
			gt[userstudy.PairKey(pair.AttrA, pair.AttrB)] = pair.Labels
		}
		header := entry.Dataset.Table.Schema.Names()
		rows := entry.Dataset.StringRows()
		kinds := entry.Dataset.Table.Schema

		for i := 0; i < len(header); i++ {
			for j := i + 1; j < len(header); j++ {
				if !sameTypeClass(kinds[i].Kind, kinds[j].Kind) {
					continue
				}
				key := userstudy.PairKey(header[i], header[j])
				gtLabels, isAmb := gt[key]
				label, _, ok := p.PredictPair(header, rows, header[i], header[j])
				// Ambiguity task.
				switch {
				case ok && isAmb:
					ambTP++
				case ok && !isAmb:
					ambFP++
				case !ok && isAmb:
					ambFN++
				}
				// Labeling task: a prediction is a true positive when its
				// label is in the ground truth for the pair.
				if ok {
					if isAmb && labelIn(label, gtLabels) {
						labTP++
					} else {
						labFP++
					}
				}
				if isAmb && (!ok || !labelIn(label, gtLabels)) {
					labFN++
				}
			}
		}
	}
	out.Ambiguity = metrics.Compute(ambTP, ambFP, ambFN)
	out.Labeling = metrics.Compute(labTP, labFP, labFN)
	return out
}

// sameTypeClass mirrors the Algorithm 1 pairing rule.
func sameTypeClass(a, b relation.Kind) bool {
	if a.Numeric() && b.Numeric() {
		return true
	}
	return a == b
}

// labelIn reports whether the predicted label matches any ground-truth
// label (case-insensitive).
func labelIn(label string, gtLabels []string) bool {
	for _, g := range gtLabels {
		if strings.EqualFold(label, g) {
			return true
		}
	}
	return false
}
