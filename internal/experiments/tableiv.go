package experiments

import (
	"fmt"
	"time"

	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/pythia"
)

// DatasetGeneration is one row of Table IV: how many examples PYTHIA
// generates for a dataset, by ambiguity structure, and how long each
// generation mode takes.
//
// The supplied paper text references Table IV but does not include its
// body; per DESIGN.md we reproduce it as the generation-statistics table
// the surrounding prose requires.
type DatasetGeneration struct {
	Dataset      string
	Attribute    int
	Row          int
	Full         int
	NotAmbiguous int
	TextGenTime  time.Duration
	TemplateTime time.Duration
	TemplateN    int // examples from the template path (uncapped)
}

// TableIVResult aggregates all datasets.
type TableIVResult struct {
	Rows []DatasetGeneration
}

// String renders the table.
func (r TableIVResult) String() string {
	header := []string{"Dataset", "Attr", "Row", "Full", "NotAmb", "TextGen-ms", "Templates-ms", "Template-N"}
	var rows [][]string
	for _, d := range r.Rows {
		rows = append(rows, []string{
			d.Dataset,
			fmt.Sprint(d.Attribute), fmt.Sprint(d.Row), fmt.Sprint(d.Full), fmt.Sprint(d.NotAmbiguous),
			fmt.Sprintf("%.1f", float64(d.TextGenTime.Microseconds())/1000),
			fmt.Sprintf("%.1f", float64(d.TemplateTime.Microseconds())/1000),
			fmt.Sprint(d.TemplateN),
		})
	}
	return "Table IV — examples generated per dataset (ground-truth metadata)\n" + renderTable(header, rows)
}

// TableIV generates examples for every evaluation dataset with its
// ground-truth metadata, in both modes, and reports counts and wall-clock.
func TableIV(cfg Config) (TableIVResult, error) {
	defer stage("tableiv")()
	var res TableIVResult
	for _, name := range data.EvaluationNames() {
		d := data.MustLoad(name)
		var pairs []model.Pair
		for _, gt := range d.GroundTruthPairs() {
			pairs = append(pairs, model.Pair{AttrA: gt.AttrA, AttrB: gt.AttrB, Label: gt.Labels[0]})
		}
		md, err := pythia.WithPairs(d.Table, pairs)
		if err != nil {
			return res, fmt.Errorf("experiments: table IV: %w", err)
		}
		g := pythia.NewGenerator(d.Table, md)
		row := DatasetGeneration{Dataset: name}

		start := time.Now()
		exs, err := g.Generate(pythia.Options{Seed: cfg.Seed, Questions: true, MaxPerQuery: 8})
		if err != nil {
			return res, fmt.Errorf("experiments: table IV: %w", err)
		}
		plain, err := g.NotAmbiguous(pythia.Options{Seed: cfg.Seed, MaxPerQuery: 8})
		if err != nil {
			return res, fmt.Errorf("experiments: table IV: %w", err)
		}
		row.TextGenTime = time.Since(start)
		for _, ex := range exs {
			switch ex.Structure {
			case pythia.AttributeAmb:
				row.Attribute++
			case pythia.RowAmb:
				row.Row++
			case pythia.FullAmb:
				row.Full++
			}
		}
		row.NotAmbiguous = len(plain)

		start = time.Now()
		tmpl, err := g.Generate(pythia.Options{Seed: cfg.Seed, Mode: pythia.Templates})
		if err != nil {
			return res, fmt.Errorf("experiments: table IV: %w", err)
		}
		row.TemplateTime = time.Since(start)
		row.TemplateN = len(tmpl)

		res.Rows = append(res.Rows, row)
		cfg.logf("TableIV: %s done (%d+%d+%d ambiguous, %d templates)",
			name, row.Attribute, row.Row, row.Full, row.TemplateN)
	}
	return res, nil
}
