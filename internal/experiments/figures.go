package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/annotate"
	"repro/internal/corpus"
	"repro/internal/kb"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/pythia"
	"repro/internal/relation"
	"repro/internal/serialize"
	"repro/internal/userstudy"
)

// FigPoint is one (x, score) point of a figure series.
type FigPoint struct {
	X         float64
	Ambiguity metrics.PRF
	Labeling  metrics.PRF
}

// FigResult is one figure: named series of points.
type FigResult struct {
	Title  string
	XLabel string
	Series map[string][]FigPoint
}

// String renders the figure series as rows.
func (r FigResult) String() string {
	header := []string{"Series", r.XLabel, "Amb-F1", "Lab-F1"}
	names := make([]string, 0, len(r.Series))
	for name := range r.Series {
		names = append(names, name)
	}
	sort.Strings(names)
	var rows [][]string
	for _, name := range names {
		for _, p := range r.Series[name] {
			rows = append(rows, []string{name, fmt.Sprintf("%g", p.X), pct(p.Ambiguity.F1), pct(p.Labeling.F1)})
		}
	}
	return r.Title + "\n" + renderTable(header, rows)
}

// FigRows sweeps the number of serialized sample rows in the data-task
// prompt. The paper finds five to be the sweet spot.
func FigRows(cfg Config) (FigResult, error) {
	defer stage("figrows")()
	res := FigResult{Title: "Figure — Data-model quality vs serialized sample rows", XLabel: "rows", Series: map[string][]FigPoint{}}
	knowledge := kb.BuildDefault()
	gen := corpus.NewDefaultGenerator()
	annotators := annotate.All(knowledge)
	test := userstudy.AnnotatedCorpus()
	bags := knowledge.DefinitionBags()
	for _, rows := range []int{1, 2, 3, 5, 8, 10} {
		mCfg := model.DefaultDataConfig()
		mCfg.Tables = cfg.scaled(8000, 1200)
		mCfg.Seed = cfg.Seed
		mCfg.Workers = cfg.Workers
		mCfg.Pretrain = bags
		mCfg.Serialization.MaxRows = rows
		cfg.logf("FigRows: training with %d sample rows", rows)
		m, err := model.Train(fmt.Sprintf("Data-%drows", rows), gen, annotators, mCfg)
		if err != nil {
			return res, fmt.Errorf("experiments: fig rows: %w", err)
		}
		sc := EvaluatePredictor(m, test)
		res.Series["Data"] = append(res.Series["Data"], FigPoint{X: float64(rows), Ambiguity: sc.Ambiguity, Labeling: sc.Labeling})
	}
	return res, nil
}

// FigSerialization compares row against column serialization for the data
// task. The paper finds row serialization ahead.
func FigSerialization(cfg Config) (FigResult, error) {
	defer stage("figserialization")()
	res := FigResult{Title: "Figure — row vs column serialization", XLabel: "variant", Series: map[string][]FigPoint{}}
	knowledge := kb.BuildDefault()
	gen := corpus.NewDefaultGenerator()
	annotators := annotate.All(knowledge)
	test := userstudy.AnnotatedCorpus()
	bags := knowledge.DefinitionBags()
	for i, mode := range []serialize.Mode{serialize.DataRows, serialize.DataColumns} {
		mCfg := model.DefaultDataConfig()
		mCfg.Tables = cfg.scaled(8000, 1200)
		mCfg.Seed = cfg.Seed
		mCfg.Workers = cfg.Workers
		mCfg.Pretrain = bags
		mCfg.Serialization.Mode = mode
		cfg.logf("FigSerialization: training %s", mode)
		m, err := model.Train("Data-"+mode.String(), gen, annotators, mCfg)
		if err != nil {
			return res, fmt.Errorf("experiments: fig serialization: %w", err)
		}
		sc := EvaluatePredictor(m, test)
		res.Series[mode.String()] = append(res.Series[mode.String()],
			FigPoint{X: float64(i), Ambiguity: sc.Ambiguity, Labeling: sc.Labeling})
	}
	return res, nil
}

// FigCorpusSize sweeps the weak-supervision corpus size for the Schema
// model (the ablation DESIGN.md calls out).
func FigCorpusSize(cfg Config) (FigResult, error) {
	defer stage("figcorpus")()
	res := FigResult{Title: "Figure — Schema-model quality vs corpus size", XLabel: "tables", Series: map[string][]FigPoint{}}
	knowledge := kb.BuildDefault()
	gen := corpus.NewDefaultGenerator()
	annotators := annotate.All(knowledge)
	test := userstudy.AnnotatedCorpus()
	bags := knowledge.DefinitionBags()
	for _, tables := range []int{500, 1000, 2000, 4000, 8000, 16000} {
		n := cfg.scaled(tables, 200)
		mCfg := model.DefaultSchemaConfig()
		mCfg.Tables = n
		mCfg.Seed = cfg.Seed
		mCfg.Workers = cfg.Workers
		mCfg.Pretrain = bags
		cfg.logf("FigCorpusSize: training on %d tables", n)
		m, err := model.Train("Schema", gen, annotators, mCfg)
		if err != nil {
			return res, fmt.Errorf("experiments: fig corpus size: %w", err)
		}
		sc := EvaluatePredictor(m, test)
		res.Series["Schema"] = append(res.Series["Schema"], FigPoint{X: float64(n), Ambiguity: sc.Ambiguity, Labeling: sc.Labeling})
	}
	return res, nil
}

// ScalabilityPoint is one measurement of the generation-throughput figure.
type ScalabilityPoint struct {
	TableRows int
	Mode      string
	Workers   int
	Examples  int
	Elapsed   time.Duration
	PerSecond float64
}

// FigScalabilityResult is the template-vs-text-generation throughput
// comparison behind the "millions of examples in seconds" claim.
type FigScalabilityResult struct {
	Points []ScalabilityPoint
}

// String renders the measurements.
func (r FigScalabilityResult) String() string {
	header := []string{"TableRows", "Mode", "Workers", "Examples", "Elapsed", "Examples/s"}
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprint(p.TableRows), p.Mode, fmt.Sprint(p.Workers), fmt.Sprint(p.Examples),
			p.Elapsed.Round(time.Millisecond).String(), fmt.Sprintf("%.0f", p.PerSecond),
		})
	}
	return "Figure — generation throughput, templates vs text generation\n" + renderTable(header, rows)
}

// Speedup returns the throughput ratio of the workers-w templates run over
// the sequential templates run on the largest table, or 0 when either
// point is missing — the headline number of the workers sweep.
func (r FigScalabilityResult) Speedup(w int) float64 {
	maxRows := 0
	for _, p := range r.Points {
		if p.TableRows > maxRows {
			maxRows = p.TableRows
		}
	}
	var base, at float64
	for _, p := range r.Points {
		if p.TableRows != maxRows || p.Mode != "templates" {
			continue
		}
		switch p.Workers {
		case 1:
			base = p.PerSecond
		case w:
			at = p.PerSecond
		}
	}
	if base == 0 {
		return 0
	}
	return at / base
}

// scalabilityWorkerSweep is the worker-count series measured per mode and
// table size — 1 is the sequential baseline the speedups are quoted
// against.
var scalabilityWorkerSweep = []int{1, 2, 4, 8}

// FigScalability measures example-generation throughput on synthetic
// Covid-like tables of growing size, sweeping the worker count per mode so
// the sharding speedup is a reported number rather than a claim.
func FigScalability(cfg Config) (FigScalabilityResult, error) {
	defer stage("figscalability")()
	res := FigScalabilityResult{}
	sizes := []int{500, 1000, 2000}
	for _, rows := range sizes {
		n := cfg.scaled(rows, 200)
		t := scalabilityTable(n)
		md, err := pythia.WithPairs(t, []model.Pair{
			{AttrA: "total_cases", AttrB: "new_cases", Label: "cases"},
		})
		if err != nil {
			return res, fmt.Errorf("experiments: fig scalability: %w", err)
		}
		g := pythia.NewGenerator(t, md)

		measure := func(mode string, workers int, opts pythia.Options) error {
			opts.Seed = cfg.Seed
			opts.Workers = workers
			start := time.Now()
			exs, err := g.Generate(opts)
			if err != nil {
				return fmt.Errorf("experiments: fig scalability: %w", err)
			}
			el := time.Since(start)
			res.Points = append(res.Points, ScalabilityPoint{
				TableRows: n, Mode: mode, Workers: workers, Examples: len(exs), Elapsed: el,
				PerSecond: float64(len(exs)) / el.Seconds(),
			})
			return nil
		}

		// Template mode. The attribute template (Q1) names both subjects in
		// its sentence, so its output grows quadratically — the corpus-scale
		// path behind "millions of examples in seconds". All operators and
		// both match kinds run so the sweep has several heavy a-query units
		// to distribute; a single-unit workload cannot shard.
		for _, w := range scalabilityWorkerSweep {
			if err := measure("templates", w, pythia.Options{
				Mode:       pythia.Templates,
				Structures: []pythia.Structure{pythia.AttributeAmb, pythia.RowAmb},
			}); err != nil {
				return res, err
			}
		}

		// Text generation on the same evidence (capped per query the way
		// the default pipeline runs). Two points bound the sweep: the
		// sequential baseline and the widest shard count.
		for _, w := range []int{1, scalabilityWorkerSweep[len(scalabilityWorkerSweep)-1]} {
			if err := measure("text-generation", w, pythia.Options{
				Structures:  []pythia.Structure{pythia.AttributeAmb, pythia.RowAmb},
				MaxPerQuery: 200,
			}); err != nil {
				return res, err
			}
		}
		cfg.logf("FigScalability: %d rows done", n)
	}
	return res, nil
}

// scalabilityTable builds a Covid-like table with n rows: country x day
// composite key plus two ambiguous measures.
func scalabilityTable(n int) *relation.Table {
	t := relation.NewTable("covid_large", relation.Schema{
		{Name: "country", Kind: relation.KindString},
		{Name: "day", Kind: relation.KindInt},
		{Name: "total_cases", Kind: relation.KindInt},
		{Name: "new_cases", Kind: relation.KindInt},
	})
	countries := 40
	days := (n + countries - 1) / countries
	row := 0
	for c := 0; c < countries && row < n; c++ {
		name := fmt.Sprintf("Country%02d", c)
		total := int64(1000 + c*37)
		for d := 0; d < days && row < n; d++ {
			nc := int64(c*1_000_000 + d*37) // distinct across the table
			total += nc
			t.MustAppend(relation.Row{
				relation.String(name), relation.Int(int64(d)),
				relation.Int(total), relation.Int(nc),
			})
			row++
		}
	}
	return t
}

// AnnotatorAblationRow is the weak-label quality with one annotator
// removed.
type AnnotatorAblationRow struct {
	Removed   string
	Ambiguity metrics.PRF
	Labeling  metrics.PRF
}

// AnnotatorAblationResult is the leave-one-out study over the six
// annotator functions, measured directly on the annotated corpus (how good
// would the raw weak labels be as predictions).
type AnnotatorAblationResult struct {
	Rows []AnnotatorAblationRow
}

// String renders the ablation.
func (r AnnotatorAblationResult) String() string {
	header := []string{"Removed", "Amb-P", "Amb-R", "Amb-F1", "Lab-F1"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Removed, pct(row.Ambiguity.Precision), pct(row.Ambiguity.Recall),
			pct(row.Ambiguity.F1), pct(row.Labeling.F1),
		})
	}
	return "Ablation — leave-one-out annotator functions (raw weak labels)\n" + renderTable(header, rows)
}

// AnnotatorAblation measures raw weak-label quality with each annotator
// removed in turn ("(none)" = all six).
func AnnotatorAblation(cfg Config) AnnotatorAblationResult {
	defer stage("ablation")()
	res := AnnotatorAblationResult{}
	all := annotate.All(kb.BuildDefault())
	test := userstudy.AnnotatedCorpus()
	eval := func(removed string, annotators []annotate.Annotator) {
		p := &votePredictor{annotators: annotators}
		sc := EvaluatePredictor(p, test)
		res.Rows = append(res.Rows, AnnotatorAblationRow{Removed: removed, Ambiguity: sc.Ambiguity, Labeling: sc.Labeling})
	}
	eval("(none)", all)
	for i, a := range all {
		subset := make([]annotate.Annotator, 0, len(all)-1)
		subset = append(subset, all[:i]...)
		subset = append(subset, all[i+1:]...)
		eval(a.Name(), subset)
	}
	return res
}

// votePredictor exposes raw annotator voting as a Predictor.
type votePredictor struct {
	annotators []annotate.Annotator
}

func (v *votePredictor) Name() string { return "annotators" }

func (v *votePredictor) PredictPair(_ []string, _ [][]string, a, b string) (string, float64, bool) {
	label, votes := annotate.Vote(v.annotators, a, b)
	if label == "" {
		return "", 0, false
	}
	return label, float64(votes), true
}
