// Package experiments reproduces every table and figure of the paper's
// evaluation (Section VI). Each experiment has a runner that returns a
// structured result and renders the same rows the paper reports.
//
// Every runner accepts a Scale knob: 1.0 approximates the paper's training
// volumes (minutes of CPU); tests run at a fraction. All runs are seeded
// and deterministic.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/telemetry"
)

// stage starts a per-experiment stage timer recording into the
// "experiments.<name>_ns" latency histogram; runners call
// `defer stage("tableiii")()` so the bench report can break wall-clock
// down by experiment from the telemetry snapshot alone.
func stage(name string) func() {
	tm := telemetry.Default().StartTimer("experiments." + name + "_ns")
	return tm.Stop
}

// Config is shared by all experiment runners.
type Config struct {
	// Scale multiplies training volumes (corpus tables, epochs stay fixed).
	// 1.0 reproduces the headline numbers; tests use ~0.15.
	Scale float64
	Seed  int64
	// Workers shards the parallel stages (corpus generation, annotation,
	// example generation) across a worker pool; 0 = runtime.GOMAXPROCS.
	// Results are byte-identical at every worker count.
	Workers int
	// Log receives progress lines; nil discards them.
	Log io.Writer
}

// DefaultConfig is the full-scale configuration.
func DefaultConfig() Config { return Config{Scale: 1.0, Seed: 7} }

// QuickConfig is the scaled-down configuration used by tests.
func QuickConfig() Config { return Config{Scale: 0.15, Seed: 7} }

// logf writes a progress line when logging is enabled.
func (c Config) logf(format string, args ...any) {
	if c.Log != nil {
		//lint:ignore err-ignored best-effort progress logging; experiment results never depend on the log stream
		fmt.Fprintf(c.Log, format+"\n", args...)
	}
}

// scaled returns max(min, round(n * Scale)).
func (c Config) scaled(n, min int) int {
	v := int(float64(n) * c.Scale)
	if v < min {
		v = min
	}
	return v
}

// renderTable renders rows as a fixed-width text table.
func renderTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// pct renders a ratio as a percentage with one decimal.
func pct(f float64) string { return fmt.Sprintf("%.1f", 100*f) }

// f2 renders a float with two decimals.
func f2(f float64) string { return fmt.Sprintf("%.2f", f) }
