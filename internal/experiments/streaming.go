package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/model"
	"repro/internal/pythia"
)

// StreamingPoint is one memory measurement of the streaming figure: the
// same template-mode generation run through the materializing Generate
// path and the GenerateStream discard-sink path, at one output size.
type StreamingPoint struct {
	TableRows        int           `json:"table_rows"`
	Path             string        `json:"path"` // "materialize" or "stream"
	Examples         int           `json:"examples"`
	Elapsed          time.Duration `json:"elapsed_ns"`
	AllocsPerExample float64       `json:"allocs_per_example"`
	BytesPerExample  float64       `json:"bytes_per_example"`
	// HeapLiveMB is HeapAlloc right after the run, before collection — the
	// materializing path holds the full []Example here, the streaming path
	// only the dedup set and the reorder window.
	HeapLiveMB float64 `json:"heap_live_mb"`
}

// FigStreamingResult is the constant-memory streaming comparison behind
// BENCH_7.json: allocations per example must stay flat as output grows,
// and live heap must not scale with the full materialized slice.
type FigStreamingResult struct {
	Points []StreamingPoint
}

// String renders the measurements.
func (r FigStreamingResult) String() string {
	header := []string{"TableRows", "Path", "Examples", "Elapsed", "Allocs/ex", "Bytes/ex", "HeapLiveMB"}
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprint(p.TableRows), p.Path, fmt.Sprint(p.Examples),
			p.Elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1f", p.AllocsPerExample),
			fmt.Sprintf("%.0f", p.BytesPerExample),
			fmt.Sprintf("%.1f", p.HeapLiveMB),
		})
	}
	return "Figure — streaming vs materializing generation memory\n" + renderTable(header, rows)
}

// AllocsFlatness returns the ratio of streaming allocs/example at the
// largest output size over the smallest (1.0 = perfectly flat), or 0 when
// the points are missing.
func (r FigStreamingResult) AllocsFlatness() float64 {
	var first, last float64
	for _, p := range r.Points {
		if p.Path != "stream" {
			continue
		}
		if first == 0 {
			first = p.AllocsPerExample
		}
		last = p.AllocsPerExample
	}
	if first == 0 {
		return 0
	}
	return last / first
}

// FigStreaming measures the generation pipeline's memory behaviour on
// growing template-mode outputs (the paper's millions-of-examples mode):
// exact allocation counts and bytes per example plus post-run live heap,
// for the materializing Generate path versus GenerateStream into a
// discarding sink. Runs are sequential (Workers=1) so the counts are
// stable, and each point uses a fresh generator so no path inherits the
// other's warm caches.
func FigStreaming(cfg Config) (FigStreamingResult, error) {
	defer stage("figstreaming")()
	res := FigStreamingResult{}
	// Attribute templates grow quadratically in table rows: these sizes
	// land near 10k and 110k examples at full scale — the 10× span the
	// allocs-flatness acceptance is checked over.
	sizes := []int{cfg.scaled(110, 60), cfg.scaled(350, 120)}
	opts := pythia.Options{
		Mode:       pythia.Templates,
		Structures: []pythia.Structure{pythia.AttributeAmb, pythia.RowAmb},
		Seed:       cfg.Seed,
		Workers:    1,
	}
	for _, rows := range sizes {
		newGen := func() (*pythia.Generator, error) {
			t := scalabilityTable(rows)
			md, err := pythia.WithPairs(t, []model.Pair{
				{AttrA: "total_cases", AttrB: "new_cases", Label: "cases"},
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: fig streaming: %w", err)
			}
			return pythia.NewGenerator(t, md), nil
		}

		measure := func(path string, run func(g *pythia.Generator) (int, error)) error {
			g, err := newGen()
			if err != nil {
				return err
			}
			runtime.GC()
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			start := time.Now()
			n, err := run(g)
			elapsed := time.Since(start)
			runtime.ReadMemStats(&after)
			if err != nil {
				return fmt.Errorf("experiments: fig streaming %s: %w", path, err)
			}
			if n == 0 {
				return fmt.Errorf("experiments: fig streaming %s: no examples at %d rows", path, rows)
			}
			res.Points = append(res.Points, StreamingPoint{
				TableRows: rows, Path: path, Examples: n, Elapsed: elapsed,
				AllocsPerExample: float64(after.Mallocs-before.Mallocs) / float64(n),
				BytesPerExample:  float64(after.TotalAlloc-before.TotalAlloc) / float64(n),
				HeapLiveMB:       float64(after.HeapAlloc) / (1 << 20),
			})
			return nil
		}

		if err := measure("materialize", func(g *pythia.Generator) (int, error) {
			exs, err := g.Generate(opts)
			return len(exs), err
		}); err != nil {
			return res, err
		}
		if err := measure("stream", func(g *pythia.Generator) (int, error) {
			n := 0
			err := g.GenerateStream(opts, pythia.SinkFunc(func(pythia.Example) error {
				n++
				return nil
			}))
			return n, err
		}); err != nil {
			return res, err
		}
		cfg.logf("FigStreaming: %d rows done", rows)
	}
	return res, nil
}
