package experiments

import (
	"fmt"

	"repro/internal/coronacheck"
	"repro/internal/pythia"
)

// TableVIResult reproduces Table VI: CoronaCheck accuracy by ambiguity type
// on the 100-claim user log, original vs PYTHIA-trained.
type TableVIResult struct {
	// Correct[structure] = [original, improved]; Total[structure] = claims.
	Correct map[pythia.Structure][2]int
	Total   map[pythia.Structure]int
}

// order fixes the paper's row order.
var tableVIOrder = []pythia.Structure{pythia.RowAmb, pythia.AttributeAmb, pythia.FullAmb, pythia.NoAmb}

// String renders the paper's Table VI.
func (r TableVIResult) String() string {
	header := []string{"Ambiguity", "Claims", "Original", "Original+Pythia"}
	var rows [][]string
	var totO, totI, tot int
	for _, st := range tableVIOrder {
		c := r.Correct[st]
		n := r.Total[st]
		rows = append(rows, []string{
			st.String(), fmt.Sprint(n),
			fmt.Sprintf("%d/%d", c[0], n), fmt.Sprintf("%d/%d", c[1], n),
		})
		totO += c[0]
		totI += c[1]
		tot += n
	}
	rows = append(rows, []string{"Total", fmt.Sprint(tot),
		fmt.Sprintf("%d/%d", totO, tot), fmt.Sprintf("%d/%d", totI, tot)})
	return "Table VI — CoronaCheck accuracy on the user-claim log\n" + renderTable(header, rows)
}

// Totals returns (original, improved, total).
func (r TableVIResult) Totals() (int, int, int) {
	var o, i, n int
	for _, st := range tableVIOrder {
		o += r.Correct[st][0]
		i += r.Correct[st][1]
		n += r.Total[st]
	}
	return o, i, n
}

// TableVI runs the CoronaCheck experiment.
func TableVI(cfg Config) (TableVIResult, error) {
	defer stage("tablevi")()
	res := TableVIResult{
		Correct: map[pythia.Structure][2]int{},
		Total:   map[pythia.Structure]int{},
	}
	log := coronacheck.UserLog(cfg.Seed)
	original := coronacheck.NewOriginal()
	cfg.logf("TableVI: training improved system on PYTHIA examples")
	improved, err := coronacheck.TrainImproved(coronacheck.TrainOptions{Epochs: 6, Seed: cfg.Seed})
	if err != nil {
		return res, fmt.Errorf("experiments: table VI: %w", err)
	}
	for _, cl := range log {
		res.Total[cl.Structure]++
		c := res.Correct[cl.Structure]
		if original.Verify(cl.Text).Kind == cl.Gold {
			c[0]++
		}
		if improved.Verify(cl.Text).Kind == cl.Gold {
			c[1]++
		}
		res.Correct[cl.Structure] = c
	}
	return res, nil
}
