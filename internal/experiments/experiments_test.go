package experiments

import (
	"strings"
	"testing"

	"repro/internal/factcheck"
	"repro/internal/pythia"
)

func TestRenderTable(t *testing.T) {
	got := renderTable([]string{"A", "Long"}, [][]string{{"x", "y"}, {"wider", "z"}})
	if !strings.Contains(got, "A") || !strings.Contains(got, "wider") {
		t.Errorf("renderTable output:\n%s", got)
	}
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != 4 {
		t.Errorf("lines = %d, want 4", len(lines))
	}
}

func TestConfigScaled(t *testing.T) {
	cfg := Config{Scale: 0.1}
	if got := cfg.scaled(1000, 50); got != 100 {
		t.Errorf("scaled = %d, want 100", got)
	}
	if got := cfg.scaled(100, 50); got != 50 {
		t.Errorf("scaled min = %d, want 50", got)
	}
}

func TestTableIV(t *testing.T) {
	res, err := TableIV(QuickConfig())
	if err != nil {
		t.Fatalf("TableIV: %v", err)
	}
	if len(res.Rows) != 11 {
		t.Fatalf("rows = %d, want 11 datasets", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Attribute+row.Row+row.Full == 0 {
			t.Errorf("%s generated no ambiguous examples", row.Dataset)
		}
		if row.TemplateN == 0 {
			t.Errorf("%s generated no template examples", row.Dataset)
		}
	}
	if !strings.Contains(res.String(), "Basket") {
		t.Error("render missing datasets")
	}
}

func TestTableV(t *testing.T) {
	res, err := TableV(QuickConfig())
	if err != nil {
		t.Fatalf("TableV: %v", err)
	}
	// The paper's headline: NEI F1 rises markedly, other classes hold.
	neiBefore := res.BaselineF1[factcheck.NEI]
	neiAfter := res.AugmentedF1[factcheck.NEI]
	t.Logf("\n%s", res.String())
	if neiAfter <= neiBefore {
		t.Errorf("NEI F1 did not improve: %.2f -> %.2f", neiBefore, neiAfter)
	}
	for _, class := range []string{factcheck.Supports, factcheck.Refutes} {
		if res.AugmentedF1[class] < res.BaselineF1[class]-0.15 {
			t.Errorf("%s regressed too much: %.2f -> %.2f", class, res.BaselineF1[class], res.AugmentedF1[class])
		}
	}
}

func TestTableVI(t *testing.T) {
	res, err := TableVI(QuickConfig())
	if err != nil {
		t.Fatalf("TableVI: %v", err)
	}
	t.Logf("\n%s", res.String())
	o, i, n := res.Totals()
	if n != 100 {
		t.Fatalf("total claims = %d, want 100", n)
	}
	if i < o+25 {
		t.Errorf("improvement too small: %d -> %d", o, i)
	}
	if res.Correct[pythia.AttributeAmb][0] != 0 || res.Correct[pythia.FullAmb][0] != 0 {
		t.Error("original system should fail all attribute/full ambiguous claims")
	}
}

func TestTableVII(t *testing.T) {
	res, err := TableVII(QuickConfig())
	if err != nil {
		t.Fatalf("TableVII: %v", err)
	}
	t.Logf("\n%s", res.String())
	if len(res.Rows) < 3 {
		t.Fatalf("rows = %d, want baseline + sweep", len(res.Rows))
	}
	base := res.Rows[0]
	best := res.Rows[len(res.Rows)-1]
	if best.Accuracy <= base.Accuracy {
		t.Errorf("fine-tuning did not improve accuracy: %.2f -> %.2f", base.Accuracy, best.Accuracy)
	}
	if best.Detection.F1 < 0.5 {
		t.Errorf("best detection F1 = %.2f", best.Detection.F1)
	}
}

func TestTableVIII(t *testing.T) {
	res, err := TableVIII(QuickConfig())
	if err != nil {
		t.Fatalf("TableVIII: %v", err)
	}
	t.Logf("\n%s", res.String())
	if len(res.Rows) != 11 {
		t.Fatalf("rows = %d, want 11", len(res.Rows))
	}
	// Judges agree with ground truth at F1 ~0.8-0.95; attribute marking
	// at or below ambiguity detection.
	if res.AvgAmbiguityF1 < 0.7 || res.AvgAmbiguityF1 > 0.98 {
		t.Errorf("avg ambiguity F1 = %.2f, want calibrated 0.7-0.98", res.AvgAmbiguityF1)
	}
	if res.AvgAttrF1 > res.AvgAmbiguityF1+0.05 {
		t.Errorf("attribute detection (%.2f) should not beat ambiguity detection (%.2f)",
			res.AvgAttrF1, res.AvgAmbiguityF1)
	}
}

func TestFigScalability(t *testing.T) {
	res, err := FigScalability(QuickConfig())
	if err != nil {
		t.Fatalf("FigScalability: %v", err)
	}
	t.Logf("\n%s", res.String())
	t.Logf("templates speedup at 4 workers: %.2fx", res.Speedup(4))
	// Templates must outpace text generation per example at every size,
	// comparing the sequential (workers=1) baselines of each mode.
	type key struct {
		rows int
		mode string
	}
	baseline := map[key]float64{}
	workerCounts := map[string]map[int]bool{}
	for _, p := range res.Points {
		if p.Workers == 1 {
			baseline[key{p.TableRows, p.Mode}] = p.PerSecond
		}
		if workerCounts[p.Mode] == nil {
			workerCounts[p.Mode] = map[int]bool{}
		}
		workerCounts[p.Mode][p.Workers] = true
		if p.Examples == 0 {
			t.Errorf("point %+v generated no examples", p)
		}
	}
	for k, tm := range baseline {
		if k.mode != "templates" {
			continue
		}
		tx, ok := baseline[key{k.rows, "text-generation"}]
		if !ok {
			t.Errorf("no text-generation baseline at %d rows", k.rows)
			continue
		}
		if tm < tx {
			t.Errorf("templates slower than text generation at %d rows: %.0f vs %.0f", k.rows, tm, tx)
		}
	}
	// The worker sweep must cover the advertised series for templates and
	// at least the 1/8 endpoints for text generation.
	for _, w := range scalabilityWorkerSweep {
		if !workerCounts["templates"][w] {
			t.Errorf("templates missing workers=%d point", w)
		}
	}
	for _, w := range []int{1, 8} {
		if !workerCounts["text-generation"][w] {
			t.Errorf("text-generation missing workers=%d point", w)
		}
	}
}

func TestAnnotatorAblation(t *testing.T) {
	res := AnnotatorAblation(QuickConfig())
	t.Logf("\n%s", res.String())
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d, want 7 (all + 6 leave-one-out)", len(res.Rows))
	}
	full := res.Rows[0]
	// Removing an annotator should never help recall.
	for _, row := range res.Rows[1:] {
		if row.Ambiguity.Recall > full.Ambiguity.Recall+1e-9 {
			t.Errorf("removing %s increased recall (%.3f > %.3f)", row.Removed,
				row.Ambiguity.Recall, full.Ambiguity.Recall)
		}
	}
}

func TestResultRenderers(t *testing.T) {
	// Renderers must produce the paper-style rows without panicking on
	// partially-filled results.
	t3 := TableIIIResult{Rows: []MethodScores{{Method: "X"}}}
	if !strings.Contains(t3.String(), "Table III") || !strings.Contains(t3.String(), "X") {
		t.Errorf("TableIII render:\n%s", t3)
	}
	if _, ok := t3.Get("X"); !ok {
		t.Error("Get(X) failed")
	}
	if _, ok := t3.Get("missing"); ok {
		t.Error("Get(missing) should fail")
	}
	t5 := TableVResult{
		BaselineF1:  map[string]float64{factcheck.NEI: 0.4},
		AugmentedF1: map[string]float64{factcheck.NEI: 0.6},
		PtSize:      1240,
	}
	if !strings.Contains(t5.String(), "1240") {
		t.Errorf("TableV render:\n%s", t5)
	}
	t6 := TableVIResult{
		Correct: map[pythia.Structure][2]int{pythia.RowAmb: {32, 34}},
		Total:   map[pythia.Structure]int{pythia.RowAmb: 40},
	}
	if !strings.Contains(t6.String(), "32/40") {
		t.Errorf("TableVI render:\n%s", t6)
	}
	t7 := TableVIIResult{Rows: []TableVIIRow{{System: "Baseline (WikiSQL)", Accuracy: 0.5}}}
	if !strings.Contains(t7.String(), "Baseline") {
		t.Errorf("TableVII render:\n%s", t7)
	}
	fig := FigResult{Title: "Fig", XLabel: "x", Series: map[string][]FigPoint{"s": {{X: 1}}}}
	if !strings.Contains(fig.String(), "Fig") {
		t.Errorf("Fig render:\n%s", fig)
	}
	sc := FigScalabilityResult{Points: []ScalabilityPoint{{TableRows: 10, Mode: "templates", Examples: 5}}}
	if !strings.Contains(sc.String(), "templates") {
		t.Errorf("Scalability render:\n%s", sc)
	}
}

func TestScalabilitySpeedup(t *testing.T) {
	res := FigScalabilityResult{Points: []ScalabilityPoint{
		// Smaller table: must be ignored in favor of the largest size.
		{TableRows: 10, Mode: "templates", Workers: 1, PerSecond: 1},
		{TableRows: 10, Mode: "templates", Workers: 4, PerSecond: 100},
		{TableRows: 20, Mode: "templates", Workers: 1, PerSecond: 100},
		{TableRows: 20, Mode: "templates", Workers: 4, PerSecond: 250},
		// Other modes never contribute to the templates speedup.
		{TableRows: 20, Mode: "text-generation", Workers: 4, PerSecond: 9999},
	}}
	if got := res.Speedup(4); got != 2.5 {
		t.Errorf("Speedup(4) = %v, want 2.5", got)
	}
	if got := res.Speedup(2); got != 0 {
		t.Errorf("Speedup(2) = %v, want 0 for a missing point", got)
	}
	if got := (FigScalabilityResult{}).Speedup(4); got != 0 {
		t.Errorf("empty Speedup(4) = %v, want 0", got)
	}
}

func TestFigColdStart(t *testing.T) {
	// Tiny scale: the identity checks (trained vs loaded model, full vs
	// incremental ingest, the worker sweep) are what the test pins — the
	// experiment fails itself on any divergence. Timing floors are CI's
	// job at a scale where they have margin.
	res, err := FigColdStart(Config{Scale: 0.02, Seed: 7})
	if err != nil {
		t.Fatalf("FigColdStart: %v", err)
	}
	t.Logf("\n%s", res.String())
	if len(res.IdenticalWorkers) != len(coldStartWorkerSweep) {
		t.Fatalf("identity sweep covered workers %v, want %v", res.IdenticalWorkers, coldStartWorkerSweep)
	}
	if res.ColdStartSpeedup <= 0 || res.AppendSpeedup <= 0 {
		t.Fatalf("speedups not measured: coldstart %.2f, append %.2f", res.ColdStartSpeedup, res.AppendSpeedup)
	}
	if res.DeltaRows <= 0 || res.BaseRows <= 0 {
		t.Fatalf("ingest sizing empty: base %d delta %d", res.BaseRows, res.DeltaRows)
	}
}
