package experiments

import (
	"fmt"

	"repro/internal/factcheck"
	"repro/internal/metrics"
)

// TableVResult reproduces Table V: Feverous per-class F1 before and after
// adding PYTHIA's ambiguous NEI examples to the training mix.
type TableVResult struct {
	BaselineF1   map[string]float64
	AugmentedF1  map[string]float64
	BaselineAcc  float64
	AugmentedAcc float64
	// PtSize is the number of PYTHIA examples added (the paper's 1240).
	PtSize int
}

// String renders the paper's Table V.
func (r TableVResult) String() string {
	header := []string{"System", "NEI", "Supports", "Refutes", "Acc"}
	row := func(name string, f1 map[string]float64, acc float64) []string {
		return []string{name, f2(f1[factcheck.NEI]), f2(f1[factcheck.Supports]), f2(f1[factcheck.Refutes]), f2(acc)}
	}
	rows := [][]string{
		row("Feverous (baseline)", r.BaselineF1, r.BaselineAcc),
		row(fmt.Sprintf("Feverous on F_t + P_t (%d)", r.PtSize), r.AugmentedF1, r.AugmentedAcc),
	}
	return "Table V — Feverous fact checking, per-class F1\n" + renderTable(header, rows)
}

// TableV runs the Feverous experiment: F_t = 1.1k claims (223 NEI / 388
// Supports / 489 Refutes, no ambiguous NEI), F_test = 276 claims (57/98/121,
// half of NEI ambiguous), P_t = 1240 PYTHIA ambiguous examples; 5 epochs.
func TableV(cfg Config) (TableVResult, error) {
	defer stage("tablev")()
	res := TableVResult{}

	train, err := factcheck.GenerateCorpus(factcheck.CorpusOptions{
		NEI: 223, Supports: 388, Refutes: 489,
		AmbiguousNEIFraction: 0, Seed: cfg.Seed,
	})
	if err != nil {
		return res, fmt.Errorf("experiments: table V: %w", err)
	}
	test, err := factcheck.GenerateCorpus(factcheck.CorpusOptions{
		NEI: 57, Supports: 98, Refutes: 121,
		AmbiguousNEIFraction: 0.5, Seed: cfg.Seed + 1000,
	})
	if err != nil {
		return res, fmt.Errorf("experiments: table V: %w", err)
	}
	res.PtSize = cfg.scaled(1240, 300)
	pt, err := factcheck.GenerateCorpus(factcheck.CorpusOptions{
		NEI: res.PtSize, Supports: 0, Refutes: 0,
		AmbiguousNEIFraction: 1.0, Seed: cfg.Seed + 2000,
	})
	if err != nil {
		return res, fmt.Errorf("experiments: table V: %w", err)
	}
	res.PtSize = len(pt)

	evaluate := func(c *factcheck.Checker) (map[string]float64, float64) {
		conf := metrics.NewConfusion(factcheck.NEI, factcheck.Supports, factcheck.Refutes)
		for _, cl := range test {
			conf.Add(cl.Label, c.Classify(cl))
		}
		out := map[string]float64{}
		for _, class := range conf.Classes() {
			out[class] = conf.Class(class).F1
		}
		return out, conf.Accuracy()
	}

	cfg.logf("TableV: training baseline on %d claims", len(train))
	baseline, err := factcheck.Train(train, factcheck.TrainOptions{Epochs: 5, Seed: cfg.Seed})
	if err != nil {
		return res, fmt.Errorf("experiments: table V: %w", err)
	}
	res.BaselineF1, res.BaselineAcc = evaluate(baseline)

	cfg.logf("TableV: training augmented on %d + %d claims", len(train), len(pt))
	augTrain := append(append([]factcheck.Claim{}, train...), pt...)
	augmented, err := factcheck.Train(augTrain, factcheck.TrainOptions{Epochs: 5, Seed: cfg.Seed})
	if err != nil {
		return res, fmt.Errorf("experiments: table V: %w", err)
	}
	res.AugmentedF1, res.AugmentedAcc = evaluate(augmented)
	return res, nil
}
