package experiments

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/detrand"
	"repro/internal/metrics"
	"repro/internal/relation"
	"repro/internal/texttosql"
)

// TableVIITrainNames / TableVIITestNames follow the paper's split.
var (
	TableVIITrainNames = []string{"Adults", "Soccer", "Laptop", "HeartDiseases"}
	TableVIITestNames  = []string{"Abalone", "Iris", "WineQuality", "Basket", "BasketAcronyms"}
)

// TableVIIRow is one row of Table VII.
type TableVIIRow struct {
	System    string
	TrainSize int // 0 for the baseline
	Detection metrics.PRF
	Accuracy  float64
	BLEU      float64
}

// TableVIIResult is the sweep over training sizes.
type TableVIIResult struct {
	Rows []TableVIIRow
}

// String renders the paper's Table VII.
func (r TableVIIResult) String() string {
	header := []string{"System", "Train", "P", "R", "F1", "ACC", "BLEU"}
	var rows [][]string
	for _, row := range r.Rows {
		size := "-"
		prf := []string{"-", "-", "-"}
		if row.TrainSize > 0 {
			size = fmt.Sprintf("+%d", row.TrainSize)
			prf = []string{f2(row.Detection.Precision), f2(row.Detection.Recall), f2(row.Detection.F1)}
		}
		rows = append(rows, append([]string{row.System, size},
			append(prf, f2(row.Accuracy), fmt.Sprintf("%.2f", row.BLEU))...))
	}
	return "Table VII — text-to-SQL with ambiguity abstention\n" + renderTable(header, rows)
}

// TableVIISizes is the paper's training-size sweep.
var TableVIISizes = []int{200, 481, 2207, 6227, 10219}

// TableVII runs the text-to-SQL experiment: a baseline that never abstains
// and fine-tuned systems over growing samples of the PYTHIA corpus.
func TableVII(cfg Config) (TableVIIResult, error) {
	defer stage("tablevii")()
	res := TableVIIResult{}
	rawTrain, err := texttosql.GenerateCorpus(TableVIITrainNames, cfg.Seed)
	if err != nil {
		return res, fmt.Errorf("experiments: table VII: %w", err)
	}
	train := texttosql.Balance(rawTrain, 1.0, detrand.New(cfg.Seed))
	rawTest, err := texttosql.GenerateCorpus(TableVIITestNames, cfg.Seed+500)
	if err != nil {
		return res, fmt.Errorf("experiments: table VII: %w", err)
	}
	test := texttosql.Balance(rawTest, 1.0, detrand.New(cfg.Seed+500))
	cfg.logf("TableVII: %d training candidates, %d test examples", len(train), len(test))

	var tables []*relation.Table
	for _, n := range append(append([]string{}, TableVIITrainNames...), TableVIITestNames...) {
		tables = append(tables, data.MustLoad(n).Table)
	}

	evaluate := func(s *texttosql.System, name string, size int) TableVIIRow {
		row := TableVIIRow{System: name, TrainSize: size}
		correct := 0
		tp, fp, fn := 0, 0, 0
		var pairs [][2]string
		for _, ex := range test {
			got := s.Predict(ex.Question, ex.Dataset)
			if got == ex.GoldSQL {
				correct++
			}
			switch {
			case ex.Ambiguous && got == texttosql.None:
				tp++
			case !ex.Ambiguous && got == texttosql.None:
				fp++
			case ex.Ambiguous && got != texttosql.None:
				fn++
			}
			// BLEU is only meaningful where a query is expected.
			if ex.GoldSQL != texttosql.None {
				pairs = append(pairs, [2]string{got, ex.GoldSQL})
			}
		}
		row.Accuracy = float64(correct) / float64(len(test))
		row.Detection = metrics.Compute(tp, fp, fn)
		row.BLEU = metrics.MeanBLEU(pairs, 4)
		return row
	}

	baseline := texttosql.Baseline(tables...)
	res.Rows = append(res.Rows, evaluate(baseline, "Baseline (WikiSQL)", 0))

	rng := detrand.New(cfg.Seed)
	shuffled := append([]texttosql.Example{}, train...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	for _, size := range TableVIISizes {
		n := cfg.scaled(size, 100)
		if n > len(shuffled) {
			n = len(shuffled)
		}
		sub := shuffled[:n]
		cfg.logf("TableVII: fine-tuning on %d examples", n)
		ft, err := texttosql.FineTune(sub, tables, texttosql.FineTuneOptions{Epochs: 5, Seed: cfg.Seed})
		if err != nil {
			return res, fmt.Errorf("experiments: table VII: %w", err)
		}
		res.Rows = append(res.Rows, evaluate(ft, "FTPythia", n))
		if n == len(shuffled) {
			break // corpus exhausted; larger sizes would repeat
		}
	}
	return res, nil
}
