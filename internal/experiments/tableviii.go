package experiments

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/pythia"
	"repro/internal/userstudy"
)

// TableVIIIRow is one dataset's scores in the end-to-end user evaluation,
// averaged over its three judges.
type TableVIIIRow struct {
	Dataset   string
	Ambiguity metrics.PRF
	AttrAmb   metrics.PRF
}

// TableVIIIResult holds all datasets plus the averages.
type TableVIIIResult struct {
	Rows           []TableVIIIRow
	AvgAmbiguityF1 float64
	AvgAttrF1      float64
}

// String renders the paper's Table VIII.
func (r TableVIIIResult) String() string {
	header := []string{"Dataset", "Amb-P", "Amb-R", "Amb-F1", "Attr-P", "Attr-R", "Attr-F1"}
	var rows [][]string
	for _, d := range r.Rows {
		rows = append(rows, []string{
			d.Dataset,
			f2(d.Ambiguity.Precision), f2(d.Ambiguity.Recall), f2(d.Ambiguity.F1),
			f2(d.AttrAmb.Precision), f2(d.AttrAmb.Recall), f2(d.AttrAmb.F1),
		})
	}
	rows = append(rows, []string{"AVG", "", "", f2(r.AvgAmbiguityF1), "", "", f2(r.AvgAttrF1)})
	return "Table VIII — end-to-end user evaluation of generated text\n" + renderTable(header, rows)
}

// TableVIII generates at least four ambiguous texts (half via text
// generation, half via templates) and two non-ambiguous texts per dataset,
// then has three simulated judges per dataset annotate them.
func TableVIII(cfg Config) (TableVIIIResult, error) {
	defer stage("tableviii")()
	res := TableVIIIResult{}
	panel := userstudy.DefaultPanel(cfg.Seed)
	names := data.EvaluationNames()

	for di, name := range names {
		d := data.MustLoad(name)
		var pairs []model.Pair
		for _, gt := range d.GroundTruthPairs() {
			pairs = append(pairs, model.Pair{AttrA: gt.AttrA, AttrB: gt.AttrB, Label: gt.Labels[0]})
		}
		md, err := pythia.WithPairs(d.Table, pairs)
		if err != nil {
			return res, fmt.Errorf("experiments: table VIII: %w", err)
		}
		g := pythia.NewGenerator(d.Table, md)

		var sample []pythia.Example
		take := func(exs []pythia.Example, n int) {
			for _, ex := range exs {
				if n == 0 {
					return
				}
				sample = append(sample, ex)
				n--
			}
		}
		textGen, err := g.Generate(pythia.Options{Seed: cfg.Seed, MaxPerQuery: 2})
		if err != nil {
			return res, fmt.Errorf("experiments: table VIII: %w", err)
		}
		take(textGen, 2)
		tmpl, err := g.Generate(pythia.Options{Seed: cfg.Seed + 1, Mode: pythia.Templates, MaxPerQuery: 2})
		if err != nil {
			return res, fmt.Errorf("experiments: table VIII: %w", err)
		}
		take(tmpl, 2)
		plain, err := g.NotAmbiguous(pythia.Options{Seed: cfg.Seed + 2, MaxPerQuery: 1})
		if err != nil {
			return res, fmt.Errorf("experiments: table VIII: %w", err)
		}
		take(plain, 2)
		if len(sample) < 4 {
			return res, fmt.Errorf("experiments: table VIII: dataset %s produced only %d texts", name, len(sample))
		}

		// Three judges per dataset (the paper rotates 11 judges so every
		// dataset gets three annotations).
		row := TableVIIIRow{Dataset: name}
		var ambSum, attrSum metrics.PRF
		for j := 0; j < 3; j++ {
			judge := panel[(di*3+j)%len(panel)]
			var ambTP, ambFP, ambFN int
			var attrTP, attrFP, attrFN int
			for _, ex := range sample {
				a := judge.Assess(ex, d)
				truth := ex.Structure.Ambiguous()
				switch {
				case a.JudgedAmbiguous && truth:
					ambTP++
				case a.JudgedAmbiguous && !truth:
					ambFP++
				case !a.JudgedAmbiguous && truth:
					ambFN++
				}
				if truth {
					if a.JudgedAmbiguous && userstudy.AttrMatch(a.MarkedAttrs, ex.Attrs) {
						attrTP++
					} else if a.JudgedAmbiguous {
						attrFP++
						attrFN++
					} else {
						attrFN++
					}
				} else if a.JudgedAmbiguous && len(a.MarkedAttrs) > 0 {
					attrFP++
				}
			}
			amb := metrics.Compute(ambTP, ambFP, ambFN)
			attr := metrics.Compute(attrTP, attrFP, attrFN)
			ambSum.Precision += amb.Precision
			ambSum.Recall += amb.Recall
			ambSum.F1 += amb.F1
			attrSum.Precision += attr.Precision
			attrSum.Recall += attr.Recall
			attrSum.F1 += attr.F1
		}
		row.Ambiguity = metrics.PRF{Precision: ambSum.Precision / 3, Recall: ambSum.Recall / 3, F1: ambSum.F1 / 3}
		row.AttrAmb = metrics.PRF{Precision: attrSum.Precision / 3, Recall: attrSum.Recall / 3, F1: attrSum.F1 / 3}
		res.Rows = append(res.Rows, row)
		cfg.logf("TableVIII: %s done", name)
	}

	for _, row := range res.Rows {
		res.AvgAmbiguityF1 += row.Ambiguity.F1
		res.AvgAttrF1 += row.AttrAmb.F1
	}
	res.AvgAmbiguityF1 /= float64(len(res.Rows))
	res.AvgAttrF1 /= float64(len(res.Rows))
	return res, nil
}
