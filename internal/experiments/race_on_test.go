//go:build race

package experiments

// raceEnabled reports whether the race detector is compiled in, so tests
// whose training loops run ~15x slower under instrumentation can skip
// rather than trip the per-package test timeout.
const raceEnabled = true
