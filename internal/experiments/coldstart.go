package experiments

// This file is the cold-start figure: what the artifact store and the
// incremental profiling path buy. Part one times training a metadata
// model from scratch against saving and reloading it as an artifact,
// asserting the loaded model generates byte-identically to the freshly
// trained one at every worker count. Part two times a full re-profile +
// re-discovery of an extended table against the incremental append path,
// asserting the two produce identical metadata and identical generated
// bytes.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"time"

	"repro/internal/annotate"
	"repro/internal/artifact"
	"repro/internal/corpus"
	"repro/internal/kb"
	"repro/internal/model"
	"repro/internal/profiling"
	"repro/internal/pythia"
	"repro/internal/relation"
	"repro/internal/sqlengine"
)

// FigColdStartResult reports the artifact-store and incremental-ingest
// speedups with the identity checks that make them safe to claim.
type FigColdStartResult struct {
	// Part one: train vs save/load of the schema metadata model.
	CorpusTables     int     `json:"corpus_tables"`
	TrainSeconds     float64 `json:"train_seconds"`
	SaveSeconds      float64 `json:"save_seconds"`
	LoadSeconds      float64 `json:"load_seconds"`
	ColdStartSpeedup float64 `json:"coldstart_speedup"` // train / load

	// Part two: full re-profile + re-discovery vs incremental append.
	BaseRows           int     `json:"base_rows"`
	DeltaRows          int     `json:"delta_rows"`
	FullSeconds        float64 `json:"full_reprofile_seconds"`
	IncrementalSeconds float64 `json:"incremental_seconds"`
	AppendSpeedup      float64 `json:"append_speedup"` // full / incremental

	// IdenticalWorkers lists the worker counts at which generation from
	// the loaded model matched the trained model byte-for-byte (and the
	// incremental metadata matched the full recompute) — the sweep must
	// come back [1 2 4 8].
	IdenticalWorkers []int `json:"identical_workers"`
}

// String renders the two phases the way the bench report prints them.
func (r FigColdStartResult) String() string {
	header := []string{"Phase", "Seconds", "Speedup"}
	rows := [][]string{
		{fmt.Sprintf("train (%d tables)", r.CorpusTables), fmt.Sprintf("%.3f", r.TrainSeconds), ""},
		{"save artifact", fmt.Sprintf("%.4f", r.SaveSeconds), ""},
		{"load artifact", fmt.Sprintf("%.4f", r.LoadSeconds), fmt.Sprintf("%.0fx", r.ColdStartSpeedup)},
		{fmt.Sprintf("full re-profile (%d rows)", r.BaseRows+r.DeltaRows), fmt.Sprintf("%.4f", r.FullSeconds), ""},
		{fmt.Sprintf("incremental append (%d rows)", r.DeltaRows), fmt.Sprintf("%.4f", r.IncrementalSeconds), fmt.Sprintf("%.1fx", r.AppendSpeedup)},
	}
	return "Figure — cold start: artifact load vs retrain, incremental vs full ingest\n" +
		renderTable(header, rows) +
		fmt.Sprintf("byte-identical generation at workers %v\n", r.IdenticalWorkers)
}

// coldStartWorkerSweep is the worker-count series every identity check
// runs at; 1 is the sequential reference the others must match.
var coldStartWorkerSweep = []int{1, 2, 4, 8}

// FigColdStart measures the artifact-store and incremental-profiling
// speedups. Both are reported as min-of-trials where timing is cheap to
// repeat; the identity assertions fail the run (rather than skewing a
// number) when either fast path diverges from its from-scratch twin.
func FigColdStart(cfg Config) (FigColdStartResult, error) {
	defer stage("figcoldstart")()
	res := FigColdStartResult{}
	knowledge := kb.BuildDefault()

	// Part one — train once, save, reload, and prove the reload is the
	// same model.
	trainCfg := model.DefaultSchemaConfig()
	trainCfg.Tables = cfg.scaled(2000, 60)
	trainCfg.Seed = cfg.Seed
	trainCfg.Pretrain = knowledge.DefinitionBags()
	trainCfg.Workers = cfg.Workers
	res.CorpusTables = trainCfg.Tables
	cfg.logf("FigColdStart: training schema model on %d tables", trainCfg.Tables)

	start := time.Now()
	trained, err := model.Train("Schema", corpus.NewDefaultGenerator(), annotate.All(knowledge), trainCfg)
	if err != nil {
		return res, fmt.Errorf("experiments: fig coldstart: train: %w", err)
	}
	res.TrainSeconds = time.Since(start).Seconds()

	dir, err := os.MkdirTemp("", "figcoldstart")
	if err != nil {
		return res, fmt.Errorf("experiments: fig coldstart: %w", err)
	}
	defer func() {
		//lint:ignore err-ignored best-effort cleanup of the scratch dir; the measurements are already taken
		_ = os.RemoveAll(dir)
	}()
	path := filepath.Join(dir, "schema-model.json")
	fp := artifact.ModelFingerprint("schema", trainCfg)

	start = time.Now()
	if err := artifact.SaveModel(path, trained, fp); err != nil {
		return res, fmt.Errorf("experiments: fig coldstart: save: %w", err)
	}
	res.SaveSeconds = time.Since(start).Seconds()

	start = time.Now()
	loaded, err := artifact.LoadModel(path, fp)
	if err != nil {
		return res, fmt.Errorf("experiments: fig coldstart: load: %w", err)
	}
	res.LoadSeconds = time.Since(start).Seconds()
	if res.LoadSeconds > 0 {
		res.ColdStartSpeedup = res.TrainSeconds / res.LoadSeconds
	}

	identTable := coldStartTable(cfg.scaled(1200, 200))
	mdTrained, err := pythia.Discover(identTable, trained)
	if err != nil {
		return res, fmt.Errorf("experiments: fig coldstart: discover (trained): %w", err)
	}
	mdLoaded, err := pythia.Discover(identTable, loaded)
	if err != nil {
		return res, fmt.Errorf("experiments: fig coldstart: discover (loaded): %w", err)
	}
	if !reflect.DeepEqual(mdTrained.Pairs, mdLoaded.Pairs) {
		return res, fmt.Errorf("experiments: fig coldstart: loaded model predicts different pairs than the trained one")
	}

	// Part two — extend a wide Covid-like table by 5% of its rows and
	// compare the incremental path against profiling + discovery from
	// scratch. The ulabel predictor keeps the comparison about profiling
	// cost, not model inference.
	baseRows := cfg.scaled(24000, 4000)
	deltaRows := baseRows / 20
	if deltaRows < 200 {
		deltaRows = 200
	}
	res.BaseRows, res.DeltaRows = baseRows, deltaRows
	full := coldStartTable(baseRows + deltaRows)
	base := &relation.Table{Name: full.Name, Schema: full.Schema, Rows: full.Rows[:baseRows:baseRows]}
	delta := full.Rows[baseRows:]
	pred := model.NewULabel(knowledge)

	const trials = 3
	var mdFull *pythia.Metadata
	for i := 0; i < trials; i++ {
		start = time.Now()
		prof, err := profiling.ProfileTable(full)
		if err != nil {
			return res, fmt.Errorf("experiments: fig coldstart: full profile: %w", err)
		}
		mdFull, err = pythia.DiscoverWithProfile(full, prof, pred)
		if err != nil {
			return res, fmt.Errorf("experiments: fig coldstart: full discover: %w", err)
		}
		if sec := time.Since(start).Seconds(); i == 0 || sec < res.FullSeconds {
			res.FullSeconds = sec
		}
	}

	var mdInc *pythia.Metadata
	var ext *relation.Table
	for i := 0; i < trials; i++ {
		eng := sqlengine.NewEngine()
		eng.Register(base)
		inc, err := profiling.NewIncremental(base)
		if err != nil {
			return res, fmt.Errorf("experiments: fig coldstart: base profile: %w", err)
		}
		baseMd, err := pythia.DiscoverWithProfile(base, inc.Profile(), pred)
		if err != nil {
			return res, fmt.Errorf("experiments: fig coldstart: base discover: %w", err)
		}
		start = time.Now()
		ext, err = eng.Append(full.Name, delta)
		if err != nil {
			return res, fmt.Errorf("experiments: fig coldstart: engine append: %w", err)
		}
		if _, err := inc.Append(ext, baseRows); err != nil {
			return res, fmt.Errorf("experiments: fig coldstart: incremental profile: %w", err)
		}
		mdInc, err = pythia.UpdateMetadata(baseMd, pred, ext, inc, baseRows)
		if err != nil {
			return res, fmt.Errorf("experiments: fig coldstart: update metadata: %w", err)
		}
		if sec := time.Since(start).Seconds(); i == 0 || sec < res.IncrementalSeconds {
			res.IncrementalSeconds = sec
		}
	}
	if res.IncrementalSeconds > 0 {
		res.AppendSpeedup = res.FullSeconds / res.IncrementalSeconds
	}

	// The incremental metadata must be indistinguishable from the full
	// recompute before its speedup means anything.
	switch {
	case !reflect.DeepEqual(mdFull.Pairs, mdInc.Pairs):
		return res, fmt.Errorf("experiments: fig coldstart: incremental pairs diverge from full recompute")
	case !reflect.DeepEqual(mdFull.Kinds, mdInc.Kinds):
		return res, fmt.Errorf("experiments: fig coldstart: incremental kinds diverge from full recompute")
	case !reflect.DeepEqual(mdFull.Profile.Columns, mdInc.Profile.Columns):
		return res, fmt.Errorf("experiments: fig coldstart: incremental column stats diverge from full recompute")
	case !reflect.DeepEqual(mdFull.Profile.PrimaryKey, mdInc.Profile.PrimaryKey),
		!reflect.DeepEqual(mdFull.Profile.CandidateKeys, mdInc.Profile.CandidateKeys):
		return res, fmt.Errorf("experiments: fig coldstart: incremental keys diverge from full recompute")
	}

	// Byte-identity sweep: trained vs loaded model on the small table, and
	// full vs incremental metadata on the extended table, at every worker
	// count.
	for _, w := range coldStartWorkerSweep {
		bTrained, err := coldStartGenerate(identTable, mdTrained, cfg.Seed, w)
		if err != nil {
			return res, fmt.Errorf("experiments: fig coldstart: generate (trained, w=%d): %w", w, err)
		}
		bLoaded, err := coldStartGenerate(identTable, mdLoaded, cfg.Seed, w)
		if err != nil {
			return res, fmt.Errorf("experiments: fig coldstart: generate (loaded, w=%d): %w", w, err)
		}
		bFull, err := coldStartGenerate(full, mdFull, cfg.Seed, w)
		if err != nil {
			return res, fmt.Errorf("experiments: fig coldstart: generate (full, w=%d): %w", w, err)
		}
		bInc, err := coldStartGenerate(ext, mdInc, cfg.Seed, w)
		if err != nil {
			return res, fmt.Errorf("experiments: fig coldstart: generate (incremental, w=%d): %w", w, err)
		}
		if !bytes.Equal(bTrained, bLoaded) {
			return res, fmt.Errorf("experiments: fig coldstart: loaded-model generation diverges at workers=%d", w)
		}
		if !bytes.Equal(bFull, bInc) {
			return res, fmt.Errorf("experiments: fig coldstart: incremental generation diverges at workers=%d", w)
		}
		res.IdenticalWorkers = append(res.IdenticalWorkers, w)
		cfg.logf("FigColdStart: workers=%d byte-identical (%d bytes)", w, len(bTrained)+len(bFull))
	}
	return res, nil
}

// coldStartGenerate runs template generation and returns the NDJSON bytes
// for identity comparison. Evidence is capped so the check stays fast on
// the large append table.
func coldStartGenerate(t *relation.Table, md *pythia.Metadata, seed int64, workers int) ([]byte, error) {
	g := pythia.NewGenerator(t, md)
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	opts := pythia.Options{
		Mode:        pythia.Templates,
		Structures:  []pythia.Structure{pythia.AttributeAmb, pythia.RowAmb},
		MaxPerQuery: 3,
		Seed:        seed,
		Workers:     workers,
	}
	err := g.GenerateStream(opts, pythia.SinkFunc(func(ex pythia.Example) error { return enc.Encode(ex) }))
	return buf.Bytes(), err
}

// coldStartTable builds a wide Covid-like table with n rows in day-major
// order: (country, day) is the only minimal key — every measure column is
// a function of the day and a 5-way country class modulo a small prime,
// so single columns and measure combinations collide quickly (the key
// search early-exits) and appending later days can never break the key.
func coldStartTable(n int) *relation.Table {
	t := relation.NewTable("covid_wide", relation.Schema{
		{Name: "country", Kind: relation.KindString},
		{Name: "day", Kind: relation.KindInt},
		{Name: "total_cases", Kind: relation.KindInt},
		{Name: "new_cases", Kind: relation.KindInt},
		{Name: "recovered", Kind: relation.KindInt},
		{Name: "active", Kind: relation.KindInt},
		{Name: "tests", Kind: relation.KindInt},
		{Name: "positives", Kind: relation.KindInt},
	})
	const countries = 40
	row := 0
	for d := 0; row < n; d++ {
		for c := 0; c < countries && row < n; c++ {
			measure := func(k int64) relation.Value {
				return relation.Int((int64(d)*13 + int64(c%5)*31 + k*7) % 97)
			}
			t.MustAppend(relation.Row{
				relation.String(fmt.Sprintf("Country%02d", c)),
				relation.Int(int64(d)),
				measure(1), measure(2), measure(3), measure(4), measure(5), measure(6),
			})
			row++
		}
	}
	return t
}
