package experiments

import (
	"testing"
)

// TestTableIIIShape runs the Table III experiment at test scale and checks
// the paper's qualitative findings. The full-scale numbers live in
// EXPERIMENTS.md; this test pins the ordering relations that define the
// result's shape.
func TestTableIIIShape(t *testing.T) {
	if testing.Short() {
		t.Skip("trains four models")
	}
	if raceEnabled {
		t.Skip("trains four models; ~15x slower under the race detector, past the package timeout")
	}
	cfg := QuickConfig()
	cfg.Scale = 0.3 // the Data model needs a mid-size corpus to stabilize
	res, err := TableIII(cfg)
	if err != nil {
		t.Fatalf("TableIII: %v", err)
	}
	t.Logf("\n%s", res.String())

	ulabel, ok1 := res.Get("ULabel")
	slabel, ok2 := res.Get("SLabel")
	schema, ok3 := res.Get("Schema")
	dataM, ok4 := res.Get("Data")
	if !ok1 || !ok2 || !ok3 || !ok4 {
		t.Fatal("missing method rows")
	}

	// "The unsupervised baselines obtain good precision in both tasks, but
	// very low recall."
	if ulabel.Ambiguity.Precision < 0.8 {
		t.Errorf("ULabel ambiguity precision = %.2f, want high", ulabel.Ambiguity.Precision)
	}
	if ulabel.Ambiguity.Recall > schema.Ambiguity.Recall {
		t.Errorf("ULabel recall (%.2f) should trail the trained models (%.2f)",
			ulabel.Ambiguity.Recall, schema.Ambiguity.Recall)
	}
	// "In the task of predicting the label, both our models clearly
	// outperform both baselines." (At reduced training scale we allow the
	// Data model a small tolerance against SLabel; the full-scale run in
	// EXPERIMENTS.md shows the clean ordering.)
	for _, base := range []MethodScores{ulabel, slabel} {
		for _, ours := range []MethodScores{schema, dataM} {
			slack := 0.0
			if ours.Method == "Data" {
				slack = 0.05
			}
			if ours.Labeling.F1 < base.Labeling.F1-slack {
				t.Errorf("%s labeling F1 (%.2f) does not beat %s (%.2f)",
					ours.Method, ours.Labeling.F1, base.Method, base.Labeling.F1)
			}
		}
	}
	// The trained models dominate ambiguity F1 as well.
	if schema.Ambiguity.F1 <= ulabel.Ambiguity.F1 {
		t.Errorf("Schema ambiguity F1 (%.2f) does not beat ULabel (%.2f)",
			schema.Ambiguity.F1, ulabel.Ambiguity.F1)
	}
	// "The model that uses schema and data achieves much higher recall."
	if dataM.Ambiguity.Recall < schema.Ambiguity.Recall {
		t.Errorf("Data recall (%.2f) below Schema recall (%.2f)",
			dataM.Ambiguity.Recall, schema.Ambiguity.Recall)
	}
	// The annotated corpus is substantial (paper: 252 pair-label
	// annotations over 13 tables).
	if res.CorpusStats.Tables != 13 || res.CorpusStats.Annotations < 100 {
		t.Errorf("corpus stats = %+v", res.CorpusStats)
	}
}
