package model

import (
	"sync"
	"testing"

	"repro/internal/annotate"
	"repro/internal/corpus"
	"repro/internal/kb"
	"repro/internal/serialize"
)

// smallTrainConfig keeps tests fast: a small corpus and few epochs.
func smallTrainConfig(mode serialize.Mode) TrainConfig {
	cfg := DefaultSchemaConfig()
	if mode == serialize.DataRows {
		cfg = DefaultDataConfig()
	}
	cfg.Tables = 1500
	cfg.Epochs = 4
	return cfg
}

var basketHeader = []string{"Player", "Team", "field_goal_pct", "three_point_pct", "fouls", "apps"}

// acronymHeader is the hard variant: codes no lexical resource resolves.
var acronymHeader = []string{"Player", "Team", "FG%", "3FG%", "fouls", "apps"}

var basketRows = [][]string{
	{"Carter", "LA", "56", "47", "4", "5"},
	{"Smith", "SF", "55", "30", "4", "7"},
	{"Carter", "SF", "50", "51", "3", "3"},
}

// Trained models are shared across tests (training dominates test time).
// Tests that mutate model state (SetThreshold) must restore it.
var (
	schemaOnce, dataOnce   sync.Once
	schemaModel, dataModel *MetadataModel
	schemaErr, dataErr     error
)

func trainSmall(t *testing.T, mode serialize.Mode) *MetadataModel {
	t.Helper()
	gen := corpus.NewDefaultGenerator()
	anns := annotate.All(kb.BuildDefault())
	if mode == serialize.DataRows {
		dataOnce.Do(func() {
			dataModel, dataErr = Train("Data", gen, anns, smallTrainConfig(mode))
		})
		if dataErr != nil {
			t.Fatalf("Train: %v", dataErr)
		}
		return dataModel
	}
	schemaOnce.Do(func() {
		schemaModel, schemaErr = Train("Schema", gen, anns, smallTrainConfig(mode))
	})
	if schemaErr != nil {
		t.Fatalf("Train: %v", schemaErr)
	}
	return schemaModel
}

func TestSchemaModelFindsFlagshipPair(t *testing.T) {
	m := trainSmall(t, serialize.SchemaOnly)
	label, score, ok := m.PredictPair(basketHeader, nil, "field_goal_pct", "three_point_pct")
	if !ok {
		t.Fatalf("Schema model missed field_goal_pct/three_point_pct (score %.3f)", score)
	}
	if label != "shooting" && label != "scoring" && label != "accuracy" {
		t.Errorf("label = %q, want a shooting-like label", label)
	}
}

func TestSchemaModelRejectsKeyPair(t *testing.T) {
	m := trainSmall(t, serialize.SchemaOnly)
	if label, _, ok := m.PredictPair(basketHeader, nil, "Player", "Team"); ok {
		t.Errorf("Player/Team predicted ambiguous with label %q", label)
	}
}

func TestDataModelUsesRows(t *testing.T) {
	m := trainSmall(t, serialize.DataRows)
	label, _, ok := m.PredictPair(basketHeader, basketRows, "field_goal_pct", "three_point_pct")
	if !ok {
		t.Fatal("Data model missed field_goal_pct/three_point_pct")
	}
	if label == "" {
		t.Error("empty label with ok=true")
	}
}

func TestPredictTableFiltersTypeClasses(t *testing.T) {
	m := trainSmall(t, serialize.SchemaOnly)
	pairs := PredictTable(m, basketHeader, basketRows)
	for _, p := range pairs {
		isNum := func(a string) bool { return a != "Player" && a != "Team" }
		if isNum(p.AttrA) != isNum(p.AttrB) {
			t.Errorf("cross-class pair predicted: %+v", p)
		}
	}
}

func TestThresholdTradesPrecisionForRecall(t *testing.T) {
	m := trainSmall(t, serialize.SchemaOnly)
	defer m.SetThreshold(m.Threshold())
	count := func() int {
		n := 0
		gen := corpus.NewDefaultGenerator()
		for i := 0; i < 30; i++ {
			tab := gen.Table(10_000 + i) // unseen tables
			n += len(PredictTable(m, tab.Header, tab.Rows))
		}
		return n
	}
	m.SetThreshold(0.2)
	loose := count()
	m.SetThreshold(3.0)
	strict := count()
	if strict > loose {
		t.Errorf("higher threshold predicted more pairs (%d > %d)", strict, loose)
	}
	if loose == 0 {
		t.Error("loose threshold found nothing; model underfit")
	}
}

func TestTrainValidation(t *testing.T) {
	gen := corpus.NewDefaultGenerator()
	anns := annotate.All(kb.BuildDefault())
	if _, err := Train("x", gen, anns, TrainConfig{}); err == nil {
		t.Error("expected error for zero Tables")
	}
}

func TestULabelBaseline(t *testing.T) {
	u := NewULabel(kb.BuildDefault())
	if u.Name() != "ULabel" {
		t.Errorf("name = %s", u.Name())
	}
	label, _, ok := u.PredictPair(basketHeader, nil, "field_goal_pct", "three_point_pct")
	if !ok || label == "" {
		t.Errorf("ULabel missed the flagship pair: %q %v", label, ok)
	}
	// LCS fallback: names sharing a meaningful substring.
	label, _, ok = u.PredictPair(nil, nil, "sepal_length", "sepal_width")
	if !ok || label != "sepal" {
		t.Errorf("ULabel LCS fallback = %q/%v, want sepal", label, ok)
	}
	if _, _, ok := u.PredictPair(nil, nil, "A12", "B7"); ok {
		t.Error("ULabel labeled meaningless attributes")
	}
}

// TestSampleRowsDeclarations pins the RowSampler bounds the incremental
// discovery path trusts: the schema prompt and the rule-based baselines
// never read rows, and the data prompt reads exactly its serialization cap.
func TestSampleRowsDeclarations(t *testing.T) {
	var (
		_ RowSampler = (*ULabel)(nil)
		_ RowSampler = (*SLabel)(nil)
		_ RowSampler = (*MetadataModel)(nil)
	)
	if got := NewULabel(kb.BuildDefault()).SampleRows(); got != 0 {
		t.Errorf("ULabel SampleRows = %d, want 0", got)
	}
	if got := trainSmall(t, serialize.SchemaOnly).SampleRows(); got != 0 {
		t.Errorf("schema model SampleRows = %d, want 0", got)
	}
	data := trainSmall(t, serialize.DataRows)
	if got, want := data.SampleRows(), smallTrainConfig(serialize.DataRows).Serialization.MaxRows; got != want {
		t.Errorf("data model SampleRows = %d, want its serialization cap %d", got, want)
	}
	// A round trip through the snapshot must preserve the declaration.
	restored, err := FromSnapshot(data.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if restored.SampleRows() != data.SampleRows() {
		t.Errorf("restored model SampleRows = %d, want %d", restored.SampleRows(), data.SampleRows())
	}
}

func TestSLabelBaseline(t *testing.T) {
	gen := corpus.NewDefaultGenerator()
	cfg := DefaultSLabelConfig()
	cfg.Tables = 600
	cfg.Epochs = 3
	s, err := NewSLabel(gen, kb.BuildDefault(), cfg)
	if err != nil {
		t.Fatalf("NewSLabel: %v", err)
	}
	if s.Name() != "SLabel" {
		t.Errorf("name = %s", s.Name())
	}
	label, _, ok := s.PredictPair(nil, nil, "field_goal_pct", "three_point_pct")
	if !ok {
		t.Error("SLabel missed the flagship pair")
	} else if label == "" {
		t.Error("SLabel returned empty label")
	}
	if _, _, ok := s.PredictPair(nil, nil, "A12", "B7"); ok {
		t.Error("SLabel labeled meaningless attributes")
	}
}

func TestLabelVocab(t *testing.T) {
	lv := NewLabelVocab()
	if lv.Size() != 1 {
		t.Errorf("fresh vocab size = %d, want 1 (none)", lv.Size())
	}
	c := lv.Add("shooting")
	if c == 0 || lv.Class("shooting") != c || lv.Label(c) != "shooting" {
		t.Error("Add/Class/Label inconsistent")
	}
	if lv.Add("shooting") != c {
		t.Error("Add not idempotent")
	}
	if lv.Add("") != 0 {
		t.Error("empty label must map to none")
	}
	if lv.Label(0) != "" || lv.Label(999) != "" {
		t.Error("Label out-of-range handling broken")
	}
}

func TestModelGeneralizesBeyondAnnotators(t *testing.T) {
	// The core claim of Section III: the fine-tuned model recovers
	// ambiguous pairs on surface forms the annotators cannot resolve.
	// "SepalLen"/"SepalWid" are not vocabulary surface forms, so the
	// graph-based annotators abstain; the model sees the shared "sepal"
	// token it learned from the corpus.
	anns := annotate.All(kb.BuildDefault())
	if label, _ := annotate.Vote(anns, "sepal_len_cm", "sepal_wid_cm"); label != "" {
		t.Skip("annotators unexpectedly resolve the probe pair; probe invalid")
	}
	m := trainSmall(t, serialize.SchemaOnly)
	defer m.SetThreshold(m.Threshold())
	header := []string{"species", "sepal_len_cm", "sepal_wid_cm"}
	m.SetThreshold(0.2)
	if _, _, ok := m.PredictPair(header, nil, "sepal_len_cm", "sepal_wid_cm"); !ok {
		t.Log("warning: model did not generalize to unseen surface forms at threshold 0.2")
	}
}
