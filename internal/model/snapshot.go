package model

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/serialize"
)

// Snapshot is the serializable state of a trained MetadataModel: the
// tokenizer vocabulary, the label vocabulary, the classifier weights and
// the inference configuration. Field order is fixed so JSON encodings are
// byte-stable across runs; internal/artifact wraps it in a versioned
// envelope for on-disk persistence.
type Snapshot struct {
	Name          string             `json:"name"`
	Serialization serialize.Config   `json:"serialization"`
	Threshold     float64            `json:"threshold"`
	Tokens        []string           `json:"tokens"` // tokenizer words in ID order
	Labels        []string           `json:"labels"` // label vocabulary in class order
	Classifier    *nn.TextClassifier `json:"classifier"`
}

// Snapshot extracts the serializable state of the model. The classifier is
// shared (weights are not copied): callers persisting the snapshot must
// not train the model concurrently.
func (m *MetadataModel) Snapshot() *Snapshot {
	return &Snapshot{
		Name:          m.name,
		Serialization: m.serial,
		Threshold:     m.threshold,
		Tokens:        m.tok.Words(),
		Labels:        m.labels.Labels(),
		Classifier:    m.clf,
	}
}

// FromSnapshot rebuilds an inference-ready MetadataModel. The classifier's
// optimizer state is not part of a snapshot, so a restored model predicts
// byte-identically but cannot resume training.
func FromSnapshot(s *Snapshot) (*MetadataModel, error) {
	if s == nil {
		return nil, fmt.Errorf("model: nil snapshot")
	}
	if s.Classifier == nil {
		return nil, fmt.Errorf("model: snapshot %q has no classifier", s.Name)
	}
	tok, err := serialize.TokenizerFromWords(s.Tokens)
	if err != nil {
		return nil, fmt.Errorf("model: snapshot %q: %w", s.Name, err)
	}
	labels, err := LabelVocabFromLabels(s.Labels)
	if err != nil {
		return nil, fmt.Errorf("model: snapshot %q: %w", s.Name, err)
	}
	if got, want := s.Classifier.Cfg.VocabSize, tok.Size(); got != want {
		return nil, fmt.Errorf("model: snapshot %q: classifier vocab size %d != tokenizer size %d", s.Name, got, want)
	}
	if got, want := s.Classifier.Cfg.Classes, labels.Size(); got != want {
		return nil, fmt.Errorf("model: snapshot %q: classifier classes %d != label vocab size %d", s.Name, got, want)
	}
	return &MetadataModel{
		name:      s.Name,
		tok:       tok,
		labels:    labels,
		clf:       s.Classifier,
		serial:    s.Serialization,
		threshold: s.Threshold,
	}, nil
}
