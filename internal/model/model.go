// Package model implements the ambiguity-metadata predictors of Section III:
// the fine-tuned Schema and Data models (our trainable stand-ins for the
// paper's fine-tuned T5), and the ULabel / SLabel baselines of Section VI-A.
//
// All four share an interface: given a table context and an attribute pair,
// either produce the ambiguity label or abstain. The two fine-tuned models
// are trained end to end from weak supervision: annotator functions label a
// synthetic web-table corpus, prompts are serialized per Figure 4, and a
// TextClassifier learns to map prompts to a label vocabulary (class 0 =
// none).
package model

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/annotate"
	"repro/internal/corpus"
	"repro/internal/kb"
	"repro/internal/nn"
	"repro/internal/relation"
	"repro/internal/serialize"
	"repro/internal/telemetry"
	"repro/internal/vocab"
)

// modelMet holds the training stage's metric handles.
var modelMet = struct {
	trainNS   *telemetry.Histogram
	positives *telemetry.Counter
	negatives *telemetry.Counter
	examples  *telemetry.Counter
}{
	trainNS:   telemetry.Default().LatencyHistogram("model.train_ns"),
	positives: telemetry.Default().Counter("model.train_positives"),
	negatives: telemetry.Default().Counter("model.train_negatives"),
	examples:  telemetry.Default().Counter("model.train_examples"),
}

// Pair is one discovered unit of ambiguity metadata: two attributes and the
// label describing both (the paper's {FG%, 3FG%} -> "shooting").
type Pair struct {
	AttrA string
	AttrB string
	Label string
	Score float64 // predictor confidence in (0, 1]; 1 for rule-based methods
	// Correlation is the Pearson correlation of the two columns (numeric
	// pairs) and ValueOverlap the Jaccard of their distinct values, filled
	// by pythia.Discover — the paper's future-work profiling signals.
	Correlation  float64
	ValueOverlap float64
}

// Predictor discovers ambiguity metadata for a table.
type Predictor interface {
	// Name identifies the method in experiment reports.
	Name() string
	// PredictPair returns the ambiguity label for one attribute pair, or
	// ok=false when the pair is judged not ambiguous.
	PredictPair(header []string, rows [][]string, attrA, attrB string) (label string, score float64, ok bool)
}

// RowSampler is an optional Predictor refinement declaring how much of the
// table a prediction can depend on: PredictPair's result is a pure function
// of the header, the attribute pair and at most the first SampleRows()
// rows. Rule-based predictors that never read rows return 0; a negative
// value declares an unbounded dependency (every row can matter). The
// incremental discovery path (pythia.UpdateMetadata) only carries
// predictions forward across an append when the declared prefix provably
// did not change; predictors that do not implement RowSampler are treated
// as unbounded and re-predicted in full.
type RowSampler interface {
	SampleRows() int
}

// PredictTable runs a predictor over every same-type-class attribute pair
// of a table (Algorithm 1 only pairs numerical with numerical and
// categorical with categorical).
func PredictTable(p Predictor, header []string, rows [][]string) []Pair {
	return PredictTableWithKinds(p, header, rows, ColumnKinds(header, rows))
}

// PredictTableWithKinds is PredictTable with pre-computed column kinds, so
// callers that already inferred them (the incremental discovery path) do
// not pay a second pass over every cell.
func PredictTableWithKinds(p Predictor, header []string, rows [][]string, kinds []relation.Kind) []Pair {
	var out []Pair
	for i := 0; i < len(header); i++ {
		for j := i + 1; j < len(header); j++ {
			if !sameClass(kinds[i], kinds[j]) {
				continue
			}
			if label, score, ok := p.PredictPair(header, rows, header[i], header[j]); ok {
				out = append(out, Pair{AttrA: header[i], AttrB: header[j], Label: label, Score: score})
			}
		}
	}
	return out
}

// ColumnKinds infers a kind per column from the string cells by unifying
// per-cell inferred kinds. UnifyKind is a semilattice join, so kinds can be
// maintained incrementally: unifying the kinds of a row prefix with the
// kinds of the appended delta equals re-inferring over all rows.
func ColumnKinds(header []string, rows [][]string) []relation.Kind {
	return columnKinds(header, rows)
}

// SameClass reports whether two kinds fall into the same ambiguity type
// class (numeric with numeric, categorical with categorical; KindNull
// pairs with anything).
func SameClass(a, b relation.Kind) bool { return sameClass(a, b) }

// columnKinds infers a kind per column from the string cells.
func columnKinds(header []string, rows [][]string) []relation.Kind {
	kinds := make([]relation.Kind, len(header))
	for _, row := range rows {
		for c := range header {
			if c < len(row) {
				kinds[c] = relation.UnifyKind(kinds[c], relation.InferKind(row[c]))
			}
		}
	}
	return kinds
}

// sameClass groups kinds into the paper's two type classes. Columns with no
// data (KindNull) pair with anything.
func sameClass(a, b relation.Kind) bool {
	if a == relation.KindNull || b == relation.KindNull {
		return true
	}
	num := func(k relation.Kind) bool { return k.Numeric() }
	if num(a) && num(b) {
		return true
	}
	return a == b
}

// ---------------------------------------------------------------------------
// ULabel baseline.
// ---------------------------------------------------------------------------

// ULabel is the unsupervised heuristic baseline of Section VI-A: it
// intersects the ConceptNet synonym set and the Wikipedia titles of the two
// attributes to find common words; when the intersection is empty it falls
// back to the dictionary-filtered LCS. Unlike the trained models it has no
// way to aggregate evidence across relations or tables, which is what caps
// its recall and its label quality.
type ULabel struct {
	k   *kb.KB
	lcs annotate.Annotator
}

// NewULabel builds the baseline from a knowledge base.
func NewULabel(k *kb.KB) *ULabel {
	return &ULabel{k: k, lcs: annotate.All(k)[5]}
}

// Name implements Predictor.
func (u *ULabel) Name() string { return "ULabel" }

// SampleRows implements RowSampler: the baseline decides from the
// attribute names alone and never reads rows.
func (u *ULabel) SampleRows() int { return 0 }

// aliasSet is the union of ConceptNet synonyms and Wikipedia titles.
func (u *ULabel) aliasSet(attr string) map[string]bool {
	out := map[string]bool{}
	for _, a := range u.k.Aliases(attr, kb.Synonym) {
		out[a] = true
	}
	for _, a := range u.k.WikiTitles(attr) {
		out[a] = true
	}
	return out
}

// PredictPair implements Predictor.
func (u *ULabel) PredictPair(_ []string, _ [][]string, attrA, attrB string) (string, float64, bool) {
	sa := u.aliasSet(attrA)
	if len(sa) > 0 {
		sb := u.aliasSet(attrB)
		var common []string
		for a := range sb {
			if sa[a] && !annotate.Stopword(a) {
				common = append(common, a)
			}
		}
		if len(common) > 0 {
			sort.Strings(common)
			return common[0], 1, true
		}
	}
	if ls := u.lcs.Annotate(attrA, attrB); len(ls) > 0 {
		return ls[0], 0.5, true
	}
	return "", 0, false
}

// ---------------------------------------------------------------------------
// Shared prompt/label plumbing for the trained methods.
// ---------------------------------------------------------------------------

// LabelVocab maps label strings to dense classes; class 0 is none.
type LabelVocab struct {
	labels []string
	idx    map[string]int
}

// NewLabelVocab returns an empty vocabulary with the reserved none class.
func NewLabelVocab() *LabelVocab {
	lv := &LabelVocab{idx: map[string]int{}}
	lv.labels = append(lv.labels, "") // class 0 = none
	return lv
}

// Add interns a label and returns its class.
func (lv *LabelVocab) Add(label string) int {
	if label == "" {
		return 0
	}
	if c, ok := lv.idx[label]; ok {
		return c
	}
	c := len(lv.labels)
	lv.idx[label] = c
	lv.labels = append(lv.labels, label)
	return c
}

// Class returns the class for a label (0 when unknown or none).
func (lv *LabelVocab) Class(label string) int { return lv.idx[label] }

// Label returns the label string for a class ("" for none/unknown).
func (lv *LabelVocab) Label(class int) string {
	if class <= 0 || class >= len(lv.labels) {
		return ""
	}
	return lv.labels[class]
}

// Size returns the number of classes including none.
func (lv *LabelVocab) Size() int { return len(lv.labels) }

// Labels returns the label strings in class order (index == class; class 0
// is the reserved none label ""). The slice is a copy; it is the
// serializable form of the vocabulary for artifacts.
func (lv *LabelVocab) Labels() []string {
	out := make([]string, len(lv.labels))
	copy(out, lv.labels)
	return out
}

// LabelVocabFromLabels rebuilds a vocabulary from a Labels() snapshot: the
// list must start with the reserved none label "" and contain no
// duplicates afterwards.
func LabelVocabFromLabels(labels []string) (*LabelVocab, error) {
	if len(labels) == 0 || labels[0] != "" {
		return nil, fmt.Errorf("model: label vocabulary snapshot must start with the reserved none class")
	}
	lv := NewLabelVocab()
	for _, l := range labels[1:] {
		if l == "" {
			return nil, fmt.Errorf("model: label vocabulary snapshot has an empty label outside class 0")
		}
		if _, ok := lv.idx[l]; ok {
			return nil, fmt.Errorf("model: label vocabulary snapshot has duplicate label %q", l)
		}
		lv.Add(l)
	}
	return lv, nil
}

// encodePrompt serializes, encodes and segments one prompt. Segment 1 marks
// everything after [SEP] (the candidate pair).
func encodePrompt(tok *serialize.Tokenizer, cfg serialize.Config, in serialize.Input) ([]int, []int) {
	tokens := serialize.Prompt(cfg, in)
	ids := tok.Encode(tokens)
	segs := make([]int, len(tokens))
	seg := 0
	for i, tkn := range tokens {
		if tkn == serialize.TokSEP {
			seg = 1
		}
		segs[i] = seg
	}
	return ids, segs
}

// ---------------------------------------------------------------------------
// The fine-tuned metadata model (Schema and Data variants).
// ---------------------------------------------------------------------------

// TrainConfig controls weak-supervision training of a MetadataModel.
type TrainConfig struct {
	// Tables is the corpus size (the paper uses 500k; experiments scale it).
	Tables int
	// Serialization selects the prompt variant; the Mode decides whether
	// this is the Schema or the Data model.
	Serialization serialize.Config
	Epochs        int
	LR            float64
	Seed          int64
	// NegPerPos bounds the ratio of none-examples kept per positive.
	NegPerPos float64
	// NegWeight scales the loss of the none class (default 0.5): weak
	// negatives are less trustworthy than weak positives — an annotator
	// abstaining on a covered pair may simply be a resource coverage gap.
	NegWeight float64
	// MinTokenCount drops prompt tokens seen fewer times than this into
	// UNK (default 3), so out-of-vocabulary attribute names at test time
	// hit a calibrated UNK embedding instead of an arbitrary rare one.
	MinTokenCount int
	// AugmentOOV duplicates this fraction of positive examples with the
	// candidate pair's attribute tokens masked to UNK — word-dropout
	// augmentation that teaches the data-task model to decide from the
	// value distributions alone, the behaviour acronym headers require at
	// test time. Zero disables it (the schema task has nothing left to
	// decide from once the pair tokens are gone).
	AugmentOOV float64
	// Threshold is the minimum label probability to assert ambiguity at
	// inference. Higher = more precision, less recall.
	Threshold float64
	// EmbedDim/Hidden size the classifier (defaults from nn apply).
	EmbedDim int
	Hidden   int
	// Pretrain holds definition token bags (kb.DefinitionBags()) used to
	// pretrain the token embeddings before fine-tuning — the substitute
	// for starting from a pre-trained LM. Nil skips pretraining.
	Pretrain [][]string
	// PretrainEpochs controls the pretraining passes (default 5).
	PretrainEpochs int
	// Workers shards the corpus-annotation pass across a worker pool
	// (0 = runtime.GOMAXPROCS, 1 = sequential). Training is byte-identical
	// at every worker count: tables are labelled independently and
	// collected in corpus order.
	Workers int
	// Quiet suppresses progress output.
	Progress func(stage string, done, total int)
}

// DefaultSchemaConfig returns the configuration used for the paper-shaped
// Schema model.
func DefaultSchemaConfig() TrainConfig {
	return TrainConfig{
		Tables:        4000,
		Serialization: serialize.Config{Mode: serialize.SchemaOnly, MaxCellTokens: 3},
		Epochs:        5,
		LR:            3e-3,
		Seed:          17,
		NegPerPos:     1.5,
		Threshold:     0.65,
	}
}

// DefaultDataConfig returns the configuration for the Data model (row
// serialization, 5 rows — the paper's best).
func DefaultDataConfig() TrainConfig {
	cfg := DefaultSchemaConfig()
	cfg.Serialization = serialize.Config{Mode: serialize.DataRows, MaxRows: 5, MaxCellTokens: 3}
	cfg.Threshold = 0.50
	cfg.AugmentOOV = 0.5
	return cfg
}

// MetadataModel is a fine-tuned predictor (Schema or Data variant,
// depending on its serialization mode).
type MetadataModel struct {
	name      string
	tok       *serialize.Tokenizer
	labels    *LabelVocab
	clf       *nn.TextClassifier
	serial    serialize.Config
	threshold float64
}

// Name implements Predictor.
func (m *MetadataModel) Name() string { return m.name }

// SampleRows implements RowSampler: the schema prompt never reads rows,
// the data prompts read at most the serialization row cap, and an uncapped
// data prompt (MaxRows <= 0) serializes every row.
func (m *MetadataModel) SampleRows() int {
	if m.serial.Mode == serialize.SchemaOnly {
		return 0
	}
	if m.serial.MaxRows <= 0 {
		return -1
	}
	return m.serial.MaxRows
}

// Threshold returns the decision threshold (for calibration sweeps).
func (m *MetadataModel) Threshold() float64 { return m.threshold }

// SetThreshold overrides the decision threshold.
func (m *MetadataModel) SetThreshold(t float64) { m.threshold = t }

// LabelVocabSize exposes the number of label classes (diagnostics).
func (m *MetadataModel) LabelVocabSize() int { return m.labels.Size() }

// PredictPair implements Predictor. The ambiguity decision compares the
// total label mass (1 - P(none)) against the threshold; annotators often
// disagree on the exact label for the same kind of pair, so the mass for a
// truly ambiguous pair is spread over sibling labels while P(none) stays
// low. The emitted label is the argmax over the label classes.
func (m *MetadataModel) PredictPair(header []string, rows [][]string, attrA, attrB string) (string, float64, bool) {
	in := serialize.Input{Header: header, Rows: rows, AttrA: attrA, AttrB: attrB}
	ids, segs := encodePrompt(m.tok, m.serial, in)
	_, probs := m.clf.Predict(ids, segs)
	posMass := 1 - probs[0]
	if posMass < m.threshold {
		return "", posMass, false
	}
	best, bestP := 0, 0.0
	for c := 1; c < len(probs); c++ {
		if probs[c] > bestP {
			best, bestP = c, probs[c]
		}
	}
	if best == 0 {
		return "", posMass, false
	}
	return m.labels.Label(best), posMass, true
}

// Train runs the full weak-supervision pipeline of Figure 3: generate (or
// accept) a corpus, annotate attribute pairs, serialize prompts, and
// fine-tune the classifier.
func Train(name string, gen *corpus.Generator, annotators []annotate.Annotator, cfg TrainConfig) (*MetadataModel, error) {
	tm := modelMet.trainNS.Time()
	defer tm.Stop()
	if cfg.Tables <= 0 {
		return nil, fmt.Errorf("model: TrainConfig.Tables must be positive")
	}
	if cfg.NegPerPos <= 0 {
		cfg.NegPerPos = 1.5
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = 0.5
	}

	m := &MetadataModel{
		name:      name,
		tok:       serialize.NewTokenizer(),
		labels:    NewLabelVocab(),
		serial:    cfg.Serialization,
		threshold: cfg.Threshold,
	}

	// Pass 1: annotate the corpus and collect labeled pairs.
	type rawExample struct {
		in    serialize.Input
		class int
	}
	// Tables are generated and labelled in parallel chunks; the chunk
	// results come back in corpus order, so the collected example stream
	// (and therefore the label vocabulary and every later pass) is
	// byte-identical to the sequential loop.
	var positives, negatives []rawExample
	const annotateChunk = 1000
	for base := 0; base < cfg.Tables; base += annotateChunk {
		chunk := annotateChunk
		if base+chunk > cfg.Tables {
			chunk = cfg.Tables - base
		}
		perTable := annotate.LabelTables(annotators, chunk, cfg.Workers, func(i int) (string, []string, [][]string) {
			t := gen.Table(base + i)
			return t.Name, t.Header, t.Rows
		})
		for _, pes := range perTable {
			for _, pe := range pes {
				ex := rawExample{in: serialize.Input{Header: pe.Header, Rows: pe.Rows, AttrA: pe.AttrA, AttrB: pe.AttrB}}
				switch {
				case pe.Label != "":
					ex.class = m.labels.Add(pe.Label)
					positives = append(positives, ex)
				case pe.Covered:
					// Covered-but-unlabeled pairs are weak negatives.
					// Uncovered pairs are unlabeled: training on them as
					// negatives would poison exactly the acronym/code pairs
					// the model is supposed to generalize to.
					negatives = append(negatives, ex)
				}
			}
		}
		if cfg.Progress != nil {
			cfg.Progress("annotate", base+chunk, cfg.Tables)
		}
	}
	if len(positives) == 0 {
		return nil, fmt.Errorf("model: weak supervision produced no positive examples over %d tables", cfg.Tables)
	}

	// Deterministic negative subsampling: keep every k-th negative.
	maxNeg := int(float64(len(positives)) * cfg.NegPerPos)
	if maxNeg < 1 {
		maxNeg = 1
	}
	if len(negatives) > maxNeg {
		stride := float64(len(negatives)) / float64(maxNeg)
		kept := make([]rawExample, 0, maxNeg)
		for i := 0; i < maxNeg; i++ {
			kept = append(kept, negatives[int(float64(i)*stride)])
		}
		negatives = kept
	}

	// Pass 2: fit the tokenizer (prompts AND pretraining bags) with a
	// frequency cutoff, then encode.
	if cfg.MinTokenCount <= 0 {
		cfg.MinTokenCount = 3
	}
	modelMet.positives.Add(int64(len(positives)))
	modelMet.negatives.Add(int64(len(negatives)))
	raw := append(positives, negatives...)
	modelMet.examples.Add(int64(len(raw)))
	counts := map[string]int{}
	for _, ex := range raw {
		for _, t := range serialize.Prompt(cfg.Serialization, ex.in) {
			counts[t]++
		}
	}
	fitCounted := func(tokens []string) {
		kept := tokens[:0:0]
		for _, t := range tokens {
			if counts[t] >= cfg.MinTokenCount || strings.HasPrefix(t, "<") || strings.HasPrefix(t, "[") {
				kept = append(kept, t)
			}
		}
		m.tok.Fit(kept)
	}
	for _, ex := range raw {
		fitCounted(serialize.Prompt(cfg.Serialization, ex.in))
	}
	for _, bag := range cfg.Pretrain {
		m.tok.Fit(bag)
	}
	m.tok.Freeze()
	examples := make([]nn.Example, 0, len(raw))
	unk, _ := m.tok.ID(serialize.TokUnk)
	augmentEvery := 0
	if cfg.AugmentOOV > 0 {
		augmentEvery = int(1 / cfg.AugmentOOV)
	}
	posSeen := 0
	for _, ex := range raw {
		ids, segs := encodePrompt(m.tok, cfg.Serialization, ex.in)
		examples = append(examples, nn.Example{IDs: ids, Segs: segs, Class: ex.class})
		if ex.class == 0 || augmentEvery == 0 {
			continue
		}
		posSeen++
		if posSeen%augmentEvery != 0 {
			continue
		}
		// Word-dropout copy: the pair's attribute tokens become UNK
		// everywhere in the prompt (header and question segment alike).
		attrToks := map[string]bool{}
		for _, t := range vocab.Tokens(ex.in.AttrA) {
			attrToks[t] = true
		}
		for _, t := range vocab.Tokens(ex.in.AttrB) {
			attrToks[t] = true
		}
		tokens := serialize.Prompt(cfg.Serialization, ex.in)
		masked := m.tok.Encode(tokens)
		for i, t := range tokens {
			if attrToks[t] {
				masked[i] = unk
			}
		}
		examples = append(examples, nn.Example{IDs: masked, Segs: segs, Class: ex.class})
	}

	m.clf = nn.NewTextClassifier(nn.Config{
		VocabSize: m.tok.Size(),
		EmbedDim:  cfg.EmbedDim,
		Hidden:    cfg.Hidden,
		Classes:   m.labels.Size(),
		Seed:      cfg.Seed,
	})
	if len(cfg.Pretrain) > 0 {
		bags := make([][]int, 0, len(cfg.Pretrain))
		for _, bag := range cfg.Pretrain {
			bags = append(bags, m.tok.Encode(bag))
		}
		m.clf.PretrainEmbeddings(bags, nn.PretrainOptions{
			Epochs: cfg.PretrainEpochs,
			Seed:   cfg.Seed + 2,
		})
	}
	var progress func(int, float64)
	if cfg.Progress != nil {
		progress = func(epoch int, loss float64) {
			cfg.Progress(fmt.Sprintf("epoch %d loss %.4f", epoch, loss), epoch+1, cfg.Epochs)
		}
	}
	if cfg.NegWeight == 0 {
		cfg.NegWeight = 0.5
	}
	weights := make([]float64, m.labels.Size())
	for i := range weights {
		weights[i] = 1
	}
	weights[0] = cfg.NegWeight
	m.clf.Train(examples, nn.TrainOptions{
		Epochs:       cfg.Epochs,
		LR:           cfg.LR,
		Seed:         cfg.Seed + 1,
		ClassWeights: weights,
		Progress:     progress,
	})
	return m, nil
}

// ---------------------------------------------------------------------------
// SLabel baseline.
// ---------------------------------------------------------------------------

// SLabel is the supervised baseline of Section VI-A: a model fine-tuned to
// emit labels for a *single* attribute; two attributes are ambiguous when
// their predicted label sets intersect.
type SLabel struct {
	tok     *serialize.Tokenizer
	labels  *LabelVocab
	clf     *nn.TextClassifier
	topK    int
	minProb float64
}

// SLabelConfig controls SLabel training.
type SLabelConfig struct {
	Tables  int
	Epochs  int
	LR      float64
	Seed    int64
	TopK    int     // size of each attribute's predicted label set
	MinProb float64 // minimum probability for set membership
}

// DefaultSLabelConfig mirrors the scale of the main models.
func DefaultSLabelConfig() SLabelConfig {
	return SLabelConfig{Tables: 4000, Epochs: 5, LR: 3e-3, Seed: 23, TopK: 4, MinProb: 0.04}
}

// NewSLabel trains the baseline: every alias an annotator produces for an
// attribute becomes one (attribute -> alias) training example.
func NewSLabel(gen *corpus.Generator, k *kb.KB, cfg SLabelConfig) (*SLabel, error) {
	if cfg.Tables <= 0 {
		return nil, fmt.Errorf("model: SLabelConfig.Tables must be positive")
	}
	s := &SLabel{
		tok:     serialize.NewTokenizer(),
		labels:  NewLabelVocab(),
		topK:    cfg.TopK,
		minProb: cfg.MinProb,
	}
	type rawExample struct {
		attr  string
		class int
	}
	var raw []rawExample
	seen := map[string]bool{}
	for i := 0; i < cfg.Tables; i++ {
		t := gen.Table(i)
		for ai, attr := range t.Header {
			key := strings.ToLower(attr)
			if seen[key] {
				continue
			}
			seen[key] = true
			var aliases []string
			for _, rel := range []kb.Relation{kb.Synonym, kb.RelatedTo, kb.DerivedFrom, kb.IsA} {
				aliases = append(aliases, k.Aliases(attr, rel)...)
			}
			aliases = append(aliases, k.WikiTitles(attr)...)
			// The least common substring with every other attribute
			// (dictionary filtered), as the paper describes.
			lcs := annotate.All(k)[5]
			for bi, other := range t.Header {
				if ai == bi {
					continue
				}
				aliases = append(aliases, lcs.Annotate(attr, other)...)
			}
			for _, alias := range aliases {
				if annotate.Stopword(alias) {
					continue
				}
				raw = append(raw, rawExample{attr: attr, class: s.labels.Add(alias)})
			}
		}
	}
	if len(raw) == 0 {
		return nil, fmt.Errorf("model: no alias examples for SLabel over %d tables", cfg.Tables)
	}
	for _, ex := range raw {
		s.tok.Fit(attrTokens(ex.attr))
	}
	s.tok.Freeze()
	examples := make([]nn.Example, 0, len(raw))
	for _, ex := range raw {
		examples = append(examples, nn.Example{IDs: s.tok.Encode(attrTokens(ex.attr)), Class: ex.class})
	}
	s.clf = nn.NewTextClassifier(nn.Config{
		VocabSize: s.tok.Size(),
		Classes:   s.labels.Size(),
		Seed:      cfg.Seed,
	})
	s.clf.Train(examples, nn.TrainOptions{Epochs: cfg.Epochs, LR: cfg.LR, Seed: cfg.Seed + 1})
	return s, nil
}

func attrTokens(attr string) []string {
	ts := serialize.CellTokens(attr, 4)
	return ts
}

// Name implements Predictor.
func (s *SLabel) Name() string { return "SLabel" }

// SampleRows implements RowSampler: label sets are predicted from the
// attribute names alone.
func (s *SLabel) SampleRows() int { return 0 }

// labelSet predicts the top-K labels for one attribute. Attributes whose
// tokens are all out of vocabulary (the paper's "A12") get an empty set:
// the model has no evidence to emit labels from.
func (s *SLabel) labelSet(attr string) map[string]float64 {
	ids := s.tok.Encode(attrTokens(attr))
	unk, _ := s.tok.ID(serialize.TokUnk)
	known := false
	for _, id := range ids {
		if id != unk {
			known = true
			break
		}
	}
	if !known {
		return nil
	}
	_, probs := s.clf.Predict(ids, nil)
	type cand struct {
		class int
		p     float64
	}
	var cands []cand
	for c := 1; c < len(probs); c++ {
		if probs[c] >= s.minProb {
			cands = append(cands, cand{c, probs[c]})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].p > cands[j].p })
	if len(cands) > s.topK {
		cands = cands[:s.topK]
	}
	out := map[string]float64{}
	for _, c := range cands {
		out[s.labels.Label(c.class)] = c.p
	}
	return out
}

// PredictPair implements Predictor: label sets with non-empty intersection
// mean ambiguity; the best joint label wins.
func (s *SLabel) PredictPair(_ []string, _ [][]string, attrA, attrB string) (string, float64, bool) {
	sa := s.labelSet(attrA)
	if len(sa) == 0 {
		return "", 0, false
	}
	sb := s.labelSet(attrB)
	var best string
	var bestScore float64
	for l, pa := range sa {
		if pb, ok := sb[l]; ok {
			if score := pa * pb; score > bestScore {
				best, bestScore = l, score
			}
		}
	}
	if best == "" {
		return "", 0, false
	}
	return best, bestScore, true
}
