package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/detrand"
)

// Config sizes a TextClassifier.
type Config struct {
	VocabSize int // token vocabulary size (from the tokenizer)
	NumSegs   int // segment vocabulary size (e.g. 2: context / question)
	EmbedDim  int
	Hidden    int
	Classes   int
	Seed      int64
}

// withDefaults fills unset dimensions with the defaults used across the
// repository (embed 48, hidden 96, 2 segments).
func (c Config) withDefaults() Config {
	if c.EmbedDim == 0 {
		c.EmbedDim = 48
	}
	if c.Hidden == 0 {
		c.Hidden = 96
	}
	if c.NumSegs == 0 {
		c.NumSegs = 2
	}
	return c
}

// Example is one training instance: a token-ID sequence with per-token
// segment tags and a class label.
type Example struct {
	IDs   []int
	Segs  []int // same length as IDs; nil means all zeros
	Class int
}

// TrainOptions controls the optimization loop.
type TrainOptions struct {
	Epochs int
	LR     float64
	Seed   int64
	// Rand, when non-nil, is the injected generator driving example
	// shuffling; Seed is ignored. Callers sharing one generator across
	// stages get decorrelated draws without coordinating seed offsets.
	Rand *rand.Rand
	// ClassWeights scales the loss per class (nil = uniform). Used to keep
	// the skewed "none" class from dominating.
	ClassWeights []float64
	// Progress, when non-nil, receives (epoch, meanLoss) after each epoch.
	Progress func(epoch int, loss float64)
}

// TextClassifier is an embedding + attention-pooling + MLP classifier:
//
//	e_i  = E[id_i] + S[seg_i]
//	a    = softmax(u · e_i / sqrt(d))
//	p    = Σ a_i e_i
//	h    = relu(W1 p + b1)
//	out  = softmax(W2 h + b2)
//
// It is the stand-in for fine-tuning a pre-trained LM head: small enough to
// train in seconds on a laptop, expressive enough to generalize past its
// weak supervision.
type TextClassifier struct {
	Cfg Config

	Emb []float64 // VocabSize x EmbedDim
	Seg []float64 // NumSegs x EmbedDim
	U   []float64 // EmbedDim attention query
	W1  []float64 // Hidden x EmbedDim
	B1  []float64 // Hidden
	W2  []float64 // Classes x Hidden
	B2  []float64 // Classes

	optEmb *lazyAdam
	optSeg []*Adam // one per segment row
	optU   *Adam
	optW1  *Adam
	optB1  *Adam
	optW2  *Adam
	optB2  *Adam
}

// lazyAdam applies Adam row-wise to an embedding table, touching only the
// rows present in each example (per-row step counts approximate the bias
// correction).
type lazyAdam struct {
	M, V []float64
	T    []int
	Dim  int
	LR   float64
}

func newLazyAdam(rows, dim int, lr float64) *lazyAdam {
	return &lazyAdam{M: make([]float64, rows*dim), V: make([]float64, rows*dim), T: make([]int, rows), Dim: dim, LR: lr}
}

func (l *lazyAdam) step(params []float64, row int, grad []float64) {
	l.T[row]++
	t := float64(l.T[row])
	c1 := 1 - math.Pow(0.9, t)
	c2 := 1 - math.Pow(0.999, t)
	off := row * l.Dim
	for i, g := range grad {
		j := off + i
		l.M[j] = 0.9*l.M[j] + 0.1*g
		l.V[j] = 0.999*l.V[j] + 0.001*g*g
		params[j] -= l.LR * (l.M[j] / c1) / (math.Sqrt(l.V[j]/c2) + 1e-8)
	}
}

// NewTextClassifier allocates and initializes a model.
func NewTextClassifier(cfg Config) *TextClassifier {
	cfg = cfg.withDefaults()
	rng := detrand.New(cfg.Seed)
	c := &TextClassifier{Cfg: cfg}
	c.Emb = make([]float64, cfg.VocabSize*cfg.EmbedDim)
	c.Seg = make([]float64, cfg.NumSegs*cfg.EmbedDim)
	c.U = make([]float64, cfg.EmbedDim)
	c.W1 = make([]float64, cfg.Hidden*cfg.EmbedDim)
	c.B1 = make([]float64, cfg.Hidden)
	c.W2 = make([]float64, cfg.Classes*cfg.Hidden)
	c.B2 = make([]float64, cfg.Classes)
	xavier(c.Emb, cfg.EmbedDim, cfg.EmbedDim, rng)
	xavier(c.Seg, cfg.EmbedDim, cfg.EmbedDim, rng)
	xavier(c.U, cfg.EmbedDim, 1, rng)
	xavier(c.W1, cfg.EmbedDim, cfg.Hidden, rng)
	xavier(c.W2, cfg.Hidden, cfg.Classes, rng)
	return c
}

// forwardState carries per-example activations for backprop.
type forwardState struct {
	embs   [][]float64 // e_i (materialized copies)
	attn   []float64   // a
	pooled []float64   // p
	pre1   []float64   // W1 p + b1
	hidden []float64   // relu(pre1)
	logits []float64
	probs  []float64
}

// forward runs the network and fills st.
func (c *TextClassifier) forward(ids, segs []int, st *forwardState) {
	d := c.Cfg.EmbedDim
	n := len(ids)
	st.embs = st.embs[:0]
	scores := make([]float64, n)
	invSqrt := 1 / math.Sqrt(float64(d))
	for i := 0; i < n; i++ {
		e := make([]float64, d)
		copy(e, c.Emb[ids[i]*d:(ids[i]+1)*d])
		if segs != nil {
			axpy(1, c.Seg[segs[i]*d:(segs[i]+1)*d], e)
		}
		st.embs = append(st.embs, e)
		scores[i] = dot(c.U, e) * invSqrt
	}
	st.attn = make([]float64, n)
	Softmax(scores, st.attn)
	st.pooled = make([]float64, d)
	for i := 0; i < n; i++ {
		axpy(st.attn[i], st.embs[i], st.pooled)
	}
	h := c.Cfg.Hidden
	st.pre1 = make([]float64, h)
	st.hidden = make([]float64, h)
	for j := 0; j < h; j++ {
		st.pre1[j] = c.B1[j] + dot(c.W1[j*d:(j+1)*d], st.pooled)
		if st.pre1[j] > 0 {
			st.hidden[j] = st.pre1[j]
		} else {
			st.hidden[j] = 0
		}
	}
	k := c.Cfg.Classes
	st.logits = make([]float64, k)
	st.probs = make([]float64, k)
	for j := 0; j < k; j++ {
		st.logits[j] = c.B2[j] + dot(c.W2[j*h:(j+1)*h], st.hidden)
	}
	Softmax(st.logits, st.probs)
}

// gradScratch reuses gradient buffers across steps.
type gradScratch struct {
	dlogits, dh, dp, da, de, gW1, gW2, gU []float64
	segs                                  []int
}

func (g *gradScratch) vec(slot *[]float64, n int) []float64 {
	if cap(*slot) < n {
		*slot = make([]float64, n)
	}
	*slot = (*slot)[:n]
	return *slot
}

func (g *gradScratch) zeroSegs(n int) []int {
	if cap(g.segs) < n {
		g.segs = make([]int, n)
	}
	g.segs = g.segs[:n]
	for i := range g.segs {
		g.segs[i] = 0
	}
	return g.segs
}

// grads accumulates one example's parameter gradients. Embedding and
// segment gradients are kept per touched row.
type grads struct {
	embRows           map[int][]float64
	segRows           map[int][]float64
	u, w1, b1, w2, b2 []float64
}

func (g *grads) reset(cfg Config) {
	if g.embRows == nil {
		g.embRows = map[int][]float64{}
		g.segRows = map[int][]float64{}
	}
	for k := range g.embRows {
		delete(g.embRows, k)
	}
	for k := range g.segRows {
		delete(g.segRows, k)
	}
	g.u = resize(g.u, cfg.EmbedDim)
	g.w1 = resize(g.w1, cfg.Hidden*cfg.EmbedDim)
	g.b1 = resize(g.b1, cfg.Hidden)
	g.w2 = resize(g.w2, cfg.Classes*cfg.Hidden)
	g.b2 = resize(g.b2, cfg.Classes)
}

func resize(s []float64, n int) []float64 {
	if cap(s) < n {
		s = make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func (g *grads) row(m map[int][]float64, row, dim int) []float64 {
	r, ok := m[row]
	if !ok {
		r = make([]float64, dim)
		m[row] = r
	}
	return r
}

// backward runs forward + backprop for one example, filling g. It returns
// the weighted loss and does not touch model parameters.
func (c *TextClassifier) backward(ex Example, weight float64, st *forwardState, scratch *gradScratch, g *grads) float64 {
	segs := ex.Segs
	if segs == nil {
		segs = scratch.zeroSegs(len(ex.IDs))
	}
	c.forward(ex.IDs, segs, st)
	d, h, k := c.Cfg.EmbedDim, c.Cfg.Hidden, c.Cfg.Classes
	n := len(ex.IDs)
	g.reset(c.Cfg)

	dlogits := scratch.vec(&scratch.dlogits, k)
	loss := CrossEntropy(st.probs, ex.Class, dlogits) * weight
	for i := range dlogits {
		dlogits[i] *= weight
	}
	copy(g.b2, dlogits)

	// Output layer: dW2 = dlogits ⊗ h, dh = W2ᵀ dlogits.
	dh := scratch.vec(&scratch.dh, h)
	for j := range dh {
		dh[j] = 0
	}
	for j := 0; j < k; j++ {
		for i := 0; i < h; i++ {
			g.w2[j*h+i] = dlogits[j] * st.hidden[i]
			dh[i] += dlogits[j] * c.W2[j*h+i]
		}
	}
	// ReLU gate.
	for j := 0; j < h; j++ {
		if st.pre1[j] <= 0 {
			dh[j] = 0
		}
	}
	copy(g.b1, dh)
	// First layer: dW1 = dh ⊗ p, dp = W1ᵀ dh.
	dp := scratch.vec(&scratch.dp, d)
	for i := range dp {
		dp[i] = 0
	}
	for j := 0; j < h; j++ {
		for i := 0; i < d; i++ {
			g.w1[j*d+i] = dh[j] * st.pooled[i]
			dp[i] += dh[j] * c.W1[j*d+i]
		}
	}
	// Pooling: da_i = dp·e_i; softmax backward ds_i = a_i(da_i - Σ a_j da_j);
	// de_i = a_i dp + ds_i u / sqrt(d); du += ds_i e_i / sqrt(d).
	da := scratch.vec(&scratch.da, n)
	var daDotA float64
	for i := 0; i < n; i++ {
		da[i] = dot(dp, st.embs[i])
		daDotA += da[i] * st.attn[i]
	}
	invSqrt := 1 / math.Sqrt(float64(d))
	de := scratch.vec(&scratch.de, d)
	for i := 0; i < n; i++ {
		ds := st.attn[i] * (da[i] - daDotA) * invSqrt
		for x := 0; x < d; x++ {
			de[x] = st.attn[i]*dp[x] + ds*c.U[x]
			g.u[x] += ds * st.embs[i][x]
		}
		axpy(1, de, g.row(g.embRows, ex.IDs[i], d))
		axpy(1, de, g.row(g.segRows, segs[i], d))
	}
	return loss
}

// trainStep runs backward then applies the optimizers.
func (c *TextClassifier) trainStep(ex Example, weight float64, st *forwardState, scratch *gradScratch, g *grads) float64 {
	loss := c.backward(ex, weight, st, scratch, g)
	d := c.Cfg.EmbedDim
	for row, gr := range g.embRows {
		c.optEmb.step(c.Emb, row, gr)
	}
	for row, gr := range g.segRows {
		c.optSeg[row].Step(c.Seg[row*d:(row+1)*d], gr)
	}
	c.optU.Step(c.U, g.u)
	c.optW1.Step(c.W1, g.w1)
	c.optB1.Step(c.B1, g.b1)
	c.optW2.Step(c.W2, g.w2)
	c.optB2.Step(c.B2, g.b2)
	return loss
}

// Train optimizes the model over the examples. It is deterministic for a
// fixed (model seed, TrainOptions.Seed) pair and returns the mean loss of
// the final epoch.
func (c *TextClassifier) Train(examples []Example, opts TrainOptions) float64 {
	if opts.Epochs <= 0 {
		opts.Epochs = 3
	}
	if opts.LR == 0 {
		opts.LR = 2e-3
	}
	c.optEmb = newLazyAdam(c.Cfg.VocabSize, c.Cfg.EmbedDim, opts.LR)
	c.optSeg = make([]*Adam, c.Cfg.NumSegs)
	for i := range c.optSeg {
		c.optSeg[i] = NewAdam(c.Cfg.EmbedDim, opts.LR)
	}
	c.optU = NewAdam(len(c.U), opts.LR)
	c.optW1 = NewAdam(len(c.W1), opts.LR)
	c.optB1 = NewAdam(len(c.B1), opts.LR)
	c.optW2 = NewAdam(len(c.W2), opts.LR)
	c.optB2 = NewAdam(len(c.B2), opts.LR)

	rng := detrand.Or(opts.Rand, opts.Seed)
	order := make([]int, len(examples))
	for i := range order {
		order[i] = i
	}
	var st forwardState
	var scratch gradScratch
	var g grads
	var lastLoss float64
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var total float64
		for _, idx := range order {
			ex := examples[idx]
			if len(ex.IDs) == 0 {
				continue
			}
			w := 1.0
			if opts.ClassWeights != nil && ex.Class < len(opts.ClassWeights) {
				w = opts.ClassWeights[ex.Class]
			}
			total += c.trainStep(ex, w, &st, &scratch, &g)
		}
		lastLoss = total / float64(len(examples))
		if opts.Progress != nil {
			opts.Progress(epoch, lastLoss)
		}
	}
	return lastLoss
}

// Predict returns the argmax class and the class probability vector.
func (c *TextClassifier) Predict(ids, segs []int) (int, []float64) {
	var st forwardState
	if segs == nil {
		segs = make([]int, len(ids))
	}
	c.forward(ids, segs, &st)
	best := 0
	for i, p := range st.probs {
		if p > st.probs[best] {
			best = i
		}
	}
	return best, st.probs
}

// Loss computes the mean cross-entropy of the model over examples without
// updating parameters.
func (c *TextClassifier) Loss(examples []Example) float64 {
	var st forwardState
	var total float64
	n := 0
	dst := make([]float64, c.Cfg.Classes)
	for _, ex := range examples {
		if len(ex.IDs) == 0 {
			continue
		}
		segs := ex.Segs
		if segs == nil {
			segs = make([]int, len(ex.IDs))
		}
		c.forward(ex.IDs, segs, &st)
		total += CrossEntropy(st.probs, ex.Class, dst)
		n++
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// persisted is the gob-serializable snapshot of a model.
type persisted struct {
	Cfg                         Config
	Emb, Seg, U, W1, B1, W2, B2 []float64
}

// Marshal serializes the model weights.
func (c *TextClassifier) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(persisted{
		Cfg: c.Cfg, Emb: c.Emb, Seg: c.Seg, U: c.U,
		W1: c.W1, B1: c.B1, W2: c.W2, B2: c.B2,
	})
	if err != nil {
		return nil, fmt.Errorf("nn: marshal: %w", err)
	}
	return buf.Bytes(), nil
}

// Unmarshal restores a model serialized by Marshal.
func Unmarshal(data []byte) (*TextClassifier, error) {
	var p persisted
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&p); err != nil {
		return nil, fmt.Errorf("nn: unmarshal: %w", err)
	}
	return &TextClassifier{
		Cfg: p.Cfg, Emb: p.Emb, Seg: p.Seg, U: p.U,
		W1: p.W1, B1: p.B1, W2: p.W2, B2: p.B2,
	}, nil
}
