// Package nn is a small from-scratch neural-network stack: embeddings with
// segment tags, attention pooling, a feed-forward head, softmax
// cross-entropy and (lazy) Adam. It stands in for the pre-trained T5 of the
// paper: every downstream trainable component — the ambiguity metadata
// model, the fact-checking classifiers and the text-to-SQL abstain head —
// is an instance of its TextClassifier.
//
// Everything is float64, seeded and single-threaded, so training runs are
// bit-for-bit reproducible.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// dot returns the inner product of equal-length vectors.
func dot(a, b []float64) float64 {
	var s float64
	for i, x := range a {
		s += x * b[i]
	}
	return s
}

// axpy computes y += alpha * x.
func axpy(alpha float64, x, y []float64) {
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Softmax writes the softmax of logits into out (may alias logits) and
// returns out. It is numerically stabilized by max subtraction.
func Softmax(logits, out []float64) []float64 {
	max := logits[0]
	for _, v := range logits[1:] {
		if v > max {
			max = v
		}
	}
	var sum float64
	for i, v := range logits {
		e := math.Exp(v - max)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// CrossEntropy returns the negative log likelihood of class y under probs,
// and writes dlogits = probs - onehot(y) into dst (the softmax+CE gradient).
func CrossEntropy(probs []float64, y int, dst []float64) float64 {
	copy(dst, probs)
	dst[y] -= 1
	p := probs[y]
	if p < 1e-12 {
		p = 1e-12
	}
	return -math.Log(p)
}

// Adam is the Adam optimizer state for one dense parameter slice.
type Adam struct {
	M, V []float64
	T    int
	// Hyperparameters; zero values are replaced by the defaults
	// (lr 1e-3, beta1 0.9, beta2 0.999, eps 1e-8) at first Step.
	LR    float64
	Beta1 float64
	Beta2 float64
	Eps   float64
}

// NewAdam allocates optimizer state for n parameters at learning rate lr.
func NewAdam(n int, lr float64) *Adam {
	return &Adam{M: make([]float64, n), V: make([]float64, n), LR: lr}
}

func (a *Adam) defaults() {
	if a.LR == 0 {
		a.LR = 1e-3
	}
	if a.Beta1 == 0 {
		a.Beta1 = 0.9
	}
	if a.Beta2 == 0 {
		a.Beta2 = 0.999
	}
	if a.Eps == 0 {
		a.Eps = 1e-8
	}
}

// Step applies one Adam update: params -= lr * m̂ / (sqrt(v̂) + eps).
func (a *Adam) Step(params, grads []float64) {
	a.defaults()
	a.T++
	c1 := 1 - math.Pow(a.Beta1, float64(a.T))
	c2 := 1 - math.Pow(a.Beta2, float64(a.T))
	for i, g := range grads {
		a.M[i] = a.Beta1*a.M[i] + (1-a.Beta1)*g
		a.V[i] = a.Beta2*a.V[i] + (1-a.Beta2)*g*g
		params[i] -= a.LR * (a.M[i] / c1) / (math.Sqrt(a.V[i]/c2) + a.Eps)
	}
}

// xavier fills dst with scaled Gaussian initialization.
func xavier(dst []float64, fanIn, fanOut int, rng *rand.Rand) {
	scale := math.Sqrt(2.0 / float64(fanIn+fanOut))
	for i := range dst {
		dst[i] = rng.NormFloat64() * scale
	}
}

// checkFinite panics with context if any value is NaN or Inf; training code
// calls it in debug paths and tests.
func checkFinite(name string, xs []float64) {
	for i, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			panic(fmt.Sprintf("nn: %s[%d] is not finite (%v)", name, i, x))
		}
	}
}
