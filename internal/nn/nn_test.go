package nn

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func TestSoftmax(t *testing.T) {
	out := make([]float64, 3)
	Softmax([]float64{1, 2, 3}, out)
	var sum float64
	for _, p := range out {
		if p <= 0 || p >= 1 {
			t.Errorf("softmax out of range: %v", out)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("softmax sum = %v", sum)
	}
	if !(out[2] > out[1] && out[1] > out[0]) {
		t.Errorf("softmax not monotone: %v", out)
	}
	// Large logits must not overflow.
	Softmax([]float64{1000, 1001, 999}, out)
	for _, p := range out {
		if math.IsNaN(p) {
			t.Errorf("softmax overflow: %v", out)
		}
	}
}

func TestCrossEntropy(t *testing.T) {
	probs := []float64{0.1, 0.7, 0.2}
	dst := make([]float64, 3)
	loss := CrossEntropy(probs, 1, dst)
	if math.Abs(loss-(-math.Log(0.7))) > 1e-12 {
		t.Errorf("loss = %v", loss)
	}
	want := []float64{0.1, -0.3, 0.2}
	for i := range want {
		if math.Abs(dst[i]-want[i]) > 1e-12 {
			t.Errorf("dlogits = %v, want %v", dst, want)
		}
	}
}

func TestAdamMovesTowardMinimum(t *testing.T) {
	// Minimize f(x) = (x-3)^2 with Adam.
	params := []float64{0}
	a := NewAdam(1, 0.1)
	for i := 0; i < 500; i++ {
		grad := []float64{2 * (params[0] - 3)}
		a.Step(params, grad)
	}
	if math.Abs(params[0]-3) > 0.05 {
		t.Errorf("Adam converged to %v, want 3", params[0])
	}
}

// TestGradientCheck compares the analytic backward pass with finite
// differences on every parameter group of a tiny model.
func TestGradientCheck(t *testing.T) {
	cfg := Config{VocabSize: 7, NumSegs: 2, EmbedDim: 5, Hidden: 4, Classes: 3, Seed: 9}
	c := NewTextClassifier(cfg)
	ex := Example{IDs: []int{1, 3, 3, 5, 2}, Segs: []int{0, 0, 1, 1, 0}, Class: 2}

	var st forwardState
	var scratch gradScratch
	var g grads
	c.backward(ex, 1.0, &st, &scratch, &g)

	lossAt := func() float64 {
		var st2 forwardState
		c.forward(ex.IDs, ex.Segs, &st2)
		dst := make([]float64, cfg.Classes)
		return CrossEntropy(st2.probs, ex.Class, dst)
	}
	const eps = 1e-6
	check := func(name string, params []float64, analytic []float64, idxs []int) {
		for _, i := range idxs {
			orig := params[i]
			params[i] = orig + eps
			up := lossAt()
			params[i] = orig - eps
			down := lossAt()
			params[i] = orig
			numeric := (up - down) / (2 * eps)
			if math.Abs(numeric-analytic[i]) > 1e-4*(1+math.Abs(numeric)) {
				t.Errorf("%s[%d]: analytic %v vs numeric %v", name, i, analytic[i], numeric)
			}
		}
	}

	check("U", c.U, g.u, []int{0, 2, 4})
	check("W1", c.W1, g.w1, []int{0, 7, 19})
	check("B1", c.B1, g.b1, []int{0, 3})
	check("W2", c.W2, g.w2, []int{0, 5, 11})
	check("B2", c.B2, g.b2, []int{0, 1, 2})
	// Embedding rows: flatten the analytic row grads into table coordinates.
	for row, gr := range g.embRows {
		analytic := make([]float64, len(c.Emb))
		copy(analytic[row*cfg.EmbedDim:], gr)
		check("Emb", c.Emb, analytic, []int{row * cfg.EmbedDim, row*cfg.EmbedDim + 2})
	}
	for row, gr := range g.segRows {
		analytic := make([]float64, len(c.Seg))
		copy(analytic[row*cfg.EmbedDim:], gr)
		check("Seg", c.Seg, analytic, []int{row*cfg.EmbedDim + 1})
	}
}

// TestLearnsSeparableTask trains on a synthetic task: class = which marker
// token the sequence contains.
func TestLearnsSeparableTask(t *testing.T) {
	const vocabSize = 50
	rng := rand.New(rand.NewSource(3))
	gen := func(n int) []Example {
		exs := make([]Example, n)
		for i := range exs {
			class := rng.Intn(3)
			ids := []int{10 + class} // marker
			for j := 0; j < 6; j++ {
				ids = append(ids, 20+rng.Intn(25)) // noise
			}
			rng.Shuffle(len(ids), func(a, b int) { ids[a], ids[b] = ids[b], ids[a] })
			exs[i] = Example{IDs: ids, Class: class}
		}
		return exs
	}
	train, test := gen(400), gen(100)
	c := NewTextClassifier(Config{VocabSize: vocabSize, EmbedDim: 16, Hidden: 24, Classes: 3, Seed: 1})
	c.Train(train, TrainOptions{Epochs: 6, LR: 5e-3, Seed: 2})
	correct := 0
	for _, ex := range test {
		got, _ := c.Predict(ex.IDs, nil)
		if got == ex.Class {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(test)); acc < 0.95 {
		t.Errorf("test accuracy = %.2f, want >= 0.95 on separable task", acc)
	}
}

// TestSegmentEmbeddingsMatter trains a task solvable only via segments:
// class 1 iff token 5 appears in segment 1.
func TestSegmentEmbeddingsMatter(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	gen := func(n int) []Example {
		exs := make([]Example, n)
		for i := range exs {
			class := rng.Intn(2)
			var ids, segs []int
			// Context always contains token 5 in segment 0.
			ids = append(ids, 5, 6, 7)
			segs = append(segs, 0, 0, 0)
			if class == 1 {
				ids = append(ids, 5)
				segs = append(segs, 1)
			} else {
				ids = append(ids, 8)
				segs = append(segs, 1)
			}
			exs[i] = Example{IDs: ids, Segs: segs, Class: class}
		}
		return exs
	}
	train, test := gen(300), gen(80)
	c := NewTextClassifier(Config{VocabSize: 10, EmbedDim: 12, Hidden: 16, Classes: 2, Seed: 1})
	c.Train(train, TrainOptions{Epochs: 8, LR: 5e-3, Seed: 2})
	correct := 0
	for _, ex := range test {
		got, _ := c.Predict(ex.IDs, ex.Segs)
		if got == ex.Class {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(test)); acc < 0.9 {
		t.Errorf("segment task accuracy = %.2f, want >= 0.9", acc)
	}
}

func TestTrainingIsDeterministic(t *testing.T) {
	gen := func() *TextClassifier {
		rng := rand.New(rand.NewSource(1))
		exs := make([]Example, 100)
		for i := range exs {
			exs[i] = Example{IDs: []int{rng.Intn(20), rng.Intn(20)}, Class: rng.Intn(2)}
		}
		c := NewTextClassifier(Config{VocabSize: 20, EmbedDim: 8, Hidden: 8, Classes: 2, Seed: 4})
		c.Train(exs, TrainOptions{Epochs: 2, Seed: 5})
		return c
	}
	a, b := gen(), gen()
	if !reflect.DeepEqual(a.Emb, b.Emb) || !reflect.DeepEqual(a.W2, b.W2) {
		t.Error("training is not deterministic")
	}
}

func TestOverfitsTinyDataset(t *testing.T) {
	exs := []Example{
		{IDs: []int{1, 2}, Class: 0},
		{IDs: []int{3, 4}, Class: 1},
		{IDs: []int{5, 6}, Class: 2},
	}
	c := NewTextClassifier(Config{VocabSize: 8, EmbedDim: 8, Hidden: 8, Classes: 3, Seed: 2})
	loss := c.Train(exs, TrainOptions{Epochs: 200, LR: 1e-2, Seed: 1})
	if loss > 0.01 {
		t.Errorf("final loss = %v, want < 0.01 (must overfit 3 examples)", loss)
	}
	for _, ex := range exs {
		if got, _ := c.Predict(ex.IDs, nil); got != ex.Class {
			t.Errorf("Predict(%v) = %d, want %d", ex.IDs, got, ex.Class)
		}
	}
}

func TestClassWeightsShiftDecisions(t *testing.T) {
	// Ambiguous data: identical inputs with conflicting labels, 50/50.
	var exs []Example
	for i := 0; i < 50; i++ {
		exs = append(exs, Example{IDs: []int{1}, Class: 0}, Example{IDs: []int{1}, Class: 1})
	}
	weighted := NewTextClassifier(Config{VocabSize: 4, EmbedDim: 8, Hidden: 8, Classes: 2, Seed: 3})
	weighted.Train(exs, TrainOptions{Epochs: 10, Seed: 1, ClassWeights: []float64{1, 5}})
	got, probs := weighted.Predict([]int{1}, nil)
	if got != 1 {
		t.Errorf("upweighted class not preferred: class %d, probs %v", got, probs)
	}
}

func TestMarshalRoundtrip(t *testing.T) {
	c := NewTextClassifier(Config{VocabSize: 10, EmbedDim: 8, Hidden: 8, Classes: 2, Seed: 6})
	c.Train([]Example{{IDs: []int{1, 2}, Class: 1}}, TrainOptions{Epochs: 3, Seed: 1})
	data, err := c.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	ids := []int{1, 2, 3}
	c1, p1 := c.Predict(ids, nil)
	c2, p2 := back.Predict(ids, nil)
	if c1 != c2 || !reflect.DeepEqual(p1, p2) {
		t.Error("roundtripped model predicts differently")
	}
	if _, err := Unmarshal([]byte("garbage")); err == nil {
		t.Error("expected error for garbage input")
	}
}

func TestEmptyExamplesSkipped(t *testing.T) {
	c := NewTextClassifier(Config{VocabSize: 4, EmbedDim: 4, Hidden: 4, Classes: 2, Seed: 1})
	// Must not panic on empty ID sequences.
	c.Train([]Example{{IDs: nil, Class: 0}, {IDs: []int{1}, Class: 1}}, TrainOptions{Epochs: 1, Seed: 1})
	if l := c.Loss([]Example{{IDs: nil, Class: 0}}); l != 0 {
		t.Errorf("Loss over empty examples = %v, want 0", l)
	}
}

func TestLossDecreasesDuringTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var exs []Example
	for i := 0; i < 200; i++ {
		class := rng.Intn(2)
		exs = append(exs, Example{IDs: []int{class*2 + 1, rng.Intn(10) + 10}, Class: class})
	}
	c := NewTextClassifier(Config{VocabSize: 20, EmbedDim: 8, Hidden: 12, Classes: 2, Seed: 11})
	var losses []float64
	c.Train(exs, TrainOptions{Epochs: 5, Seed: 3, Progress: func(_ int, l float64) {
		losses = append(losses, l)
	}})
	if len(losses) != 5 {
		t.Fatalf("progress callbacks = %d", len(losses))
	}
	if losses[4] >= losses[0] {
		t.Errorf("loss did not decrease: %v", losses)
	}
	checkFinite("losses", losses)
}
