package nn

import (
	"math"
	"math/rand"

	"repro/internal/detrand"
)

// PretrainOptions controls embedding pretraining.
type PretrainOptions struct {
	Epochs    int     // passes over the bags (default 5)
	LR        float64 // SGD learning rate (default 0.05)
	Negatives int     // negative samples per positive (default 4)
	Seed      int64
	// Rand, when non-nil, replaces the Seed-derived generator.
	Rand *rand.Rand
}

// PretrainEmbeddings runs skip-gram-with-negative-sampling over token bags:
// tokens that co-occur in a bag are pulled together, random tokens pushed
// apart. It is the stand-in for the semantic prior a pre-trained language
// model brings to fine-tuning — after it, "length" and "weight" are close
// because both co-occur with "magnitude" in their definition bags, even
// though no fine-tuning example links them directly.
//
// Call before Train; Train's Adam state is independent of these updates.
func (c *TextClassifier) PretrainEmbeddings(bags [][]int, opts PretrainOptions) {
	if opts.Epochs <= 0 {
		opts.Epochs = 5
	}
	if opts.LR == 0 {
		opts.LR = 0.05
	}
	if opts.Negatives <= 0 {
		opts.Negatives = 4
	}
	rng := detrand.Or(opts.Rand, opts.Seed)
	d := c.Cfg.EmbedDim
	vocab := c.Cfg.VocabSize
	sigmoid := func(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
	gradA := make([]float64, d)

	for epoch := 0; epoch < opts.Epochs; epoch++ {
		for _, bag := range bags {
			if len(bag) < 2 {
				continue
			}
			for i, a := range bag {
				// One positive partner per anchor per pass keeps cost linear.
				b := bag[rng.Intn(len(bag))]
				if b == a && len(bag) > 1 {
					b = bag[(i+1)%len(bag)]
				}
				ea := c.Emb[a*d : (a+1)*d]
				eb := c.Emb[b*d : (b+1)*d]
				// Positive: maximize log sigma(ea.eb).
				g := 1 - sigmoid(dot(ea, eb))
				for x := 0; x < d; x++ {
					gradA[x] = g * eb[x]
					eb[x] += opts.LR * g * ea[x]
				}
				// Negatives: minimize log sigma(ea.en).
				for k := 0; k < opts.Negatives; k++ {
					n := rng.Intn(vocab)
					if n == a || n == b {
						continue
					}
					en := c.Emb[n*d : (n+1)*d]
					gn := sigmoid(dot(ea, en))
					for x := 0; x < d; x++ {
						gradA[x] -= gn * en[x]
						en[x] -= opts.LR * gn * ea[x]
					}
				}
				axpy(opts.LR, gradA, ea)
			}
		}
	}
}
