package nn

import (
	"math"
	"testing"
)

func cosine(a, b []float64) float64 {
	return dot(a, b) / (math.Sqrt(dot(a, a)) * math.Sqrt(dot(b, b)))
}

func TestPretrainPullsCooccurringTokensTogether(t *testing.T) {
	cfg := Config{VocabSize: 40, EmbedDim: 16, Hidden: 8, Classes: 2, Seed: 3}
	c := NewTextClassifier(cfg)
	// Tokens 1 and 2 always co-occur ("length" and "magnitude"); tokens 1
	// and 30 never do.
	var bags [][]int
	for i := 0; i < 30; i++ {
		bags = append(bags, []int{1, 2, 3 + i%5})
	}
	d := cfg.EmbedDim
	before := cosine(c.Emb[1*d:2*d], c.Emb[2*d:3*d])
	c.PretrainEmbeddings(bags, PretrainOptions{Epochs: 8, Seed: 1})
	afterNear := cosine(c.Emb[1*d:2*d], c.Emb[2*d:3*d])
	afterFar := cosine(c.Emb[1*d:2*d], c.Emb[30*d:31*d])
	if afterNear <= before {
		t.Errorf("co-occurring tokens did not move closer: %.3f -> %.3f", before, afterNear)
	}
	if afterNear <= afterFar {
		t.Errorf("co-occurring pair (%.3f) not closer than unrelated pair (%.3f)", afterNear, afterFar)
	}
}

func TestPretrainTransitiveSimilarity(t *testing.T) {
	// "length" (1) and "weight" (5) never co-occur but share "magnitude"
	// (9) — the T5-prior mechanism the metadata model relies on.
	cfg := Config{VocabSize: 30, EmbedDim: 16, Hidden: 8, Classes: 2, Seed: 4}
	c := NewTextClassifier(cfg)
	var bags [][]int
	for i := 0; i < 40; i++ {
		bags = append(bags, []int{1, 9, 10 + i%3}) // length ~ magnitude
		bags = append(bags, []int{5, 9, 14 + i%3}) // weight ~ magnitude
		bags = append(bags, []int{20, 21 + i%4})   // unrelated cluster
	}
	c.PretrainEmbeddings(bags, PretrainOptions{Epochs: 10, Seed: 2})
	d := cfg.EmbedDim
	bridge := cosine(c.Emb[1*d:2*d], c.Emb[5*d:6*d])
	unrelated := cosine(c.Emb[1*d:2*d], c.Emb[20*d:21*d])
	if bridge <= unrelated {
		t.Errorf("transitive pair (%.3f) not closer than unrelated pair (%.3f)", bridge, unrelated)
	}
}

func TestPretrainDeterministic(t *testing.T) {
	mk := func() *TextClassifier {
		c := NewTextClassifier(Config{VocabSize: 10, EmbedDim: 8, Hidden: 4, Classes: 2, Seed: 1})
		c.PretrainEmbeddings([][]int{{1, 2, 3}, {2, 3, 4}}, PretrainOptions{Epochs: 3, Seed: 7})
		return c
	}
	a, b := mk(), mk()
	for i := range a.Emb {
		if a.Emb[i] != b.Emb[i] {
			t.Fatal("pretraining not deterministic")
		}
	}
}

func TestPretrainIgnoresTinyBags(t *testing.T) {
	c := NewTextClassifier(Config{VocabSize: 6, EmbedDim: 4, Hidden: 4, Classes: 2, Seed: 2})
	orig := append([]float64{}, c.Emb...)
	c.PretrainEmbeddings([][]int{{1}, {}}, PretrainOptions{Epochs: 2, Seed: 1})
	for i := range orig {
		if orig[i] != c.Emb[i] {
			t.Fatal("single-token bags must not move embeddings")
		}
	}
}

func TestPretrainKeepsValuesFinite(t *testing.T) {
	c := NewTextClassifier(Config{VocabSize: 20, EmbedDim: 8, Hidden: 4, Classes: 2, Seed: 5})
	var bags [][]int
	for i := 0; i < 19; i++ {
		bags = append(bags, []int{i, i + 1})
	}
	c.PretrainEmbeddings(bags, PretrainOptions{Epochs: 50, LR: 0.2, Seed: 3})
	checkFinite("pretrained embeddings", c.Emb)
}
