package userstudy

import (
	"testing"

	"repro/internal/data"
	"repro/internal/pythia"
)

func TestAnnotatedCorpus(t *testing.T) {
	corpus := AnnotatedCorpus()
	if len(corpus) != 13 {
		t.Fatalf("corpus tables = %d, want 13", len(corpus))
	}
	st := CorpusStats(corpus)
	if st.Pairs < 40 {
		t.Errorf("pairs = %d, want a substantial corpus", st.Pairs)
	}
	if st.Annotations < st.Pairs {
		t.Errorf("annotations (%d) < pairs (%d)", st.Annotations, st.Pairs)
	}
	t.Logf("corpus: %d tables, %d ambiguous pairs, %d pair-label annotations",
		st.Tables, st.Pairs, st.Annotations)
}

func TestPairKeyUnordered(t *testing.T) {
	if PairKey("FG%", "3FG%") != PairKey("3fg%", "fg%") {
		t.Error("PairKey not order/case insensitive")
	}
	if PairKey("a", "b") == PairKey("a", "c") {
		t.Error("PairKey collides")
	}
}

func exampleFor(t *testing.T, ambiguous bool) (pythia.Example, *data.Dataset) {
	t.Helper()
	d := data.MustLoad("Basket")
	if ambiguous {
		return pythia.Example{
			Text:      "Carter LA has higher shooting than Smith SF",
			Structure: pythia.AttributeAmb,
			Attrs:     []string{"FieldGoalPct", "ThreePointPct"},
		}, d
	}
	return pythia.Example{
		Text:      "Carter LA has a Points of 20",
		Structure: pythia.NoAmb,
		Attrs:     []string{"Points"},
	}, d
}

func TestJudgeDeterministic(t *testing.T) {
	j := Judge{ID: 0, DetectSlip: 0.2, AttrSlip: 0.2, Seed: 5}
	ex, d := exampleFor(t, true)
	a1, a2 := j.Assess(ex, d), j.Assess(ex, d)
	if a1.JudgedAmbiguous != a2.JudgedAmbiguous || len(a1.MarkedAttrs) != len(a2.MarkedAttrs) {
		t.Error("judge not deterministic")
	}
}

func TestJudgePanelCalibration(t *testing.T) {
	// Over many texts, a panel judge must be right most of the time but
	// not always.
	panel := DefaultPanel(3)
	d := data.MustLoad("Basket")
	correct, total := 0, 0
	for i := 0; i < 200; i++ {
		amb := i%2 == 0
		ex := pythia.Example{
			Text:      "probe text variant " + string(rune('a'+i%26)) + string(rune('0'+i%10)) + string(rune('A'+(i/26)%26)),
			Structure: pythia.NoAmb,
			Attrs:     []string{"Points"},
		}
		if amb {
			ex.Structure = pythia.AttributeAmb
			ex.Attrs = []string{"FieldGoalPct", "ThreePointPct"}
		}
		for _, j := range panel[:3] {
			got := j.Assess(ex, d)
			if got.JudgedAmbiguous == amb {
				correct++
			}
			total++
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.8 || acc > 0.97 {
		t.Errorf("panel detection accuracy = %.3f, want calibrated 0.80-0.97", acc)
	}
}

func TestPerfectJudge(t *testing.T) {
	j := Judge{Seed: 1} // zero slip rates
	exA, d := exampleFor(t, true)
	got := j.Assess(exA, d)
	if !got.JudgedAmbiguous {
		t.Error("perfect judge missed ambiguity")
	}
	if !AttrMatch(got.MarkedAttrs, exA.Attrs) {
		t.Errorf("perfect judge marked %v", got.MarkedAttrs)
	}
	exN, _ := exampleFor(t, false)
	if j.Assess(exN, d).JudgedAmbiguous {
		t.Error("perfect judge hallucinated ambiguity")
	}
}

func TestWrongAttrMarkingAvoidsTruth(t *testing.T) {
	// With AttrSlip 1, marked attributes must come from outside the truth.
	j := Judge{AttrSlip: 1, Seed: 9}
	ex, d := exampleFor(t, true)
	got := j.Assess(ex, d)
	if !got.JudgedAmbiguous {
		t.Fatal("detection should be perfect with DetectSlip 0")
	}
	if AttrMatch(got.MarkedAttrs, ex.Attrs) {
		t.Errorf("slipping judge still matched truth: %v", got.MarkedAttrs)
	}
	if len(got.MarkedAttrs) == 0 {
		t.Error("no attributes marked")
	}
}

func TestAttrMatch(t *testing.T) {
	if !AttrMatch([]string{"fg%"}, []string{"FG%", "3FG%"}) {
		t.Error("case-insensitive match failed")
	}
	if AttrMatch([]string{"fouls"}, []string{"FG%", "3FG%"}) {
		t.Error("false match")
	}
	if AttrMatch(nil, []string{"FG%"}) {
		t.Error("empty marking matched")
	}
}

func TestJudgeOnNonAmbiguousMarksNothing(t *testing.T) {
	j := Judge{Seed: 2}
	ex, d := exampleFor(t, false)
	got := j.Assess(ex, d)
	if got.JudgedAmbiguous || len(got.MarkedAttrs) != 0 {
		t.Errorf("assessment = %+v", got)
	}
}
