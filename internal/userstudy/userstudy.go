// Package userstudy simulates the two human-annotation campaigns of the
// paper: the Section V attribute-ambiguity corpus over 13 tables (the test
// set of Table III), and the Section VI-D end-to-end judgment of generated
// text (Table VIII).
//
// Ground truth comes from the vocabulary's curated labels; simulated
// annotators are the ground-truth oracle plus calibrated, seeded noise
// (attention slips, near-miss attribute marking), reproducing
// inter-annotator variance without biasing method rankings.
package userstudy

import (
	"sort"
	"strings"

	"repro/internal/data"
	"repro/internal/detrand"
	"repro/internal/pythia"
)

// CorpusEntry is one table of the annotated corpus with its ground-truth
// ambiguous pairs.
type CorpusEntry struct {
	Name    string
	Dataset *data.Dataset
	Pairs   []data.GroundTruthPair
}

// AnnotatedCorpus returns the 13-table corpus of Section V.
func AnnotatedCorpus() []CorpusEntry {
	var out []CorpusEntry
	for _, name := range data.AnnotatedCorpusNames() {
		d := data.MustLoad(name)
		out = append(out, CorpusEntry{Name: name, Dataset: d, Pairs: d.GroundTruthPairs()})
	}
	return out
}

// Stats summarizes the corpus the way the paper reports it: ambiguous
// pairs and (pair, label) annotations.
type Stats struct {
	Tables      int
	Pairs       int
	Annotations int // pair-label combinations
}

// CorpusStats computes the summary.
func CorpusStats(corpus []CorpusEntry) Stats {
	st := Stats{Tables: len(corpus)}
	for _, e := range corpus {
		st.Pairs += len(e.Pairs)
		for _, p := range e.Pairs {
			st.Annotations += len(p.Labels)
		}
	}
	return st
}

// PairKey canonicalizes an unordered attribute pair for set comparison.
func PairKey(a, b string) string {
	a, b = strings.ToLower(a), strings.ToLower(b)
	if a > b {
		a, b = b, a
	}
	return a + "\x1f" + b
}

// ---------------------------------------------------------------------------
// Table VIII simulated judges.
// ---------------------------------------------------------------------------

// Judge is one simulated study participant. Error rates are calibrated to
// the paper's observed agreement (ambiguity detection F1 ~0.84, attribute
// marking slightly below).
type Judge struct {
	ID int
	// DetectSlip is the probability of judging ambiguity incorrectly.
	DetectSlip float64
	// AttrSlip is the probability of marking a wrong attribute set when
	// the ambiguity judgment itself was right.
	AttrSlip float64
	Seed     int64
}

// DefaultPanel returns the paper's panel: eleven annotators with slightly
// varied reliability.
func DefaultPanel(seed int64) []Judge {
	var out []Judge
	for i := 0; i < 11; i++ {
		out = append(out, Judge{
			ID:         i,
			DetectSlip: 0.10 + 0.04*float64(i%3),
			AttrSlip:   0.12 + 0.05*float64(i%2),
			Seed:       seed + int64(i)*101,
		})
	}
	return out
}

// Assessment is one judge's annotation of one generated text.
type Assessment struct {
	JudgedAmbiguous bool
	MarkedAttrs     []string // non-empty only when judged ambiguous
}

// chance produces a deterministic pseudo-random draw in [0, 1) for a judge
// and content key.
func (j Judge) chance(key string) float64 {
	return detrand.Chance(j.Seed, key)
}

// Assess simulates judging one generated example against its dataset: the
// judge sees the text, the schema and a data sample; we model the outcome
// as ground truth perturbed by the judge's slip rates.
func (j Judge) Assess(ex pythia.Example, ds *data.Dataset) Assessment {
	truthAmbiguous := ex.Structure.Ambiguous()
	judged := truthAmbiguous
	if j.chance("detect|"+ex.Text) < j.DetectSlip {
		judged = !judged
	}
	out := Assessment{JudgedAmbiguous: judged}
	if !judged {
		return out
	}
	// Attribute marking. A correct judge marks the true ambiguous
	// attributes; a slipping judge marks a plausible-but-wrong set.
	schema := ds.Table.Schema.Names()
	if truthAmbiguous && j.chance("attr|"+ex.Text) >= j.AttrSlip {
		out.MarkedAttrs = append(out.MarkedAttrs, ex.Attrs...)
		return out
	}
	// Wrong set: pick schema columns deterministically, skewed away from
	// the truth.
	truth := map[string]bool{}
	for _, a := range ex.Attrs {
		truth[strings.ToLower(a)] = true
	}
	var wrong []string
	for _, col := range schema {
		if truth[strings.ToLower(col)] {
			continue
		}
		wrong = append(wrong, col)
	}
	sort.Strings(wrong)
	if len(wrong) == 0 {
		out.MarkedAttrs = append(out.MarkedAttrs, ex.Attrs...)
		return out
	}
	pick := int(j.chance("which|"+ex.Text) * float64(len(wrong)))
	if pick >= len(wrong) {
		pick = len(wrong) - 1
	}
	out.MarkedAttrs = []string{wrong[pick]}
	if len(wrong) > 1 {
		out.MarkedAttrs = append(out.MarkedAttrs, wrong[(pick+1)%len(wrong)])
	}
	return out
}

// AttrMatch scores attribute marking per the paper's rule: "a match if at
// least one of the annotated attributes is in the ground truth of the
// text".
func AttrMatch(marked, truth []string) bool {
	set := map[string]bool{}
	for _, a := range truth {
		set[strings.ToLower(a)] = true
	}
	for _, m := range marked {
		if set[strings.ToLower(m)] {
			return true
		}
	}
	return false
}
