package profiling

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/relation"
)

const basketCSV = `Player,Team,FG%,3FG%,fouls,apps
Carter,LA,56,47,4,5
Smith,SF,55,30,4,7
Carter,SF,50,51,3,3
`

func mustTable(t *testing.T, name, doc string) *relation.Table {
	t.Helper()
	tab, err := relation.ReadCSVString(name, doc)
	if err != nil {
		t.Fatalf("load %s: %v", name, err)
	}
	return tab
}

func TestProfileBasket(t *testing.T) {
	tab := mustTable(t, "D", basketCSV)
	p, err := ProfileTable(tab)
	if err != nil {
		t.Fatalf("ProfileTable: %v", err)
	}
	// (Player, Team) is the minimal composite key from the paper's example.
	want := []string{"Player", "Team"}
	if !reflect.DeepEqual(p.PrimaryKey, want) {
		t.Errorf("PrimaryKey = %v, want %v", p.PrimaryKey, want)
	}
	cks := p.CompositeKeys()
	if len(cks) == 0 || !reflect.DeepEqual(cks[0], want) {
		t.Errorf("CompositeKeys = %v, want leading %v", cks, want)
	}
}

func TestColumnStats(t *testing.T) {
	tab := mustTable(t, "D", basketCSV)
	p, err := ProfileTable(tab)
	if err != nil {
		t.Fatalf("ProfileTable: %v", err)
	}
	st, ok := p.Stats("fouls")
	if !ok {
		t.Fatal("Stats(fouls) missing")
	}
	if st.Distinct != 2 || st.Nulls != 0 || st.Unique {
		t.Errorf("fouls stats = %+v", st)
	}
	if st.Min.AsInt() != 3 || st.Max.AsInt() != 4 {
		t.Errorf("fouls min/max = %s/%s", st.Min.Format(), st.Max.Format())
	}
	if _, ok := p.Stats("nope"); ok {
		t.Error("Stats(nope) should be absent")
	}
}

func TestSingleColumnKey(t *testing.T) {
	doc := "id,name\n1,a\n2,b\n3,a\n"
	p, err := ProfileTable(mustTable(t, "t", doc))
	if err != nil {
		t.Fatalf("ProfileTable: %v", err)
	}
	if !reflect.DeepEqual(p.PrimaryKey, []string{"id"}) {
		t.Errorf("PrimaryKey = %v, want [id]", p.PrimaryKey)
	}
	if len(p.CompositeKeys()) != 0 {
		t.Errorf("CompositeKeys = %v, want none (single key subsumes)", p.CompositeKeys())
	}
}

func TestNullColumnExcludedFromKeys(t *testing.T) {
	doc := "a,b\n1,x\n,y\n"
	p, err := ProfileTable(mustTable(t, "t", doc))
	if err != nil {
		t.Fatalf("ProfileTable: %v", err)
	}
	for _, k := range p.CandidateKeys {
		for _, col := range k {
			if col == "a" {
				t.Errorf("column with NULLs appears in key %v", k)
			}
		}
	}
}

func TestNoKeyTable(t *testing.T) {
	doc := "a,b\n1,x\n1,x\n"
	p, err := ProfileTable(mustTable(t, "t", doc))
	if err != nil {
		t.Fatalf("ProfileTable: %v", err)
	}
	if len(p.CandidateKeys) != 0 {
		t.Errorf("CandidateKeys = %v, want none for duplicate rows", p.CandidateKeys)
	}
	if p.PrimaryKey != nil {
		t.Errorf("PrimaryKey = %v, want nil", p.PrimaryKey)
	}
}

func TestEmptyTable(t *testing.T) {
	tab := relation.NewTable("e", relation.Schema{{Name: "x", Kind: relation.KindInt}})
	p, err := ProfileTable(tab)
	if err != nil {
		t.Fatalf("ProfileTable: %v", err)
	}
	if len(p.CandidateKeys) != 0 || p.Columns[0].Unique {
		t.Errorf("empty table profile = %+v", p)
	}
	if _, err := ProfileTable(nil); err == nil {
		t.Error("expected error for nil table")
	}
}

func TestMinimalityOfCompositeKeys(t *testing.T) {
	// (a,b) unique, and (a,b,c) also unique but not minimal.
	doc := "a,b,c\n1,1,1\n1,2,1\n2,1,1\n"
	p, err := ProfileTable(mustTable(t, "t", doc))
	if err != nil {
		t.Fatalf("ProfileTable: %v", err)
	}
	for _, k := range p.CandidateKeys {
		if len(k) == 3 {
			t.Errorf("non-minimal key reported: %v (keys=%v)", k, p.CandidateKeys)
		}
	}
	found := false
	for _, k := range p.CandidateKeys {
		if reflect.DeepEqual(k, []string{"a", "b"}) {
			found = true
		}
	}
	if !found {
		t.Errorf("missing minimal key [a b]; got %v", p.CandidateKeys)
	}
}

func TestNonKeyAndNumericAttributes(t *testing.T) {
	tab := mustTable(t, "D", basketCSV)
	p, err := ProfileTable(tab)
	if err != nil {
		t.Fatalf("ProfileTable: %v", err)
	}
	nk := p.NonKeyAttributes()
	if strings.Join(nk, ",") != "FG%,3FG%,fouls,apps" {
		t.Errorf("NonKeyAttributes = %v", nk)
	}
	num := p.NumericAttributes()
	if strings.Join(num, ",") != "FG%,3FG%,fouls,apps" {
		t.Errorf("NumericAttributes = %v", num)
	}
}

func TestSameTypeClass(t *testing.T) {
	cases := []struct {
		a, b relation.Kind
		want bool
	}{
		{relation.KindInt, relation.KindFloat, true},
		{relation.KindInt, relation.KindInt, true},
		{relation.KindString, relation.KindString, true},
		{relation.KindString, relation.KindInt, false},
		{relation.KindDate, relation.KindDate, true},
		{relation.KindDate, relation.KindInt, false},
	}
	for _, tc := range cases {
		if got := SameTypeClass(tc.a, tc.b); got != tc.want {
			t.Errorf("SameTypeClass(%s, %s) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

// Property: every reported candidate key is actually unique over the table,
// and no reported key is a superset of another.
func TestKeyPropertiesRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		cols := 2 + rng.Intn(4)
		rows := 1 + rng.Intn(30)
		var b strings.Builder
		for c := 0; c < cols; c++ {
			if c > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "c%d", c)
		}
		b.WriteByte('\n')
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				if c > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "%d", rng.Intn(4))
			}
			b.WriteByte('\n')
		}
		tab := mustTable(t, "rnd", b.String())
		p, err := ProfileTable(tab)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, key := range p.CandidateKeys {
			seen := map[string]bool{}
			for _, row := range tab.Rows {
				var sb strings.Builder
				for _, name := range key {
					sb.WriteString(row[tab.Schema.Index(name)].HashKey())
					sb.WriteByte('|')
				}
				if seen[sb.String()] {
					t.Fatalf("trial %d: key %v not unique\n%s", trial, key, tab)
				}
				seen[sb.String()] = true
			}
		}
		for i, a := range p.CandidateKeys {
			for j, b := range p.CandidateKeys {
				if i != j && isSubsetNames(a, b) {
					t.Fatalf("trial %d: key %v subsumes key %v", trial, a, b)
				}
			}
		}
	}
}

func isSubsetNames(a, b []string) bool {
	set := map[string]bool{}
	for _, x := range b {
		set[x] = true
	}
	for _, x := range a {
		if !set[x] {
			return false
		}
	}
	return true
}
