package profiling

import (
	"fmt"
	"strings"

	"repro/internal/relation"
)

// Incremental maintains a Profile across table appends without rescanning
// the rows already profiled. It retains what a from-scratch profile throws
// away — the per-column distinct-value sets, the per-column formatted
// lengths and the projection sets of every candidate key — so an append of
// d rows costs O(d) instead of O(n):
//
//   - column statistics (distinct, nulls, min/max, mean length, uniqueness)
//     are folded forward from only the appended rows;
//   - discovered keys are re-verified by probing the delta projections
//     against the retained sets. Appending rows can only break uniqueness,
//     never create it, so a delta with no collisions and no NULLs in key
//     columns proves every candidate key still holds. Only when a key
//     breaks (or a key column gains its first NULL) can new minimal keys
//     surface, and only then does the level-wise search re-run.
//
// The produced Profile is equal to ProfileTable over the full table —
// field for field, including float statistics, which are accumulated in
// the same order a full scan would (the equivalence property test pins
// this). An Incremental is not safe for concurrent use; callers serialize
// Append (the serving layer holds its append lock across it).
type Incremental struct {
	prof    *Profile
	colSeen []map[string]struct{} // per column: distinct non-null HashKeys
	colLen  []int                 // per column: total formatted length of non-null cells
	keyIdx  [][]int               // per candidate key: column indexes
	keySeen []map[string]struct{} // per candidate key: projection keys seen
}

// NewIncremental profiles the table from scratch and retains the state
// future appends fold into. It costs one extra pass over the rows compared
// to ProfileTable — paid once at ingest, amortized by every append.
func NewIncremental(t *relation.Table) (*Incremental, error) {
	prof, err := ProfileTable(t)
	if err != nil {
		return nil, err
	}
	inc := &Incremental{prof: prof}
	nc := t.NumCols()
	inc.colSeen = make([]map[string]struct{}, nc)
	inc.colLen = make([]int, nc)
	for c := 0; c < nc; c++ {
		inc.colSeen[c] = make(map[string]struct{}, t.NumRows())
	}
	for _, row := range t.Rows {
		for c, v := range row {
			if v.IsNull() {
				continue
			}
			inc.colSeen[c][v.HashKey()] = struct{}{}
			inc.colLen[c] += len(v.Format())
		}
	}
	inc.rebuildKeySets(t, prof.CandidateKeys)
	return inc, nil
}

// Profile returns the current profile. The returned value is immutable:
// Append publishes a fresh Profile rather than mutating this one, so
// readers holding it (a serving tenant mid-stream) are never raced.
func (inc *Incremental) Profile() *Profile { return inc.prof }

// Append folds the rows t.Rows[oldRows:] into the profile and returns the
// updated Profile. t must be the profiled table extended in place or via
// relation.Table.Extend; oldRows must equal the row count at the previous
// Append (or construction).
func (inc *Incremental) Append(t *relation.Table, oldRows int) (*Profile, error) {
	if t == nil {
		return nil, fmt.Errorf("profiling: incremental append: nil table")
	}
	if oldRows != inc.prof.Table.NumRows() {
		return nil, fmt.Errorf("profiling: incremental append out of sync: oldRows %d != profiled rows %d",
			oldRows, inc.prof.Table.NumRows())
	}
	if t.NumRows() < oldRows {
		return nil, fmt.Errorf("profiling: incremental append: table shrank from %d to %d rows",
			oldRows, t.NumRows())
	}
	if t.NumCols() != len(inc.colSeen) {
		return nil, fmt.Errorf("profiling: incremental append: arity changed from %d to %d",
			len(inc.colSeen), t.NumCols())
	}
	delta := t.Rows[oldRows:]
	total := t.NumRows()

	cols := make([]ColumnStats, len(inc.prof.Columns))
	copy(cols, inc.prof.Columns)
	for c := range cols {
		inc.updateColumn(&cols[c], c, delta, total)
	}

	// Re-verify the candidate keys against the delta alone. A fresh table
	// (oldRows == 0) has no verified keys to extend, so it always searches.
	keysBroken := oldRows == 0
	if !keysBroken {
		var b strings.Builder
	verify:
		for ki, combo := range inc.keyIdx {
			seen := inc.keySeen[ki]
			for _, row := range delta {
				k, ok := projectCombo(row, combo, &b)
				if !ok {
					keysBroken = true // key column gained a NULL
					break verify
				}
				if _, dup := seen[k]; dup {
					keysBroken = true
					break verify
				}
				seen[k] = struct{}{}
			}
		}
	}

	np := &Profile{Table: t, Columns: cols}
	if total > 0 {
		if keysBroken {
			np.CandidateKeys = discoverKeys(t, cols)
			np.PrimaryKey = choosePrimaryKey(t, np.CandidateKeys)
			inc.rebuildKeySets(t, np.CandidateKeys)
		} else {
			np.CandidateKeys = inc.prof.CandidateKeys
			np.PrimaryKey = inc.prof.PrimaryKey
		}
	}
	inc.prof = np
	return np, nil
}

// updateColumn folds the delta rows into one column's statistics, in row
// order, exactly as a full columnStats scan would continue.
func (inc *Incremental) updateColumn(st *ColumnStats, c int, delta []relation.Row, total int) {
	seen := inc.colSeen[c]
	for _, row := range delta {
		v := row[c]
		if v.IsNull() {
			st.Nulls++
			continue
		}
		seen[v.HashKey()] = struct{}{}
		inc.colLen[c] += len(v.Format())
		if st.Min.IsNull() {
			st.Min, st.Max = v, v
			continue
		}
		if cmp, err := v.Compare(st.Min); err == nil && cmp < 0 {
			st.Min = v
		}
		if cmp, err := v.Compare(st.Max); err == nil && cmp > 0 {
			st.Max = v
		}
	}
	st.Distinct = len(seen)
	if n := total - st.Nulls; n > 0 {
		st.MeanLen = float64(inc.colLen[c]) / float64(n)
	}
	st.Unique = st.Distinct == total && st.Nulls == 0 && total > 0
}

// rebuildKeySets (re)builds the per-key projection sets over all rows.
func (inc *Incremental) rebuildKeySets(t *relation.Table, keys [][]string) {
	inc.keyIdx = make([][]int, 0, len(keys))
	inc.keySeen = make([]map[string]struct{}, 0, len(keys))
	var b strings.Builder
	for _, key := range keys {
		combo := make([]int, len(key))
		for i, name := range key {
			combo[i] = t.Schema.Index(name)
		}
		seen := make(map[string]struct{}, t.NumRows())
		for _, row := range t.Rows {
			if k, ok := projectCombo(row, combo, &b); ok {
				seen[k] = struct{}{}
			}
		}
		inc.keyIdx = append(inc.keyIdx, combo)
		inc.keySeen = append(inc.keySeen, seen)
	}
}

// projectCombo renders the projection of a row onto the combo columns in
// the same format comboUnique hashes, and reports ok=false when any
// projected cell is NULL (a NULL disqualifies the column from keys).
func projectCombo(row relation.Row, combo []int, b *strings.Builder) (string, bool) {
	b.Reset()
	for _, c := range combo {
		if row[c].IsNull() {
			return "", false
		}
		b.WriteString(row[c].HashKey())
		b.WriteByte(0x1f)
	}
	return b.String(), true
}

// ValueOverlap computes the Jaccard similarity of two columns' distinct
// value sets from the retained state — the same integers (and therefore
// the same float) as profiling.ValueOverlap over the full table, without
// re-hashing every row.
func (inc *Incremental) ValueOverlap(attrA, attrB string) (float64, error) {
	t := inc.prof.Table
	ia := t.Schema.Index(attrA)
	ib := t.Schema.Index(attrB)
	if ia < 0 || ib < 0 {
		return 0, fmt.Errorf("profiling: overlap: unknown column (%q, %q)", attrA, attrB)
	}
	setA, setB := inc.colSeen[ia], inc.colSeen[ib]
	if len(setA) == 0 && len(setB) == 0 {
		return 0, nil
	}
	inter := 0
	for v := range setA {
		if _, ok := setB[v]; ok {
			inter++
		}
	}
	union := len(setA) + len(setB) - inter
	return float64(inter) / float64(union), nil
}
