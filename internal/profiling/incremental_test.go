package profiling

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/detrand"
	"repro/internal/relation"
)

// randomTable builds a table with mixed kinds, nulls and duplicates drawn
// from small domains, so appends routinely collide with existing values and
// break (or preserve) candidate keys in interesting ways.
func randomTable(rng *rand.Rand, rows int) *relation.Table {
	t := relation.NewTable("Rand", relation.Schema{
		{Name: "id", Kind: relation.KindInt},
		{Name: "cat", Kind: relation.KindString},
		{Name: "score", Kind: relation.KindFloat},
		{Name: "flag", Kind: relation.KindBool},
		{Name: "day", Kind: relation.KindDate},
	})
	for i := 0; i < rows; i++ {
		t.MustAppend(randomRow(rng, i))
	}
	return t
}

func randomRow(rng *rand.Rand, i int) relation.Row {
	maybeNull := func(v relation.Value) relation.Value {
		if rng.Intn(10) == 0 {
			return relation.Null
		}
		return v
	}
	// id is usually i (unique) but sometimes a duplicate of a small range,
	// so single-column keys break on some appends and survive others.
	id := relation.Int(int64(i))
	if rng.Intn(8) == 0 {
		id = relation.Int(int64(rng.Intn(5)))
	}
	return relation.Row{
		maybeNull(id),
		maybeNull(relation.String(fmt.Sprintf("c%d", rng.Intn(4)))),
		maybeNull(relation.Float(float64(rng.Intn(7)) / 2)),
		maybeNull(relation.Bool(rng.Intn(2) == 0)),
		maybeNull(relation.Date(2020, time.Month(1+rng.Intn(12)), 1+rng.Intn(28))),
	}
}

// TestIncrementalMatchesFullProfile is the equivalence property: for random
// tables and random split points, folding the delta into an Incremental
// must produce exactly the profile a full rescan of the whole table would —
// every field, including float statistics and discovered keys.
func TestIncrementalMatchesFullProfile(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		rng := detrand.New(int64(100 + trial))
		total := 5 + rng.Intn(60)
		whole := randomTable(rng, total)
		split := rng.Intn(total + 1)

		base := relation.NewTable(whole.Name, whole.Schema)
		for _, r := range whole.Rows[:split] {
			base.MustAppend(r)
		}
		inc, err := NewIncremental(base)
		if err != nil {
			t.Fatalf("trial %d: NewIncremental: %v", trial, err)
		}
		ext, err := base.Extend(whole.Rows[split:])
		if err != nil {
			t.Fatalf("trial %d: Extend: %v", trial, err)
		}
		got, err := inc.Append(ext, split)
		if err != nil {
			t.Fatalf("trial %d: Append: %v", trial, err)
		}
		want, err := ProfileTable(ext)
		if err != nil {
			t.Fatalf("trial %d: ProfileTable: %v", trial, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (total=%d split=%d): incremental profile diverges from full rescan:\n got %+v\nwant %+v",
				trial, total, split, got, want)
		}
		// The retained distinct sets must reproduce full-scan overlaps too.
		gotOv, err := inc.ValueOverlap("id", "score")
		if err != nil {
			t.Fatalf("trial %d: incremental ValueOverlap: %v", trial, err)
		}
		wantOv, err := ValueOverlap(ext, "id", "score")
		if err != nil {
			t.Fatalf("trial %d: full ValueOverlap: %v", trial, err)
		}
		if gotOv != wantOv {
			t.Fatalf("trial %d: ValueOverlap = %v, full scan gives %v", trial, gotOv, wantOv)
		}
	}
}

// TestIncrementalMultiSegment folds several consecutive deltas and checks
// the final profile against a full rescan — the retained state must stay
// consistent across appends, not just for one.
func TestIncrementalMultiSegment(t *testing.T) {
	rng := detrand.New(42)
	whole := randomTable(rng, 50)
	cuts := []int{0, 7, 7, 20, 31, 50} // includes an empty base and an empty delta

	cur := relation.NewTable(whole.Name, whole.Schema)
	inc, err := NewIncremental(cur)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(cuts); i++ {
		ext, err := cur.Extend(whole.Rows[cuts[i-1]:cuts[i]])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := inc.Append(ext, cuts[i-1]); err != nil {
			t.Fatalf("segment %d: %v", i, err)
		}
		cur = ext
	}
	want, err := ProfileTable(cur)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(inc.Profile(), want) {
		t.Fatalf("multi-segment profile diverges from full rescan:\n got %+v\nwant %+v", inc.Profile(), want)
	}
}

func TestIncrementalAppendErrors(t *testing.T) {
	rng := detrand.New(7)
	base := randomTable(rng, 10)
	inc, err := NewIncremental(base)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := base.Extend([]relation.Row{randomRow(rng, 10)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Append(ext, 5); err == nil {
		t.Fatal("out-of-sync oldRows accepted, want error")
	}
	if _, err := inc.Append(nil, 10); err == nil {
		t.Fatal("nil table accepted, want error")
	}
	shrunk := relation.NewTable(base.Name, base.Schema)
	for _, r := range base.Rows[:3] {
		shrunk.MustAppend(r)
	}
	if _, err := inc.Append(shrunk, 10); err == nil {
		t.Fatal("shrunken table accepted, want error")
	}
}
