package profiling

import (
	"fmt"
	"math"

	"repro/internal/relation"
)

// Correlation computes the Pearson correlation between two numeric columns
// over rows where both are non-NULL. It supports the paper's future-work
// direction of exploiting correlation across ambiguous attributes: strongly
// correlated pairs (total vs cumulative counts) behave differently in
// examples than anti-correlated ones. Returns an error for non-numeric
// columns; returns 0 when fewer than two complete rows exist or a column
// is constant.
func Correlation(t *relation.Table, attrA, attrB string) (float64, error) {
	ia := t.Schema.Index(attrA)
	ib := t.Schema.Index(attrB)
	if ia < 0 || ib < 0 {
		return 0, fmt.Errorf("profiling: correlation: unknown column (%q, %q)", attrA, attrB)
	}
	if !t.Schema[ia].Kind.Numeric() || !t.Schema[ib].Kind.Numeric() {
		return 0, fmt.Errorf("profiling: correlation needs numeric columns, got %s and %s",
			t.Schema[ia].Kind, t.Schema[ib].Kind)
	}
	var n int
	var sumA, sumB float64
	for _, row := range t.Rows {
		if row[ia].IsNull() || row[ib].IsNull() {
			continue
		}
		sumA += row[ia].AsFloat()
		sumB += row[ib].AsFloat()
		n++
	}
	if n < 2 {
		return 0, nil
	}
	meanA, meanB := sumA/float64(n), sumB/float64(n)
	var cov, varA, varB float64
	for _, row := range t.Rows {
		if row[ia].IsNull() || row[ib].IsNull() {
			continue
		}
		da := row[ia].AsFloat() - meanA
		db := row[ib].AsFloat() - meanB
		cov += da * db
		varA += da * da
		varB += db * db
	}
	if varA == 0 || varB == 0 {
		return 0, nil
	}
	return cov / math.Sqrt(varA*varB), nil
}

// ValueOverlap computes the Jaccard similarity of the two columns' distinct
// value sets. For categorical attributes it is the value-level ambiguity
// evidence of the paper's future-work item (4): two color columns sharing
// their vocabulary are better ambiguity candidates than two disjoint code
// columns.
func ValueOverlap(t *relation.Table, attrA, attrB string) (float64, error) {
	ia := t.Schema.Index(attrA)
	ib := t.Schema.Index(attrB)
	if ia < 0 || ib < 0 {
		return 0, fmt.Errorf("profiling: overlap: unknown column (%q, %q)", attrA, attrB)
	}
	setA := map[string]bool{}
	setB := map[string]bool{}
	for _, row := range t.Rows {
		if !row[ia].IsNull() {
			setA[row[ia].HashKey()] = true
		}
		if !row[ib].IsNull() {
			setB[row[ib].HashKey()] = true
		}
	}
	if len(setA) == 0 && len(setB) == 0 {
		return 0, nil
	}
	inter := 0
	for v := range setA {
		if setB[v] {
			inter++
		}
	}
	union := len(setA) + len(setB) - inter
	return float64(inter) / float64(union), nil
}
