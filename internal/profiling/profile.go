// Package profiling implements the standard data-profiling step PYTHIA runs
// before ambiguity discovery: per-column statistics, candidate-key discovery
// (single and composite) and type classification.
//
// The paper assumes "information about keys ... is automatically obtained
// with any of the existing data profiling methods" (Section III). This
// package is that method: a level-wise unique-column-combination search in
// the style of HCA/Ducc, bounded to small key arities, which is what the
// row-ambiguity templates need (they select a strict subset of a composite
// key).
package profiling

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/relation"
)

// ColumnStats summarizes one column of a profiled table.
type ColumnStats struct {
	Name     string
	Kind     relation.Kind
	Distinct int // number of distinct non-null values
	Nulls    int // number of NULL cells
	Min      relation.Value
	Max      relation.Value
	MeanLen  float64 // mean formatted length, a cheap width proxy
	Unique   bool    // no duplicate non-null values and no NULLs
}

// Profile is the result of profiling a table.
type Profile struct {
	Table         *relation.Table
	Columns       []ColumnStats
	PrimaryKey    []string   // the chosen key: shortest, leftmost unique combination
	CandidateKeys [][]string // all minimal unique column combinations found (arity <= MaxKeyArity)
}

// MaxKeyArity bounds the composite-key search. Real-world composite keys in
// the paper's tables have arity 2 (Player+Team, country+date); 3 gives slack.
const MaxKeyArity = 3

// ProfileTable computes column statistics and discovers minimal candidate
// keys up to MaxKeyArity. An empty table yields no keys.
func ProfileTable(t *relation.Table) (*Profile, error) {
	if t == nil {
		return nil, fmt.Errorf("profiling: nil table")
	}
	p := &Profile{Table: t}
	p.Columns = make([]ColumnStats, t.NumCols())
	for c := range t.Schema {
		p.Columns[c] = columnStats(t, c)
	}
	if t.NumRows() > 0 {
		p.CandidateKeys = discoverKeys(t, p.Columns)
		p.PrimaryKey = choosePrimaryKey(t, p.CandidateKeys)
	}
	return p, nil
}

// identifierWords are header fragments that signal an identifier-like
// column. Small tables make measure columns accidentally unique; real
// profilers break the tie with header semantics, and so do we.
var identifierWords = []string{
	"id", "name", "code", "key", "label", "title", "symbol", "player",
	"team", "country", "city", "region", "state", "date", "day", "year",
	"model", "species", "class",
}

// columnKeyScore scores how much a column looks like a key part.
func columnKeyScore(c relation.Column) float64 {
	var score float64
	lower := strings.ToLower(c.Name)
	for _, w := range identifierWords {
		if strings.Contains(lower, w) {
			score += 4
			break
		}
	}
	switch {
	case c.Kind == relation.KindString || c.Kind == relation.KindDate:
		score += 2
	case c.Kind.Numeric() && score == 0:
		// A numeric column with no identifier-like name is almost
		// certainly a measure that is unique by accident.
		score -= 3
	}
	return score
}

// choosePrimaryKey picks the candidate key that most looks like a semantic
// key: highest mean column score, with a mild penalty per extra column;
// ties break toward lower arity, then leftmost.
func choosePrimaryKey(t *relation.Table, keys [][]string) []string {
	if len(keys) == 0 {
		return nil
	}
	best := -1
	bestScore := 0.0
	for i, key := range keys {
		var sum float64
		for _, name := range key {
			col, _ := t.Schema.Column(name)
			sum += columnKeyScore(col)
		}
		score := sum/float64(len(key)) - 0.5*float64(len(key)-1)
		if best == -1 || score > bestScore {
			best, bestScore = i, score
		}
	}
	return keys[best]
}

// columnStats computes the statistics for column c.
func columnStats(t *relation.Table, c int) ColumnStats {
	st := ColumnStats{Name: t.Schema[c].Name, Kind: t.Schema[c].Kind}
	seen := make(map[string]struct{}, t.NumRows())
	dup := false
	var totalLen int
	for _, row := range t.Rows {
		v := row[c]
		if v.IsNull() {
			st.Nulls++
			continue
		}
		k := v.HashKey()
		if _, ok := seen[k]; ok {
			dup = true
		} else {
			seen[k] = struct{}{}
		}
		totalLen += len(v.Format())
		if st.Min.IsNull() {
			st.Min, st.Max = v, v
			continue
		}
		if cmp, err := v.Compare(st.Min); err == nil && cmp < 0 {
			st.Min = v
		}
		if cmp, err := v.Compare(st.Max); err == nil && cmp > 0 {
			st.Max = v
		}
	}
	st.Distinct = len(seen)
	if n := t.NumRows() - st.Nulls; n > 0 {
		st.MeanLen = float64(totalLen) / float64(n)
	}
	st.Unique = !dup && st.Nulls == 0 && t.NumRows() > 0
	return st
}

// discoverKeys runs a level-wise search for minimal unique column
// combinations: first single columns, then pairs not containing a unique
// column, then triples not containing a unique pair, etc. Results are
// ordered by arity, then by leftmost column position, so the head is a
// sensible primary-key choice.
func discoverKeys(t *relation.Table, stats []ColumnStats) [][]string {
	var keys [][]string
	var minimalIdx [][]int

	// Level 1: single unique columns.
	var nonUnique []int
	for c, st := range stats {
		if st.Unique {
			minimalIdx = append(minimalIdx, []int{c})
		} else if st.Nulls == 0 {
			// Columns with NULLs cannot participate in keys.
			nonUnique = append(nonUnique, c)
		}
	}

	// Higher levels over non-unique, null-free columns. One scratch seen-set
	// is shared by every combo probe: the level-wise search tests dozens of
	// combinations per table, and allocating a row-count-sized map per combo
	// was the dominant allocation of profiling.
	level := [][]int{}
	for _, c := range nonUnique {
		level = append(level, []int{c})
	}
	scratch := make(map[string]struct{}, t.NumRows())
	for arity := 2; arity <= MaxKeyArity; arity++ {
		var next [][]int
		for i := 0; i < len(level); i++ {
			last := level[i][len(level[i])-1]
			for _, c := range nonUnique {
				if c <= last {
					continue
				}
				combo := append(append([]int{}, level[i]...), c)
				if containsMinimal(combo, minimalIdx) {
					continue
				}
				if comboUnique(t, combo, scratch) {
					minimalIdx = append(minimalIdx, combo)
				} else {
					next = append(next, combo)
				}
			}
		}
		level = next
		if len(level) == 0 {
			break
		}
	}

	sort.Slice(minimalIdx, func(a, b int) bool {
		if len(minimalIdx[a]) != len(minimalIdx[b]) {
			return len(minimalIdx[a]) < len(minimalIdx[b])
		}
		for i := range minimalIdx[a] {
			if minimalIdx[a][i] != minimalIdx[b][i] {
				return minimalIdx[a][i] < minimalIdx[b][i]
			}
		}
		return false
	})
	for _, combo := range minimalIdx {
		names := make([]string, len(combo))
		for i, c := range combo {
			names[i] = t.Schema[c].Name
		}
		keys = append(keys, names)
	}
	return keys
}

// containsMinimal reports whether combo is a superset of any already-found
// minimal key (and is therefore not minimal itself).
func containsMinimal(combo []int, minimal [][]int) bool {
	for _, m := range minimal {
		if subsetOf(m, combo) {
			return true
		}
	}
	return false
}

// subsetOf reports whether every element of a (sorted) occurs in b (sorted).
func subsetOf(a, b []int) bool {
	i := 0
	for _, x := range b {
		if i < len(a) && a[i] == x {
			i++
		}
	}
	return i == len(a)
}

// comboUnique reports whether the projection onto the given columns has no
// duplicate rows. seen is a caller-owned scratch map (pre-sized to the row
// count and reused across combos); it is cleared on entry and holds the
// projection keys of the last probed combo on return.
func comboUnique(t *relation.Table, combo []int, seen map[string]struct{}) bool {
	clear(seen)
	var b strings.Builder
	for _, row := range t.Rows {
		b.Reset()
		for _, c := range combo {
			b.WriteString(row[c].HashKey())
			b.WriteByte(0x1f)
		}
		k := b.String()
		if _, ok := seen[k]; ok {
			return false
		}
		seen[k] = struct{}{}
	}
	return true
}

// CompositeKeys returns the candidate keys with arity >= 2. Row-ambiguity
// templates need a composite key whose strict subset under-identifies rows.
func (p *Profile) CompositeKeys() [][]string {
	var out [][]string
	for _, k := range p.CandidateKeys {
		if len(k) >= 2 {
			out = append(out, k)
		}
	}
	return out
}

// NonKeyAttributes returns the attributes that are not part of the primary
// key, preserving schema order.
func (p *Profile) NonKeyAttributes() []string {
	inKey := make(map[string]bool, len(p.PrimaryKey))
	for _, k := range p.PrimaryKey {
		inKey[strings.ToLower(k)] = true
	}
	var out []string
	for _, c := range p.Table.Schema {
		if !inKey[strings.ToLower(c.Name)] {
			out = append(out, c.Name)
		}
	}
	return out
}

// NumericAttributes returns the names of int/float columns, schema order.
func (p *Profile) NumericAttributes() []string {
	var out []string
	for _, c := range p.Table.Schema {
		if c.Kind.Numeric() {
			out = append(out, c.Name)
		}
	}
	return out
}

// Stats returns the statistics for the named column, or false if absent.
func (p *Profile) Stats(name string) (ColumnStats, bool) {
	for _, st := range p.Columns {
		if strings.EqualFold(st.Name, name) {
			return st, true
		}
	}
	return ColumnStats{}, false
}

// SameTypeClass reports whether two columns belong to the same ambiguity
// type class. The paper only pairs attributes of the same class: numerical
// with numerical, categorical with categorical (Section IV, Algorithm 1).
func SameTypeClass(a, b relation.Kind) bool {
	if a.Numeric() && b.Numeric() {
		return true
	}
	return a == b
}
