package profiling

import (
	"math"
	"testing"

	"repro/internal/relation"
)

func corrTable(t *testing.T) *relation.Table {
	t.Helper()
	tab, err := relation.ReadCSVString("c", `x,y,z,w,c1,c2
1,2,10,5,red,red
2,4,8,5,blue,blue
3,6,6,5,red,green
4,8,4,5,green,yellow
`)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestCorrelationPerfect(t *testing.T) {
	tab := corrTable(t)
	r, err := Correlation(tab, "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Errorf("corr(x, y) = %v, want 1", r)
	}
	r, err = Correlation(tab, "x", "z")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r+1) > 1e-12 {
		t.Errorf("corr(x, z) = %v, want -1", r)
	}
}

func TestCorrelationConstantColumn(t *testing.T) {
	tab := corrTable(t)
	r, err := Correlation(tab, "x", "w")
	if err != nil {
		t.Fatal(err)
	}
	if r != 0 {
		t.Errorf("corr with constant = %v, want 0", r)
	}
}

func TestCorrelationErrors(t *testing.T) {
	tab := corrTable(t)
	if _, err := Correlation(tab, "x", "nope"); err == nil {
		t.Error("expected error for missing column")
	}
	if _, err := Correlation(tab, "x", "c1"); err == nil {
		t.Error("expected error for categorical column")
	}
}

func TestCorrelationWithNulls(t *testing.T) {
	tab, err := relation.ReadCSVString("n", "a,b\n1,1\n2,\n3,3\n4,4\n")
	if err != nil {
		t.Fatal(err)
	}
	r, err := Correlation(tab, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Errorf("corr over complete rows = %v, want 1", r)
	}
}

func TestValueOverlap(t *testing.T) {
	tab := corrTable(t)
	// c1 = {red, blue, green}, c2 = {red, blue, green, yellow}: 3/4.
	j, err := ValueOverlap(tab, "c1", "c2")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(j-0.75) > 1e-12 {
		t.Errorf("overlap = %v, want 0.75", j)
	}
	// Numeric columns work too (distinct sets).
	j, err = ValueOverlap(tab, "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	// x = {1,2,3,4}, y = {2,4,6,8}: intersection {2,4} of union {1..4,6,8}.
	if math.Abs(j-2.0/6.0) > 1e-12 {
		t.Errorf("numeric overlap = %v, want 1/3", j)
	}
	if _, err := ValueOverlap(tab, "x", "nope"); err == nil {
		t.Error("expected error for missing column")
	}
}
