package relation

import (
	"testing"
	"time"
)

func TestBitmapSetGet(t *testing.T) {
	b := NewBitmap(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Get(i) {
			t.Fatalf("bit %d set in fresh bitmap", i)
		}
	}
	for _, i := range []int{0, 63, 64, 129} {
		b.Set(i)
	}
	for _, i := range []int{0, 63, 64, 129} {
		if !b.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	for _, i := range []int{1, 62, 65, 128} {
		if b.Get(i) {
			t.Fatalf("bit %d set but never Set", i)
		}
	}
}

// allKindsTable covers every value kind plus NULLs in every column.
func allKindsTable() *Table {
	tb := NewTable("k", Schema{
		{Name: "i", Kind: KindInt},
		{Name: "f", Kind: KindFloat},
		{Name: "s", Kind: KindString},
		{Name: "b", Kind: KindBool},
		{Name: "d", Kind: KindDate},
	})
	day := Date(2021, time.March, 14)
	tb.Rows = append(tb.Rows,
		Row{Int(-7), Float(2.5), String("x y"), Bool(true), day},
		Row{Null, Null, Null, Null, Null},
		Row{Int(0), Float(-0.125), String(""), Bool(false), DateFromDays(0)},
	)
	return tb
}

func TestBuildColumnsRoundTrip(t *testing.T) {
	tb := allKindsTable()
	cs := BuildColumns(tb)
	if cs == nil {
		t.Fatal("BuildColumns returned nil for a schema-conforming table")
	}
	if cs.Len != len(tb.Rows) {
		t.Fatalf("Len = %d, want %d", cs.Len, len(tb.Rows))
	}
	for j := range tb.Schema {
		v := &cs.Cols[j]
		if !v.HasNulls {
			t.Errorf("col %d: HasNulls = false, table has a NULL row", j)
		}
		for i, row := range tb.Rows {
			got, want := v.Value(i), row[j]
			if got.Kind() != want.Kind() || got.Format() != want.Format() ||
				got.HashKey() != want.HashKey() {
				t.Errorf("col %d row %d: round-trip %v != %v", j, i, got, want)
			}
			if s := string(v.AppendFormat(nil, i)); s != want.Format() {
				t.Errorf("col %d row %d: AppendFormat %q != Format %q", j, i, s, want.Format())
			}
		}
	}
}

func TestBuildColumnsHasNullsClear(t *testing.T) {
	tb := NewTable("n", Schema{{Name: "a", Kind: KindInt}})
	tb.Rows = append(tb.Rows, Row{Int(1)}, Row{Int(2)})
	cs := BuildColumns(tb)
	if cs == nil {
		t.Fatal("BuildColumns returned nil")
	}
	if cs.Cols[0].HasNulls {
		t.Fatal("HasNulls = true for a column without NULLs")
	}
}

func TestBuildColumnsRejectsMismatchedKind(t *testing.T) {
	tb := NewTable("bad", Schema{{Name: "a", Kind: KindInt}})
	// Splice a string cell into an int column, bypassing Append validation.
	tb.Rows = append(tb.Rows, Row{Int(1)}, Row{String("oops")})
	if cs := BuildColumns(tb); cs != nil {
		t.Fatal("BuildColumns accepted a table whose cell kind violates the schema")
	}
}

func TestBuildColumnsAllNullColumn(t *testing.T) {
	tb := NewTable("nn", Schema{{Name: "a", Kind: KindNull}})
	tb.Rows = append(tb.Rows, Row{Null}, Row{Null})
	cs := BuildColumns(tb)
	if cs == nil {
		t.Fatal("BuildColumns returned nil for an all-NULL column")
	}
	for i := range tb.Rows {
		if !cs.Cols[0].Value(i).IsNull() {
			t.Fatalf("row %d: want NULL", i)
		}
	}
}
