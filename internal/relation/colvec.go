package relation

// Columnar companion representation of a Table, used by sqlengine's batch
// execution path. A ColVec stores one column's payloads in a typed slice
// (no Value boxing) plus a null bitmap; a ColumnSet is the full table
// transposed. The columnar form is derived from — never replaces — the
// row-major Table: tables stay row-major because most consumers walk whole
// rows, and the engine builds vectors lazily only for tables the batch
// path actually scans.

// Bitmap is a fixed-size bit set over row indices. The zero value of each
// word is all-clear, so NewBitmap(n) starts with every bit unset.
type Bitmap []uint64

// NewBitmap returns a bitmap able to hold n bits, all clear.
func NewBitmap(n int) Bitmap {
	return make(Bitmap, (n+63)/64)
}

// Set sets bit i.
func (b Bitmap) Set(i int) {
	b[i>>6] |= 1 << (uint(i) & 63)
}

// Get reports whether bit i is set.
func (b Bitmap) Get(i int) bool {
	return b[i>>6]&(1<<(uint(i)&63)) != 0
}

// ColVec is one table column in columnar form. Exactly one payload slice
// is populated, chosen by Kind: I for int, bool (0/1) and date (days since
// epoch), F for float, S for string. Null cells have their bit set in
// Nulls and an arbitrary (zero) payload; readers must consult Nulls before
// the payload. A KindNull column (every cell NULL) has no payload slice.
type ColVec struct {
	Kind     Kind
	Nulls    Bitmap
	HasNulls bool // false lets readers skip the bitmap probe entirely
	I        []int64
	F        []float64
	S        []string
}

// Value reconstructs the boxed cell value at row i. The result is
// bit-identical to the Value stored in the source table: constructors are
// the only way to build a Value, so round-tripping through the vector
// cannot change payload bytes.
func (v *ColVec) Value(i int) Value {
	if v.Nulls.Get(i) {
		return Null
	}
	switch v.Kind {
	case KindInt:
		return Int(v.I[i])
	case KindFloat:
		return Float(v.F[i])
	case KindString:
		return String(v.S[i])
	case KindBool:
		return Bool(v.I[i] != 0)
	case KindDate:
		return DateFromDays(v.I[i])
	default:
		return Null
	}
}

// AppendFormat appends the Format() rendering of cell i to buf. It is the
// allocation-free equivalent of Value(i).Format() for vectorized CONCAT.
func (v *ColVec) AppendFormat(buf []byte, i int) []byte {
	if v.Nulls.Get(i) {
		return buf
	}
	switch v.Kind {
	case KindInt:
		return appendInt(buf, v.I[i])
	case KindFloat:
		return appendFloat(buf, v.F[i])
	case KindString:
		return append(buf, v.S[i]...)
	case KindBool:
		return appendBool(buf, v.I[i] != 0)
	case KindDate:
		return appendDate(buf, v.I[i])
	default:
		return buf
	}
}

// ColumnSet is a whole table transposed into column vectors.
type ColumnSet struct {
	Len  int // number of rows
	Cols []ColVec
}

// BuildColumns transposes t into typed column vectors. It returns nil when
// the table is not vectorizable: a cell whose dynamic kind is neither NULL
// nor the schema kind of its column (possible for rows spliced in without
// Append validation) would make the typed payloads lie, so such tables
// stay on the row-at-a-time path.
func BuildColumns(t *Table) *ColumnSet {
	n := len(t.Rows)
	cs := &ColumnSet{Len: n, Cols: make([]ColVec, len(t.Schema))}
	for j, col := range t.Schema {
		v := ColVec{Kind: col.Kind, Nulls: NewBitmap(n)}
		switch col.Kind {
		case KindInt, KindBool, KindDate:
			v.I = make([]int64, n)
		case KindFloat:
			v.F = make([]float64, n)
		case KindString:
			v.S = make([]string, n)
		case KindNull:
			// All-NULL column: bitmap only.
		default:
			return nil
		}
		for i, row := range t.Rows {
			c := row[j]
			if c.IsNull() {
				v.Nulls.Set(i)
				v.HasNulls = true
				continue
			}
			if c.kind != col.Kind {
				return nil
			}
			switch col.Kind {
			case KindInt, KindBool, KindDate:
				v.I[i] = c.i
			case KindFloat:
				v.F[i] = c.f
			case KindString:
				v.S[i] = c.s
			}
		}
		cs.Cols[j] = v
	}
	return cs
}
