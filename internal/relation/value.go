// Package relation implements the typed relational table model that all of
// PYTHIA is built on: values, columns, schemas, tables and a CSV codec with
// type inference.
//
// The model is deliberately small. A Value is a tagged union rather than an
// interface so that a-query execution (large self-joins in
// internal/sqlengine) does not allocate per cell, and tables are stored
// row-major because every consumer (profiling, serialization, evidence
// collection) walks whole rows.
package relation

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the value types supported by the engine.
type Kind uint8

// The supported kinds. KindNull is the zero value, so an uninitialized
// Value is NULL.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
	KindDate
)

// String returns the lowercase SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	case KindDate:
		return "date"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Numeric reports whether values of this kind can participate in ordered
// numeric comparisons (<, >). Dates are ordered but not numeric.
func (k Kind) Numeric() bool { return k == KindInt || k == KindFloat }

// Ordered reports whether values of this kind have a total order usable by
// range predicates.
func (k Kind) Ordered() bool {
	return k == KindInt || k == KindFloat || k == KindDate || k == KindString
}

// Value is a single table cell: a tagged union over the supported kinds.
// The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64 // int, bool (0/1), date (days since epoch)
	f    float64
	s    string
}

// dateEpoch is the reference day for KindDate values.
var dateEpoch = time.Date(1970, 1, 1, 0, 0, 0, 0, time.UTC)

// Null is the NULL value.
var Null = Value{}

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// String returns a string value.
func String(v string) Value { return Value{kind: KindString, s: v} }

// Bool returns a boolean value.
func Bool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// Date returns a date value for the given civil date.
func Date(year int, month time.Month, day int) Value {
	t := time.Date(year, month, day, 0, 0, 0, 0, time.UTC)
	return Value{kind: KindDate, i: int64(t.Sub(dateEpoch).Hours() / 24)}
}

// DateFromDays returns a date value from a count of days since 1970-01-01.
func DateFromDays(days int64) Value { return Value{kind: KindDate, i: days} }

// Kind returns the kind tag of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the integer payload. It panics if the kind is not KindInt.
func (v Value) AsInt() int64 {
	if v.kind != KindInt {
		panic("relation: AsInt on " + v.kind.String())
	}
	return v.i
}

// AsFloat returns the numeric payload widened to float64. It panics unless
// the kind is KindInt or KindFloat.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.i)
	default:
		panic("relation: AsFloat on " + v.kind.String())
	}
}

// AsString returns the string payload. It panics if the kind is not
// KindString.
func (v Value) AsString() string {
	if v.kind != KindString {
		panic("relation: AsString on " + v.kind.String())
	}
	return v.s
}

// AsBool returns the boolean payload. It panics if the kind is not KindBool.
func (v Value) AsBool() bool {
	if v.kind != KindBool {
		panic("relation: AsBool on " + v.kind.String())
	}
	return v.i != 0
}

// AsDays returns the day count of a date value. It panics if the kind is not
// KindDate.
func (v Value) AsDays() int64 {
	if v.kind != KindDate {
		panic("relation: AsDays on " + v.kind.String())
	}
	return v.i
}

// Time returns the date value as a time.Time at UTC midnight. It panics if
// the kind is not KindDate.
func (v Value) Time() time.Time {
	return dateEpoch.AddDate(0, 0, int(v.AsDays()))
}

// Format renders the value the way the CSV codec and text generator print
// it. NULL renders as the empty string.
func (v Value) Format() string {
	switch v.kind {
	case KindNull:
		return ""
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case KindDate:
		return v.Time().Format("2006-01-02")
	default:
		return fmt.Sprintf("<%s>", v.kind)
	}
}

// AppendTo appends the Format() rendering of v to buf without allocating
// an intermediate string. The bytes are identical to Format() for every
// kind — vectorized CONCAT and the row-at-a-time evaluator must emit the
// same sentences — which TestAppendToMatchesFormat pins.
func (v Value) AppendTo(buf []byte) []byte {
	switch v.kind {
	case KindNull:
		return buf
	case KindInt:
		return appendInt(buf, v.i)
	case KindFloat:
		return appendFloat(buf, v.f)
	case KindString:
		return append(buf, v.s...)
	case KindBool:
		return appendBool(buf, v.i != 0)
	case KindDate:
		return appendDate(buf, v.i)
	default:
		return append(buf, v.Format()...)
	}
}

func appendInt(buf []byte, i int64) []byte { return strconv.AppendInt(buf, i, 10) }

func appendFloat(buf []byte, f float64) []byte {
	return strconv.AppendFloat(buf, f, 'g', -1, 64)
}

func appendBool(buf []byte, b bool) []byte {
	if b {
		return append(buf, "true"...)
	}
	return append(buf, "false"...)
}

func appendDate(buf []byte, days int64) []byte {
	return dateEpoch.AddDate(0, 0, int(days)).AppendFormat(buf, "2006-01-02")
}

// GoString implements fmt.GoStringer for readable test failures.
func (v Value) GoString() string {
	if v.kind == KindNull {
		return "relation.Null"
	}
	return fmt.Sprintf("%s(%s)", v.kind, v.Format())
}

// Equal reports value equality. Values of different kinds are unequal,
// except that int and float compare numerically. NULL equals nothing,
// including NULL (SQL semantics live in Compare; Equal is plain equality
// for maps and tests, where NULL == NULL is true).
func (v Value) Equal(o Value) bool {
	if v.kind == o.kind {
		switch v.kind {
		case KindNull:
			return true
		case KindString:
			return v.s == o.s
		case KindFloat:
			return v.f == o.f
		default:
			return v.i == o.i
		}
	}
	if v.kind.Numeric() && o.kind.Numeric() {
		return v.AsFloat() == o.AsFloat()
	}
	return false
}

// Compare orders two values: -1 if v < o, 0 if equal, +1 if v > o. Numeric
// kinds compare numerically across int/float. NULL sorts before everything.
// Comparing unordered or mismatched kinds returns an error.
func (v Value) Compare(o Value) (int, error) {
	if v.kind == KindNull || o.kind == KindNull {
		switch {
		case v.kind == o.kind:
			return 0, nil
		case v.kind == KindNull:
			return -1, nil
		default:
			return 1, nil
		}
	}
	if v.kind.Numeric() && o.kind.Numeric() {
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1, nil
		case a > b:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if v.kind != o.kind {
		return 0, fmt.Errorf("relation: cannot compare %s with %s", v.kind, o.kind)
	}
	switch v.kind {
	case KindString:
		return strings.Compare(v.s, o.s), nil
	case KindDate:
		switch {
		case v.i < o.i:
			return -1, nil
		case v.i > o.i:
			return 1, nil
		default:
			return 0, nil
		}
	case KindBool:
		switch {
		case v.i < o.i:
			return -1, nil
		case v.i > o.i:
			return 1, nil
		default:
			return 0, nil
		}
	default:
		return 0, fmt.Errorf("relation: %s values are not ordered", v.kind)
	}
}

// HashKey returns a string usable as a map key that respects Equal: values
// that are Equal produce the same key. Int and float values with the same
// numeric value share a key.
func (v Value) HashKey() string {
	switch v.kind {
	case KindNull:
		return "\x00"
	case KindString:
		return "s" + v.s
	case KindBool:
		return "b" + strconv.FormatInt(v.i, 10)
	case KindDate:
		return "d" + strconv.FormatInt(v.i, 10)
	case KindInt:
		return "n" + strconv.FormatFloat(float64(v.i), 'g', -1, 64)
	case KindFloat:
		if v.f == math.Trunc(v.f) && math.Abs(v.f) < 1e15 {
			return "n" + strconv.FormatFloat(v.f, 'g', -1, 64)
		}
		return "n" + strconv.FormatFloat(v.f, 'g', -1, 64)
	default:
		return "?"
	}
}

// AppendHashKey appends the HashKey() bytes of v to buf without
// allocating the key string. Join probes and DISTINCT sinks build
// composite keys in a reused scratch buffer and look maps up through the
// compiler-optimized string([]byte) conversion, so steady-state key
// construction is allocation-free. The bytes are identical to HashKey()
// for every kind (pinned by TestAppendHashKeyMatchesHashKey).
func (v Value) AppendHashKey(buf []byte) []byte {
	switch v.kind {
	case KindNull:
		return append(buf, 0x00)
	case KindString:
		buf = append(buf, 's')
		return append(buf, v.s...)
	case KindBool:
		buf = append(buf, 'b')
		return strconv.AppendInt(buf, v.i, 10)
	case KindDate:
		buf = append(buf, 'd')
		return strconv.AppendInt(buf, v.i, 10)
	case KindInt:
		buf = append(buf, 'n')
		return strconv.AppendFloat(buf, float64(v.i), 'g', -1, 64)
	case KindFloat:
		buf = append(buf, 'n')
		return strconv.AppendFloat(buf, v.f, 'g', -1, 64)
	default:
		return append(buf, '?')
	}
}

// ParseValue parses s into the requested kind. The empty string parses to
// NULL for every kind.
func ParseValue(s string, k Kind) (Value, error) {
	if s == "" {
		return Null, nil
	}
	switch k {
	case KindString:
		return String(s), nil
	case KindInt:
		i, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			return Null, fmt.Errorf("relation: parse int %q: %w", s, err)
		}
		return Int(i), nil
	case KindFloat:
		f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return Null, fmt.Errorf("relation: parse float %q: %w", s, err)
		}
		return Float(f), nil
	case KindBool:
		switch strings.ToLower(strings.TrimSpace(s)) {
		case "true", "t", "yes", "y", "1":
			return Bool(true), nil
		case "false", "f", "no", "n", "0":
			return Bool(false), nil
		}
		return Null, fmt.Errorf("relation: parse bool %q", s)
	case KindDate:
		t, err := time.Parse("2006-01-02", strings.TrimSpace(s))
		if err != nil {
			return Null, fmt.Errorf("relation: parse date %q: %w", s, err)
		}
		return Date(t.Year(), t.Month(), t.Day()), nil
	case KindNull:
		return Null, nil
	default:
		return Null, fmt.Errorf("relation: parse into unknown kind %v", k)
	}
}

// InferKind guesses the narrowest kind that can represent s. Preference
// order: int, float, date, bool, string. The empty string infers KindNull.
func InferKind(s string) Kind {
	t := strings.TrimSpace(s)
	if t == "" {
		return KindNull
	}
	if _, err := strconv.ParseInt(t, 10, 64); err == nil {
		return KindInt
	}
	if _, err := strconv.ParseFloat(t, 64); err == nil {
		return KindFloat
	}
	if _, err := time.Parse("2006-01-02", t); err == nil {
		return KindDate
	}
	switch strings.ToLower(t) {
	case "true", "false":
		return KindBool
	}
	return KindString
}

// UnifyKind returns the narrowest kind that can hold both a and b, used by
// column type inference. Null unifies with anything; int widens to float;
// everything else falls back to string.
func UnifyKind(a, b Kind) Kind {
	if a == b {
		return a
	}
	if a == KindNull {
		return b
	}
	if b == KindNull {
		return a
	}
	if a.Numeric() && b.Numeric() {
		return KindFloat
	}
	return KindString
}
