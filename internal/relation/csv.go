package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// ReadCSV parses a CSV stream with a header row into a typed table. Column
// kinds are inferred per column across all rows (InferKind unified with
// UnifyKind); a column whose cells are all empty becomes a string column.
func ReadCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("relation: read csv %s: %w", name, err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("relation: read csv %s: empty input", name)
	}
	header := records[0]
	body := records[1:]

	kinds := make([]Kind, len(header))
	for _, rec := range body {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("relation: read csv %s: record arity %d != header arity %d",
				name, len(rec), len(header))
		}
		for c, cell := range rec {
			kinds[c] = UnifyKind(kinds[c], InferKind(cell))
		}
	}
	schema := make(Schema, len(header))
	for c, h := range header {
		k := kinds[c]
		if k == KindNull {
			k = KindString
		}
		schema[c] = Column{Name: strings.TrimSpace(h), Kind: k}
	}

	t := NewTable(name, schema)
	t.Rows = make([]Row, 0, len(body))
	for i, rec := range body {
		row := make(Row, len(rec))
		for c, cell := range rec {
			v, err := ParseValue(cell, schema[c].Kind)
			if err != nil {
				return nil, fmt.Errorf("relation: read csv %s row %d: %w", name, i+1, err)
			}
			row[c] = v
		}
		if err := t.Append(row); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// ReadCSVString is ReadCSV over an in-memory document. It is the loader used
// by the embedded datasets.
func ReadCSVString(name, doc string) (*Table, error) {
	return ReadCSV(name, strings.NewReader(doc))
}

// MustReadCSVString is ReadCSVString for statically-known documents; it
// panics on error.
func MustReadCSVString(name, doc string) *Table {
	t, err := ReadCSVString(name, doc)
	if err != nil {
		panic(err)
	}
	return t
}

// WriteCSV serializes the table, header first, NULLs as empty cells.
func WriteCSV(t *Table, w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Schema.Names()); err != nil {
		return fmt.Errorf("relation: write csv %s: %w", t.Name, err)
	}
	rec := make([]string, t.NumCols())
	for _, row := range t.Rows {
		for c, v := range row {
			rec[c] = v.Format()
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("relation: write csv %s: %w", t.Name, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
