package relation

import (
	"strings"
	"testing"
)

const sampleCSV = `Player,Team,FG%,3FG%,fouls,apps
Carter,LA,56,47,4,5
Smith,SF,55,30,4,7
Carter,SF,50,51,3,3
`

func TestReadCSVInfersTypes(t *testing.T) {
	tab, err := ReadCSVString("D", sampleCSV)
	if err != nil {
		t.Fatalf("ReadCSVString: %v", err)
	}
	wantKinds := []Kind{KindString, KindString, KindInt, KindInt, KindInt, KindInt}
	for i, k := range wantKinds {
		if tab.Schema[i].Kind != k {
			t.Errorf("column %s kind = %s, want %s", tab.Schema[i].Name, tab.Schema[i].Kind, k)
		}
	}
	if tab.NumRows() != 3 {
		t.Errorf("rows = %d, want 3", tab.NumRows())
	}
	if tab.Cell(1, 2).AsInt() != 55 {
		t.Errorf("cell(1,2) = %#v", tab.Cell(1, 2))
	}
}

func TestReadCSVMixedColumnWidens(t *testing.T) {
	doc := "a,b\n1,x\n2.5,y\n"
	tab, err := ReadCSVString("m", doc)
	if err != nil {
		t.Fatalf("ReadCSVString: %v", err)
	}
	if tab.Schema[0].Kind != KindFloat {
		t.Errorf("mixed int/float column kind = %s, want float", tab.Schema[0].Kind)
	}
}

func TestReadCSVEmptyColumnDefaultsString(t *testing.T) {
	doc := "a,b\n,1\n,2\n"
	tab, err := ReadCSVString("e", doc)
	if err != nil {
		t.Fatalf("ReadCSVString: %v", err)
	}
	if tab.Schema[0].Kind != KindString {
		t.Errorf("all-empty column kind = %s, want string", tab.Schema[0].Kind)
	}
	if !tab.Cell(0, 0).IsNull() {
		t.Errorf("empty cell = %#v, want NULL", tab.Cell(0, 0))
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSVString("x", ""); err == nil {
		t.Error("expected error for empty document")
	}
	if _, err := ReadCSVString("x", "a,b\n1\n"); err == nil {
		t.Error("expected error for ragged record")
	}
}

func TestCSVRoundtrip(t *testing.T) {
	tab, err := ReadCSVString("D", sampleCSV)
	if err != nil {
		t.Fatalf("ReadCSVString: %v", err)
	}
	var b strings.Builder
	if err := WriteCSV(tab, &b); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	back, err := ReadCSVString("D", b.String())
	if err != nil {
		t.Fatalf("re-read: %v", err)
	}
	if back.NumRows() != tab.NumRows() || back.NumCols() != tab.NumCols() {
		t.Fatalf("roundtrip shape mismatch: %dx%d vs %dx%d",
			back.NumRows(), back.NumCols(), tab.NumRows(), tab.NumCols())
	}
	for r := range tab.Rows {
		for c := range tab.Rows[r] {
			if !back.Cell(r, c).Equal(tab.Cell(r, c)) {
				t.Errorf("roundtrip cell (%d,%d): %#v != %#v", r, c, back.Cell(r, c), tab.Cell(r, c))
			}
		}
	}
}

func TestMustReadCSVStringPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustReadCSVString("bad", "")
}
