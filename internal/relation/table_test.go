package relation

import (
	"strings"
	"testing"
)

func basketTable(t *testing.T) *Table {
	t.Helper()
	tab := NewTable("D", Schema{
		{Name: "Player", Kind: KindString},
		{Name: "Team", Kind: KindString},
		{Name: "FG%", Kind: KindInt},
		{Name: "3FG%", Kind: KindInt},
		{Name: "fouls", Kind: KindInt},
		{Name: "apps", Kind: KindInt},
	})
	rows := []Row{
		{String("Carter"), String("LA"), Int(56), Int(47), Int(4), Int(5)},
		{String("Smith"), String("SF"), Int(55), Int(30), Int(4), Int(7)},
		{String("Carter"), String("SF"), Int(50), Int(51), Int(3), Int(3)},
	}
	for _, r := range rows {
		if err := tab.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	return tab
}

func TestSchemaIndexAndColumn(t *testing.T) {
	tab := basketTable(t)
	if i := tab.Schema.Index("fg%"); i != 2 {
		t.Errorf("Index(fg%%) = %d, want 2 (case-insensitive)", i)
	}
	if i := tab.Schema.Index("missing"); i != -1 {
		t.Errorf("Index(missing) = %d, want -1", i)
	}
	c, ok := tab.Schema.Column("Team")
	if !ok || c.Kind != KindString {
		t.Errorf("Column(Team) = %+v, %v", c, ok)
	}
	if got := strings.Join(tab.Schema.Names(), ","); got != "Player,Team,FG%,3FG%,fouls,apps" {
		t.Errorf("Names = %s", got)
	}
}

func TestAppendValidation(t *testing.T) {
	tab := basketTable(t)
	if err := tab.Append(Row{String("x")}); err == nil {
		t.Error("expected arity error")
	}
	if err := tab.Append(Row{Int(1), String("LA"), Int(1), Int(1), Int(1), Int(1)}); err == nil {
		t.Error("expected kind error for int in string column")
	}
	// NULL is accepted anywhere.
	if err := tab.Append(Row{Null, Null, Null, Null, Null, Null}); err != nil {
		t.Errorf("NULL row rejected: %v", err)
	}
}

func TestAppendWidensIntToFloat(t *testing.T) {
	tab := NewTable("f", Schema{{Name: "x", Kind: KindFloat}})
	if err := tab.Append(Row{Int(3)}); err != nil {
		t.Fatalf("Append int into float column: %v", err)
	}
	if got := tab.Cell(0, 0); got.Kind() != KindFloat || got.AsFloat() != 3 {
		t.Errorf("stored value = %#v, want float 3", got)
	}
}

func TestColumnValues(t *testing.T) {
	tab := basketTable(t)
	vals, err := tab.ColumnValues("Player")
	if err != nil {
		t.Fatalf("ColumnValues: %v", err)
	}
	want := []string{"Carter", "Smith", "Carter"}
	for i, v := range vals {
		if v.AsString() != want[i] {
			t.Errorf("Player[%d] = %s, want %s", i, v.Format(), want[i])
		}
	}
	if _, err := tab.ColumnValues("nope"); err == nil {
		t.Error("expected error for missing column")
	}
}

func TestProject(t *testing.T) {
	tab := basketTable(t)
	p, err := tab.Project("Team", "Player")
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	if p.NumCols() != 2 || p.Schema[0].Name != "Team" {
		t.Errorf("projected schema = %s", p.Schema)
	}
	if p.Cell(0, 1).AsString() != "Carter" {
		t.Errorf("projected cell = %#v", p.Cell(0, 1))
	}
	if _, err := tab.Project("nope"); err == nil {
		t.Error("expected error for missing column")
	}
}

func TestCloneIsDeep(t *testing.T) {
	tab := basketTable(t)
	cl := tab.Clone()
	cl.Rows[0][0] = String("Mutated")
	if tab.Cell(0, 0).AsString() != "Carter" {
		t.Error("Clone shares row storage with original")
	}
}

func TestSample(t *testing.T) {
	tab := basketTable(t)
	if got := tab.Sample(0); got != nil {
		t.Errorf("Sample(0) = %v, want nil", got)
	}
	if got := tab.Sample(10); len(got) != 3 {
		t.Errorf("Sample(10) returned %d rows, want 3", len(got))
	}
	got := tab.Sample(2)
	if len(got) != 2 {
		t.Fatalf("Sample(2) returned %d rows", len(got))
	}
	if got[0][0].AsString() != "Carter" {
		t.Errorf("Sample(2)[0] = %v", got[0])
	}
}

func TestSortBy(t *testing.T) {
	tab := basketTable(t)
	if err := tab.SortBy("Player", "Team"); err != nil {
		t.Fatalf("SortBy: %v", err)
	}
	order := make([]string, len(tab.Rows))
	for i, r := range tab.Rows {
		order[i] = r[0].AsString() + "/" + r[1].AsString()
	}
	want := []string{"Carter/LA", "Carter/SF", "Smith/SF"}
	for i := range want {
		if order[i] != want[i] {
			t.Errorf("sorted order = %v, want %v", order, want)
			break
		}
	}
	if err := tab.SortBy("nope"); err == nil {
		t.Error("expected error for missing sort column")
	}
}

func TestTableString(t *testing.T) {
	tab := basketTable(t)
	s := tab.String()
	if !strings.Contains(s, "D(") || !strings.Contains(s, "Carter") {
		t.Errorf("String() preview missing content: %s", s)
	}
}
