package relation

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull:   "null",
		KindInt:    "int",
		KindFloat:  "float",
		KindString: "string",
		KindBool:   "bool",
		KindDate:   "date",
		Kind(99):   "kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestValueAccessors(t *testing.T) {
	if got := Int(42).AsInt(); got != 42 {
		t.Errorf("Int(42).AsInt() = %d", got)
	}
	if got := Float(2.5).AsFloat(); got != 2.5 {
		t.Errorf("Float(2.5).AsFloat() = %g", got)
	}
	if got := Int(7).AsFloat(); got != 7 {
		t.Errorf("Int(7).AsFloat() = %g", got)
	}
	if got := String("hi").AsString(); got != "hi" {
		t.Errorf("String(hi).AsString() = %q", got)
	}
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Error("Bool payload mismatch")
	}
	d := Date(2020, time.March, 15)
	if got := d.Time().Format("2006-01-02"); got != "2020-03-15" {
		t.Errorf("Date roundtrip = %s", got)
	}
	if !Null.IsNull() || Int(0).IsNull() {
		t.Error("IsNull mismatch")
	}
}

func TestValueAccessorPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func()
	}{
		{"AsInt on string", func() { String("x").AsInt() }},
		{"AsFloat on string", func() { String("x").AsFloat() }},
		{"AsString on int", func() { Int(1).AsString() }},
		{"AsBool on int", func() { Int(1).AsBool() }},
		{"AsDays on int", func() { Int(1).AsDays() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			tc.f()
		})
	}
}

func TestValueFormat(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, ""},
		{Int(-3), "-3"},
		{Float(0.5), "0.5"},
		{Float(100), "100"},
		{String("Carter"), "Carter"},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{Date(1999, time.December, 31), "1999-12-31"},
	}
	for _, tc := range cases {
		if got := tc.v.Format(); got != tc.want {
			t.Errorf("%#v.Format() = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestValueEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Int(1), Int(1), true},
		{Int(1), Int(2), false},
		{Int(1), Float(1), true},
		{Float(1.5), Int(1), false},
		{String("a"), String("a"), true},
		{String("a"), String("b"), false},
		{String("1"), Int(1), false},
		{Null, Null, true},
		{Null, Int(0), false},
		{Bool(true), Bool(true), true},
		{Bool(true), Int(1), false},
		{Date(2020, 1, 1), Date(2020, 1, 1), true},
		{Date(2020, 1, 1), Date(2020, 1, 2), false},
	}
	for _, tc := range cases {
		if got := tc.a.Equal(tc.b); got != tc.want {
			t.Errorf("%#v.Equal(%#v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
		if got := tc.b.Equal(tc.a); got != tc.want {
			t.Errorf("Equal not symmetric for %#v, %#v", tc.a, tc.b)
		}
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Float(2.5), Int(2), 1},
		{String("a"), String("b"), -1},
		{Date(2020, 1, 1), Date(2021, 1, 1), -1},
		{Bool(false), Bool(true), -1},
		{Null, Int(5), -1},
		{Int(5), Null, 1},
		{Null, Null, 0},
	}
	for _, tc := range cases {
		got, err := tc.a.Compare(tc.b)
		if err != nil {
			t.Errorf("%#v.Compare(%#v): %v", tc.a, tc.b, err)
			continue
		}
		if got != tc.want {
			t.Errorf("%#v.Compare(%#v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
	if _, err := String("a").Compare(Int(1)); err == nil {
		t.Error("expected error comparing string with int")
	}
	if _, err := Date(2020, 1, 1).Compare(Bool(true)); err == nil {
		t.Error("expected error comparing date with bool")
	}
}

func TestHashKeyRespectsEqual(t *testing.T) {
	pairs := [][2]Value{
		{Int(3), Float(3)},
		{Null, Null},
		{String("x"), String("x")},
	}
	for _, p := range pairs {
		if p[0].HashKey() != p[1].HashKey() {
			t.Errorf("HashKey mismatch for equal values %#v, %#v", p[0], p[1])
		}
	}
	distinct := []Value{Int(1), Int(2), String("1"), Bool(true), Date(1970, 1, 2), Null, Float(1.5)}
	seen := map[string]Value{}
	for _, v := range distinct {
		k := v.HashKey()
		if prev, ok := seen[k]; ok {
			t.Errorf("HashKey collision: %#v and %#v", prev, v)
		}
		seen[k] = v
	}
}

func TestParseValue(t *testing.T) {
	cases := []struct {
		in   string
		k    Kind
		want Value
	}{
		{"42", KindInt, Int(42)},
		{" 42 ", KindInt, Int(42)},
		{"2.5", KindFloat, Float(2.5)},
		{"hello", KindString, String("hello")},
		{"true", KindBool, Bool(true)},
		{"No", KindBool, Bool(false)},
		{"2020-05-01", KindDate, Date(2020, time.May, 1)},
		{"", KindInt, Null},
		{"", KindString, Null},
	}
	for _, tc := range cases {
		got, err := ParseValue(tc.in, tc.k)
		if err != nil {
			t.Errorf("ParseValue(%q, %s): %v", tc.in, tc.k, err)
			continue
		}
		if !got.Equal(tc.want) || got.Kind() != tc.want.Kind() {
			t.Errorf("ParseValue(%q, %s) = %#v, want %#v", tc.in, tc.k, got, tc.want)
		}
	}
	bad := []struct {
		in string
		k  Kind
	}{
		{"abc", KindInt},
		{"abc", KindFloat},
		{"maybe", KindBool},
		{"01/02/2020", KindDate},
	}
	for _, tc := range bad {
		if _, err := ParseValue(tc.in, tc.k); err == nil {
			t.Errorf("ParseValue(%q, %s): expected error", tc.in, tc.k)
		}
	}
}

func TestInferKind(t *testing.T) {
	cases := map[string]Kind{
		"":           KindNull,
		"42":         KindInt,
		"-7":         KindInt,
		"3.14":       KindFloat,
		"1e5":        KindFloat,
		"2021-01-05": KindDate,
		"true":       KindBool,
		"FALSE":      KindBool,
		"Carter":     KindString,
		"SF":         KindString,
	}
	for in, want := range cases {
		if got := InferKind(in); got != want {
			t.Errorf("InferKind(%q) = %s, want %s", in, got, want)
		}
	}
}

func TestUnifyKind(t *testing.T) {
	cases := []struct {
		a, b, want Kind
	}{
		{KindInt, KindInt, KindInt},
		{KindInt, KindFloat, KindFloat},
		{KindNull, KindDate, KindDate},
		{KindBool, KindNull, KindBool},
		{KindInt, KindString, KindString},
		{KindDate, KindBool, KindString},
	}
	for _, tc := range cases {
		if got := UnifyKind(tc.a, tc.b); got != tc.want {
			t.Errorf("UnifyKind(%s, %s) = %s, want %s", tc.a, tc.b, got, tc.want)
		}
		if got := UnifyKind(tc.b, tc.a); got != tc.want {
			t.Errorf("UnifyKind not symmetric for %s, %s", tc.a, tc.b)
		}
	}
}

// Property: parse(format(v)) is the identity for every non-null value kind.
func TestFormatParseRoundtripProperty(t *testing.T) {
	f := func(i int64, fl float64, s string, b bool, days int16) bool {
		if math.IsNaN(fl) || math.IsInf(fl, 0) {
			fl = 0
		}
		vals := []Value{Int(i), Float(fl), Bool(b), DateFromDays(int64(days))}
		if s != "" {
			vals = append(vals, String(s))
		}
		for _, v := range vals {
			got, err := ParseValue(v.Format(), v.Kind())
			if err != nil || !got.Equal(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Compare is antisymmetric and consistent with Equal on numeric
// values.
func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int32) bool {
		va, vb := Int(int64(a)), Float(float64(b))
		ab, err1 := va.Compare(vb)
		ba, err2 := vb.Compare(va)
		if err1 != nil || err2 != nil {
			return false
		}
		if ab != -ba {
			return false
		}
		return (ab == 0) == va.Equal(vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
