package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Column describes one attribute of a relation: its name and value kind.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of columns.
type Schema []Column

// Names returns the column names in schema order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, c := range s {
		out[i] = c.Name
	}
	return out
}

// Index returns the position of the column with the given name
// (case-insensitive), or -1 if absent.
func (s Schema) Index(name string) int {
	for i, c := range s {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Column returns the column with the given name and whether it exists.
func (s Schema) Column(name string) (Column, bool) {
	if i := s.Index(name); i >= 0 {
		return s[i], true
	}
	return Column{}, false
}

// Clone returns a deep copy of the schema.
func (s Schema) Clone() Schema {
	out := make(Schema, len(s))
	copy(out, s)
	return out
}

// String renders the schema as "name:kind, ...".
func (s Schema) String() string {
	parts := make([]string, len(s))
	for i, c := range s {
		parts[i] = c.Name + ":" + c.Kind.String()
	}
	return strings.Join(parts, ", ")
}

// Row is one tuple of a relation. Its length always matches the schema.
type Row []Value

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Table is an in-memory relation: a named schema plus row-major tuples.
type Table struct {
	Name   string
	Schema Schema
	Rows   []Row
}

// NewTable returns an empty table with the given name and schema.
func NewTable(name string, schema Schema) *Table {
	return &Table{Name: name, Schema: schema.Clone()}
}

// NumRows returns the number of tuples.
func (t *Table) NumRows() int { return len(t.Rows) }

// NumCols returns the arity of the relation.
func (t *Table) NumCols() int { return len(t.Schema) }

// Append adds a row after validating its arity and kinds. Values of kind
// NULL are accepted in any column; int values are accepted in float columns
// (and widened).
func (t *Table) Append(row Row) error {
	if len(row) != len(t.Schema) {
		return fmt.Errorf("relation: table %s: row arity %d != schema arity %d",
			t.Name, len(row), len(t.Schema))
	}
	stored := make(Row, len(row))
	for i, v := range row {
		switch {
		case v.IsNull(), v.Kind() == t.Schema[i].Kind:
			stored[i] = v
		case v.Kind() == KindInt && t.Schema[i].Kind == KindFloat:
			stored[i] = Float(v.AsFloat())
		default:
			return fmt.Errorf("relation: table %s: column %s expects %s, got %s",
				t.Name, t.Schema[i].Name, t.Schema[i].Kind, v.Kind())
		}
	}
	t.Rows = append(t.Rows, stored)
	return nil
}

// Extend returns a new table holding this table's rows plus the given
// delta, validating and coercing the new rows exactly like Append. The
// receiver is never mutated: the returned table's row slice is capped at
// the shared prefix so the first appended row reallocates, which makes
// Extend a copy-on-write append — readers holding the old *Table keep an
// immutable view while the extended table is published elsewhere (the
// engine's snapshot registry relies on this).
func (t *Table) Extend(rows []Row) (*Table, error) {
	out := &Table{Name: t.Name, Schema: t.Schema, Rows: t.Rows[:len(t.Rows):len(t.Rows)]}
	for _, r := range rows {
		if err := out.Append(r); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// MustAppend is Append for statically-known rows; it panics on error. It is
// intended for embedded datasets and tests.
func (t *Table) MustAppend(row Row) {
	if err := t.Append(row); err != nil {
		panic(err)
	}
}

// Cell returns the value at (row, col).
func (t *Table) Cell(row, col int) Value { return t.Rows[row][col] }

// ColumnValues returns all values of the named column in row order.
func (t *Table) ColumnValues(name string) ([]Value, error) {
	i := t.Schema.Index(name)
	if i < 0 {
		return nil, fmt.Errorf("relation: table %s has no column %q", t.Name, name)
	}
	out := make([]Value, len(t.Rows))
	for r, row := range t.Rows {
		out[r] = row[i]
	}
	return out, nil
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	out := NewTable(t.Name, t.Schema)
	out.Rows = make([]Row, len(t.Rows))
	for i, r := range t.Rows {
		out.Rows[i] = r.Clone()
	}
	return out
}

// Project returns a new table containing only the named columns, in the
// given order.
func (t *Table) Project(names ...string) (*Table, error) {
	idx := make([]int, len(names))
	schema := make(Schema, len(names))
	for i, n := range names {
		j := t.Schema.Index(n)
		if j < 0 {
			return nil, fmt.Errorf("relation: table %s has no column %q", t.Name, n)
		}
		idx[i] = j
		schema[i] = t.Schema[j]
	}
	out := NewTable(t.Name, schema)
	out.Rows = make([]Row, len(t.Rows))
	for r, row := range t.Rows {
		nr := make(Row, len(idx))
		for i, j := range idx {
			nr[i] = row[j]
		}
		out.Rows[r] = nr
	}
	return out, nil
}

// Sample returns up to n rows, deterministically spread across the table
// (first, then evenly strided). It never copies cell values.
func (t *Table) Sample(n int) []Row {
	if n <= 0 || len(t.Rows) == 0 {
		return nil
	}
	if n >= len(t.Rows) {
		out := make([]Row, len(t.Rows))
		copy(out, t.Rows)
		return out
	}
	out := make([]Row, 0, n)
	stride := float64(len(t.Rows)) / float64(n)
	for i := 0; i < n; i++ {
		out = append(out, t.Rows[int(float64(i)*stride)])
	}
	return out
}

// String renders a small ASCII preview (schema plus up to 8 rows), for
// debugging and error messages.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%s) [%d rows]", t.Name, t.Schema, len(t.Rows))
	n := len(t.Rows)
	if n > 8 {
		n = 8
	}
	for _, row := range t.Rows[:n] {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.Format()
		}
		b.WriteString("\n  " + strings.Join(parts, " | "))
	}
	if len(t.Rows) > n {
		fmt.Fprintf(&b, "\n  … %d more", len(t.Rows)-n)
	}
	return b.String()
}

// SortBy sorts rows in place by the named columns ascending. Unordered or
// mixed-kind comparisons fall back to the formatted string. It is used to
// make test output deterministic.
func (t *Table) SortBy(names ...string) error {
	idx := make([]int, len(names))
	for i, n := range names {
		j := t.Schema.Index(n)
		if j < 0 {
			return fmt.Errorf("relation: table %s has no column %q", t.Name, n)
		}
		idx[i] = j
	}
	sort.SliceStable(t.Rows, func(a, b int) bool {
		for _, j := range idx {
			c, err := t.Rows[a][j].Compare(t.Rows[b][j])
			if err != nil {
				c = strings.Compare(t.Rows[a][j].Format(), t.Rows[b][j].Format())
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	return nil
}
