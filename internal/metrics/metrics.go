// Package metrics implements the evaluation measures the paper reports:
// precision / recall / F1 over retrieval-style predictions, classification
// accuracy with per-class breakdowns, and BLEU for generated SQL.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// PRF is a precision / recall / F-measure triple.
type PRF struct {
	Precision float64
	Recall    float64
	F1        float64
	// Support counts: TP, FP, FN backing the ratios.
	TP, FP, FN int
}

// Compute fills the ratios from the counts. Empty denominators yield zero.
func Compute(tp, fp, fn int) PRF {
	out := PRF{TP: tp, FP: fp, FN: fn}
	if tp+fp > 0 {
		out.Precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		out.Recall = float64(tp) / float64(tp+fn)
	}
	if out.Precision+out.Recall > 0 {
		out.F1 = 2 * out.Precision * out.Recall / (out.Precision + out.Recall)
	}
	return out
}

// String renders the triple as percentages, matching the paper's tables.
func (p PRF) String() string {
	return fmt.Sprintf("P=%.1f R=%.1f F1=%.1f", 100*p.Precision, 100*p.Recall, 100*p.F1)
}

// SetPRF scores predicted items against a gold set (both as string keys).
func SetPRF(predicted, gold []string) PRF {
	predSet := map[string]bool{}
	for _, p := range predicted {
		predSet[p] = true
	}
	goldSet := map[string]bool{}
	for _, g := range gold {
		goldSet[g] = true
	}
	tp, fp, fn := 0, 0, 0
	for p := range predSet {
		if goldSet[p] {
			tp++
		} else {
			fp++
		}
	}
	for g := range goldSet {
		if !predSet[g] {
			fn++
		}
	}
	return Compute(tp, fp, fn)
}

// Confusion is a multi-class confusion matrix over string class names.
type Confusion struct {
	classes []string
	index   map[string]int
	counts  [][]int // counts[gold][pred]
}

// NewConfusion builds a matrix over the given classes.
func NewConfusion(classes ...string) *Confusion {
	c := &Confusion{classes: classes, index: map[string]int{}}
	for i, cl := range classes {
		c.index[cl] = i
	}
	c.counts = make([][]int, len(classes))
	for i := range c.counts {
		c.counts[i] = make([]int, len(classes))
	}
	return c
}

// Add records one (gold, predicted) observation. Unknown classes are added
// on the fly.
func (c *Confusion) Add(gold, pred string) {
	gi := c.class(gold)
	pi := c.class(pred)
	c.counts[gi][pi]++
}

func (c *Confusion) class(name string) int {
	if i, ok := c.index[name]; ok {
		return i
	}
	i := len(c.classes)
	c.classes = append(c.classes, name)
	c.index[name] = i
	for j := range c.counts {
		c.counts[j] = append(c.counts[j], 0)
	}
	row := make([]int, len(c.classes))
	c.counts = append(c.counts, row)
	return i
}

// Class returns the PRF of one class.
func (c *Confusion) Class(name string) PRF {
	i, ok := c.index[name]
	if !ok {
		return PRF{}
	}
	tp := c.counts[i][i]
	fp, fn := 0, 0
	for j := range c.classes {
		if j != i {
			fp += c.counts[j][i]
			fn += c.counts[i][j]
		}
	}
	return Compute(tp, fp, fn)
}

// Accuracy returns the fraction of diagonal observations.
func (c *Confusion) Accuracy() float64 {
	correct, total := 0, 0
	for i := range c.classes {
		for j := range c.classes {
			total += c.counts[i][j]
			if i == j {
				correct += c.counts[i][j]
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// Total returns the number of observations.
func (c *Confusion) Total() int {
	t := 0
	for i := range c.counts {
		for j := range c.counts[i] {
			t += c.counts[i][j]
		}
	}
	return t
}

// MacroF1 averages per-class F1 over classes that appear in the gold data.
func (c *Confusion) MacroF1() float64 {
	var sum float64
	n := 0
	for i, cl := range c.classes {
		goldCount := 0
		for j := range c.classes {
			goldCount += c.counts[i][j]
		}
		if goldCount == 0 {
			continue
		}
		sum += c.Class(cl).F1
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Classes returns the class names in insertion order.
func (c *Confusion) Classes() []string {
	out := make([]string, len(c.classes))
	copy(out, c.classes)
	return out
}

// String renders the matrix for reports.
func (c *Confusion) String() string {
	var b strings.Builder
	order := make([]string, len(c.classes))
	copy(order, c.classes)
	sort.Strings(order)
	fmt.Fprintf(&b, "%-12s", "gold\\pred")
	for _, cl := range order {
		fmt.Fprintf(&b, "%10s", cl)
	}
	for _, g := range order {
		fmt.Fprintf(&b, "\n%-12s", g)
		for _, p := range order {
			fmt.Fprintf(&b, "%10d", c.counts[c.index[g]][c.index[p]])
		}
	}
	return b.String()
}

// BLEU computes smoothed corpus-less BLEU-N of a candidate against one
// reference, over whitespace tokens. The paper uses it to compare generated
// SQL with the labelled SQL.
func BLEU(candidate, reference string, maxN int) float64 {
	if maxN <= 0 {
		maxN = 4
	}
	cand := strings.Fields(strings.ToLower(candidate))
	ref := strings.Fields(strings.ToLower(reference))
	if len(cand) == 0 || len(ref) == 0 {
		return 0
	}
	logSum := 0.0
	levels := 0
	for n := 1; n <= maxN; n++ {
		match, total := ngramOverlap(cand, ref, n)
		if total == 0 {
			continue // candidate shorter than n; skip the level
		}
		var p float64
		if n == 1 {
			// Unigram precision is unsmoothed: no shared words, no score.
			if match == 0 {
				return 0
			}
			p = float64(match) / float64(total)
		} else {
			// +1 smoothing keeps sparse higher orders from zeroing BLEU.
			p = (float64(match) + 1) / (float64(total) + 1)
		}
		logSum += math.Log(p)
		levels++
	}
	if levels == 0 {
		return 0
	}
	precision := math.Exp(logSum / float64(levels))
	// Brevity penalty.
	bp := 1.0
	if len(cand) < len(ref) {
		bp = math.Exp(1 - float64(len(ref))/float64(len(cand)))
	}
	return bp * precision
}

// ngramOverlap counts clipped n-gram matches and candidate n-gram total.
func ngramOverlap(cand, ref []string, n int) (match, total int) {
	if len(cand) < n {
		return 0, 0
	}
	refCounts := map[string]int{}
	for i := 0; i+n <= len(ref); i++ {
		refCounts[strings.Join(ref[i:i+n], " ")]++
	}
	candCounts := map[string]int{}
	for i := 0; i+n <= len(cand); i++ {
		candCounts[strings.Join(cand[i:i+n], " ")]++
	}
	for g, c := range candCounts {
		total += c
		if r := refCounts[g]; r > 0 {
			if c < r {
				match += c
			} else {
				match += r
			}
		}
	}
	return match, total
}

// MeanBLEU averages BLEU over (candidate, reference) pairs, scaled to the
// 0-100 range the paper reports.
func MeanBLEU(pairs [][2]string, maxN int) float64 {
	if len(pairs) == 0 {
		return 0
	}
	var sum float64
	for _, p := range pairs {
		sum += BLEU(p[0], p[1], maxN)
	}
	return 100 * sum / float64(len(pairs))
}
