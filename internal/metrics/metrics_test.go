package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestCompute(t *testing.T) {
	p := Compute(8, 2, 4)
	if !almost(p.Precision, 0.8) || !almost(p.Recall, 8.0/12) {
		t.Errorf("PRF = %+v", p)
	}
	wantF1 := 2 * 0.8 * (8.0 / 12) / (0.8 + 8.0/12)
	if !almost(p.F1, wantF1) {
		t.Errorf("F1 = %v, want %v", p.F1, wantF1)
	}
	zero := Compute(0, 0, 0)
	if zero.Precision != 0 || zero.Recall != 0 || zero.F1 != 0 {
		t.Errorf("zero counts = %+v", zero)
	}
}

func TestSetPRF(t *testing.T) {
	p := SetPRF([]string{"a", "b", "c"}, []string{"b", "c", "d", "e"})
	if p.TP != 2 || p.FP != 1 || p.FN != 2 {
		t.Errorf("SetPRF counts = %+v", p)
	}
	// Duplicates collapse.
	p = SetPRF([]string{"a", "a"}, []string{"a"})
	if p.TP != 1 || p.FP != 0 || p.FN != 0 {
		t.Errorf("dup counts = %+v", p)
	}
}

func TestConfusion(t *testing.T) {
	c := NewConfusion("NEI", "Supports", "Refutes")
	obs := []struct{ gold, pred string }{
		{"NEI", "NEI"}, {"NEI", "Supports"},
		{"Supports", "Supports"}, {"Supports", "Supports"},
		{"Refutes", "NEI"}, {"Refutes", "Refutes"},
	}
	for _, o := range obs {
		c.Add(o.gold, o.pred)
	}
	if got := c.Accuracy(); !almost(got, 4.0/6) {
		t.Errorf("accuracy = %v", got)
	}
	nei := c.Class("NEI")
	if nei.TP != 1 || nei.FP != 1 || nei.FN != 1 {
		t.Errorf("NEI = %+v", nei)
	}
	if c.Total() != 6 {
		t.Errorf("total = %d", c.Total())
	}
	if c.MacroF1() <= 0 || c.MacroF1() > 1 {
		t.Errorf("macro F1 = %v", c.MacroF1())
	}
	if got := c.Class("missing"); got.TP != 0 {
		t.Errorf("missing class = %+v", got)
	}
	// Unknown classes appended on the fly.
	c.Add("New", "NEI")
	if len(c.Classes()) != 4 {
		t.Errorf("classes = %v", c.Classes())
	}
	if !strings.Contains(c.String(), "Supports") {
		t.Error("String misses class names")
	}
}

func TestBLEUPerfectAndDisjoint(t *testing.T) {
	s := "SELECT Player FROM D WHERE fouls = 3"
	if got := BLEU(s, s, 4); !almost(got, 1.0) {
		t.Errorf("BLEU(self) = %v, want 1", got)
	}
	if got := BLEU("alpha beta gamma", "delta epsilon zeta", 4); got > 0.35 {
		t.Errorf("disjoint BLEU = %v, want small", got)
	}
	if got := BLEU("", "ref", 4); got != 0 {
		t.Errorf("empty candidate BLEU = %v", got)
	}
}

func TestBLEUOrderSensitivity(t *testing.T) {
	ref := "select a from t where b = 1"
	good := "select a from t where b = 2"
	scrambled := "1 = b where t from a select"
	if BLEU(good, ref, 4) <= BLEU(scrambled, ref, 4) {
		t.Error("BLEU ignores n-gram order")
	}
}

func TestBLEUBrevityPenalty(t *testing.T) {
	ref := "select a from t where b = 1 and c = 2"
	short := "select a"
	long := "select a from t where b = 1 and c = 2"
	if BLEU(short, ref, 2) >= BLEU(long, ref, 2) {
		t.Error("brevity penalty not applied")
	}
}

func TestMeanBLEU(t *testing.T) {
	pairs := [][2]string{
		{"a b c", "a b c"},
		{"x", "a b c"},
	}
	got := MeanBLEU(pairs, 2)
	if got <= 0 || got >= 100 {
		t.Errorf("MeanBLEU = %v", got)
	}
	if MeanBLEU(nil, 2) != 0 {
		t.Error("MeanBLEU(nil) != 0")
	}
}

// Property: F1 is always between min and max of P and R, and zero only when
// TP is zero.
func TestF1BoundsProperty(t *testing.T) {
	f := func(tp, fp, fn uint8) bool {
		p := Compute(int(tp), int(fp), int(fn))
		if p.F1 < 0 || p.F1 > 1 {
			return false
		}
		if tp > 0 && p.F1 == 0 {
			return false
		}
		lo, hi := p.Precision, p.Recall
		if lo > hi {
			lo, hi = hi, lo
		}
		return p.F1 >= lo-1e-12 && p.F1 <= hi+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: BLEU is always in [0, 1].
func TestBLEURangeProperty(t *testing.T) {
	f := func(a, b []byte) bool {
		ca := strings.Join(strings.Fields(string(a)), " ")
		cb := strings.Join(strings.Fields(string(b)), " ")
		s := BLEU(ca, cb, 4)
		return s >= 0 && s <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
