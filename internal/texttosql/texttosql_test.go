package texttosql

import (
	"strings"
	"testing"

	"repro/internal/data"
	"repro/internal/detrand"
	"repro/internal/metrics"
	"repro/internal/relation"
)

// trainNames / testNames follow the paper's split.
var trainNames = []string{"Adults", "Soccer", "Laptop", "HeartDiseases"}
var testNames = []string{"Abalone", "Iris", "WineQuality", "Basket", "BasketAcronyms"}

func loadTables(t *testing.T, names []string) []*data.Dataset {
	t.Helper()
	var out []*data.Dataset
	for _, n := range names {
		out = append(out, data.MustLoad(n))
	}
	return out
}

func TestParserFillsSketch(t *testing.T) {
	d := data.MustLoad("Basket")
	p := NewParser()
	res := p.Parse("Does Carter LA have a Points of 20?", d.Table)
	if !strings.Contains(res.sql, "SELECT Points FROM Basket") {
		t.Errorf("sql = %q", res.sql)
	}
	if !strings.Contains(res.sql, "Player = 'Carter'") || !strings.Contains(res.sql, "Team = 'LA'") {
		t.Errorf("where clauses missing: %q", res.sql)
	}
	if !res.keyCoverage {
		t.Error("key coverage not detected")
	}
}

func TestParserPartialSubject(t *testing.T) {
	d := data.MustLoad("Basket")
	p := NewParser()
	res := p.Parse("Did Carter have 4 Fouls?", d.Table)
	if res.keyCoverage {
		t.Error("partial subject reported as full key coverage")
	}
	if !strings.Contains(res.sql, "Player = 'Carter'") {
		t.Errorf("sql = %q", res.sql)
	}
}

func TestParserAmbiguousLabelHasNoColumn(t *testing.T) {
	d := data.MustLoad("Basket")
	p := NewParser()
	res := p.Parse("Does Carter LA have higher shooting than Smith SF?", d.Table)
	if res.colScore != 0 {
		t.Errorf("colScore = %v for label word, want 0", res.colScore)
	}
}

func TestNumericKeyBinding(t *testing.T) {
	d := data.MustLoad("WineQuality")
	p := NewParser()
	// Subject id first: binds correctly.
	res := p.Parse("Does 17 have a quality of 7?", d.Table)
	if !strings.Contains(res.sql, "wine_id = 17") {
		t.Errorf("sql = %q, want wine_id = 17", res.sql)
	}
}

func TestBaselineNeverAbstains(t *testing.T) {
	tables := loadTables(t, testNames)
	var rels []*data.Dataset = tables
	sys := Baseline()
	for _, d := range rels {
		sys.Register(d.Table)
	}
	corpus, err := GenerateCorpus([]string{"Basket"}, 3)
	if err != nil {
		t.Fatalf("GenerateCorpus: %v", err)
	}
	for _, ex := range corpus {
		if got := sys.Predict(ex.Question, ex.Dataset); got == None {
			t.Errorf("baseline abstained on %q", ex.Question)
		}
	}
}

func TestGenerateCorpusShape(t *testing.T) {
	corpus, err := GenerateCorpus(trainNames, 5)
	if err != nil {
		t.Fatalf("GenerateCorpus: %v", err)
	}
	amb, plain := 0, 0
	for _, ex := range corpus {
		if ex.Ambiguous {
			if ex.GoldSQL != None {
				t.Errorf("ambiguous example with SQL gold: %+v", ex)
			}
			amb++
		} else {
			if !strings.HasPrefix(ex.GoldSQL, "SELECT ") {
				t.Errorf("gold SQL malformed: %q", ex.GoldSQL)
			}
			plain++
		}
	}
	t.Logf("corpus: %d ambiguous, %d plain", amb, plain)
	if amb < 200 || plain < 100 {
		t.Errorf("corpus too small: %d/%d", amb, plain)
	}
}

func TestGoldSQLMatchesParserFormat(t *testing.T) {
	// On clean questions the parser must reproduce the gold string exactly,
	// otherwise exact-match accuracy is meaningless.
	corpus, err := GenerateCorpus([]string{"Basket"}, 7)
	if err != nil {
		t.Fatal(err)
	}
	d := data.MustLoad("Basket")
	p := NewParser()
	matches, total := 0, 0
	for _, ex := range corpus {
		if ex.Ambiguous {
			continue
		}
		total++
		if p.Parse(ex.Question, d.Table).sql == ex.GoldSQL {
			matches++
		}
	}
	if total == 0 {
		t.Fatal("no plain examples")
	}
	if frac := float64(matches) / float64(total); frac < 0.9 {
		t.Errorf("parser matches gold on %.2f of clean questions, want >= 0.9", frac)
	}
}

func TestFineTunedBeatsBaseline(t *testing.T) {
	rawTrain, err := GenerateCorpus(trainNames, 11)
	if err != nil {
		t.Fatal(err)
	}
	train := Balance(rawTrain, 1.0, detrand.New(11))
	rawTest, err := GenerateCorpus(testNames, 13)
	if err != nil {
		t.Fatal(err)
	}
	test := Balance(rawTest, 1.0, detrand.New(13))
	all := loadTables(t, append(append([]string{}, trainNames...), testNames...))
	baseline := Baseline()
	for _, d := range all {
		baseline.Register(d.Table)
	}

	ft, err := FineTune(train, tablesOf(all), FineTuneOptions{Epochs: 4, Seed: 1})
	if err != nil {
		t.Fatalf("FineTune: %v", err)
	}

	score := func(s *System) (acc float64, f1 float64) {
		correct := 0
		tp, fp, fn := 0, 0, 0
		for _, ex := range test {
			got := s.Predict(ex.Question, ex.Dataset)
			if got == ex.GoldSQL {
				correct++
			}
			switch {
			case ex.Ambiguous && got == None:
				tp++
			case !ex.Ambiguous && got == None:
				fp++
			case ex.Ambiguous && got != None:
				fn++
			}
		}
		return float64(correct) / float64(len(test)), metrics.Compute(tp, fp, fn).F1
	}
	baseAcc, _ := score(baseline)
	ftAcc, ftF1 := score(ft)
	t.Logf("baseline ACC %.2f -> fine-tuned ACC %.2f (ambiguity F1 %.2f)", baseAcc, ftAcc, ftF1)
	if ftAcc <= baseAcc {
		t.Errorf("fine-tuning did not improve accuracy: %.2f -> %.2f", baseAcc, ftAcc)
	}
	if ftF1 < 0.6 {
		t.Errorf("ambiguity detection F1 = %.2f, want >= 0.6", ftF1)
	}
}

// tablesOf extracts the relation tables of datasets.
func tablesOf(ds []*data.Dataset) []*relation.Table {
	out := make([]*relation.Table, 0, len(ds))
	for _, d := range ds {
		out = append(out, d.Table)
	}
	return out
}

func TestFineTuneValidation(t *testing.T) {
	if _, err := FineTune(nil, nil, FineTuneOptions{}); err == nil {
		t.Error("expected error for empty corpus")
	}
	bad := []Example{{Question: "q", Dataset: "Nope", GoldSQL: None, Ambiguous: true}}
	if _, err := FineTune(bad, nil, FineTuneOptions{}); err == nil {
		t.Error("expected error for unregistered table")
	}
}

func TestContainsWord(t *testing.T) {
	cases := []struct {
		text, w string
		want    bool
	}{
		{"carter from la", "carter", true},
		{"carter from la", "art", false},
		{"id 17 here", "17", true},
		{"id 170 here", "17", false},
		{"x", "x", true},
	}
	for _, tc := range cases {
		if got := containsWord(tc.text, tc.w); got != tc.want {
			t.Errorf("containsWord(%q, %q) = %v", tc.text, tc.w, got)
		}
	}
}
