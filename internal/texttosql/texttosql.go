// Package texttosql reproduces the text-to-SQL application of the Table VII
// experiment: WikiSQL-style natural-language questions over a single table,
// answered with a SQL query — or with "none" when the question is data
// ambiguous and no single query is warranted.
//
// The baseline stands in for the T5 model pre-trained on WikiSQL: a
// sketch-based slot filler that matches question tokens to schema columns
// and cell values and ALWAYS emits a query. Fine-tuning on PYTHIA examples
// adds the abstain head: a trained classifier over question tokens plus
// parse-derived features (column-match strength, WHERE-clause key
// coverage) that generalize across tables.
package texttosql

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/profiling"
	"repro/internal/pythia"
	"repro/internal/relation"
	"repro/internal/serialize"
	"repro/internal/sqlengine"
	"repro/internal/vocab"
)

// None is the output for questions the system judges unanswerable due to
// data ambiguity.
const None = "none"

// Example is one (question, table, gold SQL) instance; ambiguous questions
// have GoldSQL == None.
type Example struct {
	Question  string
	Dataset   string
	GoldSQL   string
	Ambiguous bool
}

// ---------------------------------------------------------------------------
// The sketch-based parser (baseline model).
// ---------------------------------------------------------------------------

// parseResult carries the parser's decision plus the features the abstain
// head consumes.
type parseResult struct {
	sql          string
	colScore     float64 // best column match strength [0, 1]
	colTie       bool    // two columns tied for best
	keyCoverage  bool    // WHERE clauses cover a full candidate key
	whereClauses int
}

// Parser fills the WikiSQL sketch SELECT col FROM t WHERE k='v' AND ...
type Parser struct {
	profiles map[string]*profiling.Profile
}

// NewParser returns a parser with an empty profile cache.
func NewParser() *Parser {
	return &Parser{profiles: map[string]*profiling.Profile{}}
}

func (p *Parser) profile(t *relation.Table) *profiling.Profile {
	if prof, ok := p.profiles[t.Name]; ok {
		return prof
	}
	prof, err := profiling.ProfileTable(t)
	if err != nil {
		prof = &profiling.Profile{Table: t}
	}
	p.profiles[t.Name] = prof
	return prof
}

// Parse produces the best-guess SQL for a question over a table.
func (p *Parser) Parse(question string, t *relation.Table) parseResult {
	low := strings.ToLower(question)
	qTokens := map[string]bool{}
	for _, w := range strings.Fields(low) {
		for _, tk := range vocab.Tokens(strings.Trim(w, ".,?!'\"()")) {
			qTokens[tk] = true
		}
	}
	prof := p.profile(t)

	// Target column: highest token-coverage score among non-key columns.
	inPK := map[string]bool{}
	for _, k := range prof.PrimaryKey {
		inPK[strings.ToLower(k)] = true
	}
	var best, second float64
	bestCol := ""
	for _, col := range t.Schema {
		if inPK[strings.ToLower(col.Name)] {
			continue
		}
		toks := vocab.Tokens(col.Name)
		if len(toks) == 0 {
			continue
		}
		hit := 0
		for _, tk := range toks {
			if qTokens[tk] {
				hit++
			}
		}
		score := float64(hit) / float64(len(toks))
		if score > best {
			second = best
			best, bestCol = score, col.Name
		} else if score > second {
			second = score
		}
	}

	// WHERE clauses over the primary-key columns: string subjects match at
	// word boundaries; numeric subjects bind the first question number that
	// exists in the column (wrong when value and subject collide — a real
	// failure mode of sketch fillers).
	var clauses []string
	covered := map[string]bool{}
	questionNumbers := numberTokens(low)
	for _, keyCol := range prof.PrimaryKey {
		ci := t.Schema.Index(keyCol)
		if ci < 0 {
			continue
		}
		col := t.Schema[ci]
		if col.Kind == relation.KindString {
			seen := map[string]bool{}
			for _, row := range t.Rows {
				v := row[ci].Format()
				if v == "" || seen[v] {
					continue
				}
				seen[v] = true
				if containsWord(low, strings.ToLower(v)) {
					clauses = append(clauses, Clause(col, v))
					covered[strings.ToLower(col.Name)] = true
					break
				}
			}
			continue
		}
		colVals := map[string]bool{}
		for _, row := range t.Rows {
			colVals[row[ci].Format()] = true
		}
		for _, num := range questionNumbers {
			if colVals[num] {
				clauses = append(clauses, Clause(col, num))
				covered[strings.ToLower(col.Name)] = true
				break
			}
		}
	}
	sort.Strings(clauses)

	keyCovered := len(prof.PrimaryKey) > 0
	for _, k := range prof.PrimaryKey {
		if !covered[strings.ToLower(k)] {
			keyCovered = false
			break
		}
	}

	res := parseResult{
		colScore:     best,
		colTie:       best > 0 && best == second,
		keyCoverage:  keyCovered,
		whereClauses: len(clauses),
	}
	if bestCol == "" {
		// The model still emits its best sketch: project the first non-key
		// column (baseline never abstains).
		for _, col := range t.Schema {
			if !inPK[strings.ToLower(col.Name)] {
				bestCol = col.Name
				break
			}
		}
	}
	res.sql = BuildSQL(t.Name, bestCol, clauses)
	return res
}

// Clause renders one canonical WHERE clause: numeric values unquoted,
// strings quoted.
func Clause(col relation.Column, value string) string {
	if col.Kind.Numeric() {
		return fmt.Sprintf("%s = %s", sqlengine.QuoteIdent(col.Name), value)
	}
	return fmt.Sprintf("%s = %s", sqlengine.QuoteIdent(col.Name), sqlengine.QuoteString(value))
}

// numberTokens extracts the numeric word tokens of a question, in order.
func numberTokens(low string) []string {
	var out []string
	for _, w := range strings.Fields(low) {
		w = strings.Trim(w, ".,?!'\"()")
		if w == "" {
			continue
		}
		if _, err := relation.ParseValue(w, relation.KindFloat); err == nil {
			out = append(out, w)
		}
	}
	return out
}

// BuildSQL renders the canonical sketch query.
func BuildSQL(table, column string, clauses []string) string {
	var b strings.Builder
	b.WriteString("SELECT ")
	b.WriteString(sqlengine.QuoteIdent(column))
	b.WriteString(" FROM ")
	b.WriteString(sqlengine.QuoteIdent(table))
	if len(clauses) > 0 {
		b.WriteString(" WHERE ")
		b.WriteString(strings.Join(clauses, " AND "))
	}
	return b.String()
}

// containsWord reports whether w occurs in text at word boundaries.
func containsWord(text, w string) bool {
	idx := 0
	for {
		i := strings.Index(text[idx:], w)
		if i < 0 {
			return false
		}
		i += idx
		before := i == 0 || !isWordByte(text[i-1])
		j := i + len(w)
		after := j >= len(text) || !isWordByte(text[j])
		if before && after {
			return true
		}
		idx = i + 1
	}
}

func isWordByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9'
}

// ---------------------------------------------------------------------------
// The system: parser + optional abstain head.
// ---------------------------------------------------------------------------

// System answers questions over registered tables.
type System struct {
	parser   *Parser
	tables   map[string]*relation.Table
	detector *nn.TextClassifier // nil = baseline (never abstains)
	tok      *serialize.Tokenizer
}

// Baseline returns the never-abstaining pre-trained system.
func Baseline(tables ...*relation.Table) *System {
	s := &System{parser: NewParser(), tables: map[string]*relation.Table{}}
	for _, t := range tables {
		s.tables[t.Name] = t
	}
	return s
}

// Register adds a table the system can be queried about.
func (s *System) Register(t *relation.Table) { s.tables[t.Name] = t }

// encode builds the detector input: raw question tokens plus the
// subject-coverage feature. The model reads the table alongside the
// question (as WikiSQL models do), so whether the WHERE values cover a full
// key is observable input; the attribute-side ambiguity signature (label
// words with no matching column) must be LEARNED from examples, which is
// what gives the Table VII sweep its training-size effect.
func (s *System) encode(question string, res parseResult, fit bool) []int {
	var tokens []string
	for _, w := range strings.Fields(strings.ToLower(question)) {
		tokens = append(tokens, serialize.CellTokens(strings.Trim(w, ".,?!'\"()"), 3)...)
	}
	if res.keyCoverage {
		tokens = append(tokens, "<key_full>")
	} else if res.whereClauses > 0 {
		tokens = append(tokens, "<key_partial>")
	} else {
		tokens = append(tokens, "<key_none>")
	}
	if fit {
		s.tok.Fit(tokens)
	}
	return s.tok.Encode(tokens)
}

// Predict answers a question about a registered table: the gold-format SQL
// string, or None when the abstain head flags ambiguity.
func (s *System) Predict(question, dataset string) string {
	t, ok := s.tables[dataset]
	if !ok {
		return None
	}
	res := s.parser.Parse(question, t)
	if s.detector != nil {
		ids := s.encode(question, res, false)
		if class, _ := s.detector.Predict(ids, nil); class == 1 {
			return None
		}
	}
	return res.sql
}

// FineTuneOptions controls training of the abstain head.
type FineTuneOptions struct {
	Epochs int
	Seed   int64
}

// FineTune trains the abstain head on a PYTHIA-generated corpus. The
// tables referenced by the training examples must be registered on the
// returned system before predicting (test tables are added by the caller).
func FineTune(train []Example, tables []*relation.Table, opts FineTuneOptions) (*System, error) {
	if len(train) == 0 {
		return nil, fmt.Errorf("texttosql: empty training corpus")
	}
	if opts.Epochs <= 0 {
		opts.Epochs = 6
	}
	s := Baseline(tables...)
	s.tok = serialize.NewTokenizer()
	type enc struct {
		res parseResult
		ex  Example
	}
	encs := make([]enc, 0, len(train))
	for _, ex := range train {
		t, ok := s.tables[ex.Dataset]
		if !ok {
			return nil, fmt.Errorf("texttosql: training example references unregistered table %q", ex.Dataset)
		}
		res := s.parser.Parse(ex.Question, t)
		s.encode(ex.Question, res, true)
		encs = append(encs, enc{res: res, ex: ex})
	}
	s.tok.Freeze()
	examples := make([]nn.Example, 0, len(encs))
	for _, e := range encs {
		class := 0
		if e.ex.Ambiguous {
			class = 1
		}
		examples = append(examples, nn.Example{IDs: s.encode(e.ex.Question, e.res, false), Class: class})
	}
	s.detector = nn.NewTextClassifier(nn.Config{
		VocabSize: s.tok.Size(),
		Classes:   2,
		Seed:      opts.Seed,
	})
	s.detector.Train(examples, nn.TrainOptions{Epochs: opts.Epochs, LR: 3e-3, Seed: opts.Seed + 1})
	return s, nil
}

// ---------------------------------------------------------------------------
// Corpus generation.
// ---------------------------------------------------------------------------

// GenerateCorpus builds (question, gold SQL) examples over the named
// datasets using both PYTHIA generation modes, split between ambiguous
// (gold None) and non-ambiguous questions.
func GenerateCorpus(datasets []string, seed int64) ([]Example, error) {
	var out []Example
	for _, name := range datasets {
		d, err := data.Load(name)
		if err != nil {
			return nil, fmt.Errorf("texttosql: %w", err)
		}
		var pairs []model.Pair
		for _, gt := range d.GroundTruthPairs() {
			pairs = append(pairs, model.Pair{AttrA: gt.AttrA, AttrB: gt.AttrB, Label: gt.Labels[0]})
		}
		md, err := pythia.WithPairs(d.Table, pairs)
		if err != nil {
			return nil, fmt.Errorf("texttosql: %w", err)
		}
		g := pythia.NewGenerator(d.Table, md)

		// Ambiguous questions from both modes (gold = none).
		for _, mode := range []pythia.Mode{pythia.TextGeneration, pythia.Templates} {
			exs, err := g.Generate(pythia.Options{Mode: mode, Seed: seed, Questions: true, MaxPerQuery: 40})
			if err != nil {
				return nil, fmt.Errorf("texttosql: %w", err)
			}
			for _, ex := range exs {
				out = append(out, Example{Question: ex.Text, Dataset: name, GoldSQL: None, Ambiguous: true})
			}
		}

		// Non-ambiguous questions with their gold sketch SQL.
		plain, err := g.NotAmbiguous(pythia.Options{Seed: seed + 1, Questions: true, MaxPerQuery: 40})
		if err != nil {
			return nil, fmt.Errorf("texttosql: %w", err)
		}
		for _, ex := range plain {
			out = append(out, Example{Question: ex.Text, Dataset: name, GoldSQL: goldSQL(d.Table, ex)})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("texttosql: no examples generated")
	}
	return out, nil
}

// Balance subsamples the ambiguous side of a corpus to the given
// ambiguous-per-plain ratio (the paper's generated dataset is split between
// queries with and without ambiguities). Subsampling is deterministic.
func Balance(exs []Example, ambPerPlain float64, rng *rand.Rand) []Example {
	var amb, plain []Example
	for _, ex := range exs {
		if ex.Ambiguous {
			amb = append(amb, ex)
		} else {
			plain = append(plain, ex)
		}
	}
	maxAmb := int(float64(len(plain)) * ambPerPlain)
	if len(amb) > maxAmb && maxAmb > 0 {
		stride := float64(len(amb)) / float64(maxAmb)
		kept := make([]Example, 0, maxAmb)
		for i := 0; i < maxAmb; i++ {
			kept = append(kept, amb[int(float64(i)*stride)])
		}
		amb = kept
	}
	out := append(plain, amb...)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// goldSQL renders the reference query for a non-ambiguous example.
func goldSQL(t *relation.Table, ex pythia.Example) string {
	var clauses []string
	for i, k := range ex.KeyAttrs {
		col, _ := t.Schema.Column(k)
		clauses = append(clauses, Clause(col, ex.Evidence[i].Value))
	}
	sort.Strings(clauses)
	return BuildSQL(t.Name, ex.Attrs[0], clauses)
}
