package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/kb"
	"repro/internal/model"
	"repro/internal/pythia"
	"repro/internal/relation"
)

// newTestServer hosts a Server over httptest with the fixture uploaded.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	uploadFixture(t, ts.URL, "Basket")
	return s, ts
}

func uploadFixture(t *testing.T, base, name string) {
	t.Helper()
	resp, err := http.Post(base+"/tables?name="+name, "text/csv", bytes.NewReader(FixtureCSV))
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("upload: status %d: %s", resp.StatusCode, body)
	}
}

// TestUploadGenerateRoundTrip is the serving-layer determinism contract:
// the NDJSON a generate request streams is byte-identical to encoding the
// same generation run directly — the HTTP path adds transport, never
// content. The direct run uses a fresh single-tenant engine at one worker;
// the server decides its own worker grant, which must not matter.
func TestUploadGenerateRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, err := http.Post(ts.URL+"/tables/Basket/generate", "application/json",
		strings.NewReader(`{"workers":4,"questions":true,"seed":7}`))
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("generate: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	if resp.Header.Get("X-Pythia-Workers") == "" {
		t.Error("missing X-Pythia-Workers header")
	}
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read stream: %v", err)
	}

	tab, err := relation.ReadCSV("Basket", bytes.NewReader(FixtureCSV))
	if err != nil {
		t.Fatalf("read fixture: %v", err)
	}
	md, err := pythia.Discover(tab, model.NewULabel(kb.BuildDefault()))
	if err != nil {
		t.Fatalf("discover: %v", err)
	}
	var want bytes.Buffer
	enc := json.NewEncoder(&want)
	err = pythia.NewGenerator(tab, md).GenerateStream(
		pythia.Options{Mode: pythia.Templates, Questions: true, Seed: 7, Workers: 1},
		pythia.SinkFunc(func(ex pythia.Example) error { return enc.Encode(ex) }),
	)
	if err != nil {
		t.Fatalf("direct generate: %v", err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("HTTP stream differs from direct generation: %d vs %d bytes", len(got), want.Len())
	}
	if bytes.Count(got, []byte("\n")) == 0 {
		t.Fatal("stream carried no examples")
	}
}

// TestGenerateOptionsValidation covers the request surface's error paths.
func TestGenerateOptionsValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		path, body string
		status     int
	}{
		{"/tables/Basket/generate", `{"mode":"warp"}`, http.StatusBadRequest},
		{"/tables/Basket/generate", `{"structures":["diagonal"]}`, http.StatusBadRequest},
		{"/tables/Basket/generate", `{"match":"sideways"}`, http.StatusBadRequest},
		{"/tables/Nope/generate", `{}`, http.StatusNotFound},
		{"/tables/Nope/profile", "", http.StatusNotFound},
	}
	for _, tc := range cases {
		var resp *http.Response
		var err error
		if strings.HasSuffix(tc.path, "/generate") {
			resp, err = http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
		} else {
			resp, err = http.Get(ts.URL + tc.path)
		}
		if err != nil {
			t.Fatalf("%s: %v", tc.path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s body=%s: status %d, want %d", tc.path, tc.body, resp.StatusCode, tc.status)
		}
	}
	resp, err := http.Post(ts.URL+"/tables?name=bad name!", "text/csv", bytes.NewReader(FixtureCSV))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid table name accepted: status %d", resp.StatusCode)
	}
}

// holdGenerate starts a generate request that parks server-side on the
// testHold hook right after its headers are flushed, returning once those
// headers arrive (the request is then provably admitted and holding).
func holdGenerate(t *testing.T, ctx context.Context, base string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		base+"/tables/Basket/generate?x-test-hold=1", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	return http.DefaultClient.Do(req)
}

// TestBackpressure429 pins the admission contract: with MaxInflight=1, a
// second concurrent generate request is refused immediately with 429 and a
// Retry-After hint, and admission reopens once the first stream finishes.
func TestBackpressure429(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInflight: 1})
	s.testHold = make(chan struct{})

	resp1, err := holdGenerate(t, context.Background(), ts.URL)
	if err != nil {
		t.Fatalf("first request: %v", err)
	}
	defer resp1.Body.Close()
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first request: status %d", resp1.StatusCode)
	}

	resp2, err := http.Post(ts.URL+"/tables/Basket/generate", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatalf("second request: %v", err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: status %d, want 429", resp2.StatusCode)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	close(s.testHold)
	if _, err := io.Copy(io.Discard, resp1.Body); err != nil {
		t.Fatalf("drain first stream: %v", err)
	}

	resp3, err := http.Post(ts.URL+"/tables/Basket/generate", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatalf("third request: %v", err)
	}
	defer resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("admission did not reopen after drain: status %d", resp3.StatusCode)
	}
	if _, err := io.Copy(io.Discard, resp3.Body); err != nil {
		t.Fatal(err)
	}
}

// TestDisconnectFreesWorkerBudget pins the cleanup contract: when a
// streaming client goes away, its worker grant returns to the global
// budget so the capacity is usable by the next request.
func TestDisconnectFreesWorkerBudget(t *testing.T) {
	s, ts := newTestServer(t, Config{BudgetSlots: 2})
	s.testHold = make(chan struct{}) // never closed: the stream only ends by disconnect

	ctx, cancel := context.WithCancel(context.Background())
	resp, err := holdGenerate(t, ctx, ts.URL)
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	defer resp.Body.Close()
	if got := s.Budget().InUse(); got == 0 {
		t.Fatal("holding stream shows no budget in use")
	}

	cancel() // client disconnects mid-stream
	deadline := time.Now().Add(5 * time.Second)
	for s.Budget().InUse() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("budget still in use %ds after disconnect: %d slots", 5, s.Budget().InUse())
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp2, err := http.Post(ts.URL+"/tables/Basket/generate", "application/json", strings.NewReader(`{"workers":2}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-disconnect request: status %d", resp2.StatusCode)
	}
	if got := resp2.Header.Get("X-Pythia-Workers"); got != "2" {
		t.Errorf("post-disconnect grant = %s, want the full budget (2)", got)
	}
	if _, err := io.Copy(io.Discard, resp2.Body); err != nil {
		t.Fatal(err)
	}
}

// TestShutdownDrainsActiveStream runs a real http.Server and verifies the
// graceful path: Shutdown waits for an in-flight NDJSON stream, the client
// receives the complete stream, and Shutdown then returns cleanly.
func TestShutdownDrainsActiveStream(t *testing.T) {
	s := NewServer(Config{})
	s.testHold = make(chan struct{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	uploadFixture(t, base, "Basket")

	resp, err := holdGenerate(t, context.Background(), base)
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	defer resp.Body.Close()

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()
	select {
	case err := <-shutdownErr:
		t.Fatalf("Shutdown returned while a stream was in flight: %v", err)
	case <-time.After(100 * time.Millisecond):
	}

	close(s.testHold) // let the held stream run to completion
	var lines int
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) > 0 {
			lines++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream truncated by shutdown: %v", err)
	}
	if lines == 0 {
		t.Fatal("drained stream carried no examples")
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Fatalf("Serve: %v", err)
	}
}

// TestUploadReplaceSwapsTenant re-uploads a name mid-service: the second
// upload reports replaced=true and subsequent reads see the new table.
func TestUploadReplaceSwapsTenant(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	small := "A,B\n1,2\n3,4\n"
	resp, err := http.Post(ts.URL+"/tables?name=Basket", "text/csv", strings.NewReader(small))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-upload: status %d, want 200 (replace)", resp.StatusCode)
	}
	var got struct {
		Rows     int  `json:"rows"`
		Replaced bool `json:"replaced"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !got.Replaced || got.Rows != 2 {
		t.Fatalf("re-upload = %+v, want replaced with 2 rows", got)
	}
	pr, err := http.Get(ts.URL + "/tables/Basket/profile")
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Body.Close()
	var prof struct {
		Rows int `json:"rows"`
	}
	if err := json.NewDecoder(pr.Body).Decode(&prof); err != nil {
		t.Fatal(err)
	}
	if prof.Rows != 2 {
		t.Fatalf("profile after replace shows %d rows, want 2", prof.Rows)
	}
}

// TestHammerSmoke runs the bundled load client against an in-process
// server and sanity-checks the measured report.
func TestHammerSmoke(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	res, err := Hammer(context.Background(), HammerConfig{
		BaseURL: ts.URL, Table: "Basket", Requests: 6, Concurrency: 3, Workers: 2,
	})
	if err != nil {
		t.Fatalf("Hammer: %v", err)
	}
	if res.Failures != 0 {
		t.Fatalf("hammer failures = %d: %+v", res.Failures, res)
	}
	if res.Examples == 0 || res.ExamplesPerSec <= 0 {
		t.Fatalf("hammer measured no throughput: %+v", res)
	}
	if res.P50MS <= 0 || res.P99MS < res.P50MS {
		t.Fatalf("implausible percentiles: p50=%v p99=%v", res.P50MS, res.P99MS)
	}
	if _, err := json.Marshal(res); err != nil {
		t.Fatalf("report not serializable: %v", err)
	}
}
