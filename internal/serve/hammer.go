package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// HammerConfig drives the bundled load client against a running server.
type HammerConfig struct {
	// BaseURL of the target server, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Table is the tenant to hammer (must already be uploaded).
	Table string
	// Requests is the total number of generate requests to issue.
	Requests int
	// Concurrency is the number of in-flight requests the client sustains.
	Concurrency int
	// Workers is the per-request worker ask forwarded in the body.
	Workers int
	// Body overrides the generate request (zero value = defaults + Workers).
	Body GenerateRequest
}

// HammerResult is the measured outcome, shaped for BENCH_9.json.
type HammerResult struct {
	Requests       int     `json:"requests"`
	Concurrency    int     `json:"concurrency"`
	Failures       int     `json:"failures"`
	Rejected429    int     `json:"rejected_429"`
	Examples       int64   `json:"examples"`
	ElapsedMS      float64 `json:"elapsed_ms"`
	P50MS          float64 `json:"p50_ms"`
	P99MS          float64 `json:"p99_ms"`
	ExamplesPerSec float64 `json:"examples_per_sec"`
	RequestsPerSec float64 `json:"requests_per_sec"`
}

// Hammer runs the load shape in cfg: Concurrency goroutines pull request
// numbers from a shared counter until Requests have been issued, each
// streaming a full generate response and counting its NDJSON lines. A
// request's latency is first byte to last (the stream must drain fully).
// 429 responses are counted separately from hard failures — under a
// deliberately tight admission limit they are the backpressure working,
// not an error.
func Hammer(ctx context.Context, cfg HammerConfig) (*HammerResult, error) {
	if cfg.Requests <= 0 {
		cfg.Requests = 32
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 4
	}
	body := cfg.Body
	if cfg.Workers > 0 {
		body.Workers = cfg.Workers
	}
	payload, err := json.Marshal(body)
	if err != nil {
		return nil, fmt.Errorf("hammer: marshal body: %w", err)
	}
	url := fmt.Sprintf("%s/tables/%s/generate", cfg.BaseURL, cfg.Table)

	var (
		next      atomic.Int64
		examples  atomic.Int64
		failures  atomic.Int64
		rejected  atomic.Int64
		mu        sync.Mutex
		latencies []time.Duration
		wg        sync.WaitGroup
	)
	start := time.Now()
	for g := 0; g < cfg.Concurrency; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if n := next.Add(1); n > int64(cfg.Requests) {
					return
				}
				t0 := time.Now()
				lines, status, err := oneRequest(ctx, url, payload)
				d := time.Since(t0)
				switch {
				case err != nil:
					failures.Add(1)
				case status == http.StatusTooManyRequests:
					rejected.Add(1)
				case status != http.StatusOK:
					failures.Add(1)
				default:
					examples.Add(lines)
					mu.Lock()
					latencies = append(latencies, d)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &HammerResult{
		Requests:    cfg.Requests,
		Concurrency: cfg.Concurrency,
		Failures:    int(failures.Load()),
		Rejected429: int(rejected.Load()),
		Examples:    examples.Load(),
		ElapsedMS:   float64(elapsed.Microseconds()) / 1e3,
	}
	if elapsed > 0 {
		res.ExamplesPerSec = float64(res.Examples) / elapsed.Seconds()
		res.RequestsPerSec = float64(len(latencies)) / elapsed.Seconds()
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	res.P50MS = percentileMS(latencies, 0.50)
	res.P99MS = percentileMS(latencies, 0.99)
	if res.Failures > 0 && res.Examples == 0 {
		return res, fmt.Errorf("hammer: all %d requests failed", res.Failures)
	}
	return res, nil
}

// oneRequest issues one generate call and drains the stream, returning the
// number of NDJSON lines it carried.
func oneRequest(ctx context.Context, url string, payload []byte) (lines int64, status int, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		return 0, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer func() {
		//lint:ignore err-ignored the body is fully drained; close errors carry no information here
		_ = resp.Body.Close()
	}()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) > 0 {
			lines++
		}
	}
	if err := sc.Err(); err != nil {
		return lines, resp.StatusCode, err
	}
	return lines, resp.StatusCode, nil
}

// percentileMS reads the q-th percentile from sorted latencies, in
// fractional milliseconds (nearest-rank).
func percentileMS(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx].Microseconds()) / 1e3
}
