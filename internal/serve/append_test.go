package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/kb"
	"repro/internal/model"
	"repro/internal/pythia"
	"repro/internal/relation"
)

const fixtureDelta = `Player,Team,FieldGoalPct,ThreePointPct,FreeThrowPct,Points,Fouls,Appearances
Nowak,BER,44,38,71,12,2,9
Okafor,LAG,51,29,80,18,4,11
`

func postCSV(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "text/csv", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp, b
}

// TestAppendRoundTrip drives the incremental ingest path end to end: a CSV
// delta extends the uploaded fixture, the profile reflects the new rows,
// and a generate stream over the appended tenant is byte-identical to
// generating over a from-scratch table holding the same rows — the
// incremental profile and metadata update must be invisible to clients.
func TestAppendRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, body := postCSV(t, ts.URL+"/tables/Basket/append", fixtureDelta)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append: status %d: %s", resp.StatusCode, body)
	}
	var ack struct {
		Appended int `json:"appended"`
		Rows     int `json:"rows"`
	}
	if err := json.Unmarshal(body, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Appended != 2 {
		t.Fatalf("appended = %d, want 2", ack.Appended)
	}

	pr, err := http.Get(ts.URL + "/tables/Basket/profile")
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Body.Close()
	var prof struct {
		Rows int `json:"rows"`
	}
	if err := json.NewDecoder(pr.Body).Decode(&prof); err != nil {
		t.Fatal(err)
	}
	if prof.Rows != ack.Rows {
		t.Fatalf("profile shows %d rows, append acked %d", prof.Rows, ack.Rows)
	}

	// Generate over the appended tenant vs a from-scratch single-tenant run
	// over the same full table.
	gresp, err := http.Post(ts.URL+"/tables/Basket/generate", "application/json",
		strings.NewReader(`{"workers":2,"questions":true,"seed":7}`))
	if err != nil {
		t.Fatal(err)
	}
	defer gresp.Body.Close()
	if gresp.StatusCode != http.StatusOK {
		t.Fatalf("generate after append: status %d", gresp.StatusCode)
	}
	got, err := io.ReadAll(gresp.Body)
	if err != nil {
		t.Fatal(err)
	}

	full := string(FixtureCSV) + strings.SplitN(fixtureDelta, "\n", 2)[1]
	tab, err := relation.ReadCSVString("Basket", full)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != ack.Rows {
		t.Fatalf("reference table has %d rows, want %d", tab.NumRows(), ack.Rows)
	}
	md, err := pythia.Discover(tab, model.NewULabel(kb.BuildDefault()))
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	enc := json.NewEncoder(&want)
	err = pythia.NewGenerator(tab, md).GenerateStream(
		pythia.Options{Mode: pythia.Templates, Questions: true, Seed: 7, Workers: 1},
		pythia.SinkFunc(func(ex pythia.Example) error { return enc.Encode(ex) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("generate after append differs from from-scratch generation: %d vs %d bytes", len(got), want.Len())
	}
}

// TestAppendValidation covers the append endpoint's client-error surface.
func TestAppendValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	cases := []struct {
		name, url, body string
		status          int
	}{
		{"unknown table", ts.URL + "/tables/NoSuch/append", fixtureDelta, http.StatusNotFound},
		{"wrong column name", ts.URL + "/tables/Basket/append",
			"Player,Team,WrongCol,ThreePointPct,FreeThrowPct,Points,Fouls,Appearances\nA,B,1,2,3,4,5,6\n", http.StatusBadRequest},
		{"wrong arity", ts.URL + "/tables/Basket/append", "Player,Team\nA,B\n", http.StatusBadRequest},
		{"bad cell", ts.URL + "/tables/Basket/append",
			"Player,Team,FieldGoalPct,ThreePointPct,FreeThrowPct,Points,Fouls,Appearances\nA,B,notanint,2,3,4,5,6\n", http.StatusBadRequest},
		{"empty body", ts.URL + "/tables/Basket/append", "", http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, body := postCSV(t, c.url, c.body)
		if resp.StatusCode != c.status {
			t.Errorf("%s: status %d, want %d (%s)", c.name, resp.StatusCode, c.status, body)
		}
	}

	// A header-only delta is a well-formed no-op.
	resp, body := postCSV(t, ts.URL+"/tables/Basket/append",
		"Player,Team,FieldGoalPct,ThreePointPct,FreeThrowPct,Points,Fouls,Appearances\n")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("header-only delta: status %d: %s", resp.StatusCode, body)
	}
	var ack struct {
		Appended int `json:"appended"`
	}
	if err := json.Unmarshal(body, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Appended != 0 {
		t.Fatalf("header-only delta appended %d rows, want 0", ack.Appended)
	}
}

// TestIngestRaceKeepsEngineAndTenantInSync hammers one table name with
// concurrent re-uploads and appends. Under -race it proves the two ingest
// paths are data-race free against each other; on any build it asserts the
// invariant ingestMu exists for: the engine's registered table and the
// installed tenant's table are always the same object, so an append can
// never extend a registration its tenant state does not describe.
func TestIngestRaceKeepsEngineAndTenantInSync(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	altered := string(FixtureCSV) + "Zed,ALT,40,30,70,10,1,5\n"

	post := func(url, body string) error {
		resp, err := http.Post(url, "text/csv", strings.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		//lint:ignore err-ignored draining the body only keeps the connection reusable
		_, _ = io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
			return fmt.Errorf("POST %s: status %d", url, resp.StatusCode)
		}
		return nil
	}

	const workers, perWorker = 3, 8
	var wg sync.WaitGroup
	errs := make(chan error, 2*workers)
	for w := 0; w < workers; w++ {
		wg.Add(2)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				body := string(FixtureCSV)
				if (w+i)%2 == 1 {
					body = altered
				}
				if err := post(ts.URL+"/tables?name=Basket", body); err != nil {
					errs <- err
					return
				}
			}
		}(w)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if err := post(ts.URL+"/tables/Basket/append", fixtureDelta); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	tn, ok := s.lookup("Basket")
	if !ok {
		t.Fatal("tenant missing after the run")
	}
	cur, ok := s.engine.Table("Basket")
	if !ok {
		t.Fatal("engine registration missing after the run")
	}
	if cur != tn.table {
		t.Fatalf("engine serves a different table than the tenant (%d vs %d rows)",
			cur.NumRows(), tn.table.NumRows())
	}
	if tn.inc.Profile().Table != tn.table {
		t.Fatal("incremental profile does not cover the installed tenant's table")
	}
}

// TestUploadUnchangedShortCircuit pins the re-upload fast path: a byte-
// identical re-POST acknowledges without rebuilding the tenant, a changed
// body replaces it, and an append clears the hash so the original body no
// longer short-circuits against a diverged tenant.
func TestUploadUnchangedShortCircuit(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	before, ok := s.lookup("Basket")
	if !ok {
		t.Fatal("fixture tenant missing")
	}

	resp, body := postCSV(t, ts.URL+"/tables?name=Basket", string(FixtureCSV))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("identical re-upload: status %d: %s", resp.StatusCode, body)
	}
	var ack struct {
		Unchanged bool `json:"unchanged"`
		Rows      int  `json:"rows"`
	}
	if err := json.Unmarshal(body, &ack); err != nil {
		t.Fatal(err)
	}
	if !ack.Unchanged {
		t.Fatalf("identical re-upload = %s, want unchanged ack", body)
	}
	after, _ := s.lookup("Basket")
	if after != before {
		t.Fatal("identical re-upload rebuilt the tenant; the short-circuit must keep it")
	}

	// A changed body must NOT short-circuit.
	resp, body = postCSV(t, ts.URL+"/tables?name=Basket", "A,B\n1,2\n")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("changed re-upload: status %d: %s", resp.StatusCode, body)
	}
	var rep struct {
		Replaced  bool `json:"replaced"`
		Unchanged bool `json:"unchanged"`
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Unchanged || !rep.Replaced {
		t.Fatalf("changed re-upload = %s, want a replacement", body)
	}

	// After an append the tenant's rows no longer match any upload body, so
	// even the byte-identical body must rebuild.
	uploadFixture(t, ts.URL, "Basket2")
	resp, body = postCSV(t, ts.URL+"/tables/Basket2/append", fixtureDelta)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append: status %d: %s", resp.StatusCode, body)
	}
	resp, body = postCSV(t, ts.URL+"/tables?name=Basket2", string(FixtureCSV))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-upload after append: status %d: %s", resp.StatusCode, body)
	}
	var rep2 struct {
		Replaced  bool `json:"replaced"`
		Unchanged bool `json:"unchanged"`
		Rows      int  `json:"rows"`
	}
	if err := json.Unmarshal(body, &rep2); err != nil {
		t.Fatal(err)
	}
	if rep2.Unchanged || !rep2.Replaced {
		t.Fatalf("re-upload after append = %s, want a full replacement (hash must be cleared by append)", body)
	}
}
