package serve

import _ "embed"

// FixtureCSV is the bundled Basket table (30 rows, composite key
// Player+Team, three percentage columns sharing one ambiguity label) —
// the upload body used by the hammer's self-hosted mode, the CI smoke
// test, and the endpoint test suite.
//
//go:embed testdata/basket.csv
var FixtureCSV []byte
