// Package serve is the multi-tenant HTTP serving layer over the pythia
// pipeline: upload a CSV table once, profile it and discover its ambiguity
// metadata, then stream generated training examples on demand — the
// "millions of examples in seconds" template path behind a request/response
// surface instead of a batch CLI.
//
// All tenants share one sqlengine.Engine; its snapshot registry makes a
// registration (an upload) safe while other tenants' generate streams are
// mid-query, and one plan/index/vector cache pool serves every request.
// Generation concurrency is governed twice: an admission limit caps the
// number of simultaneously streaming requests (excess gets 429), and a
// process-wide parallel.Budget hands each admitted request a worker grant —
// at least one slot, at most its ask — so the sum of all streams' worker
// pools never oversubscribes the machine.
package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/csv"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"

	"repro/internal/kb"
	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/profiling"
	"repro/internal/pythia"
	"repro/internal/relation"
	"repro/internal/sqlengine"
	"repro/internal/telemetry"
)

// met holds the serving layer's metric handles, visible in /debug/vars and
// -metrics snapshots next to the engine and pipeline counters.
var met = struct {
	uploads          *telemetry.Counter
	uploadUnchanged  *telemetry.Counter
	appends          *telemetry.Counter
	generateRequests *telemetry.Counter
	rejected         *telemetry.Counter
	disconnects      *telemetry.Counter
	streamErrors     *telemetry.Counter
	examples         *telemetry.Counter
	activeStreams    *telemetry.Gauge
	requestNS        *telemetry.Histogram
}{
	uploads:          telemetry.Default().Counter("serve.uploads"),
	uploadUnchanged:  telemetry.Default().Counter("serve.upload_unchanged"),
	appends:          telemetry.Default().Counter("serve.appends"),
	generateRequests: telemetry.Default().Counter("serve.generate_requests"),
	rejected:         telemetry.Default().Counter("serve.rejected_429"),
	disconnects:      telemetry.Default().Counter("serve.client_disconnects"),
	streamErrors:     telemetry.Default().Counter("serve.stream_errors"),
	examples:         telemetry.Default().Counter("serve.examples_streamed"),
	activeStreams:    telemetry.Default().Gauge("serve.active_streams"),
	requestNS:        telemetry.Default().LatencyHistogram("serve.request_ns"),
}

// Config sizes a Server.
type Config struct {
	// MaxInflight caps concurrently streaming generate requests; excess
	// requests are answered 429 immediately (0 = DefaultMaxInflight).
	MaxInflight int
	// BudgetSlots is the process-wide worker budget generate requests draw
	// from (0 = GOMAXPROCS).
	BudgetSlots int
	// MaxUploadBytes bounds a table upload body (0 = DefaultMaxUploadBytes).
	MaxUploadBytes int64
	// Predictor discovers ambiguity metadata for uploaded tables
	// (nil = the training-free ulabel method over the default KB).
	Predictor model.Predictor
}

// Defaults for Config zero values.
const (
	DefaultMaxInflight    = 64
	DefaultMaxUploadBytes = 32 << 20
)

// tenant is one uploaded table with its derived artifacts. Tenants are
// immutable once built; re-uploading a name or appending rows swaps the
// whole tenant. The incremental profiler is the one mutable exception:
// it is only touched (folded forward, or replaced after a failed append)
// under Server.ingestMu, never by readers.
type tenant struct {
	name    string // the registered (original-case) table name
	table   *relation.Table
	profile *profiling.Profile
	md      *pythia.Metadata
	gen     *pythia.Generator
	hash    string // sha256 of the upload body; "" once appends diverge from it
	inc     *profiling.Incremental
}

// Server is the multi-tenant serving state. Create with NewServer, mount
// via Handler, shut down by draining the enclosing http.Server — handlers
// hold no state that outlives their request.
type Server struct {
	cfg      Config
	engine   *sqlengine.Engine
	budget   *parallel.Budget
	pred     model.Predictor
	inflight chan struct{} // generate admission tokens

	mu      sync.RWMutex
	tenants map[string]*tenant // keyed by lowercased name

	// ingestMu serializes the mutating ingest paths (upload replace,
	// append) end to end — from the upload's unchanged-hash check and
	// engine registration through the tenant-map install, and from the
	// append's engine/tenant consistency check through its publish. Each
	// path rebuilds a tenant from the previous one and must observe the
	// engine and the tenant map describing the same table, so the whole
	// read-derive-publish sequence is one critical section. Read paths
	// never take it.
	ingestMu sync.Mutex

	// testHold, when non-nil, makes a generate request carrying the
	// x-test-hold=1 query parameter block after its headers are flushed
	// until the channel is closed or the client disconnects — leverage for
	// the backpressure and shutdown-drain test suites only.
	testHold chan struct{}
}

// NewServer builds a serving instance: one shared engine, one worker
// budget, an empty tenant set.
func NewServer(cfg Config) *Server {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = DefaultMaxInflight
	}
	if cfg.MaxUploadBytes <= 0 {
		cfg.MaxUploadBytes = DefaultMaxUploadBytes
	}
	pred := cfg.Predictor
	if pred == nil {
		pred = model.NewULabel(kb.BuildDefault())
	}
	return &Server{
		cfg:      cfg,
		engine:   sqlengine.NewEngine(),
		budget:   parallel.NewBudget(cfg.BudgetSlots),
		pred:     pred,
		inflight: make(chan struct{}, cfg.MaxInflight),
		tenants:  map[string]*tenant{},
	}
}

// Budget exposes the worker budget (for tests and the hammer harness).
func (s *Server) Budget() *parallel.Budget { return s.budget }

// Handler returns the route mux:
//
//	POST /tables?name=N                CSV body -> profile, discover, register
//	GET  /tables                       list tenants
//	GET  /tables/{name}/profile        profiling result
//	GET  /tables/{name}/metadata       discovered ambiguity metadata
//	POST /tables/{name}/append         CSV delta -> incremental re-profile
//	POST /tables/{name}/generate       stream examples as NDJSON
//	GET  /healthz                      liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /tables", s.handleUpload)
	mux.HandleFunc("POST /tables/{name}/append", s.handleAppend)
	mux.HandleFunc("GET /tables", s.handleList)
	mux.HandleFunc("GET /tables/{name}/profile", s.handleProfile)
	mux.HandleFunc("GET /tables/{name}/metadata", s.handleMetadata)
	mux.HandleFunc("POST /tables/{name}/generate", s.handleGenerate)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// writeJSON writes one JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	//lint:ignore err-ignored the response is already committed; an encode error here has no channel back to the client
	_ = json.NewEncoder(w).Encode(v)
}

// writeError writes the uniform error body.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// validName gates uploaded table names: they appear verbatim inside
// generated SQL, so keep them identifier-shaped.
func validName(name string) bool {
	if name == "" || len(name) > 64 {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// lookup resolves a tenant by case-insensitive name.
func (s *Server) lookup(name string) (*tenant, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	tn, ok := s.tenants[strings.ToLower(name)]
	return tn, ok
}

// handleUpload ingests one CSV table: parse, profile, discover metadata,
// register with the shared engine (safe during live queries — the snapshot
// registry publishes the new table atomically) and install the tenant.
//
// Re-uploading a byte-identical body is a no-op short-circuit: the body's
// content hash is compared against the installed tenant's before any
// parsing or profiling, so clients that re-push their table on every
// deploy don't pay (or cause) a full re-discovery.
//
// Everything from the unchanged-hash check to the tenant install runs
// under ingestMu: the hash comparison is ordered with appends (which clear
// the hash when they install), and the engine registration inside
// NewGeneratorWith lands in the same critical section as the tenant-map
// install, so an append holding ingestMu always sees the engine and the
// tenant map describing the same table.
func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	tm := met.requestNS.Time()
	defer tm.Stop()
	name := r.URL.Query().Get("name")
	if !validName(name) {
		writeError(w, http.StatusBadRequest, "missing or invalid ?name= (want 1-64 chars of [A-Za-z0-9_-])")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	sum := sha256.Sum256(body)
	hash := hex.EncodeToString(sum[:])
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	if prev, ok := s.lookup(name); ok && prev.hash != "" && prev.hash == hash {
		met.uploadUnchanged.Inc()
		writeJSON(w, http.StatusOK, map[string]any{
			"name":      prev.name,
			"rows":      prev.table.NumRows(),
			"columns":   prev.table.NumCols(),
			"unchanged": true,
		})
		return
	}
	t, err := relation.ReadCSV(name, bytes.NewReader(body))
	if err != nil {
		writeError(w, http.StatusBadRequest, "parse csv: %v", err)
		return
	}
	inc, err := profiling.NewIncremental(t)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "profile: %v", err)
		return
	}
	md, err := pythia.DiscoverWithProfile(t, inc.Profile(), s.pred)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "discover metadata: %v", err)
		return
	}
	tn := &tenant{
		name:    name,
		table:   t,
		profile: md.Profile,
		md:      md,
		gen:     pythia.NewGeneratorWith(s.engine, t, md),
		hash:    hash,
		inc:     inc,
	}
	s.mu.Lock()
	replaced := s.tenants[strings.ToLower(name)] != nil
	s.tenants[strings.ToLower(name)] = tn
	s.mu.Unlock()
	met.uploads.Inc()

	status := http.StatusCreated
	if replaced {
		status = http.StatusOK
	}
	writeJSON(w, status, map[string]any{
		"name":            name,
		"rows":            t.NumRows(),
		"columns":         t.NumCols(),
		"primary_key":     md.Profile.PrimaryKey,
		"ambiguous_pairs": len(md.Pairs),
		"replaced":        replaced,
	})
}

// handleAppend ingests a CSV delta for an existing tenant: the rows extend
// the registered table copy-on-write (live generate streams keep their
// snapshot), the profile is updated from the delta alone, and only
// attribute pairs whose type classes changed are re-predicted — the
// incremental path of the profiling pipeline. The delta's header must
// match the tenant's schema (same columns, same order, case-insensitive);
// cells parse against the existing column kinds, so an append can never
// silently re-type a column.
func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	tm := met.requestNS.Time()
	defer tm.Stop()
	tn, ok := s.lookup(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown table %q", r.PathValue("name"))
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	rows, err := parseDelta(tn.table, body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "parse csv delta: %v", err)
		return
	}
	if len(rows) == 0 {
		writeJSON(w, http.StatusOK, map[string]any{
			"name": tn.name, "appended": 0, "rows": tn.table.NumRows(),
		})
		return
	}

	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	// Re-resolve under the ingest lock: a concurrent upload may have
	// swapped the tenant while the delta was parsing.
	tn, ok = s.lookup(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown table %q", r.PathValue("name"))
		return
	}
	// ingestMu makes the engine registration and the tenant map move
	// together; verify the invariant before extending so a violation
	// surfaces as an error instead of a corrupted incremental profile.
	if cur, reg := s.engine.Table(tn.name); !reg || cur != tn.table {
		writeError(w, http.StatusConflict, "table %q: engine registration does not match the installed tenant", tn.name)
		return
	}
	// Compute-then-publish: extend the table and fold the profile and
	// metadata off the engine first, so a failure in any derivation step
	// leaves the engine serving exactly what the tenant describes.
	oldRows := tn.table.NumRows()
	ext, err := tn.table.Extend(rows)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "append: %v", err)
		return
	}
	prof, err := tn.inc.Append(ext, oldRows)
	if err != nil {
		// Incremental.Append validates before it mutates, so tn.inc still
		// covers tn.table and the tenant stays fully consistent.
		writeError(w, http.StatusInternalServerError, "incremental profile: %v", err)
		return
	}
	md, err := pythia.UpdateMetadata(tn.md, s.pred, ext, tn.inc, oldRows)
	if err != nil {
		// tn.inc absorbed the extension that is now being abandoned;
		// rebuild it over the still-published table before reporting.
		s.restoreIncremental(tn)
		writeError(w, http.StatusInternalServerError, "update metadata: %v", err)
		return
	}
	if err := s.engine.Swap(tn.table, ext); err != nil {
		s.restoreIncremental(tn)
		writeError(w, http.StatusInternalServerError, "publish append: %v", err)
		return
	}
	next := &tenant{
		name:    tn.name,
		table:   ext,
		profile: prof,
		md:      md,
		gen:     pythia.NewGeneratorOver(s.engine, ext, md),
		inc:     tn.inc,
		// hash stays empty: the tenant no longer matches any upload body.
	}
	s.mu.Lock()
	s.tenants[strings.ToLower(tn.name)] = next
	s.mu.Unlock()
	met.appends.Inc()

	writeJSON(w, http.StatusOK, map[string]any{
		"name":            next.name,
		"appended":        len(rows),
		"rows":            ext.NumRows(),
		"primary_key":     prof.PrimaryKey,
		"ambiguous_pairs": len(md.Pairs),
	})
}

// restoreIncremental rebuilds a tenant's incremental profiler from its
// still-published table after a failed append left the profiler covering
// an extension that was never installed. Must be called with ingestMu
// held. If even the rebuild fails (it profiled this exact table once
// already, so it should not), the profiler stays out of sync and later
// appends fail their row-count guard — degraded, never corrupt.
func (s *Server) restoreIncremental(tn *tenant) {
	if inc, err := profiling.NewIncremental(tn.table); err == nil {
		tn.inc = inc
	}
}

// parseDelta reads an appended CSV fragment against an existing schema:
// the header must repeat the table's columns in order, and every cell is
// parsed with the column's established kind (empty cells become NULL).
func parseDelta(t *relation.Table, r io.Reader) ([]relation.Row, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	records, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("empty input (want a header row matching the table schema)")
	}
	header := records[0]
	if len(header) != t.NumCols() {
		return nil, fmt.Errorf("header arity %d != table arity %d", len(header), t.NumCols())
	}
	for c, h := range header {
		if !strings.EqualFold(strings.TrimSpace(h), t.Schema[c].Name) {
			return nil, fmt.Errorf("header column %d is %q, table has %q", c, strings.TrimSpace(h), t.Schema[c].Name)
		}
	}
	rows := make([]relation.Row, 0, len(records)-1)
	for i, rec := range records[1:] {
		if len(rec) != t.NumCols() {
			return nil, fmt.Errorf("row %d arity %d != table arity %d", i+1, len(rec), t.NumCols())
		}
		row := make(relation.Row, len(rec))
		for c, cell := range rec {
			v, err := relation.ParseValue(cell, t.Schema[c].Kind)
			if err != nil {
				return nil, fmt.Errorf("row %d: %w", i+1, err)
			}
			row[c] = v
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// handleList returns the tenant inventory, sorted by name.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	out := make([]map[string]any, 0, len(s.tenants))
	for _, tn := range s.tenants {
		out = append(out, map[string]any{
			"name":            tn.name,
			"rows":            tn.table.NumRows(),
			"columns":         tn.table.NumCols(),
			"ambiguous_pairs": len(tn.md.Pairs),
		})
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i]["name"].(string) < out[j]["name"].(string) })
	writeJSON(w, http.StatusOK, map[string]any{"tables": out})
}

// handleProfile serves the profiling result of one tenant.
func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	tn, ok := s.lookup(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown table %q", r.PathValue("name"))
		return
	}
	cols := make([]map[string]any, len(tn.profile.Columns))
	for i, st := range tn.profile.Columns {
		cols[i] = map[string]any{
			"name":     st.Name,
			"kind":     st.Kind.String(),
			"distinct": st.Distinct,
			"nulls":    st.Nulls,
			"min":      st.Min.Format(),
			"max":      st.Max.Format(),
			"unique":   st.Unique,
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"table":          tn.name,
		"rows":           tn.table.NumRows(),
		"primary_key":    tn.profile.PrimaryKey,
		"candidate_keys": tn.profile.CandidateKeys,
		"columns":        cols,
	})
}

// handleMetadata serves the discovered ambiguity metadata of one tenant.
func (s *Server) handleMetadata(w http.ResponseWriter, r *http.Request) {
	tn, ok := s.lookup(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown table %q", r.PathValue("name"))
		return
	}
	pairs := make([]map[string]any, len(tn.md.Pairs))
	for i, p := range tn.md.Pairs {
		pairs[i] = map[string]any{
			"attr_a":        p.AttrA,
			"attr_b":        p.AttrB,
			"label":         p.Label,
			"score":         p.Score,
			"correlation":   p.Correlation,
			"value_overlap": p.ValueOverlap,
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"table":       tn.name,
		"primary_key": tn.profile.PrimaryKey,
		"pairs":       pairs,
	})
}

// GenerateRequest is the JSON body of POST /tables/{name}/generate. An
// empty body generates with the defaults (template mode, all structures,
// both match types, seed 1).
type GenerateRequest struct {
	// Mode is "templates" (default — the high-throughput path) or "textgen".
	Mode string `json:"mode"`
	// Structures limits generation ("attribute", "row", "full"); empty = all.
	Structures []string `json:"structures"`
	// Match is "both" (default), "contradictory" or "uniform".
	Match string `json:"match"`
	// Questions interleaves interrogative forms with statements.
	Questions bool `json:"questions"`
	// Max caps evidence rows per a-query (0 = mode default: 4 in textgen,
	// unlimited in templates).
	Max int `json:"max"`
	// Seed drives phrasing variety (0 = 1, matching the CLI default).
	Seed int64 `json:"seed"`
	// Workers is the requested worker-pool width; the grant is clamped to
	// what the process-wide budget has free (at least 1) and echoed in the
	// X-Pythia-Workers response header. 0 asks for one slot.
	Workers int `json:"workers"`
}

// options translates the request into pythia.Options (without Workers,
// which the budget decides).
func (g GenerateRequest) options() (pythia.Options, error) {
	opts := pythia.Options{Questions: g.Questions, MaxPerQuery: g.Max, Seed: g.Seed}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	switch g.Mode {
	case "", "templates":
		opts.Mode = pythia.Templates
	case "textgen":
		opts.Mode = pythia.TextGeneration
	default:
		return opts, fmt.Errorf("unknown mode %q (want templates or textgen)", g.Mode)
	}
	for _, st := range g.Structures {
		switch strings.TrimSpace(st) {
		case "attribute":
			opts.Structures = append(opts.Structures, pythia.AttributeAmb)
		case "row":
			opts.Structures = append(opts.Structures, pythia.RowAmb)
		case "full":
			opts.Structures = append(opts.Structures, pythia.FullAmb)
		case "":
		default:
			return opts, fmt.Errorf("unknown structure %q", st)
		}
	}
	switch g.Match {
	case "", "both":
	case "contradictory":
		opts.Matches = []pythia.Match{pythia.Contradictory}
	case "uniform":
		opts.Matches = []pythia.Match{pythia.Uniform}
	default:
		return opts, fmt.Errorf("unknown match %q (want both, contradictory or uniform)", g.Match)
	}
	return opts, nil
}

// handleGenerate streams examples as NDJSON — one json.Encoder line per
// example, byte-identical to `pythia generate -json` for the same options —
// flushing after every line so consumers see examples as the merge frontier
// releases them. Admission past MaxInflight is refused with 429; the worker
// pool width is whatever the global budget grants. A client disconnect
// aborts generation at the next emit and returns the grant to the budget.
func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	met.generateRequests.Inc()
	select {
	case s.inflight <- struct{}{}:
		defer func() { <-s.inflight }()
	default:
		met.rejected.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "server at its concurrent stream limit (%d)", cap(s.inflight))
		return
	}
	tm := met.requestNS.Time()
	defer tm.Stop()

	tn, ok := s.lookup(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown table %q", r.PathValue("name"))
		return
	}
	var req GenerateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, "parse request: %v", err)
		return
	}
	opts, err := req.options()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	ctx := r.Context()
	granted, release, err := s.budget.Acquire(ctx, req.Workers)
	if err != nil {
		met.disconnects.Inc()
		return // client gave up while queued for a slot
	}
	defer release()
	opts.Workers = granted

	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Pythia-Workers", fmt.Sprint(granted))
	w.WriteHeader(http.StatusOK)
	if flusher != nil {
		flusher.Flush()
	}
	if s.testHold != nil && r.URL.Query().Get("x-test-hold") == "1" {
		select {
		case <-s.testHold:
		case <-ctx.Done():
			met.disconnects.Inc()
			return
		}
	}

	met.activeStreams.Add(1)
	defer met.activeStreams.Add(-1)
	enc := json.NewEncoder(w)
	streamed := 0
	err = tn.gen.GenerateStream(opts, pythia.SinkFunc(func(ex pythia.Example) error {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		if err := enc.Encode(ex); err != nil {
			return err
		}
		streamed++
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}))
	met.examples.Add(int64(streamed))
	if err != nil {
		// The stream is already committed; all we can do is classify.
		if ctx.Err() != nil {
			met.disconnects.Inc()
		} else {
			met.streamErrors.Inc()
		}
	}
}
