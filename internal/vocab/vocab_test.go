package vocab

import (
	"reflect"
	"strings"
	"testing"
)

func TestDefaultVocabularyIsWellFormed(t *testing.T) {
	v := Default()
	if len(v.Concepts) < 100 {
		t.Fatalf("vocabulary has %d concepts, want >= 100", len(v.Concepts))
	}
	seen := map[string]bool{}
	for _, c := range v.Concepts {
		if c.ID == "" || c.Domain == "" {
			t.Errorf("concept %+v missing ID or Domain", c)
		}
		if seen[c.ID] {
			t.Errorf("duplicate concept ID %q", c.ID)
		}
		seen[c.ID] = true
		if len(c.Surface) == 0 {
			t.Errorf("concept %s has no surface forms", c.ID)
		}
		switch c.Values.Kind {
		case "int", "float":
			if c.Values.Min >= c.Values.Max {
				t.Errorf("concept %s has empty numeric range [%g, %g]", c.ID, c.Values.Min, c.Values.Max)
			}
		case "string":
			if len(c.Values.Categories) == 0 {
				t.Errorf("concept %s has string kind but no categories", c.ID)
			}
		case "date":
		default:
			t.Errorf("concept %s has unknown value kind %q", c.ID, c.Values.Kind)
		}
	}
}

func TestLookupSurfaceForms(t *testing.T) {
	v := Default()
	cases := map[string]string{
		"FG%":            "field_goal_pct",
		"fg_pct":         "field_goal_pct",
		"FieldGoalPct":   "field_goal_pct",
		"3FG%":           "three_point_pct",
		"sepal_length":   "sepal_length",
		"SepalLength":    "sepal_length",
		"capital-gain":   "capital_gain",
		"native_country": "country",
		"gender":         "sex",
	}
	for header, wantID := range cases {
		cs := v.Lookup(header)
		found := false
		for _, c := range cs {
			if c.ID == wantID {
				found = true
			}
		}
		if !found {
			got := make([]string, len(cs))
			for i, c := range cs {
				got[i] = c.ID
			}
			t.Errorf("Lookup(%q) = %v, want to include %s", header, got, wantID)
		}
	}
	if cs := v.Lookup("A12"); len(cs) != 0 {
		t.Errorf("Lookup(A12) = %v, want empty (paper's meaningless-header case)", cs)
	}
}

func TestSharedLabelsGroundTruth(t *testing.T) {
	v := Default()
	get := func(id string) Concept {
		c, ok := v.ByID(id)
		if !ok {
			t.Fatalf("missing concept %s", id)
		}
		return c
	}
	// The paper's flagship pair.
	fg, tp := get("field_goal_pct"), get("three_point_pct")
	labels := SharedLabels(fg, tp)
	if !containsStr(labels, "shooting") {
		t.Errorf("SharedLabels(FG%%, 3FG%%) = %v, want to include shooting", labels)
	}
	// CoronaCheck's pair.
	fr, mr := get("total_fatality_rate"), get("total_mortality_rate")
	if labels := SharedLabels(fr, mr); !containsStr(labels, "death rate") {
		t.Errorf("SharedLabels(fatality, mortality) = %v, want death rate", labels)
	}
	// Adults: capital-gain and salary share "income".
	cg, sal := get("capital_gain"), get("salary")
	if labels := SharedLabels(cg, sal); !containsStr(labels, "income") {
		t.Errorf("SharedLabels(capital_gain, salary) = %v, want income", labels)
	}
	// capital-loss shares "capital" with capital-gain but not "income".
	cl := get("capital_loss")
	labels = SharedLabels(cg, cl)
	if !containsStr(labels, "capital") || containsStr(labels, "income") {
		t.Errorf("SharedLabels(capital_gain, capital_loss) = %v", labels)
	}
	// Unrelated attributes share nothing.
	if labels := SharedLabels(get("fouls"), get("humidity")); len(labels) != 0 {
		t.Errorf("SharedLabels(fouls, humidity) = %v, want none", labels)
	}
	// Self pairs are never ambiguous.
	if labels := SharedLabels(fg, fg); labels != nil {
		t.Errorf("SharedLabels(x, x) = %v, want nil", labels)
	}
}

func TestNormalize(t *testing.T) {
	cases := map[string]string{
		"FG%":              "fg pct",
		"3FG%":             "3fg pct",
		"SepalLength":      "sepal length",
		"sepal_length":     "sepal length",
		"hours-per-week":   "hours per week",
		"  total  deaths ": "total deaths",
		"capital.gain":     "capital gain",
		"mpg/city":         "mpg city",
	}
	for in, want := range cases {
		if got := Normalize(in); got != want {
			t.Errorf("Normalize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTokens(t *testing.T) {
	got := Tokens("Sepal_LengthCm")
	want := []string{"sepal", "length", "cm"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokens = %v, want %v", got, want)
	}
}

func TestDomains(t *testing.T) {
	v := Default()
	ds := v.Domains()
	if len(ds) < 10 {
		t.Errorf("domains = %v, want >= 10", ds)
	}
	for _, d := range ds {
		if len(v.Domain(d)) == 0 {
			t.Errorf("domain %s has no concepts", d)
		}
	}
	// Sorted.
	for i := 1; i < len(ds); i++ {
		if ds[i-1] >= ds[i] {
			t.Errorf("domains not sorted: %v", ds)
		}
	}
}

func TestAmbiguityGroundTruthDensity(t *testing.T) {
	// Sanity check that the vocabulary provides a healthy number of
	// ambiguous pairs overall (the paper's test corpus has 252).
	v := Default()
	count := 0
	for i := range v.Concepts {
		for j := i + 1; j < len(v.Concepts); j++ {
			if len(SharedLabels(v.Concepts[i], v.Concepts[j])) > 0 {
				count++
			}
		}
	}
	if count < 150 {
		t.Errorf("ambiguous concept pairs = %d, want >= 150", count)
	}
	total := len(v.Concepts) * (len(v.Concepts) - 1) / 2
	if count*2 > total {
		t.Errorf("ambiguous pairs = %d of %d: ground truth too dense to be realistic", count, total)
	}
}

func containsStr(xs []string, want string) bool {
	for _, x := range xs {
		if strings.EqualFold(x, want) {
			return true
		}
	}
	return false
}
