// Package vocab defines the concept vocabulary behind PYTHIA's simulated
// external world. It is the single source of truth from which three other
// substrates are derived:
//
//   - internal/kb builds its ConceptNet-like graph and Wikipedia-title index
//     from concept aliases (with noise injected at build time);
//   - internal/corpus samples synthetic WebTables schemas and cell values
//     from concept surface forms and value generators;
//   - internal/userstudy derives the ground-truth ambiguity annotations for
//     the evaluation tables from the curated Labels sets.
//
// Two concepts are *ambiguous* with label L exactly when L appears in both
// concepts' Labels (the judgment the paper crowdsources to 10 annotators).
// The knowledge graph intentionally covers only part of that ground truth
// and adds generic aliases shared by unrelated concepts, so the annotator
// functions of internal/annotate are noisy in both directions — which is
// the premise of the paper's weak-supervision setup.
package vocab

import (
	"sort"
	"strings"
)

// ValueClass says how cell values for a concept are generated and, for the
// data-task model, what distributional signal they carry.
type ValueClass struct {
	Kind string // "int", "float", "string", "date"
	// Numeric range for int/float kinds.
	Min, Max float64
	// Categorical vocabulary for the string kind. Concepts that share a
	// label often share (part of) this vocabulary, which is the value
	// signal the Data model can exploit.
	Categories []string
	// Decimals is the number of fractional digits for float rendering.
	Decimals int
}

// Concept is one entry of the vocabulary.
type Concept struct {
	ID      string   // canonical snake_case identifier
	Domain  string   // topical group, used to sample coherent schemas
	Surface []string // header surface forms seen in web tables (first is primary)

	// Alias sets, mirrored (with noise) into the knowledge graph.
	Synonyms    []string
	RelatedTo   []string
	DerivedFrom []string
	IsA         []string
	Wiki        []string

	// Labels is the curated ambiguity ground truth: abstract words a human
	// would accept as describing this attribute.
	Labels []string

	Values ValueClass
}

// Vocabulary is the full concept set with lookup indexes.
type Vocabulary struct {
	Concepts []Concept
	byID     map[string]int
	bySurf   map[string][]int // normalized surface form -> concept indexes
	domains  []string
	byDomain map[string][]int
}

// Build indexes a concept list into a Vocabulary.
func Build(concepts []Concept) *Vocabulary {
	v := &Vocabulary{
		Concepts: concepts,
		byID:     make(map[string]int, len(concepts)),
		bySurf:   make(map[string][]int),
		byDomain: make(map[string][]int),
	}
	for i, c := range concepts {
		v.byID[c.ID] = i
		for _, s := range c.Surface {
			n := Normalize(s)
			v.bySurf[n] = append(v.bySurf[n], i)
		}
		// The canonical ID is always a recognizable surface form.
		n := Normalize(c.ID)
		if !containsInt(v.bySurf[n], i) {
			v.bySurf[n] = append(v.bySurf[n], i)
		}
		v.byDomain[c.Domain] = append(v.byDomain[c.Domain], i)
	}
	for d := range v.byDomain {
		v.domains = append(v.domains, d)
	}
	sort.Strings(v.domains)
	return v
}

func containsInt(xs []int, x int) bool {
	for _, y := range xs {
		if y == x {
			return true
		}
	}
	return false
}

// Default returns the built-in vocabulary (see concepts.go).
func Default() *Vocabulary { return defaultVocab }

var defaultVocab = Build(builtinConcepts)

// ByID returns the concept with the given canonical ID.
func (v *Vocabulary) ByID(id string) (Concept, bool) {
	i, ok := v.byID[id]
	if !ok {
		return Concept{}, false
	}
	return v.Concepts[i], true
}

// Lookup resolves a column header to the concepts it may denote, by
// normalized surface form. Unknown headers resolve to nothing, like the
// paper's "A12" example.
func (v *Vocabulary) Lookup(header string) []Concept {
	idxs := v.bySurf[Normalize(header)]
	out := make([]Concept, len(idxs))
	for i, j := range idxs {
		out[i] = v.Concepts[j]
	}
	return out
}

// Domains returns the sorted list of topical domains.
func (v *Vocabulary) Domains() []string { return v.domains }

// Domain returns the concepts of one domain.
func (v *Vocabulary) Domain(name string) []Concept {
	idxs := v.byDomain[name]
	out := make([]Concept, len(idxs))
	for i, j := range idxs {
		out[i] = v.Concepts[j]
	}
	return out
}

// SharedLabels returns the curated ambiguity labels common to two concepts
// (the ground truth for the pair), or nil when the pair is not ambiguous.
func SharedLabels(a, b Concept) []string {
	if a.ID == b.ID {
		return nil // an attribute is not ambiguous with itself
	}
	set := make(map[string]bool, len(a.Labels))
	for _, l := range a.Labels {
		set[l] = true
	}
	var out []string
	for _, l := range b.Labels {
		if set[l] {
			out = append(out, l)
		}
	}
	sort.Strings(out)
	return out
}

// Normalize canonicalizes a header or word for lookup: lowercase, split
// camelCase, strip decorations (%, _, -, .), collapse spaces. "FG%" and
// "fg_pct" normalize to comparable forms via the surface lists.
func Normalize(s string) string {
	var b strings.Builder
	prevLower := false
	for _, r := range s {
		switch {
		case r >= 'A' && r <= 'Z':
			if prevLower {
				b.WriteByte(' ')
			}
			b.WriteRune(r - 'A' + 'a')
			prevLower = false
		case r == '_' || r == '-' || r == '.' || r == '/' || r == ' ':
			b.WriteByte(' ')
			prevLower = false
		case r == '%':
			b.WriteString(" pct")
			prevLower = false
		default:
			b.WriteRune(r)
			prevLower = r >= 'a' && r <= 'z'
		}
	}
	return strings.Join(strings.Fields(b.String()), " ")
}

// Tokens splits a header into normalized word tokens ("sepal_length" ->
// ["sepal", "length"]). The metadata model consumes these.
func Tokens(s string) []string {
	return strings.Fields(Normalize(s))
}
