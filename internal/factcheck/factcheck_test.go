package factcheck

import (
	"strings"
	"testing"

	"repro/internal/metrics"
)

func testCorpus(t *testing.T, nei, sup, ref int, ambFrac float64, seed int64) []Claim {
	t.Helper()
	claims, err := GenerateCorpus(CorpusOptions{
		NEI: nei, Supports: sup, Refutes: ref,
		AmbiguousNEIFraction: ambFrac, Seed: seed,
	})
	if err != nil {
		t.Fatalf("GenerateCorpus: %v", err)
	}
	return claims
}

func countByLabel(claims []Claim) map[string]int {
	out := map[string]int{}
	for _, c := range claims {
		out[c.Label]++
	}
	return out
}

func TestGenerateCorpusCounts(t *testing.T) {
	claims := testCorpus(t, 60, 100, 120, 0.5, 1)
	counts := countByLabel(claims)
	if counts[NEI] != 60 || counts[Supports] != 100 || counts[Refutes] != 120 {
		t.Errorf("counts = %v", counts)
	}
	amb := 0
	for _, c := range claims {
		if c.Ambiguous {
			if c.Label != NEI {
				t.Errorf("ambiguous claim labeled %s", c.Label)
			}
			amb++
		}
	}
	if amb != 30 {
		t.Errorf("ambiguous NEI = %d, want 30", amb)
	}
}

func TestRefutedClaimsContradictEvidence(t *testing.T) {
	claims := testCorpus(t, 0, 0, 50, 0, 2)
	for _, c := range claims {
		if c.Label != Refutes {
			continue
		}
		// The claimed value must no longer appear as a whole word unless it
		// also happens to be a subject value.
		measure := c.Evidence[len(c.Evidence)-1]
		isSubjectValue := false
		for _, cell := range c.Evidence[:len(c.Evidence)-1] {
			if cell.Value == measure.Value {
				isSubjectValue = true
			}
		}
		if isSubjectValue {
			continue
		}
		for _, w := range strings.Fields(c.Text) {
			if strings.Trim(w, ".,?!'\"()") == measure.Value {
				t.Errorf("refuted claim still states the true value: %q vs %v", c.Text, measure)
			}
		}
	}
}

func TestTrainAndClassify(t *testing.T) {
	train := testCorpus(t, 160, 200, 200, 0.0, 3)
	checker, err := Train(train, TrainOptions{Epochs: 5, Seed: 1})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	test := testCorpus(t, 40, 50, 50, 0.0, 99)
	conf := metrics.NewConfusion(NEI, Supports, Refutes)
	for _, c := range test {
		conf.Add(c.Label, checker.Classify(c))
	}
	if acc := conf.Accuracy(); acc < 0.55 {
		t.Errorf("accuracy = %.2f, want >= 0.55 on non-ambiguous corpus\n%s", acc, conf)
	}
}

func TestPythiaExamplesImproveAmbiguousNEI(t *testing.T) {
	// The Table V mechanism in miniature: base training has NO ambiguous
	// NEI, test has 50%. Adding PYTHIA ambiguous claims must raise NEI
	// recall.
	base := testCorpus(t, 160, 200, 200, 0.0, 3)
	test := testCorpus(t, 60, 60, 60, 0.5, 77)

	baseline, err := Train(base, TrainOptions{Epochs: 5, Seed: 1})
	if err != nil {
		t.Fatalf("Train baseline: %v", err)
	}
	// P_t: ambiguous NEI claims from different seeds/tables.
	ambCorpus := testCorpus(t, 120, 0, 0, 1.0, 55)
	augmented, err := Train(append(append([]Claim{}, base...), ambCorpus...), TrainOptions{Epochs: 5, Seed: 1})
	if err != nil {
		t.Fatalf("Train augmented: %v", err)
	}

	neiRecall := func(c *Checker) float64 {
		tp, fn := 0, 0
		for _, cl := range test {
			if cl.Label != NEI || !cl.Ambiguous {
				continue
			}
			if c.Classify(cl) == NEI {
				tp++
			} else {
				fn++
			}
		}
		if tp+fn == 0 {
			return 0
		}
		return float64(tp) / float64(tp+fn)
	}
	b, a := neiRecall(baseline), neiRecall(augmented)
	t.Logf("ambiguous-NEI recall: baseline %.2f -> +pythia %.2f", b, a)
	if a <= b {
		t.Errorf("PYTHIA examples did not raise ambiguous-NEI recall (%.2f -> %.2f)", b, a)
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, TrainOptions{}); err == nil {
		t.Error("expected error for empty corpus")
	}
}

func TestCorpusDeterministic(t *testing.T) {
	a := testCorpus(t, 20, 20, 20, 0.5, 5)
	b := testCorpus(t, 20, 20, 20, 0.5, 5)
	for i := range a {
		if a[i].Text != b[i].Text || a[i].Label != b[i].Label {
			t.Fatal("corpus not deterministic")
		}
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
