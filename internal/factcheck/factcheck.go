// Package factcheck implements the Feverous-style computational fact
// checking application of the Table V experiment: claims with table-cell
// evidence, classified as SUPPORTS / REFUTES / NEI (not enough info).
//
// The baseline system of the paper is a fine-tuned transformer; ours is a
// TextClassifier over (claim [SEP] linearized evidence) with segment tags.
// The corpus generator reproduces the property the experiment hinges on:
// NEI covers both missing-evidence claims and data-ambiguous claims, but
// the base training split is starved of the ambiguous kind — which is
// exactly the gap PYTHIA's generated examples fill.
package factcheck

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/data"
	"repro/internal/detrand"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/pythia"
	"repro/internal/serialize"
	"repro/internal/textgen"
)

// Labels of the three-way classification.
const (
	Supports = "SUPPORTS"
	Refutes  = "REFUTES"
	NEI      = "NEI"
)

// Claim is one example: text, its evidence cells, and the gold label.
type Claim struct {
	Text     string
	Evidence []textgen.Cell
	Label    string
	// Ambiguous marks claims whose NEI verdict comes from data ambiguity
	// (diagnostics only; the classifier never sees it).
	Ambiguous bool
}

// classIndex maps labels to model classes.
var classIndex = map[string]int{NEI: 0, Supports: 1, Refutes: 2}
var classNames = []string{NEI, Supports, Refutes}

// Checker is the trainable fact-checking system.
type Checker struct {
	tok *serialize.Tokenizer
	clf *nn.TextClassifier
}

// Agreement feature tokens. A bag-of-embeddings model cannot compare a
// claimed value with the evidence cells the way a cross-attention
// transformer can, so the encoder extracts the comparison explicitly:
//
//	<cell_full> an evidence cell whose attribute AND value appear in the claim
//	<attr_only> the claim mentions the attribute but a different value
//	<val_only>  the value appears without its attribute (subject cells)
//	<cell_none> the cell is untouched by the claim
//	<vneq>      the claim states a value found in no evidence cell
//	<conflict>  the evidence holds conflicting values for one attribute —
//	            the signature of data-ambiguous evidence
const (
	tokCellFull = "<cell_full>"
	tokAttrOnly = "<attr_only>"
	tokValOnly  = "<val_only>"
	tokCellNone = "<cell_none>"
	tokVNeq     = "<vneq>"
	tokConflict = "<conflict>"
)

// encode turns a claim into token IDs: claim words in segment 0, evidence
// cells and agreement features in segment 1.
func encode(tok *serialize.Tokenizer, c Claim, fit bool) ([]int, []int) {
	var tokens []string
	var segs []int
	lowText := strings.ToLower(c.Text)
	for _, w := range strings.Fields(lowText) {
		tokens = append(tokens, strings.Trim(w, ".,?!'\""))
		segs = append(segs, 0)
	}
	tokens = append(tokens, serialize.TokSEP)
	segs = append(segs, 1)
	emit := func(t string) {
		tokens = append(tokens, t)
		segs = append(segs, 1)
	}
	// Cell tokens plus per-cell agreement features.
	valuesInEvidence := map[string]bool{}
	byAttr := map[string]map[string]bool{}
	for _, cell := range c.Evidence {
		for _, t := range serialize.CellTokens(cell.Attr, 3) {
			emit(t)
		}
		for _, t := range serialize.CellTokens(cell.Value, 3) {
			emit(t)
		}
		lv := strings.ToLower(cell.Value)
		valuesInEvidence[lv] = true
		la := strings.ToLower(cell.Attr)
		if byAttr[la] == nil {
			byAttr[la] = map[string]bool{}
		}
		byAttr[la][lv] = true

		attrHit := attrInText(lowText, cell.Attr)
		valHit := lv != "" && strings.Contains(lowText, lv)
		switch {
		case attrHit && valHit:
			emit(tokCellFull)
		case attrHit:
			emit(tokAttrOnly)
		case valHit:
			emit(tokValOnly)
		default:
			emit(tokCellNone)
		}
	}
	// Conflicting values under one attribute: the ambiguity signature.
	for _, vals := range byAttr {
		if len(vals) > 1 {
			emit(tokConflict)
		}
	}
	// Claim-side numbers with no support in the evidence.
	for _, w := range strings.Fields(lowText) {
		w = strings.Trim(w, ".,?!'\"()")
		if w == "" || !isNumeric(w) {
			continue
		}
		if !valuesInEvidence[w] {
			emit(tokVNeq)
		}
	}
	if fit {
		tok.Fit(tokens)
	}
	return tok.Encode(tokens), segs
}

// attrInText reports whether any word of the attribute name occurs in the
// claim text.
func attrInText(lowText, attr string) bool {
	for _, t := range strings.Fields(strings.ToLower(strings.NewReplacer("_", " ", "-", " ", "%", " pct").Replace(attr))) {
		if len(t) >= 2 && strings.Contains(lowText, t) {
			return true
		}
	}
	return false
}

// isNumeric reports whether w parses as a number.
func isNumeric(w string) bool {
	_, err := strconv.ParseFloat(w, 64)
	return err == nil
}

// TrainOptions controls checker training.
type TrainOptions struct {
	Epochs int
	LR     float64
	Seed   int64
}

// Train builds a checker from a training corpus (the paper fine-tunes for 5
// epochs; callers pass Epochs accordingly).
func Train(claims []Claim, opts TrainOptions) (*Checker, error) {
	if len(claims) == 0 {
		return nil, fmt.Errorf("factcheck: empty training corpus")
	}
	if opts.Epochs <= 0 {
		opts.Epochs = 5
	}
	if opts.LR == 0 {
		opts.LR = 3e-3
	}
	c := &Checker{tok: serialize.NewTokenizer()}
	for _, cl := range claims {
		encode(c.tok, cl, true)
	}
	c.tok.Freeze()
	examples := make([]nn.Example, 0, len(claims))
	for _, cl := range claims {
		ids, segs := encode(c.tok, cl, false)
		examples = append(examples, nn.Example{IDs: ids, Segs: segs, Class: classIndex[cl.Label]})
	}
	c.clf = nn.NewTextClassifier(nn.Config{
		VocabSize: c.tok.Size(),
		Classes:   3,
		Seed:      opts.Seed,
	})
	c.clf.Train(examples, nn.TrainOptions{Epochs: opts.Epochs, LR: opts.LR, Seed: opts.Seed + 1})
	return c, nil
}

// Classify returns the predicted label for a claim.
func (c *Checker) Classify(cl Claim) string {
	ids, segs := encode(c.tok, cl, false)
	class, _ := c.clf.Predict(ids, segs)
	return classNames[class]
}

// ---------------------------------------------------------------------------
// Corpus generation.
// ---------------------------------------------------------------------------

// CorpusOptions sizes a generated Feverous-like corpus.
type CorpusOptions struct {
	NEI      int
	Supports int
	Refutes  int
	// AmbiguousNEIFraction is the share of NEI claims that are data
	// ambiguous (the Feverous evaluation data contains them; the base
	// training split mostly does not).
	AmbiguousNEIFraction float64
	Seed                 int64
	// Rand, when non-nil, is the injected generator driving corpus
	// assembly; Seed then only seeds the text generator.
	Rand *rand.Rand
	// Datasets to draw from; nil means a default mix.
	Datasets []string
}

// GenerateCorpus builds a deterministic corpus with the requested class
// counts.
func GenerateCorpus(opts CorpusOptions) ([]Claim, error) {
	if opts.Datasets == nil {
		opts.Datasets = []string{
			"Basket", "Soccer", "Covid", "Cities", "Laptop", "Movies",
			"Adults", "Superstore", "HeartDiseases", "WineQuality",
		}
	}
	rng := detrand.Or(opts.Rand, opts.Seed)
	gen := textgen.NewGenerator(opts.Seed)

	// Collect raw material per dataset: true statements (evidence-backed),
	// and ambiguous examples for the ambiguous share of NEI.
	var trueClaims []Claim
	var ambiguousClaims []Claim
	for _, name := range opts.Datasets {
		d, err := data.Load(name)
		if err != nil {
			return nil, fmt.Errorf("factcheck: %w", err)
		}
		var pairs []model.Pair
		for _, gt := range d.GroundTruthPairs() {
			pairs = append(pairs, model.Pair{AttrA: gt.AttrA, AttrB: gt.AttrB, Label: gt.Labels[0]})
		}
		md, err := pythia.WithPairs(d.Table, pairs)
		if err != nil {
			return nil, fmt.Errorf("factcheck: %w", err)
		}
		pg := pythia.NewGenerator(d.Table, md)
		// Equality claims only: the SUPPORTS label must follow directly
		// from the cited cell.
		plain, err := pg.NotAmbiguous(pythia.Options{Seed: opts.Seed, MaxPerQuery: 25, Ops: []string{"="}})
		if err != nil {
			return nil, fmt.Errorf("factcheck: %w", err)
		}
		for _, ex := range plain {
			trueClaims = append(trueClaims, Claim{Text: ex.Text, Evidence: ex.Evidence, Label: Supports})
		}
		amb, err := pg.Generate(pythia.Options{Seed: opts.Seed + 1, MaxPerQuery: 6})
		if err != nil {
			return nil, fmt.Errorf("factcheck: %w", err)
		}
		for _, ex := range amb {
			if ex.Match == pythia.Contradictory && len(ex.Evidence) > 0 {
				ambiguousClaims = append(ambiguousClaims, Claim{
					Text: ex.Text, Evidence: ex.Evidence, Label: NEI, Ambiguous: true,
				})
			}
		}
	}
	if len(trueClaims) == 0 {
		return nil, fmt.Errorf("factcheck: no supporting claims generated")
	}
	rng.Shuffle(len(trueClaims), func(i, j int) { trueClaims[i], trueClaims[j] = trueClaims[j], trueClaims[i] })
	rng.Shuffle(len(ambiguousClaims), func(i, j int) {
		ambiguousClaims[i], ambiguousClaims[j] = ambiguousClaims[j], ambiguousClaims[i]
	})

	var out []Claim
	take := func(n int, from *[]Claim) []Claim {
		if n > len(*from) {
			n = len(*from)
		}
		got := (*from)[:n]
		*from = (*from)[n:]
		return got
	}

	// SUPPORTS: true claims as generated.
	out = append(out, take(opts.Supports, &trueClaims)...)

	// REFUTES: true claims with the value perturbed so the evidence
	// contradicts the text.
	for _, cl := range take(opts.Refutes, &trueClaims) {
		out = append(out, refute(cl, rng))
	}

	// NEI: a blend of missing-evidence claims and (optionally) ambiguous
	// claims.
	ambN := int(float64(opts.NEI) * opts.AmbiguousNEIFraction)
	out = append(out, take(ambN, &ambiguousClaims)...)
	for _, cl := range take(opts.NEI-ambN, &trueClaims) {
		out = append(out, insufficient(cl, gen, rng))
	}

	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out, nil
}

// refute perturbs the claimed value so the evidence contradicts it. The
// evidence keeps the true cells.
func refute(cl Claim, rng *rand.Rand) Claim {
	out := cl
	out.Label = Refutes
	// The measure is the last evidence cell; perturb its value in the text.
	measure := cl.Evidence[len(cl.Evidence)-1]
	wrong := perturbValue(measure.Value, rng)
	if replaced, ok := replaceLastWord(cl.Text, measure.Value, wrong); ok {
		out.Text = replaced
	} else {
		out.Text = cl.Text + " (" + wrong + ")"
	}
	return out
}

// replaceLastWord substitutes the last whole-word occurrence of old in
// text. Substring hits inside other words (a value "7" inside a subject id
// "17") are not touched.
func replaceLastWord(text, old, new string) (string, bool) {
	words := strings.Fields(text)
	for i := len(words) - 1; i >= 0; i-- {
		trimmed := strings.Trim(words[i], ".,?!'\"()")
		if trimmed == old {
			words[i] = strings.Replace(words[i], old, new, 1)
			return strings.Join(words, " "), true
		}
	}
	return text, false
}

// insufficient strips the informative evidence, leaving only subject cells:
// the classic Feverous NEI condition ("evidence cells do not contain any
// informative value").
func insufficient(cl Claim, gen *textgen.Generator, rng *rand.Rand) Claim {
	out := cl
	out.Label = NEI
	if len(cl.Evidence) > 1 {
		out.Evidence = cl.Evidence[:len(cl.Evidence)-1]
	}
	// Occasionally also ask about an attribute the evidence lacks entirely.
	if rng.Intn(3) == 0 {
		out.Text = cl.Text + " overall"
	}
	_ = gen
	return out
}

// perturbValue returns a clearly different value of the same general shape
// that never contains the original as a substring.
func perturbValue(v string, rng *rand.Rand) string {
	if f, err := strconv.ParseFloat(v, 64); err == nil {
		delta := 1 + rng.Intn(9)
		var out string
		if f == float64(int64(f)) {
			out = strconv.FormatInt(int64(f)+int64(delta), 10)
		} else {
			out = strconv.FormatFloat(f*1.7+float64(delta), 'f', 2, 64)
		}
		if strings.Contains(out, v) {
			out = strconv.FormatFloat(f+float64(delta)+0.5, 'f', 1, 64)
		}
		return out
	}
	pool := []string{"Omega", "Delta", "Sigma", "Vanta", "Krypton"}
	out := pool[rng.Intn(len(pool))]
	if out == v {
		out = pool[(rng.Intn(len(pool))+1)%len(pool)]
	}
	return out
}

// PythiaNEIClaims converts PYTHIA examples into NEI training claims (the
// paper's P_t set).
func PythiaNEIClaims(examples []pythia.Example, limit int) []Claim {
	var out []Claim
	for _, ex := range examples {
		if !ex.Structure.Ambiguous() || len(ex.Evidence) == 0 {
			continue
		}
		out = append(out, Claim{Text: ex.Text, Evidence: ex.Evidence, Label: NEI, Ambiguous: true})
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}
