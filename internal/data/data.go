// Package data embeds the evaluation tables of Section V: the UCI datasets
// (Abalone, Adults, Iris, Mushroom), the two Basket variants, and the
// web-table-style datasets the experiments use (Soccer, Laptop,
// HeartDiseases, Superstore, WineQuality, Movies, Cities), plus the Covid
// table behind the CoronaCheck experiment.
//
// Rows are generated deterministically from the concept vocabulary's value
// classes, with key structure crafted per table (Basket and Covid carry the
// composite keys their row-ambiguity examples depend on). Every column is
// annotated with its vocabulary concept, which is what the simulated user
// study derives its ground truth from.
package data

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/corpus"
	"repro/internal/detrand"
	"repro/internal/relation"
	"repro/internal/vocab"
)

// Dataset couples a typed table with per-column concept annotations.
type Dataset struct {
	Table *relation.Table
	// ConceptIDs holds the vocabulary concept for each column ("" when the
	// column has no concept, e.g. a synthetic id).
	ConceptIDs []string
	// Key names the designed primary key columns (documentation; profiling
	// re-discovers them from the data).
	Key []string
}

// Concept returns the vocabulary concept for a column name.
func (d *Dataset) Concept(column string) (vocab.Concept, bool) {
	i := d.Table.Schema.Index(column)
	if i < 0 || d.ConceptIDs[i] == "" {
		return vocab.Concept{}, false
	}
	return vocab.Default().ByID(d.ConceptIDs[i])
}

// GroundTruthPairs returns every truly ambiguous column pair of the dataset
// with its curated labels, per the vocabulary's SharedLabels ground truth.
func (d *Dataset) GroundTruthPairs() []GroundTruthPair {
	var out []GroundTruthPair
	sch := d.Table.Schema
	for i := 0; i < len(sch); i++ {
		for j := i + 1; j < len(sch); j++ {
			ca, ok1 := d.Concept(sch[i].Name)
			cb, ok2 := d.Concept(sch[j].Name)
			if !ok1 || !ok2 {
				continue
			}
			if labels := vocab.SharedLabels(ca, cb); len(labels) > 0 {
				out = append(out, GroundTruthPair{AttrA: sch[i].Name, AttrB: sch[j].Name, Labels: labels})
			}
		}
	}
	return out
}

// GroundTruthPair is one annotated ambiguous pair.
type GroundTruthPair struct {
	AttrA  string
	AttrB  string
	Labels []string
}

// StringRows renders the table's cells as formatted strings (the shape the
// metadata predictors consume).
func (d *Dataset) StringRows() [][]string {
	rows := make([][]string, d.Table.NumRows())
	for r, row := range d.Table.Rows {
		out := make([]string, len(row))
		for c, v := range row {
			out[c] = v.Format()
		}
		rows[r] = out
	}
	return rows
}

// column is one column spec for the builder.
type column struct {
	header  string
	concept string // vocab concept ID; "" for synthetic ids
}

// builder assembles a dataset deterministically.
type builder struct {
	name string
	cols []column
	key  []string
	rng  *rand.Rand
}

func newBuilder(name string, seed int64, cols ...column) *builder {
	return &builder{name: name, cols: cols, rng: detrand.New(seed)}
}

// value produces a cell for a concept column.
func (b *builder) value(conceptID string) relation.Value {
	c, ok := vocab.Default().ByID(conceptID)
	if !ok {
		panic(fmt.Sprintf("data: unknown concept %q in dataset %s", conceptID, b.name))
	}
	s := corpus.CellValue(c.Values, b.rng)
	kind := kindOf(c.Values)
	v, err := relation.ParseValue(s, kind)
	if err != nil {
		panic(fmt.Sprintf("data: cannot parse generated cell %q: %v", s, err))
	}
	return v
}

func kindOf(vc vocab.ValueClass) relation.Kind {
	switch vc.Kind {
	case "int":
		return relation.KindInt
	case "float":
		return relation.KindFloat
	case "date":
		return relation.KindDate
	default:
		return relation.KindString
	}
}

// build materializes the table. keyRows supplies the key-column values per
// row (guaranteeing the designed key structure); remaining columns are
// drawn from their concept value classes.
func (b *builder) build(keyRows []map[string]relation.Value) *Dataset {
	schema := make(relation.Schema, len(b.cols))
	conceptIDs := make([]string, len(b.cols))
	for i, c := range b.cols {
		kind := relation.KindString
		if c.concept != "" {
			cc, ok := vocab.Default().ByID(c.concept)
			if !ok {
				panic(fmt.Sprintf("data: unknown concept %q in dataset %s", c.concept, b.name))
			}
			kind = kindOf(cc.Values)
		} else {
			kind = relation.KindInt // synthetic ids are ints
		}
		schema[i] = relation.Column{Name: c.header, Kind: kind}
		conceptIDs[i] = c.concept
	}
	t := relation.NewTable(b.name, schema)
	for rowIdx, keyVals := range keyRows {
		row := make(relation.Row, len(b.cols))
		for i, c := range b.cols {
			if v, ok := keyVals[c.header]; ok {
				row[i] = v
			} else if c.concept != "" {
				row[i] = b.value(c.concept)
			} else {
				row[i] = relation.Int(int64(rowIdx + 1))
			}
		}
		t.MustAppend(row)
	}
	return &Dataset{Table: t, ConceptIDs: conceptIDs, Key: b.key}
}

// compositeKeyRows builds the cross-product-subset key pattern: every left
// value appears with several right values and vice versa, so neither column
// alone is unique.
func compositeKeyRows(leftCol, rightCol string, left, right []string, perLeft int, rng *rand.Rand) []map[string]relation.Value {
	var rows []map[string]relation.Value
	for _, l := range left {
		perm := rng.Perm(len(right))
		n := perLeft
		if n > len(right) {
			n = len(right)
		}
		for _, ri := range perm[:n] {
			rows = append(rows, map[string]relation.Value{
				leftCol:  relation.String(l),
				rightCol: relation.String(right[ri]),
			})
		}
	}
	return rows
}

// idKeyRows builds n rows keyed by a sequential synthetic id (handled by
// the builder's rowIdx fallback).
func idKeyRows(n int) []map[string]relation.Value {
	return make([]map[string]relation.Value, n)
}

var players = []string{"Carter", "Smith", "Jordan", "Curry", "Davis", "Lopez", "Martin", "Walker", "Reed", "Bryant"}
var teams = []string{"LA", "SF", "NY", "CHI", "BOS", "MIA"}
var countries = []string{"France", "Italy", "Germany", "Spain", "Lebanon", "Switzerland", "Ireland", "Portugal"}
var cities = []string{"Paris", "Rome", "Berlin", "Madrid", "Beirut", "Zurich", "Dublin", "Lisbon", "Athens", "Vienna"}
var movieTitles = []string{"Eclipse", "Horizon", "Monolith", "Afterglow", "Driftwood", "Cascade", "Emberfall", "Northwind", "Papermoon", "Quicksand", "Riverrun", "Solstice"}

// Basket builds the full-name Basket dataset (composite key Player+Team).
func Basket() *Dataset {
	b := newBuilder("Basket", 101,
		column{"Player", "player"},
		column{"Team", "team"},
		column{"FieldGoalPct", "field_goal_pct"},
		column{"ThreePointPct", "three_point_pct"},
		column{"FreeThrowPct", "free_throw_pct"},
		column{"Points", "points"},
		column{"Fouls", "fouls"},
		column{"Appearances", "appearances"},
	)
	b.key = []string{"Player", "Team"}
	return b.build(compositeKeyRows("Player", "Team", players, teams, 3, b.rng))
}

// BasketAcronyms is the Basket dataset under acronym headers.
func BasketAcronyms() *Dataset {
	b := newBuilder("BasketAcronyms", 102,
		column{"Player", "player"},
		column{"Team", "team"},
		column{"FG%", "field_goal_pct"},
		column{"3FG%", "three_point_pct"},
		column{"FT%", "free_throw_pct"},
		column{"PTS", "points"},
		column{"PF", "fouls"},
		column{"APPS", "appearances"},
	)
	b.key = []string{"Player", "Team"}
	return b.build(compositeKeyRows("Player", "Team", players, teams, 3, b.rng))
}

// Abalone builds the UCI Abalone dataset with a synthetic specimen id.
func Abalone() *Dataset {
	b := newBuilder("Abalone", 103,
		column{"specimen_id", ""},
		column{"sex", "sex"},
		column{"length", "length"},
		column{"diameter", "diameter"},
		column{"height", "height"},
		column{"whole_weight", "whole_weight"},
		column{"shucked_weight", "shucked_weight"},
		column{"viscera_weight", "viscera_weight"},
		column{"shell_weight", "shell_weight"},
		column{"rings", "rings"},
	)
	b.key = []string{"specimen_id"}
	return b.build(idKeyRows(50))
}

// Adults builds the UCI Adults (census income) dataset.
func Adults() *Dataset {
	b := newBuilder("Adults", 104,
		column{"person_id", ""},
		column{"age", "age"},
		column{"workclass", "workclass"},
		column{"education", "education"},
		column{"marital_status", "marital_status"},
		column{"occupation", "occupation"},
		column{"race", "race"},
		column{"sex", "sex"},
		column{"capital_gain", "capital_gain"},
		column{"capital_loss", "capital_loss"},
		column{"hours_per_week", "hours_per_week"},
		column{"native_country", "country"},
		column{"salary", "salary"},
	)
	b.key = []string{"person_id"}
	return b.build(idKeyRows(60))
}

// Iris builds the UCI Iris dataset with a synthetic flower id.
func Iris() *Dataset {
	b := newBuilder("Iris", 105,
		column{"flower_id", ""},
		column{"sepal_length", "sepal_length"},
		column{"sepal_width", "sepal_width"},
		column{"petal_length", "petal_length"},
		column{"petal_width", "petal_width"},
		column{"species", "species"},
	)
	b.key = []string{"flower_id"}
	return b.build(idKeyRows(45))
}

// Mushroom builds the UCI Mushroom dataset.
func Mushroom() *Dataset {
	b := newBuilder("Mushroom", 106,
		column{"specimen_id", ""},
		column{"cap_shape", "cap_shape"},
		column{"cap_color", "cap_color"},
		column{"cap_diameter", "diameter"},
		column{"gill_color", "gill_color"},
		column{"stalk_shape", "stalk_shape"},
		column{"stalk_color", "stalk_color"},
		column{"spore_print_color", "spore_color"},
		column{"odor", "odor"},
		column{"habitat", "habitat"},
		column{"class", "edibility"},
	)
	b.key = []string{"specimen_id"}
	return b.build(idKeyRows(55))
}

// WineQuality builds the Kaggle Wine Quality dataset.
func WineQuality() *Dataset {
	b := newBuilder("WineQuality", 107,
		column{"wine_id", ""},
		column{"fixed_acidity", "fixed_acidity"},
		column{"volatile_acidity", "volatile_acidity"},
		column{"citric_acid", "citric_acid"},
		column{"residual_sugar", "residual_sugar"},
		column{"chlorides", "chlorides"},
		column{"free_sulfur_dioxide", "free_sulfur_dioxide"},
		column{"total_sulfur_dioxide", "total_sulfur_dioxide"},
		column{"density", "density"},
		column{"ph", "ph"},
		column{"sulphates", "sulphates"},
		column{"alcohol", "alcohol"},
		column{"quality", "quality"},
	)
	b.key = []string{"wine_id"}
	return b.build(idKeyRows(50))
}

// Soccer builds the web-table Soccer dataset (composite key Player+Team).
func Soccer() *Dataset {
	b := newBuilder("Soccer", 108,
		column{"player", "player"},
		column{"team", "team"},
		column{"goals", "goals"},
		column{"assists", "soccer_assists"},
		column{"shots", "shots"},
		column{"shots_on_target", "shots_on_target"},
		column{"yellow_cards", "yellow_cards"},
		column{"red_cards", "red_cards"},
		column{"pass_accuracy", "pass_accuracy"},
		column{"matches", "soccer_matches"},
	)
	b.key = []string{"player", "team"}
	return b.build(compositeKeyRows("player", "team", players, teams, 2, b.rng))
}

// Laptop builds the web-table Laptop dataset (composite key brand+model).
func Laptop() *Dataset {
	brands := []string{"Apex", "Nimbus", "Vertex", "Quanta", "Orion", "Zephyr"}
	models := []string{"X1", "Pro14", "Air13", "Ultra15", "Flex12", "Edge16", "Core15", "Slim13"}
	b := newBuilder("Laptop", 109,
		column{"brand", "brand"},
		column{"model", "model"},
		column{"ram_gb", "ram"},
		column{"storage_gb", "storage"},
		column{"screen_size", "screen_size"},
		column{"weight_kg", "device_weight"},
		column{"cpu_speed", "cpu_speed"},
		column{"battery_life", "battery_life"},
		column{"price", "price"},
	)
	b.key = []string{"brand", "model"}
	return b.build(compositeKeyRows("brand", "model", brands, models, 4, b.rng))
}

// HeartDiseases builds the Kaggle heart-disease dataset.
func HeartDiseases() *Dataset {
	b := newBuilder("HeartDiseases", 110,
		column{"patient_id", ""},
		column{"age", "age"},
		column{"sex", "sex"},
		column{"chest_pain", "chest_pain"},
		column{"resting_bp", "resting_bp"},
		column{"systolic_bp", "systolic_bp"},
		column{"cholesterol", "cholesterol"},
		column{"max_heart_rate", "max_heart_rate"},
		column{"resting_heart_rate", "resting_heart_rate"},
		column{"blood_sugar", "blood_sugar"},
		column{"diagnosis", "diagnosis"},
	)
	b.key = []string{"patient_id"}
	return b.build(idKeyRows(55))
}

// Superstore builds the Superstore retail dataset.
func Superstore() *Dataset {
	b := newBuilder("Superstore", 111,
		column{"order_id", ""},
		column{"customer", "customer"},
		column{"region", "region"},
		column{"category", "category"},
		column{"sub_category", "sub_category"},
		column{"sales", "sales"},
		column{"profit", "profit"},
		column{"discount", "discount"},
		column{"quantity", "quantity"},
		column{"shipping_cost", "shipping_cost"},
		column{"ship_mode", "ship_mode"},
	)
	b.key = []string{"order_id"}
	return b.build(idKeyRows(60))
}

// Covid builds the CoronaCheck statistics table (composite key
// country+date), the substrate of the Table VI experiment.
func Covid() *Dataset {
	b := newBuilder("Covid", 112,
		column{"country", "country"},
		column{"date", "date"},
		column{"total_confirmed", "total_confirmed"},
		column{"new_confirmed", "new_confirmed"},
		column{"total_deaths", "total_deaths"},
		column{"new_deaths", "new_deaths"},
		column{"total_recovered", "total_recovered"},
		column{"active_cases", "active_cases"},
		column{"total_fatality_rate", "total_fatality_rate"},
		column{"total_mortality_rate", "total_mortality_rate"},
		column{"vaccinated", "vaccinated"},
	)
	b.key = []string{"country", "date"}
	// Dates repeat across countries; countries across dates.
	var rows []map[string]relation.Value
	for _, c := range countries {
		for day := 0; day < 6; day++ {
			rows = append(rows, map[string]relation.Value{
				"country": relation.String(c),
				"date":    relation.Date(2021, 6, 1+day*7),
			})
		}
	}
	return b.build(rows)
}

// Movies builds a web-table movie dataset (composite key title+year).
func Movies() *Dataset {
	b := newBuilder("Movies", 113,
		column{"title", "name"},
		column{"year", "year"},
		column{"genre", "genre"},
		column{"rating", "rating"},
		column{"metascore", "metascore"},
		column{"votes", "votes"},
		column{"gross", "gross"},
		column{"budget", "budget"},
		column{"runtime", "runtime"},
	)
	b.key = []string{"title", "year"}
	var rows []map[string]relation.Value
	for _, title := range movieTitles {
		for _, yr := range []int64{2018, 2021, 2023} {
			rows = append(rows, map[string]relation.Value{
				"title": relation.String(title),
				"year":  relation.Int(yr),
			})
		}
	}
	return b.build(rows)
}

// Cities builds a web-table city statistics dataset (composite key
// city+country: same city name can exist in two countries).
func Cities() *Dataset {
	b := newBuilder("Cities", 114,
		column{"city", "city"},
		column{"country", "country"},
		column{"population", "population"},
		column{"land_area", "land_area"},
		column{"pop_density", "pop_density"},
		column{"elevation", "elevation"},
	)
	b.key = []string{"city", "country"}
	return b.build(compositeKeyRows("city", "country", cities, countries, 2, b.rng))
}

// Regions builds the dimension table of the paper's future-work example:
// it joins the Covid table on country and groups countries into regions
// ("The total number of vaccinated in EU is higher than in Africa").
func Regions() *Dataset {
	t := relation.NewTable("Regions", relation.Schema{
		{Name: "region", Kind: relation.KindString},
		{Name: "country", Kind: relation.KindString},
	})
	regions := map[string][]string{
		"EU":     {"France", "Italy", "Germany", "Spain", "Ireland", "Portugal"},
		"Non-EU": {"Lebanon", "Switzerland"},
	}
	for _, region := range []string{"EU", "Non-EU"} {
		for _, c := range regions[region] {
			t.MustAppend(relation.Row{relation.String(region), relation.String(c)})
		}
	}
	return &Dataset{Table: t, ConceptIDs: []string{"region", "country"}, Key: []string{"country"}}
}

// registry maps dataset names to constructors.
var registry = map[string]func() *Dataset{
	"Regions":        Regions,
	"Basket":         Basket,
	"BasketAcronyms": BasketAcronyms,
	"Abalone":        Abalone,
	"Adults":         Adults,
	"Iris":           Iris,
	"Mushroom":       Mushroom,
	"WineQuality":    WineQuality,
	"Soccer":         Soccer,
	"Laptop":         Laptop,
	"HeartDiseases":  HeartDiseases,
	"Superstore":     Superstore,
	"Covid":          Covid,
	"Movies":         Movies,
	"Cities":         Cities,
}

// Names lists the available datasets, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Load builds a dataset by name.
func Load(name string) (*Dataset, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("data: unknown dataset %q (have %v)", name, Names())
	}
	return f(), nil
}

// MustLoad is Load for statically-known names; it panics on error.
func MustLoad(name string) *Dataset {
	d, err := Load(name)
	if err != nil {
		panic(err)
	}
	return d
}

// EvaluationNames returns the 11 datasets of the Table VIII user study, in
// the paper's order.
func EvaluationNames() []string {
	return []string{
		"Abalone", "Adults", "BasketAcronyms", "Basket", "HeartDiseases",
		"Iris", "Superstore", "WineQuality", "Laptop", "Mushroom", "Soccer",
	}
}

// AnnotatedCorpusNames returns the 13 tables of the Section V annotation
// study: the four UCI sets, the two Basket variants, and seven web tables.
func AnnotatedCorpusNames() []string {
	return []string{
		"Abalone", "Adults", "Iris", "Mushroom",
		"Basket", "BasketAcronyms",
		"Soccer", "Laptop", "HeartDiseases", "Superstore", "WineQuality", "Movies", "Cities",
	}
}
