package data

import (
	"reflect"
	"testing"

	"repro/internal/profiling"
)

func TestAllDatasetsLoad(t *testing.T) {
	for _, name := range Names() {
		d, err := Load(name)
		if err != nil {
			t.Fatalf("Load(%s): %v", name, err)
		}
		if d.Table.NumRows() < 10 && name != "Regions" { // Regions is a small dimension table
			t.Errorf("%s has only %d rows", name, d.Table.NumRows())
		}
		if len(d.ConceptIDs) != d.Table.NumCols() {
			t.Errorf("%s concept annotations misaligned", name)
		}
		for _, k := range d.Key {
			if d.Table.Schema.Index(k) < 0 {
				t.Errorf("%s designed key column %q missing from schema", name, k)
			}
		}
	}
	if _, err := Load("Nope"); err == nil {
		t.Error("expected error for unknown dataset")
	}
}

func TestDatasetsDeterministic(t *testing.T) {
	a, b := Basket(), Basket()
	if !reflect.DeepEqual(a.Table.Rows, b.Table.Rows) {
		t.Error("Basket rows differ between builds")
	}
}

func TestDesignedKeysAreKeys(t *testing.T) {
	// The designed key must be unique over the data, and for composite
	// designs no strict subset may be unique (otherwise row ambiguity
	// evaporates).
	for _, name := range Names() {
		d := MustLoad(name)
		p, err := profiling.ProfileTable(d.Table)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		found := false
		for _, ck := range p.CandidateKeys {
			if sameSet(ck, d.Key) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: designed key %v not among candidate keys %v", name, d.Key, p.CandidateKeys)
		}
		if len(d.Key) >= 2 {
			for _, col := range d.Key {
				st, ok := p.Stats(col)
				if !ok {
					t.Fatalf("%s: stats missing for %s", name, col)
				}
				if st.Unique {
					t.Errorf("%s: key component %s is unique alone; composite key degenerate", name, col)
				}
			}
		}
	}
}

func TestProfilingPicksDesignedPrimaryKey(t *testing.T) {
	// On the tables that drive row-ambiguity experiments, the profiler must
	// choose the designed composite key as THE primary key.
	for _, name := range []string{"Basket", "BasketAcronyms", "Covid", "Soccer", "Cities"} {
		d := MustLoad(name)
		p, err := profiling.ProfileTable(d.Table)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !sameSet(p.PrimaryKey, d.Key) {
			t.Errorf("%s: primary key = %v, want %v", name, p.PrimaryKey, d.Key)
		}
	}
}

func TestGroundTruthPairs(t *testing.T) {
	d := BasketAcronyms()
	pairs := d.GroundTruthPairs()
	found := false
	for _, p := range pairs {
		if (p.AttrA == "FG%" && p.AttrB == "3FG%") || (p.AttrA == "3FG%" && p.AttrB == "FG%") {
			found = true
			if !contains(p.Labels, "shooting") {
				t.Errorf("FG%%/3FG%% labels = %v, want shooting", p.Labels)
			}
		}
	}
	if !found {
		t.Errorf("FG%%/3FG%% not in ground truth: %+v", pairs)
	}

	// Every evaluation table must contribute at least one ambiguous pair
	// (the user study found 252 across 13 tables).
	total := 0
	for _, name := range AnnotatedCorpusNames() {
		n := len(MustLoad(name).GroundTruthPairs())
		if n == 0 {
			t.Errorf("%s has no ground-truth ambiguous pairs", name)
		}
		total += n
	}
	if total < 40 {
		t.Errorf("total ground-truth pairs = %d, want a healthy corpus", total)
	}
	t.Logf("ground-truth ambiguous pairs across the annotated corpus: %d", total)
}

func TestConceptLookup(t *testing.T) {
	d := Adults()
	c, ok := d.Concept("capital_gain")
	if !ok || c.ID != "capital_gain" {
		t.Errorf("Concept(capital_gain) = %v/%v", c.ID, ok)
	}
	if _, ok := d.Concept("person_id"); ok {
		t.Error("synthetic id column must have no concept")
	}
	if _, ok := d.Concept("missing"); ok {
		t.Error("missing column must have no concept")
	}
}

func TestStringRows(t *testing.T) {
	d := Basket()
	rows := d.StringRows()
	if len(rows) != d.Table.NumRows() {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0][0] == "" {
		t.Error("player cell empty")
	}
}

func TestEvaluationNameLists(t *testing.T) {
	if len(EvaluationNames()) != 11 {
		t.Errorf("evaluation datasets = %d, want 11", len(EvaluationNames()))
	}
	if len(AnnotatedCorpusNames()) != 13 {
		t.Errorf("annotated corpus = %d, want 13", len(AnnotatedCorpusNames()))
	}
	for _, n := range append(EvaluationNames(), AnnotatedCorpusNames()...) {
		if _, err := Load(n); err != nil {
			t.Errorf("list references unknown dataset %s", n)
		}
	}
}

func sameSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	m := map[string]bool{}
	for _, x := range a {
		m[x] = true
	}
	for _, x := range b {
		if !m[x] {
			return false
		}
	}
	return true
}

func contains(xs []string, w string) bool {
	for _, x := range xs {
		if x == w {
			return true
		}
	}
	return false
}
