package stream_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/pythia"
	"repro/internal/stream"
)

// newGenerator builds a fresh Basket-dataset generator — fresh per run so no
// test inherits another's warm engine caches.
func newGenerator(t *testing.T) *pythia.Generator {
	t.Helper()
	d, err := data.Load("Basket")
	if err != nil {
		t.Fatal(err)
	}
	var pairs []model.Pair
	for _, gt := range d.GroundTruthPairs() {
		pairs = append(pairs, model.Pair{AttrA: gt.AttrA, AttrB: gt.AttrB, Label: gt.Labels[0]})
	}
	md, err := pythia.WithPairs(d.Table, pairs)
	if err != nil {
		t.Fatal(err)
	}
	return pythia.NewGenerator(d.Table, md)
}

func testOpts(workers int) pythia.Options {
	return pythia.Options{
		Mode:        pythia.Templates,
		Seed:        97,
		MaxPerQuery: 8,
		Questions:   true,
		Workers:     workers,
	}
}

func testConfig(dir string, opts pythia.Options) stream.Config {
	return stream.Config{
		Dir:         dir,
		Fingerprint: opts.Fingerprint("Basket"),
		Seed:        opts.Seed,
		// Small intervals so a ~100-example run exercises rotation and
		// several checkpoints.
		CheckpointEvery: 10,
		ShardSize:       25,
	}
}

// wantNDJSON renders the reference byte stream: Generate's examples through
// json.Encoder, which is the byte-identity target of the shard files.
func wantNDJSON(t *testing.T, opts pythia.Options) []byte {
	t.Helper()
	exs, err := newGenerator(t).Generate(opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, ex := range exs {
		if err := enc.Encode(ex); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// concatShards concatenates the run directory's shard files in manifest
// order.
func concatShards(t *testing.T, dir string) []byte {
	t.Helper()
	m, err := stream.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []byte
	for _, sh := range m.Shards {
		b, err := os.ReadFile(filepath.Join(dir, sh.File))
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b...)
	}
	return out
}

// TestFileSinkRoundTrip: a complete streamed run concatenates to exactly the
// NDJSON Generate would have encoded, across shard rotations, and the final
// manifest is marked complete with matching counts.
func TestFileSinkRoundTrip(t *testing.T) {
	opts := testOpts(1)
	want := wantNDJSON(t, opts)

	dir := t.TempDir()
	sink, res, err := stream.Open(testConfig(dir, opts), false)
	if err != nil {
		t.Fatal(err)
	}
	if res.NextUnit != 0 || res.Seen != nil {
		t.Fatalf("fresh open returned a resume position: %+v", res)
	}
	if err := newGenerator(t).GenerateStream(opts, sink); err != nil {
		t.Fatal(err)
	}
	if err := sink.Finish(); err != nil {
		t.Fatal(err)
	}

	m, err := stream.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Complete {
		t.Error("finished run's manifest not marked complete")
	}
	if m.Examples != sink.Examples() {
		t.Errorf("manifest examples %d, sink wrote %d", m.Examples, sink.Examples())
	}
	if len(m.Shards) < 2 {
		t.Errorf("shard size 25 over %d examples produced %d shards, want rotation", m.Examples, len(m.Shards))
	}
	if got := concatShards(t, dir); !bytes.Equal(got, want) {
		t.Errorf("concatenated shards differ from Generate NDJSON (%d vs %d bytes)", len(got), len(want))
	}
}

// abortSink forwards to a FileSink and fails after a fixed number of emits —
// the test's stand-in for a process killed mid-run.
type abortSink struct {
	sink *stream.FileSink
	left int
}

var errKilled = errors.New("killed")

func (a *abortSink) Emit(ex pythia.Example) error {
	if a.left <= 0 {
		return errKilled
	}
	a.left--
	return a.sink.Emit(ex)
}

func (a *abortSink) EndUnit(unit int) error { return a.sink.EndUnit(unit) }

// TestKillAndResumeByteIdentical is the resume acceptance: kill a streaming
// run mid-shard (after several checkpoints, with a torn half-line at the
// kill point), resume with the same arguments, and require the completed
// directory to concatenate byte-identically to an uninterrupted run — at
// every worker count.
func TestKillAndResumeByteIdentical(t *testing.T) {
	want := wantNDJSON(t, testOpts(1))
	for _, workers := range []int{1, 2, 4, 8} {
		opts := testOpts(workers)
		dir := t.TempDir()
		cfg := testConfig(dir, opts)

		sink, _, err := stream.Open(cfg, false)
		if err != nil {
			t.Fatal(err)
		}
		ab := &abortSink{sink: sink, left: 42}
		err = newGenerator(t).GenerateStream(opts, ab)
		if !errors.Is(err, errKilled) {
			t.Fatalf("workers=%d: aborted run returned %v, want errKilled", workers, err)
		}
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
		// Simulate a torn write past the last durable checkpoint: garbage
		// appended to the newest shard file. Resume must truncate it away.
		shards, err := filepath.Glob(filepath.Join(dir, "shard-*.ndjson"))
		if err != nil || len(shards) == 0 {
			t.Fatalf("workers=%d: no shards after abort (err=%v)", workers, err)
		}
		sort.Strings(shards)
		f, err := os.OpenFile(shards[len(shards)-1], os.O_WRONLY|os.O_APPEND, 0o666)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteString(`{"text":"torn half li`); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}

		resumed, res, err := stream.Open(cfg, true)
		if err != nil {
			t.Fatalf("workers=%d: resume open: %v", workers, err)
		}
		if res.NextUnit == 0 {
			t.Fatalf("workers=%d: no checkpoint recorded before the kill; abort point too early", workers)
		}
		if err := newGenerator(t).GenerateStreamFrom(opts, res, resumed); err != nil {
			t.Fatalf("workers=%d: resumed run: %v", workers, err)
		}
		if err := resumed.Finish(); err != nil {
			t.Fatal(err)
		}
		if got := concatShards(t, dir); !bytes.Equal(got, want) {
			t.Errorf("workers=%d: resumed output differs from uninterrupted run (%d vs %d bytes)",
				workers, len(got), len(want))
		}
	}
}

// TestResumeCompletedRunIsNoOp: resuming a finished directory skips every
// unit and leaves the bytes untouched.
func TestResumeCompletedRunIsNoOp(t *testing.T) {
	opts := testOpts(4)
	dir := t.TempDir()
	cfg := testConfig(dir, opts)
	sink, _, err := stream.Open(cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := newGenerator(t).GenerateStream(opts, sink); err != nil {
		t.Fatal(err)
	}
	if err := sink.Finish(); err != nil {
		t.Fatal(err)
	}
	before := concatShards(t, dir)

	resumed, res, err := stream.Open(cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	emitted := sink.Examples()
	if err := newGenerator(t).GenerateStreamFrom(opts, res, resumed); err != nil {
		t.Fatal(err)
	}
	if err := resumed.Finish(); err != nil {
		t.Fatal(err)
	}
	if resumed.Examples() != emitted {
		t.Errorf("no-op resume grew the run: %d -> %d examples", emitted, resumed.Examples())
	}
	if after := concatShards(t, dir); !bytes.Equal(before, after) {
		t.Error("no-op resume changed the output bytes")
	}
}

// TestOpenRefusals: a populated directory must not be silently overwritten,
// and resume must refuse mismatched arguments instead of mixing streams.
func TestOpenRefusals(t *testing.T) {
	opts := testOpts(1)
	dir := t.TempDir()
	cfg := testConfig(dir, opts)
	sink, _, err := stream.Open(cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := newGenerator(t).GenerateStream(opts, sink); err != nil {
		t.Fatal(err)
	}
	if err := sink.Finish(); err != nil {
		t.Fatal(err)
	}

	if _, _, err := stream.Open(cfg, false); err == nil {
		t.Error("Open without resume accepted a directory holding a manifest")
	}
	badFP := cfg
	badFP.Fingerprint = "deadbeef"
	if _, _, err := stream.Open(badFP, true); err == nil {
		t.Error("resume accepted a mismatched fingerprint")
	}
	badSeed := cfg
	badSeed.Seed++
	if _, _, err := stream.Open(badSeed, true); err == nil {
		t.Error("resume accepted a mismatched seed")
	}
	badShard := cfg
	badShard.ShardSize++
	if _, _, err := stream.Open(badShard, true); err == nil {
		t.Error("resume accepted a mismatched shard size")
	}
}

// TestFreshStartClearsStaleShards: a run killed before its first checkpoint
// leaves shard files but no manifest; a fresh Open must clear them so the
// directory holds exactly the new run's output.
func TestFreshStartClearsStaleShards(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, "shard-00099.ndjson")
	if err := os.WriteFile(stale, []byte("{}\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	opts := testOpts(1)
	if _, _, err := stream.Open(testConfig(dir, opts), false); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Errorf("stale shard survived a fresh Open (stat err: %v)", err)
	}
}
