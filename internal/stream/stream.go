// Package stream persists a pythia example stream as sharded NDJSON files
// with a checkpointed resume manifest — the constant-memory counterpart to
// collecting a []Example. A FileSink plugs into Generator.GenerateStream:
// examples append to the current shard file (one JSON object per line,
// byte-identical to json.Encoder output), shards rotate at a fixed example
// count, and every N examples — always at a unit boundary — the sink
// flushes, syncs and atomically rewrites manifest.json with the options
// fingerprint, seed, per-shard example/byte counts and the first unit not
// yet covered by the flushed prefix.
//
// The manifest is the durability contract (the checkpoint-every-N +
// same-args-resume pattern): everything it records is on disk, anything
// past it is disposable. Resuming with the same arguments truncates each
// shard back to its recorded byte count, deletes shards the manifest never
// committed, replays the text-dedup set from the surviving lines and
// reports the unit index to continue from — so an interrupted run picks up
// at its last checkpoint and completes to a byte-identical total output.
// A fingerprint or layout mismatch refuses to resume rather than silently
// mixing two different streams.
package stream

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/pythia"
	"repro/internal/telemetry"
)

// Defaults for Config zero values.
const (
	DefaultCheckpointEvery = 1000
	DefaultShardSize       = 100_000
)

const (
	manifestVersion = 1
	manifestName    = "manifest.json"
	shardPattern    = "shard-%05d.ndjson"
)

// met holds the sink's metric handles: examples flushed to durable
// storage, checkpoints written, and units skipped on resume.
var met = struct {
	flushed     *telemetry.Counter
	checkpoints *telemetry.Counter
	skipped     *telemetry.Counter
}{
	flushed:     telemetry.Default().Counter("stream.examples_flushed"),
	checkpoints: telemetry.Default().Counter("stream.checkpoints_written"),
	skipped:     telemetry.Default().Counter("stream.units_skipped"),
}

// ShardInfo is one output file's state as of the last checkpoint. Bytes is
// the flushed prefix length — resume truncates the file back to it.
type ShardInfo struct {
	File     string `json:"file"`
	Examples int    `json:"examples"`
	Bytes    int64  `json:"bytes"`
}

// Manifest is the checkpoint record written to manifest.json. Every field
// describes the durable prefix only: Examples examples across Shards, all
// units below NextUnit fully flushed. Complete marks a finished run.
type Manifest struct {
	Version         int         `json:"version"`
	Fingerprint     string      `json:"fingerprint"`
	Seed            int64       `json:"seed"`
	CheckpointEvery int         `json:"checkpoint_every"`
	ShardSize       int         `json:"shard_size"`
	Shards          []ShardInfo `json:"shards"`
	Examples        int         `json:"examples"`
	NextUnit        int         `json:"next_unit"`
	Complete        bool        `json:"complete"`
}

// Config describes a streaming run directory.
type Config struct {
	// Dir is the output directory (created if missing).
	Dir string
	// Fingerprint identifies the generation arguments — use
	// Options.Fingerprint. Resume refuses a mismatch.
	Fingerprint string
	// Seed is recorded in the manifest and checked on resume.
	Seed int64
	// CheckpointEvery is the example interval between manifest
	// checkpoints (0 = DefaultCheckpointEvery; negative = only the final
	// manifest). Checkpoints land on the next unit boundary at or after
	// the interval.
	CheckpointEvery int
	// ShardSize is the example count per shard file (0 = DefaultShardSize).
	// Resume refuses a mismatch: shard layout determines byte offsets.
	ShardSize int
}

// defaults fills zero values.
func (c Config) defaults() Config {
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = DefaultCheckpointEvery
	}
	if c.ShardSize <= 0 {
		c.ShardSize = DefaultShardSize
	}
	return c
}

// countingWriter tracks the bytes actually handed to the file, so flushed
// offsets are known without seeking.
type countingWriter struct {
	f *os.File
	n int64
}

func (w *countingWriter) Write(p []byte) (int, error) {
	n, err := w.f.Write(p)
	w.n += int64(n)
	return n, err
}

// FileSink writes the example stream to sharded NDJSON files under one
// directory, checkpointing through a manifest. It implements
// pythia.ExampleSink and pythia.UnitSink; it is not safe for concurrent
// use (GenerateStream emits from one goroutine).
type FileSink struct {
	cfg    Config
	shards []ShardInfo // live state; committed to the manifest at checkpoints

	cur     *os.File
	curCW   *countingWriter
	curBuf  *bufio.Writer
	scratch []byte // reusable line buffer

	total           int // examples written (including buffered)
	flushed         int // examples known durable (last checkpoint)
	sinceCheckpoint int
	nextUnit        int // first unit not fully written
}

// Open creates or resumes a streaming run in cfg.Dir. With resume false
// the directory must not already hold a manifest (refuse rather than
// silently overwrite an interrupted run). With resume true an existing
// manifest is validated against cfg — fingerprint, seed and shard size
// must match — shard files are truncated to the manifest's flushed
// prefix, uncommitted shards are deleted, and the returned pythia.Resume
// carries the continue-from unit plus the replayed dedup set. Resuming a
// directory with no manifest degrades to a fresh start.
func Open(cfg Config, resume bool) (*FileSink, pythia.Resume, error) {
	cfg = cfg.defaults()
	if err := os.MkdirAll(cfg.Dir, 0o777); err != nil {
		return nil, pythia.Resume{}, err
	}
	m, err := readManifest(filepath.Join(cfg.Dir, manifestName))
	switch {
	case os.IsNotExist(err):
		// Fresh start. Clear any stale shard files (a run killed before
		// its first checkpoint leaves shards but no manifest) so the
		// directory holds exactly this run's output.
		if err := removeShards(cfg.Dir, nil); err != nil {
			return nil, pythia.Resume{}, err
		}
		s := &FileSink{cfg: cfg}
		return s, pythia.Resume{}, nil
	case err != nil:
		return nil, pythia.Resume{}, fmt.Errorf("stream: read manifest: %w", err)
	case !resume:
		return nil, pythia.Resume{}, fmt.Errorf("stream: %s already holds a run manifest; pass -resume to continue it or use an empty directory", cfg.Dir)
	}
	res, sink, err := resumeFrom(cfg, m)
	if err != nil {
		return nil, pythia.Resume{}, err
	}
	return sink, res, nil
}

// resumeFrom validates the manifest, restores the flushed prefix and
// rebuilds the sink's live state on top of it.
func resumeFrom(cfg Config, m *Manifest) (pythia.Resume, *FileSink, error) {
	if m.Version != manifestVersion {
		return pythia.Resume{}, nil, fmt.Errorf("stream: manifest version %d, this build writes %d", m.Version, manifestVersion)
	}
	if m.Fingerprint != cfg.Fingerprint {
		return pythia.Resume{}, nil, fmt.Errorf("stream: refusing to resume: the run in %s was generated with different arguments (manifest fingerprint %.12s…, current %.12s…)", cfg.Dir, m.Fingerprint, cfg.Fingerprint)
	}
	if m.Seed != cfg.Seed {
		return pythia.Resume{}, nil, fmt.Errorf("stream: refusing to resume: manifest seed %d, current %d", m.Seed, cfg.Seed)
	}
	if m.ShardSize != cfg.ShardSize {
		return pythia.Resume{}, nil, fmt.Errorf("stream: refusing to resume: manifest shard size %d, current %d (shard layout must match)", m.ShardSize, cfg.ShardSize)
	}

	// Drop anything the manifest never committed: extra shard files from
	// after the checkpoint, and the tail of each committed shard.
	committed := map[string]bool{}
	for _, sh := range m.Shards {
		committed[sh.File] = true
	}
	if err := removeShards(cfg.Dir, committed); err != nil {
		return pythia.Resume{}, nil, err
	}
	seen := make(map[string]bool, m.Examples)
	for _, sh := range m.Shards {
		path := filepath.Join(cfg.Dir, sh.File)
		if err := os.Truncate(path, sh.Bytes); err != nil {
			return pythia.Resume{}, nil, fmt.Errorf("stream: truncate %s to flushed prefix: %w", sh.File, err)
		}
		if err := replaySeen(path, sh, seen); err != nil {
			return pythia.Resume{}, nil, err
		}
	}
	if len(seen) != m.Examples {
		return pythia.Resume{}, nil, fmt.Errorf("stream: manifest records %d examples but shards replay %d distinct texts", m.Examples, len(seen))
	}

	s := &FileSink{
		cfg:      cfg,
		shards:   append([]ShardInfo(nil), m.Shards...),
		total:    m.Examples,
		flushed:  m.Examples,
		nextUnit: m.NextUnit,
	}
	// Reopen the last committed shard for appending; rotation on the next
	// Emit handles an exactly-full shard.
	if n := len(s.shards); n > 0 {
		last := s.shards[n-1]
		f, err := os.OpenFile(filepath.Join(cfg.Dir, last.File), os.O_WRONLY|os.O_APPEND, 0o666)
		if err != nil {
			return pythia.Resume{}, nil, err
		}
		s.cur = f
		s.curCW = &countingWriter{f: f, n: last.Bytes}
		s.curBuf = bufio.NewWriter(s.curCW)
	}
	met.skipped.Add(int64(m.NextUnit))
	return pythia.Resume{NextUnit: m.NextUnit, Seen: seen}, s, nil
}

// replaySeen reads one truncated shard and folds every example text into
// the dedup set. The flushed stream is already deduplicated, so each line
// contributes one distinct text.
func replaySeen(path string, sh ShardInfo, seen map[string]bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	dec := json.NewDecoder(bufio.NewReader(f))
	lines := 0
	for dec.More() {
		var ex struct{ Text string }
		if err := dec.Decode(&ex); err != nil {
			return fmt.Errorf("stream: replay %s line %d: %w", sh.File, lines+1, err)
		}
		lines++
		seen[ex.Text] = true
	}
	if lines != sh.Examples {
		return fmt.Errorf("stream: shard %s replays %d examples, manifest records %d", sh.File, lines, sh.Examples)
	}
	return nil
}

// rotate finalizes the current shard (if any) and opens the next one.
func (s *FileSink) rotate() error {
	if s.cur != nil {
		if err := s.closeCurrent(); err != nil {
			return err
		}
	}
	name := fmt.Sprintf(shardPattern, len(s.shards))
	f, err := os.Create(filepath.Join(s.cfg.Dir, name))
	if err != nil {
		return err
	}
	s.cur = f
	s.curCW = &countingWriter{f: f}
	s.curBuf = bufio.NewWriter(s.curCW)
	s.shards = append(s.shards, ShardInfo{File: name})
	return nil
}

// closeCurrent flushes, syncs and closes the open shard file, recording its
// final byte length — a closed shard is fully durable, so later manifests
// must describe all of it, not just its last mid-shard checkpoint.
func (s *FileSink) closeCurrent() error {
	if err := s.curBuf.Flush(); err != nil {
		return err
	}
	if err := s.cur.Sync(); err != nil {
		return err
	}
	s.shards[len(s.shards)-1].Bytes = s.curCW.n
	err := s.cur.Close()
	s.cur, s.curBuf, s.curCW = nil, nil, nil
	return err
}

// Emit appends one example to the current shard as a JSON line — the
// exact bytes json.Encoder would produce, so concatenating the shards
// reproduces Generate's NDJSON byte-for-byte.
func (s *FileSink) Emit(ex pythia.Example) error {
	cur := len(s.shards) - 1
	if s.cur == nil || s.shards[cur].Examples >= s.cfg.ShardSize {
		if err := s.rotate(); err != nil {
			return err
		}
		cur = len(s.shards) - 1
	}
	line, err := json.Marshal(ex)
	if err != nil {
		return err
	}
	s.scratch = append(append(s.scratch[:0], line...), '\n')
	if _, err := s.curBuf.Write(s.scratch); err != nil {
		return err
	}
	s.shards[cur].Examples++
	s.total++
	s.sinceCheckpoint++
	return nil
}

// EndUnit receives unit boundaries from GenerateStream and checkpoints
// once the configured example interval has passed. Checkpoints only ever
// land here — a manifest always describes a whole-unit prefix.
func (s *FileSink) EndUnit(unit int) error {
	s.nextUnit = unit + 1
	if s.cfg.CheckpointEvery > 0 && s.sinceCheckpoint >= s.cfg.CheckpointEvery {
		return s.checkpoint(false)
	}
	return nil
}

// checkpoint makes the written prefix durable and commits it to the
// manifest: flush the shard buffer, fsync the file, then atomically
// replace manifest.json (write temp + rename).
func (s *FileSink) checkpoint(complete bool) error {
	if s.cur != nil {
		if err := s.curBuf.Flush(); err != nil {
			return err
		}
		if err := s.cur.Sync(); err != nil {
			return err
		}
		s.shards[len(s.shards)-1].Bytes = s.curCW.n
	}
	m := Manifest{
		Version:         manifestVersion,
		Fingerprint:     s.cfg.Fingerprint,
		Seed:            s.cfg.Seed,
		CheckpointEvery: s.cfg.CheckpointEvery,
		ShardSize:       s.cfg.ShardSize,
		Shards:          s.shards,
		Examples:        s.total,
		NextUnit:        s.nextUnit,
		Complete:        complete,
	}
	if err := writeManifest(filepath.Join(s.cfg.Dir, manifestName), m); err != nil {
		return err
	}
	met.checkpoints.Inc()
	met.flushed.Add(int64(s.total - s.flushed))
	s.flushed = s.total
	s.sinceCheckpoint = 0
	return nil
}

// Finish writes the final checkpoint with the completion marker and closes
// the sink. Call it only after GenerateStream returned nil; after an
// error, call Close instead so the last durable checkpoint stays the
// resume point.
func (s *FileSink) Finish() error {
	if err := s.checkpoint(true); err != nil {
		return err
	}
	if s.cur != nil {
		return s.closeCurrent()
	}
	return nil
}

// Close releases the open shard file without touching the manifest: data
// past the last checkpoint stays in the file (resume truncates it), and
// the manifest keeps describing the durable prefix.
func (s *FileSink) Close() error {
	if s.cur == nil {
		return nil
	}
	if err := s.curBuf.Flush(); err != nil {
		return err
	}
	err := s.cur.Close()
	s.cur, s.curBuf, s.curCW = nil, nil, nil
	return err
}

// Examples returns the number of examples written so far (including any
// not yet checkpointed).
func (s *FileSink) Examples() int { return s.total }

// Shards returns the number of shard files written so far.
func (s *FileSink) Shards() int { return len(s.shards) }

// ReadManifest loads the manifest of a run directory.
func ReadManifest(dir string) (*Manifest, error) {
	return readManifest(filepath.Join(dir, manifestName))
}

func readManifest(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return &m, nil
}

// removeShards deletes shard files in dir that are not in keep (nil keep
// deletes every shard file).
func removeShards(dir string, keep map[string]bool) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "shard-") && strings.HasSuffix(name, ".ndjson") && !keep[name] {
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeManifest(path string, m Manifest) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := writeFileSync(tmp, append(b, '\n')); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	// The rename is only durable once the directory entry is: without this
	// fsync a crash after the rename can resurrect the previous manifest,
	// orphaning shards the new one had committed.
	return syncDir(filepath.Dir(path))
}

// writeFileSync writes b to path and syncs it to stable storage — the
// manifest must be durable before the rename publishes it.
func writeFileSync(path string, b []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		//lint:ignore err-ignored the write error is the failure being reported; Close here only releases the fd
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		//lint:ignore err-ignored the sync error is the failure being reported; Close here only releases the fd
		_ = f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory, making its entries (a just-renamed manifest
// above all) durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		//lint:ignore err-ignored the sync error is the failure being reported; Close here only releases the fd
		_ = d.Close()
		return err
	}
	return d.Close()
}
