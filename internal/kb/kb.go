// Package kb implements the external knowledge resources PYTHIA's annotator
// functions query: a ConceptNet-like graph (synonym / relatedTo /
// derivedFrom / isA edges) and a Wikipedia-title index.
//
// The graph is built from the concept vocabulary (internal/vocab) with
// noise injected deterministically: a fraction of true edges is dropped
// (coverage gaps -> annotator false negatives) and generic aliases such as
// "value" or "statistic" are attached to many words (spurious
// intersections -> annotator false positives). The paper's online APIs are
// replaced by in-memory lookups, so the 500k-table weak-supervision pass
// runs in seconds.
package kb

import (
	"sort"
	"strings"

	"repro/internal/detrand"
	"repro/internal/vocab"
)

// Relation enumerates the edge types the annotator functions use, matching
// Section III-B of the paper.
type Relation uint8

const (
	// Synonym edges ("syn" annotator).
	Synonym Relation = iota
	// RelatedTo edges ("relTo" annotator).
	RelatedTo
	// DerivedFrom edges ("der" annotator).
	DerivedFrom
	// IsA edges, pointing at hypernyms ("isA" annotator).
	IsA
	numRelations
)

// String returns the annotator-function name for the relation.
func (r Relation) String() string {
	switch r {
	case Synonym:
		return "syn"
	case RelatedTo:
		return "relTo"
	case DerivedFrom:
		return "der"
	case IsA:
		return "isA"
	default:
		return "rel?"
	}
}

// Options controls noise injection at build time.
type Options struct {
	// Seed drives all pseudo-random decisions; builds are deterministic
	// given (vocabulary, options).
	Seed int64
	// DropRate is the fraction of true edges omitted from the graph,
	// simulating incomplete coverage of the external resource.
	DropRate float64
	// GenericRate is the per-concept probability of attaching each generic
	// alias, simulating overly-broad ConceptNet neighbourhoods.
	GenericRate float64
}

// DefaultOptions reproduce the noise level calibrated for the paper-shaped
// results: annotators reach high precision but modest recall.
func DefaultOptions() Options {
	return Options{Seed: 1, DropRate: 0.25, GenericRate: 0.12}
}

// genericAliases are attached at random to many concepts. Some are pure
// noise; a few collide with genuine labels, which is what makes the
// annotator functions imprecise without filtering.
var genericAliases = []string{
	"value", "data", "figure", "record", "statistic", "number",
	"total", "rate", "level", "amount", "measure", "information",
	"quantity", "attribute", "field", "item",
}

// KB is the built knowledge base.
type KB struct {
	edges [numRelations]map[string][]string // normalized word -> aliases
	wiki  map[string][]string               // normalized word -> page titles
	dict  map[string]bool                   // dictionary for the LCS filter
}

// Build constructs the knowledge base from a vocabulary.
func Build(v *vocab.Vocabulary, opts Options) *KB {
	kb := &KB{wiki: make(map[string][]string), dict: make(map[string]bool)}
	for r := Relation(0); r < numRelations; r++ {
		kb.edges[r] = make(map[string][]string)
	}
	for _, c := range v.Concepts {
		kb.addConcept(c, opts)
	}
	kb.normalizeAll()
	return kb
}

// BuildDefault builds from the default vocabulary with default options.
func BuildDefault() *KB {
	return Build(vocab.Default(), DefaultOptions())
}

// codeSurfaces lists dataset-style header codes that look like words but
// that no lexical resource resolves (classic UCI column names).
var codeSurfaces = map[string]bool{
	"trestbps": true, "thalach": true, "chol": true, "fbs": true,
	"cp": true, "abv": true, "cfr": true, "rh": true,
	"sot": true, "reb": true, "ast": true, "tov": true, "vmax": true,
}

// lexicalSurface reports whether a surface form is something an external
// lexical resource (ConceptNet, Wikipedia search) would know: no digits or
// '%', no vowel-less abbreviation tokens, not a known dataset code.
func lexicalSurface(s string) bool {
	if codeSurfaces[strings.ToLower(strings.TrimSpace(s))] {
		return false
	}
	norm := vocab.Normalize(s)
	if norm == "" {
		return false
	}
	wordy := false
	for _, tok := range strings.Fields(norm) {
		if codeSurfaces[tok] {
			return false
		}
		hasVowel := false
		for _, r := range tok {
			if r >= '0' && r <= '9' {
				// A digit anywhere ("3FG%", "0_60") marks a dataset code.
				return false
			}
			switch r {
			case 'a', 'e', 'i', 'o', 'u', 'y':
				hasVowel = true
			}
		}
		if hasVowel && len(tok) >= 3 {
			wordy = true
		}
	}
	return wordy
}

// addConcept inserts one concept's alias edges under every *lexical*
// surface form. Acronym and code headers (FG%, trestbps) are deliberately
// not indexed: the external resources the annotators stand in for cannot
// resolve them, which is a major source of the annotators' recall gap.
func (kb *KB) addConcept(c vocab.Concept, opts Options) {
	keys := make([]string, 0, len(c.Surface)+1)
	for _, s := range c.Surface {
		if lexicalSurface(s) {
			keys = append(keys, vocab.Normalize(s))
		}
	}
	if lexicalSurface(c.ID) {
		keys = append(keys, vocab.Normalize(c.ID))
	}
	if len(keys) == 0 {
		return
	}

	add := func(rel Relation, alias, salt string) {
		a := strings.ToLower(strings.TrimSpace(alias))
		if a == "" {
			return
		}
		kb.dict[a] = true
		for _, t := range strings.Fields(a) {
			kb.dict[t] = true
		}
		if chance(opts.Seed, c.ID+"|drop|"+rel.String()+"|"+a+salt) < opts.DropRate {
			return // coverage gap
		}
		for _, k := range keys {
			kb.edges[rel][k] = append(kb.edges[rel][k], a)
		}
	}
	for _, a := range c.Synonyms {
		add(Synonym, a, "")
	}
	for _, a := range c.RelatedTo {
		add(RelatedTo, a, "")
	}
	for _, a := range c.DerivedFrom {
		add(DerivedFrom, a, "")
	}
	for _, a := range c.IsA {
		add(IsA, a, "")
	}
	for _, w := range c.Wiki {
		// Normalize titles the way the search API results are consumed:
		// lowercased, disambiguation qualifiers ("Shooting (basketball)")
		// stripped.
		title := strings.ToLower(w)
		if i := strings.Index(title, " ("); i > 0 {
			title = title[:i]
		}
		kb.dict[title] = true
		for _, t := range strings.Fields(title) {
			kb.dict[t] = true
		}
		if chance(opts.Seed, c.ID+"|dropwiki|"+w) >= opts.DropRate {
			for _, k := range keys {
				kb.wiki[k] = append(kb.wiki[k], title)
			}
		}
	}
	// Labels are human knowledge: they enter the dictionary (annotators can
	// recognize them as words) but NOT the graph unless an alias already
	// covers them. This is the annotators' recall ceiling.
	for _, l := range c.Labels {
		kb.dict[strings.ToLower(l)] = true
		for _, t := range strings.Fields(strings.ToLower(l)) {
			kb.dict[t] = true
		}
	}
	// Generic noise aliases on RelatedTo (the broadest ConceptNet relation).
	for _, g := range genericAliases {
		if chance(opts.Seed, c.ID+"|gen|"+g) < opts.GenericRate {
			for _, k := range keys {
				kb.edges[RelatedTo][k] = append(kb.edges[RelatedTo][k], g)
			}
		}
	}
	// Every surface token is a dictionary word.
	for _, k := range keys {
		for _, t := range strings.Fields(k) {
			kb.dict[t] = true
		}
	}
}

// normalizeAll sorts and dedups all alias lists for deterministic output.
func (kb *KB) normalizeAll() {
	for r := Relation(0); r < numRelations; r++ {
		for k, v := range kb.edges[r] {
			kb.edges[r][k] = dedupSorted(v)
		}
	}
	for k, v := range kb.wiki {
		kb.wiki[k] = dedupSorted(v)
	}
}

func dedupSorted(xs []string) []string {
	sort.Strings(xs)
	out := xs[:0]
	var prev string
	for i, x := range xs {
		if i == 0 || x != prev {
			out = append(out, x)
		}
		prev = x
	}
	return out
}

// chance hashes a salted key into [0, 1).
func chance(seed int64, key string) float64 {
	return detrand.Chance(seed, key)
}

// Aliases returns the graph neighbours of a word under one relation. The
// word is normalized first; unknown words return nothing (the paper's
// "A12" behaviour).
func (kb *KB) Aliases(word string, rel Relation) []string {
	if rel >= numRelations {
		return nil
	}
	return kb.edges[rel][vocab.Normalize(word)]
}

// WikiTitles returns the top page titles for a word, lowercased, mimicking
// the Wikipedia search API.
func (kb *KB) WikiTitles(word string) []string {
	return kb.wiki[vocab.Normalize(word)]
}

// InDictionary reports whether w is a known word. The LCS annotator uses
// this to discard meaningless substrings.
func (kb *KB) InDictionary(w string) bool {
	return kb.dict[strings.ToLower(strings.TrimSpace(w))]
}

// DictionarySize reports how many words the dictionary holds (for stats).
func (kb *KB) DictionarySize() int { return len(kb.dict) }

// DefinitionBags renders the knowledge base as token bags, one per indexed
// surface form: the form's own tokens plus the tokens of all its aliases
// and wiki titles. The metadata model pretrains its embeddings on them —
// the substitute for the semantic prior of a pre-trained language model.
func (kb *KB) DefinitionBags() [][]string {
	keys := map[string][]string{}
	addTokens := func(key, phrase string) {
		for _, t := range strings.Fields(phrase) {
			keys[key] = append(keys[key], t)
		}
	}
	for r := Relation(0); r < numRelations; r++ {
		for k, aliases := range kb.edges[r] {
			addTokens(k, k)
			for _, a := range aliases {
				addTokens(k, a)
			}
		}
	}
	for k, titles := range kb.wiki {
		addTokens(k, k)
		for _, t := range titles {
			addTokens(k, t)
		}
	}
	names := make([]string, 0, len(keys))
	for k := range keys {
		names = append(names, k)
	}
	sort.Strings(names)
	out := make([][]string, 0, len(names))
	for _, k := range names {
		out = append(out, dedupSorted(keys[k]))
	}
	return out
}
