package kb

import (
	"reflect"
	"testing"

	"repro/internal/vocab"
)

func TestBuildIsDeterministic(t *testing.T) {
	a := BuildDefault()
	b := BuildDefault()
	words := []string{"FG%", "length", "salary", "cap_color", "total_deaths"}
	for _, w := range words {
		for r := Relation(0); r < numRelations; r++ {
			if !reflect.DeepEqual(a.Aliases(w, r), b.Aliases(w, r)) {
				t.Errorf("non-deterministic aliases for %s/%s", w, r)
			}
		}
		if !reflect.DeepEqual(a.WikiTitles(w), b.WikiTitles(w)) {
			t.Errorf("non-deterministic wiki titles for %s", w)
		}
	}
}

func TestUnknownWordHasNoAliases(t *testing.T) {
	kb := BuildDefault()
	for r := Relation(0); r < numRelations; r++ {
		if got := kb.Aliases("A12", r); len(got) != 0 {
			t.Errorf("Aliases(A12, %s) = %v, want none", r, got)
		}
	}
	if got := kb.WikiTitles("A12"); len(got) != 0 {
		t.Errorf("WikiTitles(A12) = %v, want none", got)
	}
}

func TestSurfaceFormsShareAliases(t *testing.T) {
	kb := BuildDefault()
	// Both lexical surface forms of field_goal_pct must resolve to the same
	// alias sets (they denote the same concept).
	for r := Relation(0); r < numRelations; r++ {
		a := kb.Aliases("field goal percentage", r)
		b := kb.Aliases("field_goal_pct", r)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("surface forms diverge for %s: %v vs %v", r, a, b)
		}
	}
}

func TestAcronymSurfacesNotIndexed(t *testing.T) {
	// Dataset codes are outside what ConceptNet/Wikipedia can resolve; the
	// knowledge base must not index them (this drives the annotators'
	// recall gap on acronym tables).
	kb := BuildDefault()
	for _, code := range []string{"FG%", "3FG%", "trestbps", "thalach", "fbs", "0_60"} {
		for r := Relation(0); r < numRelations; r++ {
			if got := kb.Aliases(code, r); len(got) != 0 {
				t.Errorf("Aliases(%s, %s) = %v, want none", code, r, got)
			}
		}
	}
}

func TestLexicalSurface(t *testing.T) {
	cases := map[string]bool{
		"field_goal_pct":        true, // "field"/"goal" are words
		"field goal percentage": true,
		"FG%":                   false,
		"3FG%":                  false,
		"fg_pct":                false,
		"trestbps":              false, // curated code
		"length":                true,
		"sot":                   false,
		"":                      false,
	}
	for in, want := range cases {
		if got := lexicalSurface(in); got != want {
			t.Errorf("lexicalSurface(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestNoDropKeepsAllEdges(t *testing.T) {
	v := vocab.Default()
	kb := Build(v, Options{Seed: 1, DropRate: 0, GenericRate: 0})
	c, ok := v.ByID("field_goal_pct")
	if !ok {
		t.Fatal("missing concept")
	}
	got := kb.Aliases("field_goal_pct", IsA)
	for _, want := range c.IsA {
		found := false
		for _, g := range got {
			if g == want {
				found = true
			}
		}
		if !found {
			t.Errorf("IsA(%s) missing %q with DropRate 0: %v", c.ID, want, got)
		}
	}
}

func TestDropRateRemovesSomeEdges(t *testing.T) {
	v := vocab.Default()
	full := Build(v, Options{Seed: 1, DropRate: 0, GenericRate: 0})
	noisy := Build(v, Options{Seed: 1, DropRate: 0.5, GenericRate: 0})
	fullCount, noisyCount := 0, 0
	for _, c := range v.Concepts {
		for r := Relation(0); r < numRelations; r++ {
			fullCount += len(full.Aliases(c.ID, r))
			noisyCount += len(noisy.Aliases(c.ID, r))
		}
	}
	if noisyCount >= fullCount {
		t.Errorf("DropRate 0.5 kept %d of %d edges, expected a reduction", noisyCount, fullCount)
	}
	if noisyCount < fullCount/4 {
		t.Errorf("DropRate 0.5 kept only %d of %d edges, too aggressive", noisyCount, fullCount)
	}
}

func TestGenericNoiseAppears(t *testing.T) {
	v := vocab.Default()
	noisy := Build(v, Options{Seed: 1, DropRate: 0, GenericRate: 1})
	got := noisy.Aliases("fouls", RelatedTo)
	found := false
	for _, a := range got {
		if a == "statistic" || a == "value" {
			found = true
		}
	}
	if !found {
		t.Errorf("GenericRate 1 did not attach generic aliases: %v", got)
	}
}

func TestDictionary(t *testing.T) {
	kb := BuildDefault()
	// Labels always enter the dictionary even when dropped from the graph.
	for _, w := range []string{"shooting", "income", "dimension", "death rate", "color"} {
		if !kb.InDictionary(w) {
			t.Errorf("dictionary missing %q", w)
		}
	}
	if kb.InDictionary("qzxqzx") {
		t.Error("dictionary contains garbage word")
	}
	if kb.DictionarySize() < 200 {
		t.Errorf("dictionary size = %d, want >= 200", kb.DictionarySize())
	}
}

func TestWikiTitlesLowercased(t *testing.T) {
	kb := Build(vocab.Default(), Options{Seed: 1, DropRate: 0, GenericRate: 0})
	titles := kb.WikiTitles("field_goal_pct")
	if len(titles) == 0 {
		t.Fatal("no wiki titles for field_goal_pct")
	}
	for _, title := range titles {
		if title != toLower(title) {
			t.Errorf("title %q not lowercased", title)
		}
	}
}

func toLower(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] >= 'A' && b[i] <= 'Z' {
			b[i] += 'a' - 'A'
		}
	}
	return string(b)
}

func TestAliasListsSortedAndDeduped(t *testing.T) {
	kb := BuildDefault()
	for _, w := range []string{"salary", "length", "sales"} {
		for r := Relation(0); r < numRelations; r++ {
			as := kb.Aliases(w, r)
			for i := 1; i < len(as); i++ {
				if as[i-1] >= as[i] {
					t.Errorf("aliases for %s/%s not sorted/deduped: %v", w, r, as)
					break
				}
			}
		}
	}
}
