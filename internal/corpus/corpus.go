// Package corpus synthesizes the WebTables-like training corpus PYTHIA's
// weak supervision runs over. The paper samples 500k relational web tables
// with header rows; we generate them from the concept vocabulary so the
// whole pipeline is offline and deterministic.
//
// Realism knobs mirror what makes web tables hard: headers appear under
// acronym/abbreviated surface forms, get decorated with years or units,
// and tables carry meaningless junk columns. Schemas are sampled per
// domain, so genuinely ambiguous attribute pairs co-occur the way they do
// in real tables (a basketball table tends to contain both FG% and 3FG%).
package corpus

import (
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"repro/internal/detrand"
	"repro/internal/parallel"
	"repro/internal/telemetry"
	"repro/internal/vocab"
)

// Table is one synthetic web table: a header and formatted string cells.
// Weak supervision and prompt serialization only need strings, so cells
// are kept unparsed.
type Table struct {
	Name   string
	Domain string
	Header []string
	Rows   [][]string
	// ConceptIDs maps header positions to vocabulary concept IDs; junk
	// columns map to "". This is generator-side truth used only by tests
	// and diagnostics, never by the trained pipeline.
	ConceptIDs []string
}

// Options configures the generator.
type Options struct {
	Seed           int64
	MinCols        int
	MaxCols        int
	MinRows        int
	MaxRows        int
	AcronymRate    float64 // probability a header uses a secondary surface form
	DecorationRate float64 // probability a header is decorated (suffix year, prefix)
	JunkRate       float64 // probability of inserting one junk column
	MixRate        float64 // probability of importing a concept from another domain
	// Workers shards batch generation (Tables) across a worker pool
	// (0 = runtime.GOMAXPROCS, 1 = sequential). Table(i) depends only on
	// (options, i), so the batch is identical at every worker count.
	Workers int
}

// DefaultOptions is calibrated so annotators see realistic header noise.
func DefaultOptions() Options {
	return Options{
		Seed:           42,
		MinCols:        3,
		MaxCols:        8,
		MinRows:        4,
		MaxRows:        10,
		AcronymRate:    0.35,
		DecorationRate: 0.12,
		JunkRate:       0.15,
		MixRate:        0.20,
	}
}

// Generator produces deterministic synthetic web tables: Table(i) depends
// only on (options, i), so corpora can be generated in parallel and
// re-generated incrementally.
type Generator struct {
	vocab *vocab.Vocabulary
	opts  Options
}

// NewGenerator builds a generator over a vocabulary.
func NewGenerator(v *vocab.Vocabulary, opts Options) *Generator {
	if opts.MinCols < 2 {
		opts.MinCols = 2
	}
	if opts.MaxCols < opts.MinCols {
		opts.MaxCols = opts.MinCols
	}
	if opts.MaxRows < opts.MinRows {
		opts.MaxRows = opts.MinRows
	}
	return &Generator{vocab: v, opts: opts}
}

// NewDefaultGenerator uses the default vocabulary and options.
func NewDefaultGenerator() *Generator {
	return NewGenerator(vocab.Default(), DefaultOptions())
}

// Table generates the i-th table of the corpus.
func (g *Generator) Table(i int) Table {
	rng := detrand.Derive(g.opts.Seed, int64(i))
	domains := g.vocab.Domains()
	domain := domains[rng.Intn(len(domains))]
	pool := g.vocab.Domain(domain)

	ncols := g.opts.MinCols + rng.Intn(g.opts.MaxCols-g.opts.MinCols+1)

	// Sample distinct concepts from the domain, borrowing from other
	// domains when the pool is smaller than the target arity, and
	// occasionally importing one from elsewhere anyway.
	perm := rng.Perm(len(pool))
	var concepts []vocab.Concept
	taken := map[string]bool{}
	for _, p := range perm {
		if len(concepts) == ncols {
			break
		}
		concepts = append(concepts, pool[p])
		taken[pool[p].ID] = true
	}
	for guard := 0; len(concepts) < ncols && guard < 100; guard++ {
		other := g.vocab.Domain(domains[rng.Intn(len(domains))])
		c := other[rng.Intn(len(other))]
		if !taken[c.ID] {
			concepts = append(concepts, c)
			taken[c.ID] = true
		}
	}
	if len(concepts) > 1 && rng.Float64() < g.opts.MixRate {
		other := domains[rng.Intn(len(domains))]
		op := g.vocab.Domain(other)
		concepts[len(concepts)-1] = op[rng.Intn(len(op))]
	}

	t := Table{
		Name:   fmt.Sprintf("web_%s_%06d", domain, i),
		Domain: domain,
	}
	for _, c := range concepts {
		t.Header = append(t.Header, g.headerFor(c, rng))
		t.ConceptIDs = append(t.ConceptIDs, c.ID)
	}
	// Optionally insert one junk column at a random position.
	if rng.Float64() < g.opts.JunkRate {
		pos := rng.Intn(len(t.Header) + 1)
		junk := junkHeader(rng)
		t.Header = append(t.Header[:pos], append([]string{junk}, t.Header[pos:]...)...)
		t.ConceptIDs = append(t.ConceptIDs[:pos], append([]string{""}, t.ConceptIDs[pos:]...)...)
		concepts = append(concepts[:pos], append([]vocab.Concept{{}}, concepts[pos:]...)...)
	}

	nrows := g.opts.MinRows + rng.Intn(g.opts.MaxRows-g.opts.MinRows+1)
	for r := 0; r < nrows; r++ {
		row := make([]string, len(concepts))
		for c, concept := range concepts {
			if concept.ID == "" {
				row[c] = strconv.Itoa(rng.Intn(1000))
				continue
			}
			row[c] = CellValue(concept.Values, rng)
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// corpusMet holds the corpus stage's metric handles.
var corpusMet = struct {
	tables   *telemetry.Counter
	tablesNS *telemetry.Histogram
}{
	tables:   telemetry.Default().Counter("corpus.tables_generated"),
	tablesNS: telemetry.Default().LatencyHistogram("corpus.tables_ns"),
}

// Tables generates tables [0, n), sharded across Options.Workers workers.
func (g *Generator) Tables(n int) []Table {
	tm := corpusMet.tablesNS.Time()
	defer tm.Stop()
	corpusMet.tables.Add(int64(n))
	return parallel.Map(parallel.Workers(g.opts.Workers), n, g.Table)
}

// headerFor picks a surface form for a concept and may decorate it.
func (g *Generator) headerFor(c vocab.Concept, rng *rand.Rand) string {
	h := c.Surface[0]
	if len(c.Surface) > 1 && rng.Float64() < g.opts.AcronymRate {
		h = c.Surface[1+rng.Intn(len(c.Surface)-1)]
	}
	if rng.Float64() < g.opts.DecorationRate {
		switch rng.Intn(3) {
		case 0:
			h = h + "_" + strconv.Itoa(2015+rng.Intn(9))
		case 1:
			h = h + "_" + []string{"v2", "adj", "est", "raw"}[rng.Intn(4)]
		default:
			h = []string{"avg_", "cur_", "est_"}[rng.Intn(3)] + h
		}
	}
	return h
}

// junkHeader makes a meaningless header like the paper's "A12".
func junkHeader(rng *rand.Rand) string {
	switch rng.Intn(3) {
	case 0:
		return fmt.Sprintf("%c%d", 'A'+rng.Intn(26), rng.Intn(100))
	case 1:
		return fmt.Sprintf("col_%d", rng.Intn(40))
	default:
		return fmt.Sprintf("x%d", rng.Intn(20))
	}
}

// CellValue renders one cell for a value class.
func CellValue(vc vocab.ValueClass, rng *rand.Rand) string {
	switch vc.Kind {
	case "int":
		span := int64(vc.Max - vc.Min)
		if span <= 0 {
			span = 1
		}
		return strconv.FormatInt(int64(vc.Min)+rng.Int63n(span+1), 10)
	case "float":
		v := vc.Min + rng.Float64()*(vc.Max-vc.Min)
		return strconv.FormatFloat(v, 'f', vc.Decimals, 64)
	case "string":
		return vc.Categories[rng.Intn(len(vc.Categories))]
	case "date":
		base := time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC)
		return base.AddDate(0, 0, rng.Intn(1500)).Format("2006-01-02")
	default:
		return ""
	}
}

// Stats summarizes a corpus slice for diagnostics and the DESIGN.md
// inventory.
type Stats struct {
	Tables      int
	Columns     int
	Rows        int
	JunkColumns int
	Domains     map[string]int
}

// Summarize computes corpus statistics.
func Summarize(tables []Table) Stats {
	st := Stats{Domains: map[string]int{}}
	for _, t := range tables {
		st.Tables++
		st.Columns += len(t.Header)
		st.Rows += len(t.Rows)
		st.Domains[t.Domain]++
		for _, id := range t.ConceptIDs {
			if id == "" {
				st.JunkColumns++
			}
		}
	}
	return st
}
