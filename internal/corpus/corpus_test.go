package corpus

import (
	"math/rand"
	"reflect"
	"strconv"
	"testing"

	"repro/internal/vocab"
)

func TestGeneratorDeterministic(t *testing.T) {
	g1 := NewDefaultGenerator()
	g2 := NewDefaultGenerator()
	for i := 0; i < 50; i++ {
		a, b := g1.Table(i), g2.Table(i)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("table %d differs between identical generators", i)
		}
	}
}

func TestGeneratorShapeBounds(t *testing.T) {
	opts := DefaultOptions()
	g := NewGenerator(vocab.Default(), opts)
	for i := 0; i < 200; i++ {
		tab := g.Table(i)
		cols := len(tab.Header)
		if cols < opts.MinCols || cols > opts.MaxCols+1 { // +1 for junk column
			t.Errorf("table %d has %d columns, want within [%d, %d+1]", i, cols, opts.MinCols, opts.MaxCols)
		}
		if len(tab.Rows) < opts.MinRows || len(tab.Rows) > opts.MaxRows {
			t.Errorf("table %d has %d rows", i, len(tab.Rows))
		}
		if len(tab.ConceptIDs) != cols {
			t.Errorf("table %d concept ids misaligned: %d vs %d", i, len(tab.ConceptIDs), cols)
		}
		for _, row := range tab.Rows {
			if len(row) != cols {
				t.Errorf("table %d ragged row", i)
			}
		}
	}
}

func TestHeadersResolveToConcepts(t *testing.T) {
	// Undecorated headers must resolve back through vocab.Lookup; decorated
	// and junk headers may not — count both.
	g := NewDefaultGenerator()
	v := vocab.Default()
	resolved, total := 0, 0
	for i := 0; i < 300; i++ {
		tab := g.Table(i)
		for c, h := range tab.Header {
			if tab.ConceptIDs[c] == "" {
				continue
			}
			total++
			for _, cc := range v.Lookup(h) {
				if cc.ID == tab.ConceptIDs[c] {
					resolved++
					break
				}
			}
		}
	}
	frac := float64(resolved) / float64(total)
	if frac < 0.7 || frac > 0.98 {
		t.Errorf("resolvable headers = %.2f, want noisy but mostly resolvable (0.7-0.98)", frac)
	}
}

func TestAmbiguousPairsOccur(t *testing.T) {
	// Domain-coherent sampling must put truly ambiguous pairs in the same
	// table often enough to train on.
	g := NewDefaultGenerator()
	v := vocab.Default()
	tablesWithAmbiguity := 0
	n := 300
	for i := 0; i < n; i++ {
		tab := g.Table(i)
		found := false
		for a := 0; a < len(tab.ConceptIDs) && !found; a++ {
			for b := a + 1; b < len(tab.ConceptIDs) && !found; b++ {
				ca, ok1 := v.ByID(tab.ConceptIDs[a])
				cb, ok2 := v.ByID(tab.ConceptIDs[b])
				if ok1 && ok2 && len(vocab.SharedLabels(ca, cb)) > 0 {
					found = true
				}
			}
		}
		if found {
			tablesWithAmbiguity++
		}
	}
	frac := float64(tablesWithAmbiguity) / float64(n)
	if frac < 0.25 {
		t.Errorf("only %.2f of tables contain an ambiguous pair; corpus too sparse to train on", frac)
	}
}

func TestJunkColumnsAppear(t *testing.T) {
	g := NewDefaultGenerator()
	junk := 0
	for i := 0; i < 200; i++ {
		for _, id := range g.Table(i).ConceptIDs {
			if id == "" {
				junk++
			}
		}
	}
	if junk == 0 {
		t.Error("no junk columns generated; JunkRate not applied")
	}
}

func TestCellValue(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	intVC := vocab.ValueClass{Kind: "int", Min: 3, Max: 9}
	for i := 0; i < 100; i++ {
		v, err := strconv.Atoi(CellValue(intVC, rng))
		if err != nil || v < 3 || v > 9 {
			t.Fatalf("int cell out of range: %v %v", v, err)
		}
	}
	fVC := vocab.ValueClass{Kind: "float", Min: 0.5, Max: 1.5, Decimals: 2}
	for i := 0; i < 100; i++ {
		v, err := strconv.ParseFloat(CellValue(fVC, rng), 64)
		if err != nil || v < 0.49 || v > 1.51 {
			t.Fatalf("float cell out of range: %v %v", v, err)
		}
	}
	sVC := vocab.ValueClass{Kind: "string", Categories: []string{"a", "b"}}
	got := CellValue(sVC, rng)
	if got != "a" && got != "b" {
		t.Errorf("string cell = %q", got)
	}
	if got := CellValue(vocab.ValueClass{Kind: "date"}, rng); len(got) != 10 {
		t.Errorf("date cell = %q", got)
	}
	if got := CellValue(vocab.ValueClass{Kind: "bogus"}, rng); got != "" {
		t.Errorf("bogus kind = %q, want empty", got)
	}
}

func TestSummarize(t *testing.T) {
	g := NewDefaultGenerator()
	tabs := g.Tables(100)
	st := Summarize(tabs)
	if st.Tables != 100 {
		t.Errorf("tables = %d", st.Tables)
	}
	if st.Columns < 300 || st.Rows < 400 {
		t.Errorf("stats = %+v", st)
	}
	if len(st.Domains) < 5 {
		t.Errorf("domains covered = %d, want >= 5", len(st.Domains))
	}
}

func TestTableNamesUnique(t *testing.T) {
	g := NewDefaultGenerator()
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		n := g.Table(i).Name
		if seen[n] {
			t.Fatalf("duplicate table name %s", n)
		}
		seen[n] = true
	}
}

// TestTablesParallelMatchesSequential is the sharding contract of the
// corpus path: any worker count yields the exact tables of the sequential
// loop, in order.
func TestTablesParallelMatchesSequential(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = 1
	sequential := NewGenerator(vocab.Default(), opts).Tables(60)
	for _, workers := range []int{2, 4, 8} {
		opts.Workers = workers
		got := NewGenerator(vocab.Default(), opts).Tables(60)
		if !reflect.DeepEqual(sequential, got) {
			t.Fatalf("%d workers: parallel corpus differs from sequential", workers)
		}
	}
}
