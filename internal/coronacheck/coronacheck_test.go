package coronacheck

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/pythia"
)

var (
	improvedOnce sync.Once
	improvedSys  *System
	improvedErr  error
)

func improved(t *testing.T) *System {
	t.Helper()
	improvedOnce.Do(func() {
		improvedSys, improvedErr = TrainImproved(TrainOptions{Epochs: 6, Seed: 2})
	})
	if improvedErr != nil {
		t.Fatalf("TrainImproved: %v", improvedErr)
	}
	return improvedSys
}

func TestParseExtractsStructure(t *testing.T) {
	s := NewOriginal()
	p := s.parse("On 2021-06-08, France had 123 new confirmed cases.", lexicon)
	if p.country != "France" {
		t.Errorf("country = %q", p.country)
	}
	if !p.hasDate || p.date.Format() != "2021-06-08" {
		t.Errorf("date = %v %v", p.hasDate, p.date)
	}
	if len(p.attrs) != 1 || p.attrs[0] != "new_confirmed" {
		t.Errorf("attrs = %v", p.attrs)
	}
	if !p.hasValue || p.value != 123 {
		t.Errorf("value = %v %v", p.hasValue, p.value)
	}
}

func TestParseAmbiguousPhrase(t *testing.T) {
	s := NewOriginal()
	p := s.parse("France had a death rate of 3.2", lexicon)
	if len(p.attrs) != 2 {
		t.Errorf("death rate candidates = %v, want 2", p.attrs)
	}
	p = s.parse("In France, 500 covid cases.", lexicon)
	if len(p.attrs) != 3 {
		t.Errorf("cases candidates = %v, want 3", p.attrs)
	}
}

func TestParseUnknownPhraseAbstains(t *testing.T) {
	s := NewOriginal()
	p := s.parse("In France, 500 jabs administered.", lexicon)
	if len(p.attrs) != 0 {
		t.Errorf("unknown phrase parsed to %v", p.attrs)
	}
	// The gold lexicon knows it.
	p = s.parse("In France, 500 jabs administered.", goldLexicon)
	if len(p.attrs) != 1 || p.attrs[0] != "vaccinated" {
		t.Errorf("gold lexicon candidates = %v", p.attrs)
	}
}

func TestOriginalSingleInterpretation(t *testing.T) {
	s := NewOriginal()
	// Build a claim true for total_deaths on a specific row; "deaths" is
	// ambiguous (total_deaths first in lexicon order for "total deaths"
	// phrase is unambiguous, use "deaths").
	row := s.rows[0]
	c := row[s.col("country")].AsString()
	d := row[s.col("date")].Format()
	v := row[s.col("total_deaths")].Format()
	claim := "On " + d + ", " + c + " had " + v + " deaths."
	verdict := s.Verify(claim)
	// Original picks the first candidate (total_deaths) -> TRUE, even
	// though the claim is genuinely ambiguous.
	if verdict.Kind != True {
		t.Errorf("original verdict = %s, want TRUE (single interpretation)", verdict.Kind)
	}
	gold := s.GoldVerdict(claim)
	if gold.Kind != Ambiguous {
		t.Errorf("gold = %s, want AMBIGUOUS", gold.Kind)
	}
}

func TestGoldVerdictUniformWhenAllAgree(t *testing.T) {
	s := NewOriginal()
	row := s.rows[0]
	c := row[s.col("country")].AsString()
	claim := "In " + c + ", 1 total confirmed cases have been reported."
	if got := s.GoldVerdict(claim); got.Kind != False {
		t.Errorf("gold = %s, want FALSE (1 occurs on no date)", got.Kind)
	}
}

func TestUserLogComposition(t *testing.T) {
	log := UserLog(7)
	if len(log) != 100 {
		t.Fatalf("log size = %d, want 100", len(log))
	}
	counts := map[pythia.Structure]int{}
	complexCount := 0
	for _, cl := range log {
		counts[cl.Structure]++
		if cl.Complex {
			complexCount++
		}
	}
	if counts[pythia.RowAmb] != 40 || counts[pythia.AttributeAmb] != 8 ||
		counts[pythia.FullAmb] != 40 || counts[pythia.NoAmb] != 12 {
		t.Errorf("structure mix = %v, want 40/8/40/12", counts)
	}
	if complexCount != 11 {
		t.Errorf("complex claims = %d, want 11 (6 row + 5 none)", complexCount)
	}
}

func TestTableVIShape(t *testing.T) {
	log := UserLog(7)
	orig := NewOriginal()
	imp := improved(t)

	type acc struct{ correct, total int }
	score := func(s *System) map[pythia.Structure]*acc {
		out := map[pythia.Structure]*acc{}
		for _, st := range []pythia.Structure{pythia.RowAmb, pythia.AttributeAmb, pythia.FullAmb, pythia.NoAmb} {
			out[st] = &acc{}
		}
		for _, cl := range log {
			a := out[cl.Structure]
			a.total++
			if s.Verify(cl.Text).Kind == cl.Gold {
				a.correct++
			}
		}
		return out
	}
	so, si := score(orig), score(imp)
	t.Logf("row:  original %d/%d -> improved %d/%d", so[pythia.RowAmb].correct, so[pythia.RowAmb].total, si[pythia.RowAmb].correct, si[pythia.RowAmb].total)
	t.Logf("attr: original %d/%d -> improved %d/%d", so[pythia.AttributeAmb].correct, so[pythia.AttributeAmb].total, si[pythia.AttributeAmb].correct, si[pythia.AttributeAmb].total)
	t.Logf("full: original %d/%d -> improved %d/%d", so[pythia.FullAmb].correct, so[pythia.FullAmb].total, si[pythia.FullAmb].correct, si[pythia.FullAmb].total)
	t.Logf("none: original %d/%d -> improved %d/%d", so[pythia.NoAmb].correct, so[pythia.NoAmb].total, si[pythia.NoAmb].correct, si[pythia.NoAmb].total)

	// Shape assertions from Table VI.
	if so[pythia.AttributeAmb].correct != 0 {
		t.Errorf("original attr accuracy = %d, want 0", so[pythia.AttributeAmb].correct)
	}
	if so[pythia.FullAmb].correct != 0 {
		t.Errorf("original full accuracy = %d, want 0", so[pythia.FullAmb].correct)
	}
	if si[pythia.AttributeAmb].correct < 6 {
		t.Errorf("improved attr accuracy = %d, want >= 6", si[pythia.AttributeAmb].correct)
	}
	if si[pythia.FullAmb].correct < 20 {
		t.Errorf("improved full accuracy = %d, want >= 20", si[pythia.FullAmb].correct)
	}
	if si[pythia.RowAmb].correct < so[pythia.RowAmb].correct {
		t.Errorf("improved row regressed: %d < %d", si[pythia.RowAmb].correct, so[pythia.RowAmb].correct)
	}
	if si[pythia.NoAmb].correct < so[pythia.NoAmb].correct {
		t.Errorf("improved none regressed: %d < %d", si[pythia.NoAmb].correct, so[pythia.NoAmb].correct)
	}
	totalO, totalI := 0, 0
	for _, a := range so {
		totalO += a.correct
	}
	for _, a := range si {
		totalI += a.correct
	}
	t.Logf("total: original %d/100 -> improved %d/100", totalO, totalI)
	if totalI < totalO+25 {
		t.Errorf("improvement too small: %d -> %d", totalO, totalI)
	}
}

func TestUserLogDeterministic(t *testing.T) {
	a, b := UserLog(3), UserLog(3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("log not deterministic")
		}
	}
}

func TestVerifyParseFailureDefaultsFalse(t *testing.T) {
	s := NewOriginal()
	if got := s.Verify("complete gibberish with no structure"); got.Kind != False {
		t.Errorf("verdict = %s, want FALSE", got.Kind)
	}
}

func TestDetectorClasses(t *testing.T) {
	imp := improved(t)
	// A fully specified claim should be detected as not ambiguous.
	row := imp.rows[0]
	c := row[imp.col("country")].AsString()
	d := row[imp.col("date")].Format()
	claim := "On " + d + ", " + c + " had 42 new confirmed cases."
	if cls := imp.detect(claim); cls != classNone {
		t.Logf("note: detector class for complete claim = %d (want %d); acceptable if rare", cls, classNone)
	}
	if !strings.Contains(claim, c) {
		t.Fatal("test setup broken")
	}
}
