package coronacheck

import (
	"fmt"
	"math/rand"

	"repro/internal/detrand"
	"repro/internal/pythia"
	"repro/internal/relation"
)

// LogClaim is one entry of the simulated CoronaCheck user log: the claim
// text, its annotated ambiguity structure, and the gold verdict.
type LogClaim struct {
	Text      string
	Structure pythia.Structure
	Gold      VerdictKind
	// Complex marks claims needing aggregation or trend reasoning that
	// neither system supports (5% of the paper's annotated claims).
	Complex bool
}

// UserLog builds the 100-claim log with the distribution the paper reports
// for the production system: 40 exclusively row-ambiguous, 8 exclusively
// attribute-ambiguous, 40 fully ambiguous, 12 without ambiguity. Error
// sources mirror the paper's analysis: a slice of claims use paraphrases
// outside the deployed lexicon, and a few need unsupported aggregations.
func UserLog(seed int64) []LogClaim {
	s := NewOriginal()
	rng := detrand.New(seed)
	var log []LogClaim
	add := func(text string, st pythia.Structure, gold VerdictKind, complex bool) {
		log = append(log, LogClaim{Text: text, Structure: st, Gold: gold, Complex: complex})
	}
	// Convenience accessors over the Covid table.
	rows := s.rows
	cell := func(r int, attr string) relation.Value { return rows[r][s.col(attr)] }
	country := func(r int) string { return cell(r, "country").AsString() }
	date := func(r int) string { return cell(r, "date").Format() }
	pick := func() int { return rng.Intn(len(rows)) }

	// --- Row ambiguity (40): country given, date missing. -----------------
	// 32 cite values occurring on no date: every interpretation is false.
	for i := 0; i < 32; i++ {
		r := pick()
		attr, phrase := "total_confirmed", "total confirmed cases"
		if i%3 == 1 {
			attr, phrase = "total_deaths", "total deaths"
		} else if i%3 == 2 {
			attr, phrase = "vaccinated", "people vaccinated"
		}
		wrong := cell(r, attr).AsFloat() + float64(3+rng.Intn(5))
		add(fmt.Sprintf("In %s, %s %s have been reported.", country(r), formatNum(wrong), phrase),
			pythia.RowAmb, False, false)
	}
	// 6 complex trend claims (true, unsupported by both systems).
	complexRow := []string{
		"An exponential increase in total confirmed cases has been recorded in %s.",
		"%s saw its highest daily deaths during the observed period.",
		"Total confirmed cases kept rising week over week in %s.",
		"The vaccination campaign accelerated sharply in %s.",
		"%s recorded its worst week of new confirmed cases in June 2021.",
		"Deaths doubled within the observed weeks in %s.",
	}
	for _, tpl := range complexRow {
		r := pick()
		add(fmt.Sprintf(tpl, country(r)), pythia.RowAmb, True, true)
	}
	// 2 cite a value true on one date only: interpretations disagree.
	for i := 0; i < 2; i++ {
		r := pick()
		v := cell(r, "new_deaths").Format()
		add(fmt.Sprintf("In %s, %s new deaths have been reported.", country(r), v),
			pythia.RowAmb, Ambiguous, false)
	}

	// --- Attribute ambiguity (8): country and date given. -----------------
	// 7 use a label spanning two attributes with a value matching one side.
	for i := 0; i < 7; i++ {
		r := pick()
		attr, phrase := "total_fatality_rate", "death rate"
		if i%2 == 1 {
			attr, phrase = "total_deaths", "deaths"
		}
		v := cell(r, attr).Format()
		add(fmt.Sprintf("On %s, %s had %s %s.", date(r), country(r), v, phrase),
			pythia.AttributeAmb, Ambiguous, false)
	}
	// 1 uses a paraphrase outside the deployed lexicon.
	{
		r := pick()
		v := cell(r, "total_deaths").Format()
		add(fmt.Sprintf("On %s, %s counted %s covid victims.", date(r), country(r), v),
			pythia.AttributeAmb, Ambiguous, false)
	}

	// --- Full ambiguity (40): ambiguous label AND missing date/country. ---
	// 28 clean: value matches one (attr, row) interpretation.
	for i := 0; i < 28; i++ {
		r := pick()
		attr := []string{"total_confirmed", "new_confirmed", "active_cases"}[i%3]
		v := cell(r, attr).Format()
		if i%4 == 3 {
			// No country either ("35000 new covid cases today").
			add(fmt.Sprintf("%s covid cases today.", v), pythia.FullAmb, Ambiguous, false)
		} else {
			add(fmt.Sprintf("In %s, %s covid cases.", country(r), v), pythia.FullAmb, Ambiguous, false)
		}
	}
	// 12 use paraphrases outside the deployed lexicon.
	for i := 0; i < 12; i++ {
		r := pick()
		if i%2 == 0 {
			v := cell(r, "new_confirmed").Format()
			add(fmt.Sprintf("In %s, %s positive tests recorded.", country(r), v),
				pythia.FullAmb, Ambiguous, false)
		} else {
			v := cell(r, "vaccinated").Format()
			add(fmt.Sprintf("%s jabs administered in %s.", v, country(r)),
				pythia.FullAmb, Ambiguous, false)
		}
	}

	// --- No ambiguity (12): complete subject, single-attribute phrase. ----
	// 7 simple (4 true, 3 false).
	for i := 0; i < 7; i++ {
		r := pick()
		attr, phrase := "new_confirmed", "new confirmed cases"
		if i%2 == 1 {
			attr, phrase = "total_recovered", "recoveries"
		}
		v := cell(r, attr).AsFloat()
		gold := True
		if i >= 4 {
			v += float64(2 + rng.Intn(7))
			gold = False
		}
		add(fmt.Sprintf("On %s, %s had %s %s.", date(r), country(r), formatNum(v), phrase),
			pythia.NoAmb, gold, false)
	}
	// 5 complex (aggregations; both systems unsupported).
	complexNone := []string{
		"The maximum number of daily new confirmed cases in %s during the period was %s.",
		"On average, %s recorded around %s new confirmed cases per observed day.",
		"A record of vaccinations was observed in %s after the first observed week (%s total).",
		"%s's cumulative deaths grew by %s over the observed period.",
		"The sum of active cases across the weeks in %s exceeded %s.",
	}
	for _, tpl := range complexNone {
		// Use a non-latest row so the original system's latest-date default
		// cannot be right by accident (gold is an aggregate over the period).
		r := pickNonLatest(rng, len(rows))
		add(fmt.Sprintf(tpl, country(r), cell(r, "new_confirmed").Format()),
			pythia.NoAmb, True, true)
	}
	return log
}

// pickNonLatest picks a row index avoiding each country's latest date. The
// Covid table stores six consecutive weekly rows per country, so the latest
// is the sixth of each block.
func pickNonLatest(rng *rand.Rand, n int) int {
	block := rng.Intn(n / 6)
	return block*6 + rng.Intn(5)
}

// formatNum renders a float the way the claims cite it (integers plain).
func formatNum(f float64) string {
	if f == float64(int64(f)) {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%.2f", f)
}
