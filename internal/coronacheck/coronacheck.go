// Package coronacheck reproduces the CoronaCheck application of the Table
// VI experiment: verification of statistical COVID-19 claims against the
// Covid table.
//
// Two systems share one claim parser (country / date / attribute-phrase /
// value extraction over a phrase lexicon). The *original* system resolves
// every claim to a single interpretation — first attribute candidate,
// latest date when missing — exactly the behaviour that makes it fail on
// ambiguous claims. The *improved* system adds a structure detector trained
// on PYTHIA-generated examples; when it flags ambiguity it enumerates every
// interpretation and reports the combined verdict.
package coronacheck

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/pythia"
	"repro/internal/relation"
	"repro/internal/serialize"
)

// VerdictKind is the outcome of verifying one claim.
type VerdictKind string

// Verdict kinds. Ambiguous means the interpretations disagree, so the
// correct answer is per-interpretation ("True for total_deaths, False
// otherwise").
const (
	True      VerdictKind = "TRUE"
	False     VerdictKind = "FALSE"
	Ambiguous VerdictKind = "AMBIGUOUS"
)

// Verdict is a verification result.
type Verdict struct {
	Kind VerdictKind
	// PerInterpretation maps "attr@country/date" to the truth value of
	// that interpretation (filled when interpretations were enumerated).
	PerInterpretation map[string]bool
}

// phrase maps a surface phrase to its candidate attributes. Phrases absent
// from the lexicon simulate the paraphrases real users type that the
// deployed system cannot parse.
type phrase struct {
	text  string
	attrs []string
}

// lexicon is the phrase table both systems share; longest match wins.
var lexicon = []phrase{
	{"total confirmed cases", []string{"total_confirmed"}},
	{"cumulative cases", []string{"total_confirmed"}},
	{"new confirmed cases", []string{"new_confirmed"}},
	{"daily cases", []string{"new_confirmed"}},
	{"active cases", []string{"active_cases"}},
	{"confirmed cases", []string{"total_confirmed", "new_confirmed"}},
	{"covid cases", []string{"total_confirmed", "new_confirmed", "active_cases"}},
	{"cases", []string{"total_confirmed", "new_confirmed", "active_cases"}},
	{"infections", []string{"total_confirmed", "new_confirmed", "active_cases"}},
	{"total deaths", []string{"total_deaths"}},
	{"new deaths", []string{"new_deaths"}},
	{"deaths", []string{"total_deaths", "new_deaths"}},
	{"fatalities", []string{"total_deaths", "new_deaths"}},
	{"fatality rate", []string{"total_fatality_rate"}},
	{"mortality rate", []string{"total_mortality_rate"}},
	{"death rate", []string{"total_fatality_rate", "total_mortality_rate"}},
	{"people vaccinated", []string{"vaccinated"}},
	{"vaccinations", []string{"vaccinated"}},
	{"recoveries", []string{"total_recovered"}},
	{"recovered", []string{"total_recovered"}},
}

// goldLexicon extends the lexicon with the user paraphrases the deployed
// system does not know. Gold verdict computation uses it; the systems never
// see it.
var goldLexicon = append([]phrase{
	{"positive tests recorded", []string{"new_confirmed"}},
	{"jabs administered", []string{"vaccinated"}},
	{"covid victims", []string{"total_deaths", "new_deaths"}},
}, lexicon...)

// parsed is the structured form of a claim.
type parsed struct {
	country  string // "" when missing
	date     relation.Value
	hasDate  bool
	attrs    []string // candidate attributes, lexicon order
	value    float64
	hasValue bool
}

// System verifies claims against the Covid table.
type System struct {
	ds   *data.Dataset
	rows []relation.Row
	// detector is nil for the original system; the improved system uses it
	// to decide when to enumerate interpretations.
	detector *nn.TextClassifier
	tok      *serialize.Tokenizer
}

// structure classes for the detector.
const (
	classNone = iota
	classRow
	classAttr
	classFull
	numClasses
)

// NewOriginal builds the pre-PYTHIA system.
func NewOriginal() *System {
	d := data.MustLoad("Covid")
	return &System{ds: d, rows: d.Table.Rows}
}

// parse extracts the structured claim using the given lexicon.
func (s *System) parse(text string, lex []phrase) parsed {
	low := strings.ToLower(text)
	var p parsed
	// Country: match table values.
	for _, row := range s.rows {
		c := row[s.col("country")].AsString()
		if strings.Contains(low, strings.ToLower(c)) {
			p.country = c
			break
		}
	}
	// Date: ISO token anywhere in the claim.
	for _, w := range strings.Fields(low) {
		w = strings.Trim(w, ".,?!()")
		if v, err := relation.ParseValue(w, relation.KindDate); err == nil && !v.IsNull() {
			p.date, p.hasDate = v, true
			break
		}
	}
	// Attribute phrase: longest match wins.
	best := -1
	for i, ph := range lex {
		if strings.Contains(low, ph.text) {
			if best == -1 || len(ph.text) > len(lex[best].text) {
				best = i
			}
		}
	}
	if best >= 0 {
		p.attrs = lex[best].attrs
	}
	// Value: first plain number (commas stripped, date token excluded).
	for _, w := range strings.Fields(low) {
		w = strings.Trim(strings.ReplaceAll(w, ",", ""), ".?!()")
		if w == "" || w == p.dateToken() {
			continue
		}
		f, err := strconv.ParseFloat(w, 64)
		if err != nil {
			continue
		}
		p.value, p.hasValue = f, true
		break
	}
	return p
}

// dateToken renders the parsed date back to its ISO token.
func (p parsed) dateToken() string {
	if !p.hasDate {
		return ""
	}
	return p.date.Format()
}

func (s *System) col(name string) int { return s.ds.Table.Schema.Index(name) }

// interpretations enumerates (attr, row) readings of a parsed claim. When
// single is true, it collapses to the original system's unique reading:
// first attribute, latest date, first country.
func (s *System) interpretations(p parsed, single bool) map[string]bool {
	if len(p.attrs) == 0 || !p.hasValue {
		return nil
	}
	attrs := p.attrs
	if single {
		attrs = attrs[:1]
	}
	var rows []relation.Row
	for _, row := range s.rows {
		if p.country != "" && row[s.col("country")].AsString() != p.country {
			continue
		}
		if p.hasDate && !row[s.col("date")].Equal(p.date) {
			continue
		}
		rows = append(rows, row)
	}
	if len(rows) == 0 {
		return nil
	}
	if single && len(rows) > 1 {
		// Original behaviour: latest date (and, when the country is also
		// missing, the first country alphabetically).
		sort.SliceStable(rows, func(i, j int) bool {
			ci := rows[i][s.col("country")].AsString()
			cj := rows[j][s.col("country")].AsString()
			if ci != cj {
				return ci < cj
			}
			return rows[i][s.col("date")].AsDays() > rows[j][s.col("date")].AsDays()
		})
		rows = rows[:1]
	}
	out := map[string]bool{}
	for _, attr := range attrs {
		ci := s.col(attr)
		if ci < 0 {
			continue
		}
		for _, row := range rows {
			key := fmt.Sprintf("%s@%s/%s", attr, row[s.col("country")].AsString(), row[s.col("date")].Format())
			cell := row[ci]
			truth := false
			if cell.Kind().Numeric() {
				truth = cell.AsFloat() == p.value
			}
			out[key] = truth
		}
	}
	return out
}

// combine folds per-interpretation truths into a verdict.
func combine(interp map[string]bool) Verdict {
	if len(interp) == 0 {
		return Verdict{Kind: False}
	}
	anyTrue, anyFalse := false, false
	for _, t := range interp {
		if t {
			anyTrue = true
		} else {
			anyFalse = true
		}
	}
	switch {
	case anyTrue && anyFalse:
		return Verdict{Kind: Ambiguous, PerInterpretation: interp}
	case anyTrue:
		return Verdict{Kind: True, PerInterpretation: interp}
	default:
		return Verdict{Kind: False, PerInterpretation: interp}
	}
}

// Verify classifies one claim.
func (s *System) Verify(text string) Verdict {
	p := s.parse(text, lexicon)
	if s.detector == nil {
		return combine(s.interpretations(p, true))
	}
	class := s.detect(text)
	if class == classNone {
		return combine(s.interpretations(p, true))
	}
	return combine(s.interpretations(p, false))
}

// GoldVerdict computes the ground-truth verdict with the full lexicon and
// exhaustive interpretation enumeration.
func (s *System) GoldVerdict(text string) Verdict {
	p := s.parse(text, goldLexicon)
	return combine(s.interpretations(p, false))
}

// ---------------------------------------------------------------------------
// The PYTHIA-trained structure detector.
// ---------------------------------------------------------------------------

// encodeClaim tokenizes a claim with date/country indicator features.
func (s *System) encodeClaim(text string, fit bool) []int {
	low := strings.ToLower(text)
	var tokens []string
	for _, w := range strings.Fields(low) {
		w = strings.Trim(w, ".,?!'\"()")
		if w == "" {
			continue
		}
		tokens = append(tokens, serialize.CellTokens(w, 3)...)
	}
	p := s.parse(text, lexicon)
	if p.hasDate {
		tokens = append(tokens, "<has_date>")
	}
	if p.country != "" {
		tokens = append(tokens, "<has_country>")
	}
	if len(p.attrs) > 1 {
		tokens = append(tokens, "<multi_attr>")
	}
	if fit {
		s.tok.Fit(tokens)
	}
	return s.tok.Encode(tokens)
}

func (s *System) detect(text string) int {
	ids := s.encodeClaim(text, false)
	class, _ := s.detector.Predict(ids, nil)
	return class
}

// TrainOptions controls improved-system training.
type TrainOptions struct {
	Epochs int
	Seed   int64
}

// TrainImproved builds the ambiguity-aware system: PYTHIA examples over the
// Covid table (all three structures, both generation modes) are merged
// 50/50 with non-ambiguous examples and train the structure detector.
func TrainImproved(opts TrainOptions) (*System, error) {
	if opts.Epochs <= 0 {
		opts.Epochs = 6
	}
	s := NewOriginal()
	s.tok = serialize.NewTokenizer()

	d := s.ds
	pairs := covidGroundTruthPairs(d)
	md, err := pythia.WithPairs(d.Table, pairs)
	if err != nil {
		return nil, fmt.Errorf("coronacheck: %w", err)
	}
	g := pythia.NewGenerator(d.Table, md)

	type labeled struct {
		text  string
		class int
	}
	var raw []labeled
	// Ambiguous examples from both generation modes.
	for _, mode := range []pythia.Mode{pythia.TextGeneration, pythia.Templates} {
		exs, err := g.Generate(pythia.Options{Mode: mode, Seed: opts.Seed, MaxPerQuery: 8, Questions: mode == pythia.TextGeneration})
		if err != nil {
			return nil, fmt.Errorf("coronacheck: %w", err)
		}
		for _, ex := range exs {
			class := classAttr
			switch ex.Structure {
			case pythia.RowAmb:
				class = classRow
			case pythia.FullAmb:
				class = classFull
			}
			raw = append(raw, labeled{text: ex.Text, class: class})
		}
	}
	// Non-ambiguous examples to a 50/50 ratio, as the paper describes.
	plain, err := g.NotAmbiguous(pythia.Options{Seed: opts.Seed + 1, MaxPerQuery: 30, Questions: true})
	if err != nil {
		return nil, fmt.Errorf("coronacheck: %w", err)
	}
	target := len(raw)
	for i, ex := range plain {
		if i >= target {
			break
		}
		raw = append(raw, labeled{text: ex.Text, class: classNone})
	}
	if len(raw) == 0 {
		return nil, fmt.Errorf("coronacheck: no training examples generated")
	}

	var examples []nn.Example
	for _, r := range raw {
		s.encodeClaim(r.text, true)
	}
	s.tok.Freeze()
	for _, r := range raw {
		examples = append(examples, nn.Example{IDs: s.encodeClaim(r.text, false), Class: r.class})
	}
	s.detector = nn.NewTextClassifier(nn.Config{
		VocabSize: s.tok.Size(),
		Classes:   numClasses,
		Seed:      opts.Seed,
	})
	s.detector.Train(examples, nn.TrainOptions{Epochs: opts.Epochs, LR: 3e-3, Seed: opts.Seed + 1})
	return s, nil
}

// covidGroundTruthPairs lists the ambiguous attribute pairs of the Covid
// table with the labels users actually type (Section VI-C's examples).
func covidGroundTruthPairs(d *data.Dataset) []model.Pair {
	var out []model.Pair
	for _, gt := range d.GroundTruthPairs() {
		out = append(out, model.Pair{AttrA: gt.AttrA, AttrB: gt.AttrB, Label: gt.Labels[0]})
	}
	return out
}
