package detrand

import (
	"hash/fnv"
	"math/rand"
	"testing"
)

// TestNewMatchesLegacyConstruction pins New and Derive to the expressions
// they consolidated, so corpora generated before the refactor stay
// byte-identical to corpora generated after it.
func TestNewMatchesLegacyConstruction(t *testing.T) {
	a := New(42)
	b := rand.New(rand.NewSource(42))
	for i := 0; i < 32; i++ {
		if x, y := a.Int63(), b.Int63(); x != y {
			t.Fatalf("draw %d: New(42)=%d, legacy=%d", i, x, y)
		}
	}
	c := Derive(42, 7)
	d := rand.New(rand.NewSource(42*1_000_003 + 7))
	for i := 0; i < 32; i++ {
		if x, y := c.Int63(), d.Int63(); x != y {
			t.Fatalf("draw %d: Derive(42,7)=%d, legacy=%d", i, x, y)
		}
	}
}

func TestOr(t *testing.T) {
	injected := New(1)
	if Or(injected, 99) != injected {
		t.Error("Or must return the injected generator when non-nil")
	}
	fallback := Or(nil, 99)
	want := New(99)
	if fallback.Int63() != want.Int63() {
		t.Error("Or(nil, seed) must behave like New(seed)")
	}
}

// TestChancePinned replicates the FNV-1a construction Chance replaced
// (eight little-endian seed bytes, then the key) and checks determinism
// and range.
func TestChancePinned(t *testing.T) {
	const seed, key = int64(7), "attrA\x00attrB"
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(seed >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(key))
	want := float64(h.Sum64()%1_000_000) / 1_000_000
	if got := Chance(seed, key); got != want {
		t.Errorf("Chance(%d, %q) = %v, want %v", seed, key, got, want)
	}
	if got := Chance(seed, key); got != Chance(seed, key) {
		t.Errorf("Chance is not deterministic: %v", got)
	}
	for _, key := range []string{"", "x", "a long key with spaces"} {
		if c := Chance(3, key); c < 0 || c >= 1 {
			t.Errorf("Chance(3, %q) = %v out of [0,1)", key, c)
		}
	}
}

func TestPick(t *testing.T) {
	const n = 5
	for _, parts := range [][]string{{}, {"a"}, {"a", "b"}, {"ab"}, {"a", "bc"}} {
		p := Pick(11, n, parts...)
		if p < 0 || p >= n {
			t.Errorf("Pick(11, %d, %v) = %d out of range", n, parts, p)
		}
		if p != Pick(11, n, parts...) {
			t.Errorf("Pick not deterministic for %v", parts)
		}
	}
	// Length delimiting: ("ab","c") and ("a","bc") must hash differently.
	if Pick(11, 1<<30, "ab", "c") == Pick(11, 1<<30, "a", "bc") {
		t.Error(`Pick("ab","c") collided with Pick("a","bc"); parts are not length-delimited`)
	}
}
