// Package detrand is the single home for deterministic pseudo-randomness
// in the PYTHIA reproduction. Every stochastic decision in the pipeline
// must be pinned to an experiment seed, or the generated (a-query,
// evidence, text) corpora drift between runs; pythia-lint's
// det-global-rand rule enforces that no package draws from math/rand's
// process-global source, and this package supplies what they use instead:
//
//   - New and Derive construct injectable *rand.Rand generators,
//   - Or resolves an optionally injected generator against a fallback seed,
//   - Chance and Pick make stateless hash-based draws for code that needs
//     a reproducible decision per key without carrying generator state.
//
// The constructions intentionally match the expressions they replaced
// (rand.NewSource(seed), the corpus stream formula, and the FNV-1a salt
// mixing in kb, textgen and userstudy), so corpora generated before the
// consolidation are byte-identical to corpora generated after it.
package detrand

import (
	"hash/fnv"
	"math/rand"
	"sync"
)

// New returns a generator seeded with seed.
func New(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Derive returns a generator for an indexed stream under a base seed, so
// work items can be generated independently (and in parallel) while the
// i-th item depends only on (seed, i). The multiplier spreads consecutive
// seeds far apart in the source's state space.
func Derive(seed, stream int64) *rand.Rand {
	return rand.New(rand.NewSource(seed*1_000_003 + stream))
}

// Or returns rng when non-nil, else a fresh generator seeded with seed.
// It resolves the "injected *rand.Rand with a seed fallback" option
// pattern used across the public APIs.
func Or(rng *rand.Rand, seed int64) *rand.Rand {
	if rng != nil {
		return rng
	}
	return New(seed)
}

// lockedSource serializes access to a rand source so the shared Global
// generator is safe for concurrent use (matching the math/rand global it
// replaces, which is also internally locked).
type lockedSource struct {
	mu  sync.Mutex
	src rand.Source64
}

func (s *lockedSource) Int63() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.src.Int63()
}

func (s *lockedSource) Uint64() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.src.Uint64()
}

func (s *lockedSource) Seed(seed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.src.Seed(seed)
}

// global is seeded with a fixed constant so every run draws the same
// stream — the defining difference from math/rand's auto-seeded global.
var global = rand.New(&lockedSource{src: rand.NewSource(1).(rand.Source64)})

// Global returns the process-wide deterministic generator: seeded with a
// fixed constant and safe for concurrent use. It is the mechanical
// replacement pythia-lint -fix substitutes for package-global math/rand
// calls; prefer an injected per-stream generator (New, Derive) wherever
// the call site can reach one, because a shared stream makes draw order
// depend on goroutine interleaving under concurrency.
func Global() *rand.Rand { return global }

// hashSeed feeds the seed into h as eight little-endian bytes.
func hashSeed(h interface{ Write([]byte) (int, error) }, seed int64) {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(seed >> (8 * i))
	}
	//lint:ignore err-ignored hash.Hash.Write is documented to never return an error
	h.Write(b[:])
}

// Chance hashes a salted key into [0, 1). It is the stateless draw used
// for per-entity decisions (KB edge dropping, simulated judge outcomes):
// the result depends only on (seed, key), never on evaluation order.
func Chance(seed int64, key string) float64 {
	h := fnv.New64a()
	hashSeed(h, seed)
	//lint:ignore err-ignored hash.Hash.Write is documented to never return an error
	h.Write([]byte(key))
	return float64(h.Sum64()%1_000_000) / 1_000_000
}

// Pick hashes the parts with the seed into [0, n), for seeded selection
// among n phrasing variants. Parts are length-delimited so ("ab", "c")
// and ("a", "bc") land on different variants.
func Pick(seed int64, n int, parts ...string) int {
	h := fnv.New64a()
	hashSeed(h, seed)
	for _, p := range parts {
		//lint:ignore err-ignored hash.Hash.Write is documented to never return an error
		h.Write([]byte(p))
		//lint:ignore err-ignored hash.Hash.Write is documented to never return an error
		h.Write([]byte{0x1f})
	}
	return int(h.Sum64() % uint64(n))
}
