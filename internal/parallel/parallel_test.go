package parallel

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	procs := runtime.GOMAXPROCS(0)
	if got := Workers(0); got != procs {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, procs)
	}
	if got := Workers(-2); got != procs {
		t.Errorf("Workers(-2) = %d, want GOMAXPROCS %d", got, procs)
	}
}

func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		out := Map(workers, 100, func(i int) int { return i * i })
		if len(out) != 100 {
			t.Fatalf("workers=%d: got %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmptyAndTiny(t *testing.T) {
	if out := Map(8, 0, func(i int) int { return i }); len(out) != 0 {
		t.Errorf("n=0: got %d results", len(out))
	}
	// More workers than work must not deadlock or duplicate.
	out := Map(64, 3, func(i int) int { return i })
	if fmt.Sprint(out) != "[0 1 2]" {
		t.Errorf("n=3: got %v", out)
	}
}

func TestMapErrReportsLowestIndex(t *testing.T) {
	fail := map[int]bool{5: true, 10: true, 63: true}
	_, err := MapErr(8, 64, func(i int) (int, error) {
		if fail[i] {
			return 0, fmt.Errorf("unit %d failed", i)
		}
		return i, nil
	})
	if err == nil || err.Error() != "unit 5 failed" {
		t.Fatalf("want lowest-index error 'unit 5 failed', got %v", err)
	}
}

func TestMapErrNoError(t *testing.T) {
	out, err := MapErr(4, 10, func(i int) (string, error) { return fmt.Sprint(i), nil })
	if err != nil {
		t.Fatal(err)
	}
	if out[7] != "7" {
		t.Errorf("out[7] = %q", out[7])
	}
}

// TestMapShardsPrivateState proves each pool goroutine gets its own shard:
// shards count their units without any synchronization, which the race
// detector would flag if two workers ever shared one.
func TestMapShardsPrivateState(t *testing.T) {
	type shard struct{ units int }
	var created atomic.Int64
	const workers, n = 4, 200
	out, err := MapShards(workers, n,
		func(worker int) *shard {
			created.Add(1)
			return &shard{}
		},
		func(s *shard, i int) (int, error) {
			s.units++
			return i, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if int(created.Load()) > workers {
		t.Errorf("created %d shards for %d workers", created.Load(), workers)
	}
	for i, v := range out {
		if v != i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

// TestMapShardsSequentialFallback pins the workers<=1 path: one shard,
// strictly ascending unit order.
func TestMapShardsSequentialFallback(t *testing.T) {
	var order []int
	_, err := MapShards(1, 5,
		func(worker int) int {
			if worker != 0 {
				t.Errorf("sequential path used worker %d", worker)
			}
			return worker
		},
		func(_ int, i int) (int, error) {
			order = append(order, i)
			return i, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[0 1 2 3 4]" {
		t.Errorf("sequential order = %v", order)
	}
}
