package parallel

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	procs := runtime.GOMAXPROCS(0)
	if got := Workers(0); got != procs {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, procs)
	}
	if got := Workers(-2); got != procs {
		t.Errorf("Workers(-2) = %d, want GOMAXPROCS %d", got, procs)
	}
}

func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		out := Map(workers, 100, func(i int) int { return i * i })
		if len(out) != 100 {
			t.Fatalf("workers=%d: got %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmptyAndTiny(t *testing.T) {
	if out := Map(8, 0, func(i int) int { return i }); len(out) != 0 {
		t.Errorf("n=0: got %d results", len(out))
	}
	// More workers than work must not deadlock or duplicate.
	out := Map(64, 3, func(i int) int { return i })
	if fmt.Sprint(out) != "[0 1 2]" {
		t.Errorf("n=3: got %v", out)
	}
}

func TestMapErrReportsLowestIndex(t *testing.T) {
	fail := map[int]bool{5: true, 10: true, 63: true}
	_, err := MapErr(8, 64, func(i int) (int, error) {
		if fail[i] {
			return 0, fmt.Errorf("unit %d failed", i)
		}
		return i, nil
	})
	if err == nil || err.Error() != "unit 5 failed" {
		t.Fatalf("want lowest-index error 'unit 5 failed', got %v", err)
	}
}

func TestMapErrNoError(t *testing.T) {
	out, err := MapErr(4, 10, func(i int) (string, error) { return fmt.Sprint(i), nil })
	if err != nil {
		t.Fatal(err)
	}
	if out[7] != "7" {
		t.Errorf("out[7] = %q", out[7])
	}
}

// TestMapShardsPrivateState proves each pool goroutine gets its own shard:
// shards count their units without any synchronization, which the race
// detector would flag if two workers ever shared one.
func TestMapShardsPrivateState(t *testing.T) {
	type shard struct{ units int }
	var created atomic.Int64
	const workers, n = 4, 200
	out, err := MapShards(workers, n,
		func(worker int) *shard {
			created.Add(1)
			return &shard{}
		},
		func(s *shard, i int) (int, error) {
			s.units++
			return i, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if int(created.Load()) > workers {
		t.Errorf("created %d shards for %d workers", created.Load(), workers)
	}
	for i, v := range out {
		if v != i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

// TestMapShardsSequentialFallback pins the workers<=1 path: one shard,
// strictly ascending unit order.
func TestMapShardsSequentialFallback(t *testing.T) {
	var order []int
	_, err := MapShards(1, 5,
		func(worker int) int {
			if worker != 0 {
				t.Errorf("sequential path used worker %d", worker)
			}
			return worker
		},
		func(_ int, i int) (int, error) {
			order = append(order, i)
			return i, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[0 1 2 3 4]" {
		t.Errorf("sequential order = %v", order)
	}
}

// TestStreamShardsOrderedConsume pins the merge contract: consume sees every
// index exactly once, strictly ascending, with the value fn produced for it —
// at every worker count.
func TestStreamShardsOrderedConsume(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		next := 0
		err := StreamShards(workers, 200,
			func(int) struct{} { return struct{}{} },
			func(_ struct{}, i int) (int, error) { return i * i, nil },
			func(i, v int) error {
				if i != next {
					t.Fatalf("workers=%d: consume(%d) out of order, want %d", workers, i, next)
				}
				if v != i*i {
					t.Fatalf("workers=%d: consume(%d) = %d, want %d", workers, i, v, i*i)
				}
				next++
				return nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if next != 200 {
			t.Fatalf("workers=%d: consumed %d of 200 units", workers, next)
		}
	}
}

// TestStreamShardsEmpty: zero units is a no-op, not a deadlock.
func TestStreamShardsEmpty(t *testing.T) {
	called := false
	err := StreamShards(8, 0,
		func(int) struct{} { return struct{}{} },
		func(_ struct{}, i int) (int, error) { return i, nil },
		func(int, int) error { called = true; return nil })
	if err != nil || called {
		t.Fatalf("n=0: err=%v called=%v", err, called)
	}
}

// TestStreamShardsLowestIndexError: with several failing units, the error
// surfaced is the one at the lowest index the frontier reaches, and consume
// never sees that index or anything after it.
func TestStreamShardsLowestIndexError(t *testing.T) {
	fail := map[int]bool{7: true, 12: true, 63: true}
	for _, workers := range []int{1, 4, 8} {
		last := -1
		err := StreamShards(workers, 64,
			func(int) struct{} { return struct{}{} },
			func(_ struct{}, i int) (int, error) {
				if fail[i] {
					return 0, fmt.Errorf("unit %d failed", i)
				}
				return i, nil
			},
			func(i, _ int) error { last = i; return nil })
		if err == nil || err.Error() != "unit 7 failed" {
			t.Fatalf("workers=%d: want 'unit 7 failed', got %v", workers, err)
		}
		if last != 6 {
			t.Fatalf("workers=%d: consumed through %d, want 6", workers, last)
		}
	}
}

// TestStreamShardsConsumeErrorAborts: a failing consume stops the stream at
// that unit and its error is what StreamShards returns.
func TestStreamShardsConsumeErrorAborts(t *testing.T) {
	for _, workers := range []int{1, 4} {
		seen := 0
		err := StreamShards(workers, 100,
			func(int) struct{} { return struct{}{} },
			func(_ struct{}, i int) (int, error) { return i, nil },
			func(i, _ int) error {
				if i == 10 {
					return fmt.Errorf("sink full at %d", i)
				}
				seen++
				return nil
			})
		if err == nil || err.Error() != "sink full at 10" {
			t.Fatalf("workers=%d: want consume error, got %v", workers, err)
		}
		if seen != 10 {
			t.Fatalf("workers=%d: consumed %d units before abort, want 10", workers, seen)
		}
	}
}

// TestStreamShardsBoundedWindow proves the memory bound: claimed-but-unconsumed
// units never exceed workers*streamWindowPerWorker even when the stream is
// 100x longer than the window, and even when consume is slower than fn.
func TestStreamShardsBoundedWindow(t *testing.T) {
	const workers = 4
	window := workers * streamWindowPerWorker
	var inFlight, maxInFlight atomic.Int64
	err := StreamShards(workers, window*100,
		func(int) struct{} { return struct{}{} },
		func(_ struct{}, i int) (int, error) {
			cur := inFlight.Add(1)
			for {
				m := maxInFlight.Load()
				if cur <= m || maxInFlight.CompareAndSwap(m, cur) {
					break
				}
			}
			return i, nil
		},
		func(int, int) error {
			inFlight.Add(-1)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if m := maxInFlight.Load(); m > int64(window) {
		t.Errorf("window breached: %d units in flight, budget %d", m, window)
	}
}

// TestStreamShardsMatchesSequential: the consumed stream at any worker count
// is exactly the sequential stream.
func TestStreamShardsMatchesSequential(t *testing.T) {
	run := func(workers int) []int {
		var out []int
		err := StreamShards(workers, 257,
			func(int) struct{} { return struct{}{} },
			func(_ struct{}, i int) (int, error) { return i*3 + 1, nil },
			func(_, v int) error { out = append(out, v); return nil })
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := fmt.Sprint(run(1))
	for _, workers := range []int{2, 4, 8} {
		if got := fmt.Sprint(run(workers)); got != want {
			t.Errorf("workers=%d stream diverges from sequential", workers)
		}
	}
}
