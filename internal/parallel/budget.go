package parallel

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/telemetry"
)

// budgetMetrics tracks the process-wide budget: slots currently granted
// and acquisitions that had to settle for fewer workers than requested.
var budgetMetrics = struct {
	inUse   *telemetry.Gauge
	clipped *telemetry.Counter
}{
	inUse:   telemetry.Default().Gauge("parallel.budget_in_use"),
	clipped: telemetry.Default().Counter("parallel.budget_clipped"),
}

// Budget is a process-wide pool of worker slots shared by concurrent
// requests. Each request acquires a budget before spinning up its worker
// pool, so the sum of all live pools never exceeds the slot count no
// matter how many requests stream at once — the serving layer's guard
// against oversubscribing the machine.
//
// Acquisition is deliberately elastic rather than all-or-nothing: a
// request blocks only until one slot is free, then greedily takes up to
// its ask from whatever is left. Under contention everyone runs narrower
// instead of queueing behind the widest request, which keeps tail latency
// bounded while idle periods still hand a lone request the whole machine.
type Budget struct {
	slots chan struct{} // send = acquire one slot, receive = release
}

// NewBudget returns a budget of n worker slots (n <= 0 means
// runtime.GOMAXPROCS, matching the Workers convention).
func NewBudget(n int) *Budget {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Budget{slots: make(chan struct{}, n)}
}

// Slots returns the total slot count of the budget.
func (b *Budget) Slots() int { return cap(b.slots) }

// InUse returns the number of slots currently granted. It is a point-in-
// time reading for tests and metrics, not a synchronization primitive.
func (b *Budget) InUse() int { return len(b.slots) }

// Acquire blocks until at least one slot is free (or ctx is done), then
// claims up to want slots without further blocking. want is clamped to
// [1, Slots]. It returns the number of slots granted — always >= 1 on
// success — and a release function that must be called exactly once when
// the request's workers are finished; calling it again is a no-op. On a
// done context nothing is held and release is nil.
func (b *Budget) Acquire(ctx context.Context, want int) (int, func(), error) {
	if want < 1 {
		want = 1
	}
	if want > cap(b.slots) {
		want = cap(b.slots)
	}
	select {
	case b.slots <- struct{}{}:
	case <-ctx.Done():
		return 0, nil, ctx.Err()
	}
	granted := 1
greedy:
	for granted < want {
		select {
		case b.slots <- struct{}{}:
			granted++
		default:
			// Contended: run with what we have rather than queueing.
			break greedy
		}
	}
	if granted < want {
		budgetMetrics.clipped.Inc()
	}
	budgetMetrics.inUse.Set(int64(len(b.slots)))
	var once sync.Once
	release := func() {
		once.Do(func() {
			for i := 0; i < granted; i++ {
				<-b.slots
			}
			budgetMetrics.inUse.Set(int64(len(b.slots)))
		})
	}
	return granted, release, nil
}
