package parallel

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestBudgetGreedyAcquire(t *testing.T) {
	b := NewBudget(4)
	got, release, err := b.Acquire(context.Background(), 3)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if got != 3 {
		t.Fatalf("granted %d, want 3", got)
	}
	if b.InUse() != 3 {
		t.Fatalf("InUse %d, want 3", b.InUse())
	}

	// One slot left: a wide ask settles for it instead of blocking.
	got2, release2, err := b.Acquire(context.Background(), 4)
	if err != nil {
		t.Fatalf("second Acquire: %v", err)
	}
	if got2 != 1 {
		t.Fatalf("contended grant %d, want 1", got2)
	}

	release2()
	release()
	release() // idempotent
	if b.InUse() != 0 {
		t.Fatalf("InUse %d after releases, want 0", b.InUse())
	}
}

func TestBudgetClampsAsk(t *testing.T) {
	b := NewBudget(2)
	got, release, err := b.Acquire(context.Background(), 100)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	defer release()
	if got != 2 {
		t.Fatalf("granted %d, want the full budget 2", got)
	}
	// want <= 0 means 1: with the pool exhausted the minimum slot is not
	// available, so a deadlined acquire must time out rather than grant 0.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if got0, release0, err := b.Acquire(ctx, 0); err == nil {
		release0()
		t.Fatalf("exhausted budget granted %d slots for a zero ask", got0)
	}
}

func TestBudgetAcquireRespectsContext(t *testing.T) {
	b := NewBudget(1)
	_, release, err := b.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, _, err := b.Acquire(ctx, 1); err == nil {
		t.Fatal("Acquire on an exhausted budget returned without error before release")
	}
	release()
	got, release2, err := b.Acquire(context.Background(), 1)
	if err != nil || got != 1 {
		t.Fatalf("Acquire after release: got %d, err %v", got, err)
	}
	release2()
}

func TestBudgetNeverOversubscribes(t *testing.T) {
	const slots, requests = 3, 50
	b := NewBudget(slots)
	var wg sync.WaitGroup
	var mu sync.Mutex
	live, maxLive := 0, 0
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(want int) {
			defer wg.Done()
			got, release, err := b.Acquire(context.Background(), want)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			live += got
			if live > maxLive {
				maxLive = live
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			live -= got
			mu.Unlock()
			release()
		}(1 + i%slots)
	}
	wg.Wait()
	if maxLive > slots {
		t.Fatalf("observed %d concurrent slots, budget is %d", maxLive, slots)
	}
	if b.InUse() != 0 {
		t.Fatalf("InUse %d after all releases, want 0", b.InUse())
	}
}
