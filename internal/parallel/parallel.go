// Package parallel is the shared sharding helper behind the pipeline's
// parallel paths: a bounded worker pool with deterministic ordered
// collection. Work is indexed [0, n); workers claim indices from an atomic
// counter and write results into a slot per index, so the collected output
// is always in canonical index order regardless of scheduling — the
// property that lets corpus generation, weak-supervision labelling and
// Algorithm 1's a-query sharding stay byte-identical to their sequential
// versions at any worker count.
//
// The pool never reorders, drops or merges results; callers that need a
// dedup or a fold apply it over the ordered slice, exactly where the
// sequential loop would have applied it.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// poolMetrics tracks pool-wide and per-worker utilization. Worker metrics
// are keyed by zero-padded worker index ("parallel.worker.03.units"), so
// the snapshot sorts workers numerically; which worker claims which unit
// is scheduler-dependent, so per-worker values vary across runs while
// their totals stay exact.
var poolMetrics = struct {
	units *telemetry.Counter
	size  *telemetry.Gauge
}{
	units: telemetry.Default().Counter("parallel.units_total"),
	size:  telemetry.Default().Gauge("parallel.pool_workers"),
}

// workerMetrics resolves one worker's utilization handles.
func workerMetrics(worker int) (units, busyNS *telemetry.Counter) {
	r := telemetry.Default()
	return r.Counter(fmt.Sprintf("parallel.worker.%02d.units", worker)),
		r.Counter(fmt.Sprintf("parallel.worker.%02d.busy_ns", worker))
}

// Workers resolves a worker-count option: n when positive, otherwise
// runtime.GOMAXPROCS(0). This is the shared meaning of a zero Workers
// field across pythia, corpus, model and experiments options.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn(i) for every i in [0, n) on at most workers goroutines and
// returns the results in index order. fn must be safe for concurrent
// invocation; distinct calls never share state through the pool.
func Map[T any](workers, n int, fn func(i int) T) []T {
	//lint:ignore err-ignored the unit function wraps an infallible fn, so MapShards can only return nil
	out, _ := MapShards(workers, n,
		func(int) struct{} { return struct{}{} },
		func(_ struct{}, i int) (T, error) { return fn(i), nil })
	return out
}

// MapErr is Map for fallible work. Every index runs to completion; the
// error reported is the one at the lowest failing index, so error
// propagation is as deterministic as the results themselves. Result slots
// at failing indices hold the zero value.
func MapErr[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	return MapShards(workers, n,
		func(int) struct{} { return struct{}{} },
		func(_ struct{}, i int) (T, error) { return fn(i) })
}

// MapShards is MapErr with per-worker state: each pool goroutine builds
// its own shard value once via newShard(worker) and passes it to every
// unit it claims. This is how callers give workers private resources — a
// worker-owned sqlengine registration, a worker-owned text generator —
// without any locking on the hot path. newShard runs inside the worker
// goroutine, so shard construction itself may not share mutable state.
func MapShards[S, T any](workers, n int, newShard func(worker int) S, fn func(shard S, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	errs := make([]error, n)
	if workers > n {
		workers = n
	}
	poolMetrics.size.Set(int64(workers))
	poolMetrics.units.Add(int64(n))
	if workers <= 1 {
		units, busyNS := workerMetrics(0)
		start := time.Now()
		s := newShard(0)
		for i := 0; i < n; i++ {
			out[i], errs[i] = fn(s, i)
		}
		units.Add(int64(n))
		busyNS.Add(time.Since(start).Nanoseconds())
		return collect(out, errs)
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			units, busyNS := workerMetrics(worker)
			start := time.Now()
			claimed := 0
			s := newShard(worker)
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					units.Add(int64(claimed))
					busyNS.Add(time.Since(start).Nanoseconds())
					return
				}
				claimed++
				out[i], errs[i] = fn(s, i)
			}
		}(w)
	}
	wg.Wait()
	return collect(out, errs)
}

// collect returns the results, or the lowest-index error.
func collect[T any](out []T, errs []error) ([]T, error) {
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// streamWindowPerWorker sizes the reorder window of StreamShards: at most
// workers*streamWindowPerWorker units may be claimed but not yet consumed.
// The window is what bounds memory — completed out-of-order results wait in
// it, so a bigger window hides more scheduling skew at the cost of holding
// more finished units; 4 per worker keeps every worker busy through a
// typical skewed unit without letting fast workers run away from the merge
// frontier.
const streamWindowPerWorker = 4

// indexed is one completed unit in flight between a worker and the merge
// loop of StreamShards.
type indexed[T any] struct {
	i   int
	v   T
	err error
}

// StreamShards is MapShards without materialization: results are handed to
// consume in canonical index order as soon as the frontier reaches them,
// instead of being collected into a slice. Workers claim indices from an
// atomic counter and emit completed units through a bounded channel; the
// merge loop (running on the caller's goroutine) holds out-of-order units
// in a reorder window and flushes the contiguous prefix. Memory is bounded
// by the window — at most workers*streamWindowPerWorker units are claimed
// but unconsumed at any moment — so an n-unit stream never holds more than
// O(workers) unit results regardless of n.
//
// Unlike MapShards, which runs every index to completion, StreamShards
// stops at the first failure in canonical order: the error returned is the
// one at the lowest index the frontier reached (or the consume error that
// aborted the flush), and workers are cancelled. consume is never called
// concurrently and never out of order, so callers may fold, dedup and
// checkpoint in it exactly as a sequential loop would.
func StreamShards[S, T any](workers, n int, newShard func(worker int) S, fn func(shard S, i int) (T, error), consume func(i int, v T) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	poolMetrics.size.Set(int64(workers))
	poolMetrics.units.Add(int64(n))
	if workers <= 1 {
		units, busyNS := workerMetrics(0)
		start := time.Now()
		s := newShard(0)
		var err error
		done := 0
		for ; done < n; done++ {
			var v T
			if v, err = fn(s, done); err != nil {
				break
			}
			if err = consume(done, v); err != nil {
				break
			}
		}
		units.Add(int64(done))
		busyNS.Add(time.Since(start).Nanoseconds())
		return err
	}

	window := workers * streamWindowPerWorker
	if window > n {
		window = n
	}
	// tokens is the claim budget: a worker takes one token per claim, the
	// merge loop returns one per flushed unit, so claimed-but-unconsumed
	// units never exceed the window. Two invariants keep the channels
	// select-free: every results send is covered by a token the worker
	// still holds, and results has window capacity — so sends never block
	// even if the merge loop has stopped receiving. Cancellation is just
	// closing tokens; workers drain out at their next claim.
	tokens := make(chan struct{}, window)
	for i := 0; i < window; i++ {
		tokens <- struct{}{}
	}
	results := make(chan indexed[T], window)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			units, busyNS := workerMetrics(worker)
			start := time.Now()
			claimed := 0
			s := newShard(worker)
			defer func() {
				units.Add(int64(claimed))
				busyNS.Add(time.Since(start).Nanoseconds())
			}()
			for range tokens {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				claimed++
				v, err := fn(s, i)
				results <- indexed[T]{i: i, v: v, err: err}
			}
		}(w)
	}

	pending := make(map[int]indexed[T], window)
	var retErr error
	frontier := 0
	for frontier < n && retErr == nil {
		r := <-results
		pending[r.i] = r
		for retErr == nil {
			cur, ok := pending[frontier]
			if !ok {
				break
			}
			delete(pending, frontier)
			if cur.err != nil {
				retErr = cur.err
				break
			}
			if err := consume(frontier, cur.v); err != nil {
				retErr = err
				break
			}
			frontier++
			tokens <- struct{}{}
		}
	}
	close(tokens)
	wg.Wait()
	return retErr
}
