package augment

import (
	"strings"
	"testing"

	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/pythia"
	"repro/internal/textgen"
)

func basketAugmenter(t *testing.T) *Augmenter {
	t.Helper()
	d := data.MustLoad("Basket")
	md, err := pythia.WithPairs(d.Table, []model.Pair{
		{AttrA: "FieldGoalPct", AttrB: "ThreePointPct", Label: "shooting"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return New(md)
}

func TestBlurAttributes(t *testing.T) {
	a := basketAugmenter(t)
	vs := a.BlurAttributes("Carter LA has a FieldGoalPct of 56")
	if len(vs) != 1 {
		t.Fatalf("variants = %d, want 1", len(vs))
	}
	v := vs[0]
	if v.Text != "Carter LA has a shooting of 56" {
		t.Errorf("text = %q", v.Text)
	}
	if v.Structure != pythia.AttributeAmb || v.Label != "shooting" {
		t.Errorf("variant = %+v", v)
	}
}

func TestBlurNormalizedMention(t *testing.T) {
	// Attribute mentioned in its word form rather than the raw header.
	a := basketAugmenter(t)
	vs := a.BlurAttributes("Carter LA improved his three point pct this year")
	found := false
	for _, v := range vs {
		if strings.Contains(v.Text, "shooting") {
			found = true
		}
	}
	if !found {
		t.Errorf("normalized mention not blurred: %+v", vs)
	}
}

func TestBlurNoMention(t *testing.T) {
	a := basketAugmenter(t)
	if vs := a.BlurAttributes("Carter LA has 4 Fouls"); len(vs) != 0 {
		t.Errorf("unexpected variants: %+v", vs)
	}
}

func TestTruncateSubject(t *testing.T) {
	a := basketAugmenter(t)
	keys := []textgen.Cell{{Attr: "Player", Value: "Carter"}, {Attr: "Team", Value: "LA"}}
	vs := a.TruncateSubject("Carter LA has 4 Fouls", keys)
	if len(vs) != 1 {
		t.Fatalf("variants = %d, want 1", len(vs))
	}
	if vs[0].Text != "Carter has 4 Fouls" {
		t.Errorf("text = %q", vs[0].Text)
	}
	if vs[0].Structure != pythia.RowAmb {
		t.Errorf("structure = %s", vs[0].Structure)
	}
}

func TestTruncateRequiresAllKeyMentions(t *testing.T) {
	a := basketAugmenter(t)
	keys := []textgen.Cell{{Attr: "Player", Value: "Carter"}, {Attr: "Team", Value: "LA"}}
	if vs := a.TruncateSubject("Carter has 4 Fouls", keys); len(vs) != 0 {
		t.Errorf("truncated an already-partial subject: %+v", vs)
	}
}

func TestTruncateNeedsCompositeKey(t *testing.T) {
	d := data.MustLoad("Adults") // single-column key
	md, err := pythia.WithPairs(d.Table, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := New(md)
	keys := []textgen.Cell{{Attr: "person_id", Value: "3"}}
	if vs := a.TruncateSubject("3 has a salary of 50000", keys); len(vs) != 0 {
		t.Errorf("single-key table produced row-ambiguous variant: %+v", vs)
	}
}

func TestAugmentEndToEnd(t *testing.T) {
	// Generate real non-ambiguous examples and augment them.
	d := data.MustLoad("Basket")
	md, err := pythia.WithPairs(d.Table, []model.Pair{
		{AttrA: "FieldGoalPct", AttrB: "ThreePointPct", Label: "shooting"},
	})
	if err != nil {
		t.Fatal(err)
	}
	g := pythia.NewGenerator(d.Table, md)
	plain, err := g.NotAmbiguous(pythia.Options{Seed: 3, MaxPerQuery: 10})
	if err != nil {
		t.Fatal(err)
	}
	a := New(md)
	total := 0
	for _, ex := range plain {
		vs := a.Augment(ex)
		total += len(vs)
		for _, v := range vs {
			if v.Text == ex.Text {
				t.Errorf("variant identical to source: %q", v.Text)
			}
		}
	}
	if total == 0 {
		t.Error("augmentation produced nothing over generated examples")
	}
	t.Logf("augmented %d variants from %d plain examples", total, len(plain))
}

func TestVariantsDeduped(t *testing.T) {
	a := basketAugmenter(t)
	vs := a.BlurAttributes("FieldGoalPct and FieldGoalPct")
	seen := map[string]bool{}
	for _, v := range vs {
		if seen[v.Text] {
			t.Errorf("duplicate variant %q", v.Text)
		}
		seen[v.Text] = true
	}
}
