// Package augment implements the text-augmentation direction from the
// paper's conclusion: use ambiguity metadata to create data-ambiguous
// variants of *existing* examples, instead of (or in addition to)
// generating new ones from scratch.
//
// Two transformations are provided:
//
//   - Attribute blurring: replace a mention of an ambiguous attribute with
//     the pair's label ("FieldGoalPct" -> "shooting"), making the text
//     attribute-ambiguous while its evidence is unchanged.
//   - Subject truncation: drop the trailing key values from the subject of
//     a claim whose table has a composite key ("Carter LA has ..." ->
//     "Carter has ..."), making the text row-ambiguous.
//
// Both are metadata-driven: they only fire when the table's profile and
// ambiguity pairs license them, so every produced variant is genuinely
// ambiguous w.r.t. the data.
package augment

import (
	"strings"

	"repro/internal/pythia"
	"repro/internal/textgen"
	"repro/internal/vocab"
)

// Variant is one augmented example: the new text plus what made it
// ambiguous.
type Variant struct {
	Text      string
	Structure pythia.Structure
	// Label is the ambiguity label used for attribute blurring ("" for
	// subject truncation).
	Label string
	// Source is the original text.
	Source string
}

// Augmenter rewrites examples using one table's ambiguity metadata.
type Augmenter struct {
	md *pythia.Metadata
}

// New builds an augmenter from discovered metadata.
func New(md *pythia.Metadata) *Augmenter {
	return &Augmenter{md: md}
}

// mentionForms returns the surface strings under which an attribute may be
// mentioned in text: the raw name and its normalized word form.
func mentionForms(attr string) []string {
	out := []string{attr}
	if n := vocab.Normalize(attr); n != "" && !strings.EqualFold(n, attr) {
		out = append(out, n)
	}
	return out
}

// BlurAttributes produces attribute-ambiguous variants: every mention of
// either side of an ambiguous pair is replaced by the pair's label. One
// variant per applicable pair.
func (a *Augmenter) BlurAttributes(text string) []Variant {
	var out []Variant
	for _, pair := range a.md.Pairs {
		if pair.Label == "" {
			continue
		}
		for _, attr := range []string{pair.AttrA, pair.AttrB} {
			for _, form := range mentionForms(attr) {
				if idx := indexFold(text, form); idx >= 0 {
					variant := text[:idx] + pair.Label + text[idx+len(form):]
					out = append(out, Variant{
						Text:      variant,
						Structure: pythia.AttributeAmb,
						Label:     pair.Label,
						Source:    text,
					})
					break // one variant per attribute mention
				}
			}
		}
	}
	return dedupe(out)
}

// TruncateSubject produces row-ambiguous variants: when the text names all
// components of the table's composite key, the non-leading components are
// removed so the subject under-identifies rows. keyValues supplies the
// subject cells of the original example.
func (a *Augmenter) TruncateSubject(text string, keyValues []textgen.Cell) []Variant {
	pk := a.md.Profile.PrimaryKey
	if len(pk) < 2 || len(keyValues) < 2 {
		return nil
	}
	// Verify the text actually mentions every key value.
	for _, kv := range keyValues {
		if indexFold(text, kv.Value) < 0 {
			return nil
		}
	}
	// Remove every key value after the first.
	variant := text
	for _, kv := range keyValues[1:] {
		idx := indexFold(variant, kv.Value)
		if idx < 0 {
			return nil
		}
		variant = strings.Join(strings.Fields(variant[:idx]+variant[idx+len(kv.Value):]), " ")
	}
	if variant == text {
		return nil
	}
	return []Variant{{
		Text:      variant,
		Structure: pythia.RowAmb,
		Source:    text,
	}}
}

// Augment applies every applicable transformation to an example.
func (a *Augmenter) Augment(ex pythia.Example) []Variant {
	var out []Variant
	out = append(out, a.BlurAttributes(ex.Text)...)
	if len(ex.KeyAttrs) >= 2 && len(ex.Evidence) >= len(ex.KeyAttrs) {
		out = append(out, a.TruncateSubject(ex.Text, ex.Evidence[:len(ex.KeyAttrs)])...)
	}
	return dedupe(out)
}

// indexFold is a case-insensitive strings.Index.
func indexFold(s, sub string) int {
	if sub == "" {
		return -1
	}
	return strings.Index(strings.ToLower(s), strings.ToLower(sub))
}

// dedupe removes duplicate variant texts, preserving order.
func dedupe(vs []Variant) []Variant {
	seen := map[string]bool{}
	out := vs[:0]
	for _, v := range vs {
		if v.Text == v.Source || seen[v.Text] {
			continue
		}
		seen[v.Text] = true
		out = append(out, v)
	}
	return out
}
