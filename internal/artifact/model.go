package artifact

import (
	"encoding/json"
	"fmt"

	"repro/internal/model"
)

// SaveModel persists a trained metadata model — tokenizer vocabulary,
// label vocabulary, classifier weights and inference configuration — under
// the given input fingerprint (ModelFingerprint of the training
// configuration that produced it).
func SaveModel(path string, m *model.MetadataModel, fingerprint string) error {
	if m == nil {
		return fmt.Errorf("artifact %s: nil model", path)
	}
	return save(path, KindModel, fingerprint, m.Snapshot())
}

// LoadModel restores a model saved with SaveModel. fingerprint is the
// caller's expected input fingerprint ("" accepts any); a mismatch returns
// a typed error (IsMismatch) so the caller can retrain instead. The
// restored model predicts byte-identically to the one that was saved but
// cannot resume training (optimizer state is not persisted).
func LoadModel(path, fingerprint string) (*model.MetadataModel, error) {
	raw, err := load(path, KindModel, fingerprint)
	if err != nil {
		return nil, err
	}
	var snap model.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return nil, fmt.Errorf("artifact %s: decode model payload: %w", path, err)
	}
	m, err := model.FromSnapshot(&snap)
	if err != nil {
		return nil, fmt.Errorf("artifact %s: %w", path, err)
	}
	return m, nil
}
