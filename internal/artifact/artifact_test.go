package artifact

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/annotate"
	"repro/internal/corpus"
	"repro/internal/kb"
	"repro/internal/model"
	"repro/internal/profiling"
	"repro/internal/pythia"
	"repro/internal/relation"
)

// goldenTable is a fixed table exercising every value kind, including the
// empty string the value codec must not collapse into NULL.
func goldenTable(t *testing.T) *relation.Table {
	t.Helper()
	tab := relation.NewTable("Golden", relation.Schema{
		{Name: "id", Kind: relation.KindInt},
		{Name: "name", Kind: relation.KindString},
		{Name: "score", Kind: relation.KindFloat},
		{Name: "active", Kind: relation.KindBool},
		{Name: "joined", Kind: relation.KindDate},
	})
	rows := []relation.Row{
		{relation.Int(1), relation.String("alice"), relation.Float(0.5), relation.Bool(true), relation.Date(2020, 1, 2)},
		{relation.Int(2), relation.String(""), relation.Float(-1.25), relation.Bool(false), relation.Date(2021, 12, 31)},
		{relation.Int(3), relation.Null, relation.Null, relation.Bool(true), relation.Null},
	}
	for _, r := range rows {
		tab.MustAppend(r)
	}
	return tab
}

func TestProfileRoundTrip(t *testing.T) {
	tab := goldenTable(t)
	prof, err := profiling.ProfileTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "profile.json")
	fp := TableFingerprint(tab)
	if err := SaveProfile(path, prof, fp); err != nil {
		t.Fatal(err)
	}
	got, err := LoadProfile(path, fp, tab)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, prof) {
		t.Fatalf("profile round trip diverged:\n got %+v\nwant %+v", got, prof)
	}
}

// TestProfileGolden pins the on-disk artifact format: the serialized
// profile of a fixed table must match the committed golden byte for byte.
// A legitimate format change means bumping FormatVersion and regenerating
// testdata/profile_golden.json (save the new bytes and review the diff).
func TestProfileGolden(t *testing.T) {
	tab := goldenTable(t)
	prof, err := profiling.ProfileTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "profile.json")
	if err := SaveProfile(path, prof, "golden-fingerprint"); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "profile_golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("profile artifact bytes diverge from testdata/profile_golden.json:\n%s", got)
	}

	// Saving twice must be byte-stable.
	path2 := filepath.Join(t.TempDir(), "profile2.json")
	if err := SaveProfile(path2, prof, "golden-fingerprint"); err != nil {
		t.Fatal(err)
	}
	again, err := os.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(again) {
		t.Fatal("saving the same profile twice produced different bytes")
	}
}

func TestMetadataRoundTrip(t *testing.T) {
	// The Covid pair (total_cases, new_cases) is in the default KB, so the
	// round trip carries real pairs, not just an empty list.
	tab := relation.MustReadCSVString("Covid", "country,day,total_cases,new_cases\nIT,1,100,10\nIT,2,120,20\nFR,1,80,8\nFR,2,90,10\n")
	md, err := pythia.Discover(tab, model.NewULabel(kb.BuildDefault()))
	if err != nil {
		t.Fatal(err)
	}
	if len(md.Pairs) == 0 {
		t.Fatal("expected the ulabel predictor to find at least one pair")
	}
	path := filepath.Join(t.TempDir(), "metadata.json")
	fp := TableFingerprint(tab)
	if err := SaveMetadata(path, md, fp); err != nil {
		t.Fatal(err)
	}
	got, err := LoadMetadata(path, fp, tab)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Pairs, md.Pairs) {
		t.Fatalf("pairs diverged: got %+v want %+v", got.Pairs, md.Pairs)
	}
	if !reflect.DeepEqual(got.Kinds, md.Kinds) {
		t.Fatalf("kinds diverged: got %v want %v", got.Kinds, md.Kinds)
	}
	if !reflect.DeepEqual(got.Profile, md.Profile) {
		t.Fatalf("profile diverged: got %+v want %+v", got.Profile, md.Profile)
	}
}

// trainTinyModel trains the smallest useful schema model for round-trip
// tests; the corpus is tiny, so this stays fast.
func trainTinyModel(t *testing.T) (*model.MetadataModel, model.TrainConfig) {
	t.Helper()
	knowledge := kb.BuildDefault()
	cfg := model.DefaultSchemaConfig()
	cfg.Tables = 40
	cfg.Epochs = 2
	cfg.Pretrain = knowledge.DefinitionBags()
	m, err := model.Train("Schema", corpus.NewDefaultGenerator(), annotate.All(knowledge), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m, cfg
}

func TestModelRoundTrip(t *testing.T) {
	m, cfg := trainTinyModel(t)
	path := filepath.Join(t.TempDir(), "model.json")
	fp := ModelFingerprint("schema", cfg)
	if err := SaveModel(path, m, fp); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	// The restored model must predict identically: compare discovery over
	// a table neither model has seen.
	tab := goldenTable(t)
	mdA, err := pythia.Discover(tab, m)
	if err != nil {
		t.Fatal(err)
	}
	mdB, err := pythia.Discover(tab, loaded)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mdA.Pairs, mdB.Pairs) {
		t.Fatalf("loaded model predicts differently: got %+v want %+v", mdB.Pairs, mdA.Pairs)
	}
	// And its snapshot must round-trip exactly. Compare JSON encodings:
	// DeepEqual would also compare the classifier's unexported optimizer
	// state, which is deliberately not part of a snapshot.
	ja, err := json.Marshal(m.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(loaded.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Fatal("loaded model snapshot differs from the saved one")
	}
}

func TestLoadRejectsFingerprintMismatch(t *testing.T) {
	tab := goldenTable(t)
	prof, err := profiling.ProfileTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "profile.json")
	if err := SaveProfile(path, prof, "fp-a"); err != nil {
		t.Fatal(err)
	}
	_, err = LoadProfile(path, "fp-b", tab)
	var fe *FingerprintError
	if !errors.As(err, &fe) {
		t.Fatalf("load with wrong fingerprint: err = %v, want *FingerprintError", err)
	}
	if !IsMismatch(err) {
		t.Fatal("IsMismatch(FingerprintError) = false, want true")
	}
	// An empty expected fingerprint accepts anything.
	if _, err := LoadProfile(path, "", tab); err != nil {
		t.Fatalf("load with empty fingerprint: %v", err)
	}
}

func TestLoadRejectsKindMismatch(t *testing.T) {
	tab := goldenTable(t)
	prof, err := profiling.ProfileTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "profile.json")
	if err := SaveProfile(path, prof, "fp"); err != nil {
		t.Fatal(err)
	}
	_, err = LoadModel(path, "fp")
	var ke *KindError
	if !errors.As(err, &ke) {
		t.Fatalf("LoadModel over a profile artifact: err = %v, want *KindError", err)
	}
	if !IsMismatch(err) {
		t.Fatal("IsMismatch(KindError) = false, want true")
	}
}

func TestLoadRejectsVersionSkew(t *testing.T) {
	tab := goldenTable(t)
	prof, err := profiling.ProfileTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "profile.json")
	if err := SaveProfile(path, prof, "fp"); err != nil {
		t.Fatal(err)
	}
	// Rewrite the envelope under a future format version.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var env Envelope
	if err := json.Unmarshal(b, &env); err != nil {
		t.Fatal(err)
	}
	env.Version = FormatVersion + 1
	b, err = json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = LoadProfile(path, "fp", tab)
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("load of future-version artifact: err = %v, want *VersionError", err)
	}
	if !IsMismatch(err) {
		t.Fatal("IsMismatch(VersionError) = false, want true")
	}
	// A genuine I/O failure must NOT look like a mismatch.
	_, err = LoadProfile(filepath.Join(t.TempDir(), "missing.json"), "fp", tab)
	if err == nil || IsMismatch(err) {
		t.Fatalf("missing file: err = %v, want a non-mismatch error", err)
	}
}

func TestLoadProfileRejectsWrongTable(t *testing.T) {
	tab := goldenTable(t)
	prof, err := profiling.ProfileTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "profile.json")
	if err := SaveProfile(path, prof, ""); err != nil {
		t.Fatal(err)
	}
	other := relation.NewTable("Golden", relation.Schema{
		{Name: "id", Kind: relation.KindInt},
	})
	other.MustAppend(relation.Row{relation.Int(1)})
	if _, err := LoadProfile(path, "", other); err == nil {
		t.Fatal("rebinding a profile to a mismatched table succeeded, want error")
	}
}

func TestTableFingerprintSensitivity(t *testing.T) {
	a := goldenTable(t)
	b := goldenTable(t)
	if TableFingerprint(a) != TableFingerprint(b) {
		t.Fatal("identical tables fingerprint differently")
	}
	b.MustAppend(relation.Row{relation.Int(4), relation.String("dora"), relation.Float(2), relation.Bool(false), relation.Null})
	if TableFingerprint(a) == TableFingerprint(b) {
		t.Fatal("appending a row left the table fingerprint unchanged")
	}
}

func TestModelFingerprintIgnoresWorkers(t *testing.T) {
	cfg := model.DefaultSchemaConfig()
	a := ModelFingerprint("schema", cfg)
	cfg.Workers = 8
	cfg.Progress = func(string, int, int) {}
	if got := ModelFingerprint("schema", cfg); got != a {
		t.Fatal("Workers/Progress changed the model fingerprint; they must not")
	}
	cfg.Seed++
	if got := ModelFingerprint("schema", cfg); got == a {
		t.Fatal("changing the training seed left the model fingerprint unchanged")
	}
}
