// Package artifact persists trained models, table profiles and discovered
// ambiguity metadata as versioned JSON envelopes, so a serving process or
// a repeated CLI run can load a prior result instead of recomputing it —
// the paper's pipeline retrains the metadata model from a fresh synthetic
// corpus on every invocation, which dominates cold-start latency.
//
// Every artifact is one JSON file: an Envelope carrying the format
// version, the artifact kind and a content fingerprint of the inputs that
// produced the payload. Load verifies all three and returns a typed error
// on any mismatch (version skew, wrong kind, stale fingerprint) so
// callers can distinguish "recompute and overwrite" from a real I/O
// failure; IsMismatch folds the three into one test. Writes are atomic —
// temp file, fsync, rename, directory fsync — following the checkpoint
// manifest discipline in internal/stream, so a crashed save never leaves
// a torn artifact behind.
package artifact

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/telemetry"
)

// FormatVersion is the on-disk envelope version. Bump it when the payload
// schema of any artifact kind changes incompatibly; Load rejects files
// written under a different version.
const FormatVersion = 1

// Envelope is the on-disk frame around every artifact payload.
type Envelope struct {
	Version     int             `json:"version"`
	Kind        string          `json:"kind"`
	Fingerprint string          `json:"fingerprint"`
	Payload     json.RawMessage `json:"payload"`
}

// The artifact kinds written by this package.
const (
	KindModel    = "model"
	KindProfile  = "profile"
	KindMetadata = "metadata"
)

// VersionError reports an envelope written under a different format
// version than this build understands.
type VersionError struct {
	Path      string
	Got, Want int
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("artifact %s: format version %d, want %d", e.Path, e.Got, e.Want)
}

// KindError reports an envelope of the wrong artifact kind (a profile
// where a model was expected, and so on).
type KindError struct {
	Path      string
	Got, Want string
}

func (e *KindError) Error() string {
	return fmt.Sprintf("artifact %s: kind %q, want %q", e.Path, e.Got, e.Want)
}

// FingerprintError reports an artifact whose recorded input fingerprint
// differs from the caller's expectation — the inputs that produced it have
// drifted and the payload is stale.
type FingerprintError struct {
	Path      string
	Got, Want string
}

func (e *FingerprintError) Error() string {
	return fmt.Sprintf("artifact %s: fingerprint %.12s…, want %.12s… (inputs changed; recompute)", e.Path, e.Got, e.Want)
}

// IsMismatch reports whether err is any of the three envelope-verification
// failures. Callers use it to fall back to recomputing the artifact while
// still surfacing genuine I/O or decode errors.
func IsMismatch(err error) bool {
	var ve *VersionError
	var ke *KindError
	var fe *FingerprintError
	return errors.As(err, &ve) || errors.As(err, &ke) || errors.As(err, &fe)
}

var met = struct {
	saves   *telemetry.Counter
	loads   *telemetry.Counter
	rejects *telemetry.Counter
}{
	saves:   telemetry.Default().Counter("artifact.saves"),
	loads:   telemetry.Default().Counter("artifact.loads"),
	rejects: telemetry.Default().Counter("artifact.load_rejects"),
}

// save marshals payload into a versioned envelope and writes it
// atomically: the bytes land in path+".tmp", are fsynced, renamed over
// path, and the parent directory is fsynced so the rename survives a
// crash. The JSON is indent-stable, so saving the same payload twice
// yields byte-identical files (golden tests pin this).
func save(path, kind, fingerprint string, payload any) error {
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("artifact %s: encode %s payload: %w", path, kind, err)
	}
	env := Envelope{Version: FormatVersion, Kind: kind, Fingerprint: fingerprint, Payload: raw}
	b, err := json.MarshalIndent(env, "", "  ")
	if err != nil {
		return fmt.Errorf("artifact %s: encode envelope: %w", path, err)
	}
	tmp := path + ".tmp"
	if err := writeFileSync(tmp, append(b, '\n')); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		return err
	}
	met.saves.Inc()
	return nil
}

// load reads and verifies an envelope, returning its payload. An empty
// fingerprint accepts any recorded fingerprint (the caller has no input
// expectation); otherwise a differing fingerprint is a typed rejection.
func load(path, kind, fingerprint string) (json.RawMessage, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var env Envelope
	if err := json.Unmarshal(b, &env); err != nil {
		return nil, fmt.Errorf("artifact %s: decode envelope: %w", path, err)
	}
	if env.Version != FormatVersion {
		met.rejects.Inc()
		return nil, &VersionError{Path: path, Got: env.Version, Want: FormatVersion}
	}
	if env.Kind != kind {
		met.rejects.Inc()
		return nil, &KindError{Path: path, Got: env.Kind, Want: kind}
	}
	if fingerprint != "" && env.Fingerprint != fingerprint {
		met.rejects.Inc()
		return nil, &FingerprintError{Path: path, Got: env.Fingerprint, Want: fingerprint}
	}
	met.loads.Inc()
	return env.Payload, nil
}

// writeFileSync writes b to path and syncs it to stable storage — the
// payload must be durable before the rename publishes it.
func writeFileSync(path string, b []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		//lint:ignore err-ignored the write error is the failure being reported; Close here only releases the fd
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		//lint:ignore err-ignored the sync error is the failure being reported; Close here only releases the fd
		_ = f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory, making its entries (a just-renamed artifact
// above all) durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		//lint:ignore err-ignored the sync error is the failure being reported; Close here only releases the fd
		_ = d.Close()
		return err
	}
	return d.Close()
}
