package artifact

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"repro/internal/model"
	"repro/internal/relation"
)

// ModelFingerprint hashes everything that determines a trained model's
// weights: the predictor method plus the training configuration's corpus
// size, serialization, optimization and architecture knobs. Workers and
// Progress are deliberately excluded — training is byte-identical at
// every worker count, and progress reporting never touches the model.
// Pretrain bags are folded in by count only: they come from the static
// built-in knowledge base, so the count changing is the signal that the
// bags did.
func ModelFingerprint(method string, cfg model.TrainConfig) string {
	var b strings.Builder
	fmt.Fprintf(&b, "v1|method=%s|tables=%d|mode=%s|maxrows=%d|maxcell=%d",
		strings.ToLower(method), cfg.Tables, cfg.Serialization.Mode,
		cfg.Serialization.MaxRows, cfg.Serialization.MaxCellTokens)
	fmt.Fprintf(&b, "|epochs=%d|lr=%g|seed=%d|negperpos=%g|negweight=%g|mintok=%d|augment=%g|threshold=%g",
		cfg.Epochs, cfg.LR, cfg.Seed, cfg.NegPerPos, cfg.NegWeight,
		cfg.MinTokenCount, cfg.AugmentOOV, cfg.Threshold)
	fmt.Fprintf(&b, "|embed=%d|hidden=%d|pretrain=%d|pretrainepochs=%d",
		cfg.EmbedDim, cfg.Hidden, len(cfg.Pretrain), cfg.PretrainEpochs)
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// TableFingerprint hashes a table's name, schema and full cell contents.
// Profile and metadata artifacts record it so a load against a table with
// different rows (or a reordered schema) is rejected as stale instead of
// silently describing data it never saw.
func TableFingerprint(t *relation.Table) string {
	var b strings.Builder
	fmt.Fprintf(&b, "v1|table=%s|cols=%d|rows=%d", strings.ToLower(t.Name), t.NumCols(), t.NumRows())
	for _, c := range t.Schema {
		fmt.Fprintf(&b, "|%s:%s", strings.ToLower(c.Name), c.Kind)
	}
	// Cells hash through the same collision-free HashKey encoding the
	// profiler's projections use; 0x1f/0x1e separate cells and rows.
	for _, row := range t.Rows {
		for _, v := range row {
			b.WriteString(v.HashKey())
			b.WriteByte(0x1f)
		}
		b.WriteByte(0x1e)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}
