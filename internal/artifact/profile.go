package artifact

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/model"
	"repro/internal/profiling"
	"repro/internal/pythia"
	"repro/internal/relation"
)

// valueJSON carries one relation.Value as its kind name plus formatted
// text. Decoding needs the explicit string branch below: ParseValue maps
// "" to NULL for every kind, which would silently turn a stored empty
// string back into a NULL.
type valueJSON struct {
	Kind  string `json:"kind"`
	Value string `json:"value"`
}

func encodeValue(v relation.Value) valueJSON {
	return valueJSON{Kind: v.Kind().String(), Value: v.Format()}
}

func decodeValue(j valueJSON) (relation.Value, error) {
	k, err := kindFromString(j.Kind)
	if err != nil {
		return relation.Null, err
	}
	switch k {
	case relation.KindNull:
		return relation.Null, nil
	case relation.KindString:
		return relation.String(j.Value), nil
	default:
		return relation.ParseValue(j.Value, k)
	}
}

var kindNames = map[string]relation.Kind{
	relation.KindNull.String():   relation.KindNull,
	relation.KindInt.String():    relation.KindInt,
	relation.KindFloat.String():  relation.KindFloat,
	relation.KindString.String(): relation.KindString,
	relation.KindBool.String():   relation.KindBool,
	relation.KindDate.String():   relation.KindDate,
}

func kindFromString(s string) (relation.Kind, error) {
	k, ok := kindNames[s]
	if !ok {
		return relation.KindNull, fmt.Errorf("unknown value kind %q", s)
	}
	return k, nil
}

type columnJSON struct {
	Name     string    `json:"name"`
	Kind     string    `json:"kind"`
	Distinct int       `json:"distinct"`
	Nulls    int       `json:"nulls"`
	Min      valueJSON `json:"min"`
	Max      valueJSON `json:"max"`
	MeanLen  float64   `json:"mean_len"`
	Unique   bool      `json:"unique"`
}

// profileJSON is the persisted shape of a profiling.Profile. The rows are
// not stored — a profile artifact is rebound to the caller's table at
// load, and the recorded row count plus schema guard against rebinding to
// a table the statistics do not describe.
type profileJSON struct {
	Table         string       `json:"table"`
	Rows          int          `json:"rows"`
	Columns       []columnJSON `json:"columns"`
	PrimaryKey    []string     `json:"primary_key,omitempty"`
	CandidateKeys [][]string   `json:"candidate_keys,omitempty"`
}

func encodeProfile(p *profiling.Profile) profileJSON {
	cols := make([]columnJSON, len(p.Columns))
	for i, c := range p.Columns {
		cols[i] = columnJSON{
			Name:     c.Name,
			Kind:     c.Kind.String(),
			Distinct: c.Distinct,
			Nulls:    c.Nulls,
			Min:      encodeValue(c.Min),
			Max:      encodeValue(c.Max),
			MeanLen:  c.MeanLen,
			Unique:   c.Unique,
		}
	}
	return profileJSON{
		Table:         p.Table.Name,
		Rows:          p.Table.NumRows(),
		Columns:       cols,
		PrimaryKey:    p.PrimaryKey,
		CandidateKeys: p.CandidateKeys,
	}
}

func decodeProfile(path string, j profileJSON, t *relation.Table) (*profiling.Profile, error) {
	if !strings.EqualFold(j.Table, t.Name) {
		return nil, fmt.Errorf("artifact %s: profile of table %q, rebinding to %q", path, j.Table, t.Name)
	}
	if j.Rows != t.NumRows() {
		return nil, fmt.Errorf("artifact %s: profile covers %d rows, table has %d", path, j.Rows, t.NumRows())
	}
	if len(j.Columns) != t.NumCols() {
		return nil, fmt.Errorf("artifact %s: profile has %d columns, table has %d", path, len(j.Columns), t.NumCols())
	}
	cols := make([]profiling.ColumnStats, len(j.Columns))
	for i, c := range j.Columns {
		col := t.Schema[i]
		if !strings.EqualFold(c.Name, col.Name) {
			return nil, fmt.Errorf("artifact %s: profile column %d is %q, table has %q", path, i, c.Name, col.Name)
		}
		k, err := kindFromString(c.Kind)
		if err != nil {
			return nil, fmt.Errorf("artifact %s: profile column %q: %w", path, c.Name, err)
		}
		if k != col.Kind {
			return nil, fmt.Errorf("artifact %s: profile column %q is %s, table has %s", path, c.Name, k, col.Kind)
		}
		min, err := decodeValue(c.Min)
		if err != nil {
			return nil, fmt.Errorf("artifact %s: profile column %q min: %w", path, c.Name, err)
		}
		max, err := decodeValue(c.Max)
		if err != nil {
			return nil, fmt.Errorf("artifact %s: profile column %q max: %w", path, c.Name, err)
		}
		cols[i] = profiling.ColumnStats{
			Name:     c.Name,
			Kind:     k,
			Distinct: c.Distinct,
			Nulls:    c.Nulls,
			Min:      min,
			Max:      max,
			MeanLen:  c.MeanLen,
			Unique:   c.Unique,
		}
	}
	return &profiling.Profile{
		Table:         t,
		Columns:       cols,
		PrimaryKey:    j.PrimaryKey,
		CandidateKeys: j.CandidateKeys,
	}, nil
}

// SaveProfile persists a table profile under the given input fingerprint
// (typically TableFingerprint of the profiled table).
func SaveProfile(path string, p *profiling.Profile, fingerprint string) error {
	if p == nil || p.Table == nil {
		return fmt.Errorf("artifact %s: nil profile", path)
	}
	return save(path, KindProfile, fingerprint, encodeProfile(p))
}

// LoadProfile restores a profile saved with SaveProfile and rebinds it to
// t, which must match the recorded table name, schema and row count.
// fingerprint is the caller's expectation ("" accepts any); a mismatch
// returns a typed error (IsMismatch) so the caller can re-profile.
func LoadProfile(path, fingerprint string, t *relation.Table) (*profiling.Profile, error) {
	raw, err := load(path, KindProfile, fingerprint)
	if err != nil {
		return nil, err
	}
	var j profileJSON
	if err := json.Unmarshal(raw, &j); err != nil {
		return nil, fmt.Errorf("artifact %s: decode profile payload: %w", path, err)
	}
	return decodeProfile(path, j, t)
}

type pairJSON struct {
	AttrA        string  `json:"attr_a"`
	AttrB        string  `json:"attr_b"`
	Label        string  `json:"label"`
	Score        float64 `json:"score"`
	Correlation  float64 `json:"correlation"`
	ValueOverlap float64 `json:"value_overlap"`
}

type metadataJSON struct {
	Profile profileJSON `json:"profile"`
	Pairs   []pairJSON  `json:"pairs"`
	Kinds   []string    `json:"kinds,omitempty"`
}

// SaveMetadata persists discovered ambiguity metadata — the profile, the
// predicted pairs and the per-column kinds the incremental update path
// folds forward — under the given input fingerprint.
func SaveMetadata(path string, md *pythia.Metadata, fingerprint string) error {
	if md == nil || md.Profile == nil || md.Profile.Table == nil {
		return fmt.Errorf("artifact %s: nil metadata", path)
	}
	pairs := make([]pairJSON, len(md.Pairs))
	for i, p := range md.Pairs {
		pairs[i] = pairJSON{
			AttrA:        p.AttrA,
			AttrB:        p.AttrB,
			Label:        p.Label,
			Score:        p.Score,
			Correlation:  p.Correlation,
			ValueOverlap: p.ValueOverlap,
		}
	}
	var kinds []string
	if md.Kinds != nil {
		kinds = make([]string, len(md.Kinds))
		for i, k := range md.Kinds {
			kinds[i] = k.String()
		}
	}
	payload := metadataJSON{Profile: encodeProfile(md.Profile), Pairs: pairs, Kinds: kinds}
	return save(path, KindMetadata, fingerprint, payload)
}

// LoadMetadata restores metadata saved with SaveMetadata and rebinds its
// profile to t (same validation as LoadProfile). fingerprint is the
// caller's expectation ("" accepts any); a mismatch returns a typed error
// (IsMismatch) so the caller can re-discover.
func LoadMetadata(path, fingerprint string, t *relation.Table) (*pythia.Metadata, error) {
	raw, err := load(path, KindMetadata, fingerprint)
	if err != nil {
		return nil, err
	}
	var j metadataJSON
	if err := json.Unmarshal(raw, &j); err != nil {
		return nil, fmt.Errorf("artifact %s: decode metadata payload: %w", path, err)
	}
	prof, err := decodeProfile(path, j.Profile, t)
	if err != nil {
		return nil, err
	}
	var pairs []model.Pair
	if len(j.Pairs) > 0 {
		pairs = make([]model.Pair, len(j.Pairs))
	}
	for i, p := range j.Pairs {
		pairs[i] = model.Pair{
			AttrA:        p.AttrA,
			AttrB:        p.AttrB,
			Label:        p.Label,
			Score:        p.Score,
			Correlation:  p.Correlation,
			ValueOverlap: p.ValueOverlap,
		}
	}
	var kinds []relation.Kind
	if j.Kinds != nil {
		if len(j.Kinds) != t.NumCols() {
			return nil, fmt.Errorf("artifact %s: metadata has %d kinds, table has %d columns", path, len(j.Kinds), t.NumCols())
		}
		kinds = make([]relation.Kind, len(j.Kinds))
		for i, s := range j.Kinds {
			k, err := kindFromString(s)
			if err != nil {
				return nil, fmt.Errorf("artifact %s: metadata kinds: %w", path, err)
			}
			kinds[i] = k
		}
	}
	return &pythia.Metadata{Profile: prof, Pairs: pairs, Kinds: kinds}, nil
}
