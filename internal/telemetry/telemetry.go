// Package telemetry is the runtime metrics layer of the pipeline: a
// stdlib-only, race-safe registry of atomic counters, gauges and
// fixed-bucket latency histograms, with per-stage timers built on top.
//
// Two contracts shape the design:
//
//  1. Determinism. Telemetry observes the pipeline, it never steers it —
//     generation output is byte-identical with telemetry enabled or
//     disabled (a regression in internal/pythia asserts this). Snapshot
//     output is itself deterministic: metric names are sorted and no
//     wall-clock value ever appears in a key, so two registries that
//     recorded the same operations serialize to identical bytes.
//
//  2. Hot-path cost. Metric handles are resolved once (a mutex-guarded
//     map lookup) and then updated with single atomic adds. Per-row hot
//     loops accumulate locally and flush one Add per query. A disabled
//     registry reduces every update to one atomic load.
//
// Metric naming scheme: "<package>.<metric>" in lower snake case
// ("sqlengine.rows_scanned"). Duration histograms carry a "_ns" suffix
// and record nanoseconds into the shared 1-2-5 bucket ladder.
package telemetry

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is not
// usable; obtain counters from a Registry.
type Counter struct {
	enabled *atomic.Bool
	v       atomic.Int64
}

// Add increments the counter by n (no-op while the registry is disabled).
func (c *Counter) Add(n int64) {
	if c.enabled.Load() {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can move both ways (pool sizes, queue depths).
type Gauge struct {
	enabled *atomic.Bool
	v       atomic.Int64
}

// Set stores the gauge value (no-op while the registry is disabled).
func (g *Gauge) Set(n int64) {
	if g.enabled.Load() {
		g.v.Store(n)
	}
}

// Add moves the gauge by n.
func (g *Gauge) Add(n int64) {
	if g.enabled.Load() {
		g.v.Add(n)
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets. Bounds are upper
// bucket edges in observation units; values above the last bound land in
// an overflow bucket. Count and sum are tracked exactly.
type Histogram struct {
	enabled *atomic.Bool
	bounds  []int64
	buckets []atomic.Int64 // len(bounds)+1; last is overflow
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one value (no-op while the registry is disabled).
func (h *Histogram) Observe(v int64) {
	if !h.enabled.Load() {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// LatencyBuckets is the shared 1-2-5 ladder for duration histograms, in
// nanoseconds from 1µs to 10s. Durations above 10s overflow.
var LatencyBuckets = []int64{
	1e3, 2e3, 5e3, // 1µs 2µs 5µs
	1e4, 2e4, 5e4, // 10µs 20µs 50µs
	1e5, 2e5, 5e5, // 100µs 200µs 500µs
	1e6, 2e6, 5e6, // 1ms 2ms 5ms
	1e7, 2e7, 5e7, // 10ms 20ms 50ms
	1e8, 2e8, 5e8, // 100ms 200ms 500ms
	1e9, 2e9, 5e9, // 1s 2s 5s
	1e10, // 10s
}

// Timer records one stage duration into a latency histogram when stopped.
type Timer struct {
	h     *Histogram
	start time.Time
}

// Stop records the elapsed time since the timer started. Safe to call on
// a timer from a disabled registry (records nothing).
func (t Timer) Stop() {
	if t.h != nil && !t.start.IsZero() {
		t.h.Observe(time.Since(t.start).Nanoseconds())
	}
}

// Time starts a timer recording into h on Stop. Resolving the histogram
// handle once and calling Time per operation keeps hot paths off the
// registry mutex; while the registry is disabled no clock is read.
func (h *Histogram) Time() Timer {
	if !h.enabled.Load() {
		return Timer{}
	}
	return Timer{h: h, start: time.Now()}
}

// Registry owns a namespace of metrics. All methods are safe for
// concurrent use; handle lookups take a mutex, metric updates are atomic.
type Registry struct {
	enabled atomic.Bool

	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	r := &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
	r.enabled.Store(true)
	return r
}

// defaultRegistry is the process-wide registry the pipeline records into.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// SetEnabled turns recording on or off. Disabling does not clear values;
// it freezes them.
func (r *Registry) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether the registry records updates.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// Counter returns the named counter, creating it on first use. Callers on
// hot paths should resolve the handle once and reuse it.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{enabled: &r.enabled}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{enabled: &r.enabled}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram with the given bucket bounds
// (ascending), creating it on first use. Bounds are fixed at creation;
// later calls reuse the existing buckets and ignore the argument.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{
			enabled: &r.enabled,
			bounds:  append([]int64(nil), bounds...),
			buckets: make([]atomic.Int64, len(bounds)+1),
		}
		r.histograms[name] = h
	}
	return h
}

// LatencyHistogram returns the named duration histogram over the shared
// nanosecond bucket ladder.
func (r *Registry) LatencyHistogram(name string) *Histogram {
	return r.Histogram(name, LatencyBuckets)
}

// StartTimer starts a stage timer recording into the named latency
// histogram. While the registry is disabled the timer skips the clock
// read entirely.
func (r *Registry) StartTimer(name string) Timer {
	if !r.enabled.Load() {
		return Timer{}
	}
	return Timer{h: r.LatencyHistogram(name), start: time.Now()}
}

// histogramSnapshot is the serialized form of one histogram. Bucket edges
// are structural (fixed at creation), never wall-clock readings.
type histogramSnapshot struct {
	Count    int64          `json:"count"`
	Sum      int64          `json:"sum"`
	Buckets  []bucketExport `json:"buckets"`
	Overflow int64          `json:"overflow"`
}

// bucketExport is one bucket edge with its cumulative-free count.
type bucketExport struct {
	LE    int64 `json:"le"`
	Count int64 `json:"count"`
}

// snapshotValue builds the snapshot as plain maps. encoding/json sorts
// map keys, so serialization is deterministic for deterministic values.
func (r *Registry) snapshotValue() map[string]any {
	r.mu.Lock()
	counters := make(map[string]int64, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c.Value()
	}
	gauges := make(map[string]int64, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g.Value()
	}
	hists := make(map[string]histogramSnapshot, len(r.histograms))
	for n, h := range r.histograms {
		hs := histogramSnapshot{Count: h.Count(), Sum: h.Sum()}
		for i := range h.bounds {
			if c := h.buckets[i].Load(); c > 0 {
				hs.Buckets = append(hs.Buckets, bucketExport{LE: h.bounds[i], Count: c})
			}
		}
		hs.Overflow = h.buckets[len(h.bounds)].Load()
		hists[n] = hs
	}
	r.mu.Unlock()
	return map[string]any{
		"counters":   counters,
		"gauges":     gauges,
		"histograms": hists,
	}
}

// Snapshot serializes every metric as indented JSON. Names sort
// lexicographically and keys carry no wall-clock readings, so registries
// that recorded the same operations snapshot to identical bytes.
func (r *Registry) Snapshot() ([]byte, error) {
	return json.MarshalIndent(r.snapshotValue(), "", "  ")
}

// WriteSnapshot writes the registry snapshot to path, creating or
// truncating the file.
func (r *Registry) WriteSnapshot(path string) error {
	b, err := r.Snapshot()
	if err != nil {
		return fmt.Errorf("telemetry: snapshot: %w", err)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("telemetry: write snapshot: %w", err)
	}
	return nil
}

// publishOnce guards the expvar registration (expvar panics on duplicate
// names).
var publishOnce sync.Once

// publishExpvar exposes the default registry under the "telemetry" expvar
// so /debug/vars carries a live snapshot.
func publishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("telemetry", expvar.Func(func() any {
			return Default().snapshotValue()
		}))
	})
}

// Handler returns the debug endpoint mux: net/http/pprof under
// /debug/pprof and the expvar listing (including the default-registry
// snapshot under the "telemetry" key) at /debug/vars. The mux is private —
// handlers third parties hang on http.DefaultServeMux can never leak onto
// a debug port served from it.
func Handler() http.Handler {
	publishExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// DebugServer is a running debug endpoint started by Serve. Unlike the old
// fire-and-forget listener it is closable, so a host process's graceful
// shutdown can release the port instead of leaking it for process life.
type DebugServer struct {
	srv  *http.Server
	addr string
}

// Addr returns the bound listen address (useful with ":0").
func (s *DebugServer) Addr() string { return s.addr }

// Close immediately closes the listener and any active connections.
func (s *DebugServer) Close() error { return s.srv.Close() }

// Shutdown gracefully drains in-flight debug requests, then closes.
func (s *DebugServer) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }

// Serve starts an HTTP server on addr exposing Handler's debug surface,
// for live inspection of long runs. The listener is bound synchronously so
// address errors surface immediately; serving then continues in a
// background goroutine until the returned server is closed.
func Serve(addr string) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: pprof listen: %w", err)
	}
	srv := &http.Server{Handler: Handler()}
	go func() {
		//lint:ignore err-ignored Serve returns ErrServerClosed on Close/Shutdown; earlier errors have no channel back to the caller
		_ = srv.Serve(ln)
	}()
	return &DebugServer{srv: srv, addr: ln.Addr().String()}, nil
}
