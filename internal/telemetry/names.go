// Declared metric registry. Every metric name the pipeline records must
// appear here, with its kind; pythia-lint's tel-metric-registry rule
// checks each Counter/Gauge/Histogram/StartTimer call site against this
// table, so a renamed or misspelled metric fails lint instead of silently
// forking a time series (the drift PRs 3 and 4 had to hand-audit).
//
// Names follow "<package>.<metric>" in lower snake case; duration
// histograms end in "_ns". Dynamically built names declare a pattern: a
// "*" matches one run of name characters, so "parallel.worker.*.units"
// covers every zero-padded worker index and "experiments.*_ns" covers the
// per-experiment stage timers.
package telemetry

// MetricName is one declared registry entry.
type MetricName struct {
	Name string // literal name or *-pattern
	Kind string // "counter", "gauge" or "histogram"
}

// KnownMetrics is the declared registry, sorted by name. pythia-lint
// extracts this literal from source; keep entries literal (no computed
// values) and append new metrics here when instrumenting new code.
var KnownMetrics = []MetricName{
	{Name: "annotate.label_ns", Kind: "histogram"},
	{Name: "annotate.pairs_labelled", Kind: "counter"},
	{Name: "annotate.tables_labelled", Kind: "counter"},
	{Name: "artifact.load_rejects", Kind: "counter"},
	{Name: "artifact.loads", Kind: "counter"},
	{Name: "artifact.saves", Kind: "counter"},
	{Name: "corpus.tables_generated", Kind: "counter"},
	{Name: "corpus.tables_ns", Kind: "histogram"},
	{Name: "experiments.*_ns", Kind: "histogram"},
	{Name: "model.train_examples", Kind: "counter"},
	{Name: "model.train_negatives", Kind: "counter"},
	{Name: "model.train_ns", Kind: "histogram"},
	{Name: "model.train_positives", Kind: "counter"},
	{Name: "parallel.budget_clipped", Kind: "counter"},
	{Name: "parallel.budget_in_use", Kind: "gauge"},
	{Name: "parallel.pool_workers", Kind: "gauge"},
	{Name: "parallel.units_total", Kind: "counter"},
	{Name: "parallel.worker.*.busy_ns", Kind: "counter"},
	{Name: "parallel.worker.*.units", Kind: "counter"},
	{Name: "pythia.dedup_drops", Kind: "counter"},
	{Name: "pythia.empty_text_drops", Kind: "counter"},
	{Name: "pythia.examples.*", Kind: "counter"},
	{Name: "pythia.generate_ns", Kind: "histogram"},
	{Name: "pythia.quota_drops", Kind: "counter"},
	{Name: "pythia.units", Kind: "counter"},
	{Name: "serve.active_streams", Kind: "gauge"},
	{Name: "serve.appends", Kind: "counter"},
	{Name: "serve.client_disconnects", Kind: "counter"},
	{Name: "serve.examples_streamed", Kind: "counter"},
	{Name: "serve.generate_requests", Kind: "counter"},
	{Name: "serve.rejected_429", Kind: "counter"},
	{Name: "serve.request_ns", Kind: "histogram"},
	{Name: "serve.stream_errors", Kind: "counter"},
	{Name: "serve.upload_unchanged", Kind: "counter"},
	{Name: "serve.uploads", Kind: "counter"},
	{Name: "sqlengine.batch_rows", Kind: "counter"},
	{Name: "sqlengine.batch_scans", Kind: "counter"},
	{Name: "sqlengine.batch_selectivity", Kind: "histogram"},
	{Name: "sqlengine.count_queries", Kind: "counter"},
	{Name: "sqlengine.distinct_drops", Kind: "counter"},
	{Name: "sqlengine.exec_ns", Kind: "histogram"},
	{Name: "sqlengine.index_builds", Kind: "counter"},
	{Name: "sqlengine.index_hits", Kind: "counter"},
	{Name: "sqlengine.parse_ns", Kind: "histogram"},
	{Name: "sqlengine.plan_cache_evictions", Kind: "counter"},
	{Name: "sqlengine.plan_cache_hits", Kind: "counter"},
	{Name: "sqlengine.plan_cache_misses", Kind: "counter"},
	{Name: "sqlengine.queries_executed", Kind: "counter"},
	{Name: "sqlengine.queries_parsed", Kind: "counter"},
	{Name: "sqlengine.range_joins", Kind: "counter"},
	{Name: "sqlengine.rows_emitted", Kind: "counter"},
	{Name: "sqlengine.rows_scanned", Kind: "counter"},
	{Name: "sqlengine.table_appends", Kind: "counter"},
	{Name: "sqlengine.table_swaps", Kind: "counter"},
	{Name: "sqlengine.vector_builds", Kind: "counter"},
	{Name: "stream.checkpoints_written", Kind: "counter"},
	{Name: "stream.examples_flushed", Kind: "counter"},
	{Name: "stream.units_skipped", Kind: "counter"},
}

// KnownMetric reports whether name matches a registry entry of the given
// kind ("" matches any kind). Patterns treat "*" as one run of name
// characters (letters, digits, underscores — not dots).
func KnownMetric(name, kind string) bool {
	for _, m := range KnownMetrics {
		if kind != "" && m.Kind != kind {
			continue
		}
		if MatchMetricPattern(m.Name, name) {
			return true
		}
	}
	return false
}

// MatchMetricPattern reports whether name matches pattern, where "*"
// stands for one non-empty run of [a-z0-9_] characters.
func MatchMetricPattern(pattern, name string) bool {
	return matchFrom(pattern, name)
}

func matchFrom(pattern, name string) bool {
	for {
		i := indexByte(pattern, '*')
		if i < 0 {
			return pattern == name
		}
		if len(name) < i || pattern[:i] != name[:i] {
			return false
		}
		rest, tail := pattern[i+1:], name[i:]
		// The star must consume at least one name character.
		for j := 1; j <= len(tail); j++ {
			if !nameChar(tail[j-1]) {
				break
			}
			if matchFrom(rest, tail[j:]) {
				return true
			}
		}
		return false
	}
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

func nameChar(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= '0' && b <= '9' || b == '_'
}
