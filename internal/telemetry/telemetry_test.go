package telemetry

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestConcurrentCountersSumExactly drives N goroutines through the
// registry's lookup path and the counter's add path simultaneously; the
// total must be exact (this is the test `go test -race` leans on).
func TestConcurrentCountersSumExactly(t *testing.T) {
	const goroutines, perG = 16, 1000
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Resolve the handle inside the loop on purpose: the map
				// lookup must be as race-safe as the add.
				r.Counter("test.hits").Inc()
				r.Gauge("test.level").Set(int64(i))
				r.Histogram("test.sizes", []int64{10, 100}).Observe(int64(i % 200))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("test.hits").Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	h := r.Histogram("test.sizes", nil)
	if h.Count() != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", h.Count(), goroutines*perG)
	}
	var inBuckets int64
	for i := range h.buckets {
		inBuckets += h.buckets[i].Load()
	}
	if inBuckets != h.Count() {
		t.Errorf("bucket sum = %d, want %d", inBuckets, h.Count())
	}
}

// TestHistogramBucketing pins the edge semantics: values land in the
// first bucket whose upper bound is >= the value, above-last overflows.
func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test.h", []int64{10, 100})
	for _, v := range []int64{1, 10, 11, 100, 101} {
		h.Observe(v)
	}
	want := []int64{2, 2, 1} // (≤10)=2, (≤100)=2, overflow=1
	for i, w := range want {
		if got := h.buckets[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Sum() != 1+10+11+100+101 {
		t.Errorf("sum = %d", h.Sum())
	}
}

// sampleOps records a fixed set of operations into a registry.
func sampleOps(r *Registry) {
	r.Counter("a.rows").Add(42)
	r.Counter("b.rows").Add(7)
	r.Gauge("pool.size").Set(4)
	h := r.Histogram("a.lat_ns", LatencyBuckets)
	for _, v := range []int64{1500, 2500, 3_000_000} {
		h.Observe(v)
	}
}

// TestSnapshotDeterministic asserts the byte-stability contract: the same
// recorded operations serialize to identical bytes, across registries and
// across repeated snapshots of one registry.
func TestSnapshotDeterministic(t *testing.T) {
	r1, r2 := NewRegistry(), NewRegistry()
	sampleOps(r1)
	sampleOps(r2)
	s1a, err := r1.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	s1b, err := r1.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := r2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1a, s1b) {
		t.Error("repeated snapshots of one registry differ")
	}
	if !bytes.Equal(s1a, s2) {
		t.Errorf("registries with identical operations snapshot differently:\n%s\nvs\n%s", s1a, s2)
	}
}

// TestSnapshotShape parses the snapshot and checks the documented layout.
func TestSnapshotShape(t *testing.T) {
	r := NewRegistry()
	sampleOps(r)
	b, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Counters   map[string]int64 `json:"counters"`
		Gauges     map[string]int64 `json:"gauges"`
		Histograms map[string]struct {
			Count   int64 `json:"count"`
			Sum     int64 `json:"sum"`
			Buckets []struct {
				LE    int64 `json:"le"`
				Count int64 `json:"count"`
			} `json:"buckets"`
			Overflow int64 `json:"overflow"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if got.Counters["a.rows"] != 42 || got.Counters["b.rows"] != 7 {
		t.Errorf("counters = %v", got.Counters)
	}
	if got.Gauges["pool.size"] != 4 {
		t.Errorf("gauges = %v", got.Gauges)
	}
	h := got.Histograms["a.lat_ns"]
	if h.Count != 3 || h.Sum != 1500+2500+3_000_000 {
		t.Errorf("histogram = %+v", h)
	}
	// Zero-count buckets are elided, so exactly the populated edges appear.
	if len(h.Buckets) != 3 {
		t.Errorf("buckets = %+v, want 3 populated edges", h.Buckets)
	}
}

// TestDisabledRegistryRecordsNothing covers the enable/disable switch the
// determinism regression in internal/pythia relies on.
func TestDisabledRegistryRecordsNothing(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(false)
	r.Counter("x").Inc()
	r.Gauge("g").Set(5)
	r.LatencyHistogram("h_ns").Observe(100)
	r.StartTimer("t_ns").Stop()
	if v := r.Counter("x").Value(); v != 0 {
		t.Errorf("disabled counter = %d", v)
	}
	if v := r.Gauge("g").Value(); v != 0 {
		t.Errorf("disabled gauge = %d", v)
	}
	if c := r.LatencyHistogram("h_ns").Count(); c != 0 {
		t.Errorf("disabled histogram count = %d", c)
	}
	if c := r.LatencyHistogram("t_ns").Count(); c != 0 {
		t.Errorf("disabled timer recorded %d observations", c)
	}
	// Re-enabling resumes recording on already-resolved handles.
	r.SetEnabled(true)
	r.Counter("x").Inc()
	if v := r.Counter("x").Value(); v != 1 {
		t.Errorf("re-enabled counter = %d", v)
	}
}

// TestTimerRecords covers the stage-timer path end to end.
func TestTimerRecords(t *testing.T) {
	r := NewRegistry()
	tm := r.StartTimer("stage.x_ns")
	time.Sleep(time.Millisecond)
	tm.Stop()
	h := r.LatencyHistogram("stage.x_ns")
	if h.Count() != 1 {
		t.Fatalf("timer observations = %d, want 1", h.Count())
	}
	if h.Sum() < int64(time.Millisecond) {
		t.Errorf("timer sum = %dns, want >= 1ms", h.Sum())
	}
}

// TestWriteSnapshot writes and re-parses a snapshot file.
func TestWriteSnapshot(t *testing.T) {
	r := NewRegistry()
	sampleOps(r)
	path := filepath.Join(t.TempDir(), "m.json")
	if err := r.WriteSnapshot(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var v map[string]any
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("snapshot file is not valid JSON: %v", err)
	}
	for _, key := range []string{"counters", "gauges", "histograms"} {
		if _, ok := v[key]; !ok {
			t.Errorf("snapshot missing %q", key)
		}
	}
}

// TestServeCloseReleasesListener covers the closable debug server: the
// private mux answers /debug/vars and /debug/pprof, Close releases the
// port, and a handler registered on http.DefaultServeMux never leaks onto
// the debug surface.
func TestServeCloseReleasesListener(t *testing.T) {
	http.HandleFunc("/leaky-default-mux-route", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	base := "http://" + srv.Addr()
	for _, path := range []string{"/debug/vars", "/debug/pprof/"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Errorf("close %s body: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
	}
	resp, err := http.Get(base + "/leaky-default-mux-route")
	if err != nil {
		t.Fatalf("GET default-mux route: %v", err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Errorf("close default-mux response body: %v", err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("default-mux handler leaked onto the debug port: status %d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := net.DialTimeout("tcp", srv.Addr(), 200*time.Millisecond); err == nil {
		t.Error("debug port still accepting connections after Close")
	}
}
