package pythia

import (
	"fmt"
	"strings"

	"repro/internal/sqlengine"
	"repro/internal/textgen"
)

// NegOp returns the opposite comparison operator, the paper's neg(Op).
func NegOp(op string) string {
	switch op {
	case ">":
		return "<"
	case "<":
		return ">"
	case ">=":
		return "<="
	case "<=":
		return ">="
	case "=":
		return "<>"
	case "<>":
		return "="
	default:
		return op
	}
}

// qi quotes an identifier for the engine's dialect.
func qi(name string) string { return sqlengine.QuoteIdent(name) }

// qcol renders alias.column.
func qcol(alias, col string) string { return alias + "." + qi(col) }

// attrEvidenceQuery builds the Section II-B a-query for attribute
// ambiguity in evidence mode (the paper's q1): project both subjects' keys
// and both ambiguous attributes, join on every key attribute differing,
// and constrain the two attributes per the match type.
func attrEvidenceQuery(table string, pk []string, a1, a2, op string, match Match, limit int) string {
	var sel []string
	for _, k := range pk {
		sel = append(sel, qcol("b1", k))
	}
	for _, k := range pk {
		sel = append(sel, qcol("b2", k))
	}
	sel = append(sel, qcol("b1", a1), qcol("b2", a1), qcol("b1", a2), qcol("b2", a2))

	var where []string
	for _, k := range pk {
		where = append(where, fmt.Sprintf("%s <> %s", qcol("b1", k), qcol("b2", k)))
	}
	opB := op
	if match == Contradictory {
		opB = NegOp(op)
	}
	where = append(where,
		fmt.Sprintf("%s %s %s", qcol("b1", a1), op, qcol("b2", a1)),
		fmt.Sprintf("%s %s %s", qcol("b1", a2), opB, qcol("b2", a2)),
	)
	return selectStmt(sel, table, where, limit)
}

// attrTemplateQuery is the template-mode variant (the paper's Q1): the
// SELECT clause CONCATs the sentence directly using print(Op, label).
func attrTemplateQuery(table string, pk []string, a1, a2, op string, match Match, label string, limit int) string {
	verb := textgen.PrintOp(op, label)
	var parts []string
	for i, k := range pk {
		if i > 0 {
			parts = append(parts, "' '")
		}
		parts = append(parts, qcol("b1", k))
	}
	parts = append(parts, sqlengine.QuoteString(" "+verb+" "))
	for i, k := range pk {
		if i > 0 {
			parts = append(parts, "' '")
		}
		parts = append(parts, qcol("b2", k))
	}
	sel := []string{"CONCAT(" + strings.Join(parts, ", ") + ") AS text"}

	var where []string
	for _, k := range pk {
		where = append(where, fmt.Sprintf("%s <> %s", qcol("b1", k), qcol("b2", k)))
	}
	opB := op
	if match == Contradictory {
		opB = NegOp(op)
	}
	where = append(where,
		fmt.Sprintf("%s %s %s", qcol("b1", a1), op, qcol("b2", a1)),
		fmt.Sprintf("%s %s %s", qcol("b1", a2), opB, qcol("b2", a2)),
	)
	return selectStmt(sel, table, where, limit)
}

// rowEvidenceQuery builds the row-ambiguity a-query (the paper's q2): the
// subject is identified by a strict subset of the composite key. subset and
// rest partition the key. The WHERE clause depends on (op, match):
// contradictory uses b1.att op' b2.att (op' = op, or <> when op is =);
// uniform requires equal values on distinct rows.
func rowEvidenceQuery(table string, subset, rest []string, att, op string, match Match, limit int) string {
	var sel []string
	for _, s := range subset {
		sel = append(sel, qcol("b1", s))
	}
	sel = append(sel, qcol("b1", att), qcol("b2", att))

	var where []string
	for _, s := range subset {
		where = append(where, fmt.Sprintf("%s = %s", qcol("b1", s), qcol("b2", s)))
	}
	if match == Contradictory {
		opW := op
		if op == "=" {
			opW = "<>"
		}
		where = append(where, fmt.Sprintf("%s %s %s", qcol("b1", att), opW, qcol("b2", att)))
	} else {
		where = append(where, fmt.Sprintf("%s = %s", qcol("b1", att), qcol("b2", att)))
		if len(rest) > 0 {
			where = append(where, fmt.Sprintf("%s <> %s", qcol("b1", rest[0]), qcol("b2", rest[0])))
		}
	}
	return selectStmt(sel, table, where, limit)
}

// rowTemplateQuery is the template-mode variant (the paper's Q2).
func rowTemplateQuery(table string, subset, rest []string, att, op string, match Match, limit int) string {
	verb := textgen.PrintOp(op, "")
	valueCol := qcol("b1", att)
	if match == Contradictory && op != "=" {
		// "Carter has more than 3 fouls": the value comes from the lesser
		// row so that one interpretation holds and the other fails.
		valueCol = qcol("b2", att)
	}
	var parts []string
	for i, s := range subset {
		if i > 0 {
			parts = append(parts, "' '")
		}
		parts = append(parts, qcol("b1", s))
	}
	parts = append(parts, sqlengine.QuoteString(" "+verb+" "), valueCol, sqlengine.QuoteString(" "+att))
	sel := []string{"CONCAT(" + strings.Join(parts, ", ") + ") AS text"}

	var where []string
	for _, s := range subset {
		where = append(where, fmt.Sprintf("%s = %s", qcol("b1", s), qcol("b2", s)))
	}
	if match == Contradictory {
		opW := op
		if op == "=" {
			opW = "<>"
		}
		where = append(where, fmt.Sprintf("%s %s %s", qcol("b1", att), opW, qcol("b2", att)))
	} else {
		where = append(where, fmt.Sprintf("%s = %s", qcol("b1", att), qcol("b2", att)))
		if len(rest) > 0 {
			where = append(where, fmt.Sprintf("%s <> %s", qcol("b1", rest[0]), qcol("b2", rest[0])))
		}
	}
	return selectStmt(sel, table, where, limit)
}

// fullEvidenceQuery builds the full-ambiguity a-query (the paper's Q3):
// subjects identified by a key subset, evidence spanning an ambiguous
// attribute pair. It returns both uniform and contradicting evidence; the
// caller classifies each result row by its values.
func fullEvidenceQuery(table string, subset, rest []string, a1, a2 string, limit int) string {
	var sel []string
	for _, s := range subset {
		sel = append(sel, qcol("b1", s))
	}
	sel = append(sel, qcol("b1", a1), qcol("b1", a2), qcol("b2", a1), qcol("b2", a2))
	var where []string
	for _, s := range subset {
		where = append(where, fmt.Sprintf("%s = %s", qcol("b1", s), qcol("b2", s)))
	}
	if len(rest) > 0 {
		where = append(where, fmt.Sprintf("%s <> %s", qcol("b1", rest[0]), qcol("b2", rest[0])))
	}
	return selectStmt(sel, table, where, limit)
}

// fullTemplateQuery is the template-mode variant (the paper's Q3).
func fullTemplateQuery(table string, subset, rest []string, a1, label string, limit int) string {
	var parts []string
	for i, s := range subset {
		if i > 0 {
			parts = append(parts, "' '")
		}
		parts = append(parts, qcol("b1", s))
	}
	parts = append(parts, sqlengine.QuoteString(" has "), qcol("b1", a1), sqlengine.QuoteString(" "+label))
	sel := []string{"CONCAT(" + strings.Join(parts, ", ") + ") AS text"}
	var where []string
	for _, s := range subset {
		where = append(where, fmt.Sprintf("%s = %s", qcol("b1", s), qcol("b2", s)))
	}
	if len(rest) > 0 {
		where = append(where, fmt.Sprintf("%s <> %s", qcol("b1", rest[0]), qcol("b2", rest[0])))
	}
	return selectStmt(sel, table, where, limit)
}

// selectStmt assembles the final SQL text.
func selectStmt(sel []string, table string, where []string, limit int) string {
	var b strings.Builder
	b.WriteString("SELECT ")
	b.WriteString(strings.Join(sel, ", "))
	b.WriteString(" FROM ")
	b.WriteString(qi(table))
	b.WriteString(" b1, ")
	b.WriteString(qi(table))
	b.WriteString(" b2")
	if len(where) > 0 {
		b.WriteString(" WHERE ")
		b.WriteString(strings.Join(where, " AND "))
	}
	if limit > 0 {
		fmt.Fprintf(&b, " LIMIT %d", limit)
	}
	return b.String()
}
