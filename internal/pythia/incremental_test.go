package pythia

import (
	"reflect"
	"testing"

	"repro/internal/kb"
	"repro/internal/model"
	"repro/internal/profiling"
	"repro/internal/relation"
)

// updateAfterAppend drives the incremental path: profile base, discover,
// extend with delta, fold, and return both the incremental result and the
// from-scratch Discover over the extended table.
func updateAfterAppend(t *testing.T, base *relation.Table, delta []relation.Row, pred model.Predictor) (got, want *Metadata) {
	t.Helper()
	inc, err := profiling.NewIncremental(base)
	if err != nil {
		t.Fatal(err)
	}
	old, err := DiscoverWithProfile(base, inc.Profile(), pred)
	if err != nil {
		t.Fatal(err)
	}
	oldRows := base.NumRows()
	ext, err := base.Extend(delta)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Append(ext, oldRows); err != nil {
		t.Fatal(err)
	}
	got, err = UpdateMetadata(old, pred, ext, inc, oldRows)
	if err != nil {
		t.Fatal(err)
	}
	want, err = Discover(ext, pred)
	if err != nil {
		t.Fatal(err)
	}
	return got, want
}

func assertMetadataEqual(t *testing.T, got, want *Metadata) {
	t.Helper()
	if !reflect.DeepEqual(got.Pairs, want.Pairs) {
		t.Fatalf("pairs diverge from full discover:\n got %+v\nwant %+v", got.Pairs, want.Pairs)
	}
	if !reflect.DeepEqual(got.Kinds, want.Kinds) {
		t.Fatalf("kinds diverge from full discover: got %v want %v", got.Kinds, want.Kinds)
	}
	if !reflect.DeepEqual(got.Profile, want.Profile) {
		t.Fatalf("profile diverges from full discover:\n got %+v\nwant %+v", got.Profile, want.Profile)
	}
}

// TestUpdateMetadataKeepsUnchangedPairs covers the fast path: the appended
// rows change no column's type class, so every pair is carried forward
// without a prediction, yet the value-level signals (correlation, overlap)
// must still match a from-scratch Discover exactly.
func TestUpdateMetadataKeepsUnchangedPairs(t *testing.T) {
	base := relation.MustReadCSVString("Covid", "country,day,total_cases,new_cases\nIT,1,100,10\nIT,2,120,20\nFR,1,80,8\nFR,2,90,10\n")
	delta := []relation.Row{
		{relation.String("DE"), relation.Int(1), relation.Int(50), relation.Int(5)},
		{relation.String("DE"), relation.Int(2), relation.Int(64), relation.Int(14)},
	}
	got, want := updateAfterAppend(t, base, delta, model.NewULabel(kb.BuildDefault()))
	if len(got.Pairs) == 0 {
		t.Fatal("expected the ulabel predictor to keep at least one pair")
	}
	assertMetadataEqual(t, got, want)
}

// classTable builds a table of string-kind columns so ColumnKinds infers
// the type class from the cell contents, not the schema.
func classTable(cells [][2]string) *relation.Table {
	tab := relation.NewTable("Class", relation.Schema{
		{Name: "m1", Kind: relation.KindString},
		{Name: "m2", Kind: relation.KindString},
	})
	for _, c := range cells {
		tab.MustAppend(relation.Row{relation.String(c[0]), relation.String(c[1])})
	}
	return tab
}

// classStub pairs (m1, m2) whenever asked; PredictTableWithKinds only asks
// for same-class pairs, so the pair's existence tracks the class relation.
// It declares a zero row bound (it reads attribute names only), keeping the
// class-transition tests on the incremental carry-forward path.
type classStub struct{}

func (classStub) Name() string    { return "classstub" }
func (classStub) SampleRows() int { return 0 }
func (classStub) PredictPair(_ []string, _ [][]string, a, b string) (string, float64, bool) {
	if (a == "m1" && b == "m2") || (a == "m2" && b == "m1") {
		return "measure", 1, true
	}
	return "", 0, false
}

// TestUpdateMetadataRepredictsOnClassChange covers the slow path: the delta
// flips a column's inferred class, so the newly same-class pair must be
// predicted (it did not exist before the append).
func TestUpdateMetadataRepredictsOnClassChange(t *testing.T) {
	// Base: m1 numeric-looking (int class), m2 text (string class) — no pair.
	base := classTable([][2]string{{"1", "alpha"}, {"2", "beta"}, {"3", "gamma"}})
	delta := []relation.Row{{relation.String("oops"), relation.String("delta")}}
	got, want := updateAfterAppend(t, base, delta, classStub{})
	if len(got.Pairs) != 1 {
		t.Fatalf("class flip should surface the (m1, m2) pair, got %+v", got.Pairs)
	}
	assertMetadataEqual(t, got, want)
}

// TestUpdateMetadataDropsOnClassDivergence covers the other class
// transition: a pair that existed before the append whose columns no longer
// share a class must be dropped without a prediction.
func TestUpdateMetadataDropsOnClassDivergence(t *testing.T) {
	// Base: both numeric-looking — the (m1, m2) pair exists.
	base := classTable([][2]string{{"1", "10"}, {"2", "20"}, {"3", "30"}})
	delta := []relation.Row{{relation.String("4"), relation.String("oops")}}
	got, want := updateAfterAppend(t, base, delta, classStub{})
	if len(got.Pairs) != 0 {
		t.Fatalf("class divergence should drop the (m1, m2) pair, got %+v", got.Pairs)
	}
	assertMetadataEqual(t, got, want)
}

// prefixStub predicts a label derived from the first `bound` rows — a
// caricature of the data-task model, whose prompt serializes rows[:MaxRows]
// — so any change to that prefix changes the prediction. A negative bound
// reads every row (an unbounded declaration).
type prefixStub struct{ bound int }

func (p prefixStub) Name() string    { return "prefixstub" }
func (p prefixStub) SampleRows() int { return p.bound }
func (p prefixStub) PredictPair(_ []string, rows [][]string, a, b string) (string, float64, bool) {
	n := len(rows)
	if p.bound >= 0 && n > p.bound {
		n = p.bound
	}
	label := "rows"
	for _, row := range rows[:n] {
		label += "|" + row[0]
	}
	return label, 1, true
}

// allRowsStub is prefixStub's shape without a RowSampler declaration: the
// update path must treat it as unbounded and re-predict in full.
type allRowsStub struct{}

func (allRowsStub) Name() string { return "allrowsstub" }
func (allRowsStub) PredictPair(_ []string, rows [][]string, a, b string) (string, float64, bool) {
	label := "rows"
	for _, row := range rows {
		label += "|" + row[0]
	}
	return label, 1, true
}

// TestUpdateMetadataRepredictsWhenPrefixGrows pins the sample-bound guard:
// the base table is shorter than the predictor's declared row bound, so the
// append grows the prefix the prediction reads and the kept-pair shortcut
// would carry a stale label. The update must re-predict and match Discover
// over the extended table exactly.
func TestUpdateMetadataRepredictsWhenPrefixGrows(t *testing.T) {
	base := classTable([][2]string{{"1", "10"}, {"2", "20"}})
	delta := []relation.Row{
		{relation.String("3"), relation.String("30")},
		{relation.String("4"), relation.String("40")},
	}
	got, want := updateAfterAppend(t, base, delta, prefixStub{bound: 4})
	if len(got.Pairs) != 1 {
		t.Fatalf("expected the (m1, m2) pair, got %+v", got.Pairs)
	}
	assertMetadataEqual(t, got, want)
}

// TestUpdateMetadataKeepsPairsPastPrefix covers the sound fast path: the
// base table already covers the declared bound, so the appended rows land
// past the prefix and carried-forward predictions are provably unchanged.
func TestUpdateMetadataKeepsPairsPastPrefix(t *testing.T) {
	base := classTable([][2]string{{"1", "10"}, {"2", "20"}, {"3", "30"}, {"4", "40"}})
	delta := []relation.Row{{relation.String("5"), relation.String("50")}}
	got, want := updateAfterAppend(t, base, delta, prefixStub{bound: 4})
	if len(got.Pairs) != 1 {
		t.Fatalf("expected the (m1, m2) pair, got %+v", got.Pairs)
	}
	assertMetadataEqual(t, got, want)
}

// TestUpdateMetadataUnboundedPredictorsRepredicted covers the conservative
// defaults: a predictor declaring a negative bound, and one declaring no
// bound at all, both read every row, so the update must re-predict rather
// than carry pairs forward.
func TestUpdateMetadataUnboundedPredictorsRepredicted(t *testing.T) {
	base := classTable([][2]string{{"1", "10"}, {"2", "20"}, {"3", "30"}})
	delta := []relation.Row{{relation.String("4"), relation.String("40")}}

	got, want := updateAfterAppend(t, base, delta, prefixStub{bound: -1})
	assertMetadataEqual(t, got, want)

	got, want = updateAfterAppend(t, base, delta, allRowsStub{})
	assertMetadataEqual(t, got, want)
}

// TestUpdateMetadataFallsBackWithoutKinds covers WithPairs metadata: no
// per-column kind state to fold forward, so the update runs a full
// prediction pass over the already-updated profile.
func TestUpdateMetadataFallsBackWithoutKinds(t *testing.T) {
	base := paperTable(t)
	inc, err := profiling.NewIncremental(base)
	if err != nil {
		t.Fatal(err)
	}
	old, err := WithPairs(base, []model.Pair{{AttrA: "FG%", AttrB: "3FG%", Label: "stale", Score: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if old.Kinds != nil {
		t.Fatal("WithPairs metadata unexpectedly carries kinds; the fallback case needs none")
	}
	oldRows := base.NumRows()
	ext, err := base.Extend([]relation.Row{
		{relation.String("Young"), relation.String("NY"), relation.Int(40), relation.Int(35), relation.Int(2), relation.Int(6)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Append(ext, oldRows); err != nil {
		t.Fatal(err)
	}
	got, err := UpdateMetadata(old, stubPredictor{}, ext, inc, oldRows)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Discover(ext, stubPredictor{})
	if err != nil {
		t.Fatal(err)
	}
	assertMetadataEqual(t, got, want)
}

// TestUpdateMetadataRejectsForeignProfile pins the guard: the incremental
// profile must cover exactly the table being updated.
func TestUpdateMetadataRejectsForeignProfile(t *testing.T) {
	base := paperTable(t)
	inc, err := profiling.NewIncremental(base)
	if err != nil {
		t.Fatal(err)
	}
	other := relation.MustReadCSVString("Other", "a,b\n1,2\n")
	if _, err := UpdateMetadata(nil, stubPredictor{}, other, inc, base.NumRows()); err == nil {
		t.Fatal("UpdateMetadata accepted a profile of a different table, want error")
	}
}
