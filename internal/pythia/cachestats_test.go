package pythia

import (
	"testing"

	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/telemetry"
)

// TestRepeatedGenerationPlanCacheHitRate is the reuse contract of the
// shared query engine: a generator's a-query stream repeats a bounded set
// of SQL texts, so regenerating from the same generator must be served
// almost entirely from the prepared-plan cache. The first Generate pays
// the misses; every subsequent run should be all hits, putting the overall
// hit rate well above the 90% acceptance floor.
func TestRepeatedGenerationPlanCacheHitRate(t *testing.T) {
	d, err := data.Load("Basket")
	if err != nil {
		t.Fatal(err)
	}
	var pairs []model.Pair
	for _, gt := range d.GroundTruthPairs() {
		pairs = append(pairs, model.Pair{AttrA: gt.AttrA, AttrB: gt.AttrB, Label: gt.Labels[0]})
	}
	md, err := WithPairs(d.Table, pairs)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(d.Table, md)
	opts := Options{Mode: Templates, Seed: 97, MaxPerQuery: 8, Questions: true, Workers: 4}

	hits := telemetry.Default().Counter("sqlengine.plan_cache_hits")
	misses := telemetry.Default().Counter("sqlengine.plan_cache_misses")
	h0, m0 := hits.Value(), misses.Value()
	const runs = 20
	for i := 0; i < runs; i++ {
		if _, err := g.Generate(opts); err != nil {
			t.Fatalf("Generate run %d: %v", i, err)
		}
	}
	dh, dm := hits.Value()-h0, misses.Value()-m0
	if dh+dm == 0 {
		t.Fatal("no plan cache activity recorded across generation runs")
	}
	rate := float64(dh) / float64(dh+dm)
	if rate <= 0.90 {
		t.Errorf("plan cache hit rate = %.3f (hits %d, misses %d), want > 0.90", rate, dh, dm)
	}
}
