package pythia

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/telemetry"
)

// marshalExamples serializes generated examples to the byte form the
// regression compares. JSON keeps every field visible, so any drift in
// text, evidence order, key attributes or structure shows up.
func marshalExamples(t *testing.T, exs []Example) []byte {
	t.Helper()
	b, err := json.Marshal(exs)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// generateOnce runs the pipeline from scratch — fresh table load, fresh
// profiling and metadata, fresh generator — so the comparison covers key
// discovery and a-query instantiation, not just the final formatting.
func generateOnce(t *testing.T, opts Options) []byte {
	t.Helper()
	d, err := data.Load("Basket")
	if err != nil {
		t.Fatal(err)
	}
	var pairs []model.Pair
	for _, gt := range d.GroundTruthPairs() {
		pairs = append(pairs, model.Pair{AttrA: gt.AttrA, AttrB: gt.AttrB, Label: gt.Labels[0]})
	}
	md, err := WithPairs(d.Table, pairs)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(d.Table, md)
	exs, err := g.Generate(opts)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := g.NotAmbiguous(opts)
	if err != nil {
		t.Fatal(err)
	}
	return append(marshalExamples(t, exs), marshalExamples(t, plain)...)
}

// TestGenerateByteIdenticalAcrossRuns is the reproducibility regression
// the lint rules defend: two complete runs with the same seed must produce
// byte-identical example streams, for both generation modes.
func TestGenerateByteIdenticalAcrossRuns(t *testing.T) {
	for _, mode := range []Mode{TextGeneration, Templates} {
		opts := Options{Mode: mode, Seed: 97, MaxPerQuery: 8}
		a := generateOnce(t, opts)
		b := generateOnce(t, opts)
		if !bytes.Equal(a, b) {
			t.Errorf("mode %v: two runs with seed %d differ (%d vs %d bytes)", mode, opts.Seed, len(a), len(b))
		}
	}
}

// TestGenerateByteIdenticalWithTelemetryToggled is the observability
// contract of internal/telemetry: metrics observe the pipeline, they
// never steer it. Generation with the default registry disabled must be
// byte-identical to generation with it enabled, across modes and worker
// counts.
func TestGenerateByteIdenticalWithTelemetryToggled(t *testing.T) {
	reg := telemetry.Default()
	was := reg.Enabled()
	defer reg.SetEnabled(was)

	for _, mode := range []Mode{TextGeneration, Templates} {
		for _, workers := range []int{1, 4} {
			opts := Options{Mode: mode, Seed: 97, MaxPerQuery: 8, Questions: true, Workers: workers}
			reg.SetEnabled(true)
			on := generateOnce(t, opts)
			reg.SetEnabled(false)
			off := generateOnce(t, opts)
			if !bytes.Equal(on, off) {
				t.Errorf("mode %v, %d workers: output differs with telemetry on vs off (%d vs %d bytes)",
					mode, workers, len(on), len(off))
			}
		}
	}
}

// TestGenerateByteIdenticalAcrossWorkers is the sharding contract of the
// parallel pipeline: any worker count must produce the exact byte stream
// of the sequential run, in both generation modes. Questions are enabled
// so the row-parity alternation is covered too.
func TestGenerateByteIdenticalAcrossWorkers(t *testing.T) {
	for _, mode := range []Mode{TextGeneration, Templates} {
		sequential := generateOnce(t, Options{Mode: mode, Seed: 97, MaxPerQuery: 8, Questions: true, Workers: 1})
		for _, workers := range []int{2, 4, 8} {
			got := generateOnce(t, Options{Mode: mode, Seed: 97, MaxPerQuery: 8, Questions: true, Workers: workers})
			if !bytes.Equal(sequential, got) {
				t.Errorf("mode %v: %d workers diverge from sequential output (%d vs %d bytes)",
					mode, workers, len(sequential), len(got))
			}
		}
	}
}
