package pythia

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/profiling"
	"repro/internal/relation"
)

// UpdateMetadata folds appended rows into discovered metadata without
// re-predicting every attribute pair. inc must already have absorbed the
// delta (its Profile covers all of t); oldRows is the row count before the
// append.
//
// The incremental contract rests on two facts. First, every built-in
// predictor's decision depends only on the header and a bounded row prefix
// (serialize.Config.MaxRows caps the serialized sample, and the rule-based
// baselines ignore rows entirely), so appending rows cannot change the
// prediction for a pair whose type classes are unchanged — pairs are kept
// or skipped without a forward pass. Second, relation.UnifyKind is a
// semilattice join, so per-column kinds are updated from the delta alone;
// only pairs whose class relation changed are re-predicted (newly
// same-class) or dropped (no longer same-class). Correlation is recomputed
// with the full-table two-pass formula (it is cheap and must match the
// from-scratch float exactly) and value overlap comes from inc's retained
// distinct sets — the same integers a full rescan would count.
//
// The result is byte-identical to Discover over the extended table for
// any predictor honoring the bounded-prefix contract. Custom predictors
// that read rows beyond the serialization cap must re-discover instead.
func UpdateMetadata(old *Metadata, pred model.Predictor, t *relation.Table, inc *profiling.Incremental, oldRows int) (*Metadata, error) {
	prof := inc.Profile()
	if prof.Table != t {
		return nil, fmt.Errorf("pythia: update metadata %s: incremental profile covers a different table", t.Name)
	}
	if old == nil || old.Kinds == nil || len(old.Kinds) != t.NumCols() {
		// No kind state to fold forward (WithPairs metadata): fall back to a
		// full prediction pass over the already-updated profile.
		return DiscoverWithProfile(t, prof, pred)
	}

	header := t.Schema.Names()
	deltaKinds := model.ColumnKinds(header, stringRowsFrom(t, oldRows))
	kinds := make([]relation.Kind, len(old.Kinds))
	for c := range kinds {
		kinds[c] = relation.UnifyKind(old.Kinds[c], deltaKinds[c])
	}

	type pairKey struct{ a, b string }
	oldPairs := make(map[pairKey]model.Pair, len(old.Pairs))
	for _, p := range old.Pairs {
		oldPairs[pairKey{p.AttrA, p.AttrB}] = p
	}

	// rows is only materialized when a newly same-class pair needs a real
	// prediction; kept and dropped pairs never touch the cell strings.
	var rows [][]string
	var pairs []model.Pair
	for i := 0; i < len(header); i++ {
		for j := i + 1; j < len(header); j++ {
			if !model.SameClass(kinds[i], kinds[j]) {
				continue
			}
			if model.SameClass(old.Kinds[i], old.Kinds[j]) {
				// Class relation unchanged: the prediction is provably the
				// same as before the append — keep the pair iff it existed.
				if p, ok := oldPairs[pairKey{header[i], header[j]}]; ok {
					pairs = append(pairs, p)
				}
				continue
			}
			if rows == nil {
				rows = stringRows(t)
			}
			if label, score, ok := pred.PredictPair(header, rows, header[i], header[j]); ok {
				pairs = append(pairs, model.Pair{AttrA: header[i], AttrB: header[j], Label: label, Score: score})
			}
		}
	}

	// Refresh the value-level signals: they aggregate over all rows, so
	// every surviving pair changes with the delta.
	for i := range pairs {
		if corr, err := profiling.Correlation(t, pairs[i].AttrA, pairs[i].AttrB); err == nil {
			pairs[i].Correlation = corr
		} else {
			pairs[i].Correlation = 0
		}
		if ov, err := inc.ValueOverlap(pairs[i].AttrA, pairs[i].AttrB); err == nil {
			pairs[i].ValueOverlap = ov
		} else {
			pairs[i].ValueOverlap = 0
		}
	}
	return &Metadata{Profile: prof, Pairs: pairs, Kinds: kinds}, nil
}

// stringRowsFrom formats the cells of t.Rows[from:] for the predictors.
func stringRowsFrom(t *relation.Table, from int) [][]string {
	rows := make([][]string, 0, t.NumRows()-from)
	for _, row := range t.Rows[from:] {
		out := make([]string, len(row))
		for c, v := range row {
			out[c] = v.Format()
		}
		rows = append(rows, out)
	}
	return rows
}
