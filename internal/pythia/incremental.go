package pythia

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/profiling"
	"repro/internal/relation"
)

// UpdateMetadata folds appended rows into discovered metadata without
// re-predicting every attribute pair. inc must already have absorbed the
// delta (its Profile covers all of t); oldRows is the row count before the
// append.
//
// The incremental contract rests on two facts. First, a predictor that
// declares a bounded row prefix via model.RowSampler decides from the
// header and at most its first SampleRows() rows, so an append that only
// adds rows past that prefix cannot change the prediction for a pair whose
// type classes are unchanged — such pairs are kept or skipped without a
// forward pass. When the append reaches into the declared prefix (the base
// table was shorter than the bound), or the predictor declares no bound,
// every prediction could change and the update re-predicts all pairs over
// the already-updated profile. Second, relation.UnifyKind is a semilattice
// join, so per-column kinds are updated from the delta alone; only pairs
// whose class relation changed are re-predicted (newly same-class) or
// dropped (no longer same-class). Correlation is recomputed with the
// full-table two-pass formula (it is cheap and must match the from-scratch
// float exactly) and value overlap comes from inc's retained distinct
// sets — the same integers a full rescan would count.
//
// The result is byte-identical to Discover over the extended table for
// any predictor whose RowSampler declaration is honest; predictors without
// one are always re-predicted in full, which is trivially identical.
func UpdateMetadata(old *Metadata, pred model.Predictor, t *relation.Table, inc *profiling.Incremental, oldRows int) (*Metadata, error) {
	prof := inc.Profile()
	if prof.Table != t {
		return nil, fmt.Errorf("pythia: update metadata %s: incremental profile covers a different table", t.Name)
	}
	if old == nil || old.Kinds == nil || len(old.Kinds) != t.NumCols() {
		// No kind state to fold forward (WithPairs metadata): fall back to a
		// full prediction pass over the already-updated profile.
		return DiscoverWithProfile(t, prof, pred)
	}
	// The kept-pair shortcut below is sound only when the append cannot
	// change what the predictor reads. When the appended rows land inside
	// the predictor's declared sample prefix (oldRows < SampleRows()) — or
	// the predictor declares no bound at all — any prediction could change,
	// so re-predict everything instead of carrying pairs forward.
	if rs, ok := pred.(model.RowSampler); !ok || rs.SampleRows() < 0 || oldRows < rs.SampleRows() {
		return DiscoverWithProfile(t, prof, pred)
	}

	header := t.Schema.Names()
	deltaKinds := model.ColumnKinds(header, stringRowsFrom(t, oldRows))
	kinds := make([]relation.Kind, len(old.Kinds))
	for c := range kinds {
		kinds[c] = relation.UnifyKind(old.Kinds[c], deltaKinds[c])
	}

	type pairKey struct{ a, b string }
	oldPairs := make(map[pairKey]model.Pair, len(old.Pairs))
	for _, p := range old.Pairs {
		oldPairs[pairKey{p.AttrA, p.AttrB}] = p
	}

	// rows is only materialized when a newly same-class pair needs a real
	// prediction; kept and dropped pairs never touch the cell strings.
	var rows [][]string
	var pairs []model.Pair
	for i := 0; i < len(header); i++ {
		for j := i + 1; j < len(header); j++ {
			if !model.SameClass(kinds[i], kinds[j]) {
				continue
			}
			if model.SameClass(old.Kinds[i], old.Kinds[j]) {
				// Class relation unchanged: the prediction is provably the
				// same as before the append — keep the pair iff it existed.
				if p, ok := oldPairs[pairKey{header[i], header[j]}]; ok {
					pairs = append(pairs, p)
				}
				continue
			}
			if rows == nil {
				rows = stringRows(t)
			}
			if label, score, ok := pred.PredictPair(header, rows, header[i], header[j]); ok {
				pairs = append(pairs, model.Pair{AttrA: header[i], AttrB: header[j], Label: label, Score: score})
			}
		}
	}

	// Refresh the value-level signals: they aggregate over all rows, so
	// every surviving pair changes with the delta.
	for i := range pairs {
		if corr, err := profiling.Correlation(t, pairs[i].AttrA, pairs[i].AttrB); err == nil {
			pairs[i].Correlation = corr
		} else {
			pairs[i].Correlation = 0
		}
		if ov, err := inc.ValueOverlap(pairs[i].AttrA, pairs[i].AttrB); err == nil {
			pairs[i].ValueOverlap = ov
		} else {
			pairs[i].ValueOverlap = 0
		}
	}
	return &Metadata{Profile: prof, Pairs: pairs, Kinds: kinds}, nil
}

// stringRowsFrom formats the cells of t.Rows[from:] for the predictors.
func stringRowsFrom(t *relation.Table, from int) [][]string {
	rows := make([][]string, 0, t.NumRows()-from)
	for _, row := range t.Rows[from:] {
		out := make([]string, len(row))
		for c, v := range row {
			out[c] = v.Format()
		}
		rows = append(rows, out)
	}
	return rows
}
