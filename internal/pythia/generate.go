package pythia

import (
	"fmt"
	"strings"

	"repro/internal/relation"
	"repro/internal/sqlengine"
	"repro/internal/textgen"
)

// Mode selects the text production path of Section IV.
type Mode uint8

const (
	// TextGeneration runs the data-to-text generator over the evidence
	// (variety, slower) — the paper's default.
	TextGeneration Mode = iota
	// Templates produces the text inside the SQL SELECT clause
	// (uniform phrasing, millions of examples in seconds).
	Templates
)

// String names the mode.
func (m Mode) String() string {
	if m == Templates {
		return "templates"
	}
	return "text-generation"
}

// Options configures Algorithm 1.
type Options struct {
	// Structures to generate; nil means all three.
	Structures []Structure
	// Matches to generate; nil means both.
	Matches []Match
	// Ops are the claim operators; nil means {">", "<", "="}.
	Ops []string
	// Mode selects text generation vs. templates.
	Mode Mode
	// MaxPerQuery caps the evidence rows consumed per a-query (0 = 4 in
	// text-generation mode, unlimited in template mode).
	MaxPerQuery int
	// Questions interleaves interrogative forms with statements.
	Questions bool
	// Seed drives phrasing variety.
	Seed int64
}

// defaults fills zero values.
func (o Options) defaults() Options {
	if o.Structures == nil {
		o.Structures = []Structure{AttributeAmb, RowAmb, FullAmb}
	}
	if o.Matches == nil {
		o.Matches = []Match{Contradictory, Uniform}
	}
	if o.Ops == nil {
		o.Ops = []string{">", "<", "="}
	}
	if o.MaxPerQuery == 0 && o.Mode == TextGeneration {
		o.MaxPerQuery = 4
	}
	return o
}

// Generator generates examples for one table given its metadata.
type Generator struct {
	table  *relation.Table
	md     *Metadata
	engine *sqlengine.Engine
	gen    *textgen.Generator
}

// NewGenerator prepares a generator: registers the table with a fresh
// engine instance.
func NewGenerator(t *relation.Table, md *Metadata) *Generator {
	e := sqlengine.NewEngine()
	e.Register(t)
	return &Generator{table: t, md: md, engine: e}
}

// Generate runs Algorithm 1 and returns the examples, deduplicated by text.
func (g *Generator) Generate(opts Options) ([]Example, error) {
	opts = opts.defaults()
	g.gen = textgen.NewGenerator(opts.Seed)
	var out []Example
	seen := map[string]bool{}
	emit := func(ex Example) {
		if ex.Text == "" || seen[ex.Text] {
			return
		}
		seen[ex.Text] = true
		ex.Dataset = g.table.Name
		out = append(out, ex)
	}

	for _, op := range opts.Ops {
		for _, match := range opts.Matches {
			for _, st := range opts.Structures {
				var err error
				switch st {
				case AttributeAmb:
					err = g.attrAmb(op, match, opts, emit)
				case RowAmb:
					err = g.rowAmb(op, match, opts, emit)
				case FullAmb:
					err = g.fullAmb(op, match, opts, emit)
				}
				if err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

// opAllowed reports whether an operator applies to a column kind: order
// operators need numeric columns; equality works for every kind.
func opAllowed(op string, kind relation.Kind) bool {
	switch op {
	case "=", "<>":
		return true
	default:
		return kind.Numeric()
	}
}

// attrAmb generates attribute-ambiguity examples: one a-query per
// discovered ambiguous pair (lines 10-16 of Algorithm 1).
func (g *Generator) attrAmb(op string, match Match, opts Options, emit func(Example)) error {
	pk := g.md.Profile.PrimaryKey
	if len(pk) == 0 {
		return nil // no key: subjects cannot be precisely identified
	}
	for _, pair := range g.md.Pairs {
		ka, oka := g.table.Schema.Column(pair.AttrA)
		kb, okb := g.table.Schema.Column(pair.AttrB)
		if !oka || !okb || inKey(pk, pair.AttrA) || inKey(pk, pair.AttrB) {
			continue
		}
		if !opAllowed(op, ka.Kind) || !opAllowed(op, kb.Kind) {
			continue
		}
		if opts.Mode == Templates {
			q := attrTemplateQuery(g.table.Name, pk, pair.AttrA, pair.AttrB, op, match, pair.Label, opts.MaxPerQuery)
			res, err := g.engine.Query(q)
			if err != nil {
				return fmt.Errorf("pythia: attribute template query: %w", err)
			}
			for _, row := range res.Rows {
				emit(Example{
					Query: q, Text: row[0].AsString(),
					Structure: AttributeAmb, Match: match,
					Label: pair.Label, Attrs: []string{pair.AttrA, pair.AttrB},
					KeyAttrs: pk, Op: op,
				})
			}
			continue
		}
		q := attrEvidenceQuery(g.table.Name, pk, pair.AttrA, pair.AttrB, op, match, opts.MaxPerQuery)
		res, err := g.engine.Query(q)
		if err != nil {
			return fmt.Errorf("pythia: attribute evidence query: %w", err)
		}
		for i, row := range res.Rows {
			n := len(pk)
			keys1 := keyCells(pk, row[:n])
			keys2 := keyCells(pk, row[n:2*n])
			evidence := append(append([]textgen.Cell{}, keys1...), keys2...)
			evidence = append(evidence,
				textgen.Cell{Attr: pair.Label, Value: row[2*n].Format()},
				textgen.Cell{Attr: pair.Label, Value: row[2*n+1].Format()},
				textgen.Cell{Attr: pair.Label, Value: row[2*n+2].Format()},
				textgen.Cell{Attr: pair.Label, Value: row[2*n+3].Format()},
			)
			var text string
			question := opts.Questions && i%2 == 1
			if question {
				text = g.gen.ComparativeQuestion(keys1, keys2, pair.Label, op)
			} else {
				text = g.gen.Comparative(keys1, keys2, pair.Label, op)
			}
			emit(Example{
				Query: q, Text: text, IsQuestion: question,
				Structure: AttributeAmb, Match: match,
				Label: pair.Label, Attrs: []string{pair.AttrA, pair.AttrB},
				KeyAttrs: pk, Evidence: evidence, Op: op,
			})
		}
	}
	return nil
}

// rowAmb generates row-ambiguity examples: one a-query per composite key
// and non-key attribute (lines 17-24 of Algorithm 1). Uniform evidence is
// only defined for the equality claim (two distinct rows, same value).
func (g *Generator) rowAmb(op string, match Match, opts Options, emit func(Example)) error {
	if match == Uniform && op != "=" {
		return nil
	}
	for _, ck := range g.compositeKeys() {
		subset, rest := ck[:1], ck[1:]
		for _, att := range g.md.Profile.NonKeyAttributes() {
			col, ok := g.table.Schema.Column(att)
			if !ok || !opAllowed(op, col.Kind) {
				continue
			}
			if op == "<>" {
				continue // "does not have" claims are not in the paper's templates
			}
			if opts.Mode == Templates {
				q := rowTemplateQuery(g.table.Name, subset, rest, att, op, match, opts.MaxPerQuery)
				res, err := g.engine.Query(q)
				if err != nil {
					return fmt.Errorf("pythia: row template query: %w", err)
				}
				for _, row := range res.Rows {
					emit(Example{
						Query: q, Text: row[0].AsString(),
						Structure: RowAmb, Match: match,
						Attrs: []string{att}, KeyAttrs: subset, Op: op,
					})
				}
				continue
			}
			q := rowEvidenceQuery(g.table.Name, subset, rest, att, op, match, opts.MaxPerQuery)
			res, err := g.engine.Query(q)
			if err != nil {
				return fmt.Errorf("pythia: row evidence query: %w", err)
			}
			for i, row := range res.Rows {
				n := len(subset)
				partial := keyCells(subset, row[:n])
				v1, v2 := row[n], row[n+1]
				claim := v1
				if match == Contradictory && op != "=" {
					claim = v2 // "more than {lesser}" so interpretations split
				}
				measure := textgen.Cell{Attr: att, Value: claim.Format()}
				evidence := append(append([]textgen.Cell{}, partial...),
					textgen.Cell{Attr: att, Value: v1.Format()},
					textgen.Cell{Attr: att, Value: v2.Format()},
				)
				var text string
				question := opts.Questions && i%2 == 1
				if question {
					text = g.gen.RowQuestion(partial, measure, op)
				} else {
					text = g.gen.RowStatement(partial, measure, op)
				}
				emit(Example{
					Query: q, Text: text, IsQuestion: question,
					Structure: RowAmb, Match: match,
					Attrs: []string{att}, KeyAttrs: subset, Evidence: evidence, Op: op,
				})
			}
		}
	}
	return nil
}

// fullAmb generates full-ambiguity examples: partial subject plus an
// ambiguous attribute pair (lines 25-34 of Algorithm 1). The claim is an
// equality; each evidence row is classified uniform or contradictory by
// comparing all four interpretations, mirroring the paper's note that Q3
// returns both kinds.
func (g *Generator) fullAmb(op string, match Match, opts Options, emit func(Example)) error {
	if op != "=" {
		return nil
	}
	for _, ck := range g.compositeKeys() {
		subset, rest := ck[:1], ck[1:]
		for _, pair := range g.md.Pairs {
			if inKey(ck, pair.AttrA) || inKey(ck, pair.AttrB) {
				continue
			}
			if _, ok := g.table.Schema.Column(pair.AttrA); !ok {
				continue
			}
			if _, ok := g.table.Schema.Column(pair.AttrB); !ok {
				continue
			}
			if opts.Mode == Templates {
				q := fullTemplateQuery(g.table.Name, subset, rest, pair.AttrA, pair.Label, opts.MaxPerQuery)
				res, err := g.engine.Query(q)
				if err != nil {
					return fmt.Errorf("pythia: full template query: %w", err)
				}
				for _, row := range res.Rows {
					emit(Example{
						Query: q, Text: row[0].AsString(),
						Structure: FullAmb, Match: match,
						Label: pair.Label, Attrs: []string{pair.AttrA, pair.AttrB},
						KeyAttrs: subset, Op: op,
					})
				}
				continue
			}
			q := fullEvidenceQuery(g.table.Name, subset, rest, pair.AttrA, pair.AttrB, opts.MaxPerQuery*2)
			res, err := g.engine.Query(q)
			if err != nil {
				return fmt.Errorf("pythia: full evidence query: %w", err)
			}
			emitted := 0
			for i, row := range res.Rows {
				if opts.MaxPerQuery > 0 && emitted >= opts.MaxPerQuery {
					break
				}
				n := len(subset)
				partial := keyCells(subset, row[:n])
				vals := row[n : n+4] // b1.a1, b1.a2, b2.a1, b2.a2
				claim := vals[0]
				uniform := true
				for _, v := range vals[1:] {
					if !v.Equal(claim) {
						uniform = false
						break
					}
				}
				got := Contradictory
				if uniform {
					got = Uniform
				}
				if got != match {
					continue
				}
				measure := textgen.Cell{Attr: pair.Label, Value: claim.Format()}
				evidence := append(append([]textgen.Cell{}, partial...),
					textgen.Cell{Attr: pair.Label, Value: vals[0].Format()},
					textgen.Cell{Attr: pair.Label, Value: vals[1].Format()},
					textgen.Cell{Attr: pair.Label, Value: vals[2].Format()},
					textgen.Cell{Attr: pair.Label, Value: vals[3].Format()},
				)
				var text string
				question := opts.Questions && i%2 == 1
				if question {
					text = g.gen.Question(partial, measure)
				} else {
					text = g.gen.Statement(partial, measure)
				}
				emit(Example{
					Query: q, Text: text, IsQuestion: question,
					Structure: FullAmb, Match: match,
					Label: pair.Label, Attrs: []string{pair.AttrA, pair.AttrB},
					KeyAttrs: subset, Evidence: evidence, Op: op,
				})
				emitted++
			}
		}
	}
	return nil
}

// NotAmbiguous generates control examples without data ambiguity: subjects
// identified by the full primary key, claims over a single unambiguous
// attribute. Target applications need them to balance training data.
func (g *Generator) NotAmbiguous(opts Options) ([]Example, error) {
	opts = opts.defaults()
	g.gen = textgen.NewGenerator(opts.Seed)
	pk := g.md.Profile.PrimaryKey
	if len(pk) == 0 {
		return nil, nil
	}
	ambiguous := map[string]bool{}
	for _, p := range g.md.Pairs {
		ambiguous[strings.ToLower(p.AttrA)] = true
		ambiguous[strings.ToLower(p.AttrB)] = true
	}
	var out []Example
	seen := map[string]bool{}
	for _, att := range g.md.Profile.NonKeyAttributes() {
		if ambiguous[strings.ToLower(att)] {
			continue
		}
		col, _ := g.table.Schema.Column(att)
		max := opts.MaxPerQuery
		if max <= 0 {
			max = 4
		}
		for i, row := range g.table.Rows {
			if i >= max {
				break
			}
			keys := make([]textgen.Cell, len(pk))
			for j, k := range pk {
				keys[j] = textgen.Cell{Attr: k, Value: row[g.table.Schema.Index(k)].Format()}
			}
			v := row[g.table.Schema.Index(att)]
			for _, op := range opts.Ops {
				if !opAllowed(op, col.Kind) || (op == "<>") {
					continue
				}
				// The claim must hold under its single interpretation:
				// "more than X" claims cite a bound below the true value.
				claim := v
				switch {
				case op == ">" && v.Kind() == relation.KindInt:
					claim = relation.Int(v.AsInt() - 1)
				case op == "<" && v.Kind() == relation.KindInt:
					claim = relation.Int(v.AsInt() + 1)
				case op == ">" && v.Kind() == relation.KindFloat:
					claim = relation.Float(v.AsFloat() - 1)
				case op == "<" && v.Kind() == relation.KindFloat:
					claim = relation.Float(v.AsFloat() + 1)
				}
				measure := textgen.Cell{Attr: att, Value: claim.Format()}
				var text string
				question := opts.Questions && i%2 == 1
				switch {
				case op == "=" && question:
					text = g.gen.Question(keys, measure)
				case op == "=":
					text = g.gen.Statement(keys, measure)
				case question:
					text = g.gen.RowQuestion(keys, measure, op)
				default:
					text = g.gen.RowStatement(keys, measure, op)
				}
				if text == "" || seen[text] {
					continue
				}
				seen[text] = true
				// Evidence carries the true table cell; the text may cite a
				// bound derived from it.
				evidence := append(append([]textgen.Cell{}, keys...), textgen.Cell{Attr: att, Value: v.Format()})
				out = append(out, Example{
					Dataset: g.table.Name, Text: text, IsQuestion: question,
					Match: Uniform, Structure: NoAmb,
					Attrs: []string{att}, KeyAttrs: pk,
					Evidence: evidence, Op: op,
				})
			}
		}
	}
	return out, nil
}

// compositeKeys returns the keys row/full ambiguity may under-identify.
// Small tables make measure columns accidentally unique, so instead of
// every minimal unique column combination we only trust the semantically
// chosen primary key, when it is composite.
func (g *Generator) compositeKeys() [][]string {
	pk := g.md.Profile.PrimaryKey
	if len(pk) < 2 {
		return nil
	}
	return [][]string{pk}
}

// inKey reports whether att is one of the key columns.
func inKey(key []string, att string) bool {
	for _, k := range key {
		if strings.EqualFold(k, att) {
			return true
		}
	}
	return false
}

// keyCells pairs key attribute names with their values.
func keyCells(names []string, vals relation.Row) []textgen.Cell {
	out := make([]textgen.Cell, len(names))
	for i := range names {
		out[i] = textgen.Cell{Attr: names[i], Value: vals[i].Format()}
	}
	return out
}
