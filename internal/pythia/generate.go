package pythia

import (
	"fmt"
	"strings"

	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/relation"
	"repro/internal/sqlengine"
	"repro/internal/telemetry"
	"repro/internal/textgen"
)

// pyMet holds the generation pipeline's metric handles. Telemetry only
// observes Algorithm 1 — counters are updated in the deterministic merge
// step or with unit-local tallies, and never influence what is generated
// (the determinism tests run with telemetry on and off).
var pyMet = newPyMet()

type pyMetrics struct {
	units          *telemetry.Counter
	dedupDrops     *telemetry.Counter
	emptyTextDrops *telemetry.Counter
	quotaDrops     *telemetry.Counter
	generateNS     *telemetry.Histogram
	examples       [NoAmb + 1]*telemetry.Counter // indexed by Structure
}

func newPyMet() pyMetrics {
	r := telemetry.Default()
	m := pyMetrics{
		units:          r.Counter("pythia.units"),
		dedupDrops:     r.Counter("pythia.dedup_drops"),
		emptyTextDrops: r.Counter("pythia.empty_text_drops"),
		quotaDrops:     r.Counter("pythia.quota_drops"),
		generateNS:     r.LatencyHistogram("pythia.generate_ns"),
	}
	for s := AttributeAmb; s <= NoAmb; s++ {
		m.examples[s] = r.Counter("pythia.examples." + s.String())
	}
	return m
}

// Mode selects the text production path of Section IV.
type Mode uint8

const (
	// TextGeneration runs the data-to-text generator over the evidence
	// (variety, slower) — the paper's default.
	TextGeneration Mode = iota
	// Templates produces the text inside the SQL SELECT clause
	// (uniform phrasing, millions of examples in seconds).
	Templates
)

// String names the mode.
func (m Mode) String() string {
	if m == Templates {
		return "templates"
	}
	return "text-generation"
}

// Options configures Algorithm 1.
type Options struct {
	// Structures to generate; nil means all three.
	Structures []Structure
	// Matches to generate; nil means both.
	Matches []Match
	// Ops are the claim operators; nil means {">", "<", "="}.
	Ops []string
	// Mode selects text generation vs. templates.
	Mode Mode
	// MaxPerQuery caps the evidence rows consumed per a-query (0 = 4 in
	// text-generation mode, unlimited in template mode).
	MaxPerQuery int
	// Questions interleaves interrogative forms with statements.
	Questions bool
	// Seed drives phrasing variety.
	Seed int64
	// Workers shards the a-query work units across a worker pool
	// (0 = runtime.GOMAXPROCS, 1 = sequential). Output is byte-identical
	// at every worker count: units are enumerated in the canonical
	// op → match → structure → pair/key order, each shard realizes text
	// with the same stateless seeded generator, and shard outputs are
	// merged (and text-deduplicated) in unit order.
	Workers int
}

// defaults fills zero values.
func (o Options) defaults() Options {
	if o.Structures == nil {
		o.Structures = []Structure{AttributeAmb, RowAmb, FullAmb}
	}
	if o.Matches == nil {
		o.Matches = []Match{Contradictory, Uniform}
	}
	if o.Ops == nil {
		o.Ops = []string{">", "<", "="}
	}
	if o.MaxPerQuery == 0 && o.Mode == TextGeneration {
		o.MaxPerQuery = 4
	}
	return o
}

// Generator generates examples for one table given its metadata. It holds
// no per-run mutable state — the table, metadata and engine are fixed at
// construction and text generators are created per run or per shard — so
// one Generator serves concurrent Generate/GenerateStream/NotAmbiguous/
// AggregateComparisons calls; the engine's snapshot registry even lets
// AggregateComparisons register a new dimension table while other calls
// are mid-query.
type Generator struct {
	table  *relation.Table
	md     *Metadata
	engine *sqlengine.Engine
}

// NewGenerator prepares a generator: registers the table with a fresh
// engine instance.
func NewGenerator(t *relation.Table, md *Metadata) *Generator {
	return NewGeneratorWith(sqlengine.NewEngine(), t, md)
}

// NewGeneratorWith prepares a generator over a caller-shared engine,
// registering the table into it. The engine's snapshot registry makes the
// registration safe concurrently with queries other generators are running
// on the same engine, so a multi-tenant process (the serving layer) can
// ingest a new table while streaming examples for existing ones. Queries
// bind tables by name: re-registering a name a live generator is streaming
// from switches that stream's later queries to the new rows (each query
// individually consistent) — replace the generator together with the
// registration when that matters.
func NewGeneratorWith(e *sqlengine.Engine, t *relation.Table, md *Metadata) *Generator {
	e.Register(t)
	return &Generator{table: t, md: md, engine: e}
}

// NewGeneratorOver prepares a generator over a table the engine already
// serves under t.Name — typically the extended table Engine.Append just
// published. Unlike NewGeneratorWith it does not re-register, so the
// engine keeps the caches Append chose not to invalidate.
func NewGeneratorOver(e *sqlengine.Engine, t *relation.Table, md *Metadata) *Generator {
	return &Generator{table: t, md: md, engine: e}
}

// shard is one worker's execution handle: the generator's shared engine
// plus its own text generator. The engine is safe for concurrent queries
// and caches prepared plans and join indexes internally, so all workers
// draw from one cache instead of re-parsing and re-indexing per shard.
// textgen.Generator chooses phrasings by hashing (seed, content) — it
// carries no mutable stream state — so per-shard generators with the
// sequential seed realize exactly the text the sequential path would,
// no matter which worker claims which unit.
type shard struct {
	engine *sqlengine.Engine
	gen    *textgen.Generator
}

// newShard builds a worker's state over the shared engine.
func (g *Generator) newShard(opts Options) *shard {
	return &shard{engine: g.engine, gen: textgen.NewGenerator(opts.Seed)}
}

// unit is one shardable a-query instance of Algorithm 1: a (structure,
// match, op, pair-or-key) combination. Units run independently on any
// shard and emit their examples in the same order the sequential loops
// would.
type unit func(sh *shard, emit func(Example)) error

// ExampleSink consumes the deduplicated example stream of GenerateStream
// in canonical order. Emit is never called concurrently; an Emit error
// aborts the stream and is returned from GenerateStream.
type ExampleSink interface {
	Emit(ex Example) error
}

// SinkFunc adapts a function to an ExampleSink.
type SinkFunc func(Example) error

// Emit calls f.
func (f SinkFunc) Emit(ex Example) error { return f(ex) }

// UnitSink is optionally implemented by sinks that need unit boundaries —
// checkpointing sinks above all. EndUnit(u) is called after the last
// example of absolute unit u has been emitted; at that point every example
// of every unit <= u has reached the sink, which is exactly the guarantee
// a resume manifest records.
type UnitSink interface {
	EndUnit(unit int) error
}

// Resume positions a streaming run after an already-flushed prefix: units
// below NextUnit are skipped entirely and Seen carries the text-dedup set
// replayed from the flushed output, so the continued stream is
// byte-identical to the suffix an uninterrupted run would have produced.
// The zero value means "start from the beginning".
type Resume struct {
	NextUnit int
	Seen     map[string]bool
}

// Generate runs Algorithm 1 and returns the examples, deduplicated by text.
// Work is sharded across opts.Workers workers; see Options.Workers for the
// determinism contract. It is a thin slice-collecting wrapper over
// GenerateStream — callers producing large outputs should stream into a
// sink instead of materializing.
func (g *Generator) Generate(opts Options) ([]Example, error) {
	var out []Example
	err := g.GenerateStream(opts, SinkFunc(func(ex Example) error {
		out = append(out, ex)
		return nil
	}))
	if err != nil {
		return nil, err
	}
	return out, nil
}

// GenerateStream runs Algorithm 1 and pushes each example to sink as soon
// as its unit's canonical position is reached, without materializing the
// stream: per-unit workers emit through a bounded channel into an ordered
// merge loop (parallel.StreamShards), which applies the text dedup exactly
// where the sequential emit loop would and forwards survivors to the sink.
// Memory is bounded by the reorder window — O(workers) buffered units —
// plus the dedup set, regardless of output size. The byte stream is
// identical to Generate's at every worker count.
func (g *Generator) GenerateStream(opts Options, sink ExampleSink) error {
	return g.GenerateStreamFrom(opts, Resume{}, sink)
}

// GenerateStreamFrom is GenerateStream continuing from a resume position:
// units below res.NextUnit are skipped (their output is assumed already
// flushed by a previous run) and res.Seen seeds the dedup set. If sink
// implements UnitSink, EndUnit is invoked with absolute unit indices, so a
// checkpoint written at unit u on the first run and a resume at NextUnit
// u+1 compose into one byte-identical total stream.
func (g *Generator) GenerateStreamFrom(opts Options, res Resume, sink ExampleSink) error {
	tm := pyMet.generateNS.Time()
	defer tm.Stop()
	opts = opts.defaults()
	units := g.units(opts)
	if res.NextUnit < 0 || res.NextUnit > len(units) {
		return fmt.Errorf("pythia: resume unit %d out of range [0, %d]", res.NextUnit, len(units))
	}
	active := units[res.NextUnit:]
	pyMet.units.Add(int64(len(active)))
	seen := res.Seen
	if seen == nil {
		seen = map[string]bool{}
	}
	boundary, _ := sink.(UnitSink)

	// The merge loop below runs on this goroutine only, so the dedup set
	// and drop tallies need no locking. Generation never feeds back into
	// later units (quota counting is per-unit and pre-dedup), so filtering
	// at the merge is equivalent to filtering during generation.
	dedupDrops, emptyDrops := 0, 0
	err := parallel.StreamShards(parallel.Workers(opts.Workers), len(active),
		func(int) *shard { return g.newShard(opts) },
		func(sh *shard, i int) ([]Example, error) {
			var exs []Example
			if err := active[i](sh, func(ex Example) { exs = append(exs, ex) }); err != nil {
				return nil, err
			}
			return exs, nil
		},
		func(i int, exs []Example) error {
			for _, ex := range exs {
				if ex.Text == "" {
					emptyDrops++
					continue
				}
				if seen[ex.Text] {
					dedupDrops++
					continue
				}
				seen[ex.Text] = true
				ex.Dataset = g.table.Name
				pyMet.examples[ex.Structure].Inc()
				if err := sink.Emit(ex); err != nil {
					return err
				}
			}
			if boundary != nil {
				return boundary.EndUnit(res.NextUnit + i)
			}
			return nil
		})
	pyMet.dedupDrops.Add(int64(dedupDrops))
	pyMet.emptyTextDrops.Add(int64(emptyDrops))
	return err
}

// units enumerates the work units in the canonical order of Algorithm 1's
// loops: operator, then match type, then structure, then the structure's
// own pair/key iteration. The merge step relies on this order being
// identical to the sequential emission order.
func (g *Generator) units(opts Options) []unit {
	var us []unit
	for _, op := range opts.Ops {
		for _, match := range opts.Matches {
			for _, st := range opts.Structures {
				switch st {
				case AttributeAmb:
					us = append(us, g.attrUnits(op, match, opts)...)
				case RowAmb:
					us = append(us, g.rowUnits(op, match, opts)...)
				case FullAmb:
					us = append(us, g.fullUnits(op, match, opts)...)
				}
			}
		}
	}
	return us
}

// opAllowed reports whether an operator applies to a column kind: order
// operators need numeric columns; equality works for every kind.
func opAllowed(op string, kind relation.Kind) bool {
	switch op {
	case "=", "<>":
		return true
	default:
		return kind.Numeric()
	}
}

// attrUnits enumerates attribute-ambiguity units: one a-query per
// discovered ambiguous pair (lines 10-16 of Algorithm 1).
func (g *Generator) attrUnits(op string, match Match, opts Options) []unit {
	pk := g.md.Profile.PrimaryKey
	if len(pk) == 0 {
		return nil // no key: subjects cannot be precisely identified
	}
	var us []unit
	for _, pair := range g.md.Pairs {
		ka, oka := g.table.Schema.Column(pair.AttrA)
		kb, okb := g.table.Schema.Column(pair.AttrB)
		if !oka || !okb || inKey(pk, pair.AttrA) || inKey(pk, pair.AttrB) {
			continue
		}
		if !opAllowed(op, ka.Kind) || !opAllowed(op, kb.Kind) {
			continue
		}
		pair := pair
		us = append(us, func(sh *shard, emit func(Example)) error {
			return g.attrPair(sh, pair, op, match, opts, emit)
		})
	}
	return us
}

// attrPair runs one attribute-ambiguity a-query instance.
func (g *Generator) attrPair(sh *shard, pair model.Pair, op string, match Match, opts Options, emit func(Example)) error {
	pk := g.md.Profile.PrimaryKey
	if opts.Mode == Templates {
		q := attrTemplateQuery(g.table.Name, pk, pair.AttrA, pair.AttrB, op, match, pair.Label, opts.MaxPerQuery)
		res, err := sh.engine.Query(q)
		if err != nil {
			return fmt.Errorf("pythia: attribute template query: %w", err)
		}
		for _, row := range res.Rows {
			emit(Example{
				Query: q, Text: row[0].AsString(),
				Structure: AttributeAmb, Match: match,
				Label: pair.Label, Attrs: []string{pair.AttrA, pair.AttrB},
				KeyAttrs: pk, Op: op,
			})
		}
		return nil
	}
	q := attrEvidenceQuery(g.table.Name, pk, pair.AttrA, pair.AttrB, op, match, opts.MaxPerQuery)
	res, err := sh.engine.Query(q)
	if err != nil {
		return fmt.Errorf("pythia: attribute evidence query: %w", err)
	}
	for i, row := range res.Rows {
		n := len(pk)
		keys1 := keyCells(pk, row[:n])
		keys2 := keyCells(pk, row[n:2*n])
		evidence := append(append([]textgen.Cell{}, keys1...), keys2...)
		evidence = append(evidence,
			textgen.Cell{Attr: pair.Label, Value: row[2*n].Format()},
			textgen.Cell{Attr: pair.Label, Value: row[2*n+1].Format()},
			textgen.Cell{Attr: pair.Label, Value: row[2*n+2].Format()},
			textgen.Cell{Attr: pair.Label, Value: row[2*n+3].Format()},
		)
		var text string
		question := opts.Questions && i%2 == 1
		if question {
			text = sh.gen.ComparativeQuestion(keys1, keys2, pair.Label, op)
		} else {
			text = sh.gen.Comparative(keys1, keys2, pair.Label, op)
		}
		emit(Example{
			Query: q, Text: text, IsQuestion: question,
			Structure: AttributeAmb, Match: match,
			Label: pair.Label, Attrs: []string{pair.AttrA, pair.AttrB},
			KeyAttrs: pk, Evidence: evidence, Op: op,
		})
	}
	return nil
}

// rowUnits enumerates row-ambiguity units: one a-query per composite key
// and non-key attribute (lines 17-24 of Algorithm 1). Uniform evidence is
// only defined for the equality claim (two distinct rows, same value).
func (g *Generator) rowUnits(op string, match Match, opts Options) []unit {
	if match == Uniform && op != "=" {
		return nil
	}
	if op == "<>" {
		return nil // "does not have" claims are not in the paper's templates
	}
	var us []unit
	for _, ck := range g.compositeKeys() {
		for _, att := range g.md.Profile.NonKeyAttributes() {
			col, ok := g.table.Schema.Column(att)
			if !ok || !opAllowed(op, col.Kind) {
				continue
			}
			ck, att := ck, att
			us = append(us, func(sh *shard, emit func(Example)) error {
				return g.rowKeyAttr(sh, ck, att, op, match, opts, emit)
			})
		}
	}
	return us
}

// rowKeyAttr runs one row-ambiguity a-query instance.
func (g *Generator) rowKeyAttr(sh *shard, ck []string, att, op string, match Match, opts Options, emit func(Example)) error {
	subset, rest := ck[:1], ck[1:]
	if opts.Mode == Templates {
		q := rowTemplateQuery(g.table.Name, subset, rest, att, op, match, opts.MaxPerQuery)
		res, err := sh.engine.Query(q)
		if err != nil {
			return fmt.Errorf("pythia: row template query: %w", err)
		}
		for _, row := range res.Rows {
			emit(Example{
				Query: q, Text: row[0].AsString(),
				Structure: RowAmb, Match: match,
				Attrs: []string{att}, KeyAttrs: subset, Op: op,
			})
		}
		return nil
	}
	q := rowEvidenceQuery(g.table.Name, subset, rest, att, op, match, opts.MaxPerQuery)
	res, err := sh.engine.Query(q)
	if err != nil {
		return fmt.Errorf("pythia: row evidence query: %w", err)
	}
	for i, row := range res.Rows {
		n := len(subset)
		partial := keyCells(subset, row[:n])
		v1, v2 := row[n], row[n+1]
		claim := v1
		if match == Contradictory && op != "=" {
			claim = v2 // "more than {lesser}" so interpretations split
		}
		measure := textgen.Cell{Attr: att, Value: claim.Format()}
		evidence := append(append([]textgen.Cell{}, partial...),
			textgen.Cell{Attr: att, Value: v1.Format()},
			textgen.Cell{Attr: att, Value: v2.Format()},
		)
		var text string
		question := opts.Questions && i%2 == 1
		if question {
			text = sh.gen.RowQuestion(partial, measure, op)
		} else {
			text = sh.gen.RowStatement(partial, measure, op)
		}
		emit(Example{
			Query: q, Text: text, IsQuestion: question,
			Structure: RowAmb, Match: match,
			Attrs: []string{att}, KeyAttrs: subset, Evidence: evidence, Op: op,
		})
	}
	return nil
}

// fullUnits enumerates full-ambiguity units: partial subject plus an
// ambiguous attribute pair (lines 25-34 of Algorithm 1). The claim is an
// equality; each evidence row is classified uniform or contradictory by
// comparing all four interpretations, mirroring the paper's note that Q3
// returns both kinds.
func (g *Generator) fullUnits(op string, match Match, opts Options) []unit {
	if op != "=" {
		return nil
	}
	var us []unit
	for _, ck := range g.compositeKeys() {
		for _, pair := range g.md.Pairs {
			if inKey(ck, pair.AttrA) || inKey(ck, pair.AttrB) {
				continue
			}
			if _, ok := g.table.Schema.Column(pair.AttrA); !ok {
				continue
			}
			if _, ok := g.table.Schema.Column(pair.AttrB); !ok {
				continue
			}
			ck, pair := ck, pair
			us = append(us, func(sh *shard, emit func(Example)) error {
				return g.fullKeyPair(sh, ck, pair, op, match, opts, emit)
			})
		}
	}
	return us
}

// fullKeyPair runs one full-ambiguity a-query instance.
func (g *Generator) fullKeyPair(sh *shard, ck []string, pair model.Pair, op string, match Match, opts Options, emit func(Example)) error {
	subset, rest := ck[:1], ck[1:]
	if opts.Mode == Templates {
		q := fullTemplateQuery(g.table.Name, subset, rest, pair.AttrA, pair.Label, opts.MaxPerQuery)
		res, err := sh.engine.Query(q)
		if err != nil {
			return fmt.Errorf("pythia: full template query: %w", err)
		}
		for _, row := range res.Rows {
			emit(Example{
				Query: q, Text: row[0].AsString(),
				Structure: FullAmb, Match: match,
				Label: pair.Label, Attrs: []string{pair.AttrA, pair.AttrB},
				KeyAttrs: subset, Op: op,
			})
		}
		return nil
	}
	// The quota counts rows of the requested match kind, but the query
	// returns both kinds interleaved — so it must run unbounded and stop
	// when the quota fills. A fixed fetch window (the old MaxPerQuery*2)
	// silently under-fills whenever the window is dominated by the other
	// kind.
	q := fullEvidenceQuery(g.table.Name, subset, rest, pair.AttrA, pair.AttrB, 0)
	res, err := sh.engine.Query(q)
	if err != nil {
		return fmt.Errorf("pythia: full evidence query: %w", err)
	}
	emitted := 0
	for i, row := range res.Rows {
		if opts.MaxPerQuery > 0 && emitted >= opts.MaxPerQuery {
			pyMet.quotaDrops.Add(int64(len(res.Rows) - i))
			break
		}
		n := len(subset)
		partial := keyCells(subset, row[:n])
		vals := row[n : n+4] // b1.a1, b1.a2, b2.a1, b2.a2
		claim := vals[0]
		uniform := true
		for _, v := range vals[1:] {
			if !v.Equal(claim) {
				uniform = false
				break
			}
		}
		got := Contradictory
		if uniform {
			got = Uniform
		}
		if got != match {
			continue
		}
		measure := textgen.Cell{Attr: pair.Label, Value: claim.Format()}
		evidence := append(append([]textgen.Cell{}, partial...),
			textgen.Cell{Attr: pair.Label, Value: vals[0].Format()},
			textgen.Cell{Attr: pair.Label, Value: vals[1].Format()},
			textgen.Cell{Attr: pair.Label, Value: vals[2].Format()},
			textgen.Cell{Attr: pair.Label, Value: vals[3].Format()},
		)
		var text string
		question := opts.Questions && i%2 == 1
		if question {
			text = sh.gen.Question(partial, measure)
		} else {
			text = sh.gen.Statement(partial, measure)
		}
		emit(Example{
			Query: q, Text: text, IsQuestion: question,
			Structure: FullAmb, Match: match,
			Label: pair.Label, Attrs: []string{pair.AttrA, pair.AttrB},
			KeyAttrs: subset, Evidence: evidence, Op: op,
		})
		emitted++
	}
	return nil
}

// NotAmbiguous generates control examples without data ambiguity: subjects
// identified by the full primary key, claims over a single unambiguous
// attribute. Target applications need them to balance training data.
func (g *Generator) NotAmbiguous(opts Options) ([]Example, error) {
	opts = opts.defaults()
	// A run-local text generator: writing it into the Generator would race
	// with concurrent Generate/AggregateComparisons calls, and textgen
	// phrasing is a pure function of (seed, content) anyway.
	gen := textgen.NewGenerator(opts.Seed)
	pk := g.md.Profile.PrimaryKey
	if len(pk) == 0 {
		return nil, nil
	}
	ambiguous := map[string]bool{}
	for _, p := range g.md.Pairs {
		ambiguous[strings.ToLower(p.AttrA)] = true
		ambiguous[strings.ToLower(p.AttrB)] = true
	}
	// defaults() already resolved MaxPerQuery per mode: 4 in text
	// generation, 0 = unlimited in template mode — mirror that here
	// instead of re-capping template runs at 4 rows.
	max := opts.MaxPerQuery
	if max <= 0 {
		max = len(g.table.Rows)
	}
	var out []Example
	seen := map[string]bool{}
	for _, att := range g.md.Profile.NonKeyAttributes() {
		if ambiguous[strings.ToLower(att)] {
			continue
		}
		col, _ := g.table.Schema.Column(att)
		for i, row := range g.table.Rows {
			if i >= max {
				break
			}
			keys := make([]textgen.Cell, len(pk))
			for j, k := range pk {
				keys[j] = textgen.Cell{Attr: k, Value: row[g.table.Schema.Index(k)].Format()}
			}
			v := row[g.table.Schema.Index(att)]
			for _, op := range opts.Ops {
				if !opAllowed(op, col.Kind) || (op == "<>") {
					continue
				}
				// The claim must hold under its single interpretation:
				// "more than X" claims cite a bound below the true value.
				claim := v
				switch {
				case op == ">" && v.Kind() == relation.KindInt:
					claim = relation.Int(v.AsInt() - 1)
				case op == "<" && v.Kind() == relation.KindInt:
					claim = relation.Int(v.AsInt() + 1)
				case op == ">" && v.Kind() == relation.KindFloat:
					claim = relation.Float(v.AsFloat() - 1)
				case op == "<" && v.Kind() == relation.KindFloat:
					claim = relation.Float(v.AsFloat() + 1)
				}
				measure := textgen.Cell{Attr: att, Value: claim.Format()}
				var text string
				question := opts.Questions && i%2 == 1
				switch {
				case op == "=" && question:
					text = gen.Question(keys, measure)
				case op == "=":
					text = gen.Statement(keys, measure)
				case question:
					text = gen.RowQuestion(keys, measure, op)
				default:
					text = gen.RowStatement(keys, measure, op)
				}
				if text == "" {
					pyMet.emptyTextDrops.Inc()
					continue
				}
				if seen[text] {
					pyMet.dedupDrops.Inc()
					continue
				}
				seen[text] = true
				pyMet.examples[NoAmb].Inc()
				// Evidence carries the true table cell; the text may cite a
				// bound derived from it.
				evidence := append(append([]textgen.Cell{}, keys...), textgen.Cell{Attr: att, Value: v.Format()})
				out = append(out, Example{
					Dataset: g.table.Name, Text: text, IsQuestion: question,
					Match: Uniform, Structure: NoAmb,
					Attrs: []string{att}, KeyAttrs: pk,
					Evidence: evidence, Op: op,
				})
			}
		}
	}
	return out, nil
}

// compositeKeys returns the keys row/full ambiguity may under-identify.
// Small tables make measure columns accidentally unique, so instead of
// every minimal unique column combination we only trust the semantically
// chosen primary key, when it is composite.
func (g *Generator) compositeKeys() [][]string {
	pk := g.md.Profile.PrimaryKey
	if len(pk) < 2 {
		return nil
	}
	return [][]string{pk}
}

// inKey reports whether att is one of the key columns.
func inKey(key []string, att string) bool {
	for _, k := range key {
		if strings.EqualFold(k, att) {
			return true
		}
	}
	return false
}

// keyCells pairs key attribute names with their values.
func keyCells(names []string, vals relation.Row) []textgen.Cell {
	out := make([]textgen.Cell, len(names))
	for i := range names {
		out[i] = textgen.Cell{Attr: names[i], Value: vals[i].Format()}
	}
	return out
}
