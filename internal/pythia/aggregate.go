package pythia

import (
	"fmt"

	"repro/internal/relation"
	"repro/internal/textgen"
)

// AggregateSpec configures the aggregate-ambiguity extension sketched in
// the paper's conclusion: sentences like "The total number of vaccinated in
// EU is higher than in Africa", whose evidence is a comparison of two sums
// over groups derived from joining the fact table with a dimension table.
type AggregateSpec struct {
	// Dimension is the grouping table, e.g. Regions(region, country).
	Dimension *relation.Table
	// JoinAttr is the attribute shared by the fact table and the dimension.
	JoinAttr string
	// GroupAttr is the dimension attribute defining the groups.
	GroupAttr string
}

// AggregateComparisons generates the future-work examples: for every
// discovered ambiguous numeric attribute pair, it aggregates both
// attributes per group with one GROUP BY a-query over the join, then
// compares every group pair. An example is contradictory when the two
// interpretations (SUM over attr A vs SUM over attr B) order the groups
// differently.
//
// The method mutates no Generator state: the dimension table is registered
// with the shared engine only when it is absent or has changed, so repeat
// invocations with the same spec keep the engine's cached plans and join
// indexes for the dimension warm. A first registration of a new dimension
// is also safe concurrently with queries — the engine publishes it as a
// new registry snapshot while in-flight queries finish on the old view.
func (g *Generator) AggregateComparisons(spec AggregateSpec, opts Options) ([]Example, error) {
	opts = opts.defaults()
	if spec.Dimension == nil {
		return nil, fmt.Errorf("pythia: aggregate spec needs a dimension table")
	}
	if g.table.Schema.Index(spec.JoinAttr) < 0 || spec.Dimension.Schema.Index(spec.JoinAttr) < 0 {
		return nil, fmt.Errorf("pythia: join attribute %q missing from fact or dimension", spec.JoinAttr)
	}
	if spec.Dimension.Schema.Index(spec.GroupAttr) < 0 {
		return nil, fmt.Errorf("pythia: group attribute %q missing from dimension", spec.GroupAttr)
	}
	if cur, ok := g.engine.Table(spec.Dimension.Name); !ok || cur != spec.Dimension {
		g.engine.Register(spec.Dimension)
	}

	wantMatch := map[Match]bool{}
	for _, m := range opts.Matches {
		wantMatch[m] = true
	}

	var out []Example
	seen := map[string]bool{}
	for _, pair := range g.md.Pairs {
		ka, oka := g.table.Schema.Column(pair.AttrA)
		kbCol, okb := g.table.Schema.Column(pair.AttrB)
		if !oka || !okb || !ka.Kind.Numeric() || !kbCol.Kind.Numeric() {
			continue
		}
		q := fmt.Sprintf(
			"SELECT r.%s, SUM(b.%s) AS s1, SUM(b.%s) AS s2 FROM %s b, %s r WHERE b.%s = r.%s GROUP BY r.%s",
			qi(spec.GroupAttr), qi(pair.AttrA), qi(pair.AttrB),
			qi(g.table.Name), qi(spec.Dimension.Name),
			qi(spec.JoinAttr), qi(spec.JoinAttr), qi(spec.GroupAttr),
		)
		res, err := g.engine.Query(q)
		if err != nil {
			return nil, fmt.Errorf("pythia: aggregate query: %w", err)
		}
		// Compare every ordered pair of groups.
		for i := 0; i < res.NumRows(); i++ {
			for j := 0; j < res.NumRows(); j++ {
				if i == j {
					continue
				}
				g1, g2 := res.Cell(i, 0), res.Cell(j, 0)
				s1a, s2a := res.Cell(i, 1), res.Cell(j, 1)
				s1b, s2b := res.Cell(i, 2), res.Cell(j, 2)
				if s1a.IsNull() || s2a.IsNull() || s1b.IsNull() || s2b.IsNull() {
					continue
				}
				// Interpretation A: totals of AttrA; interpretation B:
				// totals of AttrB. The claim asserts "higher".
				aHigher := s1a.AsFloat() > s2a.AsFloat()
				bHigher := s1b.AsFloat() > s2b.AsFloat()
				if !aHigher {
					continue // claim phrased from the higher side only
				}
				match := Uniform
				if aHigher != bHigher {
					match = Contradictory
				}
				if !wantMatch[match] {
					continue
				}
				text := fmt.Sprintf("The total %s in %s is higher than in %s", pair.Label, g1.Format(), g2.Format())
				if seen[text] {
					continue
				}
				seen[text] = true
				out = append(out, Example{
					Dataset:   g.table.Name,
					Query:     q,
					Text:      text,
					Structure: AttributeAmb,
					Match:     match,
					Label:     pair.Label,
					Attrs:     []string{pair.AttrA, pair.AttrB},
					KeyAttrs:  []string{spec.GroupAttr},
					Evidence: []textgen.Cell{
						{Attr: spec.GroupAttr, Value: g1.Format()},
						{Attr: pair.Label, Value: s1a.Format()},
						{Attr: pair.Label, Value: s1b.Format()},
						{Attr: spec.GroupAttr, Value: g2.Format()},
						{Attr: pair.Label, Value: s2a.Format()},
						{Attr: pair.Label, Value: s2b.Format()},
					},
					Op: ">",
				})
			}
		}
	}
	return out, nil
}
