package pythia

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/model"
	"repro/internal/relation"
)

// streamBenchTable builds the Covid-like scalability table used by the
// streaming memory benchmarks: country x day composite key plus two
// ambiguous measures, so attribute templates grow quadratically in rows.
func streamBenchTable(n int) *relation.Table {
	t := relation.NewTable("covid_large", relation.Schema{
		{Name: "country", Kind: relation.KindString},
		{Name: "day", Kind: relation.KindInt},
		{Name: "total_cases", Kind: relation.KindInt},
		{Name: "new_cases", Kind: relation.KindInt},
	})
	countries := 40
	days := (n + countries - 1) / countries
	row := 0
	for c := 0; c < countries && row < n; c++ {
		name := fmt.Sprintf("Country%02d", c)
		total := int64(1000 + c*37)
		for d := 0; d < days && row < n; d++ {
			nc := int64(c*1_000_000 + d*37)
			total += nc
			t.MustAppend(relation.Row{
				relation.String(name), relation.Int(int64(d)),
				relation.Int(total), relation.Int(nc),
			})
			row++
		}
	}
	return t
}

func streamBenchGenerator(tb testing.TB, rows int) *Generator {
	tb.Helper()
	t := streamBenchTable(rows)
	md, err := WithPairs(t, []model.Pair{
		{AttrA: "total_cases", AttrB: "new_cases", Label: "cases"},
	})
	if err != nil {
		tb.Fatal(err)
	}
	return NewGenerator(t, md)
}

// streamBenchOpts is the template-mode workload of the memory benchmarks —
// the paper's millions-of-examples path, sequential so allocation counts
// are exact.
func streamBenchOpts() Options {
	return Options{
		Mode:       Templates,
		Structures: []Structure{AttributeAmb, RowAmb},
		Seed:       7,
		Workers:    1,
	}
}

// countStream runs the streaming path into a discarding sink and returns
// the example count.
func countStream(tb testing.TB, g *Generator) int {
	tb.Helper()
	n := 0
	if err := g.GenerateStream(streamBenchOpts(), SinkFunc(func(Example) error {
		n++
		return nil
	})); err != nil {
		tb.Fatal(err)
	}
	return n
}

// allocsPerExample measures exact mallocs per streamed example at the
// given table size on a fresh generator.
func allocsPerExample(tb testing.TB, rows int) float64 {
	tb.Helper()
	g := streamBenchGenerator(tb, rows)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	n := countStream(tb, g)
	runtime.ReadMemStats(&after)
	if n == 0 {
		tb.Fatalf("no examples at %d rows", rows)
	}
	return float64(after.Mallocs-before.Mallocs) / float64(n)
}

// streamAllocFloor is the recorded allocs/example of the streaming
// template path at the ~10k-example point (BENCH_7.json: 4.4). The gate
// fails once a regression pushes past the floor with headroom for
// runtime-version drift — tighten it when the path gets cheaper.
const streamAllocFloor = 4.4 * 1.25

// TestStreamAllocsPerExampleFlat is the constant-memory acceptance gate:
// streaming allocs/example must stay flat (within 10%) as output grows
// ~13x from the ~10k point to the ~100k point, and must not regress past
// the recorded floor.
func TestStreamAllocsPerExampleFlat(t *testing.T) {
	if raceEnabled {
		t.Skip("exact allocation counts are only meaningful without the race runtime")
	}
	if testing.Short() {
		t.Skip("generates ~120k examples")
	}
	small := allocsPerExample(t, 110)
	large := allocsPerExample(t, 350)
	t.Logf("allocs/example: %.2f at 110 rows, %.2f at 350 rows", small, large)
	if large > small*1.10 {
		t.Errorf("streaming allocs/example grew with output size: %.2f -> %.2f (>10%%)", small, large)
	}
	if small > streamAllocFloor {
		t.Errorf("streaming allocs/example %.2f regressed past the recorded floor %.2f", small, streamAllocFloor)
	}
}

// BenchmarkGenerateStreamTemplates measures the streaming generation path
// end to end (discarding sink); b.N iterations regenerate from a fresh
// generator so plan caches do not accumulate across runs.
func BenchmarkGenerateStreamTemplates(b *testing.B) {
	for _, rows := range []int{110, 350} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				g := streamBenchGenerator(b, rows)
				b.StartTimer()
				n := countStream(b, g)
				b.ReportMetric(float64(n), "examples")
			}
		})
	}
}

// BenchmarkGenerateMaterializeTemplates is the slice-collecting baseline
// the streaming path is compared against in BENCH_7.json.
func BenchmarkGenerateMaterializeTemplates(b *testing.B) {
	for _, rows := range []int{110, 350} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				g := streamBenchGenerator(b, rows)
				b.StartTimer()
				exs, err := g.Generate(streamBenchOpts())
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(len(exs)), "examples")
			}
		})
	}
}
