package pythia

import (
	"testing"

	"repro/internal/model"
	"repro/internal/relation"
)

// quotaTable builds a table whose full-ambiguity join yields uniform
// evidence first and contradictory evidence only later: players a and b
// each appear on two days; a's measures agree everywhere, b's disagree.
// The composite primary key is (player, day), so the Q3 join (same player,
// different day) enumerates a's two uniform rows before reaching b.
func quotaTable(t *testing.T) (*relation.Table, *Metadata) {
	t.Helper()
	tab := relation.NewTable("quota", relation.Schema{
		{Name: "player", Kind: relation.KindString},
		{Name: "day", Kind: relation.KindInt},
		{Name: "m1", Kind: relation.KindInt},
		{Name: "m2", Kind: relation.KindInt},
	})
	for _, r := range []struct {
		player string
		day    int64
		m1, m2 int64
	}{
		{"a", 1, 5, 5},
		{"a", 2, 5, 5},
		{"b", 1, 7, 7},
		{"b", 2, 7, 9},
	} {
		tab.MustAppend(relation.Row{
			relation.String(r.player), relation.Int(r.day),
			relation.Int(r.m1), relation.Int(r.m2),
		})
	}
	md, err := WithPairs(tab, []model.Pair{{AttrA: "m1", AttrB: "m2", Label: "metric"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(md.Profile.PrimaryKey) != 2 {
		t.Fatalf("want composite primary key (player, day), got %v", md.Profile.PrimaryKey)
	}
	return tab, md
}

// TestFullAmbQuotaFillsPastUniformPrefix is the regression for the
// MaxPerQuery*2 fetch window: with quota 1, the first two joined rows are
// both uniform, so a 2x window never reaches the contradictory evidence a
// full scan finds.
func TestFullAmbQuotaFillsPastUniformPrefix(t *testing.T) {
	tab, md := quotaTable(t)
	g := NewGenerator(tab, md)
	exs, err := g.Generate(Options{
		Structures:  []Structure{FullAmb},
		Matches:     []Match{Contradictory},
		Ops:         []string{"="},
		MaxPerQuery: 1,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(exs) != 1 {
		t.Fatalf("want 1 contradictory full-ambiguity example past the uniform prefix, got %d", len(exs))
	}
	ex := exs[0]
	if ex.Structure != FullAmb || ex.Match != Contradictory {
		t.Errorf("wrong classification: %v/%v", ex.Structure, ex.Match)
	}
	if len(ex.Evidence) != 5 || ex.Evidence[0].Value != "b" {
		t.Errorf("evidence should come from player b: %v", ex.Evidence)
	}
}

// TestFullAmbQuotaStillCaps checks MaxPerQuery stays the emit cap: the
// uniform kind has two qualifying rows but quota 1 keeps only the first.
func TestFullAmbQuotaStillCaps(t *testing.T) {
	tab, md := quotaTable(t)
	g := NewGenerator(tab, md)
	exs, err := g.Generate(Options{
		Structures:  []Structure{FullAmb},
		Matches:     []Match{Uniform},
		Ops:         []string{"="},
		MaxPerQuery: 1,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// One unit (one composite key x one pair) capped at one example.
	if len(exs) != 1 {
		t.Fatalf("want quota-capped single uniform example, got %d", len(exs))
	}
}

// notAmbTable is a 6-row table with a single-column key and one
// unambiguous measure.
func notAmbTable(t *testing.T) (*relation.Table, *Metadata) {
	t.Helper()
	tab := relation.NewTable("plain", relation.Schema{
		{Name: "name", Kind: relation.KindString},
		{Name: "score", Kind: relation.KindInt},
	})
	scores := []int64{10, 20, 30, 40, 50, 10}
	for i, s := range scores {
		tab.MustAppend(relation.Row{relation.String(string(rune('p' + i))), relation.Int(s)})
	}
	md, err := WithPairs(tab, nil)
	if err != nil {
		t.Fatal(err)
	}
	return tab, md
}

// TestNotAmbiguousTemplateModeUnlimited is the regression for the control
// path ignoring the template-mode default: MaxPerQuery 0 means unlimited
// for templates per Options.defaults(), but the old code re-capped it at
// 4 rows per attribute.
func TestNotAmbiguousTemplateModeUnlimited(t *testing.T) {
	tab, md := notAmbTable(t)
	g := NewGenerator(tab, md)
	exs, err := g.NotAmbiguous(Options{Mode: Templates, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// 6 rows x 3 ops, every text distinct (the subject names differ).
	if len(exs) != 18 {
		t.Fatalf("template mode should cover all 6 rows (18 examples), got %d", len(exs))
	}
}

// TestNotAmbiguousTextGenDefaultCap pins the text-generation default: 4
// evidence rows per attribute.
func TestNotAmbiguousTextGenDefaultCap(t *testing.T) {
	tab, md := notAmbTable(t)
	g := NewGenerator(tab, md)
	exs, err := g.NotAmbiguous(Options{Mode: TextGeneration, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(exs) != 12 {
		t.Fatalf("text-generation mode should cap at 4 rows (12 examples), got %d", len(exs))
	}
}
