//go:build !race

package pythia

const raceEnabled = false
