package pythia

import (
	"strings"
	"testing"

	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/relation"
)

// paperTable is Table I of the paper.
func paperTable(t *testing.T) *relation.Table {
	t.Helper()
	tab, err := relation.ReadCSVString("D", `Player,Team,FG%,3FG%,fouls,apps
Carter,LA,56,47,4,5
Smith,SF,55,30,4,7
Carter,SF,50,51,3,3
`)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// paperMetadata supplies the ground-truth metadata for Table I.
func paperMetadata(t *testing.T, tab *relation.Table) *Metadata {
	t.Helper()
	md, err := WithPairs(tab, []model.Pair{
		{AttrA: "FG%", AttrB: "3FG%", Label: "shooting", Score: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return md
}

func TestNegOp(t *testing.T) {
	cases := map[string]string{">": "<", "<": ">", ">=": "<=", "<=": ">=", "=": "<>", "<>": "="}
	for op, want := range cases {
		if got := NegOp(op); got != want {
			t.Errorf("NegOp(%s) = %s, want %s", op, got, want)
		}
	}
}

func TestAttrEvidenceQueryMatchesPaperQ1(t *testing.T) {
	q := attrEvidenceQuery("D", []string{"Player", "Team"}, "FG%", "3FG%", ">", Contradictory, 0)
	// Must include all q1 ingredients.
	for _, want := range []string{
		"b1.Player <> b2.Player",
		"b1.Team <> b2.Team",
		`b1.FG% > b2.FG%`,
		`b1."3FG%" < b2."3FG%"`,
	} {
		if !strings.Contains(q, want) {
			t.Errorf("query %q missing %q", q, want)
		}
	}
}

func TestRowEvidenceQueryMatchesPaperQ2(t *testing.T) {
	q := rowEvidenceQuery("D", []string{"Player"}, []string{"Team"}, "fouls", "=", Contradictory, 0)
	for _, want := range []string{"b1.Player = b2.Player", "b1.fouls <> b2.fouls"} {
		if !strings.Contains(q, want) {
			t.Errorf("query %q missing %q", q, want)
		}
	}
}

func TestGenerateAttributeExamples(t *testing.T) {
	tab := paperTable(t)
	g := NewGenerator(tab, paperMetadata(t, tab))
	exs, err := g.Generate(Options{
		Structures: []Structure{AttributeAmb},
		Matches:    []Match{Uniform},
		Ops:        []string{">"},
		Seed:       1,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(exs) == 0 {
		t.Fatal("no attribute examples generated")
	}
	for _, ex := range exs {
		if ex.Structure != AttributeAmb || ex.Match != Uniform {
			t.Errorf("wrong example classification: %+v", ex)
		}
		if ex.Label != "shooting" || !strings.Contains(ex.Text, "shooting") {
			t.Errorf("label not used in text: %q", ex.Text)
		}
		if len(ex.Evidence) != 8 {
			t.Errorf("evidence cells = %d, want 8 (2 subjects x 2 keys + 4 values)", len(ex.Evidence))
		}
		if ex.Query == "" || ex.Dataset != "D" {
			t.Errorf("example incomplete: %+v", ex)
		}
	}
}

func TestContradictoryAttributeEvidenceDisagrees(t *testing.T) {
	tab := paperTable(t)
	g := NewGenerator(tab, paperMetadata(t, tab))
	exs, err := g.Generate(Options{
		Structures: []Structure{AttributeAmb},
		Matches:    []Match{Contradictory},
		Ops:        []string{">"},
		Seed:       1,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	// Table I has no contradictory cross-team pair for FG%/3FG%:
	// Carter LA beats Smith SF on both attributes.
	if len(exs) != 0 {
		t.Errorf("expected no contradictory attribute examples on Table I, got %d: %q", len(exs), exs[0].Text)
	}
}

func TestGenerateRowExamples(t *testing.T) {
	tab := paperTable(t)
	g := NewGenerator(tab, paperMetadata(t, tab))
	exs, err := g.Generate(Options{
		Structures: []Structure{RowAmb},
		Matches:    []Match{Contradictory},
		Ops:        []string{"="},
		Seed:       1,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(exs) == 0 {
		t.Fatal("no row examples generated")
	}
	// "Carter has {3,4} fouls" must be among them (the paper's s2 family).
	found := false
	for _, ex := range exs {
		if ex.Structure != RowAmb {
			t.Errorf("wrong structure: %+v", ex)
		}
		if strings.Contains(ex.Text, "Carter") && strings.Contains(ex.Text, "fouls") {
			found = true
		}
		if inKey(ex.KeyAttrs, "Team") {
			t.Errorf("row example uses full key: %+v", ex)
		}
	}
	if !found {
		t.Errorf("missing Carter fouls example: %+v", exs)
	}
}

func TestUniformRowNeedsEqualValues(t *testing.T) {
	tab := paperTable(t)
	g := NewGenerator(tab, paperMetadata(t, tab))
	exs, err := g.Generate(Options{
		Structures: []Structure{RowAmb},
		Matches:    []Match{Uniform},
		Ops:        []string{"="},
		Seed:       1,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	// Carter has fouls 4 (LA) and 3 (SF): never uniform. No attribute has
	// equal values across Carter's two rows except none -> expect none.
	for _, ex := range exs {
		// Evidence values (after the 1 subject cell) must be equal.
		if len(ex.Evidence) >= 3 && ex.Evidence[1].Value != ex.Evidence[2].Value {
			t.Errorf("uniform example with unequal evidence: %+v", ex)
		}
	}
}

func TestGenerateFullExamples(t *testing.T) {
	tab := paperTable(t)
	g := NewGenerator(tab, paperMetadata(t, tab))
	exs, err := g.Generate(Options{
		Structures: []Structure{FullAmb},
		Matches:    []Match{Contradictory},
		Ops:        []string{"="},
		Seed:       1,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(exs) == 0 {
		t.Fatal("no full-ambiguity examples generated")
	}
	for _, ex := range exs {
		if ex.Structure != FullAmb || ex.Label != "shooting" {
			t.Errorf("bad full example: %+v", ex)
		}
		if len(ex.KeyAttrs) != 1 {
			t.Errorf("full example must use a strict key subset: %+v", ex.KeyAttrs)
		}
	}
}

func TestTemplateModeProducesPaperSentence(t *testing.T) {
	tab := paperTable(t)
	g := NewGenerator(tab, paperMetadata(t, tab))
	exs, err := g.Generate(Options{
		Structures: []Structure{AttributeAmb},
		Matches:    []Match{Uniform},
		Ops:        []string{">"},
		Mode:       Templates,
		Seed:       1,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	found := false
	for _, ex := range exs {
		if ex.Text == "Carter LA has higher shooting than Smith SF" {
			found = true
		}
	}
	if !found {
		texts := make([]string, len(exs))
		for i, ex := range exs {
			texts[i] = ex.Text
		}
		t.Errorf("template mode missing the paper's sentence; got %v", texts)
	}
}

func TestTemplateRowMode(t *testing.T) {
	tab := paperTable(t)
	g := NewGenerator(tab, paperMetadata(t, tab))
	exs, err := g.Generate(Options{
		Structures: []Structure{RowAmb},
		Matches:    []Match{Contradictory},
		Ops:        []string{">"},
		Mode:       Templates,
		Seed:       1,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	// q2'' family: "Carter has more than 3 fouls".
	found := false
	for _, ex := range exs {
		if strings.Contains(ex.Text, "Carter has more than 3 fouls") {
			found = true
		}
	}
	if !found {
		texts := make([]string, len(exs))
		for i, ex := range exs {
			texts[i] = ex.Text
		}
		t.Errorf("missing 'Carter has more than 3 fouls'; got %v", texts)
	}
}

func TestQuestionsInterleaved(t *testing.T) {
	d := data.MustLoad("Basket")
	md, err := WithPairs(d.Table, []model.Pair{{AttrA: "FieldGoalPct", AttrB: "ThreePointPct", Label: "shooting"}})
	if err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(d.Table, md)
	exs, err := g.Generate(Options{Questions: true, Seed: 2})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	hasQ, hasS := false, false
	for _, ex := range exs {
		if ex.IsQuestion {
			hasQ = true
			if !strings.HasSuffix(ex.Text, "?") {
				t.Errorf("question without question mark: %q", ex.Text)
			}
		} else {
			hasS = true
		}
	}
	if !hasQ || !hasS {
		t.Errorf("questions=%v statements=%v, want both", hasQ, hasS)
	}
}

func TestNotAmbiguousExamples(t *testing.T) {
	d := data.MustLoad("Basket")
	md, err := WithPairs(d.Table, []model.Pair{{AttrA: "FieldGoalPct", AttrB: "ThreePointPct", Label: "shooting"}})
	if err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(d.Table, md)
	exs, err := g.NotAmbiguous(Options{Seed: 3})
	if err != nil {
		t.Fatalf("NotAmbiguous: %v", err)
	}
	if len(exs) == 0 {
		t.Fatal("no control examples")
	}
	for _, ex := range exs {
		if ex.Structure != NoAmb || ex.Structure.Ambiguous() {
			t.Errorf("control example misclassified: %+v", ex)
		}
		// Subject uses the FULL key (both Player and Team).
		if len(ex.KeyAttrs) != 2 {
			t.Errorf("control example under-identifies subject: %v", ex.KeyAttrs)
		}
		// Never about an ambiguous attribute.
		if ex.Attrs[0] == "FieldGoalPct" || ex.Attrs[0] == "ThreePointPct" {
			t.Errorf("control example about ambiguous attribute: %+v", ex)
		}
	}
}

func TestGenerateOnAllDatasets(t *testing.T) {
	// Every embedded dataset must generate without error given its ground
	// truth metadata; composite-key tables must yield row examples.
	for _, name := range data.Names() {
		d := data.MustLoad(name)
		var pairs []model.Pair
		for _, gt := range d.GroundTruthPairs() {
			pairs = append(pairs, model.Pair{AttrA: gt.AttrA, AttrB: gt.AttrB, Label: gt.Labels[0]})
		}
		md, err := WithPairs(d.Table, pairs)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		g := NewGenerator(d.Table, md)
		exs, err := g.Generate(Options{Seed: 4})
		if err != nil {
			t.Fatalf("%s: Generate: %v", name, err)
		}
		if len(exs) == 0 && (len(pairs) > 0 || len(md.Profile.PrimaryKey) >= 2) {
			t.Errorf("%s: no examples generated", name)
		}
		if len(md.Profile.PrimaryKey) >= 2 {
			hasRow := false
			for _, ex := range exs {
				if ex.Structure == RowAmb {
					hasRow = true
				}
			}
			if !hasRow {
				t.Errorf("%s: composite key but no row-ambiguity examples", name)
			}
		}
	}
}

func TestDiscoverIntegration(t *testing.T) {
	// Discover with a trivial rule-based predictor.
	tab := paperTable(t)
	md, err := Discover(tab, stubPredictor{})
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	if len(md.Pairs) != 1 || md.Pairs[0].Label != "shooting" {
		t.Errorf("pairs = %+v", md.Pairs)
	}
	if len(md.Profile.PrimaryKey) != 2 {
		t.Errorf("primary key = %v", md.Profile.PrimaryKey)
	}
	// Discover fills the future-work profiling signals.
	p := md.Pairs[0]
	if p.Correlation == 0 {
		t.Errorf("correlation not filled: %+v", p)
	}
	if p.ValueOverlap < 0 || p.ValueOverlap > 1 {
		t.Errorf("overlap out of range: %+v", p)
	}
}

// stubPredictor marks exactly the FG%/3FG% pair.
type stubPredictor struct{}

func (stubPredictor) Name() string { return "stub" }
func (stubPredictor) PredictPair(_ []string, _ [][]string, a, b string) (string, float64, bool) {
	if (a == "FG%" && b == "3FG%") || (a == "3FG%" && b == "FG%") {
		return "shooting", 1, true
	}
	return "", 0, false
}

func TestExamplesDedupedByText(t *testing.T) {
	tab := paperTable(t)
	g := NewGenerator(tab, paperMetadata(t, tab))
	exs, err := g.Generate(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, ex := range exs {
		if seen[ex.Text] {
			t.Errorf("duplicate text: %q", ex.Text)
		}
		seen[ex.Text] = true
	}
}
