// Package pythia is the core of the reproduction: the end-to-end pipeline
// of the paper. Given a relational table it (1) profiles keys and types,
// (2) discovers ambiguity metadata with a model.Predictor, and (3) runs
// Algorithm 1 to generate (query, evidence, text) examples for every
// ambiguity structure and match type — either through the data-to-text
// generator or through the scalable SQL templates whose SELECT clause
// builds the sentence directly.
package pythia

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/profiling"
	"repro/internal/relation"
	"repro/internal/textgen"
)

// Structure is the ambiguity structure type of Section II-A.
type Structure uint8

const (
	// AttributeAmb: a word in the text maps to several attributes.
	AttributeAmb Structure = iota
	// RowAmb: the text under-identifies rows (subset of a composite key).
	RowAmb
	// FullAmb: both at once.
	FullAmb
	// NoAmb marks control examples without any data ambiguity.
	NoAmb
)

// String names the structure for reports.
func (s Structure) String() string {
	switch s {
	case AttributeAmb:
		return "attribute"
	case RowAmb:
		return "row"
	case FullAmb:
		return "full"
	case NoAmb:
		return "none"
	default:
		return "structure?"
	}
}

// Ambiguous reports whether the structure carries data ambiguity.
func (s Structure) Ambiguous() bool { return s != NoAmb }

// Match is the match type of Section II-B: whether the different
// interpretations agree.
type Match uint8

const (
	// Contradictory: the interpretations disagree (some true, some false).
	Contradictory Match = iota
	// Uniform: every interpretation gives the same verdict.
	Uniform
)

// String names the match type for reports.
func (m Match) String() string {
	switch m {
	case Contradictory:
		return "contradictory"
	case Uniform:
		return "uniform"
	default:
		return "match?"
	}
}

// Example is one generated training example: the triple of Section II plus
// the metadata that produced it.
type Example struct {
	Dataset    string
	Query      string // the a-query that identified the evidence
	Text       string
	IsQuestion bool
	Structure  Structure
	Match      Match
	Label      string   // ambiguity label ("" for row ambiguity)
	Attrs      []string // ambiguous attributes (2 for attribute/full, 1 for row)
	KeyAttrs   []string // subject attributes used in the text
	Evidence   []textgen.Cell
	Op         string // comparison operator of the claim
}

// Metadata is everything example generation needs about one table: the
// profiling result (keys, types) plus the discovered ambiguity pairs.
// Kinds holds the per-column kinds the predictor's type classes were
// derived from; Discover fills it, and the incremental update path unifies
// it with the appended rows instead of re-inferring over the whole table
// (it may be nil for metadata built through WithPairs).
type Metadata struct {
	Profile *profiling.Profile
	Pairs   []model.Pair
	Kinds   []relation.Kind
}

// Discover profiles the table and predicts its ambiguity metadata. Every
// discovered pair is annotated with the value-level profiling signals of
// the paper's future-work directions: Pearson correlation (numeric pairs)
// and distinct-value overlap.
func Discover(t *relation.Table, pred model.Predictor) (*Metadata, error) {
	prof, err := profiling.ProfileTable(t)
	if err != nil {
		return nil, fmt.Errorf("pythia: profile %s: %w", t.Name, err)
	}
	return DiscoverWithProfile(t, prof, pred)
}

// DiscoverWithProfile is Discover over an externally computed profile, so
// callers that already profiled the table (the serving layer's incremental
// ingest keeps a profiling.Incremental) do not pay a second profiling pass.
func DiscoverWithProfile(t *relation.Table, prof *profiling.Profile, pred model.Predictor) (*Metadata, error) {
	if prof == nil {
		return nil, fmt.Errorf("pythia: discover %s: nil profile", t.Name)
	}
	rows := stringRows(t)
	kinds := model.ColumnKinds(t.Schema.Names(), rows)
	pairs := model.PredictTableWithKinds(pred, t.Schema.Names(), rows, kinds)
	for i := range pairs {
		if corr, err := profiling.Correlation(t, pairs[i].AttrA, pairs[i].AttrB); err == nil {
			pairs[i].Correlation = corr
		}
		if ov, err := profiling.ValueOverlap(t, pairs[i].AttrA, pairs[i].AttrB); err == nil {
			pairs[i].ValueOverlap = ov
		}
	}
	return &Metadata{Profile: prof, Pairs: pairs, Kinds: kinds}, nil
}

// WithPairs builds metadata from profiling plus externally supplied pairs
// (used when ground-truth metadata is available, and by tests).
func WithPairs(t *relation.Table, pairs []model.Pair) (*Metadata, error) {
	prof, err := profiling.ProfileTable(t)
	if err != nil {
		return nil, fmt.Errorf("pythia: profile %s: %w", t.Name, err)
	}
	return &Metadata{Profile: prof, Pairs: pairs}, nil
}

// stringRows formats the table cells for the predictors.
func stringRows(t *relation.Table) [][]string {
	rows := make([][]string, t.NumRows())
	for r, row := range t.Rows {
		out := make([]string, len(row))
		for c, v := range row {
			out[c] = v.Format()
		}
		rows[r] = out
	}
	return rows
}
