package pythia

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/data"
	"repro/internal/model"
)

func covidGenerator(t *testing.T) *Generator {
	t.Helper()
	d := data.MustLoad("Covid")
	md, err := WithPairs(d.Table, []model.Pair{
		{AttrA: "total_confirmed", AttrB: "new_confirmed", Label: "cases"},
		{AttrA: "total_deaths", AttrB: "new_deaths", Label: "deaths"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return NewGenerator(d.Table, md)
}

func covidSpec() AggregateSpec {
	return AggregateSpec{
		Dimension: data.MustLoad("Regions").Table,
		JoinAttr:  "country",
		GroupAttr: "region",
	}
}

func TestAggregateComparisons(t *testing.T) {
	g := covidGenerator(t)
	exs, err := g.AggregateComparisons(covidSpec(), Options{Seed: 1})
	if err != nil {
		t.Fatalf("AggregateComparisons: %v", err)
	}
	if len(exs) == 0 {
		t.Fatal("no aggregate examples generated")
	}
	for _, ex := range exs {
		if !strings.HasPrefix(ex.Text, "The total ") || !strings.Contains(ex.Text, "is higher than in") {
			t.Errorf("unexpected text shape: %q", ex.Text)
		}
		if !strings.Contains(ex.Query, "SUM(") || !strings.Contains(ex.Query, "GROUP BY") {
			t.Errorf("query lacks aggregation: %q", ex.Query)
		}
		if ex.Label != "cases" && ex.Label != "deaths" {
			t.Errorf("label = %q", ex.Label)
		}
		if len(ex.Evidence) != 6 {
			t.Errorf("evidence cells = %d, want 6", len(ex.Evidence))
		}
	}
}

func TestAggregateMatchClassification(t *testing.T) {
	// Verify the match type against a hand computation over the Covid data.
	g := covidGenerator(t)
	d := data.MustLoad("Covid")
	regions := data.MustLoad("Regions")
	regionOf := map[string]string{}
	for _, row := range regions.Table.Rows {
		regionOf[row[1].AsString()] = row[0].AsString()
	}
	sum := func(attr, region string) float64 {
		ci := d.Table.Schema.Index(attr)
		cc := d.Table.Schema.Index("country")
		var s float64
		for _, row := range d.Table.Rows {
			if regionOf[row[cc].AsString()] == region {
				s += row[ci].AsFloat()
			}
		}
		return s
	}
	exs, err := g.AggregateComparisons(covidSpec(), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, ex := range exs {
		// Parse groups out of the evidence (cells 0 and 3).
		g1, g2 := ex.Evidence[0].Value, ex.Evidence[3].Value
		aHigher := sum(ex.Attrs[0], g1) > sum(ex.Attrs[0], g2)
		bHigher := sum(ex.Attrs[1], g1) > sum(ex.Attrs[1], g2)
		if !aHigher {
			t.Errorf("claim not phrased from the higher side: %q", ex.Text)
		}
		wantMatch := Uniform
		if aHigher != bHigher {
			wantMatch = Contradictory
		}
		if ex.Match != wantMatch {
			t.Errorf("match = %s, want %s for %q", ex.Match, wantMatch, ex.Text)
		}
	}
}

func TestAggregateMatchFilter(t *testing.T) {
	g := covidGenerator(t)
	uniform, err := g.AggregateComparisons(covidSpec(), Options{Matches: []Match{Uniform}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, ex := range uniform {
		if ex.Match != Uniform {
			t.Errorf("filtered generation returned %s", ex.Match)
		}
	}
}

func TestAggregateSpecValidation(t *testing.T) {
	g := covidGenerator(t)
	if _, err := g.AggregateComparisons(AggregateSpec{}, Options{}); err == nil {
		t.Error("expected error for missing dimension")
	}
	bad := covidSpec()
	bad.JoinAttr = "nope"
	if _, err := g.AggregateComparisons(bad, Options{}); err == nil {
		t.Error("expected error for bad join attribute")
	}
	bad = covidSpec()
	bad.GroupAttr = "nope"
	if _, err := g.AggregateComparisons(bad, Options{}); err == nil {
		t.Error("expected error for bad group attribute")
	}
}

// TestAggregateConcurrentWithGenerate pins the shared-state fix: after a
// warm-up call has registered the dimension table, AggregateComparisons
// holds no Generator-wide mutable state (no g.gen overwrite, no repeat
// engine.Register), so it may run concurrently with Generate on the same
// Generator. The race detector guards the access pattern; the byte
// comparison guards determinism under interleaving.
func TestAggregateConcurrentWithGenerate(t *testing.T) {
	g := covidGenerator(t)
	spec := covidSpec()
	opts := Options{Seed: 1, Workers: 2}

	// Warm-up: first call registers the dimension with the engine — the
	// one mutating step, done before any concurrency.
	wantAgg, err := g.AggregateComparisons(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	wantGen, err := g.Generate(opts)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			exs, err := g.Generate(opts)
			if err != nil {
				errs <- err
				return
			}
			if !reflect.DeepEqual(exs, wantGen) {
				errs <- fmt.Errorf("concurrent Generate diverged: %d vs %d examples", len(exs), len(wantGen))
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			exs, err := g.AggregateComparisons(spec, opts)
			if err != nil {
				errs <- err
				return
			}
			if !reflect.DeepEqual(exs, wantAgg) {
				errs <- fmt.Errorf("concurrent AggregateComparisons diverged: %d vs %d examples", len(exs), len(wantAgg))
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
