package pythia

import (
	"reflect"
	"testing"
)

// unitRecorder collects the stream alongside its unit boundaries: cut[u] is
// the number of examples emitted once unit u was complete.
type unitRecorder struct {
	exs []Example
	cut map[int]int
}

func (r *unitRecorder) Emit(ex Example) error {
	r.exs = append(r.exs, ex)
	return nil
}

func (r *unitRecorder) EndUnit(unit int) error {
	r.cut[unit] = len(r.exs)
	return nil
}

// TestGenerateStreamFromResumesAtAnyBoundary is the resume semantics
// independent of any file sink: for every unit boundary, the stream
// restarted there with the prefix's dedup set must produce exactly the
// suffix of the uninterrupted stream — the invariant the checkpoint
// manifest relies on.
func TestGenerateStreamFromResumesAtAnyBoundary(t *testing.T) {
	g := covidGenerator(t)
	opts := Options{Seed: 3, MaxPerQuery: 4, Workers: 2}
	full := &unitRecorder{cut: map[int]int{}}
	if err := g.GenerateStream(opts, full); err != nil {
		t.Fatal(err)
	}
	if len(full.exs) == 0 || len(full.cut) < 4 {
		t.Fatalf("fixture too small: %d examples over %d units", len(full.exs), len(full.cut))
	}

	for unit, n := range full.cut {
		seen := make(map[string]bool, n)
		for _, ex := range full.exs[:n] {
			seen[ex.Text] = true
		}
		rest := &unitRecorder{cut: map[int]int{}}
		if err := g.GenerateStreamFrom(opts, Resume{NextUnit: unit + 1, Seen: seen}, rest); err != nil {
			t.Fatalf("resume at unit %d: %v", unit+1, err)
		}
		want := full.exs[n:]
		if len(want) == 0 {
			want = nil
		}
		if !reflect.DeepEqual(rest.exs, want) {
			t.Errorf("resume at unit %d: suffix diverges (%d vs %d examples)", unit+1, len(rest.exs), len(want))
		}
	}

	if err := g.GenerateStreamFrom(opts, Resume{NextUnit: -1}, &unitRecorder{cut: map[int]int{}}); err == nil {
		t.Error("negative resume unit accepted")
	}
	if err := g.GenerateStreamFrom(opts, Resume{NextUnit: 1 << 20}, &unitRecorder{cut: map[int]int{}}); err == nil {
		t.Error("out-of-range resume unit accepted")
	}
}
