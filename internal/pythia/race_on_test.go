//go:build race

package pythia

// raceEnabled reports whether the race detector is compiled in. The
// allocation-floor gate skips under instrumentation: the race runtime adds
// its own allocations, so exact malloc counts are only meaningful in a
// plain build.
const raceEnabled = true
