package sqlengine

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/relation"
)

// versionTable builds version v of a test table: every data cell carries
// the version stamp, so any query result mixing two registrations is
// detectable as a non-homogeneous row set.
func versionTable(t *testing.T, name string, version int) *relation.Table {
	t.Helper()
	csv := fmt.Sprintf("K,A,B\nk1,%d,%d\nk2,%d,%d\nk3,%d,%d\n",
		version, version, version, version, version, version)
	tab, err := relation.ReadCSVString(name, csv)
	if err != nil {
		t.Fatalf("versionTable: %v", err)
	}
	return tab
}

// TestConcurrentRegisterQueryRace hammers one engine with registrations of
// two tables racing live Query and QueryCount traffic. Under -race it
// proves the snapshot registry is data-race free; on any build it asserts
// the per-query consistency contract: a query never observes rows from a
// half-replaced registration — every cell of every result row carries one
// version stamp, and counts match the fixed per-version cardinality.
func TestConcurrentRegisterQueryRace(t *testing.T) {
	e := NewEngine()
	e.Register(versionTable(t, "X", 0))
	e.Register(versionTable(t, "Y", 0))

	const (
		registrations = 300
		readers       = 4
		queriesEach   = 300
	)

	var wg sync.WaitGroup
	errs := make(chan error, readers+2)

	// Two writers, one per table, each publishing fresh versions.
	for _, name := range []string{"X", "Y"} {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			for v := 1; v <= registrations; v++ {
				e.Register(versionTable(t, name, v))
			}
		}(name)
	}

	// Readers mix the scan, count and join paths over both tables.
	checkHomogeneous := func(res *relation.Table, lo, width int) error {
		for _, row := range res.Rows {
			v0 := row[lo].AsInt()
			for c := lo; c < lo+width; c++ {
				if row[c].AsInt() != v0 {
					return fmt.Errorf("torn row: %v", row)
				}
			}
		}
		return nil
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < queriesEach; i++ {
				name := "X"
				if (r+i)%2 == 1 {
					name = "Y"
				}
				// Scan path: both data columns must carry one version.
				res, err := e.Query("SELECT A, B FROM " + name)
				if err != nil {
					errs <- err
					return
				}
				if len(res.Rows) != 3 {
					errs <- fmt.Errorf("scan returned %d rows, want 3", len(res.Rows))
					return
				}
				if err := checkHomogeneous(res, 0, 2); err != nil {
					errs <- err
					return
				}
				// Counting path shares prepare/plan-cache with Query.
				n, err := e.QueryCount("SELECT K FROM " + name + " WHERE A = B")
				if err != nil {
					errs <- err
					return
				}
				if n != 3 {
					errs <- fmt.Errorf("count %d, want 3 (A and B always share a version)", n)
					return
				}
				// Join path: each side binds one snapshot, so the left
				// columns agree with each other and the right columns agree
				// with each other, whatever versions the writers are at.
				jres, err := e.Query("SELECT x.A, x.B, y.A, y.B FROM X x, Y y WHERE x.K = y.K")
				if err != nil {
					errs <- err
					return
				}
				if len(jres.Rows) != 3 {
					errs <- fmt.Errorf("join returned %d rows, want 3", len(jres.Rows))
					return
				}
				if err := checkHomogeneous(jres, 0, 2); err != nil {
					errs <- err
					return
				}
				if err := checkHomogeneous(jres, 2, 2); err != nil {
					errs <- err
					return
				}
			}
		}(r)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestStalePlanNeverServesNewRows pins the revalidation gate directly: a
// plan raced back into the cache after its registration was replaced must
// be detected at lookup and rebuilt against the current snapshot, not
// executed over the dead table.
func TestStalePlanNeverServesNewRows(t *testing.T) {
	e := NewEngine()
	e.Register(versionTable(t, "T", 1))

	const q = "SELECT A FROM T"
	if _, err := e.Query(q); err != nil {
		t.Fatalf("warm query: %v", err)
	}
	stale, ok := e.plans.get(q)
	if !ok {
		t.Fatal("plan not cached after first query")
	}

	e.Register(versionTable(t, "T", 2))
	// Simulate the in-flight-builder race: an old query finishes compiling
	// against version 1 and writes its plan back after the registration of
	// version 2 already evicted the name.
	e.plans.put(q, stale)

	res, err := e.Query(q)
	if err != nil {
		t.Fatalf("query after stale put: %v", err)
	}
	for _, row := range res.Rows {
		if got := row[0].AsInt(); got != 2 {
			t.Fatalf("stale plan served version %d rows, want 2", got)
		}
	}
}

// TestRegisterDuringQueryKeepsOldView asserts the other half of the
// contract: a plan prepared before a re-registration keeps executing
// against the snapshot it was built on, so an in-flight query finishes
// over a consistent (old) view instead of a half-replaced one.
func TestRegisterDuringQueryKeepsOldView(t *testing.T) {
	e := NewEngine()
	e.Register(versionTable(t, "T", 1))

	p, err := e.prepare("SELECT A FROM T")
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	e.Register(versionTable(t, "T", 2))

	res, err := e.run(p)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, row := range res.Rows {
		if got := row[0].AsInt(); got != 1 {
			t.Fatalf("in-flight plan read version %d rows, want the pinned version 1", got)
		}
	}
	// A fresh lookup of the same SQL must rebuild and see version 2.
	res, err = e.Query("SELECT A FROM T")
	if err != nil {
		t.Fatalf("fresh query: %v", err)
	}
	for _, row := range res.Rows {
		if got := row[0].AsInt(); got != 2 {
			t.Fatalf("fresh query read version %d rows, want 2", got)
		}
	}
}
