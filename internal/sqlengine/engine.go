package sqlengine

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/relation"
	"repro/internal/telemetry"
)

// met holds the package's metric handles, resolved once against the
// default registry so per-query updates are single atomic adds. Hot loops
// accumulate locally and flush one Add per query (see planScan).
var met = struct {
	queriesParsed   *telemetry.Counter
	queriesExecuted *telemetry.Counter
	countQueries    *telemetry.Counter
	rowsScanned     *telemetry.Counter
	rowsEmitted     *telemetry.Counter
	distinctDrops   *telemetry.Counter
	parseNS         *telemetry.Histogram
	execNS          *telemetry.Histogram
}{
	queriesParsed:   telemetry.Default().Counter("sqlengine.queries_parsed"),
	queriesExecuted: telemetry.Default().Counter("sqlengine.queries_executed"),
	countQueries:    telemetry.Default().Counter("sqlengine.count_queries"),
	rowsScanned:     telemetry.Default().Counter("sqlengine.rows_scanned"),
	rowsEmitted:     telemetry.Default().Counter("sqlengine.rows_emitted"),
	distinctDrops:   telemetry.Default().Counter("sqlengine.distinct_drops"),
	parseNS:         telemetry.Default().LatencyHistogram("sqlengine.parse_ns"),
	execNS:          telemetry.Default().LatencyHistogram("sqlengine.exec_ns"),
}

// Engine is an in-memory SQL engine over registered relation.Tables. It is
// safe for concurrent queries once all tables are registered; registration
// itself is not synchronized.
type Engine struct {
	tables map[string]*relation.Table
}

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	return &Engine{tables: make(map[string]*relation.Table)}
}

// Register adds (or replaces) a table under its own name.
func (e *Engine) Register(t *relation.Table) {
	e.tables[strings.ToLower(t.Name)] = t
}

// Table returns a registered table by name.
func (e *Engine) Table(name string) (*relation.Table, bool) {
	t, ok := e.tables[strings.ToLower(name)]
	return t, ok
}

// timedParse parses a SELECT statement under the parse metrics.
func timedParse(sql string) (*SelectStmt, error) {
	tm := met.parseNS.Time()
	stmt, err := Parse(sql)
	tm.Stop()
	met.queriesParsed.Inc()
	return stmt, err
}

// Query parses and executes a SELECT statement, returning the result as a
// fresh table named "result".
func (e *Engine) Query(sql string) (*relation.Table, error) {
	stmt, err := timedParse(sql)
	if err != nil {
		return nil, err
	}
	return e.Execute(stmt)
}

// QueryCount parses and executes the statement through the counting path:
// only the result cardinality is computed, no projection rows are
// materialized. See ExecuteCount for the exact semantics.
func (e *Engine) QueryCount(sql string) (int, error) {
	stmt, err := timedParse(sql)
	if err != nil {
		return 0, err
	}
	return e.ExecuteCount(stmt)
}

// bind resolves the FROM tables into the expression binding shared by the
// materializing, counting and aggregate paths.
func (e *Engine) bind(stmt *SelectStmt) (*binding, []*relation.Table, error) {
	b := &binding{}
	var sources []*relation.Table
	offset := 0
	for _, tr := range stmt.From {
		t, ok := e.Table(tr.Table)
		if !ok {
			return nil, nil, fmt.Errorf("sqlengine: unknown table %q", tr.Table)
		}
		sources = append(sources, t)
		b.aliases = append(b.aliases, strings.ToLower(tr.Alias))
		b.schemas = append(b.schemas, t.Schema)
		b.offsets = append(b.offsets, offset)
		offset += t.NumCols()
	}
	if len(b.aliases) == 2 && b.aliases[0] == b.aliases[1] {
		return nil, nil, fmt.Errorf("sqlengine: duplicate table alias %q", b.aliases[0])
	}
	return b, sources, nil
}

// ExecuteCount returns the number of rows Execute would produce, without
// building them: WHERE, DISTINCT and LIMIT are honored through a counting
// row sink, aggregates count their (small) group output, and ORDER BY is
// compiled for error parity but never evaluated — ordering cannot change
// a cardinality. LIMIT short-circuits the scan through errLimitReached,
// so counting a `LIMIT k` query stops after k qualifying rows.
//
// The counting sink evaluates projections only when DISTINCT needs dedup
// keys; either way no projection row is allocated or retained.
func (e *Engine) ExecuteCount(stmt *SelectStmt) (int, error) {
	met.countQueries.Inc()
	tm := met.execNS.Time()
	defer tm.Stop()

	b, sources, err := e.bind(stmt)
	if err != nil {
		return 0, err
	}
	if isAggregateQuery(stmt) {
		res, err := e.executeAggregate(stmt, b, sources)
		if err != nil {
			return 0, err
		}
		return res.NumRows(), nil
	}

	projs, _, err := compileProjections(stmt, b)
	if err != nil {
		return 0, err
	}
	for _, o := range stmt.OrderBy {
		if _, err := compile(o.Expr, b); err != nil {
			return 0, err
		}
	}

	count, drops := 0, 0
	var sink rowSink
	if stmt.Distinct {
		seen := map[string]struct{}{}
		var kb strings.Builder
		sink = func(combined []relation.Value) error {
			kb.Reset()
			for _, ev := range projs {
				v, err := ev.eval(combined)
				if err != nil {
					return err
				}
				kb.WriteString(v.HashKey())
				kb.WriteByte(0x1f)
			}
			if _, dup := seen[kb.String()]; dup {
				drops++
				return nil
			}
			seen[kb.String()] = struct{}{}
			count++
			if stmt.Limit >= 0 && count >= stmt.Limit {
				return errLimitReached
			}
			return nil
		}
	} else {
		sink = func([]relation.Value) error {
			count++
			if stmt.Limit >= 0 && count >= stmt.Limit {
				return errLimitReached
			}
			return nil
		}
	}
	if err := e.planRows(stmt, b, sources, sink); err != nil {
		return 0, err
	}
	met.distinctDrops.Add(int64(drops))
	// LIMIT 0: the sink admits the row that trips the limit, exactly like
	// the materializing path, so clamp the same way it truncates.
	if stmt.Limit >= 0 && count > stmt.Limit {
		count = stmt.Limit
	}
	return count, nil
}

// Execute runs an already-parsed statement.
func (e *Engine) Execute(stmt *SelectStmt) (*relation.Table, error) {
	met.queriesExecuted.Inc()
	tm := met.execNS.Time()
	defer tm.Stop()

	b, sources, err := e.bind(stmt)
	if err != nil {
		return nil, err
	}

	// Aggregate queries (GROUP BY or aggregate functions) take the
	// grouping path.
	if isAggregateQuery(stmt) {
		return e.executeAggregate(stmt, b, sources)
	}

	// Compile projections, expanding stars.
	projs, names, err := compileProjections(stmt, b)
	if err != nil {
		return nil, err
	}

	// Compile ORDER BY.
	var orderEvals []*evaluator
	for _, o := range stmt.OrderBy {
		ev, err := compile(o.Expr, b)
		if err != nil {
			return nil, err
		}
		orderEvals = append(orderEvals, ev)
	}

	// Plan and consume the row stream. Without ORDER BY the projection
	// (plus DISTINCT and LIMIT) streams directly out of the join — the
	// combined rows are never materialized. With ORDER BY the source rows
	// must survive until sorting, so they are collected first.
	width := len(projs)
	const chunkRows = 1024
	var arena []relation.Value
	newRow := func() relation.Row {
		if len(arena) < width {
			arena = make([]relation.Value, chunkRows*width)
		}
		pr := relation.Row(arena[:width:width])
		arena = arena[width:]
		return pr
	}

	var out []relation.Row
	var rows [][]relation.Value // combined source rows (ORDER BY path only)

	distinctDrops := 0
	if len(orderEvals) == 0 {
		var seen map[string]struct{}
		if stmt.Distinct {
			seen = map[string]struct{}{}
		}
		var kb strings.Builder
		sink := func(combined []relation.Value) error {
			pr := newRow()
			for i, ev := range projs {
				v, err := ev.eval(combined)
				if err != nil {
					return err
				}
				pr[i] = v
			}
			if seen != nil {
				kb.Reset()
				for _, v := range pr {
					kb.WriteString(v.HashKey())
					kb.WriteByte(0x1f)
				}
				if _, dup := seen[kb.String()]; dup {
					distinctDrops++
					return nil
				}
				seen[kb.String()] = struct{}{}
			}
			out = append(out, pr)
			if stmt.Limit >= 0 && len(out) >= stmt.Limit {
				return errLimitReached
			}
			return nil
		}
		if err := e.planRows(stmt, b, sources, sink); err != nil {
			return nil, err
		}
	} else {
		// Collect combined rows, then project.
		var srcArena []relation.Value
		total := 0
		for i := range b.schemas {
			total += len(b.schemas[i])
		}
		sink := func(combined []relation.Value) error {
			if len(srcArena) < total {
				srcArena = make([]relation.Value, chunkRows*total)
			}
			row := srcArena[:total:total]
			srcArena = srcArena[total:]
			copy(row, combined)
			rows = append(rows, row)
			return nil
		}
		if err := e.planRows(stmt, b, sources, sink); err != nil {
			return nil, err
		}
		out = make([]relation.Row, 0, len(rows))
		for _, row := range rows {
			pr := newRow()
			for i, ev := range projs {
				v, err := ev.eval(row)
				if err != nil {
					return nil, err
				}
				pr[i] = v
			}
			out = append(out, pr)
		}
		if stmt.Distinct {
			seen := make(map[string]struct{}, len(out))
			dedup := out[:0]
			var kb strings.Builder
			for _, row := range out {
				kb.Reset()
				for _, v := range row {
					kb.WriteString(v.HashKey())
					kb.WriteByte(0x1f)
				}
				k := kb.String()
				if _, ok := seen[k]; ok {
					distinctDrops++
					continue
				}
				seen[k] = struct{}{}
				dedup = append(dedup, row)
			}
			out = dedup
		}
	}
	met.distinctDrops.Add(int64(distinctDrops))

	// ORDER BY: evaluated over the *source* rows is not possible after
	// projection, so we sort (projected, source) pairs together when
	// ordering expressions exist.
	if len(orderEvals) > 0 {
		type pair struct {
			proj relation.Row
			keys []relation.Value
		}
		pairs := make([]pair, len(out))
		if stmt.Distinct {
			// After DISTINCT the source rows no longer correspond 1:1;
			// order keys must be computable from the projection. We
			// re-evaluate against projections by name when possible.
			for i, row := range out {
				pairs[i] = pair{proj: row, keys: orderKeysFromProjection(stmt, names, row)}
			}
		} else {
			for i, row := range out {
				keys := make([]relation.Value, len(orderEvals))
				for j, ev := range orderEvals {
					v, err := ev.eval(rows[i])
					if err != nil {
						return nil, err
					}
					keys[j] = v
				}
				pairs[i] = pair{proj: row, keys: keys}
			}
		}
		sort.SliceStable(pairs, func(a, bI int) bool {
			for j := range pairs[a].keys {
				c, err := pairs[a].keys[j].Compare(pairs[bI].keys[j])
				if err != nil {
					c = strings.Compare(pairs[a].keys[j].Format(), pairs[bI].keys[j].Format())
				}
				if c != 0 {
					if stmt.OrderBy[j].Desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
		for i := range pairs {
			out[i] = pairs[i].proj
		}
	}

	// LIMIT.
	if stmt.Limit >= 0 && len(out) > stmt.Limit {
		out = out[:stmt.Limit]
	}

	// Result schema: static kind guesses refined by observed values.
	schema := make(relation.Schema, len(projs))
	for i := range projs {
		k := projs[i].kind
		if k == relation.KindNull {
			for _, row := range out {
				k = relation.UnifyKind(k, row[i].Kind())
			}
			if k == relation.KindNull {
				k = relation.KindString
			}
		}
		schema[i] = relation.Column{Name: names[i], Kind: k}
	}
	met.rowsEmitted.Add(int64(len(out)))
	res := relation.NewTable("result", schema)
	res.Rows = out
	return res, nil
}

// orderKeysFromProjection resolves ORDER BY items against output column
// names after DISTINCT. Unresolvable items order as NULL.
func orderKeysFromProjection(stmt *SelectStmt, names []string, row relation.Row) []relation.Value {
	keys := make([]relation.Value, len(stmt.OrderBy))
	for j, o := range stmt.OrderBy {
		keys[j] = relation.Null
		if c, ok := o.Expr.(*ColumnRef); ok {
			for i, n := range names {
				if strings.EqualFold(n, c.Name) {
					keys[j] = row[i]
					break
				}
			}
		}
	}
	return keys
}

// compileProjections expands SELECT items (including *) into compiled
// evaluators plus output column names.
func compileProjections(stmt *SelectStmt, b *binding) ([]*evaluator, []string, error) {
	var projs []*evaluator
	var names []string
	for _, item := range stmt.Items {
		if item.Star {
			for ti := range b.schemas {
				for ci, col := range b.schemas[ti] {
					idx := b.offsets[ti] + ci
					kind := col.Kind
					i := idx
					projs = append(projs, &evaluator{
						eval: func(row []relation.Value) (relation.Value, error) { return row[i], nil },
						kind: kind,
					})
					names = append(names, col.Name)
				}
			}
			continue
		}
		ev, err := compile(item.Expr, b)
		if err != nil {
			return nil, nil, err
		}
		projs = append(projs, ev)
		names = append(names, projectionName(item, len(names)))
	}
	return projs, names, nil
}

// projectionName derives the output column name for a projection.
func projectionName(item SelectItem, pos int) string {
	if item.Alias != "" {
		return item.Alias
	}
	switch e := item.Expr.(type) {
	case *ColumnRef:
		return e.Name
	case *FuncCall:
		return strings.ToLower(e.Name)
	default:
		return fmt.Sprintf("col%d", pos+1)
	}
}

// rowSink consumes one combined row. The slice is reused between calls;
// sinks that retain data must copy. Returning errLimitReached stops the
// stream without error.
type rowSink func(combined []relation.Value) error

// planRows streams the combined rows of the FROM/WHERE part into sink.
func (e *Engine) planRows(stmt *SelectStmt, b *binding, sources []*relation.Table, sink rowSink) error {
	var err error
	switch len(sources) {
	case 1:
		err = e.planScan(stmt, b, sources[0], sink)
	case 2:
		err = e.planJoin(stmt, b, sources, sink)
	default:
		err = fmt.Errorf("sqlengine: unsupported FROM arity %d", len(sources))
	}
	if err == errLimitReached {
		return nil
	}
	return err
}

// planScan filters a single table. Scanned rows are accumulated locally
// and flushed in one counter add — also on the early-exit paths, so a
// LIMIT short-circuit is visible in sqlengine.rows_scanned.
func (e *Engine) planScan(stmt *SelectStmt, b *binding, t *relation.Table, sink rowSink) error {
	scanned := 0
	defer func() { met.rowsScanned.Add(int64(scanned)) }()
	var filter *evaluator
	if stmt.Where != nil {
		ev, err := compile(stmt.Where, b)
		if err != nil {
			return err
		}
		filter = ev
	}
	for _, row := range t.Rows {
		scanned++
		if filter != nil {
			v, err := filter.eval(row)
			if err != nil {
				return err
			}
			ok, err := truthy(v)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
		}
		if err := sink(row); err != nil {
			return err
		}
	}
	return nil
}

// sideOf classifies which FROM sides an expression's column references
// touch, as a bitmask (bit 0 = left, bit 1 = right). Errors propagate nil
// classification via the bool.
func sideOf(e Expr, b *binding) (int, bool) {
	switch n := e.(type) {
	case *Literal:
		return 0, true
	case *ColumnRef:
		idx, _, err := b.resolve(n)
		if err != nil {
			return 0, false
		}
		if idx < b.offsets[1] {
			return 1, true
		}
		return 2, true
	case *IsNullExpr:
		return sideOf(n.Expr, b)
	case *FuncCall:
		mask := 0
		for _, a := range n.Args {
			m, ok := sideOf(a, b)
			if !ok {
				return 0, false
			}
			mask |= m
		}
		return mask, true
	case *BinaryExpr:
		lm, ok := sideOf(n.Left, b)
		if !ok {
			return 0, false
		}
		rm, ok := sideOf(n.Right, b)
		if !ok {
			return 0, false
		}
		return lm | rm, true
	default:
		return 0, false
	}
}

// equiJoinCols extracts (leftIdx, rightIdx) when e is `a = b` with one
// column per side.
func equiJoinCols(e Expr, b *binding) (int, int, bool) {
	be, ok := e.(*BinaryExpr)
	if !ok || be.Op != "=" {
		return 0, 0, false
	}
	lc, ok1 := be.Left.(*ColumnRef)
	rc, ok2 := be.Right.(*ColumnRef)
	if !ok1 || !ok2 {
		return 0, 0, false
	}
	li, _, err1 := b.resolve(lc)
	ri, _, err2 := b.resolve(rc)
	if err1 != nil || err2 != nil {
		return 0, 0, false
	}
	boundary := b.offsets[1]
	switch {
	case li < boundary && ri >= boundary:
		return li, ri - boundary, true
	case ri < boundary && li >= boundary:
		return ri, li - boundary, true
	default:
		return 0, 0, false
	}
}

// errLimitReached signals early termination from the join emit path.
var errLimitReached = fmt.Errorf("sqlengine: limit reached")

// planJoin executes a binary join: single-side conjuncts are pushed below
// the join, equality conjuncts across sides drive a hash join, and the
// remaining conjuncts filter joined rows before streaming into sink.
func (e *Engine) planJoin(stmt *SelectStmt, b *binding, sources []*relation.Table, sink rowSink) error {
	left, right := sources[0], sources[1]
	nL, nR := left.NumCols(), right.NumCols()
	// Both join inputs are read in full (side filters and the hash build
	// consume their tables up front), so account them at entry.
	met.rowsScanned.Add(int64(len(left.Rows) + len(right.Rows)))

	var leftPred, rightPred, crossPred []Expr
	var hashL, hashR []int
	for _, c := range conjuncts(stmt.Where) {
		if li, ri, ok := equiJoinCols(c, b); ok {
			hashL = append(hashL, li)
			hashR = append(hashR, ri)
			continue
		}
		mask, ok := sideOf(c, b)
		if !ok {
			// Let compilation produce the real error.
			if _, err := compile(c, b); err != nil {
				return err
			}
			crossPred = append(crossPred, c)
			continue
		}
		switch mask {
		case 0, 1:
			leftPred = append(leftPred, c)
		case 2:
			rightPred = append(rightPred, c)
		default:
			crossPred = append(crossPred, c)
		}
	}

	leftRows, err := filterSide(left.Rows, leftPred, b, 0, nL)
	if err != nil {
		return err
	}
	rightRows, err := filterSide(right.Rows, rightPred, b, nL, nR)
	if err != nil {
		return err
	}

	var residual *evaluator
	if len(crossPred) > 0 {
		residual, err = compile(conjoin(crossPred), b)
		if err != nil {
			return err
		}
	}

	// The combined buffer is reused across emits; the sink copies if it
	// retains rows.
	combined := make([]relation.Value, nL+nR)
	emit := func(l, r relation.Row) error {
		copy(combined, l)
		copy(combined[nL:], r)
		if residual != nil {
			v, err := residual.eval(combined)
			if err != nil {
				return err
			}
			ok, err := truthy(v)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
		return sink(combined)
	}

	if len(hashL) > 0 {
		// Hash join: build on the right side.
		index := make(map[string][]relation.Row, len(rightRows))
		var kb strings.Builder
		for _, r := range rightRows {
			kb.Reset()
			skip := false
			for _, ci := range hashR {
				if r[ci].IsNull() {
					skip = true // NULL never equi-joins
					break
				}
				kb.WriteString(r[ci].HashKey())
				kb.WriteByte(0x1f)
			}
			if skip {
				continue
			}
			index[kb.String()] = append(index[kb.String()], r)
		}
		for _, l := range leftRows {
			kb.Reset()
			skip := false
			for _, ci := range hashL {
				if l[ci].IsNull() {
					skip = true
					break
				}
				kb.WriteString(l[ci].HashKey())
				kb.WriteByte(0x1f)
			}
			if skip {
				continue
			}
			for _, r := range index[kb.String()] {
				if err := emit(l, r); err != nil {
					return err
				}
			}
		}
		return nil
	}

	// Nested loop.
	for _, l := range leftRows {
		for _, r := range rightRows {
			if err := emit(l, r); err != nil {
				return err
			}
		}
	}
	return nil
}

// filterSide applies single-side conjuncts to one input. The predicate is
// compiled against the full binding, so rows are padded into the combined
// layout at the side's offset.
func filterSide(rows []relation.Row, preds []Expr, b *binding, offset, width int) ([]relation.Row, error) {
	if len(preds) == 0 {
		return rows, nil
	}
	ev, err := compile(conjoin(preds), b)
	if err != nil {
		return nil, err
	}
	total := b.offsets[len(b.offsets)-1] + len(b.schemas[len(b.schemas)-1])
	combined := make([]relation.Value, total)
	var out []relation.Row
	for _, r := range rows {
		copy(combined[offset:offset+width], r)
		v, err := ev.eval(combined)
		if err != nil {
			return nil, err
		}
		ok, err := truthy(v)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, r)
		}
	}
	return out, nil
}

// conjoin folds conjuncts back into an AND tree.
func conjoin(preds []Expr) Expr {
	e := preds[0]
	for _, p := range preds[1:] {
		e = &BinaryExpr{Op: "AND", Left: e, Right: p}
	}
	return e
}
