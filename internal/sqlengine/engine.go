package sqlengine

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/relation"
	"repro/internal/telemetry"
)

// met holds the package's metric handles, resolved once against the
// default registry so per-query updates are single atomic adds. Hot loops
// accumulate locally and flush one Add per query (see runScan).
var met = struct {
	queriesParsed      *telemetry.Counter
	queriesExecuted    *telemetry.Counter
	countQueries       *telemetry.Counter
	rowsScanned        *telemetry.Counter
	rowsEmitted        *telemetry.Counter
	distinctDrops      *telemetry.Counter
	planCacheHits      *telemetry.Counter
	planCacheMisses    *telemetry.Counter
	planCacheEvictions *telemetry.Counter
	indexBuilds        *telemetry.Counter
	indexHits          *telemetry.Counter
	rangeJoins         *telemetry.Counter
	batchScans         *telemetry.Counter
	batchRows          *telemetry.Counter
	vectorBuilds       *telemetry.Counter
	tableAppends       *telemetry.Counter
	tableSwaps         *telemetry.Counter
	parseNS            *telemetry.Histogram
	execNS             *telemetry.Histogram
	batchSelectivity   *telemetry.Histogram
}{
	queriesParsed:      telemetry.Default().Counter("sqlengine.queries_parsed"),
	queriesExecuted:    telemetry.Default().Counter("sqlengine.queries_executed"),
	countQueries:       telemetry.Default().Counter("sqlengine.count_queries"),
	rowsScanned:        telemetry.Default().Counter("sqlengine.rows_scanned"),
	rowsEmitted:        telemetry.Default().Counter("sqlengine.rows_emitted"),
	distinctDrops:      telemetry.Default().Counter("sqlengine.distinct_drops"),
	planCacheHits:      telemetry.Default().Counter("sqlengine.plan_cache_hits"),
	planCacheMisses:    telemetry.Default().Counter("sqlengine.plan_cache_misses"),
	planCacheEvictions: telemetry.Default().Counter("sqlengine.plan_cache_evictions"),
	indexBuilds:        telemetry.Default().Counter("sqlengine.index_builds"),
	indexHits:          telemetry.Default().Counter("sqlengine.index_hits"),
	rangeJoins:         telemetry.Default().Counter("sqlengine.range_joins"),
	batchScans:         telemetry.Default().Counter("sqlengine.batch_scans"),
	batchRows:          telemetry.Default().Counter("sqlengine.batch_rows"),
	vectorBuilds:       telemetry.Default().Counter("sqlengine.vector_builds"),
	tableAppends:       telemetry.Default().Counter("sqlengine.table_appends"),
	tableSwaps:         telemetry.Default().Counter("sqlengine.table_swaps"),
	parseNS:            telemetry.Default().LatencyHistogram("sqlengine.parse_ns"),
	execNS:             telemetry.Default().LatencyHistogram("sqlengine.exec_ns"),
	batchSelectivity:   telemetry.Default().Histogram("sqlengine.batch_selectivity", selectivityBuckets),
}

// selectivityBuckets are the percent buckets of the batch selectivity
// histogram: the share of a side's rows surviving its selection program.
var selectivityBuckets = []int64{0, 1, 2, 5, 10, 25, 50, 75, 90, 100}

// registry is one immutable published view of the engine's registered
// tables. Register never mutates a registry in place — it copies, swaps in
// the new map and publishes the whole view with one atomic store — so any
// goroutine that loaded a registry can keep reading it for the rest of its
// query without synchronization.
type registry struct {
	tables map[string]*relation.Table
}

// lookup resolves a (case-insensitive) table name in this view.
func (r *registry) lookup(name string) (*relation.Table, bool) {
	t, ok := r.tables[strings.ToLower(name)]
	return t, ok
}

// Engine is an in-memory SQL engine over registered relation.Tables. It is
// safe for fully concurrent use, including Register during live query
// traffic: registrations publish a new immutable snapshot of the table map
// through an atomic pointer, each query resolves its FROM tables against
// the single snapshot it loaded at entry, and in-flight queries finish
// against the view they started with while new queries see the new rows.
// Cached artifacts can never serve a half-replaced registration — a plan
// cache hit is revalidated against the query's snapshot (table pointers
// must match exactly) and the shared join-index and column-vector caches
// key their entries to the table pointer pinned in the plan.
type Engine struct {
	reg     atomic.Pointer[registry]
	regMu   sync.Mutex // serializes writers (Register); readers never take it
	plans   *planCache
	indexes *indexCache
	vectors *vecCache

	// batchOff forces every query onto the row-at-a-time path. It exists
	// for the batch-vs-fallback differential suite and benchmarks; the
	// flag must be set before the engine serves queries.
	batchOff bool
}

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	e := &Engine{
		plans:   newPlanCache(defaultPlanCacheCap),
		indexes: newIndexCache(),
		vectors: newVecCache(),
	}
	e.reg.Store(&registry{tables: map[string]*relation.Table{}})
	return e
}

// snapshot returns the current published registry view. Every query loads
// exactly one snapshot at entry and resolves all table reads through it.
func (e *Engine) snapshot() *registry {
	return e.reg.Load()
}

// Register adds (or replaces) a table under its own name, concurrently
// safe with in-flight queries: it builds a copy of the table map and
// publishes it as a new immutable snapshot, so a query that already loaded
// the previous view keeps reading the previous rows and a query that
// starts afterwards sees only the new ones. The eager cache eviction below
// reclaims memory held by the replaced registration; correctness does not
// depend on it — every cache read revalidates against the reader's
// snapshot (plan cache) or the plan's pinned table pointer (index and
// vector caches), so a stale entry raced back in after eviction is
// detected and rebuilt rather than served.
func (e *Engine) Register(t *relation.Table) {
	name := strings.ToLower(t.Name)
	e.regMu.Lock()
	defer e.regMu.Unlock()
	e.publishLocked(name, t)
}

// publishLocked installs next under key as a fresh immutable registry
// snapshot and drops the key's cached plans, indexes and vectors. regMu
// must be held.
func (e *Engine) publishLocked(key string, next *relation.Table) {
	old := e.reg.Load()
	m := make(map[string]*relation.Table, len(old.tables)+1)
	for k, v := range old.tables {
		m[k] = v
	}
	m[key] = next
	e.reg.Store(&registry{tables: m})
	e.plans.invalidate(key)
	e.indexes.invalidate(key)
	e.vectors.invalidate(key)
}

// Append extends the registered table with new rows and publishes the
// extension as a fresh snapshot, returning the extended table. The
// registered table itself is never mutated (relation.Table.Extend is
// copy-on-write), so queries pinned to the previous snapshot keep reading
// exactly the rows they started with. Only the touched table's plans,
// indexes and column vectors are invalidated — every other registration
// keeps its warm caches, which is what makes append ingest cheap next to
// a full re-register-everything eviction.
func (e *Engine) Append(name string, rows []relation.Row) (*relation.Table, error) {
	key := strings.ToLower(name)
	e.regMu.Lock()
	defer e.regMu.Unlock()
	old := e.reg.Load()
	t, ok := old.tables[key]
	if !ok {
		return nil, fmt.Errorf("sqlengine: append to unregistered table %q", name)
	}
	ext, err := t.Extend(rows)
	if err != nil {
		return nil, err
	}
	e.publishLocked(key, ext)
	met.tableAppends.Inc()
	return ext, nil
}

// Swap publishes next in place of prev, failing unless prev is exactly the
// table currently registered under next's name. It is the publish half of a
// compute-then-publish append: the caller extends the table and derives its
// artifacts (profile, metadata) off the engine first, then swaps the
// registration in atomically — a failure while deriving leaves the engine
// untouched, so engine state and caller state never diverge. Like Append it
// invalidates only the swapped table's plans, indexes and vectors, and the
// snapshot semantics are those of Register: readers pinned to the previous
// view keep it.
func (e *Engine) Swap(prev, next *relation.Table) error {
	key := strings.ToLower(next.Name)
	e.regMu.Lock()
	defer e.regMu.Unlock()
	cur, ok := e.reg.Load().tables[key]
	if !ok {
		return fmt.Errorf("sqlengine: swap of unregistered table %q", next.Name)
	}
	if cur != prev {
		return fmt.Errorf("sqlengine: swap of table %q: the registration changed since the caller read it", next.Name)
	}
	e.publishLocked(key, next)
	met.tableSwaps.Inc()
	return nil
}

// Table returns a registered table by name, from the current snapshot.
func (e *Engine) Table(name string) (*relation.Table, bool) {
	return e.snapshot().lookup(name)
}

// Tables returns the registered table names of the current snapshot in
// sorted order.
func (e *Engine) Tables() []string {
	snap := e.snapshot()
	names := make([]string, 0, len(snap.tables))
	for n := range snap.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// timedParse parses a SELECT statement under the parse metrics.
func timedParse(sql string) (*SelectStmt, error) {
	tm := met.parseNS.Time()
	stmt, err := Parse(sql)
	tm.Stop()
	met.queriesParsed.Inc()
	return stmt, err
}

// Query executes a SELECT statement, returning the result as a fresh table
// named "result". Statements are resolved through the plan cache: repeated
// SQL texts skip parsing and predicate compilation entirely.
func (e *Engine) Query(sql string) (*relation.Table, error) {
	p, err := e.prepare(sql)
	if err != nil {
		return nil, err
	}
	return e.run(p)
}

// QueryCount executes the statement through the counting path: only the
// result cardinality is computed, no projection rows are materialized.
// Like Query it consults the plan cache first. See ExecuteCount for the
// exact counting semantics.
func (e *Engine) QueryCount(sql string) (int, error) {
	p, err := e.prepare(sql)
	if err != nil {
		return 0, err
	}
	return e.runCount(p)
}

// Execute runs an already-parsed statement. The plan is compiled fresh —
// callers holding SQL text should prefer Query, which caches plans.
func (e *Engine) Execute(stmt *SelectStmt) (*relation.Table, error) {
	p, err := e.buildPlan(e.snapshot(), stmt)
	if err != nil {
		return nil, err
	}
	return e.run(p)
}

// ExecuteCount returns the number of rows Execute would produce, without
// building them: WHERE, DISTINCT and LIMIT are honored through a counting
// row sink, aggregates count their (small) group output, and ORDER BY is
// compiled for error parity but never evaluated — ordering cannot change
// a cardinality. LIMIT short-circuits the scan through errLimitReached,
// so counting a `LIMIT k` query stops after k qualifying rows.
func (e *Engine) ExecuteCount(stmt *SelectStmt) (int, error) {
	p, err := e.buildPlan(e.snapshot(), stmt)
	if err != nil {
		return 0, err
	}
	return e.runCount(p)
}

// bind resolves the FROM tables against one registry snapshot into the
// expression binding shared by the materializing, counting and aggregate
// paths. Taking the snapshot as a parameter (instead of reading the live
// pointer per table) is what makes a multi-table bind atomic with respect
// to concurrent Register calls.
func bind(snap *registry, stmt *SelectStmt) (*binding, []*relation.Table, error) {
	b := &binding{}
	var sources []*relation.Table
	offset := 0
	for _, tr := range stmt.From {
		t, ok := snap.lookup(tr.Table)
		if !ok {
			return nil, nil, fmt.Errorf("sqlengine: unknown table %q", tr.Table)
		}
		sources = append(sources, t)
		b.aliases = append(b.aliases, strings.ToLower(tr.Alias))
		b.schemas = append(b.schemas, t.Schema)
		b.offsets = append(b.offsets, offset)
		offset += t.NumCols()
	}
	if len(b.aliases) == 2 && b.aliases[0] == b.aliases[1] {
		return nil, nil, fmt.Errorf("sqlengine: duplicate table alias %q", b.aliases[0])
	}
	return b, sources, nil
}

// runCount executes a prepared plan through the counting path.
//
// The counting sink evaluates projections only when DISTINCT needs dedup
// keys; either way no projection row is allocated or retained.
func (e *Engine) runCount(p *plan) (int, error) {
	met.countQueries.Inc()
	tm := met.execNS.Time()
	defer tm.Stop()

	stmt := p.stmt
	if p.agg {
		res, err := e.executeAggregate(p)
		if err != nil {
			return 0, err
		}
		return res.NumRows(), nil
	}

	count, drops := 0, 0
	var sink rowSink
	if stmt.Distinct {
		seen := map[string]struct{}{}
		var keyBuf []byte
		sink = func(combined []relation.Value) error {
			keyBuf = keyBuf[:0]
			for _, ev := range p.projs {
				v, err := ev.eval(combined)
				if err != nil {
					return err
				}
				keyBuf = v.AppendHashKey(keyBuf)
				keyBuf = append(keyBuf, 0x1f)
			}
			if _, dup := seen[string(keyBuf)]; dup {
				drops++
				return nil
			}
			seen[string(keyBuf)] = struct{}{}
			count++
			if stmt.Limit >= 0 && count >= stmt.Limit {
				return errLimitReached
			}
			return nil
		}
	} else {
		sink = func([]relation.Value) error {
			count++
			if stmt.Limit >= 0 && count >= stmt.Limit {
				return errLimitReached
			}
			return nil
		}
	}
	if err := e.planRows(p, sink); err != nil {
		return 0, err
	}
	met.distinctDrops.Add(int64(drops))
	// LIMIT 0: the sink admits the row that trips the limit, exactly like
	// the materializing path, so clamp the same way it truncates.
	if stmt.Limit >= 0 && count > stmt.Limit {
		count = stmt.Limit
	}
	return count, nil
}

// run executes a prepared plan through the materializing path.
func (e *Engine) run(p *plan) (*relation.Table, error) {
	met.queriesExecuted.Inc()
	tm := met.execNS.Time()
	defer tm.Stop()

	// Aggregate queries (GROUP BY or aggregate functions) take the
	// grouping path.
	if p.agg {
		return e.executeAggregate(p)
	}

	// Supported shapes run on the columnar batch path; runBatch declines
	// (and the row path below takes over) only when a registered table is
	// not vectorizable.
	if p.batch != nil && !e.batchOff {
		if res, ok := e.runBatch(p); ok {
			return res, nil
		}
	}

	stmt, projs, names, orderEvals := p.stmt, p.projs, p.names, p.orderEvals

	// Plan and consume the row stream. Without ORDER BY the projection
	// (plus DISTINCT and LIMIT) streams directly out of the join — the
	// combined rows are never materialized. With ORDER BY the source rows
	// must survive until sorting, so they are collected first.
	width := len(projs)
	const chunkRows = 1024
	var arena []relation.Value
	newRow := func() relation.Row {
		if len(arena) < width {
			arena = make([]relation.Value, chunkRows*width)
		}
		pr := relation.Row(arena[:width:width])
		arena = arena[width:]
		return pr
	}

	var out []relation.Row
	var rows [][]relation.Value // combined source rows (ORDER BY path only)

	distinctDrops := 0
	if len(orderEvals) == 0 {
		var seen map[string]struct{}
		if stmt.Distinct {
			seen = map[string]struct{}{}
		}
		var keyBuf []byte // reused dedup-key scratch; allocation only on insert
		sink := func(combined []relation.Value) error {
			pr := newRow()
			for i, ev := range projs {
				v, err := ev.eval(combined)
				if err != nil {
					return err
				}
				pr[i] = v
			}
			if seen != nil {
				keyBuf = appendRowKey(keyBuf[:0], pr)
				if _, dup := seen[string(keyBuf)]; dup {
					distinctDrops++
					return nil
				}
				seen[string(keyBuf)] = struct{}{}
			}
			out = append(out, pr)
			if stmt.Limit >= 0 && len(out) >= stmt.Limit {
				return errLimitReached
			}
			return nil
		}
		if err := e.planRows(p, sink); err != nil {
			return nil, err
		}
	} else {
		// Collect combined rows, then project.
		var srcArena []relation.Value
		total := totalWidth(p.b)
		sink := func(combined []relation.Value) error {
			if len(srcArena) < total {
				srcArena = make([]relation.Value, chunkRows*total)
			}
			row := srcArena[:total:total]
			srcArena = srcArena[total:]
			copy(row, combined)
			rows = append(rows, row)
			return nil
		}
		if err := e.planRows(p, sink); err != nil {
			return nil, err
		}
		out = make([]relation.Row, 0, len(rows))
		for _, row := range rows {
			pr := newRow()
			for i, ev := range projs {
				v, err := ev.eval(row)
				if err != nil {
					return nil, err
				}
				pr[i] = v
			}
			out = append(out, pr)
		}
		if stmt.Distinct {
			seen := make(map[string]struct{}, len(out))
			dedup := out[:0]
			var keyBuf []byte
			for _, row := range out {
				keyBuf = appendRowKey(keyBuf[:0], row)
				if _, ok := seen[string(keyBuf)]; ok {
					distinctDrops++
					continue
				}
				seen[string(keyBuf)] = struct{}{}
				dedup = append(dedup, row)
			}
			out = dedup
		}
	}
	met.distinctDrops.Add(int64(distinctDrops))

	// ORDER BY: evaluated over the *source* rows is not possible after
	// projection, so we sort (projected, source) pairs together when
	// ordering expressions exist.
	if len(orderEvals) > 0 {
		type pair struct {
			proj relation.Row
			keys []relation.Value
		}
		pairs := make([]pair, len(out))
		if stmt.Distinct {
			// After DISTINCT the source rows no longer correspond 1:1;
			// order keys must be computable from the projection. We
			// re-evaluate against projections by name when possible.
			for i, row := range out {
				pairs[i] = pair{proj: row, keys: orderKeysFromProjection(stmt, names, row)}
			}
		} else {
			for i, row := range out {
				keys := make([]relation.Value, len(orderEvals))
				for j, ev := range orderEvals {
					v, err := ev.eval(rows[i])
					if err != nil {
						return nil, err
					}
					keys[j] = v
				}
				pairs[i] = pair{proj: row, keys: keys}
			}
		}
		sort.SliceStable(pairs, func(a, bI int) bool {
			for j := range pairs[a].keys {
				c, err := pairs[a].keys[j].Compare(pairs[bI].keys[j])
				if err != nil {
					c = strings.Compare(pairs[a].keys[j].Format(), pairs[bI].keys[j].Format())
				}
				if c != 0 {
					if stmt.OrderBy[j].Desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
		for i := range pairs {
			out[i] = pairs[i].proj
		}
	}

	// LIMIT.
	if stmt.Limit >= 0 && len(out) > stmt.Limit {
		out = out[:stmt.Limit]
	}

	return finishResult(p, out), nil
}

// finishResult assembles the output table from projected rows. Both the
// row path and the batch path finish here, so the result schema — static
// kind guesses refined by observed values — is derived identically.
func finishResult(p *plan, out []relation.Row) *relation.Table {
	projs, names := p.projs, p.names
	schema := make(relation.Schema, len(projs))
	for i := range projs {
		k := projs[i].kind
		if k == relation.KindNull {
			for _, row := range out {
				k = relation.UnifyKind(k, row[i].Kind())
			}
			if k == relation.KindNull {
				k = relation.KindString
			}
		}
		schema[i] = relation.Column{Name: names[i], Kind: k}
	}
	met.rowsEmitted.Add(int64(len(out)))
	res := relation.NewTable("result", schema)
	res.Rows = out
	return res
}

// appendRowKey appends the DISTINCT dedup key of a projected row: each
// value's hash key terminated by a 0x1f separator. Every dedup site (row
// path, counting path, batch path) builds keys through this helper in a
// reused scratch buffer, so the sets they build are interchangeable.
func appendRowKey(buf []byte, row []relation.Value) []byte {
	for _, v := range row {
		buf = v.AppendHashKey(buf)
		buf = append(buf, 0x1f)
	}
	return buf
}

// orderKeysFromProjection resolves ORDER BY items against output column
// names after DISTINCT. Unresolvable items order as NULL.
func orderKeysFromProjection(stmt *SelectStmt, names []string, row relation.Row) []relation.Value {
	keys := make([]relation.Value, len(stmt.OrderBy))
	for j, o := range stmt.OrderBy {
		keys[j] = relation.Null
		if c, ok := o.Expr.(*ColumnRef); ok {
			for i, n := range names {
				if strings.EqualFold(n, c.Name) {
					keys[j] = row[i]
					break
				}
			}
		}
	}
	return keys
}

// compileProjections expands SELECT items (including *) into compiled
// evaluators plus output column names.
func compileProjections(stmt *SelectStmt, b *binding) ([]*evaluator, []string, error) {
	var projs []*evaluator
	var names []string
	for _, item := range stmt.Items {
		if item.Star {
			for ti := range b.schemas {
				for ci, col := range b.schemas[ti] {
					idx := b.offsets[ti] + ci
					kind := col.Kind
					i := idx
					projs = append(projs, &evaluator{
						eval: func(row []relation.Value) (relation.Value, error) { return row[i], nil },
						kind: kind,
					})
					names = append(names, col.Name)
				}
			}
			continue
		}
		ev, err := compile(item.Expr, b)
		if err != nil {
			return nil, nil, err
		}
		projs = append(projs, ev)
		names = append(names, projectionName(item, len(names)))
	}
	return projs, names, nil
}

// projectionName derives the output column name for a projection.
func projectionName(item SelectItem, pos int) string {
	if item.Alias != "" {
		return item.Alias
	}
	switch e := item.Expr.(type) {
	case *ColumnRef:
		return e.Name
	case *FuncCall:
		return strings.ToLower(e.Name)
	default:
		return fmt.Sprintf("col%d", pos+1)
	}
}

// rowSink consumes one combined row. The slice is reused between calls;
// sinks that retain data must copy. Returning errLimitReached stops the
// stream without error.
type rowSink func(combined []relation.Value) error

// planRows streams the combined rows of the FROM/WHERE part into sink.
func (e *Engine) planRows(p *plan, sink rowSink) error {
	var err error
	switch len(p.sources) {
	case 1:
		err = e.runScan(p, sink)
	case 2:
		err = e.runJoin(p, sink)
	default:
		err = fmt.Errorf("sqlengine: unsupported FROM arity %d", len(p.sources))
	}
	//lint:ignore err-limit-propagate planRows is the blessed conversion point: the limit sentinel stops scan/join early and is success here
	if err == errLimitReached {
		return nil
	}
	return err
}

// runScan filters a single table. Scanned rows are accumulated locally
// and flushed in one counter add — also on the early-exit paths, so a
// LIMIT short-circuit is visible in sqlengine.rows_scanned.
func (e *Engine) runScan(p *plan, sink rowSink) error {
	scanned := 0
	defer func() { met.rowsScanned.Add(int64(scanned)) }()
	filter := p.scanFilter
	for _, row := range p.sources[0].Rows {
		scanned++
		if filter != nil {
			v, err := filter.eval(row)
			if err != nil {
				return err
			}
			ok, err := truthy(v)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
		}
		if err := sink(row); err != nil {
			return err
		}
	}
	return nil
}

// sideOf classifies which FROM sides an expression's column references
// touch, as a bitmask (bit 0 = left, bit 1 = right). Errors propagate nil
// classification via the bool.
func sideOf(e Expr, b *binding) (int, bool) {
	switch n := e.(type) {
	case *Literal:
		return 0, true
	case *ColumnRef:
		idx, _, err := b.resolve(n)
		if err != nil {
			return 0, false
		}
		if idx < b.offsets[1] {
			return 1, true
		}
		return 2, true
	case *IsNullExpr:
		return sideOf(n.Expr, b)
	case *FuncCall:
		mask := 0
		for _, a := range n.Args {
			m, ok := sideOf(a, b)
			if !ok {
				return 0, false
			}
			mask |= m
		}
		return mask, true
	case *BinaryExpr:
		lm, ok := sideOf(n.Left, b)
		if !ok {
			return 0, false
		}
		rm, ok := sideOf(n.Right, b)
		if !ok {
			return 0, false
		}
		return lm | rm, true
	default:
		return 0, false
	}
}

// equiJoinCols extracts (leftIdx, rightIdx) when e is `a = b` with one
// column per side.
func equiJoinCols(e Expr, b *binding) (int, int, bool) {
	be, ok := e.(*BinaryExpr)
	if !ok || be.Op != "=" {
		return 0, 0, false
	}
	lc, ok1 := be.Left.(*ColumnRef)
	rc, ok2 := be.Right.(*ColumnRef)
	if !ok1 || !ok2 {
		return 0, 0, false
	}
	li, _, err1 := b.resolve(lc)
	ri, _, err2 := b.resolve(rc)
	if err1 != nil || err2 != nil {
		return 0, 0, false
	}
	boundary := b.offsets[1]
	switch {
	case li < boundary && ri >= boundary:
		return li, ri - boundary, true
	case ri < boundary && li >= boundary:
		return ri, li - boundary, true
	default:
		return 0, 0, false
	}
}

// errLimitReached signals early termination from the join emit path.
var errLimitReached = fmt.Errorf("sqlengine: limit reached")

// filterSide applies one side's precompiled pushed-down predicate. The
// predicate is compiled against the full binding, so each row is padded
// into the combined layout at the side's offset; the off-side cells are
// explicitly NULL so a predicate that (mis)reads across the boundary sees
// SQL NULL semantics rather than arbitrary cell values.
func filterSide(rows []relation.Row, ev *evaluator, total, offset, width int) ([]relation.Row, error) {
	if ev == nil {
		return rows, nil
	}
	combined := make([]relation.Value, total)
	for i := range combined {
		combined[i] = relation.Null
	}
	var out []relation.Row
	for _, r := range rows {
		copy(combined[offset:offset+width], r)
		v, err := ev.eval(combined)
		if err != nil {
			return nil, err
		}
		ok, err := truthy(v)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, r)
		}
	}
	return out, nil
}

// conjoin folds conjuncts back into an AND tree.
func conjoin(preds []Expr) Expr {
	e := preds[0]
	for _, p := range preds[1:] {
		e = &BinaryExpr{Op: "AND", Left: e, Right: p}
	}
	return e
}
