package sqlengine

import (
	"container/list"
	"sync"
)

// defaultPlanCacheCap bounds the prepared plans held per engine. An
// a-query stream repeats a bounded statement set per table (operators ×
// match types × attribute pairs), comfortably below this; overflow evicts
// least-recently-used plans rather than failing.
const defaultPlanCacheCap = 512

// planCache is a concurrency-safe LRU of prepared plans keyed by SQL
// text. Cached plans are immutable, so a hit can be executed by any
// number of goroutines; the cache itself serializes only the (cheap)
// lookup and recency bookkeeping.
type planCache struct {
	mu      sync.Mutex
	cap     int
	lru     *list.List // of *planEntry; front is most recently used
	entries map[string]*list.Element
}

// planEntry is one cached plan with its key, stored in the LRU list.
type planEntry struct {
	sql string
	p   *plan
}

// newPlanCache returns an empty cache holding at most capacity plans.
func newPlanCache(capacity int) *planCache {
	return &planCache{
		cap:     capacity,
		lru:     list.New(),
		entries: map[string]*list.Element{},
	}
}

// get returns the cached plan for sql, marking it most recently used.
func (c *planCache) get(sql string) (*plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[sql]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*planEntry).p, true
}

// put stores a plan under its SQL text, evicting the least recently used
// entries beyond capacity. Concurrent builders of the same text may both
// put; the later write wins, which is safe because plan compilation is
// deterministic for a fixed registration.
func (c *planCache) put(sql string, p *plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[sql]; ok {
		el.Value.(*planEntry).p = p
		c.lru.MoveToFront(el)
		return
	}
	c.entries[sql] = c.lru.PushFront(&planEntry{sql: sql, p: p})
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.entries, back.Value.(*planEntry).sql)
		met.planCacheEvictions.Inc()
	}
}

// invalidate evicts every plan that reads the named (lowercased) table —
// the Register hook that keeps replaced registrations from serving stale
// bindings. The walk is over the LRU list, never the map, so eviction
// order is deterministic.
func (c *planCache) invalidate(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		pe := el.Value.(*planEntry)
		if pe.p.references(name) {
			c.lru.Remove(el)
			delete(c.entries, pe.sql)
			met.planCacheEvictions.Inc()
		}
		el = next
	}
}

// size returns the number of cached plans (for tests).
func (c *planCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
