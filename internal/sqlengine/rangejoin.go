package sqlengine

import (
	"sort"

	"repro/internal/relation"
)

// runRangeJoin executes a binary join whose driver is a cross-side order
// comparison `left[li] op right[ri]` — the attribute-ambiguity a-query
// shape, which has no equality conjunct and historically fell into the
// O(n²) nested loop. The shared sorted index over the right column bounds
// each left row's candidate set with one binary search, so left rows with
// no possible partner cost O(log n) instead of a full inner scan, and
// candidates are rejected with direct column comparisons before any
// combined-row copy is paid.
//
// Emission order is byte-compatible with the nested loop: survivors are
// collected per left row and emitted in right-row-position order, so
// downstream DISTINCT, LIMIT (errLimitReached propagates from emit) and
// evidence consumers see the exact stream the nested loop would produce.
func (e *Engine) runRangeJoin(p *plan, leftRows []relation.Row, emit func(l, r relation.Row) error) error {
	jp := p.join
	right := p.sources[1]
	driver := jp.cmps[jp.driver]
	pos := e.indexes.forTable(p.tableKeys[1], right).sortedIndex(driver.ri)
	met.rangeJoins.Inc()

	var matches []int // reused across left rows
	for _, l := range leftRows {
		x := l[driver.li]
		if x.IsNull() {
			continue // NULL compares false against every right row
		}
		lo, hi := candidateRange(pos, right.Rows, driver.ri, driver.op, x)
		if lo >= hi {
			continue
		}
		// Check every colCmp (the driver included, restoring the exact
		// compareValues error surface) on the raw rows; collect surviving
		// positions, then emit them in ascending row order.
		matches = matches[:0]
		for _, rp := range pos[lo:hi] {
			r := right.Rows[rp]
			ok := true
			for _, cc := range jp.cmps {
				match, err := compareValues(cc.op, l[cc.li], r[cc.ri])
				if err != nil {
					return err
				}
				if !match {
					ok = false
					break
				}
			}
			if ok {
				matches = append(matches, rp)
			}
		}
		sort.Ints(matches)
		for _, rp := range matches {
			if err := emit(l, right.Rows[rp]); err != nil {
				return err
			}
		}
	}
	return nil
}

// candidateRange returns the half-open window [lo, hi) of pos — right-row
// positions sorted ascending by column col — whose values can satisfy
// `x op value`. Order comparisons against x partition the sorted order,
// so the window is a prefix (x > value, x >= value) or a suffix
// (x < value, x <= value).
func candidateRange(pos []int, rows []relation.Row, col int, op string, x relation.Value) (int, int) {
	switch op {
	case ">": // value < x: prefix below the first value >= x
		return 0, sort.Search(len(pos), func(i int) bool {
			return orderCmp(rows[pos[i]][col], x) >= 0
		})
	case ">=": // value <= x: prefix through the last value == x
		return 0, sort.Search(len(pos), func(i int) bool {
			return orderCmp(rows[pos[i]][col], x) > 0
		})
	case "<": // value > x: suffix past the last value == x
		return sort.Search(len(pos), func(i int) bool {
			return orderCmp(rows[pos[i]][col], x) > 0
		}), len(pos)
	case "<=": // value >= x: suffix from the first value == x
		return sort.Search(len(pos), func(i int) bool {
			return orderCmp(rows[pos[i]][col], x) >= 0
		}), len(pos)
	default:
		return 0, len(pos) // not an order op: no pruning
	}
}
