package sqlengine

import (
	"fmt"
	"testing"

	"repro/internal/relation"
	"repro/internal/telemetry"
)

// wideTable builds a rows×cols table whose values repeat with small
// periods, so DISTINCT and WHERE both have real work to do.
func wideTable(name string, rows, cols int) *relation.Table {
	schema := make(relation.Schema, cols)
	for c := 0; c < cols; c++ {
		schema[c] = relation.Column{Name: fmt.Sprintf("c%d", c), Kind: relation.KindInt}
	}
	t := relation.NewTable(name, schema)
	for r := 0; r < rows; r++ {
		row := make(relation.Row, cols)
		for c := 0; c < cols; c++ {
			row[c] = relation.Int(int64(r % (7 + c)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// TestQueryCountMatchesQuery is the regression for the counting path: on
// a wide table, QueryCount must agree with Query(...).NumRows() across
// WHERE / DISTINCT / LIMIT / ORDER BY / aggregate / join variants.
func TestQueryCountMatchesQuery(t *testing.T) {
	e := NewEngine()
	e.Register(wideTable("W", 500, 12))
	queries := []string{
		`SELECT * FROM W`,
		`SELECT c0, c1 FROM W`,
		`SELECT c0 FROM W WHERE c1 > 3`,
		`SELECT DISTINCT c0 FROM W`,
		`SELECT DISTINCT c0, c1 FROM W`,
		`SELECT DISTINCT c0 FROM W WHERE c2 > 1`,
		`SELECT c0 FROM W LIMIT 17`,
		`SELECT c0 FROM W LIMIT 0`,
		`SELECT c0 FROM W LIMIT 100000`,
		`SELECT DISTINCT c1 FROM W LIMIT 3`,
		`SELECT c0, c3 FROM W ORDER BY c3 DESC`,
		`SELECT c0 FROM W ORDER BY c1 LIMIT 25`,
		`SELECT DISTINCT c2 FROM W ORDER BY c2 LIMIT 4`,
		`SELECT c1 + c2 FROM W WHERE c0 = 2 ORDER BY c1 DESC LIMIT 9`,
		`SELECT COUNT(*) FROM W`,
		`SELECT c0, COUNT(*) FROM W GROUP BY c0`,
		`SELECT c1, MAX(c2) FROM W WHERE c0 > 1 GROUP BY c1 ORDER BY c1 LIMIT 5`,
		`SELECT a.c0 FROM W a, W b WHERE a.c0 = b.c1 AND a.c2 > 5 LIMIT 40`,
	}
	for _, q := range queries {
		res, err := e.Query(q)
		if err != nil {
			t.Fatalf("Query(%s): %v", q, err)
		}
		n, err := e.QueryCount(q)
		if err != nil {
			t.Fatalf("QueryCount(%s): %v", q, err)
		}
		if n != res.NumRows() {
			t.Errorf("QueryCount(%s) = %d, Query().NumRows() = %d", q, n, res.NumRows())
		}
	}
}

// TestQueryCountErrorParity: the counting path must reject what the
// materializing path rejects, even though it skips projection evaluation.
func TestQueryCountErrorParity(t *testing.T) {
	e := NewEngine()
	e.Register(wideTable("W", 10, 3))
	for _, q := range []string{
		`SELECT nope FROM W`,
		`SELECT c0 FROM Missing`,
		`SELECT c0 FROM W ORDER BY nope`,
		`SELECT c0 FROM W WHERE nope = 1`,
	} {
		if _, err := e.QueryCount(q); err == nil {
			t.Errorf("QueryCount(%s) succeeded, want error", q)
		}
	}
}

// TestQueryCountLimitShortCircuits proves the errLimitReached early exit
// works through the counting path: counting a LIMIT-k query over a large
// table must stop scanning after k rows, observed through the
// sqlengine.rows_scanned telemetry counter.
func TestQueryCountLimitShortCircuits(t *testing.T) {
	const total, limit = 100000, 10
	e := NewEngine()
	e.Register(wideTable("Big", total, 3))

	scanned := telemetry.Default().Counter("sqlengine.rows_scanned")
	before := scanned.Value()
	n, err := e.QueryCount(fmt.Sprintf(`SELECT c0 FROM Big LIMIT %d`, limit))
	if err != nil {
		t.Fatalf("QueryCount: %v", err)
	}
	if n != limit {
		t.Fatalf("count = %d, want %d", n, limit)
	}
	delta := scanned.Value() - before
	if delta != limit {
		t.Errorf("scanned %d rows for an unfiltered LIMIT %d count, want exactly %d", delta, limit, limit)
	}

	// With a WHERE filter the scan may pass over non-qualifying rows, but
	// must still stop as soon as the limit fills.
	before = scanned.Value()
	n, err = e.QueryCount(fmt.Sprintf(`SELECT c0 FROM Big WHERE c0 > 0 LIMIT %d`, limit))
	if err != nil {
		t.Fatalf("QueryCount: %v", err)
	}
	if n != limit {
		t.Fatalf("count = %d, want %d", n, limit)
	}
	if delta := scanned.Value() - before; delta >= total/2 {
		t.Errorf("scanned %d of %d rows for a filtered LIMIT %d count; limit did not short-circuit", delta, total, limit)
	}
}

// TestExecuteCountDistinctDropsCounter checks the DISTINCT counting sink
// reports its dedup drops to telemetry.
func TestExecuteCountDistinctDropsCounter(t *testing.T) {
	e := NewEngine()
	e.Register(wideTable("W", 70, 2)) // c0 cycles 0..6 -> 7 distinct, 63 drops
	drops := telemetry.Default().Counter("sqlengine.distinct_drops")
	before := drops.Value()
	n, err := e.QueryCount(`SELECT DISTINCT c0 FROM W`)
	if err != nil {
		t.Fatalf("QueryCount: %v", err)
	}
	if n != 7 {
		t.Fatalf("count = %d, want 7", n)
	}
	if delta := drops.Value() - before; delta != 63 {
		t.Errorf("distinct_drops delta = %d, want 63", delta)
	}
}

// benchEngine registers one wide table for the allocation benchmarks.
func benchEngine(rows, cols int) *Engine {
	e := NewEngine()
	e.Register(wideTable("W", rows, cols))
	return e
}

// BenchmarkQueryNumRows is the old QueryCount implementation: materialize
// the full projection, then read its length. Compare allocs/op with
// BenchmarkQueryCount.
func BenchmarkQueryNumRows(b *testing.B) {
	e := benchEngine(5000, 24)
	stmt, err := Parse(`SELECT * FROM W WHERE c1 > 1`)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Execute(stmt)
		if err != nil {
			b.Fatal(err)
		}
		if res.NumRows() == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkQueryCount is the counting path over the same statement: no
// projection rows are built.
func BenchmarkQueryCount(b *testing.B) {
	e := benchEngine(5000, 24)
	stmt, err := Parse(`SELECT * FROM W WHERE c1 > 1`)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := e.ExecuteCount(stmt)
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			b.Fatal("no rows")
		}
	}
}
