package sqlengine

import (
	"strings"

	"repro/internal/relation"
)

// Expr is a SQL expression node.
type Expr interface {
	// String renders the expression back to parseable SQL.
	String() string
}

// ColumnRef is a possibly-qualified column reference such as b1."FG%".
type ColumnRef struct {
	Qualifier string // table alias; empty if unqualified
	Name      string
}

func (c *ColumnRef) String() string {
	if c.Qualifier != "" {
		return QuoteIdent(c.Qualifier) + "." + QuoteIdent(c.Name)
	}
	return QuoteIdent(c.Name)
}

// Literal is a constant value.
type Literal struct {
	Value relation.Value
}

func (l *Literal) String() string {
	switch l.Value.Kind() {
	case relation.KindString:
		return QuoteString(l.Value.AsString())
	case relation.KindNull:
		return "NULL"
	default:
		return l.Value.Format()
	}
}

// BinaryExpr is a binary operation: comparison, arithmetic, or AND/OR.
type BinaryExpr struct {
	Op    string // = <> < > <= >= + - * / AND OR
	Left  Expr
	Right Expr
}

func (b *BinaryExpr) String() string {
	return "(" + b.Left.String() + " " + b.Op + " " + b.Right.String() + ")"
}

// FuncCall is a function application: CONCAT or one of the aggregates
// (COUNT, SUM, AVG, MIN, MAX). Star marks COUNT(*).
type FuncCall struct {
	Name string
	Args []Expr
	Star bool
}

func (f *FuncCall) String() string {
	if f.Star {
		return strings.ToUpper(f.Name) + "(*)"
	}
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.String()
	}
	return strings.ToUpper(f.Name) + "(" + strings.Join(parts, ", ") + ")"
}

// aggregateFuncs are the grouping aggregates.
var aggregateFuncs = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

// IsAggregate reports whether the function is a grouping aggregate.
func (f *FuncCall) IsAggregate() bool { return aggregateFuncs[strings.ToUpper(f.Name)] }

// containsAggregate walks an expression for aggregate calls.
func containsAggregate(e Expr) bool {
	switch n := e.(type) {
	case *FuncCall:
		if n.IsAggregate() {
			return true
		}
		for _, a := range n.Args {
			if containsAggregate(a) {
				return true
			}
		}
	case *BinaryExpr:
		return containsAggregate(n.Left) || containsAggregate(n.Right)
	case *IsNullExpr:
		return containsAggregate(n.Expr)
	}
	return false
}

// IsNullExpr is `expr IS [NOT] NULL`.
type IsNullExpr struct {
	Expr   Expr
	Negate bool
}

func (e *IsNullExpr) String() string {
	if e.Negate {
		return "(" + e.Expr.String() + " IS NOT NULL)"
	}
	return "(" + e.Expr.String() + " IS NULL)"
}

// SelectItem is one projection with an optional output alias.
type SelectItem struct {
	Expr  Expr
	Alias string // output column name; derived if empty
	Star  bool   // SELECT * (Expr nil)
}

// TableRef is one FROM entry.
type TableRef struct {
	Table string
	Alias string // defaults to Table
}

// OrderItem is one ORDER BY entry.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SelectStmt is the parsed form of a query.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    Expr // nil when absent; conjunctions kept as BinaryExpr AND trees
	GroupBy  []Expr
	OrderBy  []OrderItem
	Limit    int // -1 when absent
}

// String renders the statement back to SQL (normalized).
func (s *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		if it.Star {
			b.WriteString("*")
			continue
		}
		b.WriteString(it.Expr.String())
		if it.Alias != "" {
			b.WriteString(" AS " + QuoteIdent(it.Alias))
		}
	}
	b.WriteString(" FROM ")
	for i, tr := range s.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(QuoteIdent(tr.Table))
		if tr.Alias != "" && tr.Alias != tr.Table {
			b.WriteString(" " + QuoteIdent(tr.Alias))
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.String())
		}
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Expr.String())
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		b.WriteString(" LIMIT " + itoa(s.Limit))
	}
	return b.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// conjuncts flattens an AND tree into its conjunct list. Non-AND
// expressions yield themselves.
func conjuncts(e Expr) []Expr {
	if b, ok := e.(*BinaryExpr); ok && b.Op == "AND" {
		return append(conjuncts(b.Left), conjuncts(b.Right)...)
	}
	if e == nil {
		return nil
	}
	return []Expr{e}
}
