package sqlengine

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/relation"
)

// batchTestTable mixes every vectorizable kind with NULLs sprinkled into
// each column, including the join key.
func batchTestTable(name string) *relation.Table {
	t := relation.NewTable(name, relation.Schema{
		{Name: "k", Kind: relation.KindInt},
		{Name: "n", Kind: relation.KindInt},
		{Name: "f", Kind: relation.KindFloat},
		{Name: "s", Kind: relation.KindString},
		{Name: "b", Kind: relation.KindBool},
		{Name: "d", Kind: relation.KindDate},
	})
	words := []string{"ant", "bee", "cat", "", "dog"}
	for i := 0; i < 40; i++ {
		row := relation.Row{
			relation.Int(int64(i % 5)),
			relation.Int(int64(i % 7)),
			relation.Float(float64(i%4) + 0.5),
			relation.String(words[i%len(words)]),
			relation.Bool(i%2 == 0),
			relation.Date(2020, time.January, 1+i%9),
		}
		// NULL every column somewhere, key included.
		if i%11 == 3 {
			row[i%6] = relation.Null
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// tableFingerprint renders a result table so two results compare
// byte-identically: schema names and kinds, then every cell's kind tag,
// hash key and formatted text in row order.
func tableFingerprint(t *relation.Table) string {
	var sb strings.Builder
	for _, c := range t.Schema {
		fmt.Fprintf(&sb, "%s:%v|", c.Name, c.Kind)
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		for _, v := range row {
			fmt.Fprintf(&sb, "%v\x00%s\x00%s\x1f", v.Kind(), v.HashKey(), v.Format())
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// runBothPaths executes sql against the same registrations on a batch
// engine and a fallback (batchOff) engine and requires byte-identical
// results. It returns the batch result for further assertions.
func runBothPaths(t *testing.T, sql string, tables ...*relation.Table) *relation.Table {
	t.Helper()
	eb, ef := NewEngine(), NewEngine()
	ef.batchOff = true
	for _, tb := range tables {
		eb.Register(tb)
		ef.Register(tb)
	}
	got, gotErr := eb.Query(sql)
	want, wantErr := ef.Query(sql)
	if (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("error parity broken for %q: batch err = %v, fallback err = %v", sql, gotErr, wantErr)
	}
	if gotErr != nil {
		if gotErr.Error() != wantErr.Error() {
			t.Fatalf("errors diverge for %q: batch %q, fallback %q", sql, gotErr, wantErr)
		}
		return nil
	}
	if g, w := tableFingerprint(got), tableFingerprint(want); g != w {
		t.Fatalf("paths diverge for %q:\nbatch:\n%s\nfallback:\n%s", sql, g, w)
	}
	return got
}

// requireBatchPlan asserts whether the statement compiles onto the batch
// path.
func requireBatchPlan(t *testing.T, sql string, want bool, tables ...*relation.Table) {
	t.Helper()
	e := NewEngine()
	for _, tb := range tables {
		e.Register(tb)
	}
	p, err := e.prepare(sql)
	if err != nil {
		t.Fatalf("prepare %q: %v", sql, err)
	}
	if got := p.batch != nil; got != want {
		t.Fatalf("batch plan for %q = %v, want %v", sql, got, want)
	}
}

func TestBatchScanShapesMatchRowPath(t *testing.T) {
	tb := batchTestTable("t")
	for _, sql := range []string{
		`SELECT * FROM t`,
		`SELECT k, s FROM t WHERE n > 3`,
		`SELECT n FROM t WHERE n >= 2 AND n <= 5 AND k <> 1`,
		`SELECT s FROM t WHERE s = 'cat'`,
		`SELECT s FROM t WHERE s < 'cat'`,
		`SELECT f FROM t WHERE f > 1.4`,
		`SELECT k FROM t WHERE n > f`, // mixed numeric column pair
		`SELECT k FROM t WHERE k = n`, // int column pair
		`SELECT k FROM t WHERE s IS NULL`,
		`SELECT k FROM t WHERE d IS NOT NULL`,
		`SELECT k FROM t WHERE n = NULL`, // NULL literal: always false
		`SELECT k FROM t WHERE s = 3`,    // incomparable kinds, = : never
		`SELECT k FROM t WHERE s <> 3`,   // incomparable kinds, <> : non-NULL pairs
		`SELECT 42, 'lit', k FROM t WHERE b = b`,
		`SELECT CONCAT(k, ' says ', s, '!') AS msg FROM t`,
		`SELECT CONCAT(d, '/', f, '/', b) AS msg FROM t WHERE n < 6`,
		`SELECT DISTINCT k FROM t`,
		`SELECT DISTINCT CONCAT(k, '-', b) AS tag FROM t`,
		`SELECT k FROM t WHERE n > 1 LIMIT 7`,
		`SELECT k FROM t LIMIT 0`,
		`SELECT DISTINCT k FROM t LIMIT 3`,
	} {
		requireBatchPlan(t, sql, true, batchTestTable("t"))
		runBothPaths(t, sql, tb)
	}
}

func TestBatchJoinShapesMatchRowPath(t *testing.T) {
	tb := batchTestTable("t")
	for _, sql := range []string{
		`SELECT b1.k, b2.n FROM t b1, t b2 WHERE b1.k = b2.k`,
		`SELECT b1.n, b2.n FROM t b1, t b2 WHERE b1.k = b2.k AND b1.n <> b2.n`,
		`SELECT b1.n FROM t b1, t b2 WHERE b1.k = b2.k AND b1.n > b2.n AND b1.f <= b2.f`,
		`SELECT b1.s, b2.s FROM t b1, t b2 WHERE b1.s = b2.s AND b1.n < b2.n`,   // string key
		`SELECT b1.k FROM t b1, t b2 WHERE b1.b = b2.b AND b1.n > b2.n LIMIT 9`, // bool key
		`SELECT b1.k FROM t b1, t b2 WHERE b1.d = b2.d AND b1.n <> b2.n`,        // date key
		`SELECT b1.k FROM t b1, t b2 WHERE b1.k = b2.k AND b1.n > 2 AND b2.n < 5`,
		`SELECT b1.k FROM t b1, t b2 WHERE b1.k = b2.k AND b1.s IS NOT NULL AND b2.f > 1`,
		`SELECT CONCAT(b1.k, ' beats ', b2.s) AS txt FROM t b1, t b2 WHERE b1.k = b2.k AND b1.n > b2.n`,
		`SELECT DISTINCT CONCAT(b1.k, ':', b2.b) AS txt FROM t b1, t b2 WHERE b1.k = b2.k`,
		`SELECT DISTINCT b1.k FROM t b1, t b2 WHERE b1.k = b2.k AND b1.n <> b2.n LIMIT 4`,
		`SELECT b1.f, b2.d FROM t b1, t b2 WHERE b1.k = b2.k AND b1.f < b2.n`, // mixed numeric cmp
	} {
		requireBatchPlan(t, sql, true, batchTestTable("t"))
		runBothPaths(t, sql, tb)
	}
}

func TestBatchCompilerFallsBackOutsideProvenSubset(t *testing.T) {
	tb := batchTestTable("t")
	for _, sql := range []string{
		`SELECT k FROM t ORDER BY k`,                                                 // ORDER BY
		`SELECT COUNT(*) FROM t`,                                                     // aggregate
		`SELECT k + 1 FROM t`,                                                        // arithmetic projection
		`SELECT k FROM t WHERE n + 1 > 2`,                                            // arithmetic predicate
		`SELECT k FROM t WHERE s > 3`,                                                // order across incomparable kinds errors on the row path
		`SELECT k FROM t WHERE n > 1 OR n < 4`,                                       // disjunction
		`SELECT b1.k FROM t b1, t b2 WHERE b1.f = b2.f`,                              // float join key
		`SELECT b1.k FROM t b1, t b2 WHERE b1.k = b2.k AND b1.n = b2.n`,              // multi-column key
		`SELECT b1.k FROM t b1, t b2 WHERE b1.n > b2.n`,                              // no equi key
		`SELECT b1.k FROM t b1, t b2 WHERE b1.k = b2.k AND CONCAT(b1.s, b2.s) = 'x'`, // residual
	} {
		requireBatchPlan(t, sql, false, batchTestTable("t"))
		// The fallback still answers; diff it for good measure.
		runBothPaths(t, sql, tb)
	}
}

// TestBatchDeclinesNonVectorizableTable splices a schema-violating cell in,
// which must push execution onto the row path at run time (the plan still
// compiles a batch program — the table's shape is only known when vectors
// build).
func TestBatchDeclinesNonVectorizableTable(t *testing.T) {
	tb := relation.NewTable("t", relation.Schema{{Name: "a", Kind: relation.KindInt}})
	tb.Rows = append(tb.Rows, relation.Row{relation.Int(1)}, relation.Row{relation.String("x")})
	e := NewEngine()
	e.Register(tb)
	before := met.batchRows.Value()
	res, err := e.Query(`SELECT a FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", res.NumRows())
	}
	if met.batchRows.Value() != before {
		t.Fatal("batch path emitted rows for a non-vectorizable table")
	}
}

// TestRegisterEvictsVectors is the stale-vector regression: re-registering
// a table must never serve results computed from the previous rows.
func TestRegisterEvictsVectors(t *testing.T) {
	mk := func(vals ...int64) *relation.Table {
		tb := relation.NewTable("t", relation.Schema{{Name: "a", Kind: relation.KindInt}})
		for _, v := range vals {
			tb.Rows = append(tb.Rows, relation.Row{relation.Int(v)})
		}
		return tb
	}
	e := NewEngine()
	e.Register(mk(1, 2, 3))
	const sql = `SELECT a FROM t WHERE a > 1`
	res, err := e.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 {
		t.Fatalf("first run: rows = %d, want 2", res.NumRows())
	}

	builds := met.vectorBuilds.Value()
	e.Register(mk(5, 6, 7, 8))
	res, err = e.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 4 {
		t.Fatalf("after re-register: rows = %d, want 4 (stale vectors served)", res.NumRows())
	}
	if met.vectorBuilds.Value() != builds+1 {
		t.Fatalf("vector builds delta = %d, want 1 (rebuild for new registration)", met.vectorBuilds.Value()-builds)
	}

	// Same-name re-registration through a fresh table pointer must also
	// self-heal when the cache entry is reached without an invalidate.
	e.vectors.byTable["t"] = &tableVectors{table: mk(9)} // simulate a stale entry
	tNew, _ := e.Table("t")
	tv := e.vectors.forTable("t", tNew)
	if tv.table != tNew {
		t.Fatal("forTable returned a vector set for a different table identity")
	}
}

func TestBatchMetricsAccounting(t *testing.T) {
	e := NewEngine()
	e.Register(batchTestTable("t"))
	scans := met.batchScans.Value()
	rows := met.batchRows.Value()
	sel := met.batchSelectivity.Count()

	res, err := e.Query(`SELECT k FROM t WHERE n > 3`)
	if err != nil {
		t.Fatal(err)
	}
	if d := met.batchScans.Value() - scans; d != 1 {
		t.Fatalf("batch_scans delta = %d, want 1", d)
	}
	if d := met.batchRows.Value() - rows; d != int64(res.NumRows()) {
		t.Fatalf("batch_rows delta = %d, want %d", d, res.NumRows())
	}
	if d := met.batchSelectivity.Count() - sel; d != 1 {
		t.Fatalf("batch_selectivity observations delta = %d, want 1", d)
	}
}

// TestBatchFormattedCacheMatchesFormat pins the per-column formatted cache
// to Value.Format for every kind, NULLs included.
func TestBatchFormattedCacheMatchesFormat(t *testing.T) {
	tb := batchTestTable("t")
	e := NewEngine()
	e.Register(tb)
	tv := e.vectors.forTable("t", tb)
	cs := tv.columns()
	if cs == nil {
		t.Fatal("table not vectorizable")
	}
	for col := range tb.Schema {
		fe := tv.formatted(col, cs)
		for i, row := range tb.Rows {
			if got, want := string(fe.slice(int32(i))), row[col].Format(); got != want {
				t.Fatalf("col %d row %d: cached %q != Format %q", col, i, got, want)
			}
		}
	}
}
