package sqlengine

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/relation"
)

const basketCSV = `Player,Team,FG%,3FG%,fouls,apps
Carter,LA,56,47,4,5
Smith,SF,55,30,4,7
Carter,SF,50,51,3,3
`

func testEngine(t *testing.T) *Engine {
	t.Helper()
	tab, err := relation.ReadCSVString("D", basketCSV)
	if err != nil {
		t.Fatalf("load basket: %v", err)
	}
	e := NewEngine()
	e.Register(tab)
	return e
}

func TestPaperQueryQ1Evidence(t *testing.T) {
	e := testEngine(t)
	// The introduction's q1: pairs of players where FG% and 3FG% disagree.
	res, err := e.Query(`SELECT b1.Player, b1.Team, b2.Player, b2.Team,
	                            b1.FG%, b2.FG%, b1."3FG%", b2."3FG%"
	                     FROM D b1, D b2
	                     WHERE b1.Player <> b2.Player AND b1.Team <> b2.Team AND
	                           b1.FG% > b2.FG% AND b1."3FG%" < b2."3FG%"`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	// Carter/LA (56,47) vs Carter/SF (50,51): excluded, same Player.
	// Carter/LA (56,47) vs Smith/SF (55,30): FG% higher but 3FG% higher too -> excluded.
	// Smith/SF (55,30) vs Carter/LA: FG% lower -> excluded.
	// Smith/SF (55,30) vs Carter/SF: same Team -> excluded... wait, teams equal.
	// Carter/SF (50,51) vs Smith/SF: same team.
	// Smith/SF vs Carter/LA (55>56 false). Carter/SF vs Carter/LA same player.
	// Expected: no contradictory pair except... check Carter/LA vs Smith/SF is
	// uniform; the only contradictory pair in Table I is none across teams.
	for _, row := range res.Rows {
		p1, t1 := row[0].AsString(), row[1].AsString()
		p2, t2 := row[2].AsString(), row[3].AsString()
		if p1 == p2 || t1 == t2 {
			t.Errorf("join predicate violated: %v", row)
		}
		if row[4].AsInt() <= row[5].AsInt() || row[6].AsInt() >= row[7].AsInt() {
			t.Errorf("comparison predicates violated: %v", row)
		}
	}
}

func TestPaperQueryQ2RowAmbiguity(t *testing.T) {
	e := testEngine(t)
	// q2: same player, different fouls -> contradictory row-ambiguous evidence.
	res, err := e.Query(`SELECT b1.Player, b1.fouls
	                     FROM D b1, D b2
	                     WHERE b1.Player = b2.Player AND b1.fouls <> b2.fouls`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2 (Carter 4 and Carter 3)", res.NumRows())
	}
	got := map[string]bool{}
	for _, row := range res.Rows {
		got[row[0].AsString()+"/"+row[1].Format()] = true
	}
	if !got["Carter/4"] || !got["Carter/3"] {
		t.Errorf("rows = %v", got)
	}
}

func TestConcatTemplateQuery(t *testing.T) {
	e := testEngine(t)
	res, err := e.Query(`SELECT CONCAT(b1.Player, ' ', b1.Team, ' has higher shooting than ', b2.Player, ' ', b2.Team) AS text
	                     FROM D b1, D b2
	                     WHERE b1.Player <> b2.Player AND b1.Team <> b2.Team AND b1.FG% > b2.FG%`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	found := false
	for _, row := range res.Rows {
		if row[0].AsString() == "Carter LA has higher shooting than Smith SF" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected the paper's sentence; got %v", res)
	}
	if res.Schema[0].Name != "text" || res.Schema[0].Kind != relation.KindString {
		t.Errorf("result schema = %s", res.Schema)
	}
}

func TestSelectStarAndProjectionNames(t *testing.T) {
	e := testEngine(t)
	res, err := e.Query(`SELECT * FROM D`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.NumCols() != 6 || res.NumRows() != 3 {
		t.Errorf("shape = %dx%d", res.NumRows(), res.NumCols())
	}
	res, err = e.Query(`SELECT fouls + apps FROM D`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.Schema[0].Name != "col1" || res.Schema[0].Kind != relation.KindInt {
		t.Errorf("derived column = %+v", res.Schema[0])
	}
	if res.Cell(0, 0).AsInt() != 9 {
		t.Errorf("fouls+apps = %#v", res.Cell(0, 0))
	}
}

func TestWhereSingleTable(t *testing.T) {
	e := testEngine(t)
	res, err := e.Query(`SELECT Player FROM D WHERE fouls = 4 AND Team = 'SF'`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.NumRows() != 1 || res.Cell(0, 0).AsString() != "Smith" {
		t.Errorf("result = %v", res)
	}
}

func TestOrderByAndLimit(t *testing.T) {
	e := testEngine(t)
	res, err := e.Query(`SELECT Player, FG% FROM D ORDER BY FG% DESC LIMIT 2`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.NumRows() != 2 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	if res.Cell(0, 1).AsInt() != 56 || res.Cell(1, 1).AsInt() != 55 {
		t.Errorf("order = %v", res)
	}
}

func TestDistinct(t *testing.T) {
	e := testEngine(t)
	res, err := e.Query(`SELECT DISTINCT Player FROM D ORDER BY Player`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", res.NumRows())
	}
	if res.Cell(0, 0).AsString() != "Carter" || res.Cell(1, 0).AsString() != "Smith" {
		t.Errorf("distinct = %v", res)
	}
}

func TestIsNullFilter(t *testing.T) {
	tab, err := relation.ReadCSVString("n", "a,b\n1,x\n,y\n")
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine()
	e.Register(tab)
	res, err := e.Query(`SELECT b FROM n WHERE a IS NULL`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.NumRows() != 1 || res.Cell(0, 0).AsString() != "y" {
		t.Errorf("result = %v", res)
	}
	res, err = e.Query(`SELECT b FROM n WHERE a IS NOT NULL`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.NumRows() != 1 || res.Cell(0, 0).AsString() != "x" {
		t.Errorf("result = %v", res)
	}
}

func TestNullComparisonsAreFalse(t *testing.T) {
	tab, err := relation.ReadCSVString("n", "a\n1\n\n") // rows: 1, NULL
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine()
	e.Register(tab)
	for _, cond := range []string{"a = 1", "a <> 1", "a < 99", "a >= 0"} {
		res, err := e.Query(`SELECT a FROM n WHERE ` + cond)
		if err != nil {
			t.Fatalf("Query(%s): %v", cond, err)
		}
		for _, row := range res.Rows {
			if row[0].IsNull() {
				t.Errorf("NULL row passed predicate %q", cond)
			}
		}
	}
}

func TestArithmetic(t *testing.T) {
	e := testEngine(t)
	res, err := e.Query(`SELECT FG% - "3FG%", FG% / 2, fouls * 2 FROM D WHERE Player = 'Smith'`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.Cell(0, 0).AsInt() != 25 {
		t.Errorf("FG%% - 3FG%% = %#v", res.Cell(0, 0))
	}
	if res.Cell(0, 1).AsFloat() != 27.5 {
		t.Errorf("FG%% / 2 = %#v", res.Cell(0, 1))
	}
	if res.Cell(0, 2).AsInt() != 8 {
		t.Errorf("fouls * 2 = %#v", res.Cell(0, 2))
	}
}

func TestDivisionByZero(t *testing.T) {
	e := testEngine(t)
	if _, err := e.Query(`SELECT FG% / 0 FROM D`); err == nil {
		t.Error("expected division-by-zero error")
	}
}

func TestQueryErrors(t *testing.T) {
	e := testEngine(t)
	bad := []string{
		`SELECT x FROM nope`,
		`SELECT nope FROM D`,
		`SELECT b9.Player FROM D b1`,
		`SELECT Player FROM D b1, D b1`,
		`SELECT Player FROM D WHERE Player > fouls`,      // string vs int comparison
		`SELECT Player FROM D WHERE Player + 1 > 0`,      // arithmetic on string
		`SELECT Player FROM D WHERE fouls`,               // non-bool predicate
		`SELECT Player FROM D b1, D b2 WHERE Player = 1`, // ambiguous column
	}
	for _, src := range bad {
		if _, err := e.Query(src); err == nil {
			t.Errorf("Query(%q): expected error", src)
		}
	}
}

func TestUnqualifiedColumnSingleTable(t *testing.T) {
	e := testEngine(t)
	res, err := e.Query(`SELECT Player FROM D b1, D b2 WHERE b1.Team = b2.Team AND b1.fouls <> b2.fouls`)
	// "Player" is ambiguous across b1/b2 -> error.
	if err == nil {
		t.Errorf("expected ambiguity error, got %v", res)
	}
}

func TestHashJoinMatchesNestedLoop(t *testing.T) {
	// Random data; compare hash-join result (equi predicate) with the
	// equivalent manually-computed join.
	rng := rand.New(rand.NewSource(11))
	var b strings.Builder
	b.WriteString("k,v\n")
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&b, "%d,%d\n", rng.Intn(20), rng.Intn(50))
	}
	tab, err := relation.ReadCSVString("r", b.String())
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine()
	e.Register(tab)
	res, err := e.Query(`SELECT b1.k, b1.v, b2.v FROM r b1, r b2 WHERE b1.k = b2.k AND b1.v < b2.v`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	// Count the expected matches by brute force.
	want := 0
	for _, r1 := range tab.Rows {
		for _, r2 := range tab.Rows {
			if r1[0].Equal(r2[0]) && r1[1].AsInt() < r2[1].AsInt() {
				want++
			}
		}
	}
	if res.NumRows() != want {
		t.Errorf("hash join rows = %d, brute force = %d", res.NumRows(), want)
	}
}

func TestNullNeverEquiJoins(t *testing.T) {
	tab, err := relation.ReadCSVString("n", "k,v\n,1\n,2\nx,3\n")
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine()
	e.Register(tab)
	res, err := e.Query(`SELECT b1.v, b2.v FROM n b1, n b2 WHERE b1.k = b2.k`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	// Only the x row joins with itself.
	if res.NumRows() != 1 {
		t.Errorf("rows = %d, want 1 (NULL keys must not join)", res.NumRows())
	}
}

func TestQueryCount(t *testing.T) {
	e := testEngine(t)
	n, err := e.QueryCount(`SELECT Player FROM D WHERE fouls = 4`)
	if err != nil {
		t.Fatalf("QueryCount: %v", err)
	}
	if n != 2 {
		t.Errorf("count = %d, want 2", n)
	}
}

func TestOrderByAfterDistinct(t *testing.T) {
	e := testEngine(t)
	res, err := e.Query(`SELECT DISTINCT Team FROM D ORDER BY Team DESC`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.NumRows() != 2 || res.Cell(0, 0).AsString() != "SF" {
		t.Errorf("result = %v", res)
	}
}

// Property: for random predicates over a random table, the engine result
// always matches a brute-force evaluation of the same semantics.
func TestJoinEquivalenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ops := []string{"=", "<>", "<", ">", "<=", ">="}
	for trial := 0; trial < 25; trial++ {
		var b strings.Builder
		b.WriteString("a,b,c\n")
		rows := 1 + rng.Intn(40)
		for i := 0; i < rows; i++ {
			fmt.Fprintf(&b, "%d,%d,%d\n", rng.Intn(5), rng.Intn(5), rng.Intn(5))
		}
		tab, err := relation.ReadCSVString("t", b.String())
		if err != nil {
			t.Fatal(err)
		}
		e := NewEngine()
		e.Register(tab)
		op1 := ops[rng.Intn(len(ops))]
		op2 := ops[rng.Intn(len(ops))]
		src := fmt.Sprintf(`SELECT b1.a, b2.b FROM t b1, t b2 WHERE b1.a %s b2.a AND b1.b %s b2.c`, op1, op2)
		res, err := e.Query(src)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := 0
		for _, r1 := range tab.Rows {
			for _, r2 := range tab.Rows {
				ok1, _ := compareValues(op1, r1[0], r2[0])
				ok2, _ := compareValues(op2, r1[1], r2[2])
				if ok1 && ok2 {
					want++
				}
			}
		}
		if res.NumRows() != want {
			t.Errorf("trial %d (%s): rows = %d, want %d", trial, src, res.NumRows(), want)
		}
	}
}

func TestConcurrentQueries(t *testing.T) {
	// The engine documents safety for concurrent queries after
	// registration; hammer it from several goroutines.
	e := testEngine(t)
	queries := []string{
		`SELECT Player FROM D WHERE fouls = 4`,
		`SELECT b1.Player, b1.fouls FROM D b1, D b2 WHERE b1.Player = b2.Player AND b1.fouls <> b2.fouls`,
		`SELECT DISTINCT Team FROM D ORDER BY Team`,
		`SELECT Team, COUNT(*) FROM D GROUP BY Team`,
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := e.Query(queries[(g+i)%len(queries)]); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent query failed: %v", err)
	}
}

func TestUnaryMinusOnColumnExpression(t *testing.T) {
	e := testEngine(t)
	res, err := e.Query(`SELECT fouls FROM D WHERE fouls > -fouls`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.NumRows() != 3 {
		t.Errorf("rows = %d, want 3 (all fouls positive)", res.NumRows())
	}
}

func TestOrPredicate(t *testing.T) {
	e := testEngine(t)
	res, err := e.Query(`SELECT Player FROM D WHERE Team = 'LA' OR fouls = 3`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.NumRows() != 2 {
		t.Errorf("rows = %d, want 2", res.NumRows())
	}
}

func TestConcatEmptyAndNull(t *testing.T) {
	tab, err := relation.ReadCSVString("n", "a,b\nx,\n")
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine()
	e.Register(tab)
	res, err := e.Query(`SELECT CONCAT(a, '-', b) FROM n`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	// NULL renders as the empty string inside CONCAT.
	if got := res.Cell(0, 0).AsString(); got != "x-" {
		t.Errorf("CONCAT with NULL = %q, want x-", got)
	}
	res, err = e.Query(`SELECT CONCAT() FROM n`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if got := res.Cell(0, 0).AsString(); got != "" {
		t.Errorf("CONCAT() = %q, want empty", got)
	}
}

func TestLimitZero(t *testing.T) {
	e := testEngine(t)
	res, err := e.Query(`SELECT Player FROM D LIMIT 0`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.NumRows() != 0 {
		t.Errorf("rows = %d, want 0", res.NumRows())
	}
}

func TestLimitPushdownStopsJoinEarly(t *testing.T) {
	// A join whose full output would be large must return quickly with a
	// small LIMIT — and return exactly LIMIT rows.
	var b strings.Builder
	b.WriteString("k,v\n")
	for i := 0; i < 2000; i++ {
		fmt.Fprintf(&b, "%d,%d\n", i%5, i)
	}
	tab, err := relation.ReadCSVString("big", b.String())
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine()
	e.Register(tab)
	start := time.Now()
	res, err := e.Query(`SELECT b1.v, b2.v FROM big b1, big b2 WHERE b1.k = b2.k LIMIT 10`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.NumRows() != 10 {
		t.Errorf("rows = %d, want 10", res.NumRows())
	}
	if time.Since(start) > 2*time.Second {
		t.Errorf("LIMIT pushdown ineffective: took %s", time.Since(start))
	}
}
