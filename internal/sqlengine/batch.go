package sqlengine

import (
	"strings"

	"repro/internal/relation"
)

// Columnar batch executor. runBatch executes a compiled batchPlan over the
// lazily-built column vectors of the registered tables: scans narrow a
// selection index vector with typed per-conjunct loops, the join probe
// walks a typed single-column hash index in one pass, and CONCAT
// projections append into one shared byte buffer whose strings are carved
// out per flush block instead of allocated per row. Output rows are
// byte-identical to the row-at-a-time path (enforced by the differential
// suite); any shape the compiler did not admit never reaches this file.

// identitySel returns the selection vector [0, n).
func identitySel(n int) []int32 {
	s := make([]int32, n)
	for i := range s {
		s[i] = int32(i)
	}
	return s
}

// cellFloat widens a numeric cell to float64, mirroring Value.AsFloat.
func cellFloat(v *relation.ColVec, i int32) float64 {
	if v.Kind == relation.KindFloat {
		return v.F[i]
	}
	return float64(v.I[i])
}

// filter narrows sel in place to the rows satisfying the predicate,
// reusing sel's backing array. Loops are split by comparison mode so the
// hot path touches one typed payload slice with no Value boxing.
func (pr *vecPred) filter(cs *relation.ColumnSet, sel []int32) []int32 {
	out := sel[:0]
	v := &cs.Cols[pr.col]
	switch pr.mode {
	case predIsNull:
		for _, i := range sel {
			if v.Nulls.Get(int(i)) != pr.negate {
				out = append(out, i)
			}
		}
		return out
	case predLit:
		switch pr.cmp {
		case cmpNever:
			return out
		case cmpAlways:
			for _, i := range sel {
				if !v.Nulls.Get(int(i)) {
					out = append(out, i)
				}
			}
			return out
		case cmpInt:
			lit := pr.litI
			for _, i := range sel {
				if v.Nulls.Get(int(i)) {
					continue
				}
				x := v.I[i]
				if (x < lit && pr.lt) || (x > lit && pr.gt) || (x == lit && pr.eq) {
					out = append(out, i)
				}
			}
			return out
		case cmpFloat:
			lit := pr.litF
			for _, i := range sel {
				if v.Nulls.Get(int(i)) {
					continue
				}
				x := cellFloat(v, i)
				if (x < lit && pr.lt) || (x > lit && pr.gt) || (x == lit && pr.eq) {
					out = append(out, i)
				}
			}
			return out
		default: // cmpStr
			lit := pr.litS
			for _, i := range sel {
				if v.Nulls.Get(int(i)) {
					continue
				}
				x := v.S[i]
				if (x < lit && pr.lt) || (x > lit && pr.gt) || (x == lit && pr.eq) {
					out = append(out, i)
				}
			}
			return out
		}
	default: // predCol
		v2 := &cs.Cols[pr.col2]
		switch pr.cmp {
		case cmpNever:
			return out
		case cmpAlways:
			for _, i := range sel {
				if !v.Nulls.Get(int(i)) && !v2.Nulls.Get(int(i)) {
					out = append(out, i)
				}
			}
			return out
		case cmpInt:
			for _, i := range sel {
				if v.Nulls.Get(int(i)) || v2.Nulls.Get(int(i)) {
					continue
				}
				x, y := v.I[i], v2.I[i]
				if (x < y && pr.lt) || (x > y && pr.gt) || (x == y && pr.eq) {
					out = append(out, i)
				}
			}
			return out
		case cmpFloat:
			for _, i := range sel {
				if v.Nulls.Get(int(i)) || v2.Nulls.Get(int(i)) {
					continue
				}
				x, y := cellFloat(v, i), cellFloat(v2, i)
				if (x < y && pr.lt) || (x > y && pr.gt) || (x == y && pr.eq) {
					out = append(out, i)
				}
			}
			return out
		default: // cmpStr
			for _, i := range sel {
				if v.Nulls.Get(int(i)) || v2.Nulls.Get(int(i)) {
					continue
				}
				x, y := v.S[i], v2.S[i]
				if (x < y && pr.lt) || (x > y && pr.gt) || (x == y && pr.eq) {
					out = append(out, i)
				}
			}
			return out
		}
	}
}

// boundCmp is a vecCmp with its column vectors resolved, checked per
// candidate join pair.
type boundCmp struct {
	vecCmp
	lv, rv *relation.ColVec
	nulls  bool // either operand column holds NULLs
}

// match applies the comparison to the pair (li, ri). NULL operands never
// match, like compareValues.
func (c *boundCmp) match(li, ri int32) bool {
	if c.nulls && (c.lv.Nulls.Get(int(li)) || c.rv.Nulls.Get(int(ri))) {
		return false
	}
	switch c.cmp {
	case cmpNever:
		return false
	case cmpAlways:
		return true
	case cmpInt:
		x, y := c.lv.I[li], c.rv.I[ri]
		return (x < y && c.lt) || (x > y && c.gt) || (x == y && c.eq)
	case cmpFloat:
		x, y := cellFloat(c.lv, li), cellFloat(c.rv, ri)
		return (x < y && c.lt) || (x > y && c.gt) || (x == y && c.eq)
	default: // cmpStr
		x, y := c.lv.S[li], c.rv.S[ri]
		return (x < y && c.lt) || (x > y && c.gt) || (x == y && c.eq)
	}
}

// pendSlot is one CONCAT output cell waiting for its flush block's string.
type pendSlot struct {
	row, col   int32
	start, end int32
}

// concatCarver accumulates CONCAT sentences for many rows in one
// strings.Builder block and materializes them as substrings of the block
// string per flush: Builder.String returns its buffer without copying, so
// the per-row string allocation of the row path amortizes to one block
// allocation and each sentence's bytes are written exactly once.
type concatCarver struct {
	bb   strings.Builder
	pend []pendSlot
}

// concatFlushBytes bounds a carver block. Flushing at block granularity
// keeps peak buffer memory constant while leaving the per-row allocation
// share negligible.
const concatFlushBytes = 64 << 10

// flush materializes pending sentences into their output cells; unless
// final, it starts a fresh block.
func (c *concatCarver) flush(out []relation.Row, final bool) {
	if len(c.pend) == 0 {
		return
	}
	s := c.bb.String()
	for _, p := range c.pend {
		out[p.row][p.col] = relation.String(s[p.start:p.end])
	}
	c.pend = c.pend[:0]
	if !final {
		// The old buffer lives on as the carved block string; Reset detaches
		// it and Grow sizes the next block up front so row appends never
		// reallocate mid-block.
		c.bb.Reset()
		c.bb.Grow(concatFlushBytes + 256)
	}
}

// boundPart is one CONCAT argument with its formatted cache resolved:
// literal parts carry their pre-rendered bytes, column parts copy the
// cell's cached Format bytes (an empty range for NULL, matching Format's
// empty rendering), so the per-pair cost is a plain memcpy.
type boundPart struct {
	lit  []byte
	fmt  *fmtEntry // nil for literal parts
	side int
}

// batchEmitter materializes projected output rows for the batch executor,
// applying DISTINCT and LIMIT with the exact semantics of the row path's
// sinks.
type batchEmitter struct {
	projs  []batchProj
	bparts [][]boundPart          // per projection; nil for non-CONCAT
	cols   [2]*relation.ColumnSet // per side; scan uses side 0 only

	width int
	arena []relation.Value
	out   []relation.Row

	limit int // -1 when absent
	done  bool

	distinct bool
	seen     map[string]struct{}
	keyBuf   []byte
	rowBuf   []byte // DISTINCT CONCAT scratch (values materialize per row)
	drops    int

	carver concatCarver
}

func newBatchEmitter(p *plan, ltv, rtv *tableVectors, lcs, rcs *relation.ColumnSet) *batchEmitter {
	em := &batchEmitter{
		projs: p.batch.projs,
		width: len(p.batch.projs),
		limit: p.stmt.Limit,
	}
	em.cols[0], em.cols[1] = lcs, rcs
	if p.stmt.Distinct {
		em.distinct = true
		em.seen = map[string]struct{}{}
	}
	tvs := [2]*tableVectors{ltv, rtv}
	for i := range em.projs {
		pj := &em.projs[i]
		if pj.mode != projConcat {
			continue
		}
		if em.bparts == nil {
			em.bparts = make([][]boundPart, len(em.projs))
			if !em.distinct {
				em.carver.bb.Grow(concatFlushBytes + 256)
			}
		}
		bound := make([]boundPart, len(pj.parts))
		for j, part := range pj.parts {
			if part.isLit {
				bound[j] = boundPart{lit: part.lit}
				continue
			}
			bound[j] = boundPart{
				fmt:  tvs[part.side].formatted(part.col, em.cols[part.side]),
				side: part.side,
			}
		}
		em.bparts[i] = bound
	}
	return em
}

// newRow carves one output row from the arena, like the row path's
// projection arena.
func (em *batchEmitter) newRow() relation.Row {
	const chunkRows = 1024
	if len(em.arena) < em.width {
		em.arena = make([]relation.Value, chunkRows*em.width)
	}
	pr := relation.Row(em.arena[:em.width:em.width])
	em.arena = em.arena[em.width:]
	return pr
}

// reserve sizes the output slice and value arena for exactly n rows, known
// from the counting pre-pass: one allocation each instead of doubling
// growth, so no grow-copy traffic and no re-zeroing of abandoned arrays.
func (em *batchEmitter) reserve(n int) {
	if n <= 0 || len(em.out) > 0 {
		return
	}
	em.out = make([]relation.Row, 0, n)
	if em.width > 0 {
		em.arena = make([]relation.Value, n*em.width)
	}
}

// emit projects the pair (li, ri) — ri is ignored for scans — into an
// output row. It sets done when LIMIT is satisfied.
func (em *batchEmitter) emit(li, ri int32) {
	idx := [2]int32{li, ri}
	pr := em.newRow()
	rowIdx := int32(len(em.out))
	for i := range em.projs {
		pj := &em.projs[i]
		switch pj.mode {
		case projCol:
			pr[i] = em.cols[pj.side].Cols[pj.col].Value(int(idx[pj.side]))
		case projLit:
			pr[i] = pj.lit
		default: // projConcat
			if em.distinct {
				// DISTINCT needs the value before the dedup decision, so
				// materialize per row (exactly the row path's cost) without
				// touching the carver block.
				em.rowBuf = em.rowBuf[:0]
				for _, part := range em.bparts[i] {
					if part.fmt == nil {
						em.rowBuf = append(em.rowBuf, part.lit...)
					} else {
						em.rowBuf = append(em.rowBuf, part.fmt.slice(idx[part.side])...)
					}
				}
				pr[i] = relation.String(string(em.rowBuf))
				continue
			}
			start := int32(em.carver.bb.Len())
			for _, part := range em.bparts[i] {
				if part.fmt == nil {
					em.carver.bb.Write(part.lit)
				} else {
					em.carver.bb.Write(part.fmt.slice(idx[part.side]))
				}
			}
			em.carver.pend = append(em.carver.pend, pendSlot{
				row: rowIdx, col: int32(i),
				start: start, end: int32(em.carver.bb.Len()),
			})
		}
	}
	if em.distinct {
		em.keyBuf = em.keyBuf[:0]
		for _, v := range pr {
			em.keyBuf = v.AppendHashKey(em.keyBuf)
			em.keyBuf = append(em.keyBuf, 0x1f)
		}
		if _, dup := em.seen[string(em.keyBuf)]; dup {
			em.drops++
			return
		}
		em.seen[string(em.keyBuf)] = struct{}{}
	}
	em.out = append(em.out, pr)
	if em.limit >= 0 && len(em.out) >= em.limit {
		em.done = true
	}
	if em.carver.bb.Len() >= concatFlushBytes {
		em.carver.flush(em.out, false)
	}
}

// finish flushes pending CONCAT blocks and applies the final LIMIT
// truncation, mirroring the row path.
func (em *batchEmitter) finish() []relation.Row {
	em.carver.flush(em.out, true)
	met.distinctDrops.Add(int64(em.drops))
	if em.limit >= 0 && len(em.out) > em.limit {
		em.out = em.out[:em.limit]
	}
	return em.out
}

// runBatch executes a plan on the columnar path. ok is false when the
// registered tables are not vectorizable (cells violating the schema
// kind), in which case the caller falls back to the row path.
func (e *Engine) runBatch(p *plan) (*relation.Table, bool) {
	bp := p.batch
	ltv := e.vectors.forTable(p.tableKeys[0], p.sources[0])
	lcs := ltv.columns()
	if lcs == nil {
		return nil, false
	}
	var rtv *tableVectors
	var rcs *relation.ColumnSet
	if bp.join {
		rtv = e.vectors.forTable(p.tableKeys[1], p.sources[1])
		if rcs = rtv.columns(); rcs == nil {
			return nil, false
		}
	}
	met.batchScans.Inc()
	em := newBatchEmitter(p, ltv, rtv, lcs, rcs)

	if !bp.join {
		met.rowsScanned.Add(int64(lcs.Len))
		sel := identitySel(lcs.Len)
		for i := range bp.scanPreds {
			if len(sel) == 0 {
				break
			}
			sel = bp.scanPreds[i].filter(lcs, sel)
		}
		observeSelectivity(lcs.Len, len(sel))
		n := len(sel)
		if em.limit >= 0 && em.limit < n {
			n = em.limit
		}
		em.reserve(n)
		for _, i := range sel {
			em.emit(i, 0)
			if em.done {
				break
			}
		}
	} else {
		met.rowsScanned.Add(int64(lcs.Len + rcs.Len))
		// A nil selection means "all rows": with no pushed-down predicates
		// the probe iterates the table directly, skipping the identity
		// vector build.
		var leftSel []int32
		if len(bp.leftPreds) > 0 {
			leftSel = identitySel(lcs.Len)
			for i := range bp.leftPreds {
				leftSel = bp.leftPreds[i].filter(lcs, leftSel)
			}
			observeSelectivity(lcs.Len, len(leftSel))
		} else {
			observeSelectivity(lcs.Len, lcs.Len)
		}
		var rightBits relation.Bitmap
		if len(bp.rightPreds) > 0 {
			rsel := identitySel(rcs.Len)
			for i := range bp.rightPreds {
				rsel = bp.rightPreds[i].filter(rcs, rsel)
			}
			observeSelectivity(rcs.Len, len(rsel))
			rightBits = relation.NewBitmap(rcs.Len)
			for _, i := range rsel {
				rightBits.Set(int(i))
			}
		}
		cmps := make([]boundCmp, len(bp.cmps))
		for i, c := range bp.cmps {
			lv, rv := &lcs.Cols[c.li], &rcs.Cols[c.ri]
			cmps[i] = boundCmp{vecCmp: c, lv: lv, rv: rv, nulls: lv.HasNulls || rv.HasNulls}
		}
		// The index resolves once (one build or one hit per query), shared
		// by both probe passes.
		var intIdx map[int64][]int32
		var strIdx map[string][]int32
		if bp.keyKind == relation.KindString {
			strIdx = rtv.strIndex(bp.keyR, rcs)
		} else {
			intIdx = rtv.intIndex(bp.keyR, rcs)
		}
		// Counting pre-pass: the probe runs twice, first tallying matches so
		// the emitter allocates its output exactly. The second pass is pure
		// typed compares over cached buckets — far cheaper than the growth
		// garbage it avoids.
		count, limit := 0, em.limit
		probeBatch(bp, lcs, intIdx, strIdx, leftSel, rightBits, cmps, func(li, ri int32) bool {
			count++
			return limit < 0 || count < limit
		})
		em.reserve(count)
		probeBatch(bp, lcs, intIdx, strIdx, leftSel, rightBits, cmps, func(li, ri int32) bool {
			em.emit(li, ri)
			return !em.done
		})
	}

	out := em.finish()
	met.batchRows.Add(int64(len(out)))
	return finishResult(p, out), true
}

// forSel applies f to each selected row index, or to every row in [0, n)
// when sel is nil ("all rows"). f returning false stops the walk.
func forSel(sel []int32, n int, f func(int32) bool) {
	if sel == nil {
		for i := 0; i < n; i++ {
			if !f(int32(i)) {
				return
			}
		}
		return
	}
	for _, i := range sel {
		if !f(i) {
			return
		}
	}
}

// probeBatch drives probe-side rows through the typed hash index in one
// pass: per selected left row one map lookup, then candidate right rows
// filtered by the right-side selection bitmap and the typed cross-side
// comparisons. Consecutive probe rows sharing a key reuse the previous
// bucket without a lookup — self-joins over grouped keys probe mostly
// sorted runs. Emission order — left rows ascending, bucket rows in table
// order — matches the row path's hash join exactly.
func probeBatch(bp *batchPlan, lcs *relation.ColumnSet, intIdx map[int64][]int32,
	strIdx map[string][]int32, leftSel []int32, rightBits relation.Bitmap,
	cmps []boundCmp, visit func(li, ri int32) bool) {
	keyVec := &lcs.Cols[bp.keyL]
	keyNulls := keyVec.HasNulls
	probe := func(bucket []int32, li int32) bool {
		for _, ri := range bucket {
			if rightBits != nil && !rightBits.Get(int(ri)) {
				continue
			}
			ok := true
			for i := range cmps {
				if !cmps[i].match(li, ri) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			if !visit(li, ri) {
				return false
			}
		}
		return true
	}
	if bp.keyKind == relation.KindString {
		idx := strIdx
		var lastKey string
		var lastBucket []int32
		haveLast := false
		forSel(leftSel, lcs.Len, func(li int32) bool {
			if keyNulls && keyVec.Nulls.Get(int(li)) {
				return true
			}
			if k := keyVec.S[li]; !haveLast || k != lastKey {
				lastBucket, lastKey, haveLast = idx[k], k, true
			}
			return probe(lastBucket, li)
		})
		return
	}
	idx := intIdx
	var lastKey int64
	var lastBucket []int32
	haveLast := false
	forSel(leftSel, lcs.Len, func(li int32) bool {
		if keyNulls && keyVec.Nulls.Get(int(li)) {
			return true
		}
		if k := keyVec.I[li]; !haveLast || k != lastKey {
			lastBucket, lastKey, haveLast = idx[k], k, true
		}
		return probe(lastBucket, li)
	})
}

// observeSelectivity records what fraction of a side's rows survived its
// selection program, in percent.
func observeSelectivity(total, selected int) {
	if total > 0 {
		met.batchSelectivity.Observe(int64(selected * 100 / total))
	}
}
