package sqlengine

import (
	"testing"
	"testing/quick"
)

func TestLexBasics(t *testing.T) {
	toks, err := lexAll(`SELECT b1."FG%", 'it''s' FROM D b1 WHERE x <> 3.5`)
	if err != nil {
		t.Fatalf("lexAll: %v", err)
	}
	kinds := []tokenKind{
		tokKeyword, tokIdent, tokDot, tokIdent, tokComma, tokString,
		tokKeyword, tokIdent, tokIdent, tokKeyword, tokIdent, tokOp, tokNumber, tokEOF,
	}
	if len(toks) != len(kinds) {
		t.Fatalf("token count = %d, want %d: %+v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Errorf("token %d kind = %d, want %d (%q)", i, toks[i].kind, k, toks[i].text)
		}
	}
	if toks[3].text != "FG%" {
		t.Errorf("quoted ident = %q, want FG%%", toks[3].text)
	}
	if toks[5].text != "it's" {
		t.Errorf("string literal = %q, want it's", toks[5].text)
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := lexAll(`= <> != < > <= >= + - * /`)
	if err != nil {
		t.Fatalf("lexAll: %v", err)
	}
	want := []string{"=", "<>", "!=", "<", ">", "<=", ">=", "+", "-", "*", "/"}
	for i, w := range want {
		if toks[i].text != w {
			t.Errorf("op %d = %q, want %q", i, toks[i].text, w)
		}
	}
}

func TestLexIdentWithPercent(t *testing.T) {
	toks, err := lexAll(`fouls FG% apps3`)
	if err != nil {
		t.Fatalf("lexAll: %v", err)
	}
	if toks[1].text != "FG%" || toks[1].kind != tokIdent {
		t.Errorf("FG%% lexed as %q kind %d", toks[1].text, toks[1].kind)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", `"unterminated`, "a ! b", "a ; b"} {
		if _, err := lexAll(src); err == nil {
			t.Errorf("lexAll(%q): expected error", src)
		}
	}
}

func TestQuoteIdent(t *testing.T) {
	cases := map[string]string{
		"Player":         "Player",
		"FG%":            "FG%",
		"3FG%":           `"3FG%"`,
		"a b":            `"a b"`,
		"select":         `"select"`,
		"CONCAT":         `"CONCAT"`,
		`we"ird`:         `"we""ird"`,
		"":               `""`,
		"hours-per-week": `"hours-per-week"`,
	}
	for in, want := range cases {
		if got := QuoteIdent(in); got != want {
			t.Errorf("QuoteIdent(%q) = %q, want %q", in, got, want)
		}
	}
}

// Property: QuoteIdent always lexes back to a single identifier token with
// the original text.
func TestQuoteIdentRoundtripProperty(t *testing.T) {
	f := func(s string) bool {
		toks, err := lexAll(QuoteIdent(s))
		if err != nil {
			return false
		}
		return len(toks) == 2 && toks[0].kind == tokIdent && toks[0].text == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: QuoteString round-trips arbitrary strings through the lexer.
func TestQuoteStringRoundtripProperty(t *testing.T) {
	f := func(s string) bool {
		toks, err := lexAll(QuoteString(s))
		if err != nil {
			return false
		}
		return len(toks) == 2 && toks[0].kind == tokString && toks[0].text == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
