package sqlengine

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/relation"
)

// seqTable builds a table whose single data column carries its row index,
// so any query result can be checked to be an exact prefix 0..n-1 of the
// append sequence.
func seqTable(t *testing.T, name string, rows int) *relation.Table {
	t.Helper()
	tab := relation.NewTable(name, relation.Schema{
		{Name: "seq", Kind: relation.KindInt},
	})
	for i := 0; i < rows; i++ {
		tab.MustAppend(relation.Row{relation.Int(int64(i))})
	}
	return tab
}

func seqRows(from, to int) []relation.Row {
	rows := make([]relation.Row, 0, to-from)
	for i := from; i < to; i++ {
		rows = append(rows, relation.Row{relation.Int(int64(i))})
	}
	return rows
}

func TestEngineAppend(t *testing.T) {
	e := NewEngine()
	base := seqTable(t, "S", 3)
	e.Register(base)

	if _, err := e.Append("nosuch", seqRows(0, 1)); err == nil {
		t.Fatal("append to an unregistered table succeeded, want error")
	}

	ext, err := e.Append("S", seqRows(3, 5))
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if ext.NumRows() != 5 {
		t.Fatalf("extended table has %d rows, want 5", ext.NumRows())
	}
	// Copy-on-write: the registered base table must be untouched.
	if base.NumRows() != 3 {
		t.Fatalf("Append mutated the old snapshot: base has %d rows, want 3", base.NumRows())
	}
	// The engine's current snapshot serves the extended table.
	cur, ok := e.Table("S")
	if !ok || cur.NumRows() != 5 {
		t.Fatalf("engine snapshot has %d rows, want 5", cur.NumRows())
	}
	res, err := e.Query("SELECT seq FROM S")
	if err != nil {
		t.Fatalf("query after append: %v", err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("query returned %d rows, want 5", len(res.Rows))
	}
	// Table names resolve case-insensitively on the append path too.
	if _, err := e.Append("s", seqRows(5, 6)); err != nil {
		t.Fatalf("case-insensitive append: %v", err)
	}
}

// TestEngineSwap covers the compute-then-publish half of an append: Swap
// installs a pre-extended table only when the caller's view of the
// registration is still current, and refuses stale or unregistered swaps
// without touching engine state.
func TestEngineSwap(t *testing.T) {
	e := NewEngine()
	base := seqTable(t, "S", 3)
	e.Register(base)

	ext, err := base.Extend(seqRows(3, 5))
	if err != nil {
		t.Fatalf("Extend: %v", err)
	}
	if err := e.Swap(base, ext); err != nil {
		t.Fatalf("Swap: %v", err)
	}
	cur, ok := e.Table("S")
	if !ok || cur != ext {
		t.Fatal("Swap did not publish the extended table")
	}
	res, err := e.Query("SELECT seq FROM S")
	if err != nil {
		t.Fatalf("query after swap: %v", err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("query returned %d rows, want 5", len(res.Rows))
	}

	// A swap against a stale prev must fail and leave the registration as is.
	ext2, err := base.Extend(seqRows(3, 6))
	if err != nil {
		t.Fatalf("Extend: %v", err)
	}
	if err := e.Swap(base, ext2); err == nil {
		t.Fatal("Swap accepted a stale prev, want error")
	}
	if cur, _ := e.Table("S"); cur != ext {
		t.Fatal("failed Swap changed the registration")
	}

	// Swapping a name that was never registered must fail.
	other := seqTable(t, "nosuch", 1)
	if err := e.Swap(other, other); err == nil {
		t.Fatal("Swap of an unregistered table succeeded, want error")
	}
}

// TestStalePlanNeverServesPreAppendRows pins cache invalidation on the
// append path: a plan raced back into the cache after an Append must be
// rebuilt against the extended snapshot, not serve the shorter table.
func TestStalePlanNeverServesPreAppendRows(t *testing.T) {
	e := NewEngine()
	e.Register(seqTable(t, "S", 3))

	const q = "SELECT seq FROM S"
	if _, err := e.Query(q); err != nil {
		t.Fatalf("warm query: %v", err)
	}
	stale, ok := e.plans.get(q)
	if !ok {
		t.Fatal("plan not cached after first query")
	}
	if _, err := e.Append("S", seqRows(3, 6)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	e.plans.put(q, stale)

	res, err := e.Query(q)
	if err != nil {
		t.Fatalf("query after stale put: %v", err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("stale plan served %d rows, want the 6 post-append rows", len(res.Rows))
	}
}

// TestConcurrentAppendQueryRace hammers one engine with appends racing live
// query traffic. Under -race it proves the append path is data-race free
// with concurrent readers; on any build it asserts the snapshot contract:
// every query observes an exact prefix of the append sequence — never a
// torn suffix, never rows out of order, never fewer rows than already
// observed going in.
func TestConcurrentAppendQueryRace(t *testing.T) {
	e := NewEngine()
	const initial = 8
	e.Register(seqTable(t, "X", initial))
	e.Register(seqTable(t, "Y", initial))

	const (
		appends = 200
		perStep = 2
		readers = 4
		queries = 200
	)
	final := initial + appends*perStep

	var wg sync.WaitGroup
	errs := make(chan error, readers+2)

	// One writer per table (appends to a single table are serialized by the
	// ingest path); each append publishes the next stamped rows.
	for _, name := range []string{"X", "Y"} {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			for n := initial; n < final; n += perStep {
				if _, err := e.Append(name, seqRows(n, n+perStep)); err != nil {
					errs <- fmt.Errorf("append %s: %w", name, err)
					return
				}
			}
		}(name)
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			lastLen := 0
			for i := 0; i < queries; i++ {
				name := "X"
				if (r+i)%2 == 1 {
					name = "Y"
				}
				res, err := e.Query("SELECT seq FROM " + name)
				if err != nil {
					errs <- err
					return
				}
				// Prefix invariant: n rows means exactly the stamps 0..n-1 in
				// append order.
				if len(res.Rows) < initial || len(res.Rows) > final {
					errs <- fmt.Errorf("result has %d rows, want between %d and %d", len(res.Rows), initial, final)
					return
				}
				for k, row := range res.Rows {
					if got := row[0].AsInt(); got != int64(k) {
						errs <- fmt.Errorf("row %d carries stamp %d: not a prefix of the append sequence", k, got)
						return
					}
				}
				// Counting shares prepare/plan-cache and must agree with the
				// same snapshot discipline.
				n, err := e.QueryCount("SELECT seq FROM " + name + " WHERE seq >= 0")
				if err != nil {
					errs <- err
					return
				}
				if n < len(res.Rows) {
					errs <- fmt.Errorf("count %d went backwards from the %d rows just scanned", n, len(res.Rows))
					return
				}
				if r == 0 && name == "X" {
					// A single reader thread's view of one table must be
					// monotone: snapshots never lose appended rows.
					if len(res.Rows) < lastLen {
						errs <- fmt.Errorf("snapshot shrank from %d to %d rows", lastLen, len(res.Rows))
						return
					}
					lastLen = len(res.Rows)
				}
			}
		}(r)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// After the dust settles both tables hold the full sequence.
	for _, name := range []string{"X", "Y"} {
		cur, ok := e.Table(name)
		if !ok || cur.NumRows() != final {
			t.Fatalf("%s has %d rows after the run, want %d", name, cur.NumRows(), final)
		}
	}
}
