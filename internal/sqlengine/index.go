package sqlengine

import (
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/relation"
)

// indexCache shares join indexes across the query stream: the hash build
// of an equi-join and the sorted order of a range join depend only on the
// immutable registered table, so thousands of structurally identical
// a-queries reuse one build instead of paying it per statement.
type indexCache struct {
	mu      sync.Mutex
	byTable map[string]*tableIndexes
}

// newIndexCache returns an empty cache.
func newIndexCache() *indexCache {
	return &indexCache{byTable: map[string]*tableIndexes{}}
}

// forTable returns the index set for the named registration. A stale
// entry — the registered table changed identity since it was created — is
// replaced, so the cache self-heals even without an explicit invalidate.
func (c *indexCache) forTable(name string, t *relation.Table) *tableIndexes {
	c.mu.Lock()
	defer c.mu.Unlock()
	ti := c.byTable[name]
	if ti == nil || ti.table != t {
		ti = &tableIndexes{
			table:  t,
			hash:   map[string]*hashIndexEntry{},
			sorted: map[int]*sortedIndexEntry{},
		}
		c.byTable[name] = ti
	}
	return ti
}

// invalidate drops the cached indexes for one registration name.
func (c *indexCache) invalidate(name string) {
	c.mu.Lock()
	delete(c.byTable, name)
	c.mu.Unlock()
}

// tableIndexes lazily materializes the indexes of one registered table.
// Each index builds exactly once under its sync.Once — concurrent queries
// needing the same (table, column set) share a single build and read the
// result without locks, since it is immutable afterwards.
type tableIndexes struct {
	table  *relation.Table
	mu     sync.Mutex
	hash   map[string]*hashIndexEntry // keyed by colsKey of the column subset
	sorted map[int]*sortedIndexEntry  // keyed by column index
}

// hashIndexEntry is one lazily-built equi-join hash index.
type hashIndexEntry struct {
	once sync.Once
	rows map[string][]relation.Row
}

// sortedIndexEntry is one lazily-built per-column sorted index.
type sortedIndexEntry struct {
	once sync.Once
	pos  []int
}

// colsKey renders a column subset as a cache key.
func colsKey(cols []int) string {
	var b strings.Builder
	for i, c := range cols {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(c))
	}
	return b.String()
}

// hashIndex returns the equi-join hash index over the column subset,
// building it on first use.
func (ti *tableIndexes) hashIndex(cols []int) map[string][]relation.Row {
	key := colsKey(cols)
	ti.mu.Lock()
	entry := ti.hash[key]
	if entry == nil {
		entry = &hashIndexEntry{}
		ti.hash[key] = entry
	}
	ti.mu.Unlock()
	built := false
	entry.once.Do(func() {
		built = true
		met.indexBuilds.Inc()
		entry.rows = buildHashIndex(ti.table.Rows, cols)
	})
	if !built {
		met.indexHits.Inc()
	}
	return entry.rows
}

// buildHashIndex groups rows by the HashKey tuple of the given columns,
// preserving row order within each bucket. Rows with a NULL key cell are
// left out: NULL never equi-joins.
func buildHashIndex(rows []relation.Row, cols []int) map[string][]relation.Row {
	index := make(map[string][]relation.Row, len(rows))
	var key []byte // reused scratch; the key materializes once on insert
	for _, r := range rows {
		key = key[:0]
		skip := false
		for _, ci := range cols {
			if r[ci].IsNull() {
				skip = true
				break
			}
			key = r[ci].AppendHashKey(key)
			key = append(key, 0x1f)
		}
		if skip {
			continue
		}
		k := string(key)
		index[k] = append(index[k], r)
	}
	return index
}

// sortedIndex returns the table's row positions ordered ascending by the
// column — ties break by position, NULL cells are excluded (they compare
// false against everything) — building on first use.
func (ti *tableIndexes) sortedIndex(col int) []int {
	ti.mu.Lock()
	entry := ti.sorted[col]
	if entry == nil {
		entry = &sortedIndexEntry{}
		ti.sorted[col] = entry
	}
	ti.mu.Unlock()
	built := false
	entry.once.Do(func() {
		built = true
		met.indexBuilds.Inc()
		rows := ti.table.Rows
		pos := make([]int, 0, len(rows))
		for i, r := range rows {
			if !r[col].IsNull() {
				pos = append(pos, i)
			}
		}
		sort.Slice(pos, func(a, b int) bool {
			if c := orderCmp(rows[pos[a]][col], rows[pos[b]][col]); c != 0 {
				return c < 0
			}
			return pos[a] < pos[b]
		})
		entry.pos = pos
	})
	if !built {
		met.indexHits.Inc()
	}
	return entry.pos
}

// orderCmp is the sorted index's total order: Value.Compare with a
// formatted-string fallback for the (schema-violating) mismatched-kind
// edge, mirroring relation.Table.SortBy.
func orderCmp(a, b relation.Value) int {
	c, err := a.Compare(b)
	if err != nil {
		return strings.Compare(a.Format(), b.Format())
	}
	return c
}
