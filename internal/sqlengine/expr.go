package sqlengine

import (
	"fmt"
	"strings"

	"repro/internal/relation"
)

// binding maps column references to positions in the executor's combined
// row layout: the columns of FROM table 0, then the columns of FROM table 1.
type binding struct {
	aliases []string          // lowercased alias per FROM entry
	schemas []relation.Schema // schema per FROM entry
	offsets []int             // column offset of each FROM entry in the combined row
}

// resolve finds the combined-row index and kind for a column reference.
// Unqualified names must be unambiguous across the FROM entries.
func (b *binding) resolve(c *ColumnRef) (int, relation.Kind, error) {
	if c.Qualifier != "" {
		q := strings.ToLower(c.Qualifier)
		for i, a := range b.aliases {
			if a == q {
				j := b.schemas[i].Index(c.Name)
				if j < 0 {
					return 0, 0, fmt.Errorf("sqlengine: table %s has no column %q", c.Qualifier, c.Name)
				}
				return b.offsets[i] + j, b.schemas[i][j].Kind, nil
			}
		}
		return 0, 0, fmt.Errorf("sqlengine: unknown table alias %q", c.Qualifier)
	}
	found := -1
	var kind relation.Kind
	for i := range b.aliases {
		if j := b.schemas[i].Index(c.Name); j >= 0 {
			if found >= 0 {
				return 0, 0, fmt.Errorf("sqlengine: column %q is ambiguous across FROM tables", c.Name)
			}
			found = b.offsets[i] + j
			kind = b.schemas[i][j].Kind
		}
	}
	if found < 0 {
		return 0, 0, fmt.Errorf("sqlengine: unknown column %q", c.Name)
	}
	return found, kind, nil
}

// evaluator is a compiled expression: all column references resolved to
// combined-row indices. Evaluate never allocates for comparisons.
type evaluator struct {
	eval func(row []relation.Value) (relation.Value, error)
	kind relation.Kind // static result kind guess; KindNull when unknown
	expr Expr
}

// compile builds an evaluator for e under the binding.
func compile(e Expr, b *binding) (*evaluator, error) {
	switch n := e.(type) {
	case *Literal:
		v := n.Value
		return &evaluator{
			eval: func([]relation.Value) (relation.Value, error) { return v, nil },
			kind: v.Kind(),
			expr: e,
		}, nil
	case *ColumnRef:
		idx, kind, err := b.resolve(n)
		if err != nil {
			return nil, err
		}
		return &evaluator{
			eval: func(row []relation.Value) (relation.Value, error) { return row[idx], nil },
			kind: kind,
			expr: e,
		}, nil
	case *IsNullExpr:
		inner, err := compile(n.Expr, b)
		if err != nil {
			return nil, err
		}
		neg := n.Negate
		return &evaluator{
			eval: func(row []relation.Value) (relation.Value, error) {
				v, err := inner.eval(row)
				if err != nil {
					return relation.Null, err
				}
				return relation.Bool(v.IsNull() != neg), nil
			},
			kind: relation.KindBool,
			expr: e,
		}, nil
	case *FuncCall:
		if !strings.EqualFold(n.Name, "CONCAT") {
			return nil, fmt.Errorf("sqlengine: unknown function %q", n.Name)
		}
		args := make([]*evaluator, len(n.Args))
		for i, a := range n.Args {
			ev, err := compile(a, b)
			if err != nil {
				return nil, err
			}
			args[i] = ev
		}
		return &evaluator{
			eval: func(row []relation.Value) (relation.Value, error) {
				var sb strings.Builder
				for _, a := range args {
					v, err := a.eval(row)
					if err != nil {
						return relation.Null, err
					}
					sb.WriteString(v.Format())
				}
				return relation.String(sb.String()), nil
			},
			kind: relation.KindString,
			expr: e,
		}, nil
	case *BinaryExpr:
		return compileBinary(n, b)
	default:
		return nil, fmt.Errorf("sqlengine: cannot compile %T", e)
	}
}

func compileBinary(n *BinaryExpr, b *binding) (*evaluator, error) {
	left, err := compile(n.Left, b)
	if err != nil {
		return nil, err
	}
	right, err := compile(n.Right, b)
	if err != nil {
		return nil, err
	}
	switch n.Op {
	case "AND", "OR":
		and := n.Op == "AND"
		return &evaluator{
			eval: func(row []relation.Value) (relation.Value, error) {
				lv, err := left.eval(row)
				if err != nil {
					return relation.Null, err
				}
				lb, err := truthy(lv)
				if err != nil {
					return relation.Null, err
				}
				// Short circuit.
				if and && !lb {
					return relation.Bool(false), nil
				}
				if !and && lb {
					return relation.Bool(true), nil
				}
				rv, err := right.eval(row)
				if err != nil {
					return relation.Null, err
				}
				rb, err := truthy(rv)
				if err != nil {
					return relation.Null, err
				}
				return relation.Bool(rb), nil
			},
			kind: relation.KindBool,
			expr: n,
		}, nil
	case "=", "<>", "<", ">", "<=", ">=":
		op := n.Op
		return &evaluator{
			eval: func(row []relation.Value) (relation.Value, error) {
				lv, err := left.eval(row)
				if err != nil {
					return relation.Null, err
				}
				rv, err := right.eval(row)
				if err != nil {
					return relation.Null, err
				}
				ok, err := compareValues(op, lv, rv)
				if err != nil {
					return relation.Null, err
				}
				return relation.Bool(ok), nil
			},
			kind: relation.KindBool,
			expr: n,
		}, nil
	case "+", "-", "*", "/":
		op := n.Op
		kind := relation.KindInt
		if left.kind == relation.KindFloat || right.kind == relation.KindFloat || op == "/" {
			kind = relation.KindFloat
		}
		return &evaluator{
			eval: func(row []relation.Value) (relation.Value, error) {
				lv, err := left.eval(row)
				if err != nil {
					return relation.Null, err
				}
				rv, err := right.eval(row)
				if err != nil {
					return relation.Null, err
				}
				return arith(op, lv, rv)
			},
			kind: kind,
			expr: n,
		}, nil
	default:
		return nil, fmt.Errorf("sqlengine: unknown operator %q", n.Op)
	}
}

// truthy converts a value to a predicate result. NULL is false (two-valued
// simplification of SQL's UNKNOWN).
func truthy(v relation.Value) (bool, error) {
	switch v.Kind() {
	case relation.KindBool:
		return v.AsBool(), nil
	case relation.KindNull:
		return false, nil
	default:
		return false, fmt.Errorf("sqlengine: %s value used as predicate", v.Kind())
	}
}

// compareValues applies a comparison operator. Any comparison against NULL
// is false, matching SQL's UNKNOWN-filtered-out behaviour.
func compareValues(op string, a, b relation.Value) (bool, error) {
	if a.IsNull() || b.IsNull() {
		return false, nil
	}
	switch op {
	case "=":
		return a.Equal(b), nil
	case "<>":
		return !a.Equal(b), nil
	}
	c, err := a.Compare(b)
	if err != nil {
		return false, err
	}
	switch op {
	case "<":
		return c < 0, nil
	case ">":
		return c > 0, nil
	case "<=":
		return c <= 0, nil
	case ">=":
		return c >= 0, nil
	default:
		return false, fmt.Errorf("sqlengine: unknown comparison %q", op)
	}
}

// arith applies an arithmetic operator over numeric values. NULL operands
// produce NULL. Integer arithmetic stays integral except division, which is
// always float.
func arith(op string, a, b relation.Value) (relation.Value, error) {
	if a.IsNull() || b.IsNull() {
		return relation.Null, nil
	}
	if !a.Kind().Numeric() || !b.Kind().Numeric() {
		return relation.Null, fmt.Errorf("sqlengine: arithmetic on %s and %s", a.Kind(), b.Kind())
	}
	if op == "/" {
		d := b.AsFloat()
		if d == 0 {
			return relation.Null, fmt.Errorf("sqlengine: division by zero")
		}
		return relation.Float(a.AsFloat() / d), nil
	}
	if a.Kind() == relation.KindInt && b.Kind() == relation.KindInt {
		x, y := a.AsInt(), b.AsInt()
		switch op {
		case "+":
			return relation.Int(x + y), nil
		case "-":
			return relation.Int(x - y), nil
		case "*":
			return relation.Int(x * y), nil
		}
	}
	x, y := a.AsFloat(), b.AsFloat()
	switch op {
	case "+":
		return relation.Float(x + y), nil
	case "-":
		return relation.Float(x - y), nil
	case "*":
		return relation.Float(x * y), nil
	}
	return relation.Null, fmt.Errorf("sqlengine: unknown arithmetic operator %q", op)
}
