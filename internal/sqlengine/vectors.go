package sqlengine

import (
	"sync"

	"repro/internal/relation"
)

// vecCache holds the lazily-built columnar form of each registered table,
// alongside the typed hash indexes the batched join probe uses. Like the
// join-index cache it is keyed by registration name, self-heals when the
// registered table changes identity, and is evicted by Register — a
// re-registered table never serves stale vectors.
type vecCache struct {
	mu      sync.Mutex
	byTable map[string]*tableVectors
}

// newVecCache returns an empty cache.
func newVecCache() *vecCache {
	return &vecCache{byTable: map[string]*tableVectors{}}
}

// forTable returns the vector set for the named registration, replacing a
// stale entry whose table pointer no longer matches.
func (c *vecCache) forTable(name string, t *relation.Table) *tableVectors {
	c.mu.Lock()
	defer c.mu.Unlock()
	tv := c.byTable[name]
	if tv == nil || tv.table != t {
		tv = &tableVectors{
			table:  t,
			intIdx: map[int]*intIndexEntry{},
			strIdx: map[int]*strIndexEntry{},
			fmts:   map[int]*fmtEntry{},
		}
		c.byTable[name] = tv
	}
	return tv
}

// invalidate drops the cached vectors for one registration name.
func (c *vecCache) invalidate(name string) {
	c.mu.Lock()
	delete(c.byTable, name)
	c.mu.Unlock()
}

// tableVectors lazily materializes one registered table's column vectors
// and typed single-column hash indexes. Each artifact builds exactly once
// under its sync.Once; concurrent queries share the build and read the
// immutable result without locks.
type tableVectors struct {
	table *relation.Table
	once  sync.Once
	cols  *relation.ColumnSet // nil when the table is not vectorizable

	mu     sync.Mutex
	intIdx map[int]*intIndexEntry // per int/bool/date key column
	strIdx map[int]*strIndexEntry // per string key column
	fmts   map[int]*fmtEntry      // per CONCAT-referenced column
}

// intIndexEntry is one lazily-built int64-keyed equi-join index.
type intIndexEntry struct {
	once sync.Once
	rows map[int64][]int32
}

// strIndexEntry is one lazily-built string-keyed equi-join index.
type strIndexEntry struct {
	once sync.Once
	rows map[string][]int32
}

// fmtEntry is one column's lazily-built formatted cache: every cell's
// Format() bytes rendered once into a shared buffer, addressed by offsets.
// Vectorized CONCAT copies these slices instead of re-formatting the same
// cell for every join pair it appears in; NULL cells occupy an empty
// range, matching Format's empty rendering.
type fmtEntry struct {
	once sync.Once
	buf  []byte
	offs []int32 // len n+1; cell i spans buf[offs[i]:offs[i+1]]
}

// slice returns the formatted bytes of cell i.
func (f *fmtEntry) slice(i int32) []byte { return f.buf[f.offs[i]:f.offs[i+1]] }

// columns returns the columnar form, building it on first use. A nil
// result means the table holds cells whose dynamic kind violates the
// schema (rows spliced in without Append validation) and must stay on the
// row-at-a-time path.
func (tv *tableVectors) columns() *relation.ColumnSet {
	tv.once.Do(func() {
		met.vectorBuilds.Inc()
		tv.cols = relation.BuildColumns(tv.table)
	})
	return tv.cols
}

// intIndex returns the int64-keyed equi-join index over column col of an
// int, bool or date column, building it on first use. NULL cells are
// excluded — NULL never equi-joins — and bucket order is table row order,
// matching buildHashIndex, so batched probes emit the exact row stream the
// string-keyed path would.
func (tv *tableVectors) intIndex(col int, cols *relation.ColumnSet) map[int64][]int32 {
	tv.mu.Lock()
	entry := tv.intIdx[col]
	if entry == nil {
		entry = &intIndexEntry{}
		tv.intIdx[col] = entry
	}
	tv.mu.Unlock()
	built := false
	entry.once.Do(func() {
		built = true
		met.indexBuilds.Inc()
		v := &cols.Cols[col]
		idx := make(map[int64][]int32, cols.Len)
		for i := 0; i < cols.Len; i++ {
			if v.Nulls.Get(i) {
				continue
			}
			idx[v.I[i]] = append(idx[v.I[i]], int32(i))
		}
		entry.rows = idx
	})
	if !built {
		met.indexHits.Inc()
	}
	return entry.rows
}

// formatted returns the formatted cache for column col, building it on
// first use.
func (tv *tableVectors) formatted(col int, cols *relation.ColumnSet) *fmtEntry {
	tv.mu.Lock()
	entry := tv.fmts[col]
	if entry == nil {
		entry = &fmtEntry{}
		tv.fmts[col] = entry
	}
	tv.mu.Unlock()
	entry.once.Do(func() {
		v := &cols.Cols[col]
		offs := make([]int32, cols.Len+1)
		var buf []byte
		for i := 0; i < cols.Len; i++ {
			buf = v.AppendFormat(buf, i)
			offs[i+1] = int32(len(buf))
		}
		entry.buf, entry.offs = buf, offs
	})
	return entry
}

// strIndex is intIndex for string key columns.
func (tv *tableVectors) strIndex(col int, cols *relation.ColumnSet) map[string][]int32 {
	tv.mu.Lock()
	entry := tv.strIdx[col]
	if entry == nil {
		entry = &strIndexEntry{}
		tv.strIdx[col] = entry
	}
	tv.mu.Unlock()
	built := false
	entry.once.Do(func() {
		built = true
		met.indexBuilds.Inc()
		v := &cols.Cols[col]
		idx := make(map[string][]int32, cols.Len)
		for i := 0; i < cols.Len; i++ {
			if v.Nulls.Get(i) {
				continue
			}
			idx[v.S[i]] = append(idx[v.S[i]], int32(i))
		}
		entry.rows = idx
	})
	if !built {
		met.indexHits.Inc()
	}
	return entry.rows
}
