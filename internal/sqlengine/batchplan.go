package sqlengine

import (
	"strings"

	"repro/internal/relation"
)

// The batch compiler decides, once per plan, whether a statement can run
// on the columnar path, and if so compiles it into typed per-column
// programs. The gate is conservative: every shape it admits is proven to
// produce byte-identical results to the row-at-a-time executor (the
// differential suite in batchdiff_test.go executes both), and everything
// else — aggregates, ORDER BY, arithmetic projections, multi-column or
// float join keys, predicates the vectorizer cannot type — falls back to
// planRows.

// cmpMode selects the typed comparison loop for one compiled comparison.
type cmpMode uint8

const (
	cmpInt    cmpMode = iota // both operands int64 payloads of the same kind (int, bool, date)
	cmpFloat                 // numeric operands, at least one float (or mixed int/float)
	cmpStr                   // both strings
	cmpNever                 // can never match: NULL operand kind, or `=` across incomparable kinds
	cmpAlways                // matches whenever both operands are non-NULL: `<>` across incomparable kinds
)

// predMode selects the vecPred evaluation form.
type predMode uint8

const (
	predLit    predMode = iota // column OP literal
	predCol                    // column OP column (same side)
	predIsNull                 // column IS [NOT] NULL
)

// vecPred is one vectorized WHERE conjunct over a single table side. It
// narrows a selection vector in place with a tight typed loop.
type vecPred struct {
	mode   predMode
	cmp    cmpMode
	col    int  // left operand column (side-local)
	col2   int  // predCol: right operand column
	negate bool // predIsNull: IS NOT NULL
	// Comparison result mask: match when (cmp<0 && lt) || (cmp==0 && eq)
	// || (cmp>0 && gt). Covers all six operators with one classification.
	lt, eq, gt bool
	// predLit payloads, pre-extracted from the literal.
	litI int64
	litF float64
	litS string
}

// vecCmp is one cross-side column comparison, checked per candidate join
// pair directly on the typed vectors.
type vecCmp struct {
	cmp        cmpMode
	li, ri     int // left-local / right-local column indices
	lt, eq, gt bool
}

// projMode selects the batch projection form.
type projMode uint8

const (
	projCol    projMode = iota // plain column copy
	projLit                    // constant literal
	projConcat                 // CONCAT over columns and literals
)

// concatPart is one CONCAT argument: a pre-formatted literal or a column
// reference formatted per row.
type concatPart struct {
	lit       []byte // non-nil for literal parts (pre-rendered once)
	isLit     bool
	side, col int
}

// batchProj is one compiled batch projection.
type batchProj struct {
	mode      projMode
	side, col int
	lit       relation.Value
	parts     []concatPart
}

// batchPlan is the columnar execution program for a supported statement.
type batchPlan struct {
	join bool

	// Scan form (single table).
	scanPreds []vecPred

	// Join form: single-column equi key plus pushed-down side predicate
	// programs and typed cross-side comparisons. The residual predicate
	// must be empty — anything the classifier could not type bails to the
	// fallback at compile time.
	keyL, keyR int // side-local key column indices
	keyKind    relation.Kind
	leftPreds  []vecPred
	rightPreds []vecPred
	cmps       []vecCmp
	projs      []batchProj
}

// opParts splits a comparison operator into its result mask. ok is false
// for non-comparison operators.
func opParts(op string) (lt, eq, gt, ok bool) {
	switch op {
	case "=":
		return false, true, false, true
	case "<>":
		return true, false, true, true
	case "<":
		return true, false, false, true
	case "<=":
		return true, true, false, true
	case ">":
		return false, false, true, true
	case ">=":
		return false, true, true, true
	default:
		return false, false, false, false
	}
}

// classifyCmp types one comparison between column kinds lk and rk. ok is
// false when the row path could error on the comparison (ordering across
// incomparable kinds), which must stay on the fallback for error parity.
func classifyCmp(op string, lk, rk relation.Kind) (cmpMode, bool) {
	// A KindNull column is all-NULL, and compareValues is false whenever
	// an operand is NULL — no row can match, no error can surface.
	if lk == relation.KindNull || rk == relation.KindNull {
		return cmpNever, true
	}
	if lk == rk {
		switch lk {
		case relation.KindInt, relation.KindBool, relation.KindDate:
			return cmpInt, true
		case relation.KindFloat:
			return cmpFloat, true
		case relation.KindString:
			return cmpStr, true
		}
	}
	if lk.Numeric() && rk.Numeric() {
		return cmpFloat, true
	}
	// Incomparable kinds: Equal-based operators never error — `=` is
	// always false, `<>` is true for non-NULL pairs. Ordering errors.
	switch op {
	case "=":
		return cmpNever, true
	case "<>":
		return cmpAlways, true
	default:
		return 0, false
	}
}

// sideLocal converts a combined-row column index into (side, local) under
// the binding.
func sideLocal(idx int, b *binding) (int, int) {
	if len(b.offsets) == 2 && idx >= b.offsets[1] {
		return 1, idx - b.offsets[1]
	}
	return 0, idx
}

// kindAt returns the schema kind of a combined-row column index.
func kindAt(idx int, b *binding) relation.Kind {
	side, local := sideLocal(idx, b)
	return b.schemas[side][local].Kind
}

// vecPredOf compiles one conjunct into a vecPred whose column indices are
// local to the side spanning combined columns [lo, hi). ok is false when
// the conjunct is not vectorizable (then the whole plan falls back).
func vecPredOf(c Expr, b *binding, lo, hi int) (vecPred, bool) {
	switch n := c.(type) {
	case *IsNullExpr:
		cr, isCol := n.Expr.(*ColumnRef)
		if !isCol {
			return vecPred{}, false
		}
		idx, _, err := b.resolve(cr)
		if err != nil || idx < lo || idx >= hi {
			return vecPred{}, false
		}
		return vecPred{mode: predIsNull, col: idx - lo, negate: n.Negate}, true
	case *BinaryExpr:
		lt, eq, gt, ok := opParts(n.Op)
		if !ok {
			return vecPred{}, false
		}
		op, left, right := n.Op, n.Left, n.Right
		if _, isLit := left.(*Literal); isLit {
			// Normalize `lit OP col` to `col mirror(OP) lit`.
			op = mirrorOp(op)
			lt, eq, gt, _ = opParts(op)
			left, right = right, left
		}
		lc, isCol := left.(*ColumnRef)
		if !isCol {
			return vecPred{}, false
		}
		li, lk, err := b.resolve(lc)
		if err != nil || li < lo || li >= hi {
			return vecPred{}, false
		}
		switch rn := right.(type) {
		case *Literal:
			v := rn.Value
			if v.IsNull() {
				// Any comparison against NULL is false before kinds are
				// even considered, so it cannot error.
				return vecPred{mode: predLit, cmp: cmpNever}, true
			}
			mode, ok := classifyCmp(op, lk, v.Kind())
			if !ok {
				return vecPred{}, false
			}
			pr := vecPred{mode: predLit, cmp: mode, col: li - lo, lt: lt, eq: eq, gt: gt}
			switch v.Kind() {
			case relation.KindInt:
				pr.litI, pr.litF = v.AsInt(), v.AsFloat()
			case relation.KindFloat:
				pr.litF = v.AsFloat()
			case relation.KindString:
				pr.litS = v.AsString()
			case relation.KindBool:
				if v.AsBool() {
					pr.litI = 1
				}
			case relation.KindDate:
				pr.litI = v.AsDays()
			}
			return pr, true
		case *ColumnRef:
			ri, rk, err := b.resolve(rn)
			if err != nil || ri < lo || ri >= hi {
				return vecPred{}, false
			}
			mode, ok := classifyCmp(op, lk, rk)
			if !ok {
				return vecPred{}, false
			}
			return vecPred{mode: predCol, cmp: mode, col: li - lo, col2: ri - lo, lt: lt, eq: eq, gt: gt}, true
		default:
			return vecPred{}, false
		}
	default:
		return vecPred{}, false
	}
}

// vecPreds compiles a conjunct list, failing as a whole if any conjunct is
// not vectorizable.
func vecPreds(cs []Expr, b *binding, lo, hi int) ([]vecPred, bool) {
	var out []vecPred
	for _, c := range cs {
		pr, ok := vecPredOf(c, b, lo, hi)
		if !ok {
			return nil, false
		}
		out = append(out, pr)
	}
	return out, true
}

// batchProjOf compiles one projection expression.
func batchProjOf(e Expr, b *binding) (batchProj, bool) {
	switch n := e.(type) {
	case *ColumnRef:
		idx, _, err := b.resolve(n)
		if err != nil {
			return batchProj{}, false
		}
		side, local := sideLocal(idx, b)
		return batchProj{mode: projCol, side: side, col: local}, true
	case *Literal:
		return batchProj{mode: projLit, lit: n.Value}, true
	case *FuncCall:
		if !strings.EqualFold(n.Name, "CONCAT") {
			return batchProj{}, false
		}
		parts := make([]concatPart, 0, len(n.Args))
		for _, a := range n.Args {
			switch an := a.(type) {
			case *Literal:
				// Pre-render once; the row path formats the same constant
				// value per row, so the bytes are identical.
				parts = append(parts, concatPart{isLit: true, lit: []byte(an.Value.Format())})
			case *ColumnRef:
				idx, _, err := b.resolve(an)
				if err != nil {
					return batchProj{}, false
				}
				side, local := sideLocal(idx, b)
				parts = append(parts, concatPart{side: side, col: local})
			default:
				return batchProj{}, false
			}
		}
		return batchProj{mode: projConcat, parts: parts}, true
	default:
		return batchProj{}, false
	}
}

// batchKeyKind reports whether k can key a typed equi-join index. Floats
// are excluded (map[float64] diverges from HashKey on NaN); multi-column
// keys fall back to the string-keyed row path.
func batchKeyKind(k relation.Kind) bool {
	switch k {
	case relation.KindInt, relation.KindBool, relation.KindDate, relation.KindString:
		return true
	default:
		return false
	}
}

// compileBatch builds the columnar program for a plan, or nil when any
// part of the statement is outside the batch path's proven-identical
// subset.
func compileBatch(stmt *SelectStmt, b *binding, sources []*relation.Table, p *plan) *batchPlan {
	if p.agg || len(stmt.OrderBy) > 0 {
		return nil
	}
	bp := &batchPlan{}

	// Projections: expand * exactly like compileProjections, then require
	// every item to be a column, literal or CONCAT of those.
	for _, item := range stmt.Items {
		if item.Star {
			for ti := range b.schemas {
				for ci := range b.schemas[ti] {
					bp.projs = append(bp.projs, batchProj{mode: projCol, side: ti, col: ci})
				}
			}
			continue
		}
		pj, ok := batchProjOf(item.Expr, b)
		if !ok {
			return nil
		}
		bp.projs = append(bp.projs, pj)
	}

	switch len(sources) {
	case 1:
		n := sources[0].NumCols()
		preds, ok := vecPreds(conjuncts(stmt.Where), b, 0, n)
		if !ok {
			return nil
		}
		bp.scanPreds = preds
		return bp
	case 2:
		jp := p.join
		if jp == nil || len(jp.hashL) != 1 || len(jp.residualExprs) > 0 {
			return nil
		}
		lk := sources[0].Schema[jp.hashL[0]].Kind
		rk := sources[1].Schema[jp.hashR[0]].Kind
		if lk != rk || !batchKeyKind(lk) {
			return nil
		}
		bp.join = true
		bp.keyL, bp.keyR, bp.keyKind = jp.hashL[0], jp.hashR[0], lk
		var ok bool
		if bp.leftPreds, ok = vecPreds(jp.leftExprs, b, 0, jp.nL); !ok {
			return nil
		}
		if bp.rightPreds, ok = vecPreds(jp.rightExprs, b, jp.nL, jp.nL+jp.nR); !ok {
			return nil
		}
		for _, cc := range jp.cmps {
			mode, ok := classifyCmp(cc.op, sources[0].Schema[cc.li].Kind, sources[1].Schema[cc.ri].Kind)
			if !ok {
				return nil
			}
			lt, eq, gt, _ := opParts(cc.op)
			bp.cmps = append(bp.cmps, vecCmp{cmp: mode, li: cc.li, ri: cc.ri, lt: lt, eq: eq, gt: gt})
		}
		return bp
	default:
		return nil
	}
}
