// Package sqlengine implements the in-memory SQL engine PYTHIA executes its
// a-queries on. It replaces the PostgreSQL instance of the paper's setup.
//
// The dialect is the subset a-queries need — and a little more, so the
// engine is usable on its own:
//
//	SELECT [DISTINCT] expr [AS name], ...
//	FROM table [alias] [, table [alias]]
//	[WHERE pred AND pred ...]
//	[ORDER BY expr [DESC], ...]
//	[LIMIT n]
//
// Expressions cover qualified column references (b1."FG%"), string/number
// literals, arithmetic (+ - * /), comparisons (= <> != < > <= >=), and the
// CONCAT(...) function. Joins are binary (self-joins in practice); the
// planner uses a hash join whenever an equality predicate links the two
// sides, which is what makes template-based generation produce millions of
// examples in seconds.
package sqlengine

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// tokenKind enumerates lexical token classes.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString // single-quoted literal
	tokComma
	tokDot
	tokLParen
	tokRParen
	tokStar
	tokOp      // = <> != < > <= >= + - /
	tokKeyword // SELECT FROM WHERE AND OR ORDER BY LIMIT AS DISTINCT CONCAT DESC ASC NOT NULL IS
)

// token is one lexical token with its source position (byte offset).
type token struct {
	kind tokenKind
	text string
	pos  int
}

// keywords is the reserved-word set, upper-cased.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"ORDER": true, "BY": true, "LIMIT": true, "AS": true, "DISTINCT": true,
	"DESC": true, "ASC": true, "NOT": true, "NULL": true, "IS": true,
	"GROUP": true, "HAVING": true,
}

// builtinFuncs are the function names the parser recognizes ahead of '('.
var builtinFuncs = map[string]bool{
	"CONCAT": true, "COUNT": true, "SUM": true, "AVG": true,
	"MIN": true, "MAX": true,
}

// lexer tokenizes a SQL string.
type lexer struct {
	src string
	pos int
}

// isIdentStart reports whether r can begin a bare identifier.
func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

// isIdentStartByte decodes the leading rune of s and applies isIdentStart.
func isIdentStartByte(s string) bool {
	r, _ := utf8.DecodeRuneInString(s)
	return r != utf8.RuneError && isIdentStart(r)
}

// isIdentPart reports whether r can continue a bare identifier. We allow
// '%' so that headers like FG% work unquoted when they start with a letter.
func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '%'
}

// next returns the next token, or an error for an unterminated literal or
// stray byte.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == ',':
		l.pos++
		return token{tokComma, ",", start}, nil
	case c == '.':
		l.pos++
		return token{tokDot, ".", start}, nil
	case c == '(':
		l.pos++
		return token{tokLParen, "(", start}, nil
	case c == ')':
		l.pos++
		return token{tokRParen, ")", start}, nil
	case c == '*':
		l.pos++
		return token{tokStar, "*", start}, nil
	case c == '=', c == '+', c == '-', c == '/':
		l.pos++
		return token{tokOp, string(c), start}, nil
	case c == '<':
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '=' || l.src[l.pos] == '>') {
			l.pos++
			return token{tokOp, l.src[start:l.pos], start}, nil
		}
		return token{tokOp, "<", start}, nil
	case c == '>':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{tokOp, ">=", start}, nil
		}
		return token{tokOp, ">", start}, nil
	case c == '!':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{tokOp, "!=", start}, nil
		}
		return token{}, fmt.Errorf("sqlengine: stray '!' at offset %d", start)
	case c == '\'':
		l.pos++
		var b strings.Builder
		for l.pos < len(l.src) {
			if l.src[l.pos] == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					b.WriteByte('\'') // escaped quote
					l.pos += 2
					continue
				}
				l.pos++
				return token{tokString, b.String(), start}, nil
			}
			b.WriteByte(l.src[l.pos])
			l.pos++
		}
		return token{}, fmt.Errorf("sqlengine: unterminated string literal at offset %d", start)
	case c == '"':
		l.pos++
		var b strings.Builder
		for l.pos < len(l.src) {
			if l.src[l.pos] == '"' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '"' {
					b.WriteByte('"')
					l.pos += 2
					continue
				}
				l.pos++
				return token{tokIdent, b.String(), start}, nil
			}
			b.WriteByte(l.src[l.pos])
			l.pos++
		}
		return token{}, fmt.Errorf("sqlengine: unterminated quoted identifier at offset %d", start)
	case c >= '0' && c <= '9':
		for l.pos < len(l.src) && (isDigitByte(l.src[l.pos]) || l.src[l.pos] == '.') {
			l.pos++
		}
		return token{tokNumber, l.src[start:l.pos], start}, nil
	case isIdentStartByte(l.src[l.pos:]):
		for l.pos < len(l.src) {
			r, size := utf8.DecodeRuneInString(l.src[l.pos:])
			if !isIdentPart(r) {
				break
			}
			l.pos += size
		}
		word := l.src[start:l.pos]
		if keywords[strings.ToUpper(word)] || builtinFuncs[strings.ToUpper(word)] {
			return token{tokKeyword, strings.ToUpper(word), start}, nil
		}
		return token{tokIdent, word, start}, nil
	default:
		return token{}, fmt.Errorf("sqlengine: unexpected byte %q at offset %d", c, start)
	}
}

func isDigitByte(b byte) bool { return b >= '0' && b <= '9' }

// lexAll tokenizes the whole input (including the trailing EOF token).
func lexAll(src string) ([]token, error) {
	l := &lexer{src: src}
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}

// QuoteIdent renders an identifier so the lexer reads it back as a single
// identifier token: bare when possible, double-quoted otherwise. The query
// builders in internal/pythia use it for headers like "3FG%".
func QuoteIdent(name string) string {
	if name == "" {
		return `""`
	}
	runes := []rune(name)
	if isIdentStart(runes[0]) {
		ok := true
		for _, r := range runes[1:] {
			if !isIdentPart(r) {
				ok = false
				break
			}
		}
		if ok && !keywords[strings.ToUpper(name)] && !builtinFuncs[strings.ToUpper(name)] {
			return name
		}
	}
	return `"` + strings.ReplaceAll(name, `"`, `""`) + `"`
}

// QuoteString renders a single-quoted SQL string literal.
func QuoteString(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}
