package sqlengine

import (
	"strings"
	"testing"
)

func TestParsePaperQueryQ1(t *testing.T) {
	// a-query q1 from the paper's introduction (identifiers adapted to the
	// dialect's quoting).
	src := `SELECT b1.Player, b1.Team, b2.Player,
	               b2.Team, b1.FG%, b2.FG%,
	               b1."3FG%", b2."3FG%"
	        FROM D b1, D b2
	        WHERE b1.Player <> b2.Player AND
	              b1.Team <> b2.Team AND
	              b1.FG% > b2.FG% AND
	              b1."3FG%" < b2."3FG%"`
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(stmt.Items) != 8 {
		t.Errorf("items = %d, want 8", len(stmt.Items))
	}
	if len(stmt.From) != 2 || stmt.From[0].Alias != "b1" || stmt.From[1].Alias != "b2" {
		t.Errorf("from = %+v", stmt.From)
	}
	if got := len(conjuncts(stmt.Where)); got != 4 {
		t.Errorf("conjuncts = %d, want 4", got)
	}
}

func TestParseConcatSelect(t *testing.T) {
	src := `SELECT CONCAT(b1.Player, ' ', b1.Team, ' has higher shooting than ', b2.Player) AS text
	        FROM D b1, D b2 WHERE b1.Player <> b2.Player`
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	f, ok := stmt.Items[0].Expr.(*FuncCall)
	if !ok || len(f.Args) != 5 {
		t.Fatalf("item[0] = %#v", stmt.Items[0].Expr)
	}
	if stmt.Items[0].Alias != "text" {
		t.Errorf("alias = %q", stmt.Items[0].Alias)
	}
}

func TestParseOrderLimitDistinct(t *testing.T) {
	stmt, err := Parse(`SELECT DISTINCT a FROM t ORDER BY a DESC, b LIMIT 10`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !stmt.Distinct || stmt.Limit != 10 || len(stmt.OrderBy) != 2 {
		t.Errorf("stmt = %+v", stmt)
	}
	if !stmt.OrderBy[0].Desc || stmt.OrderBy[1].Desc {
		t.Errorf("order = %+v", stmt.OrderBy)
	}
}

func TestParseStar(t *testing.T) {
	stmt, err := Parse(`SELECT * FROM t WHERE x = 1`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !stmt.Items[0].Star {
		t.Error("expected star item")
	}
}

func TestParsePrecedence(t *testing.T) {
	stmt, err := Parse(`SELECT a FROM t WHERE a + 1 * 2 > 3 AND b < 4 OR c = 5`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	// Expect ((a + (1*2)) > 3 AND b < 4) OR c = 5.
	or, ok := stmt.Where.(*BinaryExpr)
	if !ok || or.Op != "OR" {
		t.Fatalf("top op = %#v", stmt.Where)
	}
	and, ok := or.Left.(*BinaryExpr)
	if !ok || and.Op != "AND" {
		t.Fatalf("left of OR = %#v", or.Left)
	}
	cmp, ok := and.Left.(*BinaryExpr)
	if !ok || cmp.Op != ">" {
		t.Fatalf("left of AND = %#v", and.Left)
	}
	add, ok := cmp.Left.(*BinaryExpr)
	if !ok || add.Op != "+" {
		t.Fatalf("left of > = %#v", cmp.Left)
	}
	if mul, ok := add.Right.(*BinaryExpr); !ok || mul.Op != "*" {
		t.Fatalf("right of + = %#v", add.Right)
	}
}

func TestParseIsNull(t *testing.T) {
	stmt, err := Parse(`SELECT a FROM t WHERE a IS NULL AND b IS NOT NULL`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	cs := conjuncts(stmt.Where)
	if len(cs) != 2 {
		t.Fatalf("conjuncts = %d", len(cs))
	}
	n1, ok1 := cs[0].(*IsNullExpr)
	n2, ok2 := cs[1].(*IsNullExpr)
	if !ok1 || !ok2 || n1.Negate || !n2.Negate {
		t.Errorf("IS NULL parse: %#v, %#v", cs[0], cs[1])
	}
}

func TestParseNegativeNumber(t *testing.T) {
	stmt, err := Parse(`SELECT a FROM t WHERE a > -2.5`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	cmp := stmt.Where.(*BinaryExpr)
	lit, ok := cmp.Right.(*Literal)
	if !ok || lit.Value.AsFloat() != -2.5 {
		t.Errorf("right = %#v", cmp.Right)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t extra garbage (",
		"SELECT a FROM t1, t2, t3",
		"SELECT CONCAT(a FROM t",
		"SELECT a FROM t ORDER",
		"FROM t",
		"SELECT a AS FROM t",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestStmtStringRoundtrip(t *testing.T) {
	srcs := []string{
		`SELECT DISTINCT CONCAT(b1.Player, ' x ') AS t, b1."3FG%" FROM D b1, D b2 WHERE b1.a = b2.b AND b1.c > 3 ORDER BY t DESC LIMIT 5`,
		`SELECT * FROM t`,
		`SELECT a + 1 FROM t WHERE a IS NOT NULL`,
	}
	for _, src := range srcs {
		s1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		s2, err := Parse(s1.String())
		if err != nil {
			t.Fatalf("Parse(String()) of %q (%q): %v", src, s1.String(), err)
		}
		if !strings.EqualFold(s1.String(), s2.String()) {
			t.Errorf("String not stable: %q vs %q", s1.String(), s2.String())
		}
	}
}
