package sqlengine

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/relation"
)

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
	src  string
}

// Parse parses a single SELECT statement.
func Parse(src string) (*SelectStmt, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF {
		return nil, p.errf("unexpected trailing input %q", p.cur().text)
	}
	return stmt, nil
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) peek() token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}
func (p *parser) advance() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sqlengine: parse error at offset %d: %s", p.cur().pos,
		fmt.Sprintf(format, args...))
}

// acceptKeyword consumes the keyword if present.
func (p *parser) acceptKeyword(kw string) bool {
	if p.cur().kind == tokKeyword && p.cur().text == kw {
		p.advance()
		return true
	}
	return false
}

// expectKeyword consumes the keyword or fails.
func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s, found %q", kw, p.cur().text)
	}
	return nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	stmt.Distinct = p.acceptKeyword("DISTINCT")

	// Projection list.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if p.cur().kind != tokComma {
			break
		}
		p.advance()
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		stmt.From = append(stmt.From, tr)
		if p.cur().kind != tokComma {
			break
		}
		p.advance()
	}
	if len(stmt.From) > 2 {
		return nil, p.errf("at most two FROM tables are supported, got %d", len(stmt.From))
	}

	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}

	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr(0)
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if p.cur().kind != tokComma {
				break
			}
			p.advance()
		}
	}

	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr(0)
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if p.cur().kind != tokComma {
				break
			}
			p.advance()
		}
	}

	if p.acceptKeyword("LIMIT") {
		if p.cur().kind != tokNumber {
			return nil, p.errf("expected number after LIMIT, found %q", p.cur().text)
		}
		n, err := strconv.Atoi(p.advance().text)
		if err != nil || n < 0 {
			return nil, p.errf("invalid LIMIT value")
		}
		stmt.Limit = n
	}
	return stmt, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.cur().kind == tokStar {
		p.advance()
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr(0)
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		if p.cur().kind != tokIdent {
			return SelectItem{}, p.errf("expected alias after AS, found %q", p.cur().text)
		}
		item.Alias = p.advance().text
	} else if p.cur().kind == tokIdent {
		// Bare alias: SELECT expr name
		item.Alias = p.advance().text
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	if p.cur().kind != tokIdent {
		return TableRef{}, p.errf("expected table name, found %q", p.cur().text)
	}
	tr := TableRef{Table: p.advance().text}
	if p.acceptKeyword("AS") {
		if p.cur().kind != tokIdent {
			return TableRef{}, p.errf("expected alias after AS, found %q", p.cur().text)
		}
		tr.Alias = p.advance().text
	} else if p.cur().kind == tokIdent {
		tr.Alias = p.advance().text
	} else {
		tr.Alias = tr.Table
	}
	return tr, nil
}

// Operator precedence, loosest to tightest:
//
//	1: OR
//	2: AND
//	3: comparisons, IS [NOT] NULL
//	4: + -
//	5: * /
func binaryPrecedence(t token) int {
	switch t.kind {
	case tokKeyword:
		switch t.text {
		case "OR":
			return 1
		case "AND":
			return 2
		case "IS":
			return 3
		}
	case tokOp:
		switch t.text {
		case "=", "<>", "!=", "<", ">", "<=", ">=":
			return 3
		case "+", "-":
			return 4
		case "/":
			return 5
		}
	case tokStar:
		return 5 // multiplication
	}
	return 0
}

// parseExpr parses with precedence climbing.
func (p *parser) parseExpr(minPrec int) (Expr, error) {
	left, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		prec := binaryPrecedence(p.cur())
		if prec == 0 || prec < minPrec {
			return left, nil
		}
		opTok := p.advance()
		if opTok.kind == tokKeyword && opTok.text == "IS" {
			neg := p.acceptKeyword("NOT")
			if err := p.expectKeyword("NULL"); err != nil {
				return nil, err
			}
			left = &IsNullExpr{Expr: left, Negate: neg}
			continue
		}
		op := opTok.text
		if opTok.kind == tokStar {
			op = "*"
		}
		if op == "!=" {
			op = "<>"
		}
		right, err := p.parseExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.advance()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("invalid number %q", t.text)
			}
			return &Literal{Value: relation.Float(f)}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("invalid number %q", t.text)
		}
		return &Literal{Value: relation.Int(i)}, nil
	case tokString:
		p.advance()
		return &Literal{Value: relation.String(t.text)}, nil
	case tokOp:
		if t.text == "-" { // unary minus on numeric literal
			p.advance()
			inner, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			lit, ok := inner.(*Literal)
			if !ok {
				return &BinaryExpr{Op: "-", Left: &Literal{Value: relation.Int(0)}, Right: inner}, nil
			}
			switch lit.Value.Kind() {
			case relation.KindInt:
				return &Literal{Value: relation.Int(-lit.Value.AsInt())}, nil
			case relation.KindFloat:
				return &Literal{Value: relation.Float(-lit.Value.AsFloat())}, nil
			}
			return nil, p.errf("cannot negate %s", lit.Value.Kind())
		}
	case tokLParen:
		p.advance()
		e, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		if p.cur().kind != tokRParen {
			return nil, p.errf("expected ')', found %q", p.cur().text)
		}
		p.advance()
		return e, nil
	case tokKeyword:
		if builtinFuncs[t.text] {
			p.advance()
			if p.cur().kind != tokLParen {
				return nil, p.errf("expected '(' after %s", t.text)
			}
			p.advance()
			f := &FuncCall{Name: t.text}
			if p.cur().kind == tokStar {
				if t.text != "COUNT" {
					return nil, p.errf("'*' argument is only valid for COUNT")
				}
				f.Star = true
				p.advance()
			} else if p.cur().kind != tokRParen {
				for {
					arg, err := p.parseExpr(0)
					if err != nil {
						return nil, err
					}
					f.Args = append(f.Args, arg)
					if p.cur().kind != tokComma {
						break
					}
					p.advance()
				}
			}
			if f.IsAggregate() && !f.Star && len(f.Args) != 1 {
				return nil, p.errf("%s takes exactly one argument", t.text)
			}
			if p.cur().kind != tokRParen {
				return nil, p.errf("expected ')' to close %s, found %q", t.text, p.cur().text)
			}
			p.advance()
			return f, nil
		}
		if t.text == "NULL" {
			p.advance()
			return &Literal{Value: relation.Null}, nil
		}
	case tokIdent:
		p.advance()
		if p.cur().kind == tokDot {
			p.advance()
			if p.cur().kind != tokIdent {
				return nil, p.errf("expected column name after %q.", t.text)
			}
			name := p.advance().text
			return &ColumnRef{Qualifier: t.text, Name: name}, nil
		}
		return &ColumnRef{Name: t.text}, nil
	}
	return nil, p.errf("unexpected token %q", t.text)
}
