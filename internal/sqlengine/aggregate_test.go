package sqlengine

import (
	"math"
	"testing"

	"repro/internal/relation"
)

func aggEngine(t *testing.T) *Engine {
	t.Helper()
	tab, err := relation.ReadCSVString("covid", `country,region,cases,rate
France,EU,100,1.5
France,EU,200,2.5
Italy,EU,50,3.0
Egypt,Africa,40,2.0
Kenya,Africa,10,1.0
`)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine()
	e.Register(tab)
	return e
}

func TestGroupBySum(t *testing.T) {
	e := aggEngine(t)
	res, err := e.Query(`SELECT region, SUM(cases) FROM covid GROUP BY region`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.NumRows() != 2 {
		t.Fatalf("groups = %d, want 2", res.NumRows())
	}
	got := map[string]int64{}
	for _, row := range res.Rows {
		got[row[0].AsString()] = row[1].AsInt()
	}
	if got["EU"] != 350 || got["Africa"] != 50 {
		t.Errorf("sums = %v", got)
	}
}

func TestGroupByAllAggregates(t *testing.T) {
	e := aggEngine(t)
	res, err := e.Query(`SELECT region, COUNT(*), COUNT(cases), AVG(cases), MIN(rate), MAX(rate)
	                     FROM covid GROUP BY region ORDER BY region`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.NumRows() != 2 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	africa := res.Rows[0]
	if africa[0].AsString() != "Africa" {
		t.Fatalf("order = %v", res)
	}
	if africa[1].AsInt() != 2 || africa[2].AsInt() != 2 {
		t.Errorf("counts = %v", africa)
	}
	if africa[3].AsFloat() != 25 {
		t.Errorf("avg = %v", africa[3])
	}
	if africa[4].AsFloat() != 1.0 || africa[5].AsFloat() != 2.0 {
		t.Errorf("min/max = %v %v", africa[4], africa[5])
	}
}

func TestGlobalAggregateNoGroups(t *testing.T) {
	e := aggEngine(t)
	res, err := e.Query(`SELECT COUNT(*), SUM(cases) FROM covid`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.NumRows() != 1 || res.Cell(0, 0).AsInt() != 5 || res.Cell(0, 1).AsInt() != 400 {
		t.Errorf("result = %v", res)
	}
}

func TestGlobalAggregateEmptyInput(t *testing.T) {
	e := aggEngine(t)
	res, err := e.Query(`SELECT COUNT(*) FROM covid WHERE cases > 9999`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.NumRows() != 1 || res.Cell(0, 0).AsInt() != 0 {
		t.Errorf("COUNT over empty = %v", res)
	}
	res, err = e.Query(`SELECT SUM(cases) FROM covid WHERE cases > 9999`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if !res.Cell(0, 0).IsNull() {
		t.Errorf("SUM over empty = %v, want NULL", res.Cell(0, 0))
	}
}

func TestAggregateWithWhere(t *testing.T) {
	e := aggEngine(t)
	res, err := e.Query(`SELECT region, SUM(cases) FROM covid WHERE cases >= 50 GROUP BY region ORDER BY region`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.NumRows() != 1 || res.Cell(0, 0).AsString() != "EU" || res.Cell(0, 1).AsInt() != 350 {
		t.Errorf("result = %v", res)
	}
}

func TestAggregateOverJoin(t *testing.T) {
	// The paper's future-work query shape: aggregate over a join of a fact
	// table and a dimension table.
	e := aggEngine(t)
	dim, err := relation.ReadCSVString("regions", `region,continent
EU,Europe
Africa,Africa
`)
	if err != nil {
		t.Fatal(err)
	}
	e.Register(dim)
	res, err := e.Query(`SELECT r.continent, SUM(c.cases)
	                     FROM covid c, regions r
	                     WHERE c.region = r.region
	                     GROUP BY r.continent ORDER BY r.continent`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.NumRows() != 2 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	if res.Cell(0, 0).AsString() != "Africa" || res.Cell(0, 1).AsInt() != 50 {
		t.Errorf("africa = %v", res.Rows[0])
	}
	if res.Cell(1, 0).AsString() != "Europe" || res.Cell(1, 1).AsInt() != 350 {
		t.Errorf("europe = %v", res.Rows[1])
	}
}

func TestAvgIsFloat(t *testing.T) {
	e := aggEngine(t)
	res, err := e.Query(`SELECT AVG(cases) FROM covid`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema[0].Kind != relation.KindFloat {
		t.Errorf("AVG kind = %s", res.Schema[0].Kind)
	}
	if math.Abs(res.Cell(0, 0).AsFloat()-80) > 1e-9 {
		t.Errorf("AVG = %v", res.Cell(0, 0))
	}
}

func TestSumFloatColumn(t *testing.T) {
	e := aggEngine(t)
	res, err := e.Query(`SELECT SUM(rate) FROM covid`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema[0].Kind != relation.KindFloat || math.Abs(res.Cell(0, 0).AsFloat()-10) > 1e-9 {
		t.Errorf("SUM(rate) = %v (%s)", res.Cell(0, 0), res.Schema[0].Kind)
	}
}

func TestMinMaxStrings(t *testing.T) {
	e := aggEngine(t)
	res, err := e.Query(`SELECT MIN(country), MAX(country) FROM covid`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cell(0, 0).AsString() != "Egypt" || res.Cell(0, 1).AsString() != "Kenya" {
		t.Errorf("min/max = %v", res.Rows[0])
	}
}

func TestAggregateParseAndValidation(t *testing.T) {
	e := aggEngine(t)
	bad := []string{
		`SELECT SUM(*) FROM covid`,                      // * only for COUNT
		`SELECT SUM(cases, rate) FROM covid`,            // arity
		`SELECT * FROM covid GROUP BY region`,           // star in aggregate query
		`SELECT SUM(cases) + 1 FROM covid`,              // expression over aggregate
		`SELECT region FROM covid WHERE SUM(cases) > 1`, // aggregate in WHERE
	}
	for _, q := range bad {
		if _, err := e.Query(q); err == nil {
			t.Errorf("Query(%q): expected error", q)
		}
	}
}

func TestGroupByStmtString(t *testing.T) {
	stmt, err := Parse(`SELECT region, SUM(cases) FROM covid GROUP BY region LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Parse(stmt.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", stmt.String(), err)
	}
	if len(s2.GroupBy) != 1 {
		t.Errorf("GroupBy lost in roundtrip: %q", stmt.String())
	}
}

func TestCountDistinctValuesViaGroup(t *testing.T) {
	// GROUP BY itself deduplicates; COUNT(*) per group plus row count give
	// the usual building blocks.
	e := aggEngine(t)
	res, err := e.Query(`SELECT country, COUNT(*) FROM covid GROUP BY country`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 4 {
		t.Errorf("distinct countries = %d, want 4", res.NumRows())
	}
}
