package sqlengine

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/detrand"
	"repro/internal/relation"
)

// Randomized differential property test: generate tables with random
// schemas and NULL patterns, derive queries covering every shape the batch
// compiler admits (plus deliberate fallback shapes), and require the batch
// and row-at-a-time paths to produce byte-identical result tables.

// diffKinds are the column kinds the generator draws from.
var diffKinds = []relation.Kind{
	relation.KindInt, relation.KindFloat, relation.KindString,
	relation.KindBool, relation.KindDate,
}

// randomDiffTable builds a table with a grouped int key column k plus nCols
// random-kind columns c0..cN, with ~15% NULLs everywhere (key included).
func randomDiffTable(rng *rand.Rand, name string, nCols, nRows int) *relation.Table {
	schema := relation.Schema{{Name: "k", Kind: relation.KindInt}}
	for c := 0; c < nCols; c++ {
		schema = append(schema, relation.Column{
			Name: fmt.Sprintf("c%d", c),
			Kind: diffKinds[rng.Intn(len(diffKinds))],
		})
	}
	tb := relation.NewTable(name, schema)
	words := []string{"ape", "bat", "cod", "doe", "", "elk"}
	cell := func(k relation.Kind) relation.Value {
		if rng.Intn(100) < 15 {
			return relation.Null
		}
		switch k {
		case relation.KindInt:
			return relation.Int(int64(rng.Intn(9) - 2))
		case relation.KindFloat:
			return relation.Float(float64(rng.Intn(7)) - 1.5)
		case relation.KindString:
			return relation.String(words[rng.Intn(len(words))])
		case relation.KindBool:
			return relation.Bool(rng.Intn(2) == 0)
		default:
			return relation.DateFromDays(int64(18000 + rng.Intn(20)))
		}
	}
	for i := 0; i < nRows; i++ {
		row := relation.Row{cell(relation.KindInt)}
		if row[0].IsNull() {
			row[0] = relation.Int(int64(rng.Intn(5)))
		}
		if rng.Intn(100) < 10 {
			row[0] = relation.Null // some NULL join keys
		}
		for c := 0; c < nCols; c++ {
			row = append(row, cell(schema[c+1].Kind))
		}
		tb.Rows = append(tb.Rows, row)
	}
	return tb
}

// litFor renders a parseable literal from a column's value domain. Bool and
// date literals have no SQL syntax here, so those columns only appear in
// column-column comparisons and projections.
func litFor(rng *rand.Rand, k relation.Kind) (string, bool) {
	switch k {
	case relation.KindInt:
		return fmt.Sprintf("%d", rng.Intn(9)-2), true
	case relation.KindFloat:
		return fmt.Sprintf("%.1f", float64(rng.Intn(7))-1.5), true
	case relation.KindString:
		return "'" + []string{"ape", "bat", "cod", ""}[rng.Intn(4)] + "'", true
	default:
		return "", false
	}
}

var diffOps = []string{"=", "<>", "<", "<=", ">", ">="}

// orderComparable mirrors classifyCmp's vectorizable set for order
// operators: same kind, or both numeric.
func orderComparable(a, b relation.Kind) bool {
	return a == b || (a.Numeric() && b.Numeric())
}

// randomPred renders one vectorizable conjunct over the schema (alias may
// be empty for scans).
func randomPred(rng *rand.Rand, schema relation.Schema, alias string) string {
	q := func(name string) string {
		if alias == "" {
			return name
		}
		return alias + "." + name
	}
	for tries := 0; ; tries++ {
		ci := rng.Intn(len(schema))
		col := schema[ci]
		switch rng.Intn(4) {
		case 0: // IS [NOT] NULL
			if rng.Intn(2) == 0 {
				return q(col.Name) + " IS NULL"
			}
			return q(col.Name) + " IS NOT NULL"
		case 1: // col OP literal (possibly NULL literal)
			if rng.Intn(10) == 0 {
				return q(col.Name) + " " + diffOps[rng.Intn(len(diffOps))] + " NULL"
			}
			lit, ok := litFor(rng, col.Kind)
			if !ok {
				continue
			}
			op := diffOps[rng.Intn(len(diffOps))]
			if rng.Intn(2) == 0 {
				return q(col.Name) + " " + op + " " + lit
			}
			return lit + " " + op + " " + q(col.Name) // literal-left mirroring
		default: // col OP col
			cj := rng.Intn(len(schema))
			op := diffOps[rng.Intn(len(diffOps))]
			if !orderComparable(col.Kind, schema[cj].Kind) {
				op = []string{"=", "<>"}[rng.Intn(2)] // never/always modes
			}
			return q(col.Name) + " " + op + " " + q(schema[cj].Name)
		}
	}
}

// randomProjList renders 1-3 projections: columns, literals and CONCATs.
func randomProjList(rng *rand.Rand, schema relation.Schema, alias string) string {
	q := func(name string) string {
		if alias == "" {
			return name
		}
		return alias + "." + name
	}
	var items []string
	for n := 1 + rng.Intn(3); len(items) < n; {
		switch rng.Intn(4) {
		case 0:
			items = append(items, q(schema[rng.Intn(len(schema))].Name))
		case 1:
			items = append(items, fmt.Sprintf("%d", rng.Intn(100)))
		default:
			a := q(schema[rng.Intn(len(schema))].Name)
			b := q(schema[rng.Intn(len(schema))].Name)
			items = append(items, fmt.Sprintf("CONCAT(%s, ' / ', %s) AS x%d", a, b, len(items)))
		}
	}
	return strings.Join(items, ", ")
}

func TestBatchDifferentialRandomized(t *testing.T) {
	rng := detrand.New(8) // PR seed; the whole suite is reproducible
	batchPlans := 0
	for round := 0; round < 10; round++ {
		tb := randomDiffTable(rng, fmt.Sprintf("t%d", round), 2+rng.Intn(3), 30+rng.Intn(40))
		schema := tb.Schema

		var queries []string
		// Scan shapes.
		queries = append(queries, fmt.Sprintf(`SELECT * FROM %s`, tb.Name))
		for i := 0; i < 6; i++ {
			var sb strings.Builder
			if rng.Intn(4) == 0 {
				sb.WriteString("SELECT DISTINCT ")
			} else {
				sb.WriteString("SELECT ")
			}
			sb.WriteString(randomProjList(rng, schema, ""))
			sb.WriteString(" FROM " + tb.Name)
			if nPreds := rng.Intn(3); nPreds > 0 {
				var preds []string
				for p := 0; p < nPreds; p++ {
					preds = append(preds, randomPred(rng, schema, ""))
				}
				sb.WriteString(" WHERE " + strings.Join(preds, " AND "))
			}
			if rng.Intn(4) == 0 {
				fmt.Fprintf(&sb, " LIMIT %d", rng.Intn(12))
			}
			queries = append(queries, sb.String())
		}
		// Join shapes: equi key on k (int), side preds, cross comparisons.
		for i := 0; i < 5; i++ {
			var sb strings.Builder
			sb.WriteString("SELECT ")
			if rng.Intn(4) == 0 {
				sb.WriteString("DISTINCT ")
			}
			sb.WriteString(randomProjList(rng, schema, "b1"))
			fmt.Fprintf(&sb, " FROM %s b1, %s b2 WHERE b1.k = b2.k", tb.Name, tb.Name)
			for p := rng.Intn(2); p > 0; p-- {
				sb.WriteString(" AND " + randomPred(rng, schema, []string{"b1", "b2"}[rng.Intn(2)]))
			}
			// Cross-side comparison with vectorizable typing.
			ci, cj := rng.Intn(len(schema)), rng.Intn(len(schema))
			op := diffOps[rng.Intn(len(diffOps))]
			if !orderComparable(schema[ci].Kind, schema[cj].Kind) {
				op = []string{"=", "<>"}[rng.Intn(2)]
			}
			fmt.Fprintf(&sb, " AND b1.%s %s b2.%s", schema[ci].Name, op, schema[cj].Name)
			if rng.Intn(4) == 0 {
				fmt.Fprintf(&sb, " LIMIT %d", rng.Intn(20))
			}
			queries = append(queries, sb.String())
		}
		// A fallback shape rides along to prove the harness diffs it too.
		queries = append(queries, fmt.Sprintf(`SELECT k FROM %s ORDER BY k LIMIT 5`, tb.Name))

		probe := NewEngine()
		probe.Register(tb)
		for _, sql := range queries {
			runBothPaths(t, sql, tb)
			if p, err := probe.prepare(sql); err == nil && p.batch != nil {
				batchPlans++
			}
		}
	}
	// The generator must actually exercise the batch path, not fall back
	// everywhere.
	if batchPlans < 80 {
		t.Fatalf("only %d generated queries compiled to batch plans; generator drifted", batchPlans)
	}
}

// TestConcurrentBatchVectorBuilds hammers one engine's lazy artifacts —
// column vectors, typed join indexes, formatted caches — from many
// goroutines at once. Run under -race in CI; correctness of the shared
// build is asserted by comparing every result against a sequential
// fallback engine.
func TestConcurrentBatchVectorBuilds(t *testing.T) {
	tb := batchTestTable("t")
	want := map[string]string{}
	ref := NewEngine()
	ref.batchOff = true
	ref.Register(tb)
	queries := []string{
		`SELECT k, s FROM t WHERE n > 2`,
		`SELECT CONCAT(k, ' ', s, ' ', d) AS txt FROM t`,
		`SELECT b1.k, b2.n FROM t b1, t b2 WHERE b1.k = b2.k AND b1.n <> b2.n`,
		`SELECT b1.s FROM t b1, t b2 WHERE b1.s = b2.s AND b1.n < b2.n`,
		`SELECT CONCAT(b1.k, '>', b2.f) AS txt FROM t b1, t b2 WHERE b1.k = b2.k AND b1.f > b2.f`,
		`SELECT DISTINCT CONCAT(b1.k, ':', b2.b) AS txt FROM t b1, t b2 WHERE b1.k = b2.k`,
	}
	for _, sql := range queries {
		res, err := ref.Query(sql)
		if err != nil {
			t.Fatal(err)
		}
		want[sql] = tableFingerprint(res)
	}

	e := NewEngine()
	e.Register(tb)
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers*len(queries))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				for _, sql := range queries {
					res, err := e.Query(sql)
					if err != nil {
						errs <- fmt.Errorf("%q: %v", sql, err)
						return
					}
					if got := tableFingerprint(res); got != want[sql] {
						errs <- fmt.Errorf("%q: concurrent result diverges", sql)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
