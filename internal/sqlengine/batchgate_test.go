package sqlengine

import "testing"

// TestTemplateConcatBatchFloor is the columnar-execution acceptance gate
// (BENCH_8.json): the batch path must run the template-mode a-query —
// equi self-join plus CONCAT projection — at least 3x faster than the
// row-at-a-time fallback in the same process, within a hard allocation
// budget. Measuring both paths side by side makes the floor
// machine-independent; note the fallback itself got faster in this PR
// (scratch-key probes), so the floor is conservative against the recorded
// BENCH_5 baseline.
func TestTemplateConcatBatchFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("timing floor skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("timing floor is meaningless under the race detector")
	}

	const (
		speedupFloor = 3.0
		allocCeiling = 20_000
		reps         = 3
	)
	// Best-of-reps: load inflates a measurement but never deflates it, so
	// the minimum of several runs is the stable comparison point for both
	// sides.
	measure := func(bench func(*testing.B)) (ns float64, allocs int64) {
		for i := 0; i < reps; i++ {
			r := testing.Benchmark(bench)
			if perOp := float64(r.NsPerOp()); i == 0 || perOp < ns {
				ns = perOp
			}
			if perOp := r.AllocsPerOp(); i == 0 || perOp < allocs {
				allocs = perOp
			}
		}
		return ns, allocs
	}

	batchNs, batchAllocs := measure(BenchmarkAQueryTemplateConcat)
	fallbackNs, _ := measure(BenchmarkAQueryTemplateConcatFallback)

	ratio := fallbackNs / batchNs
	t.Logf("TemplateConcat: batch %.0f ns/op (%d allocs/op), fallback %.0f ns/op, speedup %.2fx",
		batchNs, batchAllocs, fallbackNs, ratio)
	if ratio < speedupFloor {
		t.Fatalf("batch TemplateConcat speedup %.2fx below the %.1fx floor (batch %.0f ns/op, fallback %.0f ns/op)",
			ratio, speedupFloor, batchNs, fallbackNs)
	}
	if batchAllocs > allocCeiling {
		t.Fatalf("batch TemplateConcat allocs/op = %d, budget %d", batchAllocs, allocCeiling)
	}
}
