package sqlengine

import (
	"fmt"
	"testing"

	"repro/internal/relation"
)

// aqueryTable builds a self-join target shaped like a profiled ambiguity
// table: pk is a unique subject key, k1 is the first column of a composite
// key (groups of ten rows), att is a measure with in-group disagreement,
// and a1/a2 are a strongly correlated ambiguous pair. a2 tracks a1 except
// at every 97th row, so the contradictory order pattern
// (b1.a1 > b2.a1 AND b1.a2 < b2.a2) matches only a sparse set of pairs —
// the worst case for the nested loop, which still visits all n² pairs.
func aqueryTable(name string, n int) *relation.Table {
	t := relation.NewTable(name, relation.Schema{
		{Name: "pk", Kind: relation.KindInt},
		{Name: "k1", Kind: relation.KindInt},
		{Name: "att", Kind: relation.KindInt},
		{Name: "a1", Kind: relation.KindInt},
		{Name: "a2", Kind: relation.KindInt},
	})
	for i := 0; i < n; i++ {
		a2 := int64(i)
		if i%97 == 0 {
			a2 -= 3 // sparse contradictions against the ascending a1
		}
		t.Rows = append(t.Rows, relation.Row{
			relation.Int(int64(i)),
			relation.Int(int64(i / 10)),
			relation.Int(int64(i % 23)),
			relation.Int(int64(i)),
			relation.Int(a2),
		})
	}
	return t
}

// attrAmbSQL is the attribute-ambiguity a-query shape (the paper's q1,
// contradictory match): no equi-conjunct, two order conjuncts plus the
// key-inequality — historically the nested-loop path.
func attrAmbSQL(table string) string {
	return fmt.Sprintf(
		`SELECT b1.pk, b2.pk, b1.a1, b2.a1, b1.a2, b2.a2 FROM %s b1, %s b2`+
			` WHERE b1.pk <> b2.pk AND b1.a1 > b2.a1 AND b1.a2 < b2.a2`,
		table, table)
}

// rowAmbSQL is the row-ambiguity a-query shape (the paper's q2,
// contradictory match): one equi-conjunct driving a hash join plus a
// cross-side inequality.
func rowAmbSQL(table string) string {
	return fmt.Sprintf(
		`SELECT b1.k1, b1.att, b2.att FROM %s b1, %s b2`+
			` WHERE b1.k1 = b2.k1 AND b1.att <> b2.att`,
		table, table)
}

// templateSQL is the template-mode shape (the paper's Q1 family): the
// sentence is produced inside the SELECT clause by CONCAT.
func templateSQL(table string) string {
	return fmt.Sprintf(
		`SELECT CONCAT(b1.k1, ' has more than ', b2.att, ' att') AS text FROM %s b1, %s b2`+
			` WHERE b1.k1 = b2.k1 AND b1.att > b2.att`,
		table, table)
}

// benchQuery runs one SQL text repeatedly against a fresh registration of
// the standard a-query table.
func benchQuery(b *testing.B, rows int, sql string, wantRows bool) {
	b.Helper()
	benchQueryEngine(b, NewEngine(), rows, sql, wantRows)
}

// benchQueryFallback is benchQuery with the columnar path disabled, so the
// batch speedup is measurable on one machine (the CI floor gate compares
// the two).
func benchQueryFallback(b *testing.B, rows int, sql string, wantRows bool) {
	b.Helper()
	e := NewEngine()
	e.batchOff = true
	benchQueryEngine(b, e, rows, sql, wantRows)
}

func benchQueryEngine(b *testing.B, e *Engine, rows int, sql string, wantRows bool) {
	b.Helper()
	e.Register(aqueryTable("T", rows))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Query(sql)
		if err != nil {
			b.Fatal(err)
		}
		if wantRows && res.NumRows() == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkAQueryAttributeAmbiguity is the sparse contradictory self-join:
// the shape that falls into the O(n²) nested loop without a range join.
func BenchmarkAQueryAttributeAmbiguity(b *testing.B) {
	benchQuery(b, 2000, attrAmbSQL("T"), true)
}

// BenchmarkAQueryRowAmbiguity is the equi-join (hash) shape.
func BenchmarkAQueryRowAmbiguity(b *testing.B) {
	benchQuery(b, 5000, rowAmbSQL("T"), true)
}

// BenchmarkAQueryTemplateConcat is template mode: equi-join plus CONCAT
// projection per emitted row.
func BenchmarkAQueryTemplateConcat(b *testing.B) {
	benchQuery(b, 5000, templateSQL("T"), true)
}

// BenchmarkAQueryRowAmbiguityFallback is the equi-join shape forced onto
// the row-at-a-time path.
func BenchmarkAQueryRowAmbiguityFallback(b *testing.B) {
	benchQueryFallback(b, 5000, rowAmbSQL("T"), true)
}

// BenchmarkAQueryTemplateConcatFallback is template mode forced onto the
// row-at-a-time path.
func BenchmarkAQueryTemplateConcatFallback(b *testing.B) {
	benchQueryFallback(b, 5000, templateSQL("T"), true)
}

// BenchmarkAQueryRepeatedCount replays one counting a-query over and over
// on a shared engine — the repeated-unit pattern corpus generation hits,
// where parse and plan compilation are pure overhead.
func BenchmarkAQueryRepeatedCount(b *testing.B) {
	e := NewEngine()
	e.Register(aqueryTable("T", 2000))
	sql := rowAmbSQL("T")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := e.QueryCount(sql)
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			b.Fatal("no rows")
		}
	}
}
