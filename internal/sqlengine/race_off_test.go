//go:build !race

package sqlengine

// raceEnabled reports that this test binary was built with the race
// detector; timing-sensitive gates skip themselves.
const raceEnabled = false
