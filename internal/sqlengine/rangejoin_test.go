package sqlengine

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/relation"
)

// rangeTable builds a self-join target with deliberate duplicates,
// contradictions and a NULL cell in every comparable column.
func rangeTable(t *testing.T, name string) *relation.Table {
	t.Helper()
	csv := "pk,a1,a2\n" +
		"1,5,50\n" +
		"2,3,30\n" +
		"3,5,10\n" +
		"4,,40\n" + // NULL a1: never matches an order predicate on a1
		"5,8,\n" + // NULL a2
		"6,1,60\n" +
		"7,3,35\n"
	tab, err := relation.ReadCSVString(name, csv)
	if err != nil {
		t.Fatalf("csv: %v", err)
	}
	return tab
}

// bruteSelfJoin computes the nested-loop reference result for the
// attribute-ambiguity shape `b1.pk <> b2.pk AND b1.a1 OP b2.a1 AND
// b1.a2 OP2 b2.a2`, in exact nested-loop emission order.
func bruteSelfJoin(tab *relation.Table, op1, op2 string) []string {
	var out []string
	for _, r1 := range tab.Rows {
		for _, r2 := range tab.Rows {
			ne, _ := compareValues("<>", r1[0], r2[0])
			c1, _ := compareValues(op1, r1[1], r2[1])
			c2, _ := compareValues(op2, r1[2], r2[2])
			if ne && c1 && c2 {
				out = append(out, r1[0].Format()+"|"+r2[0].Format())
			}
		}
	}
	return out
}

// resultPairs renders a two-column result for order-sensitive comparison.
func resultPairs(res *relation.Table) []string {
	var out []string
	for i := 0; i < res.NumRows(); i++ {
		out = append(out, res.Cell(i, 0).Format()+"|"+res.Cell(i, 1).Format())
	}
	return out
}

// TestRangeJoinMatchesNestedLoopOrder checks the sort-based range join is
// byte-compatible with the nested loop it replaces: same rows, same
// emission order, for every order operator, with NULLs never matching —
// and that the range path actually engages.
func TestRangeJoinMatchesNestedLoopOrder(t *testing.T) {
	for _, ops := range [][2]string{{">", "<"}, {"<", ">"}, {">=", "<="}, {"<=", ">="}} {
		tab := rangeTable(t, "R")
		e := NewEngine()
		e.Register(tab)
		q := fmt.Sprintf(`SELECT b1.pk, b2.pk FROM R b1, R b2 WHERE b1.pk <> b2.pk AND b1.a1 %s b2.a1 AND b1.a2 %s b2.a2`, ops[0], ops[1])

		ranged := counterDelta("sqlengine.range_joins", func() {
			res, err := e.Query(q)
			if err != nil {
				t.Fatalf("ops %v: %v", ops, err)
			}
			got := resultPairs(res)
			want := bruteSelfJoin(tab, ops[0], ops[1])
			if strings.Join(got, ",") != strings.Join(want, ",") {
				t.Errorf("ops %v:\n got  %v\n want %v", ops, got, want)
			}
		})
		if ranged != 1 {
			t.Errorf("ops %v: range_joins delta = %d, want 1 (range path not taken)", ops, ranged)
		}
	}
}

// TestRangeJoinLimitShortCircuits checks errLimitReached propagates out of
// the range-join emit path: a LIMIT k query returns exactly the first k
// rows the nested loop would have emitted.
func TestRangeJoinLimitShortCircuits(t *testing.T) {
	tab := rangeTable(t, "R")
	e := NewEngine()
	e.Register(tab)
	want := bruteSelfJoin(tab, ">", "<")
	if len(want) < 3 {
		t.Fatalf("fixture too small: %d reference rows", len(want))
	}
	const limit = 2
	res, err := e.Query(fmt.Sprintf(`SELECT b1.pk, b2.pk FROM R b1, R b2 WHERE b1.pk <> b2.pk AND b1.a1 > b2.a1 AND b1.a2 < b2.a2 LIMIT %d`, limit))
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	got := resultPairs(res)
	if strings.Join(got, ",") != strings.Join(want[:limit], ",") {
		t.Errorf("LIMIT %d:\n got  %v\n want %v", limit, got, want[:limit])
	}
}

// TestRangeJoinReusesSortedIndex checks the second identical range query
// hits the shared sorted index instead of rebuilding it.
func TestRangeJoinReusesSortedIndex(t *testing.T) {
	e := NewEngine()
	e.Register(rangeTable(t, "R"))
	const q = `SELECT b1.pk, b2.pk FROM R b1, R b2 WHERE b1.pk <> b2.pk AND b1.a1 > b2.a1`
	run := func() {
		if _, err := e.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	if builds := counterDelta("sqlengine.index_builds", run); builds != 1 {
		t.Errorf("first run index builds = %d, want 1", builds)
	}
	if hits := counterDelta("sqlengine.index_hits", run); hits != 1 {
		t.Errorf("second run index hits = %d, want 1", hits)
	}
}

// TestRangeJoinSkippedWithEquiConjunct checks the planner prefers the hash
// join when an equality conjunct exists: the order conjunct is then a
// post-filter, not a range driver.
func TestRangeJoinSkippedWithEquiConjunct(t *testing.T) {
	e := NewEngine()
	e.Register(rangeTable(t, "R"))
	ranged := counterDelta("sqlengine.range_joins", func() {
		if _, err := e.Query(`SELECT b1.pk FROM R b1, R b2 WHERE b1.a1 = b2.a1 AND b1.a2 > b2.a2`); err != nil {
			t.Fatal(err)
		}
	})
	if ranged != 0 {
		t.Errorf("range_joins delta = %d, want 0 (hash join must win)", ranged)
	}
}

// TestFilterSideNullPadding is the regression test for the pushed-down
// side filter's combined buffer: cells of the other side must read as SQL
// NULL (relation.Null), not arbitrary garbage, while the filter runs. The
// probe evaluator stands in for a compiled predicate and inspects the
// whole buffer.
func TestFilterSideNullPadding(t *testing.T) {
	rows := []relation.Row{
		{relation.Int(1), relation.Int(10)},
		{relation.Int(2), relation.Int(20)},
	}
	const total, offset, width = 5, 3, 2 // right side of a 3+2 join
	probe := &evaluator{
		eval: func(combined []relation.Value) (relation.Value, error) {
			if len(combined) != total {
				return relation.Null, fmt.Errorf("combined width = %d, want %d", len(combined), total)
			}
			for i := 0; i < offset; i++ {
				if !combined[i].IsNull() {
					return relation.Null, fmt.Errorf("off-side cell %d = %v, want NULL", i, combined[i])
				}
			}
			return relation.Bool(combined[offset+1].AsInt() > 10), nil
		},
	}
	got, err := filterSide(rows, probe, total, offset, width)
	if err != nil {
		t.Fatalf("filterSide: %v", err)
	}
	if len(got) != 1 || got[0][1].AsInt() != 20 {
		t.Errorf("filtered rows = %v, want just the v=20 row", got)
	}
}
