package sqlengine

import (
	"strings"

	"repro/internal/relation"
)

// plan is a fully prepared statement: the parsed AST, the resolved FROM
// binding, and every compiled artifact whose construction does not depend
// on the rows being scanned — projections, ORDER BY evaluators, pushed-down
// side filters and the join strategy. Plans are immutable once built and
// safe for concurrent execution; all per-run state (combined buffers,
// DISTINCT sets, projection arenas) lives in the executor.
type plan struct {
	stmt      *SelectStmt
	b         *binding
	sources   []*relation.Table
	tableKeys []string // lowercased FROM table names, for cache invalidation
	agg       bool     // grouping path; its projections compile per run

	projs      []*evaluator
	names      []string
	orderEvals []*evaluator

	scanFilter *evaluator // single-table WHERE (nil when absent)
	join       *joinPlan  // binary FROM (nil otherwise)
	batch      *batchPlan // columnar program (nil: row-at-a-time fallback)
}

// references reports whether the plan reads the named (lowercased) table.
func (p *plan) references(name string) bool {
	for _, k := range p.tableKeys {
		if k == name {
			return true
		}
	}
	return false
}

// validFor reports whether the plan was compiled against exactly the
// tables snap registers: every FROM source must still be the same
// *relation.Table pointer. This is the plan cache's correctness gate under
// concurrent Register — a cached plan may have been built against a
// replaced registration (or raced back into the cache after eviction), and
// revalidating at lookup guarantees a stale plan can never serve rows the
// reader's snapshot does not contain.
func (p *plan) validFor(snap *registry) bool {
	for i, k := range p.tableKeys {
		if t, ok := snap.tables[k]; !ok || t != p.sources[i] {
			return false
		}
	}
	return true
}

// colCmp is one cross-side column comparison `left[li] op right[ri]`,
// checked directly on the raw side rows — no combined-row copy and no
// evaluator indirection. compareValues gives it exactly the semantics the
// compiled predicate would have (a NULL operand is false).
type colCmp struct {
	op string
	li int // combined-row index on the left side
	ri int // right-local column index
}

// joinPlan is the compiled strategy for a binary join: single-side
// conjuncts become pushed-down filters, cross-side equalities drive a hash
// join over a shared index, a cross-side order comparison can drive a
// sort-based range join, and whatever remains is the residual predicate
// evaluated over the combined row.
type joinPlan struct {
	nL, nR      int
	leftFilter  *evaluator // pushed-down conjuncts (nil when none)
	rightFilter *evaluator
	hashL       []int    // cross-side equality columns (combined left index)
	hashR       []int    // … right-local index
	cmps        []colCmp // cross-side column comparisons, incl. the driver
	residual    *evaluator
	driver      int // cmps index driving the range join; -1 when none

	// Raw conjunct classification, kept for the batch compiler: the
	// vectorizer re-types each side's conjuncts against the column
	// vectors instead of reusing the compiled evaluators.
	leftExprs     []Expr
	rightExprs    []Expr
	residualExprs []Expr
}

// prepare resolves SQL text through the plan cache: a hit that survives
// snapshot revalidation skips parsing and compilation entirely, a miss (or
// a hit compiled against a replaced registration) parses, plans against
// the query's snapshot and caches. Parse and bind errors are not cached —
// a table registered later may make the same text valid. The snapshot is
// loaded once here and pinned into the plan's sources, so everything the
// execution reads afterwards is consistent with one registry view.
func (e *Engine) prepare(sql string) (*plan, error) {
	snap := e.snapshot()
	if p, ok := e.plans.get(sql); ok && p.validFor(snap) {
		met.planCacheHits.Inc()
		return p, nil
	}
	met.planCacheMisses.Inc()
	stmt, err := timedParse(sql)
	if err != nil {
		return nil, err
	}
	p, err := e.buildPlan(snap, stmt)
	if err != nil {
		return nil, err
	}
	e.plans.put(sql, p)
	return p, nil
}

// buildPlan binds and compiles a statement against one registry snapshot
// into an immutable plan.
func (e *Engine) buildPlan(snap *registry, stmt *SelectStmt) (*plan, error) {
	b, sources, err := bind(snap, stmt)
	if err != nil {
		return nil, err
	}
	p := &plan{stmt: stmt, b: b, sources: sources}
	for _, tr := range stmt.From {
		p.tableKeys = append(p.tableKeys, strings.ToLower(tr.Table))
	}
	p.agg = isAggregateQuery(stmt)
	if !p.agg {
		// Aggregate projections contain aggregate calls the scalar
		// compiler rejects; the grouping path compiles its own.
		if p.projs, p.names, err = compileProjections(stmt, b); err != nil {
			return nil, err
		}
		for _, o := range stmt.OrderBy {
			ev, err := compile(o.Expr, b)
			if err != nil {
				return nil, err
			}
			p.orderEvals = append(p.orderEvals, ev)
		}
	}
	switch len(sources) {
	case 1:
		if stmt.Where != nil {
			if p.scanFilter, err = compile(stmt.Where, b); err != nil {
				return nil, err
			}
		}
	case 2:
		if p.join, err = buildJoinPlan(stmt, b, sources); err != nil {
			return nil, err
		}
	}
	p.batch = compileBatch(stmt, b, sources, p)
	return p, nil
}

// buildJoinPlan classifies the WHERE conjuncts of a binary join once, at
// plan time: equality conjuncts across sides feed the hash join, other
// single-column cross comparisons become direct colCmp checks (the first
// order comparison among them may drive the range join), single-side
// conjuncts compile into pushed-down filters, and the rest conjoins into
// the residual predicate.
func buildJoinPlan(stmt *SelectStmt, b *binding, sources []*relation.Table) (*joinPlan, error) {
	jp := &joinPlan{nL: sources[0].NumCols(), nR: sources[1].NumCols(), driver: -1}
	var leftPred, rightPred, crossPred []Expr
	for _, c := range conjuncts(stmt.Where) {
		if li, ri, ok := equiJoinCols(c, b); ok {
			jp.hashL = append(jp.hashL, li)
			jp.hashR = append(jp.hashR, ri)
			continue
		}
		mask, ok := sideOf(c, b)
		if !ok {
			// Let compilation produce the real error.
			if _, err := compile(c, b); err != nil {
				return nil, err
			}
			crossPred = append(crossPred, c)
			continue
		}
		switch mask {
		case 0, 1:
			leftPred = append(leftPred, c)
		case 2:
			rightPred = append(rightPred, c)
		default:
			crossPred = append(crossPred, c)
		}
	}

	var residual []Expr
	for _, c := range crossPred {
		if cc, ok := colCmpJoin(c, b); ok {
			jp.cmps = append(jp.cmps, cc)
			continue
		}
		residual = append(residual, c)
	}
	jp.leftExprs, jp.rightExprs, jp.residualExprs = leftPred, rightPred, residual

	var err error
	if len(leftPred) > 0 {
		if jp.leftFilter, err = compile(conjoin(leftPred), b); err != nil {
			return nil, err
		}
	}
	if len(rightPred) > 0 {
		if jp.rightFilter, err = compile(conjoin(rightPred), b); err != nil {
			return nil, err
		}
	}
	if len(residual) > 0 {
		if jp.residual, err = compile(conjoin(residual), b); err != nil {
			return nil, err
		}
	}

	// Range driver: only worth it when no equality conjunct can drive a
	// hash join. Pick the first order comparison whose column kinds sort
	// consistently under Value.Compare.
	if len(jp.hashL) == 0 {
		for i, cc := range jp.cmps {
			if !orderOp(cc.op) {
				continue
			}
			lk := sources[0].Schema[cc.li].Kind
			rk := sources[1].Schema[cc.ri].Kind
			if sortableKinds(lk, rk) {
				jp.driver = i
				break
			}
		}
	}
	return jp, nil
}

// colCmpJoin extracts a direct column comparison when e is `a OP b` with
// one plain column per side. Comparisons written right-to-left are
// mirrored so the left operand always comes from the left side.
func colCmpJoin(e Expr, b *binding) (colCmp, bool) {
	be, ok := e.(*BinaryExpr)
	if !ok {
		return colCmp{}, false
	}
	switch be.Op {
	case "=", "<>", "<", ">", "<=", ">=":
	default:
		return colCmp{}, false
	}
	lc, ok1 := be.Left.(*ColumnRef)
	rc, ok2 := be.Right.(*ColumnRef)
	if !ok1 || !ok2 {
		return colCmp{}, false
	}
	li, _, err1 := b.resolve(lc)
	ri, _, err2 := b.resolve(rc)
	if err1 != nil || err2 != nil {
		return colCmp{}, false
	}
	boundary := b.offsets[1]
	switch {
	case li < boundary && ri >= boundary:
		return colCmp{op: be.Op, li: li, ri: ri - boundary}, true
	case ri < boundary && li >= boundary:
		return colCmp{op: mirrorOp(be.Op), li: ri, ri: li - boundary}, true
	default:
		return colCmp{}, false
	}
}

// mirrorOp swaps the operand order of a comparison: b OP a == a mirror(OP) b.
func mirrorOp(op string) string {
	switch op {
	case "<":
		return ">"
	case ">":
		return "<"
	case "<=":
		return ">="
	case ">=":
		return "<="
	default:
		return op // = and <> are symmetric
	}
}

// orderOp reports whether op is an ordering comparison.
func orderOp(op string) bool {
	switch op {
	case "<", ">", "<=", ">=":
		return true
	default:
		return false
	}
}

// sortableKinds reports whether two column kinds compare under a total
// order usable by a sorted index: the same ordered kind, or both numeric
// (int and float compare numerically).
func sortableKinds(a, b relation.Kind) bool {
	if a.Numeric() && b.Numeric() {
		return true
	}
	return a == b && a.Ordered()
}

// runJoin executes a prepared binary join: pushed-down filters first, then
// the hash, range or nested-loop pairing, with direct column comparisons
// checked on the raw side rows before any combined-row copy is paid.
func (e *Engine) runJoin(p *plan, sink rowSink) error {
	jp := p.join
	left, right := p.sources[0], p.sources[1]
	nL, total := jp.nL, jp.nL+jp.nR
	// Both join inputs are read in full (side filters and the index build
	// consume their tables up front), so account them at entry.
	met.rowsScanned.Add(int64(len(left.Rows) + len(right.Rows)))

	leftRows, err := filterSide(left.Rows, jp.leftFilter, total, 0, jp.nL)
	if err != nil {
		return err
	}
	rightRows, err := filterSide(right.Rows, jp.rightFilter, total, nL, jp.nR)
	if err != nil {
		return err
	}

	// The combined buffer is reused across emits; the sink copies if it
	// retains rows.
	combined := make([]relation.Value, total)
	emit := func(l, r relation.Row) error {
		copy(combined, l)
		copy(combined[nL:], r)
		if jp.residual != nil {
			v, err := jp.residual.eval(combined)
			if err != nil {
				return err
			}
			ok, err := truthy(v)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
		return sink(combined)
	}
	pair := func(l, r relation.Row) error {
		for _, cc := range jp.cmps {
			ok, err := compareValues(cc.op, l[cc.li], r[cc.ri])
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
		return emit(l, r)
	}

	if len(jp.hashL) > 0 {
		// Hash join: build on the right side. With no pushed-down right
		// filter the build is shared across the query stream through the
		// engine's index cache; otherwise it is local to this run.
		var index map[string][]relation.Row
		if jp.rightFilter == nil {
			index = e.indexes.forTable(p.tableKeys[1], right).hashIndex(jp.hashR)
		} else {
			index = buildHashIndex(rightRows, jp.hashR)
		}
		// Probe keys build in a reused scratch buffer; the string([]byte)
		// map lookup is allocation-free, so the steady-state probe costs
		// no allocations at all.
		var key []byte
		for _, l := range leftRows {
			key = key[:0]
			skip := false
			for _, ci := range jp.hashL {
				if l[ci].IsNull() {
					skip = true // NULL never equi-joins
					break
				}
				key = l[ci].AppendHashKey(key)
				key = append(key, 0x1f)
			}
			if skip {
				continue
			}
			for _, r := range index[string(key)] {
				if err := pair(l, r); err != nil {
					return err
				}
			}
		}
		return nil
	}

	if jp.driver >= 0 && jp.rightFilter == nil {
		return e.runRangeJoin(p, leftRows, emit)
	}

	// Nested loop.
	for _, l := range leftRows {
		for _, r := range rightRows {
			if err := pair(l, r); err != nil {
				return err
			}
		}
	}
	return nil
}
