package sqlengine

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/relation"
	"repro/internal/telemetry"
)

// counterDelta samples a telemetry counter around fn.
func counterDelta(name string, fn func()) int64 {
	c := telemetry.Default().Counter(name)
	before := c.Value()
	fn()
	return c.Value() - before
}

// TestPlanCacheHitOnRepeatedQuery checks the second execution of identical
// SQL text is served from the plan cache: one miss, then hits, with the
// cache holding a single plan.
func TestPlanCacheHitOnRepeatedQuery(t *testing.T) {
	e := testEngine(t)
	const q = `SELECT Player FROM D WHERE fouls = 4`

	misses := counterDelta("sqlengine.plan_cache_misses", func() {
		if _, err := e.Query(q); err != nil {
			t.Fatalf("Query: %v", err)
		}
	})
	if misses != 1 {
		t.Errorf("first run misses = %d, want 1", misses)
	}
	hits := counterDelta("sqlengine.plan_cache_hits", func() {
		for i := 0; i < 5; i++ {
			if _, err := e.Query(q); err != nil {
				t.Fatalf("Query: %v", err)
			}
		}
	})
	if hits != 5 {
		t.Errorf("repeat hits = %d, want 5", hits)
	}
	if n := e.plans.size(); n != 1 {
		t.Errorf("plan cache size = %d, want 1", n)
	}
}

// TestRegisterEvictsPlansForReplacedTable proves a cached plan never
// serves rows of a table registration it was compiled against: replacing
// the registration must evict the plan, and the same SQL text must see
// the new rows.
func TestRegisterEvictsPlansForReplacedTable(t *testing.T) {
	mk := func(vals ...int) *relation.Table {
		tab := relation.NewTable("T", relation.Schema{{Name: "v", Kind: relation.KindInt}})
		for _, v := range vals {
			tab.Rows = append(tab.Rows, relation.Row{relation.Int(int64(v))})
		}
		return tab
	}
	e := NewEngine()
	e.Register(mk(1, 2, 3))
	const q = `SELECT v FROM T`
	res, err := e.Query(q)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.NumRows() != 3 {
		t.Fatalf("first registration rows = %d, want 3", res.NumRows())
	}

	e.Register(mk(7))
	if n := e.plans.size(); n != 0 {
		t.Errorf("plan cache size after Register = %d, want 0 (plans over T evicted)", n)
	}
	res, err = e.Query(q)
	if err != nil {
		t.Fatalf("Query after re-register: %v", err)
	}
	if res.NumRows() != 1 || res.Cell(0, 0).AsInt() != 7 {
		t.Errorf("stale plan served old table: got %d rows, first = %v", res.NumRows(), res.Cell(0, 0))
	}

	// Plans over other tables survive the eviction.
	other := relation.NewTable("U", relation.Schema{{Name: "v", Kind: relation.KindInt}})
	other.Rows = append(other.Rows, relation.Row{relation.Int(9)})
	e.Register(other)
	if _, err := e.Query(`SELECT v FROM U`); err != nil {
		t.Fatalf("Query U: %v", err)
	}
	e.Register(mk(5))
	if n := e.plans.size(); n != 1 {
		t.Errorf("plan cache size = %d, want 1 (U's plan must survive T's eviction)", n)
	}
}

// TestRegisterInvalidatesSharedIndexes proves an equi-join after
// re-registration is answered from the new table, not a stale shared hash
// index built over the old one.
func TestRegisterInvalidatesSharedIndexes(t *testing.T) {
	mk := func(csv string) *relation.Table {
		tab, err := relation.ReadCSVString("J", csv)
		if err != nil {
			t.Fatalf("csv: %v", err)
		}
		return tab
	}
	e := NewEngine()
	e.Register(mk("k,v\n1,10\n1,20\n"))
	const q = `SELECT b1.v, b2.v FROM J b1, J b2 WHERE b1.k = b2.k`
	res, err := e.Query(q)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.NumRows() != 4 {
		t.Fatalf("rows = %d, want 4", res.NumRows())
	}

	e.Register(mk("k,v\n1,10\n2,20\n"))
	res, err = e.Query(q)
	if err != nil {
		t.Fatalf("Query after re-register: %v", err)
	}
	if res.NumRows() != 2 {
		t.Errorf("rows after re-register = %d, want 2 (stale index served old buckets)", res.NumRows())
	}
}

// TestNullKeyEquiJoinThroughCachedIndex re-runs a NULL-keyed equi-join so
// the second execution probes the shared cached index, and checks NULL
// keys still never join through it.
func TestNullKeyEquiJoinThroughCachedIndex(t *testing.T) {
	tab, err := relation.ReadCSVString("n", "k,v\n,1\n,2\nx,3\n")
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine()
	e.Register(tab)
	const q = `SELECT b1.v, b2.v FROM n b1, n b2 WHERE b1.k = b2.k`
	for run := 0; run < 2; run++ {
		hits := counterDelta("sqlengine.index_hits", func() {
			res, err := e.Query(q)
			if err != nil {
				t.Fatalf("run %d: %v", run, err)
			}
			if res.NumRows() != 1 {
				t.Errorf("run %d: rows = %d, want 1 (NULL keys must not join)", run, res.NumRows())
			}
		})
		if run == 1 && hits != 1 {
			t.Errorf("second run index hits = %d, want 1 (index not reused)", hits)
		}
	}
}

// TestPlanCacheLRUEviction pins the LRU policy with a tiny cap: the least
// recently used plan is the one evicted.
func TestPlanCacheLRUEviction(t *testing.T) {
	e := testEngine(t)
	e.plans = newPlanCache(2)
	q := func(i int) string { return fmt.Sprintf(`SELECT Player FROM D LIMIT %d`, i) }
	for i := 1; i <= 2; i++ {
		if _, err := e.Query(q(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch q(1) so q(2) becomes least recently used, then insert q(3).
	if _, err := e.Query(q(1)); err != nil {
		t.Fatal(err)
	}
	evictions := counterDelta("sqlengine.plan_cache_evictions", func() {
		if _, err := e.Query(q(3)); err != nil {
			t.Fatal(err)
		}
	})
	if evictions != 1 {
		t.Errorf("evictions = %d, want 1", evictions)
	}
	if _, ok := e.plans.get(q(2)); ok {
		t.Errorf("q(2) still cached, want it evicted as least recently used")
	}
	for _, i := range []int{1, 3} {
		if _, ok := e.plans.get(q(i)); !ok {
			t.Errorf("q(%d) evicted, want it retained", i)
		}
	}
}

// TestConcurrentCachedQueries hammers one engine with an identical query
// mix from many goroutines so plan-cache lookups, shared index builds and
// executions overlap; run under -race in CI. Every goroutine must see the
// same result cardinalities.
func TestConcurrentCachedQueries(t *testing.T) {
	e := testEngine(t)
	queries := []string{
		`SELECT Player FROM D WHERE fouls = 4`,
		`SELECT b1.Player FROM D b1, D b2 WHERE b1.Player = b2.Player AND b1.Team <> b2.Team`,
		`SELECT b1.Player, b2.Player FROM D b1, D b2 WHERE b1.fouls > b2.fouls`,
		`SELECT DISTINCT Team FROM D ORDER BY Team`,
	}
	want := make([]int, len(queries))
	for i, q := range queries {
		res, err := e.Query(q)
		if err != nil {
			t.Fatalf("seed query %d: %v", i, err)
		}
		want[i] = res.NumRows()
	}

	var wg sync.WaitGroup
	errs := make(chan error, 128)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				qi := (g + i) % len(queries)
				res, err := e.Query(queries[qi])
				if err != nil {
					errs <- err
					return
				}
				if res.NumRows() != want[qi] {
					errs <- fmt.Errorf("query %d: rows = %d, want %d", qi, res.NumRows(), want[qi])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
