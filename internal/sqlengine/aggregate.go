package sqlengine

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/relation"
)

// isAggregateQuery reports whether the statement needs the grouping path.
func isAggregateQuery(stmt *SelectStmt) bool {
	if len(stmt.GroupBy) > 0 {
		return true
	}
	for _, item := range stmt.Items {
		if !item.Star && containsAggregate(item.Expr) {
			return true
		}
	}
	return false
}

// aggState accumulates one aggregate over one group.
type aggState struct {
	count   int
	sum     float64
	sumInts bool // all summed inputs were ints
	min     relation.Value
	max     relation.Value
	seen    bool
}

func (a *aggState) add(v relation.Value) error {
	if v.IsNull() {
		return nil
	}
	a.count++
	if v.Kind().Numeric() {
		if !a.seen {
			a.sumInts = v.Kind() == relation.KindInt
		} else if v.Kind() != relation.KindInt {
			a.sumInts = false
		}
		a.sum += v.AsFloat()
	}
	if !a.seen {
		a.min, a.max = v, v
		a.seen = true
		return nil
	}
	if c, err := v.Compare(a.min); err == nil && c < 0 {
		a.min = v
	}
	if c, err := v.Compare(a.max); err == nil && c > 0 {
		a.max = v
	}
	return nil
}

// result renders the final value of the aggregate fn (COUNT(*) is handled
// by the caller from the group's row count).
func (a *aggState) result(fn string) (relation.Value, error) {
	switch fn {
	case "COUNT":
		return relation.Int(int64(a.count)), nil
	case "SUM":
		if a.count == 0 {
			return relation.Null, nil
		}
		if a.sumInts {
			return relation.Int(int64(a.sum)), nil
		}
		return relation.Float(a.sum), nil
	case "AVG":
		if a.count == 0 {
			return relation.Null, nil
		}
		return relation.Float(a.sum / float64(a.count)), nil
	case "MIN":
		return a.min, nil
	case "MAX":
		return a.max, nil
	default:
		return relation.Null, fmt.Errorf("sqlengine: unknown aggregate %q", fn)
	}
}

// aggProjection is one SELECT item in an aggregate query: either a bare
// aggregate call or a plain group expression.
type aggProjection struct {
	agg   *FuncCall  // nil for group expressions
	arg   *evaluator // aggregate argument (nil for COUNT(*))
	group *evaluator // group expression evaluator
	name  string
	kind  relation.Kind
}

// group is one group's accumulated state.
type aggGroup struct {
	key      string
	firstRow []relation.Value
	states   []*aggState
	rows     int
}

// executeAggregate runs the grouping path: GROUP BY keys plus aggregate
// accumulators, one output row per group. Each SELECT item must be either
// a single aggregate call or an expression over the grouping columns (the
// usual SQL restriction, checked loosely by evaluating group expressions
// on the group's first row).
func (e *Engine) executeAggregate(p *plan) (*relation.Table, error) {
	stmt, b := p.stmt, p.b
	// Compile projections.
	var projs []aggProjection
	for i, item := range stmt.Items {
		if item.Star {
			return nil, fmt.Errorf("sqlengine: SELECT * is not valid in aggregate queries")
		}
		if fc, ok := item.Expr.(*FuncCall); ok && fc.IsAggregate() {
			p := aggProjection{agg: fc, name: projectionName(item, i)}
			if !fc.Star {
				ev, err := compile(fc.Args[0], b)
				if err != nil {
					return nil, err
				}
				p.arg = ev
				switch strings.ToUpper(fc.Name) {
				case "COUNT":
					p.kind = relation.KindInt
				case "AVG":
					p.kind = relation.KindFloat
				default:
					p.kind = ev.kind
				}
			} else {
				p.kind = relation.KindInt
			}
			projs = append(projs, p)
			continue
		}
		if containsAggregate(item.Expr) {
			return nil, fmt.Errorf("sqlengine: expressions over aggregates are not supported (%s)", item.Expr)
		}
		ev, err := compile(item.Expr, b)
		if err != nil {
			return nil, err
		}
		projs = append(projs, aggProjection{group: ev, name: projectionName(item, i), kind: ev.kind})
	}

	// Compile grouping keys.
	var keys []*evaluator
	for _, g := range stmt.GroupBy {
		ev, err := compile(g, b)
		if err != nil {
			return nil, err
		}
		keys = append(keys, ev)
	}

	groups := map[string]*aggGroup{}
	var order []string
	var kb strings.Builder
	sink := func(combined []relation.Value) error {
		kb.Reset()
		for _, k := range keys {
			v, err := k.eval(combined)
			if err != nil {
				return err
			}
			kb.WriteString(v.HashKey())
			kb.WriteByte(0x1f)
		}
		key := kb.String()
		g, ok := groups[key]
		if !ok {
			g = &aggGroup{key: key, firstRow: append([]relation.Value{}, combined...)}
			for range projs {
				g.states = append(g.states, &aggState{})
			}
			groups[key] = g
			order = append(order, key)
		}
		g.rows++
		for i, p := range projs {
			if p.arg != nil {
				v, err := p.arg.eval(combined)
				if err != nil {
					return err
				}
				if err := g.states[i].add(v); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := e.planRows(p, sink); err != nil {
		return nil, err
	}
	// A global aggregate over zero rows still yields one row (SQL
	// semantics: COUNT(*) = 0).
	if len(groups) == 0 && len(keys) == 0 {
		g := &aggGroup{key: "", firstRow: make([]relation.Value, totalWidth(b))}
		for range projs {
			g.states = append(g.states, &aggState{})
		}
		groups[""] = g
		order = append(order, "")
	}

	sort.Strings(order)
	out := make([]relation.Row, 0, len(groups))
	for _, key := range order {
		g := groups[key]
		row := make(relation.Row, len(projs))
		for i, p := range projs {
			switch {
			case p.agg != nil && p.agg.Star:
				row[i] = relation.Int(int64(g.rows))
			case p.agg != nil:
				v, err := g.states[i].result(strings.ToUpper(p.agg.Name))
				if err != nil {
					return nil, err
				}
				row[i] = v
			default:
				v, err := p.group.eval(g.firstRow)
				if err != nil {
					return nil, err
				}
				row[i] = v
			}
		}
		out = append(out, row)
	}

	// ORDER BY over output columns (by name) and LIMIT.
	if len(stmt.OrderBy) > 0 {
		names := make([]string, len(projs))
		for i, p := range projs {
			names[i] = p.name
		}
		sort.SliceStable(out, func(a, bI int) bool {
			ka := orderKeysFromProjection(stmt, names, out[a])
			kbv := orderKeysFromProjection(stmt, names, out[bI])
			for j := range ka {
				c, err := ka[j].Compare(kbv[j])
				if err != nil {
					c = strings.Compare(ka[j].Format(), kbv[j].Format())
				}
				if c != 0 {
					if stmt.OrderBy[j].Desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
	}
	if stmt.Limit >= 0 && len(out) > stmt.Limit {
		out = out[:stmt.Limit]
	}

	schema := make(relation.Schema, len(projs))
	for i, p := range projs {
		k := p.kind
		if k == relation.KindNull {
			for _, row := range out {
				k = relation.UnifyKind(k, row[i].Kind())
			}
			if k == relation.KindNull {
				k = relation.KindString
			}
		}
		schema[i] = relation.Column{Name: p.name, Kind: k}
	}
	met.rowsEmitted.Add(int64(len(out)))
	res := relation.NewTable("result", schema)
	res.Rows = out
	return res, nil
}

// totalWidth is the combined-row width of the binding.
func totalWidth(b *binding) int {
	total := 0
	for i := range b.schemas {
		total += len(b.schemas[i])
	}
	return total
}
