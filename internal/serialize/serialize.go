// Package serialize turns tables into the token sequences the metadata
// model consumes, reproducing the prompt design of the paper's Figure 4:
// a schema-only prompt, and a schema+data prompt with either row or column
// serialization, delimited by special tokens.
//
// Numeric cells are bucketed into magnitude tokens rather than spelled out:
// what the data-task model can exploit from numbers is their distribution,
// not their digits, and shared magnitude buckets are exactly the signal
// that lets it pair attributes with similar value domains.
package serialize

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/vocab"
)

// Mode selects the prompt variant.
type Mode uint8

const (
	// SchemaOnly is the schema-task prompt: header plus the attribute pair.
	SchemaOnly Mode = iota
	// DataRows adds up to MaxRows sample rows, serialized row by row.
	DataRows
	// DataColumns adds the same sample serialized column by column.
	DataColumns
)

// String names the mode for reports.
func (m Mode) String() string {
	switch m {
	case SchemaOnly:
		return "schema"
	case DataRows:
		return "data-rows"
	case DataColumns:
		return "data-cols"
	default:
		return "mode?"
	}
}

// Special tokens. <hs>/<he> bracket a header cell, <rs>/<re> a row,
// <cs>/<ce> a column, <a1>/<a2> introduce the candidate attribute pair.
const (
	TokCLS   = "[CLS]"
	TokSEP   = "[SEP]"
	TokHS    = "<hs>"
	TokHE    = "<he>"
	TokRS    = "<rs>"
	TokRE    = "<re>"
	TokCS    = "<cs>"
	TokCE    = "<ce>"
	TokA1    = "<a1>"
	TokA2    = "<a2>"
	TokPad   = "[PAD]"
	TokUnk   = "[UNK]"
	TokEmpty = "<empty>"
)

// SpecialTokens lists every reserved token, PAD first (ID 0 by convention).
func SpecialTokens() []string {
	return []string{TokPad, TokUnk, TokCLS, TokSEP, TokHS, TokHE, TokRS, TokRE, TokCS, TokCE, TokA1, TokA2, TokEmpty}
}

// Config controls prompt construction.
type Config struct {
	Mode Mode
	// MaxRows bounds the serialized sample for the data modes. The paper
	// finds 5 to be the sweet spot.
	MaxRows int
	// MaxCellTokens bounds tokens per serialized cell.
	MaxCellTokens int
}

// DefaultConfig returns the paper's best configuration: data task, row
// serialization, five sample rows.
func DefaultConfig() Config {
	return Config{Mode: DataRows, MaxRows: 5, MaxCellTokens: 3}
}

// Input is one table context plus the candidate attribute pair.
type Input struct {
	Header []string
	Rows   [][]string // formatted cells; may be nil for SchemaOnly
	AttrA  string
	AttrB  string
}

// Prompt serializes the input under the configuration.
func Prompt(cfg Config, in Input) []string {
	if cfg.MaxCellTokens <= 0 {
		cfg.MaxCellTokens = 3
	}
	var out []string
	out = append(out, TokCLS)
	for _, h := range in.Header {
		out = append(out, TokHS)
		out = append(out, headerTokens(h, cfg.MaxCellTokens)...)
		out = append(out, TokHE)
	}

	rows := in.Rows
	if cfg.MaxRows > 0 && len(rows) > cfg.MaxRows {
		rows = rows[:cfg.MaxRows]
	}
	switch cfg.Mode {
	case DataRows:
		for _, row := range rows {
			out = append(out, TokRS)
			for _, cell := range row {
				out = append(out, CellTokens(cell, cfg.MaxCellTokens)...)
			}
			out = append(out, TokRE)
		}
	case DataColumns:
		for c := range in.Header {
			out = append(out, TokCS)
			out = append(out, headerTokens(in.Header[c], cfg.MaxCellTokens)...)
			for _, row := range rows {
				if c < len(row) {
					out = append(out, CellTokens(row[c], cfg.MaxCellTokens)...)
				}
			}
			out = append(out, TokCE)
		}
	}

	out = append(out, TokSEP, TokA1)
	out = append(out, headerTokens(in.AttrA, cfg.MaxCellTokens)...)
	if cfg.Mode != SchemaOnly {
		out = append(out, columnValues(in, in.AttrA, rows, cfg.MaxCellTokens)...)
	}
	out = append(out, TokA2)
	out = append(out, headerTokens(in.AttrB, cfg.MaxCellTokens)...)
	if cfg.Mode != SchemaOnly {
		out = append(out, columnValues(in, in.AttrB, rows, cfg.MaxCellTokens)...)
	}
	if cfg.Mode != SchemaOnly {
		out = append(out, ValueSimilarityToken(in, rows))
	}
	return out
}

// ValueSimilarityToken compares the two candidate columns' value
// distributions and emits a bucketed similarity feature. A bag-pooled
// encoder cannot compare two sub-bags of its own input, so the comparison
// the Data model needs ("do these columns draw from the same value
// domain?") is computed at serialization time — this is the distributional
// signal behind the Data model's recall advantage on acronym headers.
func ValueSimilarityToken(in Input, rows [][]string) string {
	a := columnTokenSet(in, in.AttrA, rows)
	b := columnTokenSet(in, in.AttrB, rows)
	if len(a) == 0 || len(b) == 0 {
		return "<valsim_none>"
	}
	inter, union := 0, len(b)
	for t := range a {
		if b[t] {
			inter++
		} else {
			union++
		}
	}
	j := float64(inter) / float64(union)
	switch {
	case j >= 0.8:
		return "<valsim_high>"
	case j >= 0.4:
		return "<valsim_mid>"
	case j > 0:
		return "<valsim_low>"
	default:
		return "<valsim_zero>"
	}
}

// columnTokenSet collects the bucketed/tokenized value set of a column.
func columnTokenSet(in Input, attr string, rows [][]string) map[string]bool {
	col := -1
	for i, h := range in.Header {
		if strings.EqualFold(h, attr) {
			col = i
			break
		}
	}
	if col < 0 {
		return nil
	}
	out := map[string]bool{}
	for _, row := range rows {
		if col < len(row) {
			for _, t := range CellTokens(row[col], 2) {
				if t != TokEmpty {
					out[t] = true
				}
			}
		}
	}
	return out
}

// columnValues serializes the sampled values of one candidate attribute, so
// the data-task model can compare the pair's value distributions directly.
// This is the value signal behind the Data model's recall advantage.
func columnValues(in Input, attr string, rows [][]string, maxCell int) []string {
	col := -1
	for i, h := range in.Header {
		if strings.EqualFold(h, attr) {
			col = i
			break
		}
	}
	if col < 0 {
		return nil
	}
	var out []string
	for _, row := range rows {
		if col < len(row) {
			out = append(out, CellTokens(row[col], maxCell)...)
		}
	}
	return out
}

// headerTokens normalizes a header into word tokens, capped.
func headerTokens(h string, max int) []string {
	ts := vocab.Tokens(h)
	if len(ts) == 0 {
		return []string{TokEmpty}
	}
	if len(ts) > max {
		ts = ts[:max]
	}
	return ts
}

// CellTokens serializes one cell. Numbers become magnitude-bucket tokens;
// text becomes (capped) word tokens.
func CellTokens(cell string, max int) []string {
	c := strings.TrimSpace(cell)
	if c == "" {
		return []string{TokEmpty}
	}
	if f, err := strconv.ParseFloat(c, 64); err == nil {
		return []string{NumberToken(f)}
	}
	ts := vocab.Tokens(c)
	if len(ts) == 0 {
		return []string{TokEmpty}
	}
	if len(ts) > max {
		ts = ts[:max]
	}
	return ts
}

// NumberToken buckets a number by sign, integerness and decade magnitude:
// e.g. 56 -> "<num+i1>", 0.47 -> "<num+f-1>", -3200 -> "<num-i3>".
func NumberToken(f float64) string {
	var b strings.Builder
	b.WriteString("<num")
	if f < 0 {
		b.WriteByte('-')
		f = -f
	} else {
		b.WriteByte('+')
	}
	if f == math.Trunc(f) {
		b.WriteByte('i')
	} else {
		b.WriteByte('f')
	}
	var mag int
	switch {
	case f == 0:
		mag = 0
	default:
		mag = int(math.Floor(math.Log10(f)))
		if mag < -3 {
			mag = -3
		}
		if mag > 9 {
			mag = 9
		}
	}
	b.WriteString(strconv.Itoa(mag))
	b.WriteByte('>')
	return b.String()
}

// Tokenizer maps tokens to dense IDs. ID 0 is PAD, ID 1 is UNK; special
// tokens are always present.
type Tokenizer struct {
	idx   map[string]int
	words []string
	// frozen stops Fit from adding words, so evaluation cannot grow the
	// vocabulary.
	frozen bool
}

// NewTokenizer returns a tokenizer pre-loaded with the special tokens.
func NewTokenizer() *Tokenizer {
	t := &Tokenizer{idx: make(map[string]int)}
	for _, s := range SpecialTokens() {
		t.add(s)
	}
	return t
}

func (t *Tokenizer) add(w string) int {
	if id, ok := t.idx[w]; ok {
		return id
	}
	id := len(t.words)
	t.idx[w] = id
	t.words = append(t.words, w)
	return id
}

// Fit adds every token to the vocabulary (no-op when frozen).
func (t *Tokenizer) Fit(tokens []string) {
	if t.frozen {
		return
	}
	for _, w := range tokens {
		t.add(w)
	}
}

// Freeze stops vocabulary growth; unknown tokens map to UNK afterwards.
func (t *Tokenizer) Freeze() { t.frozen = true }

// Size returns the vocabulary size.
func (t *Tokenizer) Size() int { return len(t.words) }

// Encode maps tokens to IDs, using UNK for out-of-vocabulary tokens.
func (t *Tokenizer) Encode(tokens []string) []int {
	out := make([]int, len(tokens))
	unk := t.idx[TokUnk]
	for i, w := range tokens {
		if id, ok := t.idx[w]; ok {
			out[i] = id
		} else {
			out[i] = unk
		}
	}
	return out
}

// Decode maps IDs back to tokens (for debugging).
func (t *Tokenizer) Decode(ids []int) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		if id >= 0 && id < len(t.words) {
			out[i] = t.words[id]
		} else {
			out[i] = TokUnk
		}
	}
	return out
}

// ID returns the ID for a token and whether it is known.
func (t *Tokenizer) ID(w string) (int, bool) {
	id, ok := t.idx[w]
	return id, ok
}

// Words returns the vocabulary in ID order (index == token ID). The slice
// is a copy; it is the serializable form of the tokenizer for artifacts.
func (t *Tokenizer) Words() []string {
	out := make([]string, len(t.words))
	copy(out, t.words)
	return out
}

// TokenizerFromWords rebuilds a frozen tokenizer from a Words() snapshot.
// The word list must be duplicate-free and start with the special tokens
// in their canonical order (PAD at ID 0), which is what Words of any
// tokenizer built through NewTokenizer yields.
func TokenizerFromWords(words []string) (*Tokenizer, error) {
	specials := SpecialTokens()
	if len(words) < len(specials) {
		return nil, fmt.Errorf("serialize: tokenizer snapshot has %d words, want at least the %d special tokens",
			len(words), len(specials))
	}
	for i, s := range specials {
		if words[i] != s {
			return nil, fmt.Errorf("serialize: tokenizer snapshot word %d is %q, want special token %q", i, words[i], s)
		}
	}
	t := &Tokenizer{idx: make(map[string]int, len(words))}
	for _, w := range words {
		if _, ok := t.idx[w]; ok {
			return nil, fmt.Errorf("serialize: tokenizer snapshot has duplicate word %q", w)
		}
		t.add(w)
	}
	t.Freeze()
	return t, nil
}
