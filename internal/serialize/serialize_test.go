package serialize

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

var basketInput = Input{
	Header: []string{"Player", "Team", "FG%", "3FG%"},
	Rows: [][]string{
		{"Carter", "LA", "56", "47"},
		{"Smith", "SF", "55", "30"},
		{"Carter", "SF", "50", "51"},
	},
	AttrA: "FG%",
	AttrB: "3FG%",
}

func TestSchemaPromptGolden(t *testing.T) {
	got := Prompt(Config{Mode: SchemaOnly}, basketInput)
	want := []string{
		"[CLS]",
		"<hs>", "player", "<he>",
		"<hs>", "team", "<he>",
		"<hs>", "fg", "pct", "<he>",
		"<hs>", "3fg", "pct", "<he>",
		"[SEP]",
		"<a1>", "fg", "pct",
		"<a2>", "3fg", "pct",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("schema prompt =\n%v\nwant\n%v", got, want)
	}
}

func TestDataRowsPromptStructure(t *testing.T) {
	got := Prompt(Config{Mode: DataRows, MaxRows: 2}, basketInput)
	joined := strings.Join(got, " ")
	if strings.Count(joined, TokRS) != 2 || strings.Count(joined, TokRE) != 2 {
		t.Errorf("row markers wrong: %s", joined)
	}
	// Numeric cells must be bucketed, not verbatim.
	if strings.Contains(joined, " 56 ") {
		t.Errorf("raw number leaked into prompt: %s", joined)
	}
	if !strings.Contains(joined, "<num+i1>") {
		t.Errorf("missing magnitude bucket for 56: %s", joined)
	}
	if !strings.Contains(joined, "carter") {
		t.Errorf("missing categorical token: %s", joined)
	}
}

func TestDataColumnsPromptStructure(t *testing.T) {
	got := Prompt(Config{Mode: DataColumns, MaxRows: 3}, basketInput)
	joined := strings.Join(got, " ")
	if strings.Count(joined, TokCS) != 4 || strings.Count(joined, TokCE) != 4 {
		t.Errorf("column markers wrong: %s", joined)
	}
	// Column serialization groups a header with its values.
	idx := strings.Index(joined, "<cs> player")
	if idx < 0 {
		t.Fatalf("player column missing: %s", joined)
	}
	seg := joined[idx : strings.Index(joined[idx:], TokCE)+idx]
	if !strings.Contains(seg, "carter") || !strings.Contains(seg, "smith") {
		t.Errorf("player column lacks values: %s", seg)
	}
}

func TestMaxRowsRespected(t *testing.T) {
	got := Prompt(Config{Mode: DataRows, MaxRows: 1}, basketInput)
	if n := strings.Count(strings.Join(got, " "), TokRS); n != 1 {
		t.Errorf("rows serialized = %d, want 1", n)
	}
}

func TestEmptyAndJunkCells(t *testing.T) {
	in := Input{
		Header: []string{"A12", ""},
		Rows:   [][]string{{"", "%%%"}},
		AttrA:  "A12",
		AttrB:  "",
	}
	got := Prompt(Config{Mode: DataRows, MaxRows: 1}, in)
	joined := strings.Join(got, " ")
	if !strings.Contains(joined, TokEmpty) {
		t.Errorf("empty cells not marked: %s", joined)
	}
}

func TestNumberToken(t *testing.T) {
	cases := map[float64]string{
		56:      "<num+i1>",
		0.47:    "<num+f-1>",
		-3200:   "<num-i3>",
		0:       "<num+i0>",
		1e12:    "<num+i9>",  // clamped high
		0.00001: "<num+f-3>", // clamped low
		7:       "<num+i0>",
		123.5:   "<num+f2>",
	}
	for in, want := range cases {
		if got := NumberToken(in); got != want {
			t.Errorf("NumberToken(%g) = %q, want %q", in, got, want)
		}
	}
}

func TestCellTokensCap(t *testing.T) {
	got := CellTokens("one two three four five", 3)
	if len(got) != 3 {
		t.Errorf("cap not applied: %v", got)
	}
}

func TestTokenizerBasics(t *testing.T) {
	tok := NewTokenizer()
	if id, ok := tok.ID(TokPad); !ok || id != 0 {
		t.Errorf("PAD id = %d/%v, want 0", id, ok)
	}
	tok.Fit([]string{"alpha", "beta", "alpha"})
	n := tok.Size()
	ids := tok.Encode([]string{"alpha", "beta", "gamma"})
	unk, _ := tok.ID(TokUnk)
	if ids[2] != unk {
		t.Errorf("unknown token id = %d, want UNK %d", ids[2], unk)
	}
	if ids[0] == ids[1] {
		t.Error("distinct tokens share an id")
	}
	dec := tok.Decode(ids[:2])
	if dec[0] != "alpha" || dec[1] != "beta" {
		t.Errorf("decode = %v", dec)
	}
	tok.Freeze()
	tok.Fit([]string{"delta"})
	if tok.Size() != n {
		t.Error("Fit grew a frozen tokenizer")
	}
}

func TestTokenizerDecodeOutOfRange(t *testing.T) {
	tok := NewTokenizer()
	got := tok.Decode([]int{-1, 99999})
	if got[0] != TokUnk || got[1] != TokUnk {
		t.Errorf("out-of-range decode = %v", got)
	}
}

// Property: encoding then decoding fitted tokens is the identity.
func TestTokenizerRoundtripProperty(t *testing.T) {
	f := func(words []string) bool {
		tok := NewTokenizer()
		clean := make([]string, 0, len(words))
		for _, w := range words {
			if w != "" {
				clean = append(clean, w)
			}
		}
		tok.Fit(clean)
		dec := tok.Decode(tok.Encode(clean))
		return reflect.DeepEqual(dec, clean)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: prompts always start with CLS and contain exactly one SEP/A1/A2
// marker triple in order.
func TestPromptInvariants(t *testing.T) {
	for _, cfg := range []Config{
		{Mode: SchemaOnly},
		{Mode: DataRows, MaxRows: 5},
		{Mode: DataColumns, MaxRows: 5},
	} {
		got := Prompt(cfg, basketInput)
		if got[0] != TokCLS {
			t.Errorf("%s: prompt does not start with CLS", cfg.Mode)
		}
		joined := strings.Join(got, " ")
		sep := strings.Index(joined, TokSEP)
		a1 := strings.Index(joined, TokA1)
		a2 := strings.Index(joined, TokA2)
		if sep < 0 || a1 < sep || a2 < a1 {
			t.Errorf("%s: marker order broken: %s", cfg.Mode, joined)
		}
		if strings.Count(joined, TokSEP) != 1 {
			t.Errorf("%s: SEP count != 1", cfg.Mode)
		}
	}
}

func TestValueSimilarityToken(t *testing.T) {
	mk := func(valsA, valsB []string) string {
		in := Input{Header: []string{"a", "b"}, AttrA: "a", AttrB: "b"}
		rows := make([][]string, 0, len(valsA))
		for i := range valsA {
			rows = append(rows, []string{valsA[i], valsB[i]})
		}
		in.Rows = rows
		return ValueSimilarityToken(in, rows)
	}
	// Same magnitude buckets -> high.
	if got := mk([]string{"56", "55", "50"}, []string{"47", "30", "51"}); got != "<valsim_high>" {
		t.Errorf("same-decade ints = %s, want high", got)
	}
	// Disjoint buckets -> zero.
	if got := mk([]string{"5", "6", "4"}, []string{"50000", "60000", "40000"}); got != "<valsim_zero>" {
		t.Errorf("distant ints = %s, want zero", got)
	}
	// Shared categorical vocabulary -> high.
	if got := mk([]string{"red", "blue", "red"}, []string{"blue", "red", "blue"}); got != "<valsim_high>" {
		t.Errorf("shared categories = %s, want high", got)
	}
	// Disjoint categorical vocabulary -> zero.
	if got := mk([]string{"red", "blue", "red"}, []string{"oak", "pine", "elm"}); got != "<valsim_zero>" {
		t.Errorf("disjoint categories = %s, want zero", got)
	}
	// Missing column -> none.
	in := Input{Header: []string{"a"}, AttrA: "a", AttrB: "missing"}
	if got := ValueSimilarityToken(in, [][]string{{"1"}}); got != "<valsim_none>" {
		t.Errorf("missing column = %s, want none", got)
	}
}

func TestDataPromptBindsPairValues(t *testing.T) {
	// The <a1>/<a2> segments must carry the candidate columns' values.
	got := Prompt(Config{Mode: DataRows, MaxRows: 3}, basketInput)
	joined := strings.Join(got, " ")
	a1 := strings.Index(joined, TokA1)
	a2 := strings.Index(joined, TokA2)
	if a1 < 0 || a2 < a1 {
		t.Fatalf("marker order: %s", joined)
	}
	seg1 := joined[a1:a2]
	// FG% column values 56, 55, 50 bucket to <num+i1>.
	if strings.Count(seg1, "<num+i1>") != 3 {
		t.Errorf("a1 segment lacks bound values: %s", seg1)
	}
	// And the prompt ends with a similarity feature.
	if !strings.Contains(joined, "<valsim_") {
		t.Errorf("missing valsim feature: %s", joined)
	}
}
