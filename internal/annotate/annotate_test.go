package annotate

import (
	"reflect"
	"testing"

	"repro/internal/corpus"
	"repro/internal/kb"
	"repro/internal/vocab"
)

// fullKB builds a noise-free knowledge base so annotator behaviour is
// predictable in tests.
func fullKB() *kb.KB {
	return kb.Build(vocab.Default(), kb.Options{Seed: 1, DropRate: 0, GenericRate: 0})
}

func TestIsAAnnotatorFindsShooting(t *testing.T) {
	anns := All(fullKB())
	var isa Annotator
	for _, a := range anns {
		if a.Name() == "isA" {
			isa = a
		}
	}
	labels := isa.Annotate("field_goal_pct", "three_point_pct")
	found := false
	for _, l := range labels {
		if l == "shooting" {
			found = true
		}
	}
	if !found {
		t.Errorf("isA(field_goal_pct, three_point_pct) = %v, want shooting", labels)
	}
}

func TestAnnotatorsAbstainOnMeaninglessNames(t *testing.T) {
	for _, a := range All(fullKB()) {
		if got := a.Annotate("A12", "B7"); len(got) != 0 {
			t.Errorf("%s(A12, B7) = %v, want abstain", a.Name(), got)
		}
	}
}

func TestAnnotatorsAbstainOnUnrelatedPair(t *testing.T) {
	label, votes := Vote(All(fullKB()), "fouls", "humidity")
	if label != "" || votes != 0 {
		t.Errorf("Vote(fouls, humidity) = %q/%d, want abstain", label, votes)
	}
}

func TestWikiAnnotator(t *testing.T) {
	anns := All(fullKB())
	var wiki Annotator
	for _, a := range anns {
		if a.Name() == "wiki" {
			wiki = a
		}
	}
	// fatality_rate and mortality_rate share the "mortality rate" page.
	labels := wiki.Annotate("fatality_rate", "mortality_rate")
	found := false
	for _, l := range labels {
		if l == "mortality rate" {
			found = true
		}
	}
	if !found {
		t.Errorf("wiki(fatality_rate, mortality_rate) = %v, want mortality rate", labels)
	}
}

func TestLCSAnnotator(t *testing.T) {
	anns := All(fullKB())
	var lcs Annotator
	for _, a := range anns {
		if a.Name() == "lcs" {
			lcs = a
		}
	}
	cases := []struct {
		a, b, want string
	}{
		{"sepal_length", "sepal_width", "sepal"},
		{"free_sulfur_dioxide", "total_sulfur_dioxide", "sulfur dioxide"},
		{"capital_gain", "capital_loss", "capital"},
	}
	for _, tc := range cases {
		got := lcs.Annotate(tc.a, tc.b)
		if len(got) != 1 || got[0] != tc.want {
			t.Errorf("lcs(%s, %s) = %v, want [%s]", tc.a, tc.b, got, tc.want)
		}
	}
	// Substrings that are not words are filtered.
	if got := lcs.Annotate("xqzfoo1", "yqzfoo2"); len(got) != 0 {
		t.Errorf("lcs on junk = %v, want abstain", got)
	}
}

func TestLongestCommonSubstring(t *testing.T) {
	cases := []struct{ a, b, want string }{
		{"abcdef", "zcdem", "cde"},
		{"same", "same", "same"},
		{"", "x", ""},
		{"abc", "xyz", ""},
	}
	for _, tc := range cases {
		if got := longestCommonSubstring(tc.a, tc.b); got != tc.want {
			t.Errorf("lcs(%q, %q) = %q, want %q", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestStopwordsFiltered(t *testing.T) {
	// With maximal generic noise, intersections of unrelated pairs would be
	// full of "value"/"statistic"; the stopword filter must drop them.
	noisy := kb.Build(vocab.Default(), kb.Options{Seed: 3, DropRate: 0, GenericRate: 1})
	anns := All(noisy)
	label, _ := Vote(anns, "fouls", "humidity")
	if Stopword(label) && label != "" {
		t.Errorf("stopword label %q leaked through", label)
	}
	if !Stopword("value") || !Stopword("Statistic") || Stopword("shooting") {
		t.Error("Stopword misclassifies")
	}
}

func TestVotePrefersMostSupportedLabel(t *testing.T) {
	label, votes := Vote(All(fullKB()), "field_goal_pct", "three_point_pct")
	if label != "shooting" && label != "scoring" {
		t.Errorf("Vote(field_goal_pct, three_point_pct) = %q (%d votes)", label, votes)
	}
	if votes < 2 {
		t.Errorf("votes = %d, want >= 2 (multiple annotators agree)", votes)
	}
}

func TestLabelTable(t *testing.T) {
	header := []string{"Player", "Team", "field_goal_pct", "three_point_pct", "fouls"}
	exs := LabelTable(All(fullKB()), "basket", header, nil)
	if len(exs) != 10 { // C(5,2)
		t.Fatalf("examples = %d, want 10", len(exs))
	}
	var positive, negative int
	for _, ex := range exs {
		if ex.AttrA == "field_goal_pct" && ex.AttrB == "three_point_pct" && ex.Label == "" {
			t.Error("field_goal_pct/three_point_pct pair not labeled")
		}
		if ex.Label != "" {
			positive++
		} else {
			negative++
		}
	}
	if positive == 0 || negative == 0 {
		t.Errorf("positive=%d negative=%d, want both > 0", positive, negative)
	}
}

func TestNoisyAnnotatorsHaveLowerRecallThanGroundTruth(t *testing.T) {
	// With the default noisy KB, annotators must miss some truly ambiguous
	// pairs (this recall gap is what the trained model closes).
	noisy := All(kb.BuildDefault())
	v := vocab.Default()
	missed, total := 0, 0
	for i := range v.Concepts {
		for j := i + 1; j < len(v.Concepts); j++ {
			a, b := v.Concepts[i], v.Concepts[j]
			if len(vocab.SharedLabels(a, b)) == 0 {
				continue
			}
			total++
			if label, _ := Vote(noisy, a.Surface[0], b.Surface[0]); label == "" {
				missed++
			}
		}
	}
	if total == 0 {
		t.Fatal("no ambiguous ground-truth pairs")
	}
	if missed == 0 {
		t.Error("annotators have perfect recall; weak supervision premise broken")
	}
	if missed == total {
		t.Error("annotators found nothing; weak supervision impossible")
	}
	t.Logf("annotator recall gap: missed %d of %d ambiguous pairs", missed, total)
}

// TestLabelTablesParallelMatchesSequential checks the fan-out helper:
// labelling a corpus across workers returns exactly the per-table output
// of a sequential LabelTable loop, in table order.
func TestLabelTablesParallelMatchesSequential(t *testing.T) {
	annotators := All(fullKB())
	gen := corpus.NewDefaultGenerator()
	const n = 40
	src := func(i int) (string, []string, [][]string) {
		tab := gen.Table(i)
		return tab.Name, tab.Header, tab.Rows
	}
	var sequential [][]PairExample
	for i := 0; i < n; i++ {
		name, header, rows := src(i)
		sequential = append(sequential, LabelTable(annotators, name, header, rows))
	}
	for _, workers := range []int{1, 4, 8} {
		got := LabelTables(annotators, n, workers, src)
		if !reflect.DeepEqual(sequential, got) {
			t.Fatalf("%d workers: parallel labelling differs from sequential", workers)
		}
	}
}
