// Package annotate implements the six unsupervised annotator functions of
// Section III-B and the weak-supervision aggregation that turns their noisy
// output into training examples for the metadata model.
//
// Five annotators follow the two-step alias design: an alias function
// collects alternative representations of an attribute name from an
// external resource (four ConceptNet relations plus Wikipedia titles), and
// a pair of attributes is called ambiguous when the alias sets intersect —
// the intersection being the candidate labels. The sixth annotator takes
// the longest common substring of the two names and keeps it only if it is
// a dictionary word.
package annotate

import (
	"sort"
	"strings"

	"repro/internal/kb"
	"repro/internal/parallel"
	"repro/internal/telemetry"
	"repro/internal/vocab"
)

// annMet holds the weak-supervision stage's metric handles.
var annMet = struct {
	tables  *telemetry.Counter
	pairs   *telemetry.Counter
	labelNS *telemetry.Histogram
}{
	tables:  telemetry.Default().Counter("annotate.tables_labelled"),
	pairs:   telemetry.Default().Counter("annotate.pairs_labelled"),
	labelNS: telemetry.Default().LatencyHistogram("annotate.label_ns"),
}

// Annotator produces candidate ambiguity labels for a pair of attribute
// names, or nothing when it abstains.
type Annotator interface {
	// Name identifies the annotator ("syn", "relTo", "der", "isA", "wiki",
	// "lcs").
	Name() string
	// Annotate returns candidate labels for the pair (may be empty).
	Annotate(attrA, attrB string) []string
	// Covers reports whether the annotator has any signal for the
	// attribute at all. A pair where some annotator covers both sides but
	// none proposes a label is a weak NEGATIVE; a pair nobody covers is
	// UNLABELED — standard weak-supervision semantics (abstention is not
	// evidence of absence).
	Covers(attr string) bool
}

// aliasAnnotator intersects alias sets from one KB relation.
type aliasAnnotator struct {
	name  string
	fetch func(word string) []string
}

func (a *aliasAnnotator) Name() string { return a.name }

func (a *aliasAnnotator) Covers(attr string) bool { return len(a.fetch(attr)) > 0 }

func (a *aliasAnnotator) Annotate(attrA, attrB string) []string {
	as := a.fetch(attrA)
	if len(as) == 0 {
		return nil
	}
	bs := a.fetch(attrB)
	if len(bs) == 0 {
		return nil
	}
	set := make(map[string]bool, len(as))
	for _, x := range as {
		set[x] = true
	}
	var out []string
	for _, x := range bs {
		if set[x] && !Stopword(x) {
			out = append(out, x)
		}
	}
	sort.Strings(out)
	return out
}

// lcsAnnotator extracts the longest common substring of the normalized
// names, keeping it only when the dictionary recognizes it.
type lcsAnnotator struct {
	dict interface{ InDictionary(string) bool }
}

func (l *lcsAnnotator) Name() string { return "lcs" }

// Covers reports whether the attribute contains any dictionary word the
// LCS filter could keep.
func (l *lcsAnnotator) Covers(attr string) bool {
	for _, w := range strings.Fields(vocab.Normalize(attr)) {
		if len(w) >= 3 && l.dict.InDictionary(w) {
			return true
		}
	}
	return false
}

func (l *lcsAnnotator) Annotate(attrA, attrB string) []string {
	a := vocab.Normalize(attrA)
	b := vocab.Normalize(attrB)
	s := longestCommonSubstring(a, b)
	s = strings.TrimSpace(s)
	if len(s) < 3 || Stopword(s) {
		return nil
	}
	if !l.dict.InDictionary(s) {
		// Try the longest dictionary word inside the substring.
		best := ""
		for _, w := range strings.Fields(s) {
			if len(w) >= 3 && l.dict.InDictionary(w) && len(w) > len(best) && !Stopword(w) {
				best = w
			}
		}
		if best == "" {
			return nil
		}
		s = best
	}
	return []string{s}
}

// longestCommonSubstring returns the longest contiguous substring shared by
// a and b (classic dynamic program, O(len(a)*len(b))).
func longestCommonSubstring(a, b string) string {
	if len(a) == 0 || len(b) == 0 {
		return ""
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	bestLen, bestEnd := 0, 0
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
				if cur[j] > bestLen {
					bestLen = cur[j]
					bestEnd = i
				}
			} else {
				cur[j] = 0
			}
		}
		prev, cur = cur, prev
	}
	return a[bestEnd-bestLen : bestEnd]
}

// stopLabels are words too generic to be useful ambiguity labels. The alias
// annotators drop them from intersections; this is the filtering that keeps
// their precision high despite the generic noise in the graph.
var stopLabels = map[string]bool{
	"value": true, "data": true, "figure": true, "record": true,
	"number": true, "information": true, "attribute": true, "field": true,
	"item": true, "measure": true, "level": true, "total": true,
	"rate": true, "statistic": true, "quantity": true, "category": true,
	"count": true, "person": true, "place": true, "organization": true,
	"time": true, "identifier": true, "name": true,
	// Unit/decoration fragments that survive header normalization.
	"pct": true, "percentage": true, "avg": true, "est": true,
	"cur": true, "raw": true, "adj": true,
}

// Stopword reports whether w is too generic to serve as a label.
func Stopword(w string) bool {
	return stopLabels[strings.ToLower(strings.TrimSpace(w))]
}

// All returns the paper's six annotator functions backed by the given
// knowledge base: syn, relTo, der, isA, wiki, lcs.
func All(k *kb.KB) []Annotator {
	return []Annotator{
		&aliasAnnotator{name: "syn", fetch: func(w string) []string { return k.Aliases(w, kb.Synonym) }},
		&aliasAnnotator{name: "relTo", fetch: func(w string) []string { return k.Aliases(w, kb.RelatedTo) }},
		&aliasAnnotator{name: "der", fetch: func(w string) []string { return k.Aliases(w, kb.DerivedFrom) }},
		&aliasAnnotator{name: "isA", fetch: func(w string) []string { return k.Aliases(w, kb.IsA) }},
		&aliasAnnotator{name: "wiki", fetch: k.WikiTitles},
		&lcsAnnotator{dict: k},
	}
}

// Vote aggregates the annotators over one attribute pair: every candidate
// label gets one vote per annotator proposing it; the best-voted label wins
// (ties break lexicographically for determinism). An empty result means
// every annotator abstained — the weak "none" label.
func Vote(annotators []Annotator, attrA, attrB string) (label string, votes int) {
	counts := map[string]int{}
	for _, a := range annotators {
		for _, l := range a.Annotate(attrA, attrB) {
			counts[l]++
		}
	}
	for l, c := range counts {
		if c > votes || (c == votes && (label == "" || l < label)) {
			label, votes = l, c
		}
	}
	return label, votes
}

// PairExample is one weak-supervision training example: a table context, an
// attribute pair, and the aggregated noisy label ("" for none).
type PairExample struct {
	TableName string
	Header    []string
	Rows      [][]string // sampled formatted cells, row-major; may be nil
	AttrA     string
	AttrB     string
	Label     string
	// Covered reports whether some annotator had signal for BOTH
	// attributes. Uncovered pairs with empty labels are unlabeled, not
	// negatives, and must not train the none class.
	Covered bool
}

// covered reports whether any annotator covers the attribute.
func covered(annotators []Annotator, attr string) bool {
	for _, a := range annotators {
		if a.Covers(attr) {
			return true
		}
	}
	return false
}

// TableSource yields the i-th table of a corpus for labelling. It must be
// safe for concurrent calls; corpus.Generator.Table qualifies because
// Table(i) depends only on (options, i).
type TableSource func(i int) (name string, header []string, rows [][]string)

// LabelTables labels tables [0, n) across workers (0 = GOMAXPROCS) and
// returns the per-table examples in table order — byte-identical to
// calling LabelTable in a sequential loop. The knowledge base behind the
// annotators is immutable after construction, so the annotator functions
// are safe to share across workers.
func LabelTables(annotators []Annotator, n, workers int, src TableSource) [][]PairExample {
	tm := annMet.labelNS.Time()
	defer tm.Stop()
	out := parallel.Map(parallel.Workers(workers), n, func(i int) []PairExample {
		name, header, rows := src(i)
		return LabelTable(annotators, name, header, rows)
	})
	annMet.tables.Add(int64(n))
	pairs := 0
	for _, pes := range out {
		pairs += len(pes)
	}
	annMet.pairs.Add(int64(pairs))
	return out
}

// LabelTable runs the annotators over every attribute pair of a header and
// returns the labeled pairs with their coverage flags. The caller decides
// how to subsample negatives and must skip uncovered empty-label pairs.
func LabelTable(annotators []Annotator, tableName string, header []string, rows [][]string) []PairExample {
	cov := make([]bool, len(header))
	for i, h := range header {
		cov[i] = covered(annotators, h)
	}
	var out []PairExample
	for i := 0; i < len(header); i++ {
		for j := i + 1; j < len(header); j++ {
			label, _ := Vote(annotators, header[i], header[j])
			out = append(out, PairExample{
				TableName: tableName,
				Header:    header,
				Rows:      rows,
				AttrA:     header[i],
				AttrB:     header[j],
				Label:     label,
				Covered:   cov[i] && cov[j],
			})
		}
	}
	return out
}
