// Package textgen is the data-to-text module of Section II-C: given
// linearized evidence cells (with ambiguity labels substituted for the
// ambiguous attribute names, per Figure 5), it produces one-sentence
// descriptions or questions.
//
// The paper fine-tunes T5 for this step; we use a grammar-based surface
// realizer with many seeded patterns. Downstream consumers only depend on
// the contract that the text verbalizes exactly the given cells and uses
// the label in place of the attribute names — which the realizer
// guarantees by construction rather than by fine-tuning.
package textgen

import (
	"fmt"
	"strings"

	"repro/internal/detrand"
)

// Cell is one linearized evidence cell. Attr is an attribute name or, for
// ambiguous attributes, the ambiguity label ("shooting").
type Cell struct {
	Attr  string
	Value string
}

// Generator realizes sentences deterministically: the pattern choice is a
// hash of the content and the generator seed, so regeneration is stable
// while different evidence gets varied phrasing.
type Generator struct {
	seed int64
}

// NewGenerator returns a generator with the given variety seed.
func NewGenerator(seed int64) *Generator { return &Generator{seed: seed} }

// pick hashes the parts with the seed into [0, n).
func (g *Generator) pick(n int, parts ...string) int {
	return detrand.Pick(g.seed, n, parts...)
}

// subject renders the identifying cells ("Carter LA", "Carter from LA").
func (g *Generator) subject(keys []Cell, variant int) string {
	vals := make([]string, len(keys))
	for i, k := range keys {
		vals[i] = k.Value
	}
	if len(vals) == 1 {
		return vals[0]
	}
	switch variant % 3 {
	case 0:
		return strings.Join(vals, " ")
	case 1:
		return vals[0] + " from " + strings.Join(vals[1:], " ")
	default:
		return vals[0] + " (" + strings.Join(vals[1:], ", ") + ")"
	}
}

// Statement realizes a declarative sentence about one measure cell of one
// subject: "Carter from LA has a shooting of 56".
func (g *Generator) Statement(keys []Cell, measure Cell) string {
	v := g.pick(4, "stmt", measure.Attr, measure.Value, joinCells(keys))
	subj := g.subject(keys, g.pick(3, "subj", joinCells(keys)))
	switch v {
	case 0:
		return fmt.Sprintf("%s has a %s of %s", subj, measure.Attr, measure.Value)
	case 1:
		return fmt.Sprintf("%s recorded %s %s", subj, measure.Value, measure.Attr)
	case 2:
		return fmt.Sprintf("The %s of %s is %s", measure.Attr, subj, measure.Value)
	default:
		return fmt.Sprintf("%s had %s as %s", subj, measure.Value, measure.Attr)
	}
}

// Question realizes an interrogative about one measure cell: "Did Carter
// commit 3 fouls?".
func (g *Generator) Question(keys []Cell, measure Cell) string {
	v := g.pick(3, "q", measure.Attr, measure.Value, joinCells(keys))
	subj := g.subject(keys, g.pick(3, "subj", joinCells(keys)))
	switch v {
	case 0:
		return fmt.Sprintf("Did %s have %s %s?", subj, measure.Value, measure.Attr)
	case 1:
		return fmt.Sprintf("Is the %s of %s %s?", measure.Attr, subj, measure.Value)
	default:
		return fmt.Sprintf("Does %s have a %s of %s?", subj, measure.Attr, measure.Value)
	}
}

// Comparative realizes the attribute-ambiguity sentence shape of the
// paper's running example: "Carter LA has higher shooting than Smith SF".
// The op is a SQL comparison operator over the (label-substituted) measure.
func (g *Generator) Comparative(keys1, keys2 []Cell, label, op string) string {
	v := g.pick(3, "cmp", label, op, joinCells(keys1), joinCells(keys2))
	sv := g.pick(3, "subj", joinCells(keys1))
	s1 := g.subject(keys1, sv)
	s2 := g.subject(keys2, sv)
	verb := PrintOp(op, label)
	switch v {
	case 0:
		return fmt.Sprintf("%s %s %s", s1, verb, s2)
	case 1:
		return fmt.Sprintf("Compared with %s, %s %s", s2, s1, strings.Replace(verb, " than", "", 1))
	default:
		return fmt.Sprintf("%s %s %s", s1, verb, s2)
	}
}

// ComparativeQuestion is the interrogative form of Comparative.
func (g *Generator) ComparativeQuestion(keys1, keys2 []Cell, label, op string) string {
	s1 := g.subject(keys1, 0)
	s2 := g.subject(keys2, 0)
	return fmt.Sprintf("Does %s %s %s?", s1, questionVerb(op, label), s2)
}

// PrintOp is the paper's print(operator, label) function: it renders a
// comparison operator and an optional label into a verb phrase, e.g.
// ('>', "shooting") -> "has higher shooting than".
func PrintOp(op, label string) string {
	if label == "" {
		switch op {
		case "=":
			return "has"
		case ">":
			return "has more than"
		case "<":
			return "has less than"
		case ">=":
			return "has at least"
		case "<=":
			return "has at most"
		case "<>":
			return "does not have"
		default:
			return "has"
		}
	}
	switch op {
	case ">":
		return "has higher " + label + " than"
	case "<":
		return "has lower " + label + " than"
	case "=":
		return "has the same " + label + " as"
	case ">=":
		return "has at least the " + label + " of"
	case "<=":
		return "has at most the " + label + " of"
	case "<>":
		return "has different " + label + " than"
	default:
		return "has comparable " + label + " to"
	}
}

// questionVerb renders the interrogative verb phrase for an operator.
func questionVerb(op, label string) string {
	switch op {
	case ">":
		return "have higher " + label + " than"
	case "<":
		return "have lower " + label + " than"
	case "=":
		return "have the same " + label + " as"
	default:
		return "have comparable " + label + " to"
	}
}

// RowStatement realizes the row-ambiguity sentence: a subject identified by
// a strict subset of its key, one measure, one operator: "Carter has 3
// fouls" / "Carter has more than 3 fouls".
func (g *Generator) RowStatement(partialKeys []Cell, measure Cell, op string) string {
	subj := g.subject(partialKeys, 0)
	verb := PrintOp(op, "")
	if op == "=" {
		v := g.pick(3, "row", subj, measure.Attr, measure.Value)
		switch v {
		case 0:
			return fmt.Sprintf("%s has %s %s", subj, measure.Value, measure.Attr)
		case 1:
			return fmt.Sprintf("%s recorded %s %s", subj, measure.Value, measure.Attr)
		default:
			return fmt.Sprintf("%s has a %s of %s", subj, measure.Attr, measure.Value)
		}
	}
	return fmt.Sprintf("%s %s %s %s", subj, verb, measure.Value, measure.Attr)
}

// RowQuestion is the interrogative row-ambiguity form: "Did Carter commit 3
// fouls?".
func (g *Generator) RowQuestion(partialKeys []Cell, measure Cell, op string) string {
	subj := g.subject(partialKeys, 0)
	switch op {
	case "=":
		return fmt.Sprintf("Did %s have %s %s?", subj, measure.Value, measure.Attr)
	case ">":
		return fmt.Sprintf("Did %s have more than %s %s?", subj, measure.Value, measure.Attr)
	case "<":
		return fmt.Sprintf("Did %s have fewer than %s %s?", subj, measure.Value, measure.Attr)
	default:
		return fmt.Sprintf("Did %s have %s %s %s?", subj, PrintOp(op, ""), measure.Value, measure.Attr)
	}
}

// Linearize renders cells in the Figure 5 prompt style:
// "Player:Carter — Team:LA — shooting:56".
func Linearize(cells []Cell) string {
	parts := make([]string, len(cells))
	for i, c := range cells {
		parts[i] = c.Attr + ":" + c.Value
	}
	return strings.Join(parts, " — ")
}

func joinCells(cells []Cell) string {
	return Linearize(cells)
}
