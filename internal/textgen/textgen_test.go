package textgen

import (
	"strings"
	"testing"
)

var carterLA = []Cell{{Attr: "Player", Value: "Carter"}, {Attr: "Team", Value: "LA"}}
var smithSF = []Cell{{Attr: "Player", Value: "Smith"}, {Attr: "Team", Value: "SF"}}

func TestStatementContainsEvidence(t *testing.T) {
	g := NewGenerator(1)
	s := g.Statement(carterLA, Cell{Attr: "shooting", Value: "56"})
	for _, want := range []string{"Carter", "shooting", "56"} {
		if !strings.Contains(s, want) {
			t.Errorf("statement %q missing %q", s, want)
		}
	}
}

func TestQuestionShape(t *testing.T) {
	g := NewGenerator(1)
	q := g.Question([]Cell{{Attr: "Player", Value: "Carter"}}, Cell{Attr: "fouls", Value: "3"})
	if !strings.HasSuffix(q, "?") {
		t.Errorf("question %q lacks question mark", q)
	}
	for _, want := range []string{"Carter", "fouls", "3"} {
		if !strings.Contains(q, want) {
			t.Errorf("question %q missing %q", q, want)
		}
	}
}

func TestComparativeUsesLabelNotAttributes(t *testing.T) {
	g := NewGenerator(2)
	s := g.Comparative(carterLA, smithSF, "shooting", ">")
	if !strings.Contains(s, "shooting") {
		t.Errorf("comparative %q missing label", s)
	}
	if strings.Contains(s, "FG%") {
		t.Errorf("comparative %q leaks attribute name", s)
	}
	for _, want := range []string{"Carter", "Smith"} {
		if !strings.Contains(s, want) {
			t.Errorf("comparative %q missing subject %q", s, want)
		}
	}
}

func TestPrintOp(t *testing.T) {
	cases := []struct{ op, label, want string }{
		{">", "shooting", "has higher shooting than"},
		{"<", "shooting", "has lower shooting than"},
		{"=", "scoring", "has the same scoring as"},
		{"=", "", "has"},
		{">", "", "has more than"},
		{"<", "", "has less than"},
		{">=", "", "has at least"},
	}
	for _, tc := range cases {
		if got := PrintOp(tc.op, tc.label); got != tc.want {
			t.Errorf("PrintOp(%q, %q) = %q, want %q", tc.op, tc.label, got, tc.want)
		}
	}
}

func TestRowStatementVariants(t *testing.T) {
	g := NewGenerator(3)
	partial := []Cell{{Attr: "Player", Value: "Carter"}}
	eq := g.RowStatement(partial, Cell{Attr: "fouls", Value: "3"}, "=")
	for _, want := range []string{"Carter", "3", "fouls"} {
		if !strings.Contains(eq, want) {
			t.Errorf("row statement %q missing %q", eq, want)
		}
	}
	gt := g.RowStatement(partial, Cell{Attr: "fouls", Value: "3"}, ">")
	if !strings.Contains(gt, "more than") {
		t.Errorf("row statement with > = %q", gt)
	}
}

func TestRowQuestion(t *testing.T) {
	g := NewGenerator(3)
	partial := []Cell{{Attr: "Player", Value: "Carter"}}
	q := g.RowQuestion(partial, Cell{Attr: "fouls", Value: "3"}, "=")
	if !strings.HasSuffix(q, "?") || !strings.Contains(q, "Carter") {
		t.Errorf("row question = %q", q)
	}
}

func TestDeterminism(t *testing.T) {
	a := NewGenerator(5)
	b := NewGenerator(5)
	if a.Statement(carterLA, Cell{"fouls", "4"}) != b.Statement(carterLA, Cell{"fouls", "4"}) {
		t.Error("same seed, different sentences")
	}
}

func TestVarietyAcrossEvidence(t *testing.T) {
	// Distinct evidence should not always pick the same pattern.
	g := NewGenerator(7)
	shapes := map[string]bool{}
	subjects := [][]Cell{
		{{Attr: "Player", Value: "Carter"}, {Attr: "Team", Value: "LA"}},
		{{Attr: "Player", Value: "Smith"}, {Attr: "Team", Value: "SF"}},
		{{Attr: "Player", Value: "Jordan"}, {Attr: "Team", Value: "CHI"}},
		{{Attr: "Player", Value: "Curry"}, {Attr: "Team", Value: "NY"}},
		{{Attr: "Player", Value: "Davis"}, {Attr: "Team", Value: "MIA"}},
		{{Attr: "Player", Value: "Lopez"}, {Attr: "Team", Value: "BOS"}},
	}
	for i, subj := range subjects {
		s := g.Statement(subj, Cell{Attr: "points", Value: "20"})
		// Normalize away the content to capture the pattern shape.
		shape := s
		shape = strings.ReplaceAll(shape, subj[0].Value, "S")
		shape = strings.ReplaceAll(shape, subj[1].Value, "T")
		shapes[shape] = true
		_ = i
	}
	if len(shapes) < 2 {
		t.Errorf("no pattern variety across evidence: %v", shapes)
	}
}

func TestComparativeQuestion(t *testing.T) {
	g := NewGenerator(9)
	q := g.ComparativeQuestion(carterLA, smithSF, "shooting", ">")
	if !strings.HasSuffix(q, "?") || !strings.Contains(q, "higher shooting") {
		t.Errorf("comparative question = %q", q)
	}
}

func TestLinearize(t *testing.T) {
	got := Linearize([]Cell{{Attr: "Player", Value: "Carter"}, {Attr: "shooting", Value: "56"}})
	want := "Player:Carter — shooting:56"
	if got != want {
		t.Errorf("Linearize = %q, want %q", got, want)
	}
}
