// Package errlimit exercises err-limit-propagate: a package declaring an
// errLimit* sentinel must let it propagate out of scan paths; absorbing
// comparisons and dropped maybe-sentinel errors need explicit waivers.
package errlimit

import "errors"

var errLimitReached = errors.New("limit reached")

type row struct{ id int }

// take returns the sentinel when the quota is exhausted.
func take(quota *int) error {
	*quota--
	if *quota <= 0 {
		return errLimitReached
	}
	return nil
}

// relay propagates transitively: returning take's result makes relay a
// may-return-sentinel function too.
func relay(quota *int) error {
	return take(quota)
}

// collect absorbs the sentinel outside the blessed conversion point.
func collect(rows []row, quota int) []row {
	var out []row
	for _, r := range rows {
		err := relay(&quota)
		if err == errLimitReached { // want err-limit-propagate
			break
		}
		out = append(out, r)
	}
	return out
}

// drain drops an error that may carry the sentinel (and err-ignored
// flags the bare call on its own grounds).
func drain(rows []row, quota int) {
	for range rows {
		take(&quota) // want err-limit-propagate err-ignored
	}
}

// drop blank-discards the maybe-sentinel error.
func drop(quota int) {
	_ = take(&quota) // want err-limit-propagate err-ignored
}

type sink func(row) error

// newSink builds a sentinel-returning literal behind the named func type.
func newSink(quota *int) sink {
	return func(r row) error {
		*quota--
		if *quota <= 0 {
			return errLimitReached
		}
		return nil
	}
}

// feed drops errors from a call through the named func type whose
// literals may return the sentinel.
func feed(rows []row, s sink) {
	for _, r := range rows {
		s(r) // want err-limit-propagate err-ignored
	}
}

// pump propagates correctly: clean.
func pump(rows []row, quota int) error {
	for range rows {
		if err := take(&quota); err != nil {
			return err
		}
	}
	return nil
}

// planTop is this fixture's blessed conversion point, with a waiver.
func planTop(rows []row, quota int) ([]row, error) {
	var out []row
	err := scanInto(rows, &quota, &out)
	//lint:ignore err-limit-propagate planTop is the fixture's blessed limit-to-success conversion point
	if err == errLimitReached {
		return out, nil
	}
	return out, err
}

// scanInto pushes rows until take stops it, propagating the sentinel.
func scanInto(rows []row, quota *int, out *[]row) error {
	for _, r := range rows {
		if err := take(quota); err != nil {
			return err
		}
		*out = append(*out, r)
	}
	return nil
}
