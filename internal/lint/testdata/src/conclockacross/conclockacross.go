// Package conclockacross exercises conc-lock-across-call: blocking
// operations between a lock and its release stall every other user of
// the lock, and under contention deadlock the pipeline's worker pools.
package conclockacross

import (
	"sync"
	"time"
)

type queue struct {
	mu    sync.Mutex
	items []int
	ch    chan int
}

// pushNotify sends on a channel while holding the lock.
func (q *queue) pushNotify(v int) {
	q.mu.Lock()
	q.items = append(q.items, v)
	q.ch <- v // want conc-lock-across-call
	q.mu.Unlock()
}

// drain holds a deferred unlock across a channel range: the window runs
// to the end of the function.
func (q *queue) drain() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for v := range q.ch { // want conc-lock-across-call
		n += v
	}
	return n
}

// slowAppend sleeps under the lock.
func (q *queue) slowAppend(v int) {
	q.mu.Lock()
	time.Sleep(time.Millisecond) // want conc-lock-across-call
	q.items = append(q.items, v)
	q.mu.Unlock()
}

type stats struct {
	mu sync.RWMutex
	m  map[string]int
}

// snapshot blocks on a receive while holding the read lock.
func (s *stats) snapshot(done chan struct{}) map[string]int {
	s.mu.RLock()
	<-done // want conc-lock-across-call
	out := make(map[string]int, len(s.m))
	for k, v := range s.m {
		out[k] = v
	}
	s.mu.RUnlock()
	return out
}

// push releases the lock before the send: clean.
func (q *queue) push(v int) {
	q.mu.Lock()
	q.items = append(q.items, v)
	q.mu.Unlock()
	q.ch <- v
}

// async spawns a goroutine under the lock: the literal's body does not
// run while the lock is held, so it is clean.
func (q *queue) async(v int) {
	q.mu.Lock()
	go func() {
		q.ch <- v
	}()
	q.mu.Unlock()
}

// pushBuffered is waived: the send is into guaranteed spare capacity.
func (q *queue) pushBuffered(v int) {
	q.mu.Lock()
	//lint:ignore conc-lock-across-call channel is sized to capacity; the send cannot block
	q.ch <- v
	q.mu.Unlock()
}
