// Fixture for the conc-loop-capture rule.
package concloopcapture

import "sync"

func process(string) {}

func capturesRangeVar(items []string) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			process(it) // want conc-loop-capture
		}()
	}
	wg.Wait()
}

func capturesIndexVar(n int) {
	results := make([]int, n)
	for i := 0; i < n; i++ {
		go func() {
			results[i] = i * i // want conc-loop-capture
		}()
	}
}

func passesAsArgument(items []string) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(s string) {
			defer wg.Done()
			process(s)
		}(it)
	}
	wg.Wait()
}

func goroutineOutsideLoop(item string) {
	go func() {
		process(item)
	}()
}
