// Package lib hides nondeterminism sources behind innocent-looking
// accessors, one call removed from the sink package — the cross-package
// shape the per-function syntactic rules cannot see.
package lib

import (
	"fmt"
	"time"

	"repro/internal/detrand"
)

// Stamp leaks the wall clock through its return value.
func Stamp() int64 { return time.Now().UnixNano() }

// Tag leaks the wall clock two hops deep: Tag -> Stamp -> time.Now.
func Tag() string { return fmt.Sprintf("t%d", Stamp()) }

// Seeded draws from the seed-pinned generator: sanitized at the source.
func Seeded() int64 { return detrand.Global().Int63() }
