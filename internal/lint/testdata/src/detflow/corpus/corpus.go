// Package corpus is a det-flow sink fixture: its name marks it as a
// generation package, so nondeterminism arriving here must be reported —
// and sanitized or sorted flows must stay quiet.
package corpus

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/lint/testdata/src/detflow/lib"
)

// WriteCorpus emits one line per example with a wall-clock id imported
// from lib: the taint crosses the package boundary.
func WriteCorpus(sb *strings.Builder, texts []string) {
	for _, t := range texts {
		id := lib.Stamp() // want det-flow
		sb.WriteString(strconv.FormatInt(id, 10) + "\t" + t + "\n")
	}
}

// SerializeTagged routes the two-hop chain (Tag -> Stamp -> time.Now)
// into the output.
func SerializeTagged(sb *strings.Builder, text string) {
	sb.WriteString(lib.Tag() + "\t" + text + "\n") // want det-flow
}

// MarshalExampleHeader is a direct wall-clock source inside a sink: not a
// shape the syntactic rules cover, so det-flow owns it.
func MarshalExampleHeader() string {
	return fmt.Sprintf("# generated %d\n", time.Now().Unix()) // want det-flow
}

// EmitParallel collects worker results in completion order and writes
// them out: goroutine scheduling decides the corpus order.
func EmitParallel(sb *strings.Builder, texts []string) {
	ch := make(chan string, len(texts))
	for _, t := range texts {
		go func(s string) { ch <- s }(t)
	}
	var out []string
	for s := range ch {
		out = append(out, s) // want det-flow
	}
	for _, s := range out {
		sb.WriteString(s + "\n")
	}
}

// SerializeSeeded is clean: ids come from the seed-pinned generator.
func SerializeSeeded(sb *strings.Builder, texts []string) {
	for _, t := range texts {
		sb.WriteString(strconv.FormatInt(lib.Seeded(), 10) + "\t" + t + "\n")
	}
}

// EmitSorted is clean: map order is sanitized by the sort before writing.
func EmitSorted(sb *strings.Builder, counts map[string]int) {
	var keys []string
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		sb.WriteString(k + "\n")
	}
}

// EmitDebug carries wall-clock taint but is waived with a reason.
func EmitDebug(sb *strings.Builder) {
	//lint:ignore det-flow debug stream is not part of the regenerable corpus
	sb.WriteString(strconv.FormatInt(lib.Stamp(), 10))
}
