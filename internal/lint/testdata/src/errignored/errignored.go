// Fixture for the err-ignored rule.
package errignored

import (
	"fmt"
	"os"
	"strconv"
	"strings"
)

func blankFromCall(s string) int {
	n, _ := strconv.Atoi(s) // want err-ignored
	return n
}

func bareCall(name string) {
	os.Remove(name) // want err-ignored
}

func blankFromValue(err error) {
	_ = err // want err-ignored
}

func handled(s string) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("errignored: %w", err)
	}
	return n, nil
}

func allowlisted() string {
	var b strings.Builder
	b.WriteString("hello ")
	fmt.Fprintf(&b, "%d", 42)
	fmt.Println("progress")
	fmt.Fprintln(os.Stderr, "status")
	return b.String()
}

func fprintToFile(f *os.File) {
	fmt.Fprintln(f, "not a standard stream") // want err-ignored
}
