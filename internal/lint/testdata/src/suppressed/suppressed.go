// Fixture for //lint:ignore suppression handling: a well-formed directive
// on the preceding line or trailing on the flagged line waives exactly its
// rule ID; a wrong ID or a missing reason waives nothing.
package suppressed

import "math/rand"

func coveredByPrecedingLine() int {
	//lint:ignore det-global-rand fixture demonstrating the suppression syntax
	return rand.Intn(3)
}

func coveredByTrailingComment(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) //lint:ignore det-global-rand fixture demonstrating trailing suppression
}

func wrongRuleID() int {
	//lint:ignore err-ignored the wrong rule ID does not cover this line
	return rand.Intn(5) // want det-global-rand
}

func missingReason() int {
	//lint:ignore det-global-rand
	return rand.Intn(7) // want det-global-rand
}
