// Package app exercises tel-metric-registry against the fixture registry:
// declared names pass, unknown names, kind mismatches, convention
// violations and missing _ns suffixes fail.
package app

import (
	"fmt"

	"repro/internal/lint/testdata/src/telregistry/telemetry"
)

// declared uses only registered names with their declared kinds.
func declared(stage string) {
	telemetry.Default().Counter("app.items_done").Add(1)
	telemetry.Default().Gauge("app.queue_depth").Set(3)
	telemetry.Default().LatencyHistogram("app.step_ns").Observe(7)
	// A dynamic name resolves to the pattern "app.step.*_ns", which is
	// declared verbatim in the registry.
	telemetry.Default().Histogram(fmt.Sprintf("app.step.%s_ns", stage)).Observe(9)
}

// undeclared uses a name missing from KnownMetrics.
func undeclared() {
	telemetry.Default().Counter("app.missing_total").Add(1) // want tel-metric-registry
}

// wrongKind reads a declared counter through a gauge accessor.
func wrongKind() {
	telemetry.Default().Gauge("app.items_done").Set(2) // want tel-metric-registry
}

// badConvention violates the lower-snake dotted naming scheme.
func badConvention() {
	telemetry.Default().Counter("AppItemsDone").Add(1) // want tel-metric-registry
}

// missingSuffix records a duration without the _ns suffix.
func missingSuffix() {
	telemetry.Default().LatencyHistogram("app.step_time").Observe(1) // want tel-metric-registry
}

// waived carries an explicit suppression with a reason.
func waived() {
	//lint:ignore tel-metric-registry migration counter pending a registry entry
	telemetry.Default().Counter("app.legacy_total").Add(1)
}
