// Package telemetry is a miniature registry fixture: the rule keys on the
// package name and the declared KnownMetrics literal, exactly as it does
// for the real internal/telemetry.
package telemetry

// Registry hands out metric handles.
type Registry struct{}

// Default returns the shared registry.
func Default() *Registry { return &Registry{} }

// Counter is a monotonically increasing metric.
type Counter struct{}

// Add increments the counter.
func (*Counter) Add(int64) {}

// Gauge is a set-to-current-value metric.
type Gauge struct{}

// Set records the current value.
func (*Gauge) Set(int64) {}

// Histogram records a value distribution.
type Histogram struct{}

// Observe records one sample.
func (*Histogram) Observe(int64) {}

// Counter resolves a counter handle by name.
func (*Registry) Counter(name string) *Counter { return &Counter{} }

// Gauge resolves a gauge handle by name.
func (*Registry) Gauge(name string) *Gauge { return &Gauge{} }

// Histogram resolves a histogram handle by name.
func (*Registry) Histogram(name string) *Histogram { return &Histogram{} }

// LatencyHistogram resolves a duration histogram; names must end in _ns.
func (*Registry) LatencyHistogram(name string) *Histogram { return &Histogram{} }

// MetricName is one declared registry entry.
type MetricName struct {
	Name string
	Kind string
}

// KnownMetrics is this fixture module's declared metric table.
var KnownMetrics = []MetricName{
	{Name: "app.items_done", Kind: "counter"},
	{Name: "app.queue_depth", Kind: "gauge"},
	{Name: "app.step.*_ns", Kind: "histogram"},
	{Name: "app.step_ns", Kind: "histogram"},
}
