// Test files are exempt from det-global-rand: nondeterminism in a test
// helper cannot leak into generated corpora.
package detglobalrand

import "math/rand"

func fuzzInput() int {
	return rand.Intn(100)
}
