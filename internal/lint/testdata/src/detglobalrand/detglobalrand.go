// Fixture for the det-global-rand rule.
package detglobalrand

import "math/rand"

func shuffleGlobally(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want det-global-rand
}

func drawGlobally() int {
	return rand.Intn(10) // want det-global-rand
}

func floatGlobally() float64 {
	return rand.Float64() // want det-global-rand
}

func seededIsFine(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

func injectedIsFine(rng *rand.Rand) int {
	return rng.Intn(10)
}
