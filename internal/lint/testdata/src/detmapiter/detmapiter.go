// Fixture for the det-map-iter rule. Lines carrying a want-marker comment
// must be flagged; all other lines must stay clean.
package detmapiter

import (
	"fmt"
	"sort"
	"strings"
)

func appendWithoutSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want det-map-iter
	}
	return out
}

func appendThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func appendThenSortSlice(m map[string]float64) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return m[keys[i]] < m[keys[j]] })
	return keys
}

func writeDuringIteration(m map[string]int, b *strings.Builder) {
	for k, v := range m {
		fmt.Fprintf(b, "%s=%d\n", k, v) // want det-map-iter
	}
}

func printDuringIteration(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want det-map-iter
	}
}

func sendDuringIteration(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want det-map-iter
	}
}

func perIterationBuffer(m map[string]int) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		var b strings.Builder
		fmt.Fprintf(&b, "value=%d", v)
		out[k] = b.String()
	}
	return out
}

func orderInsensitiveAggregation(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func sliceRangeIsFine(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}
