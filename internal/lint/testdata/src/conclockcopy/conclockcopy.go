// Fixture for the conc-lock-copy rule.
package conclockcopy

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

func lockByValue(mu sync.Mutex) { // want conc-lock-copy
	mu.Lock()
	defer mu.Unlock()
}

func structByValue(g guarded) int { // want conc-lock-copy
	return g.n
}

func waitGroupByValue(wg sync.WaitGroup) { // want conc-lock-copy
	wg.Wait()
}

func returnsLock() sync.Mutex { // want conc-lock-copy
	var mu sync.Mutex
	return mu
}

func (g guarded) valueReceiver() int { // want conc-lock-copy
	return g.n
}

func (g *guarded) pointerReceiver() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

func pointersAreFine(g *guarded, mu *sync.Mutex) {
	mu.Lock()
	g.mu.Lock()
	g.mu.Unlock()
	mu.Unlock()
}
