// Package errwrap drops errors; -fix must wrap the fixable subset in
// `if err := …; err != nil { return err }` and leave the rest flagged.
package errwrap

import "os"

// clean removes two scratch files, dropping both errors; the enclosing
// function returns exactly error, so both drops are mechanically fixable.
func clean(dir string) error {
	os.Remove(dir + "/a")
	_ = os.Remove(dir + "/b")
	return nil
}

// report returns nothing, so its drop is a finding but not fixable.
func report(dir string) {
	os.Remove(dir)
}
