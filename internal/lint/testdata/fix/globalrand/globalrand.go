// Package globalrand draws from the process-global source; -fix must
// route every draw through detrand.Global() and drop the stale import.
package globalrand

import "math/rand"

// pick selects an index with the global source.
func pick(n int) int {
	return rand.Intn(n)
}

// shuffle permutes xs in place with the global source.
func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
