// Package mapiter appends under map iteration; -fix must rewrite each
// loop to iterate sorted keys.
package mapiter

// names collects labels in map order.
func names(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// pairs uses both the key and the value.
func pairs(m map[string]int) []int {
	var out []int
	for k, v := range m {
		out = append(out, len(k)+v)
	}
	return out
}
