// Package loading: pattern expansion, parsing and type checking with no
// dependency outside the standard library. Module-local imports are
// resolved recursively from source; standard-library imports go through
// go/importer's source mode, which type-checks GOROOT packages directly
// and therefore needs no pre-compiled export data.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader discovers, parses and type-checks packages for analysis.
type Loader struct {
	// IncludeTests adds _test.go files to loaded packages. External test
	// packages (package foo_test) are loaded as their own package.
	IncludeTests bool

	fset       *token.FileSet
	moduleRoot string // directory containing go.mod ("" outside a module)
	modulePath string // module path from go.mod ("" outside a module)
	stdlib     types.Importer
	cache      map[string]*types.Package // module-local import cache
	loading    map[string]bool           // import-cycle guard
}

// NewLoader creates a loader rooted at dir. If dir (or a parent) holds a
// go.mod, imports under its module path resolve to source inside the
// module; otherwise only standard-library imports resolve.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	l := &Loader{
		fset:    token.NewFileSet(),
		cache:   make(map[string]*types.Package),
		loading: make(map[string]bool),
	}
	l.stdlib = importer.ForCompiler(l.fset, "source", nil)
	if root, path, ok := findModule(abs); ok {
		l.moduleRoot = root
		l.modulePath = path
	}
	return l, nil
}

// Fset exposes the loader's file set for position lookup.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// findModule walks upward from dir looking for a go.mod with a module line.
func findModule(dir string) (root, path string, ok bool) {
	for d := dir; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, found := strings.CutPrefix(line, "module "); found {
					return d, strings.TrimSpace(rest), true
				}
			}
		}
		if filepath.Dir(d) == d {
			return "", "", false
		}
	}
}

// Load expands the patterns (directories, or dir/... recursive forms) and
// returns one analysis Package per Go package found, in sorted path order.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		got, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, got...)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// expand resolves patterns to package directories. "dir/..." walks
// recursively, skipping testdata, vendor, and hidden or underscore
// directories — the same conventions the go tool applies.
func (l *Loader) expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			root := filepath.Clean(rest)
			if root == "" {
				root = "."
			}
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("lint: expanding %s: %w", pat, err)
			}
			continue
		}
		info, err := os.Stat(pat)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("lint: %s is not a directory", pat)
		}
		add(filepath.Clean(pat))
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains at least one .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// loadDir parses and type-checks the package(s) in one directory. With
// IncludeTests, in-package test files join the primary package and
// external test files (package name ending in _test) form a second one.
func (l *Loader) loadDir(dir string) ([]*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	byName := make(map[string][]*ast.File)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") && !l.IncludeTests {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		byName[f.Name.Name] = append(byName[f.Name.Name], f)
	}
	// Merge in-package test files into the primary package: with tests
	// included, "foo" and "foo_test" in one directory are two packages.
	var names []string
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)

	var pkgs []*Package
	for _, name := range names {
		files := byName[name]
		path := l.importPath(dir)
		if strings.HasSuffix(name, "_test") {
			path += " [" + name + "]"
		}
		pkg, err := l.check(path, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// importPath maps a directory to its module import path when inside the
// module, else returns the cleaned directory itself.
func (l *Loader) importPath(dir string) string {
	if l.moduleRoot == "" {
		return filepath.Clean(dir)
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return filepath.Clean(dir)
	}
	rel, err := filepath.Rel(l.moduleRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.Clean(dir)
	}
	if rel == "." {
		return l.modulePath
	}
	return l.modulePath + "/" + filepath.ToSlash(rel)
}

// check type-checks one file group and wraps it as an analysis Package.
func (l *Loader) check(path string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}

// loaderImporter resolves imports during type checking: module-local paths
// load recursively from source, everything else falls through to the
// standard-library source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if l.modulePath == "" || (path != l.modulePath && !strings.HasPrefix(path, l.modulePath+"/")) {
		return l.stdlib.Import(path)
	}
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := filepath.Join(l.moduleRoot, filepath.FromSlash(strings.TrimPrefix(path, l.modulePath)))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("resolving import %s: %w", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, 0)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files for import %s in %s", path, dir)
	}
	conf := types.Config{Importer: li}
	pkg, err := conf.Check(path, l.fset, files, nil)
	if err != nil {
		return nil, err
	}
	l.cache[path] = pkg
	return pkg, nil
}
