// Package loading: pattern expansion, parsing and type checking with no
// dependency outside the standard library. Module-local imports are
// resolved recursively from source; standard-library imports go through
// go/importer's source mode, which type-checks GOROOT packages directly
// and therefore needs no pre-compiled export data.
//
// Directories load concurrently on internal/parallel's index-ordered
// pool, so diagnostics stay in the same deterministic path order the
// sequential loader produced. Three pieces make the concurrency sound:
// token.FileSet is internally locked; module-local imports go through a
// once-guarded cache so each package type-checks exactly once and every
// checker sees the same *types.Package identity; and the source importer
// for GOROOT (which is not concurrency-safe) sits behind its own mutex.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/parallel"
)

// Loader discovers, parses and type-checks packages for analysis.
type Loader struct {
	// IncludeTests adds _test.go files to loaded packages. External test
	// packages (package foo_test) are loaded as their own package.
	IncludeTests bool

	// Workers caps the loading pool; 0 means GOMAXPROCS.
	Workers int

	fset       *token.FileSet
	moduleRoot string // directory containing go.mod ("" outside a module)
	modulePath string // module path from go.mod ("" outside a module)

	stdlibMu sync.Mutex // go/internal/srcimporter is not concurrency-safe
	stdlib   types.Importer

	cacheMu sync.Mutex
	cache   map[string]*cacheEntry // module-local import cache
}

// cacheEntry is one module-local package, loaded at most once. Concurrent
// importers of the same path block on the once; the first in does the
// work and everyone shares the identical *types.Package.
type cacheEntry struct {
	once sync.Once
	pkg  *types.Package
	err  error
}

// NewLoader creates a loader rooted at dir. If dir (or a parent) holds a
// go.mod, imports under its module path resolve to source inside the
// module; otherwise only standard-library imports resolve.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	l := &Loader{
		fset:  token.NewFileSet(),
		cache: make(map[string]*cacheEntry),
	}
	l.stdlib = importer.ForCompiler(l.fset, "source", nil)
	if root, path, ok := findModule(abs); ok {
		l.moduleRoot = root
		l.modulePath = path
	}
	return l, nil
}

// ModuleRoot exposes the discovered module root ("" outside a module).
func (l *Loader) ModuleRoot() string { return l.moduleRoot }

// Fset exposes the loader's file set for position lookup.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// findModule walks upward from dir looking for a go.mod with a module line.
func findModule(dir string) (root, path string, ok bool) {
	for d := dir; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, found := strings.CutPrefix(line, "module "); found {
					return d, strings.TrimSpace(rest), true
				}
			}
		}
		if filepath.Dir(d) == d {
			return "", "", false
		}
	}
}

// Load expands the patterns (directories, or dir/... recursive forms) and
// returns one analysis Package per Go package found, in sorted path
// order. Directories are type-checked concurrently; results collect in
// index order, so the returned slice — and therefore diagnostic order —
// is identical at every worker count.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	got, err := parallel.MapErr(parallel.Workers(l.Workers), len(dirs),
		func(i int) ([]*Package, error) { return l.loadDir(dirs[i]) })
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, g := range got {
		pkgs = append(pkgs, g...)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// expand resolves patterns to package directories. "dir/..." walks
// recursively, skipping testdata, vendor, and hidden or underscore
// directories — the same conventions the go tool applies. A pattern
// matching no package directory is an error naming that pattern: a typo
// in a CI invocation must fail loudly, not gate on nothing.
func (l *Loader) expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			root := filepath.Clean(rest)
			if root == "" {
				root = "."
			}
			matched := 0
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					add(path)
					matched++
				}
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("lint: expanding %s: %w", pat, err)
			}
			if matched == 0 {
				return nil, fmt.Errorf("lint: pattern %q matched no packages", pat)
			}
			continue
		}
		info, err := os.Stat(pat)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("lint: %s is not a directory", pat)
		}
		dir := filepath.Clean(pat)
		if !hasGoFiles(dir) {
			return nil, fmt.Errorf("lint: pattern %q matched no packages", pat)
		}
		add(dir)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains at least one .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// loadDir parses and type-checks the package(s) in one directory. With
// IncludeTests, in-package test files join the primary package and
// external test files (package name ending in _test) form a second one.
func (l *Loader) loadDir(dir string) ([]*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	byName := make(map[string][]*ast.File)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") && !l.IncludeTests {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		byName[f.Name.Name] = append(byName[f.Name.Name], f)
	}
	// Merge in-package test files into the primary package: with tests
	// included, "foo" and "foo_test" in one directory are two packages.
	var names []string
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)

	var pkgs []*Package
	for _, name := range names {
		files := byName[name]
		path := l.importPath(dir)
		if strings.HasSuffix(name, "_test") {
			path += " [" + name + "]"
		}
		pkg, err := l.check(path, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// importPath maps a directory to its module import path when inside the
// module, else returns the cleaned directory itself.
func (l *Loader) importPath(dir string) string {
	if l.moduleRoot == "" {
		return filepath.Clean(dir)
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return filepath.Clean(dir)
	}
	rel, err := filepath.Rel(l.moduleRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.Clean(dir)
	}
	if rel == "." {
		return l.modulePath
	}
	return l.modulePath + "/" + filepath.ToSlash(rel)
}

// check type-checks one file group and wraps it as an analysis Package.
// Each top-level check gets its own importer instance so the cycle-guard
// chain is confined to this goroutine's import stack.
func (l *Loader) check(path string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l.newImporter()}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}

// loaderImporter resolves imports during type checking: module-local paths
// load recursively from source, everything else falls through to the
// standard-library source importer. The loading map records this
// goroutine's in-progress import chain; it must be checked before
// entering a cache entry's once, or a cycle would re-enter the once from
// inside itself and deadlock instead of erroring.
type loaderImporter struct {
	l       *Loader
	loading map[string]bool
}

func (l *Loader) newImporter() *loaderImporter {
	return &loaderImporter{l: l, loading: make(map[string]bool)}
}

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := li.l
	if l.modulePath == "" || (path != l.modulePath && !strings.HasPrefix(path, l.modulePath+"/")) {
		l.stdlibMu.Lock()
		defer l.stdlibMu.Unlock()
		return l.stdlib.Import(path)
	}
	if li.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.cacheMu.Lock()
	entry := l.cache[path]
	if entry == nil {
		entry = &cacheEntry{}
		l.cache[path] = entry
	}
	l.cacheMu.Unlock()
	entry.once.Do(func() {
		li.loading[path] = true
		defer delete(li.loading, path)
		entry.pkg, entry.err = li.load(path)
	})
	return entry.pkg, entry.err
}

// load parses and type-checks one module-local import from source.
func (li *loaderImporter) load(path string) (*types.Package, error) {
	l := li.l
	dir := filepath.Join(l.moduleRoot, filepath.FromSlash(strings.TrimPrefix(path, l.modulePath)))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("resolving import %s: %w", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, 0)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files for import %s in %s", path, dir)
	}
	conf := types.Config{Importer: li}
	return conf.Check(path, l.fset, files, nil)
}
