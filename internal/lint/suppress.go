// Suppression comments. A finding is suppressed by
//
//	//lint:ignore rule-id reason
//
// placed either on the flagged line itself (trailing comment) or on the
// line directly above it. The reason is mandatory: review-time context is
// the whole point of an explicit waiver.
package lint

import (
	"go/ast"
	"strings"
)

// suppression is one parsed ignore comment.
type suppression struct {
	file   string
	line   int // line of the comment itself
	ruleID string
}

// suppressionSet indexes suppressions by file and line.
type suppressionSet map[string]map[int][]string

// covers reports whether d is waived by a comment on its line or the line
// above.
func (s suppressionSet) covers(d Diagnostic) bool {
	lines := s[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, id := range lines[line] {
			if id == d.RuleID {
				return true
			}
		}
	}
	return false
}

// collect adds every well-formed ignore comment in the package to the set.
func (set suppressionSet) collect(p *Package) {
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				sup, ok := parseIgnore(c)
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				sup.file = pos.Filename
				sup.line = pos.Line
				if set[sup.file] == nil {
					set[sup.file] = make(map[int][]string)
				}
				set[sup.file][sup.line] = append(set[sup.file][sup.line], sup.ruleID)
			}
		}
	}
}

// parseIgnore recognizes "//lint:ignore rule-id reason". The directive is
// rejected without a reason, matching staticcheck's convention.
func parseIgnore(c *ast.Comment) (suppression, bool) {
	text, ok := strings.CutPrefix(c.Text, "//lint:ignore ")
	if !ok {
		return suppression{}, false
	}
	fields := strings.Fields(text)
	if len(fields) < 2 {
		return suppression{}, false // no reason given
	}
	return suppression{ruleID: fields[0]}, true
}
