// The -fix engine. A subset of findings carry a mechanical rewrite:
//
//	det-global-rand  rand.Intn(n)  →  detrand.Global().Intn(n)
//	                 (math/rand import dropped when it falls unused)
//	err-ignored      bare call / `_ = call` with a lone error result, in a
//	                 function returning exactly error  →
//	                 if err := call; err != nil { return err }
//	det-map-iter     append inside a map range with an ordered basic key →
//	                 collect keys, sort, range over the sorted keys
//
// Fixes are expressed as byte-offset edits against the original source —
// never as a reprinted AST — so comments, spacing and everything outside
// the edit survive byte-for-byte. The patched file then goes through
// format.Source, which normalizes only the layout the edits introduced.
// Fixes that cannot be proven safe (multi-result calls, non-basic map
// keys, side-effecting range expressions) are simply not offered; -fix
// fixes the fixable subset and leaves honest findings for the rest.
package lint

import (
	"fmt"
	"go/ast"
	"go/format"
	"go/token"
	"go/types"
	"os"
	"sort"
	"strconv"
	"strings"
)

// detrandImport is the module path of the blessed deterministic-rand
// package inserted by the det-global-rand fix.
const detrandImport = "repro/internal/detrand"

// Edit replaces original bytes [Start, End) of File with New. Start==End
// is a pure insertion.
type Edit struct {
	File  string
	Start int
	End   int
	New   string
}

// Fix is the mechanical resolution attached to a Diagnostic.
type Fix struct {
	// Edits to apply, all within one file.
	Edits []Edit
	// AddImports are import paths the patched file must import.
	AddImports []string
	// DropImportIfUnused names an import path to delete when, after all
	// fixes in the file, no reference to it remains.
	DropImportIfUnused string
}

// FixResult is the outcome of applying fixes to one loaded package set.
type FixResult struct {
	// Files maps filename to its new, formatted content. Only files with
	// at least one applied fix appear.
	Files map[string][]byte
	// Applied counts the fixes applied per file.
	Applied map[string]int
	// Skipped counts fixes dropped because their edits overlapped an
	// already-applied fix.
	Skipped int
}

// ApplyFixes computes the fixed content for every file with fixable
// findings. It reads originals from disk; nothing is written — callers
// decide (the CLI writes in place, tests compare against goldens).
func ApplyFixes(pkgs []*Package, diags []Diagnostic) (*FixResult, error) {
	type fileFixes struct {
		edits   []Edit
		add     map[string]bool
		drop    map[string]bool
		applied int
	}
	byFile := make(map[string]*fileFixes)
	res := &FixResult{Files: map[string][]byte{}, Applied: map[string]int{}}

	// Collect edits per file, dropping any fix whose edits overlap an
	// already-accepted one (first in diagnostic order wins).
	for _, d := range diags {
		if d.Fix == nil || len(d.Fix.Edits) == 0 {
			continue
		}
		file := d.Fix.Edits[0].File
		ff := byFile[file]
		if ff == nil {
			ff = &fileFixes{add: map[string]bool{}, drop: map[string]bool{}}
			byFile[file] = ff
		}
		overlap := false
		for _, e := range d.Fix.Edits {
			for _, prev := range ff.edits {
				if e.Start < prev.End && prev.Start < e.End {
					overlap = true
				}
			}
		}
		if overlap {
			res.Skipped++
			continue
		}
		ff.edits = append(ff.edits, d.Fix.Edits...)
		for _, path := range d.Fix.AddImports {
			ff.add[path] = true
		}
		if d.Fix.DropImportIfUnused != "" {
			ff.drop[d.Fix.DropImportIfUnused] = true
		}
		ff.applied++
	}

	for file, ff := range byFile {
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, fmt.Errorf("lint: fix: %w", err)
		}
		astFile, p := findFile(pkgs, file)
		if astFile == nil {
			return nil, fmt.Errorf("lint: fix: %s not in loaded packages", file)
		}
		edits := ff.edits
		for _, path := range sortedKeys(ff.drop) {
			if e, ok := dropImportEdit(p, astFile, file, path, ff.edits); ok {
				edits = append(edits, e)
			}
		}
		for _, path := range sortedKeys(ff.add) {
			edits = append(edits, addImportEdit(p, astFile, file, path))
		}
		patched, err := applyEdits(src, edits)
		if err != nil {
			return nil, fmt.Errorf("lint: fix %s: %w", file, err)
		}
		formatted, err := format.Source(patched)
		if err != nil {
			return nil, fmt.Errorf("lint: fix %s produced invalid Go: %w", file, err)
		}
		res.Files[file] = formatted
		res.Applied[file] = ff.applied
	}
	return res, nil
}

// WriteFixes writes every fixed file back in place.
func (r *FixResult) WriteFixes() error {
	var files []string
	for f := range r.Files {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		if err := os.WriteFile(f, r.Files[f], 0o644); err != nil {
			return fmt.Errorf("lint: fix: %w", err)
		}
	}
	return nil
}

// sortedKeys returns m's keys in sorted order.
func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// findFile locates the parsed file and its package by filename.
func findFile(pkgs []*Package, file string) (*ast.File, *Package) {
	for _, p := range pkgs {
		for _, f := range p.Files {
			if p.Fset.Position(f.Pos()).Filename == file {
				return f, p
			}
		}
	}
	return nil, nil
}

// applyEdits patches src, validating that edits do not overlap.
func applyEdits(src []byte, edits []Edit) ([]byte, error) {
	sorted := append([]Edit(nil), edits...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Start != sorted[j].Start {
			return sorted[i].Start < sorted[j].Start
		}
		return sorted[i].End < sorted[j].End
	})
	var out []byte
	last := 0
	for _, e := range sorted {
		if e.Start < last || e.End > len(src) {
			return nil, fmt.Errorf("conflicting edits at byte %d", e.Start)
		}
		out = append(out, src[last:e.Start]...)
		out = append(out, e.New...)
		last = e.End
	}
	out = append(out, src[last:]...)
	return out, nil
}

// offsetOf converts a token.Pos to a byte offset in its file.
func offsetOf(p *Package, pos token.Pos) int {
	return p.Fset.Position(pos).Offset
}

// addImportEdit builds the insertion that makes file import path. With an
// existing parenthesized import block the spec lands inside it; otherwise
// a new import declaration follows the package clause. format.Source
// settles ordering and spacing afterwards.
func addImportEdit(p *Package, f *ast.File, file, path string) Edit {
	for _, imp := range f.Imports {
		if v, err := strconv.Unquote(imp.Path.Value); err == nil && v == path {
			return Edit{File: file, Start: 0, End: 0, New: ""} // already imported
		}
	}
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT || !gd.Rparen.IsValid() {
			continue
		}
		at := offsetOf(p, gd.Rparen)
		return Edit{File: file, Start: at, End: at, New: "\t" + strconv.Quote(path) + "\n"}
	}
	// No parenthesized block: insert a fresh declaration after the
	// package clause line.
	at := offsetOf(p, f.Name.End())
	return Edit{File: file, Start: at, End: at, New: "\n\nimport " + strconv.Quote(path)}
}

// dropImportEdit removes the import spec for path when the applied edits
// eliminate every reference to it. Each det-global-rand edit removes
// exactly one selector through the package name; the import goes when the
// file had no other uses.
func dropImportEdit(p *Package, f *ast.File, file, path string, applied []Edit) (Edit, bool) {
	uses := 0
	ast.Inspect(f, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if pn, ok := p.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == path {
			uses++
		}
		return true
	})
	rewritten := 0
	for _, e := range applied {
		if strings.HasPrefix(e.New, "detrand.Global()") {
			rewritten++
		}
	}
	if uses > rewritten {
		return Edit{}, false
	}
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT {
			continue
		}
		for _, spec := range gd.Specs {
			is, ok := spec.(*ast.ImportSpec)
			if !ok {
				continue
			}
			if v, err := strconv.Unquote(is.Path.Value); err != nil || v != path {
				continue
			}
			if len(gd.Specs) == 1 && !gd.Rparen.IsValid() {
				// Sole unparenthesized import: drop the whole declaration.
				return Edit{File: file, Start: offsetOf(p, gd.Pos()), End: offsetOf(p, gd.End()), New: ""}, true
			}
			return Edit{File: file, Start: offsetOf(p, is.Pos()), End: offsetOf(p, is.End()), New: ""}, true
		}
	}
	return Edit{}, false
}

// ---------------------------------------------------------------------------
// Per-rule fix builders, called from the analyzers.

// globalRandFix rewrites a package-global rand selector to draw from
// detrand.Global(). Only math/rand qualifies: every one of its package
// functions exists as a *rand.Rand method, which does not hold for
// math/rand/v2 (Intn vs IntN, and so on).
func globalRandFix(p *Package, sel *ast.SelectorExpr, randPath string) *Fix {
	if randPath != "math/rand" {
		return nil
	}
	file := p.Fset.Position(sel.Pos()).Filename
	return &Fix{
		Edits: []Edit{{
			File:  file,
			Start: offsetOf(p, sel.X.Pos()),
			End:   offsetOf(p, sel.X.End()),
			New:   "detrand.Global()",
		}},
		AddImports:         []string{detrandImport},
		DropImportIfUnused: randPath,
	}
}

// ignoredErrFix wraps a discarded single-error call in an
// `if err := …; err != nil { return err }` when the enclosing function
// returns exactly one value of type error. stmtStart..callStart covers
// the discarded prefix (`_ = ` or nothing for a bare call).
func ignoredErrFix(p *Package, enclosing *ast.FuncType, stmtStart, callStart token.Pos, call *ast.CallExpr) *Fix {
	if !returnsExactlyError(p, enclosing) {
		return nil
	}
	if idx := resultErrIndexes(p.Info, call); len(idx) != 1 {
		return nil
	}
	tv, ok := p.Info.Types[call]
	if !ok || tv.Type == nil || !types.Identical(tv.Type, errorType) {
		return nil // multi-result call: wrapping would not compile
	}
	file := p.Fset.Position(call.Pos()).Filename
	return &Fix{
		Edits: []Edit{
			{File: file, Start: offsetOf(p, stmtStart), End: offsetOf(p, callStart), New: "if err := "},
			{File: file, Start: offsetOf(p, call.End()), End: offsetOf(p, call.End()), New: "; err != nil { return err }"},
		},
	}
}

// returnsExactlyError reports whether ft declares exactly one result of
// type error.
func returnsExactlyError(p *Package, ft *ast.FuncType) bool {
	if ft == nil || ft.Results == nil || len(ft.Results.List) != 1 {
		return false
	}
	field := ft.Results.List[0]
	if len(field.Names) > 1 {
		return false
	}
	tv, ok := p.Info.Types[field.Type]
	return ok && tv.Type != nil && types.Identical(tv.Type, errorType)
}

// mapIterFix rewrites `for k[, v] := range m { … append … }` to iterate
// sorted keys. Offered only when the key is an ordered basic type, both
// range variables are plain identifiers (or the value is omitted), and
// the range expression is a pure identifier/selector chain (evaluated
// twice after the rewrite).
func mapIterFix(p *Package, body *ast.BlockStmt, rs *ast.RangeStmt) *Fix {
	mt, ok := p.Info.Types[rs.X]
	if !ok || mt.Type == nil {
		return nil
	}
	mapType, ok := mt.Type.Underlying().(*types.Map)
	if !ok {
		return nil
	}
	// The key type is spelled verbatim in the rewrite, so it must be an
	// unnamed basic type (a named key would need qualification).
	basic, ok := mapType.Key().(*types.Basic)
	if !ok || basic.Info()&(types.IsOrdered) == 0 {
		return nil
	}
	keyID := identOf(rs.Key)
	if keyID == nil || keyID.Name == "_" || rs.Tok != token.DEFINE {
		return nil
	}
	var valID *ast.Ident
	if rs.Value != nil {
		valID = identOf(rs.Value)
		if valID == nil {
			return nil
		}
	}
	if _, ok := rootIdent(rs.X); !ok {
		return nil // side-effecting range expression: would evaluate twice
	}
	keysName := "sortedKeys"
	if usesName(body, keysName) {
		return nil // collision: leave the finding for a human
	}
	mapExpr := types.ExprString(rs.X)
	keyType := basic.Name()
	file := p.Fset.Position(rs.Pos()).Filename

	prelude := fmt.Sprintf(
		"%s := make([]%s, 0, len(%s))\nfor %s := range %s {\n%s = append(%s, %s)\n}\nsort.Slice(%s, func(i, j int) bool { return %s[i] < %s[j] })\n",
		keysName, keyType, mapExpr,
		keyID.Name, mapExpr,
		keysName, keysName, keyID.Name,
		keysName, keysName, keysName,
	)
	header := fmt.Sprintf("for _, %s := range %s ", keyID.Name, keysName)
	edits := []Edit{
		{File: file, Start: offsetOf(p, rs.Pos()), End: offsetOf(p, rs.Pos()), New: prelude},
		{File: file, Start: offsetOf(p, rs.Pos()), End: offsetOf(p, rs.Body.Lbrace), New: header},
	}
	if valID != nil && valID.Name != "_" {
		at := offsetOf(p, rs.Body.Lbrace) + 1
		edits = append(edits, Edit{
			File: file, Start: at, End: at,
			New: fmt.Sprintf("\n%s := %s[%s]", valID.Name, mapExpr, keyID.Name),
		})
	}
	return &Fix{Edits: edits, AddImports: []string{"sort"}}
}

// usesName reports whether any identifier under n is spelled name.
func usesName(n ast.Node, name string) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}
