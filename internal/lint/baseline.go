// Baseline support: a committed JSON snapshot of accepted findings so CI
// fails only on NEW findings. The classic ratchet: adopting a stricter
// rule on a tree with existing debt would otherwise force fixing every
// instance in the adopting PR; with a baseline the debt is frozen,
// visible and counted, and the build breaks the moment anyone adds to it.
//
// Matching is by (file, rule, message) with per-key multiplicity, never
// by line number — unrelated edits move lines, and a baseline that
// decays on every edit is worse than none. Fixing a baselined finding
// leaves a stale entry behind; -write-baseline regenerates the file.
package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// BaselineFinding is one accepted finding.
type BaselineFinding struct {
	File    string `json:"file"` // module-root-relative, slash-separated
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// Baseline is the decoded baseline file.
type Baseline struct {
	Findings []BaselineFinding `json:"findings"`
}

// baselineKey identifies a finding for matching purposes.
type baselineKey struct {
	file, rule, message string
}

// NewBaseline snapshots diags relative to root, sorted for stable diffs.
func NewBaseline(diags []Diagnostic, root string) *Baseline {
	b := &Baseline{Findings: []BaselineFinding{}}
	for _, d := range diags {
		b.Findings = append(b.Findings, BaselineFinding{
			File:    relPath(root, d.Pos.Filename),
			Line:    d.Pos.Line,
			Col:     d.Pos.Column,
			Rule:    d.RuleID,
			Message: d.Message,
		})
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Line != c.Line {
			return a.Line < c.Line
		}
		if a.Col != c.Col {
			return a.Col < c.Col
		}
		return a.Rule < c.Rule
	})
	return b
}

// ReadBaseline loads a baseline file. A missing file is not an error: it
// decodes as an empty baseline, so a repo without one gates on every
// finding.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("lint: baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: baseline %s: %w", path, err)
	}
	return &b, nil
}

// Write saves the baseline as indented JSON with a trailing newline.
func (b *Baseline) Write(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Filter splits diags into findings not covered by the baseline (fresh)
// and those it absorbs (baselined). Each baseline entry absorbs exactly
// one occurrence of its (file, rule, message) key, so a second identical
// finding in the same file still fails the build.
func (b *Baseline) Filter(diags []Diagnostic, root string) (fresh, baselined []Diagnostic) {
	budget := make(map[baselineKey]int)
	for _, f := range b.Findings {
		budget[baselineKey{f.File, f.Rule, f.Message}]++
	}
	for _, d := range diags {
		k := baselineKey{relPath(root, d.Pos.Filename), d.RuleID, d.Message}
		if budget[k] > 0 {
			budget[k]--
			baselined = append(baselined, d)
			continue
		}
		fresh = append(fresh, d)
	}
	return fresh, baselined
}

// relPath renders file relative to root with forward slashes; files
// outside root keep their cleaned absolute form.
func relPath(root, file string) string {
	if root == "" {
		return filepath.ToSlash(file)
	}
	abs, err := filepath.Abs(file)
	if err == nil {
		if rel, err := filepath.Rel(root, abs); err == nil && !startsWithDotDot(rel) {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(filepath.Clean(file))
}

func startsWithDotDot(p string) bool {
	return p == ".." || len(p) > 2 && p[:3] == ".."+string(filepath.Separator)
}
