// Contract rules: invariants this repo already bled for, encoded so they
// cannot regress silently.
//
//	tel-metric-registry   every telemetry metric name used anywhere must
//	                      match the declared telemetry.KnownMetrics table
//	                      and the "<pkg>.<lower_snake>" naming convention
//	conc-lock-across-call a mutex held across channel operations or other
//	                      potentially blocking calls
//	err-limit-propagate   the sqlengine scan sentinel (errLimitReached)
//	                      must propagate out of scan paths; absorbing or
//	                      dropping it needs an explicit waiver
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/telemetry"
)

// ---------------------------------------------------------------------------
// tel-metric-registry

// MetricRegistryAnalyzer checks telemetry metric names against the
// declared registry. It is module-wide: the registry table is extracted
// from whichever loaded package named "telemetry" declares KnownMetrics,
// then every Counter/Gauge/Histogram/LatencyHistogram/StartTimer call in
// the loaded set is validated against it. Without a loaded registry only
// the naming convention is enforced.
func MetricRegistryAnalyzer() *Analyzer {
	return &Analyzer{
		ID:        "tel-metric-registry",
		Doc:       "telemetry metric name not in declared registry or violating naming convention",
		RunModule: runMetricRegistry,
	}
}

// metricKinds maps registry-accessor method names to declared kinds.
var metricKinds = map[string]string{
	"Counter":          "counter",
	"Gauge":            "gauge",
	"Histogram":        "histogram",
	"LatencyHistogram": "histogram",
	"StartTimer":       "histogram",
}

func runMetricRegistry(pkgs []*Package) []Diagnostic {
	entries := findMetricRegistry(pkgs)
	var out []Diagnostic
	for _, p := range pkgs {
		for _, f := range p.Files {
			// Test code builds scratch registries with scratch names to
			// exercise the telemetry API itself; only production metric
			// names must be declared.
			if isTestFile(p.Fset, f.Pos()) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				fn := pkgFunc(p.Info, call)
				kind, isAccessor := "", false
				if fn != nil {
					kind, isAccessor = metricKinds[fn.Name()]
				}
				if !isAccessor || !isTelemetryRegistryMethod(fn) {
					return true
				}
				pattern, ok := metricNamePattern(p, call.Args[0])
				if !ok {
					return true // name built at runtime beyond recognition: unverifiable
				}
				out = append(out, checkMetricName(p, call.Args[0].Pos(), fn.Name(), pattern, kind, entries)...)
				return true
			})
		}
	}
	return out
}

// isTelemetryRegistryMethod reports whether fn is a method on a Registry
// type declared in a package named telemetry (the real one, or a fixture's).
func isTelemetryRegistryMethod(fn *types.Func) bool {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil || fn.Pkg() == nil {
		return false
	}
	return lastSegment(fn.Pkg().Path()) == "telemetry"
}

// checkMetricName validates one resolved name pattern.
func checkMetricName(p *Package, pos token.Pos, method, pattern, kind string, entries []telemetry.MetricName) []Diagnostic {
	var out []Diagnostic
	diag := func(format string, args ...any) {
		out = append(out, Diagnostic{
			Pos:     p.Fset.Position(pos),
			RuleID:  "tel-metric-registry",
			Message: fmt.Sprintf(format, args...),
		})
	}
	if !metricConventionOK(pattern) {
		diag("telemetry metric %q violates the naming convention (\"<package>.<metric>\" in lower snake case)", pattern)
		return out
	}
	if (method == "LatencyHistogram" || method == "StartTimer") && !strings.HasSuffix(pattern, "_ns") {
		diag("duration histogram %q must carry the _ns suffix", pattern)
		return out
	}
	if entries == nil {
		return out
	}
	kindOf := ""
	for _, e := range entries {
		matched := false
		if strings.Contains(pattern, "*") {
			matched = e.Name == pattern
		} else {
			matched = telemetry.MatchMetricPattern(e.Name, pattern)
		}
		if matched {
			if e.Kind == kind {
				return out // declared, right kind
			}
			kindOf = e.Kind
		}
	}
	if kindOf != "" {
		diag("telemetry metric %q is declared as a %s in KnownMetrics but used as a %s", pattern, kindOf, kind)
	} else {
		diag("telemetry metric %q is not declared in telemetry.KnownMetrics; register it or fix the name", pattern)
	}
	return out
}

// metricConventionOK enforces lower-snake dot-separated names with at
// least one dot; "*" stands for a dynamic run and is allowed mid-segment.
func metricConventionOK(pattern string) bool {
	if !strings.Contains(pattern, ".") {
		return false
	}
	for _, seg := range strings.Split(pattern, ".") {
		if seg == "" {
			return false
		}
		for i := 0; i < len(seg); i++ {
			b := seg[i]
			if !(b >= 'a' && b <= 'z' || b >= '0' && b <= '9' || b == '_' || b == '*') {
				return false
			}
		}
	}
	return true
}

// metricNamePattern resolves a metric-name argument to a checkable
// pattern: string literals verbatim, concatenations and Sprintf formats
// with dynamic parts as "*". Returns ok=false when nothing literal
// anchors the name.
func metricNamePattern(p *Package, e ast.Expr) (string, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		if x.Kind != token.STRING {
			return "", false
		}
		s, err := strconv.Unquote(x.Value)
		if err != nil {
			return "", false
		}
		return s, true
	case *ast.BinaryExpr:
		if x.Op != token.ADD {
			return "", false
		}
		l, lok := metricNamePattern(p, x.X)
		if !lok {
			l = "*"
		}
		r, rok := metricNamePattern(p, x.Y)
		if !rok {
			r = "*"
		}
		if !lok && !rok {
			return "", false
		}
		return l + r, true
	case *ast.CallExpr:
		fn := pkgFunc(p.Info, x)
		if fn == nil || fn.FullName() != "fmt.Sprintf" || len(x.Args) == 0 {
			return "", false
		}
		format, ok := metricNamePattern(p, x.Args[0])
		if !ok {
			return "", false
		}
		return starVerbs(format), true
	}
	return "", false
}

// starVerbs replaces each %-verb in a Sprintf format with "*" ("%%"
// stays a literal percent, which the convention check then rejects).
func starVerbs(format string) string {
	var b strings.Builder
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			b.WriteByte(format[i])
			continue
		}
		if i+1 < len(format) && format[i+1] == '%' {
			b.WriteByte('%')
			i++
			continue
		}
		// Consume flags, width, precision up to the verb letter.
		j := i + 1
		for j < len(format) && !isVerbLetter(format[j]) {
			j++
		}
		b.WriteByte('*')
		i = j
	}
	return b.String()
}

func isVerbLetter(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z'
}

// findMetricRegistry extracts the KnownMetrics literal from a loaded
// package named telemetry, or returns nil.
func findMetricRegistry(pkgs []*Package) []telemetry.MetricName {
	for _, p := range pkgs {
		if lastSegment(strings.Fields(p.Path)[0]) != "telemetry" {
			continue
		}
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						if name.Name != "KnownMetrics" || i >= len(vs.Values) {
							continue
						}
						if entries := parseRegistryLiteral(vs.Values[i]); entries != nil {
							return entries
						}
					}
				}
			}
		}
	}
	return nil
}

// parseRegistryLiteral reads []MetricName{{Name: …, Kind: …}, …} entries,
// keyed or positional.
func parseRegistryLiteral(e ast.Expr) []telemetry.MetricName {
	outer, ok := ast.Unparen(e).(*ast.CompositeLit)
	if !ok {
		return nil
	}
	var entries []telemetry.MetricName
	for _, elt := range outer.Elts {
		inner, ok := elt.(*ast.CompositeLit)
		if !ok {
			continue
		}
		var m telemetry.MetricName
		for i, field := range inner.Elts {
			key, val := "", field
			if kv, ok := field.(*ast.KeyValueExpr); ok {
				if id, ok := kv.Key.(*ast.Ident); ok {
					key = id.Name
				}
				val = kv.Value
			} else if i == 0 {
				key = "Name"
			} else if i == 1 {
				key = "Kind"
			}
			lit, ok := ast.Unparen(val).(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				continue
			}
			s, err := strconv.Unquote(lit.Value)
			if err != nil {
				continue
			}
			switch key {
			case "Name":
				m.Name = s
			case "Kind":
				m.Kind = s
			}
		}
		if m.Name != "" {
			entries = append(entries, m)
		}
	}
	return entries
}

// ---------------------------------------------------------------------------
// conc-lock-across-call

// LockAcrossCallAnalyzer flags blocking operations — channel sends and
// receives, selects, WaitGroup/Cond waits, time.Sleep — executed while a
// sync.Mutex or RWMutex is held: between an x.Lock()/x.RLock() statement
// and the matching unlock in the same block, or anywhere after a deferred
// unlock. Function literals inside the window are skipped: they do not
// run under the lock unless invoked, and goroutine bodies never hold it.
func LockAcrossCallAnalyzer() *Analyzer {
	return &Analyzer{
		ID:  "conc-lock-across-call",
		Doc: "mutex held across channel ops or blocking calls",
		Run: runLockAcrossCall,
	}
}

func runLockAcrossCall(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			for i, stmt := range block.List {
				key, ok := lockStmt(p, stmt, "Lock", "RLock")
				if !ok {
					continue
				}
				window := block.List[i+1:]
				// A matching unlock in the same list bounds the window.
				for j, rest := range window {
					if uk, uok := lockStmt(p, rest, "Unlock", "RUnlock"); uok && uk == key {
						window = window[:j]
						break
					}
				}
				lockLine := p.Fset.Position(stmt.Pos()).Line
				for _, s := range window {
					if dk, dok := deferUnlock(p, s); dok && dk == key {
						continue
					}
					out = append(out, blockingOps(p, s, key, lockLine)...)
				}
			}
			return true
		})
	}
	return out
}

// lockStmt matches `x.M()` expression statements for M in names, keyed by
// the printed receiver expression.
func lockStmt(p *Package, stmt ast.Stmt, names ...string) (key string, ok bool) {
	es, isExpr := stmt.(*ast.ExprStmt)
	if !isExpr {
		return "", false
	}
	return lockCall(p, es.X, names...)
}

// deferUnlock matches `defer x.Unlock()` / `defer x.RUnlock()`.
func deferUnlock(p *Package, stmt ast.Stmt) (key string, ok bool) {
	ds, isDefer := stmt.(*ast.DeferStmt)
	if !isDefer {
		return "", false
	}
	return lockCall(p, ds.Call, "Unlock", "RUnlock")
}

// lockCall resolves e as a call to one of the named methods on a value
// whose type transitively contains a sync mutex.
func lockCall(p *Package, e ast.Expr, names ...string) (key string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false
	}
	match := false
	for _, name := range names {
		if sel.Sel.Name == name {
			match = true
		}
	}
	if !match {
		return "", false
	}
	tv, okT := p.Info.Types[sel.X]
	if !okT || tv.Type == nil {
		return "", false
	}
	t := tv.Type
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	if containsLock(t) == nil {
		return "", false
	}
	return types.ExprString(sel.X), true
}

// blockingOps collects the blocking operations under stmt, not descending
// into function literals.
func blockingOps(p *Package, stmt ast.Stmt, lockKey string, lockLine int) []Diagnostic {
	var out []Diagnostic
	flag := func(pos token.Pos, what string) {
		out = append(out, Diagnostic{
			Pos:    p.Fset.Position(pos),
			RuleID: "conc-lock-across-call",
			Message: fmt.Sprintf("%s while holding %s (locked at line %d); blocking here stalls every other user of the lock — release it first",
				what, lockKey, lockLine),
		})
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			flag(x.Pos(), "channel send")
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				flag(x.Pos(), "channel receive")
			}
		case *ast.SelectStmt:
			flag(x.Pos(), "select")
			return false
		case *ast.RangeStmt:
			if isChanRange(p, x) {
				flag(x.Pos(), "range over channel")
			}
		case *ast.CallExpr:
			fn := pkgFunc(p.Info, x)
			if fn == nil {
				return true
			}
			switch fn.FullName() {
			case "(*sync.WaitGroup).Wait", "(*sync.Cond).Wait", "time.Sleep":
				flag(x.Pos(), fn.FullName())
			}
		}
		return true
	})
	return out
}

// ---------------------------------------------------------------------------
// err-limit-propagate

// LimitPropagateAnalyzer guards the sqlengine scan contract: a package
// that declares an errLimit* sentinel converts it to success at exactly
// one blessed point (planRows); everywhere else the sentinel must
// propagate. The rule flags (a) dropped errors from calls that may return
// the sentinel — stronger than err-ignored because it also names the
// sentinel — and (b) any comparison against the sentinel, which is how
// absorption happens; the single legitimate conversion point carries an
// explicit //lint:ignore waiver. Test files are exempt: asserting the
// sentinel is their job.
func LimitPropagateAnalyzer() *Analyzer {
	return &Analyzer{
		ID:  "err-limit-propagate",
		Doc: "errLimitReached dropped or absorbed outside the blessed conversion point",
		Run: runLimitPropagate,
	}
}

func runLimitPropagate(p *Package) []Diagnostic {
	sentinel := findLimitSentinel(p)
	if sentinel == nil {
		return nil
	}
	mayReturn, mayReturnSigs := limitReturners(p, sentinel)

	var out []Diagnostic
	for _, f := range p.Files {
		if isTestFile(p.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				if x.Op != token.EQL && x.Op != token.NEQ {
					return true
				}
				if usesObject(p, x.X, sentinel) || usesObject(p, x.Y, sentinel) {
					out = append(out, Diagnostic{
						Pos:    p.Fset.Position(x.Pos()),
						RuleID: "err-limit-propagate",
						Message: fmt.Sprintf("comparison absorbs %s; scan paths must propagate it — only the blessed conversion point may treat the limit as success (waive with //lint:ignore and a reason there)",
							sentinel.Name()),
					})
				}
			case *ast.ExprStmt:
				call, ok := ast.Unparen(x.X).(*ast.CallExpr)
				if !ok || !mayReturnSentinel(p, call, mayReturn, mayReturnSigs) {
					return true
				}
				if len(resultErrIndexes(p.Info, call)) > 0 {
					out = append(out, limitDropDiag(p, call.Pos(), call, sentinel))
				}
			case *ast.AssignStmt:
				out = append(out, blankLimitDrops(p, x, sentinel, mayReturn, mayReturnSigs)...)
			}
			return true
		})
	}
	return out
}

// blankLimitDrops flags `_`-discarded errors from may-return-sentinel
// calls.
func blankLimitDrops(p *Package, as *ast.AssignStmt, sentinel types.Object, mayReturn map[*types.Func]bool, sigs []*types.Signature) []Diagnostic {
	if len(as.Rhs) != 1 {
		return nil
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || !mayReturnSentinel(p, call, mayReturn, sigs) {
		return nil
	}
	var out []Diagnostic
	for _, i := range resultErrIndexes(p.Info, call) {
		if i < len(as.Lhs) && isBlank(as.Lhs[i]) {
			out = append(out, limitDropDiag(p, as.Lhs[i].Pos(), call, sentinel))
		}
	}
	return out
}

func limitDropDiag(p *Package, pos token.Pos, call *ast.CallExpr, sentinel types.Object) Diagnostic {
	return Diagnostic{
		Pos:    p.Fset.Position(pos),
		RuleID: "err-limit-propagate",
		Message: fmt.Sprintf("error from %s may carry %s; dropping it silently truncates the scan — propagate it",
			calleeName(p, call), sentinel.Name()),
	}
}

// findLimitSentinel locates a package-level `var errLimit…` declaration.
func findLimitSentinel(p *Package) types.Object {
	scope := p.Types.Scope()
	for _, name := range scope.Names() {
		if strings.HasPrefix(name, "errLimit") {
			if v, ok := scope.Lookup(name).(*types.Var); ok {
				return v
			}
		}
	}
	return nil
}

// limitReturners computes (a) the set of declared functions that may
// return the sentinel, transitively through `return f(…)` chains, and
// (b) the signatures of named function types whose values may return it
// (a function literal returning the sentinel assigned to a variable of a
// named func type, like sqlengine's rowSink).
func limitReturners(p *Package, sentinel types.Object) (map[*types.Func]bool, []*types.Signature) {
	mayReturn := make(map[*types.Func]bool)
	var sigs []*types.Signature

	// Function declarations by object, for the fixpoint.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}

	// Seed: bodies (including literals) that lexically return the
	// sentinel. A literal returning it taints its enclosing declaration —
	// the value leaves through the closure — and registers its named
	// context type when one exists.
	returnsSentinel := func(body ast.Node) bool {
		found := false
		ast.Inspect(body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return !found
			}
			for _, res := range ret.Results {
				if usesObject(p, res, sentinel) {
					found = true
				}
			}
			return !found
		})
		return found
	}
	for fn, fd := range decls {
		if returnsSentinel(fd.Body) {
			mayReturn[fn] = true
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.FuncLit)
			if !ok || !returnsSentinel(lit.Body) {
				return true
			}
			if tv, ok := p.Info.Types[lit]; ok {
				if sig, ok := tv.Type.(*types.Signature); ok {
					sigs = append(sigs, sig)
				}
			}
			return true
		})
	}

	// Fixpoint: returning the result of a may-return call propagates.
	for changed := true; changed; {
		changed = false
		for fn, fd := range decls {
			if mayReturn[fn] {
				continue
			}
			hit := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				ret, ok := n.(*ast.ReturnStmt)
				if !ok || hit {
					return !hit
				}
				for _, res := range ret.Results {
					if call, ok := ast.Unparen(res).(*ast.CallExpr); ok {
						if callee := pkgFunc(p.Info, call); callee != nil && mayReturn[callee] {
							hit = true
						}
					}
				}
				return !hit
			})
			if hit {
				mayReturn[fn] = true
				changed = true
			}
		}
	}
	return mayReturn, sigs
}

// mayReturnSentinel reports whether call can produce the sentinel: its
// static callee is a known returner, or it calls through a value whose
// signature matches a sentinel-returning literal's named context.
func mayReturnSentinel(p *Package, call *ast.CallExpr, mayReturn map[*types.Func]bool, sigs []*types.Signature) bool {
	if fn := pkgFunc(p.Info, call); fn != nil {
		return mayReturn[fn]
	}
	tv, ok := p.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := types.Unalias(tv.Type).(*types.Named)
	if !ok {
		return false
	}
	sig, ok := named.Underlying().(*types.Signature)
	if !ok {
		return false
	}
	for _, s := range sigs {
		if types.Identical(sig, s) {
			return true
		}
	}
	return false
}

// usesObject reports whether expr mentions an identifier resolving to obj.
func usesObject(p *Package, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
